package repro

import (
	"io"
	"testing"

	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/solver"
)

// runWithTelemetry runs a small multi-rank solve, optionally with the
// full telemetry stack (span tracer, step collector, comm flow adapter)
// attached, and returns the modeled makespan and the final mass.
func runWithTelemetry(t *testing.T, telemetry bool) (makespan, mass float64, tel *obs.Tracer) {
	t.Helper()
	const np, steps = 4, 3
	cfg := solver.DefaultConfig(np, 6, 2)
	opts := cfg.CommOptions(netmodel.QDR)
	var coll *obs.StepCollector
	if telemetry {
		tel = obs.NewTracer()
		reg := obs.NewRegistry()
		cfg.Obs = tel
		coll = obs.NewStepCollector(io.Discard, np, reg)
		cfg.Steps = coll
		opts.Tracer = obs.NewCommTracer(tel, reg)
	}
	masses := make([]float64, np)
	stats, err := comm.Run(np, opts, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(
			float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
			0.1, 0.5))
		rep := s.Run(steps)
		masses[r.ID()] = rep.Mass
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if telemetry {
		if _, err := coll.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return stats.MaxVirtualTime(), masses[0], tel
}

// TestTelemetryVTInvariance is the telemetry layer's core contract:
// recording spans, step metrics, and flow events reads the virtual
// clock but never advances it, so the modeled makespan and the physics
// are bit-identical with telemetry on or off.
func TestTelemetryVTInvariance(t *testing.T) {
	vtOff, massOff, _ := runWithTelemetry(t, false)
	vtOn, massOn, tel := runWithTelemetry(t, true)
	if vtOn != vtOff {
		t.Errorf("telemetry changed the modeled makespan: %v -> %v", vtOff, vtOn)
	}
	if massOn != massOff {
		t.Errorf("telemetry changed the physics: mass %v -> %v", massOff, massOn)
	}
	// And it actually observed the run: every rank produced spans, and
	// every wire message produced a flow.
	perRank := map[int]int{}
	for _, s := range tel.Spans() {
		perRank[s.Rank]++
	}
	if len(perRank) != 4 {
		t.Fatalf("spans cover %d ranks, want 4", len(perRank))
	}
	for rank, n := range perRank {
		if n == 0 {
			t.Errorf("rank %d recorded no spans", rank)
		}
	}
	if len(tel.Flows()) == 0 {
		t.Error("no flow events recorded for wire messages")
	}
}
