// Package repro's root benchmark harness: one testing.B benchmark per
// table/figure of the paper's evaluation (Figures 4-10), plus ablation
// benches for the design choices DESIGN.md calls out. Regenerate all
// reproduction numbers with:
//
//	go test -bench=. -benchmem
//
// The cmd/ tools print the full tables; these benches provide the
// repeatable timed kernels behind them and report the headline shape
// metrics via b.ReportMetric.
package repro

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/hw"
	"repro/internal/mesh"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/sem"
	"repro/internal/solver"
)

// ---------------------------------------------------------------- Fig 4

// BenchmarkFig04ExecutionProfile times one full CMT-bone timestep on a
// single rank — the workload behind the Figure 4 gprof profile — and
// reports the share of time spent in the derivative (ax_) kernel.
func BenchmarkFig04ExecutionProfile(b *testing.B) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(1, 8, 2)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		dt := s.StableDt()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step(dt)
		}
		b.StopTimer()
		var deriv, total float64
		for _, reg := range s.Prof.Flat() {
			total += reg.Self
			switch reg.Name {
			case "ax_deriv_dudr", "ax_deriv_duds", "ax_deriv_dudt":
				deriv += reg.Self
			}
		}
		if total > 0 {
			b.ReportMetric(100*deriv/total, "%deriv")
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// ------------------------------------------------------------ Figs 5, 6

func benchDeriv(b *testing.B, dir sem.Direction, v sem.KernelVariant) {
	const n, nel = 5, 512 // paper: N=5 (1563 elements; scaled for bench time)
	ref := sem.NewRef1D(n)
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, nel*n*n*n)
	for i := range u {
		u[i] = rng.Float64()
	}
	du := make([]float64, len(u))
	var ops sem.OpCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = sem.Deriv(dir, v, ref, u, du, nel)
	}
	b.StopTimer()
	flops := float64(ops.Flops()) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

// BenchmarkFig05OptimizedDerivatives regenerates the Figure 5 rows: the
// derivative kernels with the loop transformations applied.
func BenchmarkFig05OptimizedDerivatives(b *testing.B) {
	for _, dir := range []sem.Direction{sem.DirT, sem.DirR, sem.DirS} {
		b.Run(dir.String(), func(b *testing.B) { benchDeriv(b, dir, sem.Optimized) })
	}
}

// BenchmarkFig06BasicDerivatives regenerates the Figure 6 rows: the basic
// (untransformed) derivative kernels.
func BenchmarkFig06BasicDerivatives(b *testing.B) {
	for _, dir := range []sem.Direction{sem.DirT, sem.DirR, sem.DirS} {
		b.Run(dir.String(), func(b *testing.B) { benchDeriv(b, dir, sem.Basic) })
	}
}

// ---------------------------------------------------------------- Fig 7

func benchGSMethod(b *testing.B, ids func(*mesh.Local) []int64, m gs.Method) {
	const np = 16
	procGrid := comm.FactorGrid(np)
	local := 2
	elemGrid := [3]int{procGrid[0] * local, procGrid[1] * local, procGrid[2] * local}
	box, err := mesh.NewBox(procGrid, elemGrid, 5, [3]bool{true, true, true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	_, err = comm.Run(np, comm.Options{Model: netmodel.QDR, Grid: procGrid,
		Periodic: [3]bool{true, true, true}}, func(r *comm.Rank) error {
		g := gs.Setup(r, ids(box.Partition(r.ID())))
		v := make([]float64, g.SharedSlots())
		vals := make([]float64, lenIDs(box, r.ID(), ids))
		for i := range vals {
			vals[i] = float64(i)
		}
		_ = v
		for i := 0; i < b.N; i++ {
			g.OpWith(vals, comm.OpSum, m)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func lenIDs(box *mesh.Box, rank int, ids func(*mesh.Local) []int64) int {
	return len(ids(box.Partition(rank)))
}

// BenchmarkFig07GatherScatterMethods regenerates the Figure 7 comparison:
// each gather-scatter algorithm on CMT-bone's face pattern and Nekbone's
// continuous pattern. (cmd/gssweep prints the full avg/min/max table.)
func BenchmarkFig07GatherScatterMethods(b *testing.B) {
	patterns := map[string]func(*mesh.Local) []int64{
		"cmtbone": func(l *mesh.Local) []int64 { return l.DGFaceIDs() },
		"nekbone": func(l *mesh.Local) []int64 { return l.ContinuousIDs() },
	}
	for _, app := range []string{"cmtbone", "nekbone"} {
		for _, m := range []gs.Method{gs.Pairwise, gs.CrystalRouter, gs.AllReduce} {
			b.Run(app+"/"+m.String(), func(b *testing.B) {
				benchGSMethod(b, patterns[app], m)
			})
		}
	}
}

// ------------------------------------------------------------ Figs 8-10

// benchMPIProfile runs a short multi-rank CMT-bone simulation per
// iteration and reports one headline metric from the mpiP-style profile.
func benchMPIProfile(b *testing.B, metric func(*comm.Stats) (float64, string)) {
	const np = 8
	cfg := solver.DefaultConfig(np, 6, 2)
	b.ResetTimer()
	var stats *comm.Stats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
			s, err := solver.New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(solver.GaussianPulse(2, 2, 2, 0.1, 0.5))
			s.Run(2)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	v, unit := metric(stats)
	b.ReportMetric(v, unit)
}

// BenchmarkFig08MPITimeFraction reports the mean modeled MPI time share
// across ranks (the level of the Figure 8 bars).
func BenchmarkFig08MPITimeFraction(b *testing.B) {
	benchMPIProfile(b, func(stats *comm.Stats) (float64, string) {
		fr := stats.RankMPIFractions()
		sum := 0.0
		for _, f := range fr {
			sum += f.FracModeled()
		}
		return 100 * sum / float64(len(fr)), "%mpi"
	})
}

// BenchmarkFig09TopMPICalls reports the share of total MPI wall time
// spent in MPI_Wait — the paper's headline Figure 9 observation.
func BenchmarkFig09TopMPICalls(b *testing.B) {
	benchMPIProfile(b, func(stats *comm.Stats) (float64, string) {
		wait, total := 0.0, 0.0
		for _, s := range stats.AggregateSites() {
			total += s.Wall
			if s.Op == "MPI_Wait" {
				wait += s.Wall
			}
		}
		if total == 0 {
			return 0, "%wait"
		}
		return 100 * wait / total, "%wait"
	})
}

// BenchmarkFig10MessageSizes reports the average nearest-neighbor message
// size of the gs exchange (the dominant row of Figure 10).
func BenchmarkFig10MessageSizes(b *testing.B) {
	benchMPIProfile(b, func(stats *comm.Stats) (float64, string) {
		for _, s := range stats.AggregateSites() {
			if s.Op == "MPI_Isend" && s.Site == "gs_op" {
				return s.AvgBytes(), "bytes/msg"
			}
		}
		return 0, "bytes/msg"
	})
}

// ------------------------------------------------------------ Ablations

// BenchmarkAblationMxM compares the four mxm loop structures on the
// paper's small-matrix shapes (N=5..25).
func BenchmarkAblationMxM(b *testing.B) {
	for _, n := range []int{5, 10, 16, 25} {
		rng := rand.New(rand.NewSource(2))
		a := make([]float64, n*n)
		bm := make([]float64, n*n*n) // (n x n^2): one element derivative
		c := make([]float64, n*n*n)
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range bm {
			bm[i] = rng.Float64()
		}
		for _, v := range sem.MxMVariants {
			b.Run(v.String()+"/N="+itoa(n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sem.MxM(v, a, n, bm, n, c, n*n)
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationGSScale sweeps the gather-scatter methods across rank
// counts, exposing the crossover the autotuner exploits.
func BenchmarkAblationGSScale(b *testing.B) {
	for _, np := range []int{4, 16, 32} {
		for _, m := range []gs.Method{gs.Pairwise, gs.CrystalRouter} {
			b.Run(m.String()+"/np="+itoa(np), func(b *testing.B) {
				procGrid := comm.FactorGrid(np)
				elemGrid := [3]int{procGrid[0] * 2, procGrid[1] * 2, procGrid[2] * 2}
				box, err := mesh.NewBox(procGrid, elemGrid, 4, [3]bool{true, true, true})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				_, err = comm.Run(np, comm.Options{Grid: procGrid, Periodic: [3]bool{true, true, true}},
					func(r *comm.Rank) error {
						g := gs.Setup(r, box.Partition(r.ID()).DGFaceIDs())
						vals := make([]float64, len(box.Partition(r.ID()).DGFaceIDs()))
						for i := 0; i < b.N; i++ {
							g.OpWith(vals, comm.OpSum, m)
						}
						return nil
					})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkAblationCommEager measures the eager-send path across message
// sizes (the copy cost traded for deadlock-freedom).
func BenchmarkAblationCommEager(b *testing.B) {
	for _, size := range []int{16, 1024, 65536} {
		b.Run("floats="+itoa(size), func(b *testing.B) {
			_, err := comm.RunSimple(2, func(r *comm.Rank) error {
				buf := make([]float64, size)
				if r.ID() == 0 {
					for i := 0; i < b.N; i++ {
						r.Send(1, 1, buf)
						r.Recv(1, 2)
					}
				} else {
					for i := 0; i < b.N; i++ {
						r.Recv(0, 1)
						r.Send(0, 2, nil)
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(size * 8))
		})
	}
}

// BenchmarkAblationDealias measures the cost the dealiasing round trip
// adds to a timestep.
func BenchmarkAblationDealias(b *testing.B) {
	for _, dealias := range []bool{false, true} {
		name := "off"
		if dealias {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			_, err := comm.RunSimple(1, func(r *comm.Rank) error {
				cfg := solver.DefaultConfig(1, 6, 2)
				cfg.Dealias = dealias
				s, err := solver.New(r, cfg)
				if err != nil {
					return err
				}
				s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
				dt := s.StableDt()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Step(dt)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationNetModel runs the same gs exchange under different
// machine models and reports the modeled per-op cost — the signal that
// flips the tuner's choice between fabrics.
func BenchmarkAblationNetModel(b *testing.B) {
	for _, model := range []netmodel.Model{netmodel.Loopback, netmodel.QDR, netmodel.GigE, netmodel.Exascale} {
		b.Run(model.Name, func(b *testing.B) {
			const np = 8
			procGrid := comm.FactorGrid(np)
			elemGrid := [3]int{procGrid[0] * 2, procGrid[1] * 2, procGrid[2] * 2}
			box, err := mesh.NewBox(procGrid, elemGrid, 4, [3]bool{true, true, true})
			if err != nil {
				b.Fatal(err)
			}
			var modeled float64
			b.ResetTimer()
			stats, err := comm.Run(np, comm.Options{Model: model, Grid: procGrid,
				Periodic: [3]bool{true, true, true}}, func(r *comm.Rank) error {
				g := gs.Setup(r, box.Partition(r.ID()).DGFaceIDs())
				vals := make([]float64, len(box.Partition(r.ID()).DGFaceIDs()))
				for i := 0; i < b.N; i++ {
					g.OpWith(vals, comm.OpSum, gs.Pairwise)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			modeled = stats.MaxVirtualTime() / float64(b.N)
			b.ReportMetric(modeled*1e6, "modeled-us/op")
		})
	}
}

// BenchmarkAblationKernelVariantSolver compares full solver steps with
// the optimized vs basic derivative kernels (the end-to-end effect of the
// Section V loop transformations).
func BenchmarkAblationKernelVariantSolver(b *testing.B) {
	for _, v := range []sem.KernelVariant{sem.Optimized, sem.Basic} {
		b.Run(v.String(), func(b *testing.B) {
			_, err := comm.RunSimple(1, func(r *comm.Rank) error {
				cfg := solver.DefaultConfig(1, 8, 2)
				cfg.Variant = v
				s, err := solver.New(r, cfg)
				if err != nil {
					return err
				}
				s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
				dt := s.StableDt()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Step(dt)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationPackedExchange compares per-field gs_op (the paper's
// profile: 10 messages per neighbor per RHS) against the packed
// gs_op_fields path (2 messages per neighbor) — the latency/bandwidth
// trade of message aggregation.
func BenchmarkAblationPackedExchange(b *testing.B) {
	for _, packed := range []bool{false, true} {
		name := "per-field"
		if packed {
			name = "packed"
		}
		b.Run(name, func(b *testing.B) {
			_, err := comm.RunSimple(8, func(r *comm.Rank) error {
				cfg := solver.DefaultConfig(8, 6, 2)
				cfg.PackedExchange = packed
				s, err := solver.New(r, cfg)
				if err != nil {
					return err
				}
				s.SetInitial(solver.GaussianPulse(2, 2, 2, 0.1, 0.5))
				dt := s.StableDt()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Step(dt)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationViscousPath compares the inviscid (Euler) and viscous
// (Navier-Stokes) right-hand sides: the viscous path nearly doubles the
// derivative-kernel work (27 vs 15 ax_ passes per RHS).
func BenchmarkAblationViscousPath(b *testing.B) {
	for _, mu := range []float64{0, 0.01} {
		name := "euler"
		if mu > 0 {
			name = "navier-stokes"
		}
		b.Run(name, func(b *testing.B) {
			_, err := comm.RunSimple(1, func(r *comm.Rank) error {
				cfg := solver.DefaultConfig(1, 8, 2)
				cfg.Mu = mu
				s, err := solver.New(r, cfg)
				if err != nil {
					return err
				}
				s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.05, 0.5))
				dt := s.StableDt()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Step(dt)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationAllreduceSize crosses the size threshold where
// Allreduce switches from recursive doubling to Rabenseifner
// reduce-scatter/allgather, the algorithm switch production MPI
// libraries make.
func BenchmarkAblationAllreduceSize(b *testing.B) {
	for _, n := range []int{64, 1024, 4096, 65536} {
		b.Run("len="+itoa(n), func(b *testing.B) {
			_, err := comm.RunSimple(8, func(r *comm.Rank) error {
				buf := make([]float64, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.Allreduce(comm.OpSum, buf)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * n))
		})
	}
}

// ------------------------------------------------------- Worker sweep

// workerCounts returns 1, 2, 4, ... up to NumCPU (plus NumCPU itself
// when it is not a power of two) — the intra-rank pool widths the
// worker-sweep benches cover.
func workerCounts() []int {
	ws := []int{1}
	for w := 2; w <= runtime.NumCPU(); w *= 2 {
		ws = append(ws, w)
	}
	if last := ws[len(ws)-1]; last != runtime.NumCPU() {
		ws = append(ws, runtime.NumCPU())
	}
	return ws
}

// BenchmarkWorkerSweepDeriv sweeps the intra-rank worker pool over the
// derivative kernel — the tentpole speedup measurement (on a multi-core
// host, workers=NumCPU should beat workers=1 by ~NumCPU/2 or better at
// this shape; on a single-core host the sweep degenerates to one row).
// Results are bit-identical at every width; only wall time moves.
func BenchmarkWorkerSweepDeriv(b *testing.B) {
	const n, nel = 9, 64
	ref := sem.NewRef1D(n)
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, nel*n*n*n)
	for i := range u {
		u[i] = rng.Float64()
	}
	du := make([]float64, len(u))
	for _, w := range workerCounts() {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			p := pool.New(w)
			defer p.Close()
			var ops sem.OpCount
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, dir := range []sem.Direction{sem.DirR, sem.DirS, sem.DirT} {
					ops = sem.DerivPool(p, dir, sem.Optimized, ref, u, du, nel)
				}
			}
			b.StopTimer()
			flops := 3 * float64(ops.Flops()) * float64(b.N)
			b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "Gflop/s")
		})
	}
}

// BenchmarkWorkerSweepStep sweeps the pool width over a full solver
// timestep on one rank — the end-to-end effect of intra-rank
// parallelism on everything between exchanges.
func BenchmarkWorkerSweepStep(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			cfg := solver.DefaultConfig(1, 8, 2)
			cfg.Workers = w
			cfg.Dealias = true
			_, err := comm.RunSimple(1, func(r *comm.Rank) error {
				s, err := solver.New(r, cfg)
				if err != nil {
					return err
				}
				defer s.Close()
				s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
				dt := s.StableDt()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Step(dt)
				}
				b.StopTimer()
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkHWModel exercises the PAPI-substitute estimator (it sits on
// every compute charge, so it must be cheap).
func BenchmarkHWModel(b *testing.B) {
	ops := hw.Ops{Mul: 1 << 20, Add: 1 << 20, Load: 1 << 21, Store: 1 << 18}
	for i := 0; i < b.N; i++ {
		hw.Model(hw.Opteron6378, ops, hw.DudtOptimized)
	}
}

// BenchmarkTelemetryOverhead times one full timestep with the span
// tracer attached ("on") and without it ("off") — the wall-clock cost
// of observability. The modeled virtual time is invariant by
// construction (TestTelemetryVTInvariance); this bench bounds the
// host-side overhead, which must stay well under 10%.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, telemetry := range []bool{false, true} {
		name := "off"
		if telemetry {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := solver.DefaultConfig(1, 8, 2)
			if telemetry {
				tr := obs.NewTracer()
				// A span per kernel per step adds up across b.N: raise the
				// cap so late iterations are not artificially cheaper.
				tr.Cap = 1 << 26
				cfg.Obs = tr
			}
			_, err := comm.RunSimple(1, func(r *comm.Rank) error {
				s, err := solver.New(r, cfg)
				if err != nil {
					return err
				}
				s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
				dt := s.StableDt()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Step(dt)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
