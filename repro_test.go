// End-to-end reproduction gates: each test asserts one of the paper's
// qualitative claims across the full stack (solver + gs + comm + models),
// so a regression anywhere that would break a figure's shape fails here.
package repro

import (
	"math"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/mesh"
	"repro/internal/netmodel"
	"repro/internal/sem"
	"repro/internal/solver"
)

// TestFig4DerivativeDominates gates the Figure 4 claim: "the majority of
// application time is spent in derivative calculation".
func TestFig4DerivativeDominates(t *testing.T) {
	if raceEnabled {
		t.Skip("profile-share assertions are meaningless under the race detector")
	}
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(1, 10, 2)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		s.Run(3)
		self := map[string]float64{}
		total := 0.0
		for _, reg := range s.Prof.Flat() {
			self[reg.Name] += reg.Self
			total += reg.Self
		}
		deriv := self["ax_deriv_dudr"] + self["ax_deriv_duds"] + self["ax_deriv_dudt"]
		if deriv < 0.35*total {
			t.Errorf("derivative kernel is %.1f%% of self time, want the dominant share",
				100*deriv/total)
		}
		// It must beat every other single region.
		for name, v := range self {
			switch name {
			case "ax_deriv_dudr", "ax_deriv_duds", "ax_deriv_dudt":
				continue
			}
			if v > deriv {
				t.Errorf("region %s (%.3fs) outweighs the derivative kernel (%.3fs)", name, v, deriv)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFig5KernelOptimizationShape gates the Figures 5-6 claims: large
// dudt gain, marginal dudr gain, no duds gain.
func TestFig5KernelOptimizationShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-ratio assertions are meaningless under the race detector")
	}
	const n, nel, steps = 5, 1024, 60
	ref := sem.NewRef1D(n)
	u := make([]float64, nel*n*n*n)
	for i := range u {
		u[i] = float64(i%17) * 0.1
	}
	du := make([]float64, len(u))
	timeIt := func(dir sem.Direction, v sem.KernelVariant) float64 {
		// Warm up, then time.
		sem.Deriv(dir, v, ref, u, du, nel)
		start := time.Now()
		for s := 0; s < steps; s++ {
			sem.Deriv(dir, v, ref, u, du, nel)
		}
		return time.Since(start).Seconds()
	}
	dudtGain := timeIt(sem.DirT, sem.Basic) / timeIt(sem.DirT, sem.Optimized)
	dudsGain := timeIt(sem.DirS, sem.Basic) / timeIt(sem.DirS, sem.Optimized)
	if dudtGain < 1.5 {
		t.Errorf("dudt optimization gain = %.2fx, want the paper's large gain (~2.3x)", dudtGain)
	}
	if dudsGain > 1.6 {
		t.Errorf("duds optimization gain = %.2fx, but fusion is impossible for duds (paper: ~1.0x)", dudsGain)
	}
	if dudtGain < dudsGain {
		t.Errorf("dudt gain (%.2fx) must exceed duds gain (%.2fx)", dudtGain, dudsGain)
	}
}

// TestFig7SelectionDivergence gates the Figure 7 claim: on the same
// problem setup, CMT-bone's tuner picks pairwise exchange while
// Nekbone's picks the crystal router.
func TestFig7SelectionDivergence(t *testing.T) {
	const np = 32
	procGrid := comm.FactorGrid(np)
	elemGrid := [3]int{procGrid[0] * 2, procGrid[1] * 2, procGrid[2] * 2}
	periodic := [3]bool{true, true, true}
	box, err := mesh.NewBox(procGrid, elemGrid, 5, periodic)
	if err != nil {
		t.Fatal(err)
	}
	choose := func(ids func(*mesh.Local) []int64) gs.Method {
		var m gs.Method
		_, err := comm.Run(np, comm.Options{Model: netmodel.QDR, Grid: procGrid, Periodic: periodic},
			func(r *comm.Rank) error {
				g := gs.Setup(r, ids(box.Partition(r.ID())))
				got, _ := gs.TuneModeled(g, 2)
				if r.ID() == 0 {
					m = got
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cmt := choose(func(l *mesh.Local) []int64 { return l.DGFaceIDs() })
	nek := choose(func(l *mesh.Local) []int64 { return l.ContinuousIDs() })
	if cmt != gs.Pairwise {
		t.Errorf("CMT-bone tuner chose %v, paper: pairwise exchange", cmt)
	}
	if nek != gs.CrystalRouter {
		t.Errorf("Nekbone tuner chose %v, paper: crystal router", nek)
	}
}

// TestFig9WaitDominatesMPI gates the Figure 9 claim: MPI_Wait is where
// the communication time goes.
func TestFig9WaitDominatesMPI(t *testing.T) {
	cfg := solver.DefaultConfig(8, 6, 2)
	stats, err := comm.Run(8, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(2, 2, 2, 0.1, 0.5))
		s.Run(3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sites := stats.AggregateSites()
	var wait, maxOther float64
	for _, s := range sites {
		if s.Op == "MPI_Wait" {
			wait += s.Wall
		} else if s.Wall > maxOther {
			maxOther = s.Wall
		}
	}
	if wait <= maxOther {
		t.Errorf("MPI_Wait (%.4fs) must be the top MPI cost (max other: %.4fs)", wait, maxOther)
	}
}

// TestFig10FaceMessagesDominateBytes gates the Figure 10 claim: the
// nearest-neighbor face exchange dominates communication volume.
func TestFig10FaceMessagesDominateBytes(t *testing.T) {
	cfg := solver.DefaultConfig(8, 6, 2)
	stats, err := comm.Run(8, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(2, 2, 2, 0.1, 0.5))
		s.Run(3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var gsBytes, reduceBytes int64
	for _, s := range stats.AggregateSites() {
		switch {
		case s.Site == "gs_op" && s.Op == "MPI_Isend":
			gsBytes += s.Bytes
		case s.Site == "glmax" || s.Site == "glsum":
			reduceBytes += s.Bytes
		}
	}
	if gsBytes <= 10*reduceBytes {
		t.Errorf("face-exchange bytes (%d) must dwarf reduction bytes (%d)", gsBytes, reduceBytes)
	}
}

// TestEndToEndPaperScaledSetup runs a scaled version of the paper's
// Figure 7 configuration through the full mini-app (autotuned gs, modeled
// network) and checks physical and bookkeeping invariants.
func TestEndToEndPaperScaledSetup(t *testing.T) {
	const np = 32
	cfg := solver.DefaultConfig(np, 6, 2)
	cfg.AutoTune = true
	cfg.TuneTrials = 1
	masses := make([]float64, np)
	methods := make([]gs.Method, np)
	stats, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(
			float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
			0.1, 0.6))
		before := s.TotalMass()
		rep := s.Run(2)
		masses[r.ID()] = rep.Mass - before
		methods[r.ID()] = s.GS().Method()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk := 0; rk < np; rk++ {
		if math.Abs(masses[rk]) > 1e-9 {
			t.Errorf("rank %d saw mass drift %v", rk, masses[rk])
		}
		if methods[rk] != methods[0] {
			t.Errorf("ranks disagree on tuned method: %v vs %v", methods[rk], methods[0])
		}
	}
	if methods[0] != gs.Pairwise {
		t.Errorf("CMT-bone tuned to %v, paper: pairwise", methods[0])
	}
	if stats.MaxVirtualTime() <= 0 {
		t.Error("no modeled time accumulated")
	}
}
