package repro

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

// runWithHier runs a small multi-rank solve with collectives either flat
// or hierarchical and returns the physics scalars of the final report.
func runWithHier(t *testing.T, hier bool) (dt, mass, energy, wavespeed float64) {
	t.Helper()
	const np, perNode, steps = 8, 4, 3
	cfg := solver.DefaultConfig(np, 6, 2)
	opts := cfg.CommOptions(netmodel.QDR)
	if hier {
		opts.Hierarchy = comm.BlockHierarchy(np, perNode)
		opts.Collectives = comm.CollHier
	}
	reps := make([]solver.Report, np)
	_, err := comm.Run(np, opts, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(
			float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
			0.1, 0.5))
		reps[r.ID()] = s.Run(steps)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The report's scalars come out of collectives, so every rank must
	// hold the same bits — a divergence here would mean the hierarchical
	// tree combined in a different order on different ranks.
	for rank := 1; rank < np; rank++ {
		if reps[rank] != reps[0] {
			t.Fatalf("hier=%v: rank %d report %+v differs from rank 0's %+v",
				hier, rank, reps[rank], reps[0])
		}
	}
	return reps[0].Dt, reps[0].Mass, reps[0].Energy, reps[0].WaveSpeed
}

// TestHierPhysicsInvariance is the hierarchical-collectives contract at
// the solver level: switching the communicator's collectives between
// flat and two-level trees must not change a single bit of the physics —
// timestep, mass, energy, wave speed — because the hierarchy is only
// enabled on layouts where its combine order reproduces the flat one
// exactly.
func TestHierPhysicsInvariance(t *testing.T) {
	dtF, massF, energyF, wsF := runWithHier(t, false)
	dtH, massH, energyH, wsH := runWithHier(t, true)
	for _, c := range []struct {
		name       string
		flat, hier float64
	}{
		{"dt", dtF, dtH},
		{"mass", massF, massH},
		{"energy", energyF, energyH},
		{"wavespeed", wsF, wsH},
	} {
		if math.Float64bits(c.flat) != math.Float64bits(c.hier) {
			t.Errorf("%s: %v flat, %v hier (not bit-identical)", c.name, c.flat, c.hier)
		}
	}
}
