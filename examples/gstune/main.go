// Gstune: demonstrates the gather-scatter autotuner across machine
// models. The same exchange pattern (CMT-bone's 6-neighbor face stencil
// vs Nekbone's 26-neighbor continuous stencil) can favor different
// algorithms on different fabrics — the reason both the mini-app and its
// parent time all candidates at startup instead of hardcoding one.
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/mesh"
	"repro/internal/netmodel"
)

func main() {
	const (
		ranks = 27
		n     = 5
		local = 2
	)
	procGrid := [3]int{3, 3, 3}
	elemGrid := [3]int{3 * local, 3 * local, 3 * local}
	periodic := [3]bool{true, true, true}
	box, err := mesh.NewBox(procGrid, elemGrid, n, periodic)
	if err != nil {
		log.Fatal(err)
	}

	patterns := []struct {
		name string
		ids  func(*mesh.Local) []int64
	}{
		{"CMT-bone faces (6-neighbor)", func(l *mesh.Local) []int64 { return l.DGFaceIDs() }},
		{"Nekbone continuous (26-neighbor)", func(l *mesh.Local) []int64 { return l.ContinuousIDs() }},
	}

	for _, model := range []netmodel.Model{netmodel.QDR, netmodel.GigE, netmodel.Exascale} {
		fmt.Printf("=== network: %s ===\n", model)
		for _, pat := range patterns {
			var choice gs.Method
			var neighbors int
			_, err := comm.Run(ranks, comm.Options{Model: model, Grid: procGrid, Periodic: periodic},
				func(r *comm.Rank) error {
					g := gs.Setup(r, pat.ids(box.Partition(r.ID())))
					m, _ := gs.TuneModeled(g, 2)
					if r.ID() == 13 { // interior rank
						choice = m
						neighbors = len(g.Neighbors())
					}
					return nil
				})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-34s neighbors=%2d  -> %s\n", pat.name, neighbors, choice)
		}
		fmt.Println()
	}
}
