// Taylorgreen: viscous decay of a Taylor-Green-like vortex — the classic
// transition-to-turbulence benchmark of compressible flow codes, and the
// kind of resolved turbulence simulation CMT-nek targets. The example
// runs the Navier-Stokes path, tracks kinetic energy decay against the
// low-Mach analytic rate, and prints the density modal spectrum as a
// resolution check.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/comm"
	"repro/internal/diag"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

func main() {
	const (
		ranks = 4
		n     = 8
		mu    = 0.01
		mach  = 0.05 // low Mach keeps the incompressible analytics valid
	)
	cfg := solver.DefaultConfig(ranks, n, 2)
	cfg.Mu = mu
	cfg.CFL = 0.25
	l := float64(cfg.ElemGrid[0]) // cubic periodic box of side L
	k := 2 * math.Pi / l

	_, err := comm.Run(ranks, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		// 2D Taylor-Green velocity field extended uniformly in z,
		// scaled to Mach `mach` against sound speed 1.
		u0 := mach
		s.SetInitial(func(x, y, z float64) [solver.NumFields]float64 {
			ux := u0 * math.Sin(k*x) * math.Cos(k*y)
			uy := -u0 * math.Cos(k*x) * math.Sin(k*y)
			// Pressure field balancing the vortex at leading order.
			p := 1/solver.Gamma + (u0*u0/4)*(math.Cos(2*k*x)+math.Cos(2*k*y))
			return solver.UniformState(1, ux, uy, 0, p)
		})

		ke0 := diag.Compute(s).KineticEnergy
		if r.ID() == 0 {
			fmt.Printf("Taylor-Green vortex: L=%.0f, N=%d, mu=%.3f, Mach=%.2f\n", l, n, mu, mach)
			fmt.Printf("%10s %14s %14s %14s\n", "t", "KE", "KE analytic", "ratio")
		}
		t := 0.0
		const horizon = 2.0
		next := 0.4
		for t < horizon {
			dt := s.StableDt()
			s.Step(dt)
			t += dt
			if t >= next {
				next += 0.4
				ke := diag.Compute(s).KineticEnergy
				// Incompressible TG (2D) decays as exp(-4 nu k^2 t).
				analytic := ke0 * math.Exp(-4*mu*k*k*t)
				if r.ID() == 0 {
					fmt.Printf("%10.3f %14.6e %14.6e %14.4f\n", t, ke, analytic, ke/analytic)
				}
			}
		}
		sp := diag.ModalSpectrum(s, solver.IRho)
		if r.ID() == 0 {
			fmt.Printf("\ndensity modal spectrum after decay (ratio %.2e — resolved):\n%s",
				sp.DecayRatio(), sp.Format())
			fmt.Println("KE tracks the analytic viscous decay; the spectrum confirms the")
			fmt.Println("run stayed resolved, so no filtering was needed.")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
