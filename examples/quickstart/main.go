// Quickstart: the smallest end-to-end CMT-bone run. Eight in-process
// ranks advance an acoustic pulse on a periodic 4x4x4-element box and
// print the conservation check and timing summary — the mini-app's
// equivalent of "hello, world".
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

func main() {
	const (
		ranks = 8
		n     = 6 // GLL points per direction (polynomial degree 5)
		steps = 10
	)

	// A default configuration factors the ranks into a near-cubic
	// processor grid (2x2x2 here) and gives each rank 2x2x2 elements.
	cfg := solver.DefaultConfig(ranks, n, 2)

	var before, after [ranks]float64
	stats, err := comm.Run(ranks, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		// A small density/pressure bump in the middle of the box.
		s.SetInitial(solver.GaussianPulse(2, 2, 2, 0.1, 0.5))

		before[r.ID()] = s.TotalMass()
		rep := s.Run(steps)
		after[r.ID()] = rep.Mass

		if r.ID() == 0 {
			fmt.Printf("ran %d steps, dt=%.3e, max wave speed %.4f\n",
				rep.Steps, rep.Dt, rep.WaveSpeed)
			fmt.Printf("flops per rank: %.3g\n", float64(rep.Ops.Flops()))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mass before %.12f -> after %.12f (conserved to %.1e)\n",
		before[0], after[0], after[0]-before[0])
	fmt.Printf("wall time %.3fs, modeled cluster makespan %.6fs\n",
		stats.Wall, stats.MaxVirtualTime())
}
