// Scaling: a weak-scaling study of CMT-bone under the network model —
// the co-design question the mini-app exists to answer. The per-rank
// problem is held fixed while the rank count grows; for each size the
// example reports the modeled makespan, the modeled MPI fraction, and the
// communication volume, on two machine models (QDR Infiniband and a
// notional exascale fabric).
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

func main() {
	const (
		n     = 6
		local = 2 // elements per rank per direction
		steps = 2
	)
	fmt.Printf("CMT-bone weak scaling: %dx%dx%d elements/rank, N=%d, %d steps\n\n",
		local, local, local, n, steps)
	fmt.Printf("%8s %-20s %16s %10s %14s\n",
		"ranks", "network", "makespan (s)", "MPI %", "bytes/rank")

	for _, model := range []netmodel.Model{netmodel.QDR, netmodel.Exascale} {
		for _, p := range []int{1, 8, 27, 64} {
			cfg := solver.DefaultConfig(p, n, local)
			stats, err := comm.Run(p, cfg.CommOptions(model), func(r *comm.Rank) error {
				s, err := solver.New(r, cfg)
				if err != nil {
					return err
				}
				s.SetInitial(solver.GaussianPulse(
					float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
					0.1, 0.5))
				s.Run(steps)
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			makespan := stats.MaxVirtualTime()
			fr := stats.RankMPIFractions()
			mpiFrac, bytesPerRank := 0.0, int64(0)
			for _, f := range fr {
				mpiFrac += f.FracModeled()
			}
			mpiFrac /= float64(len(fr))
			for _, site := range stats.AggregateSites() {
				bytesPerRank += site.Bytes
			}
			bytesPerRank /= int64(p)
			fmt.Printf("%8d %-20s %16.6f %9.2f%% %14d\n",
				p, model.Name, makespan, 100*mpiFrac, bytesPerRank)
		}
		fmt.Println()
	}
	fmt.Println("Weak scaling holds when the makespan stays flat as ranks grow;")
	fmt.Println("the rising MPI share with rank count is the co-design signal the")
	fmt.Println("paper's Section VI feeds into network models.")
}
