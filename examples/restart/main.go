// Restart: checkpoint/restart around a simulated failure. The run
// advances, checkpoints every few steps, "crashes", and resumes from the
// latest checkpoint — then verifies the resumed trajectory matches an
// uninterrupted run bit-for-bit (the determinism long campaigns rely on).
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

func main() {
	const (
		ranks      = 4
		n          = 6
		totalSteps = 12
		ckptEvery  = 4
	)
	dir, err := os.MkdirTemp("", "cmtbone-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := solver.DefaultConfig(ranks, n, 2)
	ic := solver.GaussianPulse(2, 2, 2, 0.1, 0.5)

	// Reference: uninterrupted run.
	reference := make([][]float64, ranks)
	_, err = comm.Run(ranks, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(ic)
		s.Run(totalSteps)
		reference[r.ID()] = append([]float64(nil), s.U[solver.IEnergy]...)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Interrupted run: advance 8 steps with periodic checkpoints, then
	// "crash" (drop all in-memory state).
	_, err = comm.Run(ranks, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(ic)
		for step := 1; step <= 8; step++ {
			s.Step(s.StableDt())
			if step%ckptEvery == 0 {
				tag := fmt.Sprintf("step%03d", step)
				if err := checkpoint.WriteFile(dir, tag, s, int64(step), 0); err != nil {
					return err
				}
				if r.ID() == 0 {
					fmt.Printf("checkpointed at step %d -> %s\n", step, checkpoint.FilePath(dir, tag, 0))
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated crash after step 8; resuming from step 8 checkpoint")

	// Resume from the latest checkpoint and finish the campaign.
	maxDiff := make([]float64, ranks)
	_, err = comm.Run(ranks, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		snap, err := checkpoint.ReadFile(dir, "step008", r.ID())
		if err != nil {
			return err
		}
		step, _, err := checkpoint.Restore(s, snap)
		if err != nil {
			return err
		}
		s.Run(totalSteps - int(step))
		for i, v := range s.U[solver.IEnergy] {
			if d := math.Abs(v - reference[r.ID()][i]); d > maxDiff[r.ID()] {
				maxDiff[r.ID()] = d
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0.0
	for _, d := range maxDiff {
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("resumed run vs uninterrupted run: max |diff| = %.3g\n", worst)
	if worst == 0 {
		fmt.Println("bit-identical resume: checkpoints capture the full state")
	}
}
