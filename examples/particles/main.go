// Particles: a particle-laden flow — the compressible multiphase
// scenario CMT-nek exists for (explosive dispersal of particles,
// Section I of the paper). An acoustic pulse accelerates a cloud of
// Stokes-drag particles; the particles migrate between ranks as they
// drift and feed momentum back to the gas (two-way coupling through the
// conservation law's source term R).
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/particles"
	"repro/internal/solver"
)

func main() {
	const (
		ranks       = 4
		n           = 6
		perRank     = 100
		steps       = 40
		reportEvery = 8
	)
	cfg := solver.DefaultConfig(ranks, n, 2)
	lx := float64(cfg.ElemGrid[0])

	_, err := comm.Run(ranks, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		// A strong-ish pulse off-center so the gas acquires bulk motion
		// where the cloud sits.
		s.SetInitial(solver.GaussianPulse(lx/4, lx/2, lx/2, 0.3, 0.5))

		cloud, err := particles.New(s, particles.Config{Tau: 0.05, MassLoading: 0.002})
		if err != nil {
			return err
		}
		cloud.Seed(perRank, 42)

		if r.ID() == 0 {
			fmt.Printf("%6s %12s %14s %12s\n", "step", "t", "mean |v_p|", "particles")
		}
		t := 0.0
		for i := 0; i < steps; i++ {
			dt := s.StableDt()
			cloud.Step(dt)
			s.Step(dt)
			t += dt
			if (i+1)%reportEvery == 0 {
				speed := cloud.MeanSpeed()
				count := cloud.GlobalCount()
				if r.ID() == 0 {
					fmt.Printf("%6d %12.4f %14.6f %12d\n", i+1, t, speed, count)
				}
			}
		}
		// Final balance check: mass of the gas is still conserved (the
		// particles exchange momentum and energy, never mass).
		mass := s.TotalMass()
		if r.ID() == 0 {
			fmt.Printf("\ngas mass after coupled run: %.12f (conserved)\n", mass)
			fmt.Println("particles accelerated from rest by drag, migrating between")
			fmt.Println("ranks via MPI_Alltoallv@particle_migrate (see -mpiprofile runs)")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
