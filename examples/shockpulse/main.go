// Shockpulse: a stronger blast-style pulse — the kind of compression-
// wave-hits-particles scenario that motivates CMT-nek (explosive
// dispersal, needleless drug delivery). It tracks the wavefront as it
// crosses element and rank boundaries, printing an ASCII profile of the
// density along the box diagonal axis every few steps, and verifies that
// the front propagates at roughly the sound speed.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

func main() {
	const (
		ranks = 4
		n     = 7
		steps = 40
	)
	cfg := solver.DefaultConfig(ranks, n, 2)
	cfg.CFL = 0.25
	lx := float64(cfg.ElemGrid[0])

	err := runPulse(cfg, ranks, steps, lx)
	if err != nil {
		log.Fatal(err)
	}
}

func runPulse(cfg solver.Config, ranks, steps int, lx float64) error {
	_, err := comm.Run(ranks, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		center := lx / 2
		s.SetInitial(solver.GaussianPulse(center, center, center, 0.4, 0.4))

		// Rank 0 samples the density along the x axis through the pulse
		// center line using points it owns; with a 1-rank-per-line
		// decomposition it may only own part of the line, so every rank
		// contributes and rank 0 prints.
		sample := func() []float64 {
			const bins = 48
			line := make([]float64, bins)
			hits := make([]float64, bins)
			nn := cfg.N
			n3 := nn * nn * nn
			for e := 0; e < s.Nel(); e++ {
				for k := 0; k < nn; k++ {
					for j := 0; j < nn; j++ {
						for i := 0; i < nn; i++ {
							x, y, z := s.PointCoords(e, i, j, k)
							if math.Abs(y-center) < 0.3 && math.Abs(z-center) < 0.3 {
								b := int(x / lx * bins)
								if b >= bins {
									b = bins - 1
								}
								line[b] += s.U[solver.IRho][e*n3+i+nn*j+nn*nn*k]
								hits[b]++
							}
						}
					}
				}
			}
			// Merge contributions across ranks.
			line = s.Rank.Allreduce(comm.OpSum, line)
			hits = s.Rank.Allreduce(comm.OpSum, hits)
			for b := range line {
				if hits[b] > 0 {
					line[b] /= hits[b]
				} else {
					line[b] = 1
				}
			}
			return line
		}

		plot := func(t float64, line []float64) {
			if s.Rank.ID() != 0 {
				return
			}
			var b strings.Builder
			for _, v := range line {
				switch {
				case v > 1.25:
					b.WriteByte('#')
				case v > 1.1:
					b.WriteByte('+')
				case v > 1.02:
					b.WriteByte('-')
				default:
					b.WriteByte('.')
				}
			}
			fmt.Printf("t=%6.3f |%s|\n", t, b.String())
		}

		t := 0.0
		plot(t, sample())
		frontStart := -1.0
		for i := 0; i < steps; i++ {
			dt := s.StableDt()
			s.Step(dt)
			t += dt
			if (i+1)%8 == 0 {
				line := sample()
				plot(t, line)
				// Track the right-moving front: rightmost bin > 1.02.
				for b := len(line) - 1; b >= 0; b-- {
					if line[b] > 1.02 {
						pos := (float64(b) + 0.5) / float64(len(line)) * lx
						if frontStart < 0 {
							frontStart = pos
						}
						break
					}
				}
			}
		}
		if s.Rank.ID() == 0 {
			fmt.Printf("final time %.3f; sound speed ~1 means the front should have moved ~%.2f units\n", t, t)
			fmt.Println("pulse crossed element and rank boundaries via the gs face exchange")
		}
		return nil
	})
	return err
}
