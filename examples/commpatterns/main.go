// Commpatterns: a tour of the message-passing substrate itself — the
// runtime that stands in for MPI. It demonstrates sub-communicators,
// per-message tracing, transport calibration, and the virtual-clock
// machinery behind the modeled timings, all independent of the solver.
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/netmodel"
)

func main() {
	// 1. Calibrate an alpha-beta model to this host's real transport and
	// place it among the hardware presets.
	host, err := comm.CalibrateModel("this-host", nil, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transport models (latency / inverse bandwidth):")
	for _, m := range []netmodel.Model{host, netmodel.QDR, netmodel.GigE, netmodel.Exascale} {
		fmt.Printf("  %-18s alpha=%8.2ens  beta=%8.3f ns/KiB\n",
			m.Name, m.Alpha*1e9, m.Beta*1e9*1024)
	}

	// 2. Trace every wire message of a small run: an allreduce's
	// recursive-doubling rounds become visible.
	var tracer comm.MemTracer
	_, err = comm.Run(8, comm.Options{Model: netmodel.QDR, Tracer: &tracer,
		Grid: [3]int{2, 2, 2}}, func(r *comm.Rank) error {
		r.SetSite("demo_allreduce")
		r.Allreduce(comm.OpSum, []float64{float64(r.ID())})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := tracer.Summarize()
	fmt.Printf("\nallreduce on 8 ranks: %d wire messages (recursive doubling: 8 x log2(8)),\n",
		sum.Messages)
	fmt.Printf("  %d bytes total, mean hop distance %.2f on the 2x2x2 grid\n",
		sum.Bytes, sum.MeanHops)

	// 3. Sub-communicators: split the world into rows and reduce within
	// each row independently.
	rowSums := make([]float64, 8)
	_, err = comm.Run(8, comm.Options{Model: netmodel.QDR}, func(r *comm.Rank) error {
		row := r.ID() / 4 // two rows of four
		g := r.Split(row, r.ID())
		v := g.Allreduce(comm.OpSum, []float64{float64(r.ID())})
		rowSums[r.ID()] = v[0]
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrow-wise reductions via Split: row 0 sum = %.0f (0+1+2+3), row 1 sum = %.0f (4+5+6+7)\n",
		rowSums[0], rowSums[7])

	// 4. Virtual clocks: the same program yields modeled times under any
	// fabric — the mechanism behind every modeled column in this repo.
	for _, m := range []netmodel.Model{netmodel.QDR, netmodel.GigE} {
		stats, err := comm.Run(4, comm.Options{Model: m}, func(r *comm.Rank) error {
			for i := 0; i < 50; i++ {
				r.Allreduce(comm.OpSum, make([]float64, 128))
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("50 allreduces of 1KiB on 4 ranks: modeled %8.1fus on %s\n",
			stats.MaxVirtualTime()*1e6, m.Name)
	}
}
