//go:build race

package repro

// raceEnabled reports that the race detector is active; timing-ratio
// assertions are skipped because instrumentation overhead distorts the
// relative speed of loop structures.
const raceEnabled = true
