#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the simulation job server:
# start cmtserve, submit a job over HTTP, poll it to completion, stream
# its steps, then SIGINT the server and assert a clean shutdown with
# telemetry flushed. Exercises exactly the lifecycle an operator sees.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
logfile="$workdir/cmtserve.log"
metrics="$workdir/metrics.json"
bin="$workdir/cmtserve"

cleanup() {
    if [[ -n "${srv_pid:-}" ]] && kill -0 "$srv_pid" 2>/dev/null; then
        kill -9 "$srv_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building cmtserve"
go build -o "$bin" ./cmd/cmtserve

# Port 0 would be ideal but the log line carries the resolved address;
# pick an uncommon fixed port and let the OS complain if taken.
addr="127.0.0.1:18371"
"$bin" -addr "$addr" -slots 2 -metrics "$metrics" >"$logfile" 2>&1 &
srv_pid=$!

echo "== waiting for the server to listen"
for _ in $(seq 1 50); do
    if grep -q "listening on" "$logfile" 2>/dev/null; then break; fi
    if ! kill -0 "$srv_pid" 2>/dev/null; then
        echo "FAIL: server exited early"; cat "$logfile"; exit 1
    fi
    sleep 0.1
done
grep -q "listening on" "$logfile" || { echo "FAIL: server never listened"; cat "$logfile"; exit 1; }

echo "== submitting a job"
created=$(curl -sf -X POST "http://$addr/jobs" \
    -d '{"tenant":"smoke","ranks":2,"local_elems":1,"steps":8}')
echo "$created"
job_id=$(echo "$created" | sed -n 's/.*"id": *\([0-9]*\).*/\1/p' | head -1)
[[ -n "$job_id" ]] || { echo "FAIL: no job id in response"; exit 1; }

echo "== rejecting a bad spec (expect 400)"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/jobs" -d '{"priority":1}')
[[ "$code" == "400" ]] || { echo "FAIL: bad spec returned $code, want 400"; exit 1; }

echo "== polling job $job_id to completion"
state=""
for _ in $(seq 1 100); do
    state=$(curl -sf "http://$addr/jobs/$job_id" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    [[ "$state" == "done" ]] && break
    [[ "$state" == "failed" || "$state" == "canceled" ]] && { echo "FAIL: job ended $state"; exit 1; }
    sleep 0.1
done
[[ "$state" == "done" ]] || { echo "FAIL: job never completed (state: $state)"; exit 1; }

echo "== streaming step events"
steps=$(curl -sfN "http://$addr/jobs/$job_id/steps" | grep -c '"step"' || true)
[[ "$steps" -ge 8 ]] || { echo "FAIL: streamed $steps step lines, want >= 8"; exit 1; }

echo "== checking /stats and /metrics"
curl -sf "http://$addr/stats" | grep -q '"slots"' || { echo "FAIL: /stats"; exit 1; }
curl -sf "http://$addr/metrics" | grep -q 'serve_jobs_done' || { echo "FAIL: /metrics"; exit 1; }

echo "== SIGINT: clean shutdown with telemetry flush"
kill -INT "$srv_pid"
for _ in $(seq 1 100); do
    kill -0 "$srv_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$srv_pid" 2>/dev/null; then
    echo "FAIL: server still running 10s after SIGINT"; exit 1
fi
wait "$srv_pid" 2>/dev/null || true
srv_pid=""

grep -q "shutdown complete, telemetry flushed" "$logfile" || {
    echo "FAIL: no clean-shutdown marker in log"; cat "$logfile"; exit 1; }
[[ -s "$metrics" ]] || { echo "FAIL: metrics snapshot not written"; exit 1; }
grep -q '"counters"' "$metrics" || { echo "FAIL: metrics snapshot malformed"; exit 1; }
grep -q 'serve_jobs_done' "$metrics" || { echo "FAIL: job counters missing from snapshot"; exit 1; }

echo "PASS: serve smoke"
