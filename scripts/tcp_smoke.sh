#!/usr/bin/env bash
# tcp_smoke.sh — end-to-end check that the TCP transport reproduces the
# in-process backend exactly: run the canonical scalebench smoke scenario
# once in a single process and once as 4 OS processes over localhost TCP,
# then require the two diagnostics files (physics scalars, per-rank
# virtual clocks, and the collectively-computed makespan) to be
# byte-identical.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d "${TMPDIR:-/tmp}/tcp_smoke.XXXXXX")
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/scalebench" ./cmd/scalebench

echo "== in-process run =="
"$workdir/scalebench" -smoke -smoke-json "$workdir/inproc.json"

echo "== 4-process TCP run =="
scripts/mpirun_tcp.sh 4 "$workdir/scalebench" -smoke -smoke-json "$workdir/tcp.json"

if ! cmp "$workdir/inproc.json" "$workdir/tcp.json"; then
    echo "tcp_smoke: FAIL — diagnostics differ between transports:" >&2
    diff "$workdir/inproc.json" "$workdir/tcp.json" >&2 || true
    exit 1
fi
echo "tcp_smoke: OK — in-process and 4-process TCP diagnostics are byte-identical"
