#!/usr/bin/env bash
# tcp_smoke.sh — end-to-end check that the TCP transport reproduces the
# in-process backend exactly: run the canonical scalebench smoke scenario
# once in a single process, once as 4 OS processes over localhost TCP
# with file rendezvous, and once as 4 processes discovering each other
# through a cmtbroker, then require all three diagnostics files (physics
# scalars, per-rank virtual clocks, and the collectively-computed
# makespan) to be byte-identical.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d "${TMPDIR:-/tmp}/tcp_smoke.XXXXXX")
broker_pid=""
cleanup() {
    if [ -n "$broker_pid" ]; then kill "$broker_pid" 2>/dev/null || true; fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/scalebench" ./cmd/scalebench
go build -o "$workdir/cmtbroker" ./cmd/cmtbroker

echo "== in-process run =="
"$workdir/scalebench" -smoke -smoke-json "$workdir/inproc.json"

echo "== 4-process TCP run (file rendezvous) =="
scripts/mpirun_tcp.sh 4 "$workdir/scalebench" -smoke -smoke-json "$workdir/tcp.json"

if ! cmp "$workdir/inproc.json" "$workdir/tcp.json"; then
    echo "tcp_smoke: FAIL — diagnostics differ between transports:" >&2
    diff "$workdir/inproc.json" "$workdir/tcp.json" >&2 || true
    exit 1
fi

echo "== 4-process TCP run (cmtbroker rendezvous) =="
"$workdir/cmtbroker" -listen 127.0.0.1:0 > "$workdir/broker.out" &
broker_pid=$!
addr=""
for _ in $(seq 100); do
    addr=$(sed -n 's/^cmtbroker listening on //p' "$workdir/broker.out")
    if [ -n "$addr" ]; then break; fi
    sleep 0.05
done
if [ -z "$addr" ]; then
    echo "tcp_smoke: FAIL — cmtbroker did not come up" >&2
    exit 1
fi
MPIRUN_RDV="tcp://$addr/smoke" scripts/mpirun_tcp.sh 4 "$workdir/scalebench" -smoke -smoke-json "$workdir/broker.json"

if ! cmp "$workdir/inproc.json" "$workdir/broker.json"; then
    echo "tcp_smoke: FAIL — diagnostics differ under broker rendezvous:" >&2
    diff "$workdir/inproc.json" "$workdir/broker.json" >&2 || true
    exit 1
fi
echo "tcp_smoke: OK — in-process, file-rendezvous, and broker-rendezvous diagnostics are byte-identical"
