#!/usr/bin/env bash
# mpirun_tcp.sh — launch an N-process TCP-transport run on one host.
#
#   scripts/mpirun_tcp.sh NP CMD [ARGS...]
#
# Forks NP copies of CMD, appending `-transport=tcp -rank=$i -rdv=$file`
# to each, where $file is a fresh rendezvous file: rank 0 listens on an
# ephemeral port and publishes its address there, the other ranks poll
# the file and dial in (so no ports need reserving up front). Waits for
# every process and exits nonzero if any rank failed.
#
# Set MPIRUN_RDV to override the rendezvous — e.g. a cmtbroker URL
# (tcp://host:port/job) for runs with no shared filesystem.
#
#   scripts/mpirun_tcp.sh 4 ./bin/cmtbone -np 4 -steps 2
#   scripts/mpirun_tcp.sh 4 ./bin/scalebench -smoke -smoke-json b.json
#   MPIRUN_RDV=tcp://127.0.0.1:9333/job1 scripts/mpirun_tcp.sh 4 ./bin/cmtbone -np 4
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 NP CMD [ARGS...]" >&2
    exit 2
fi
np=$1
shift
case $np in
    ''|*[!0-9]*) echo "$0: NP must be a positive integer, got '$np'" >&2; exit 2 ;;
esac
if [ "$np" -lt 1 ]; then
    echo "$0: NP must be >= 1" >&2
    exit 2
fi

rdv=${MPIRUN_RDV:-}
rdv_file=""
if [ -z "$rdv" ]; then
    rdv=$(mktemp -u "${TMPDIR:-/tmp}/mpirun_tcp.XXXXXX")
    rdv_file=$rdv
fi
pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    if [ -n "$rdv_file" ]; then rm -f "$rdv_file"; fi
}
trap cleanup EXIT INT TERM

for ((i = 0; i < np; i++)); do
    "$@" -transport=tcp -rank="$i" -rdv="$rdv" &
    pids+=($!)
done

status=0
for ((i = 0; i < np; i++)); do
    if ! wait "${pids[$i]}"; then
        echo "$0: rank $i exited nonzero" >&2
        status=1
    fi
done
pids=()
exit $status
