// Command cmtserve is the simulation-as-a-service front end: a
// multi-tenant HTTP job server over the in-process CMT-bone solver.
// Clients POST simulation specs to /jobs; the server admits, queues,
// and runs them over a fixed pool of runner slots with per-tenant
// quotas, fair-share dispatch, and priority preemption through
// in-memory checkpoints (see internal/serve).
//
// Example:
//
//	cmtserve -addr :8080 -slots 2 &
//	curl -s localhost:8080/jobs -d '{"tenant":"demo","ranks":4,"steps":20}'
//	curl -s localhost:8080/jobs/1
//	curl -sN localhost:8080/jobs/1/steps
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmtserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	slots := flag.Int("slots", 2, "runner slots (jobs executing concurrently)")
	maxRanks := flag.Int("max-ranks", 0, "admission limit: ranks per job (0 = default)")
	maxN := flag.Int("max-n", 0, "admission limit: polynomial order (0 = default)")
	maxSteps := flag.Int("max-steps", 0, "admission limit: step budget (0 = default)")
	maxElems := flag.Int("max-elems", 0, "admission limit: global elements per job (0 = default)")
	maxQueued := flag.Int("max-queued", 0, "per-tenant queued-job quota (0 = default)")
	maxRunning := flag.Int("max-running", 0, "per-tenant running-job quota (0 = default)")
	metricsOut := flag.String("metrics", "", "write the final metrics-registry snapshot as JSON to this file at shutdown")
	cli.Parse()

	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{
		Slots: *slots,
		Limits: serve.Limits{
			MaxRanks: *maxRanks, MaxN: *maxN, MaxSteps: *maxSteps,
			MaxElems: *maxElems, MaxQueuedPerTenant: *maxQueued,
			MaxRunningPerTenant: *maxRunning,
		},
		Metrics: reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("cmtserve: listening on %s (%d slots)\n", ln.Addr(), *slots)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sigc:
		log.Printf("%v: draining jobs and shutting down", s)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	// Stop accepting, cancel every job (running jobs stop collectively at
	// their next step boundary), drain the slots, then flush telemetry.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Shutdown()

	if *metricsOut != "" {
		if err := writeSnapshot(*metricsOut, reg); err != nil {
			log.Fatalf("-metrics: %v", err)
		}
	}
	fmt.Println("cmtserve: shutdown complete, telemetry flushed")
}

func writeSnapshot(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
