// Command cmtbroker is the TCP rendezvous broker for multi-process runs:
// it lets the ranks of a distributed cmtbone job discover each other's
// mesh addresses over the network instead of through a shared rendezvous
// file. Start it once:
//
//	cmtbroker -listen 0.0.0.0:9333
//
// then point every rank of every job at it:
//
//	cmtbone -transport=tcp -np 4 -rank $i -rdv tcp://broker-host:9333/myjob
//
// One broker serves any number of concurrent jobs, keyed by the job name
// in the rendezvous URL. The broker only brokers bootstrap — application
// traffic flows directly between the ranks.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/comm/tcptransport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9333", "address to listen on (host:port; port 0 picks one)")
	cli.Parse()

	b, err := tcptransport.NewBroker(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cmtbroker listening on %s\n", b.Addr())
	fmt.Printf("point ranks at: -rdv tcp://%s/<job>\n", b.Addr())
	if err := b.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
