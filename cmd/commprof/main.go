// Command commprof reproduces the paper's profiling figures from one
// CMT-bone run: the gprof-style execution profile (Figure 4), the
// per-rank MPI time fractions (Figure 8, mpiP), the top-20 MPI call sites
// (Figure 9), and the message-size table (Figure 10).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("commprof: ")

	np := flag.Int("np", 8, "number of ranks (the paper's Figure 4 uses 8)")
	n := flag.Int("n", 8, "GLL points per direction per element")
	local := flag.Int("local", 2, "elements per rank per direction")
	steps := flag.Int("steps", 5, "timesteps")
	netName := flag.String("net", netmodel.QDR.Name, "network model: "+strings.Join(netmodel.Names(), ", "))
	which := flag.String("profile", "all", "which profile to print: exec, mpirank, mpitop, mpisize, all")
	modeled := flag.Bool("modeled", true, "base Figure 8 fractions on modeled (cluster) time instead of host wall time")
	traceFile := flag.String("trace", "", "write a per-message CSV trace to this file (network-model input)")
	traceCap := flag.Int("trace-cap", 0, "cap the in-memory message trace at this many events (0 = unbounded); excess events are counted, not stored")
	cli.Parse()

	model, err := netmodel.ByName(*netName)
	if err != nil {
		log.Fatalf("-net: %v", err)
	}
	cfg := solver.DefaultConfig(*np, *n, *local)

	opts := cfg.CommOptions(model)
	var tracer *comm.MemTracer
	if *traceFile != "" {
		tracer = &comm.MemTracer{Cap: *traceCap}
		opts.Tracer = tracer
	}

	profs := make([]*prof.Profiler, *np)
	stats, err := comm.Run(*np, opts, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(
			float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
			0.1, 0.5))
		s.Run(*steps)
		profs[r.ID()] = s.Prof
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CMT-bone profile run: %d ranks, N=%d, %d elements/rank, %d steps, net=%s\n\n",
		*np, *n, (*local)*(*local)*(*local), *steps, model.Name)

	show := func(name string) bool { return *which == "all" || *which == name }
	if show("exec") {
		fmt.Print(report.Fig4ExecutionProfile(profs, stats))
		fmt.Println()
	}
	if show("mpirank") {
		fmt.Print(report.Fig8MPIFractions(stats.RankMPIFractions(), *modeled))
		fmt.Println()
	}
	if show("mpitop") {
		fmt.Print(report.Fig9TopMPICalls(stats.AggregateSites(), 20, stats.TotalAppWall()))
		fmt.Println()
	}
	if show("mpisize") {
		fmt.Print(report.Fig10MessageSizes(stats.AggregateSites(), 12))
	}
	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		sum := tracer.Summarize()
		fmt.Printf("\ntrace: %d messages, %d bytes (mean %.1f B, mean %.2f hops) -> %s\n",
			sum.Messages, sum.Bytes, sum.MeanBytes, sum.MeanHops, *traceFile)
		if sum.Dropped > 0 {
			fmt.Printf("trace: -trace-cap %d reached, %d further events dropped (excluded from the totals above)\n",
				*traceCap, sum.Dropped)
		}
	}
}
