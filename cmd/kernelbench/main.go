// Command kernelbench reproduces the paper's Figures 5 and 6: the
// performance statistics of the derivative-computing kernel (dudr, duds,
// dudt) with and without the loop transformations CMT-bone inherits from
// Nek5000. Runtime is measured on the host; total instructions and cycles
// come from the hw model standing in for PAPI.
//
// The paper's exact workload is -n 5 -nel 1563 -steps 1000 on the AMD
// Opteron 6378.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/hw"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/sem"
)

func traitsFor(dir sem.Direction, v sem.KernelVariant) hw.Traits {
	switch {
	case dir == sem.DirR && v == sem.Optimized:
		return hw.DudrOptimized
	case dir == sem.DirR:
		return hw.DudrBasic
	case dir == sem.DirS && v == sem.Optimized:
		return hw.DudsOptimized
	case dir == sem.DirS:
		return hw.DudsBasic
	case dir == sem.DirT && v == sem.Optimized:
		return hw.DudtOptimized
	default:
		return hw.DudtBasic
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kernelbench: ")

	n := flag.Int("n", 5, "GLL points per direction per element")
	nel := flag.Int("nel", 1563, "number of elements")
	steps := flag.Int("steps", 100, "timesteps (the paper uses 1000)")
	variantName := flag.String("variant", "both", "kernel variant: optimized, basic, or both")
	machineName := flag.String("machine", hw.Opteron6378.Name, "hw model machine: opteron-6378, i5-2500, generic")
	sweep := flag.Bool("sweep", false, "sweep N over the paper's 5..25 range (constant total points) instead of one N")
	mxm := flag.Bool("mxm", false, "benchmark the mxm variants across the small-k range (generated/SIMD/auto included)")
	tune := flag.Bool("tune", true, "run the mxm autotuner before the -mxm sweep (the auto column reflects the tuned table)")
	workers := flag.Int("workers", 1, "intra-rank worker pool width for the element loop (0 = NumCPU)")
	workerSweep := flag.Bool("workersweep", false, "sweep the worker count 1,2,4..NumCPU on the derivative kernel")
	jsonPath := flag.String("json", "", "write the worker-sweep and/or mxm-sweep records to this JSON file")
	cli.Parse()

	if *workers == 0 {
		*workers = runtime.NumCPU()
	}

	machine, err := cli.ParseMachine(*machineName)
	if err != nil {
		log.Fatalf("-machine: %v", err)
	}

	var variants []sem.KernelVariant
	switch *variantName {
	case "optimized":
		variants = []sem.KernelVariant{sem.Optimized}
	case "basic":
		variants = []sem.KernelVariant{sem.Basic}
	case "both":
		variants = []sem.KernelVariant{sem.Optimized, sem.Basic}
	default:
		log.Fatalf("-variant: want optimized, basic, or both, got %q", *variantName)
	}

	if *mxm || *workerSweep {
		var results []report.BenchResult
		if *workerSweep {
			results = append(results, bench.SweepResults(runWorkerSweep(variants[0], *n, *nel, *steps))...)
		}
		if *mxm {
			results = append(results, bench.MxMResults(runMxM(*tune))...)
		}
		if *jsonPath != "" {
			traj := report.New(results)
			if err := traj.WriteFile(*jsonPath); err != nil {
				log.Fatalf("-json: %v", err)
			}
			fmt.Printf("\nwrote %d results to %s (schema v%d)\n", len(traj.Results), *jsonPath, report.SchemaVersion)
		}
		return
	}
	if *sweep {
		runSweep(machine, variants, *steps)
		return
	}
	runOne(machine, variants, *n, *nel, *steps, *workers)
}

// runWorkerSweep times the derivative kernel across worker counts and
// prints wall time and speedup versus serial. The measurement core
// lives in internal/bench so cmd/benchdiff can re-run the identical
// sweep; the caller records the returned records as a schema-versioned
// report.Trajectory.
func runWorkerSweep(v sem.KernelVariant, n, nel, steps int) []bench.SweepRecord {
	fmt.Printf("Derivative kernel worker sweep: N=%d, Nel=%d, %d steps, NumCPU=%d (%v)\n\n",
		n, nel, steps, runtime.NumCPU(), v)
	fmt.Printf("%8s %6s %12s %10s %9s\n", "workers", "dir", "wall(s)", "Gflop/s", "speedup")

	return bench.WorkerSweep(bench.SweepOptions{
		N: n, Nel: nel, Steps: steps, Variant: v,
		Each: func(r bench.SweepRecord) {
			fmt.Printf("%8d %6s %12.4f %10.2f %8.2fx\n", r.Workers, r.Dir, r.Wall, r.Gflops, r.Speedup)
		},
	})
}

// runOne benchmarks the three derivative directions at one (N, Nel) and
// prints the Figure 5/6 tables.
func runOne(machine hw.Machine, variants []sem.KernelVariant, n, nel, steps, workers int) {
	ref := sem.NewRef1D(n)
	n3 := n * n * n
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, nel*n3)
	for i := range u {
		u[i] = rng.Float64()
	}
	du := make([]float64, len(u))

	fmt.Printf("Derivative kernel statistics: N=%d, Nel=%d, %d timesteps, workers=%d, hw model %s\n\n",
		n, nel, steps, workers, machine.Name)

	pl := pool.New(workers)
	defer pl.Close()
	for _, v := range variants {
		var rows []report.KernelRow
		// The paper lists dudt first in Figure 5.
		for _, dir := range []sem.Direction{sem.DirT, sem.DirR, sem.DirS} {
			wall, ops := timeDeriv(pl, dir, v, ref, u, du, nel, steps)
			est := hw.Model(machine, hw.Ops{Mul: ops.Mul, Add: ops.Add, Load: ops.Load, Store: ops.Store},
				traitsFor(dir, v))
			rows = append(rows, report.KernelEstimate(dir.String(), wall, est))
		}
		title := fmt.Sprintf("Figure 5 — partial derivatives WITH loop transformations (%v)", v)
		if v == sem.Basic {
			title = fmt.Sprintf("Figure 6 — partial derivatives, basic implementation (%v)", v)
		}
		fmt.Print(report.Fig5or6KernelTable(title, rows))
		fmt.Println()
	}
}

// runSweep scans the paper's N = 5..25 polynomial range at roughly
// constant total grid points and prints per-direction Gflop/s, showing
// how the O(N^4) kernel's arithmetic intensity grows with order.
func runSweep(machine hw.Machine, variants []sem.KernelVariant, steps int) {
	fmt.Printf("Derivative kernel N-sweep (constant ~200k points, %d steps, hw model %s)\n\n", steps, machine.Name)
	fmt.Printf("%4s %6s", "N", "Nel")
	for _, v := range variants {
		for _, dir := range []sem.Direction{sem.DirT, sem.DirR, sem.DirS} {
			fmt.Printf(" %14s", fmt.Sprintf("%s/%s", dir, v))
		}
	}
	fmt.Println("  (Gflop/s)")
	for _, n := range []int{5, 7, 10, 13, 16, 20, 25} {
		n3 := n * n * n
		nel := 200000 / n3
		if nel < 1 {
			nel = 1
		}
		ref := sem.NewRef1D(n)
		rng := rand.New(rand.NewSource(1))
		u := make([]float64, nel*n3)
		for i := range u {
			u[i] = rng.Float64()
		}
		du := make([]float64, len(u))
		fmt.Printf("%4d %6d", n, nel)
		for _, v := range variants {
			for _, dir := range []sem.Direction{sem.DirT, sem.DirR, sem.DirS} {
				wall, ops := timeDeriv(nil, dir, v, ref, u, du, nel, steps)
				gflops := float64(ops.Flops()) / wall / 1e9
				fmt.Printf(" %14.2f", gflops)
			}
		}
		fmt.Println()
	}
}

// runMxM benchmarks every MxM variant across the small-k range the
// spectral-element kernels produce (k = N is the 1D operator size), in
// the derivative kernel's dominant shape m = N^2, n = N, batched over
// elements. Each column is labeled with the kernel that actually ran:
// variants outside their specialization range (e.g. "specialized" for
// k outside [4, 10]) are footnoted with their effective fallback
// instead of silently crediting the named variant with the fallback's
// numbers. The measurement core lives in internal/bench so
// cmd/benchdiff can re-run the identical sweep.
func runMxM(tune bool) []bench.MxMRecord {
	records := bench.MxMSweep(bench.MxMSweepOptions{Tune: tune})

	fmt.Printf("Small-matrix mxm sweep: shape (N*N x N) x (N x N), batched, AVX2=%v, tuned=%v\n\n",
		sem.HasSIMD(), tune)
	fmt.Printf("%4s", "N")
	for _, v := range sem.MxMVariants {
		fmt.Printf(" %14s", v)
	}
	fmt.Println("  (Gflop/s)")
	var notes []string
	lastK := -1
	for _, r := range records {
		if r.K != lastK {
			if lastK != -1 {
				fmt.Println()
			}
			lastK = r.K
			fmt.Printf("%4d", r.K)
		}
		mark := " "
		if r.Effective != r.Variant {
			mark = "*"
			notes = append(notes, fmt.Sprintf("N=%d %s -> %s", r.K, r.Variant, r.Effective))
		}
		fmt.Printf(" %13.2f%s", r.Gflops, mark)
	}
	fmt.Println()
	if len(notes) > 0 {
		fmt.Println("\n* effective kernel differs from the requested variant:")
		for _, n := range notes {
			fmt.Printf("    %s\n", n)
		}
	}
	return records
}

// timeDeriv runs one direction/variant for the given number of steps on
// the pool (nil or width 1 runs serially) and returns total wall seconds
// and total op counts.
func timeDeriv(pl *pool.Pool, dir sem.Direction, v sem.KernelVariant, ref *sem.Ref1D, u, du []float64, nel, steps int) (float64, sem.OpCount) {
	start := time.Now()
	var ops sem.OpCount
	for s := 0; s < steps; s++ {
		ops = ops.Plus(sem.DerivPool(pl, dir, v, ref, u, du, nel))
	}
	return time.Since(start).Seconds(), ops
}
