// Command serveload is the open-loop load generator for the simulation
// job server: it stands up an in-process server (real HTTP transport),
// submits a fixed script of jobs across tenants and priorities, and
// reports sustained throughput, time-to-first-step percentiles,
// preemption latency, and the warm/cold setup split of the artifact
// cache. With -json it writes the schema-versioned bench results that
// benchdiff gates against.
//
// Example:
//
//	serveload -slots 2 -jobs 24 -json BENCH_serve_baseline.json
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serveload: ")

	slots := flag.Int("slots", 2, "server runner slots")
	jobs := flag.Int("jobs", 24, "jobs to submit")
	tenants := flag.Int("tenants", 3, "tenant ids to round-robin over")
	preemptEvery := flag.Int("preempt-every", 6, "every k-th job is high priority (0 disables preemption load)")
	ranks := flag.Int("ranks", 2, "ranks per job")
	n := flag.Int("n", 5, "GLL points per direction per element")
	local := flag.Int("local", 1, "elements per rank per direction")
	steps := flag.Int("steps", 5, "timesteps per job")
	rate := flag.Float64("rate", 0, "open-loop submission rate in jobs/sec (0 = burst)")
	jsonOut := flag.String("json", "", "write the bench results as schema-versioned JSON to this file")
	cli.Parse()

	opts := bench.ServeLoadOptions{
		Slots: *slots, Jobs: *jobs, Tenants: *tenants, PreemptEvery: *preemptEvery,
		Ranks: *ranks, N: *n, LocalElems: *local, Steps: *steps, RatePerSec: *rate,
	}
	res, err := bench.ServeLoad(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("submitted %d jobs (%d tenants, %d slots): %d completed in %.3fs — %.1f jobs/sec\n",
		res.Submitted, *tenants, *slots, res.Completed, res.WallSeconds, res.JobsPerSec)
	fmt.Printf("time to first step: p50 %.4fs  p99 %.4fs\n", res.TTFSP50, res.TTFSP99)
	fmt.Printf("setup: cold median %.4fs, warm median %.4fs (%d cache hits)\n",
		res.ColdSetupS, res.WarmSetupS, res.CacheHits)
	if res.Preemptions > 0 {
		fmt.Printf("preemptions: %d (latency p50 %.4fs  p99 %.4fs), %d resumes\n",
			res.Preemptions, res.PreemptP50, res.PreemptP99, res.Resumes)
	}

	if *jsonOut != "" {
		if err := report.New(res.Results(opts)).WriteFile(*jsonOut); err != nil {
			log.Fatalf("-json: %v", err)
		}
		fmt.Printf("wrote %s (schema v%d)\n", *jsonOut, report.SchemaVersion)
	}
}
