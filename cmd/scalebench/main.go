// Command scalebench runs weak- and strong-scaling studies of CMT-bone
// under a network model and prints the results as a table (optionally
// CSV), the scaling data a co-design study starts from.
//
// Weak scaling holds the per-rank problem fixed while ranks grow; strong
// scaling holds the global problem fixed and divides it across ranks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/comm/tcptransport"
	"repro/internal/loadbal"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/solver"
)

type row struct {
	mode     string
	ranks    int
	elems    int // per rank
	makespan float64
	mpiFrac  float64
	bytes    int64 // per rank
	flops    int64 // per rank
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scalebench: ")

	n := flag.Int("n", 6, "GLL points per direction per element")
	steps := flag.Int("steps", 2, "timesteps per measurement")
	netName := flag.String("net", netmodel.QDR.Name, "network model: "+strings.Join(netmodel.Names(), ", "))
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	maxRanks := flag.Int("maxranks", 64, "largest rank count (rank counts are cubes up to this)")
	traceOut := flag.String("trace", "", "write a Perfetto trace of the largest weak-scaling run to this file")
	metricsOut := flag.String("metrics", "", "write the largest weak-scaling run's step-metrics JSONL to this file")
	debugAddr := flag.String("debug-addr", "", "serve live pprof and expvar on this address for the whole sweep")
	workersFlag := flag.Int("workers", 0, "intra-rank worker-pool width (0 = GOMAXPROCS/ranks per run, min 1)")
	useLB := flag.Bool("loadbal", false, "append the skewed-load scenario study (balanced / skewed / skewed+loadbal)")
	lbThreshold := flag.Float64("imbalance-threshold", 1.2, "rank cost imbalance triggering a rebalance in the loadbal scenario")
	lbEvery := flag.Int("rebalance-every", 2, "steps between load-balance epochs in the loadbal scenario")
	lbJSON := flag.String("loadbal-json", "", "write the loadbal scenario results as JSON to this file")
	useOverlap := flag.Bool("overlap", false, "append the compute/communication overlap study (blocking vs split-phase exchange)")
	overlapJSON := flag.String("overlap-json", "", "write the overlap study results as JSON to this file")
	useHier := flag.Bool("hier", false, "append the hierarchical-collectives scaling study (flat vs two-level collectives on modeled fat-tree and dragonfly fabrics)")
	hierMaxRanks := flag.Int("hier-maxranks", 4096, "largest modeled rank count of the -hier study (sweeps 256, 1024, ... up to this)")
	hierJSON := flag.String("hier-json", "", "write the -hier study results as JSON to this file")
	smoke := flag.Bool("smoke", false, "run the canonical 4-rank smoke scenario and write its diagnostics JSON (see -smoke-json); with -transport=tcp this process hosts one rank")
	smokeJSON := flag.String("smoke-json", "smoke.json", "diagnostics output path for -smoke (written by rank 0's process)")
	transportName := flag.String("transport", "inproc", "smoke communicator backend: inproc or tcp")
	tcpRank := flag.Int("rank", -1, "world rank of this process (-smoke -transport=tcp)")
	tcpPeers := flag.String("peers", "", "comma-separated listen addresses, one per rank (-smoke -transport=tcp)")
	tcpRdv := flag.String("rdv", "", "rendezvous file path or tcp://host:port/job for a cmtbroker (-smoke -transport=tcp; alternative to -peers)")
	cli.Parse()
	workers = *workersFlag

	model, err := netmodel.ByName(*netName)
	if err != nil {
		log.Fatalf("-net: %v", err)
	}

	if *smoke {
		runSmoke(*transportName, *tcpRank, *tcpPeers, *tcpRdv, *smokeJSON, model)
		return
	}

	var reg *obs.Registry
	if *traceOut != "" || *metricsOut != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatalf("-debug-addr: %v", err)
		}
		defer srv.Close()
		fmt.Printf("debug server: http://%s/debug/pprof/ and /debug/vars\n", srv.Addr())
	}

	var counts []int
	for c := 1; c*c*c <= *maxRanks; c++ {
		counts = append(counts, c*c*c)
	}

	var rows []row
	// Weak scaling: 2x2x2 elements per rank at every size. The largest
	// run — the one whose behavior matters for extrapolation — carries
	// the telemetry when requested.
	for i, p := range counts {
		m := t{"weak", p, *n, 2, [3]int{}, *steps}
		if i == len(counts)-1 {
			rows = append(rows, measureTelemetry(m, model, reg, *traceOut, *metricsOut))
		} else {
			rows = append(rows, measure(m, model))
		}
	}
	// Strong scaling: a fixed global mesh sized for the largest count.
	big := counts[len(counts)-1]
	bigGrid := comm.FactorGrid(big)
	global := [3]int{bigGrid[0] * 2, bigGrid[1] * 2, bigGrid[2] * 2}
	for _, p := range counts {
		pg := comm.FactorGrid(p)
		ok := true
		for d := 0; d < 3; d++ {
			if global[d]%pg[d] != 0 {
				ok = false
			}
		}
		if !ok {
			continue
		}
		rows = append(rows, measure(t{"strong", p, *n, 0, global, *steps}, model))
	}

	fmt.Printf("CMT-bone scaling study: N=%d, %d steps, network %s\n\n", *n, *steps, model.Name)
	fmt.Printf("%-8s %7s %11s %15s %9s %13s %13s\n",
		"mode", "ranks", "elems/rank", "makespan (s)", "MPI %", "bytes/rank", "flops/rank")
	for _, r := range rows {
		fmt.Printf("%-8s %7d %11d %15.6f %8.2f%% %13d %13d\n",
			r.mode, r.ranks, r.elems, r.makespan, 100*r.mpiFrac, r.bytes, r.flops)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "mode,ranks,elems_per_rank,makespan_s,mpi_frac,bytes_per_rank,flops_per_rank")
		for _, r := range rows {
			fmt.Fprintf(f, "%s,%d,%d,%.9f,%.6f,%d,%d\n",
				r.mode, r.ranks, r.elems, r.makespan, r.mpiFrac, r.bytes, r.flops)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}

	if *useLB {
		loadbalStudy(*n, model, loadbal.Config{Threshold: *lbThreshold, Every: *lbEvery}, *lbJSON)
	}
	if *useOverlap {
		overlapStudy(*n, model, *overlapJSON)
	}
	if *useHier {
		hierStudy(*hierMaxRanks, *hierJSON)
	}
}

// hierStudy runs the flat-vs-hierarchical collectives sweep (measurement
// core in internal/bench, shared with benchdiff) and prints its table.
// All quantities are modeled, so the JSON artifact is a valid benchdiff
// baseline on any host.
func hierStudy(maxRanks int, jsonPath string) {
	res, err := bench.RunHierStudy(bench.HierOptions{MaxRanks: maxRanks})
	if err != nil {
		log.Fatalf("hier study: %v", err)
	}

	fmt.Printf("\nhierarchical collectives (diag allreduce %d floats, resid %d, %d iters, background load %.2f):\n\n",
		res.DiagLen, res.ResidLen, res.Iters, res.Load)
	fmt.Printf("%-10s %7s %7s %14s %14s %12s %12s %11s\n",
		"topology", "ranks", "method", "diag (us)", "resid (us)", "bcast (us)", "barrier (us)", "vs flat")
	for _, s := range res.Scenarios {
		vsFlat := ""
		if s.Method == "hier" {
			vsFlat = fmt.Sprintf("%10.1f%%", 100*s.DiagReduction)
		}
		fmt.Printf("%-10s %7d %7s %14.2f %14.2f %12.2f %12.2f %11s\n",
			s.Topo, s.Ranks, s.Method, 1e6*s.DiagTime, 1e6*s.ResidTime,
			1e6*s.BcastTime, 1e6*s.BarrierTime, vsFlat)
	}

	if jsonPath != "" {
		if err := report.New(res.Results()).WriteFile(jsonPath); err != nil {
			log.Fatalf("-hier-json: %v", err)
		}
		fmt.Printf("\nwrote %s (schema v%d)\n", jsonPath, report.SchemaVersion)
	}
}

// overlapStudy runs the split-phase-vs-blocking study (the measurement
// core lives in internal/bench so benchdiff re-runs the identical
// configuration) and prints its table. The JSON artifact is a
// schema-versioned report.Trajectory carrying critical-path summaries,
// usable directly as a benchdiff baseline.
func overlapStudy(nGLL int, model netmodel.Model, jsonPath string) {
	res, err := bench.OverlapStudy(bench.OverlapOptions{
		N: nGLL, Workers: workers, Trace: true, Net: model, NetSet: true,
	})
	if err != nil {
		log.Fatalf("overlap study: %v", err)
	}

	fmt.Printf("\noverlap scenario (%d ranks, %d^3 elements/rank, N=%d, %d steps, network %s):\n\n",
		res.Scenarios[0].Ranks, res.LocalElems, res.N, res.Steps, res.Net)
	fmt.Printf("%-10s %7s %15s %9s %13s %14s %12s\n",
		"scenario", "ranks", "makespan (s)", "MPI %", "hidden (s)", "interior/bnd", "vs blocking")
	for _, s := range res.Scenarios {
		fmt.Printf("%-10s %7d %15.6f %8.2f%% %13.6f %8d/%-5d %11.1f%%\n",
			s.Scenario, s.Ranks, s.Makespan, 100*s.MPIFrac, s.HiddenSeconds,
			s.InteriorElems, s.BoundaryElems, 100*s.ReductionVsBlocking)
	}

	if jsonPath != "" {
		if err := report.New(res.Results()).WriteFile(jsonPath); err != nil {
			log.Fatalf("-overlap-json: %v", err)
		}
		fmt.Printf("\nwrote %s (schema v%d)\n", jsonPath, report.SchemaVersion)
	}
}

// loadbalStudy runs the skewed-load study (measurement core in
// internal/bench, shared with benchdiff) and prints its table. The JSON
// artifact is a schema-versioned report.Trajectory with critical-path
// summaries attached.
func loadbalStudy(nGLL int, model netmodel.Model, lbCfg loadbal.Config, jsonPath string) {
	res, err := bench.LoadbalStudy(bench.LoadbalOptions{
		N: nGLL, Workers: workers, Threshold: lbCfg.Threshold, Every: lbCfg.Every,
		Trace: true, Net: model, NetSet: true,
	})
	if err != nil {
		log.Fatalf("loadbal study: %v", err)
	}

	fmt.Printf("\nskewed-load scenario (rank %d elements %gx, N=%d, %d steps, rebalance every %d, threshold %.2f):\n\n",
		res.HotRank, res.HotFactor, res.N, res.Steps, res.Every, res.Threshold)
	fmt.Printf("%-15s %7s %15s %9s %12s %11s %11s\n",
		"scenario", "ranks", "makespan (s)", "MPI %", "rebalances", "elems moved", "vs skewed")
	for _, s := range res.Scenarios {
		fmt.Printf("%-15s %7d %15.6f %8.2f%% %12d %11d %10.1f%%\n",
			s.Scenario, s.Ranks, s.Makespan, 100*s.MPIFrac, s.Rebalances, s.MigratedElems,
			100*s.ReductionVsSkewed)
	}

	if jsonPath != "" {
		if err := report.New(res.Results()).WriteFile(jsonPath); err != nil {
			log.Fatalf("-loadbal-json: %v", err)
		}
		fmt.Printf("\nwrote %s (schema v%d)\n", jsonPath, report.SchemaVersion)
	}
}

// smokeDiag is the canonical diagnostics record of the -smoke scenario.
// Every field is a modeled quantity (physics scalars and virtual-clock
// times), so two runs of the same scenario must produce byte-identical
// files regardless of transport — that equality is exactly what
// scripts/tcp_smoke.sh asserts between an in-process run and a 4-process
// TCP run.
type smokeDiag struct {
	Ranks     int       `json:"ranks"`
	N         int       `json:"n"`
	Steps     int       `json:"steps"`
	Dt        float64   `json:"dt"`
	Mass      float64   `json:"mass"`
	Energy    float64   `json:"energy"`
	WaveSpeed float64   `json:"wavespeed"`
	Makespan  float64   `json:"makespan"`
	RankVT    []float64 `json:"rank_vt"`
}

// runSmoke runs a fixed small scenario (4 ranks, N=5, 2^3 elements/rank,
// 3 steps) on the selected transport and has rank 0's process write the
// diagnostics JSON. The final makespan is computed by an in-program
// Allreduce(OpMax) over the virtual clocks — the same collective on
// every backend — so it is identical across transports by construction,
// not by accident of who observes which rank.
func runSmoke(transport string, rank int, peersCSV, rdv, jsonPath string, model netmodel.Model) {
	const (
		smokeRanks = 4
		smokeN     = 5
		smokeLocal = 2
		smokeSteps = 3
	)
	sc := solver.DefaultConfig(smokeRanks, smokeN, smokeLocal)
	sc.Workers = 1
	opts := sc.CommOptions(model)

	var out *smokeDiag
	fn := func(r *comm.Rank) error {
		s, err := solver.New(r, sc)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(
			float64(sc.ElemGrid[0])/2, float64(sc.ElemGrid[1])/2, float64(sc.ElemGrid[2])/2,
			0.1, 0.5))
		rep := s.Run(smokeSteps)
		vts := r.Allgather([]float64{r.Clock().Now()})
		makespan := r.Allreduce(comm.OpMax, []float64{r.Clock().Now()})[0]
		if r.ID() == 0 {
			out = &smokeDiag{
				Ranks: smokeRanks, N: smokeN, Steps: smokeSteps,
				Dt: rep.Dt, Mass: rep.Mass, Energy: rep.Energy, WaveSpeed: rep.WaveSpeed,
				Makespan: makespan, RankVT: vts,
			}
		}
		return nil
	}

	switch transport {
	case "inproc":
		if _, err := comm.Run(smokeRanks, opts, fn); err != nil {
			log.Fatal(err)
		}
	case "tcp":
		if rank < 0 || rank >= smokeRanks {
			log.Fatalf("-transport=tcp needs -rank in [0,%d)", smokeRanks)
		}
		tcfg := tcptransport.Config{Rank: rank, Size: smokeRanks}
		if rdv != "" {
			if err := tcptransport.ParseRendezvous(rdv, &tcfg); err != nil {
				log.Fatalf("-rdv: %v", err)
			}
		}
		if peersCSV != "" {
			tcfg.Peers = strings.Split(peersCSV, ",")
		}
		tr, err := tcptransport.New(tcfg)
		if err != nil {
			log.Fatalf("tcp transport: %v", err)
		}
		if _, err := comm.RunDistributed(tr, opts, fn); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("-transport: unknown %q (want inproc or tcp)", transport)
	}
	if out == nil {
		return // a TCP process hosting a nonzero rank: rank 0's process writes
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoke: steps=%d mass=%.12f energy=%.9f makespan=%.6fs -> %s\n",
		out.Steps, out.Mass, out.Energy, out.Makespan, jsonPath)
}

type t struct {
	mode   string
	ranks  int
	n      int
	local  int    // weak: elements per rank per direction
	global [3]int // strong: global element grid
	steps  int
}

// workers is the -workers flag: the intra-rank pool width every
// measured run uses. 0 picks pool.DefaultWorkers per rank count, so a
// sweep never oversubscribes the host as ranks grow.
var workers int

func measure(cfg t, model netmodel.Model) row {
	return measureTelemetry(cfg, model, nil, "", "")
}

// measureTelemetry is measure with the telemetry layer attached: when
// traceOut / metricsOut are set, the run streams spans and step metrics
// into those files (and counters into reg for the live debug server).
func measureTelemetry(cfg t, model netmodel.Model, reg *obs.Registry, traceOut, metricsOut string) row {
	sc := solver.DefaultConfig(cfg.ranks, cfg.n, max(cfg.local, 1))
	if cfg.mode == "strong" {
		sc.ElemGrid = cfg.global
	}
	sc.Workers = workers
	if sc.Workers == 0 {
		sc.Workers = pool.DefaultWorkers(cfg.ranks)
	}
	sc.Metrics = reg
	opts := sc.CommOptions(model)
	var tel *obs.Tracer
	var traceFile *os.File
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		traceFile = f
		tel = obs.NewTracer()
		sc.Obs = tel
	}
	var coll *obs.StepCollector
	var metricsFile *os.File
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			log.Fatalf("-metrics: %v", err)
		}
		metricsFile = f
		coll = obs.NewStepCollector(f, cfg.ranks, reg)
		sc.Steps = coll
	}
	if reg != nil {
		opts.Tracer = obs.NewCommTracer(tel, reg)
	}
	var flops int64
	stats, err := comm.Run(cfg.ranks, opts, func(r *comm.Rank) error {
		s, err := solver.New(r, sc)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(
			float64(sc.ElemGrid[0])/2, float64(sc.ElemGrid[1])/2, float64(sc.ElemGrid[2])/2,
			0.1, 0.5))
		rep := s.Run(cfg.steps)
		if r.ID() == 0 {
			flops = rep.Ops.Flops()
		}
		return nil
	})
	if err != nil {
		log.Fatalf("%s/%d ranks: %v", cfg.mode, cfg.ranks, err)
	}
	if tel != nil {
		if err := tel.WritePerfetto(traceFile); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		fmt.Printf("trace of %s/%d ranks written to %s (%d spans, %d flows)\n",
			cfg.mode, cfg.ranks, traceOut, len(tel.Spans()), len(tel.Flows()))
	}
	if coll != nil {
		n, err := coll.Flush()
		if err != nil {
			log.Fatalf("-metrics: %v", err)
		}
		if err := metricsFile.Close(); err != nil {
			log.Fatalf("-metrics: %v", err)
		}
		fmt.Printf("step metrics of %s/%d ranks written to %s (%d records)\n",
			cfg.mode, cfg.ranks, metricsOut, n)
	}
	mpi := 0.0
	for _, f := range stats.RankMPIFractions() {
		mpi += f.FracModeled()
	}
	mpi /= float64(cfg.ranks)
	var bytes int64
	for _, site := range stats.AggregateSites() {
		bytes += site.Bytes
	}
	bytes /= int64(cfg.ranks)
	box, _ := sc.Mesh()
	return row{
		mode: cfg.mode, ranks: cfg.ranks, elems: box.LocalElems(),
		makespan: stats.MaxVirtualTime(), mpiFrac: mpi, bytes: bytes, flops: flops,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
