// Command gssweep reproduces the paper's Figure 7: it times the
// gather-scatter exchange algorithm candidates (pairwise exchange,
// crystal router, and — when feasible — all_reduce) for both CMT-bone's
// DG face-exchange pattern and Nekbone's continuous dssum pattern on the
// same problem setup, reporting avg/min/max times across ranks and the
// method each mini-app's tuner selects.
//
// The default setup is scaled down from the paper's (256 ranks, 100
// elements/rank, N=10) to run quickly in-process; pass -paper for the
// full Figure 7 configuration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/mesh"
	"repro/internal/netmodel"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gssweep: ")

	np := flag.Int("np", 64, "number of ranks")
	n := flag.Int("n", 6, "GLL points per direction per element")
	local := flag.Int("local", 2, "elements per rank per direction")
	trials := flag.Int("trials", 3, "timing trials per method")
	paper := flag.Bool("paper", false, "use the paper's exact Figure 7 setup (256 ranks, 5x5x4 local elements, N=10)")
	netName := flag.String("net", netmodel.QDR.Name, "network model: "+strings.Join(netmodel.Names(), ", "))
	csvPath := flag.String("csv", "", "also write the comparison as CSV to this file")
	cli.Parse()

	model, err := netmodel.ByName(*netName)
	if err != nil {
		log.Fatalf("-net: %v", err)
	}

	procGrid := comm.FactorGrid(*np)
	elemGrid := [3]int{procGrid[0] * *local, procGrid[1] * *local, procGrid[2] * *local}
	if *paper {
		*np = 256
		*n = 10
		procGrid = [3]int{8, 8, 4}
		elemGrid = [3]int{40, 40, 16}
	}
	periodic := [3]bool{true, true, true}

	box, err := mesh.NewBox(procGrid, elemGrid, *n, periodic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Setup:\n")
	fmt.Printf("  Number of processors: %d          Dimensions = 3\n", *np)
	fmt.Printf("  Number of elements per process = %d   Processor Distribution (x,y,z) = %d, %d, %d\n",
		box.LocalElems(), procGrid[0], procGrid[1], procGrid[2])
	fmt.Printf("  Total elements = %d                Element Distribution (x,y,z) = %d, %d, %d\n",
		box.TotalElems(), elemGrid[0], elemGrid[1], elemGrid[2])
	per := box.ElemsPerRank()
	fmt.Printf("  Number of gridpoints per element = %d  Local Element Distribution (x,y,z) = %d, %d, %d\n",
		*n, per[0], per[1], per[2])
	fmt.Printf("  Network model: %s\n\n", model)

	sweep := func(app string, idsOf func(*mesh.Local) []int64) ([]gs.Timing, gs.Method) {
		var timings []gs.Timing
		var chosen gs.Method
		_, err := comm.Run(*np, comm.Options{Model: model, Grid: procGrid, Periodic: periodic},
			func(r *comm.Rank) error {
				g := gs.Setup(r, idsOf(box.Partition(r.ID())))
				m, ts := gs.TuneModeled(g, *trials)
				if r.ID() == 0 {
					timings = ts
					chosen = m
				}
				return nil
			})
		if err != nil {
			log.Fatalf("%s sweep: %v", app, err)
		}
		return timings, chosen
	}

	cmtTimings, cmtChoice := sweep("CMT-bone", func(l *mesh.Local) []int64 { return l.DGFaceIDs() })
	nekTimings, nekChoice := sweep("Nekbone", func(l *mesh.Local) []int64 { return l.ContinuousIDs() })

	var rows []report.Fig7Row
	for _, t := range cmtTimings {
		rows = append(rows, report.Fig7Row{App: "CMT-bone", Timing: t})
	}
	for _, t := range nekTimings {
		rows = append(rows, report.Fig7Row{App: "Nekbone", Timing: t})
	}
	fmt.Print(report.Fig7GSComparison(rows, map[string]gs.Method{
		"CMT-bone": cmtChoice,
		"Nekbone":  nekChoice,
	}))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Fig7CSV(f, rows); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}
