// Command bemu is the behavioral-emulation design-space-exploration tool
// the mini-app exists to enable (paper Section III.C: "evaluate a series
// of candidate exascale architectures"). It runs the same CMT-bone
// workload under every combination of processor model (internal/hw) and
// network model (internal/netmodel) and tabulates the modeled makespan,
// compute/communication split, and the gather-scatter method each
// machine's tuner picks — the co-design signals a system architect reads
// off a mini-app.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bemu: ")

	np := flag.Int("np", 16, "number of ranks")
	n := flag.Int("n", 8, "GLL points per direction per element")
	local := flag.Int("local", 2, "elements per rank per direction")
	steps := flag.Int("steps", 2, "timesteps")
	calibrate := flag.Bool("calibrate", false, "also sweep a network model calibrated to this host's transport")
	cli.Parse()

	machines := []hw.Machine{hw.Opteron6378, hw.I52500, hw.Generic}
	networks := []netmodel.Model{netmodel.QDR, netmodel.GigE, netmodel.Exascale}
	if *calibrate {
		host, err := comm.CalibrateModel("this-host", nil, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("calibrated host transport: %s (alpha=%.2es, beta=%.2es/B)\n\n",
			host.Name, host.Alpha, host.Beta)
		networks = append(networks, host)
	}

	fmt.Printf("CMT-bone behavioral emulation: %d ranks, N=%d, %d elems/rank, %d steps\n\n",
		*np, *n, (*local)*(*local)*(*local), *steps)
	fmt.Printf("%-14s %-18s %14s %10s %10s  %-18s\n",
		"processor", "network", "makespan (s)", "comm %", "speedup", "tuned gs method")

	baseline := -1.0
	for _, machine := range machines {
		for _, network := range networks {
			cfg := solver.DefaultConfig(*np, *n, *local)
			cfg.Machine = machine
			cfg.AutoTune = true
			cfg.TuneTrials = 1

			var method gs.Method
			stats, err := comm.Run(*np, cfg.CommOptions(network), func(r *comm.Rank) error {
				s, err := solver.New(r, cfg)
				if err != nil {
					return err
				}
				s.SetInitial(solver.GaussianPulse(
					float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
					0.1, 0.5))
				s.Run(*steps)
				if r.ID() == 0 {
					method = s.GS().Method()
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			makespan := stats.MaxVirtualTime()
			if baseline < 0 {
				baseline = makespan
			}
			commFrac := 0.0
			for _, f := range stats.RankMPIFractions() {
				commFrac += f.FracModeled()
			}
			commFrac /= float64(*np)
			fmt.Printf("%-14s %-18s %14.6f %9.2f%% %9.2fx  %-18s\n",
				machine.Name, network.Name, makespan, 100*commFrac, baseline/makespan, method)
		}
	}
	fmt.Println("\nspeedup is relative to the first (opteron-6378 / qdr) configuration;")
	fmt.Println("a rising comm % flags configurations where the network, not the core,")
	fmt.Println("bounds CMT-bone — the co-design conclusion the mini-app is built to expose.")
}
