// Command cmtbone is the CMT-bone mini-app driver: it runs the
// discontinuous Galerkin spectral-element solver on an in-process
// communicator of -np ranks and reports the run summary, optionally with
// the execution and MPI profiles.
//
// Example (the paper's Figure 7 problem setup):
//
//	cmtbone -np 256 -n 10 -grid 8x8x4 -elems 40x40x16 -steps 1 -autotune
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/comm/tcptransport"
	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/gs"
	"repro/internal/loadbal"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmtbone: ")

	np := flag.Int("np", 8, "number of ranks")
	n := flag.Int("n", 8, "GLL points per direction per element (N)")
	local := flag.Int("local", 2, "elements per rank per direction (ignored with -grid/-elems)")
	gridStr := flag.String("grid", "", "processor grid AxBxC (default: near-cubic factorization of -np)")
	elemsStr := flag.String("elems", "", "global element grid AxBxC (default: grid * local)")
	steps := flag.Int("steps", 5, "timesteps")
	gsName := flag.String("gs", "pairwise", "gather-scatter method: pairwise, crystal, allreduce")
	autotune := flag.Bool("autotune", false, "autotune the gather-scatter method at startup")
	tuneMxM := flag.Bool("tunemxm", false, "autotune the small-matrix mxm kernel table at startup (bit-identical results, wall time only)")
	dealias := flag.Bool("dealias", false, "enable the dealiasing fine-mesh round trip")
	mu := flag.Float64("mu", 0, "dynamic viscosity; > 0 enables the Navier-Stokes viscous flux path")
	filterCutoff := flag.Int("filter", 0, "modal spectral filter cutoff (shock-capture proxy; 0 disables)")
	variant := flag.String("variant", "optimized", "derivative kernel variant: optimized or basic")
	netName := flag.String("net", netmodel.QDR.Name, "network model: "+strings.Join(netmodel.Names(), ", "))
	showProfile := flag.Bool("profile", false, "print the execution (gprof-style) profile")
	showMPI := flag.Bool("mpiprofile", false, "print the MPI (mpiP-style) profiles")
	showDiag := flag.Bool("diag", false, "print flow diagnostics and the density modal spectrum")
	ckptDir := flag.String("ckpt", "", "write a per-rank checkpoint of the final state into this directory")
	traceOut := flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON timeline of per-rank spans to this file")
	metricsOut := flag.String("metrics", "", "write a step-metrics JSONL stream (one record per timestep) to this file")
	debugAddr := flag.String("debug-addr", "", "serve live pprof and expvar on this address (e.g. :6060)")
	workers := flag.Int("workers", 0, "intra-rank worker-pool width for the spectral-element kernels (0 = GOMAXPROCS/ranks, min 1)")
	useLB := flag.Bool("loadbal", false, "enable dynamic load balancing (measured-cost SFC repartitioning with element migration)")
	overlap := flag.Bool("overlap", false, "overlap the gs_op face exchange with interior-element compute (split-phase exchange; bit-identical results)")
	faultsSpec := flag.String("faults", "", "fault scenario: a JSON file path, or inline JSON starting with '{' (see README)")
	faultSeed := flag.Int64("fault-seed", 0, "override the scenario's seed (0 keeps the spec's own)")
	hbEvery := flag.Int("heartbeat-every", 1, "steps between failure-detection heartbeat rounds under -faults")
	ckptEvery := flag.Int("ckpt-every", 0, "auto-checkpoint period in steps under -faults (written into the -ckpt directory; required for crash recovery)")
	lbThreshold := flag.Float64("imbalance-threshold", 1.2, "rank cost imbalance (max/mean) above which a rebalance is considered")
	lbEvery := flag.Int("rebalance-every", 10, "steps between load-balance measure/decide epochs")
	hotSpec := flag.String("hot", "", "comma-separated rank=factor pairs skewing per-element modeled cost (e.g. 3=4 makes rank 3's elements 4x)")
	transportName := flag.String("transport", "inproc", "communicator backend: inproc (all ranks in this process) or tcp (this process hosts one rank of a multi-process run; see scripts/mpirun_tcp.sh)")
	tcpRank := flag.Int("rank", -1, "world rank of this process (tcp transport)")
	tcpPeers := flag.String("peers", "", "comma-separated listen addresses, one per rank, identical across all processes (tcp transport)")
	tcpRdv := flag.String("rdv", "", "rendezvous: a file path (rank 0 publishes its ephemeral address there, other ranks poll it) or tcp://host:port/job for a cmtbroker (tcp transport; alternative to -peers)")
	cli.Parse()

	useTCP := *transportName == "tcp"
	switch {
	case *transportName != "inproc" && !useTCP:
		log.Fatalf("-transport: unknown %q (want inproc or tcp)", *transportName)
	case useTCP && (*tcpRank < 0 || *tcpRank >= *np):
		log.Fatalf("-transport=tcp needs -rank in [0,%d)", *np)
	case useTCP && *useLB:
		// The balancer aggregates per-rank state in shared slices; over
		// TCP each process only holds its own rank's share.
		log.Fatalf("-transport=tcp cannot be combined with -loadbal")
	}

	cfg := solver.DefaultConfig(*np, *n, *local)
	if *gridStr != "" {
		g, err := cli.ParseTriple(*gridStr)
		if err != nil {
			log.Fatalf("-grid: %v", err)
		}
		cfg.ProcGrid = g
		cfg.ElemGrid = [3]int{g[0] * *local, g[1] * *local, g[2] * *local}
	}
	if *elemsStr != "" {
		e, err := cli.ParseTriple(*elemsStr)
		if err != nil {
			log.Fatalf("-elems: %v", err)
		}
		cfg.ElemGrid = e
	}
	v, err := cli.ParseVariant(*variant)
	if err != nil {
		log.Fatalf("-variant: %v", err)
	}
	cfg.Variant = v
	m, err := gs.ParseMethod(*gsName)
	if err != nil {
		log.Fatalf("-gs: %v", err)
	}
	cfg.GSMethod = m
	cfg.AutoTune = *autotune
	cfg.TuneMxM = *tuneMxM
	cfg.Dealias = *dealias
	cfg.Mu = *mu
	cfg.FilterCutoff = *filterCutoff
	if *workers == 0 {
		*workers = pool.DefaultWorkers(*np)
	}
	cfg.Workers = *workers
	cfg.Overlap = *overlap
	if *hotSpec != "" {
		box, err := cfg.Mesh()
		if err != nil {
			log.Fatalf("-hot: %v", err)
		}
		cfg.HotElems = make(map[int64]float64)
		for _, pair := range strings.Split(*hotSpec, ",") {
			var rank int
			var factor float64
			if _, err := fmt.Sscanf(pair, "%d=%g", &rank, &factor); err != nil {
				log.Fatalf("-hot: bad pair %q (want rank=factor): %v", pair, err)
			}
			if rank < 0 || rank >= *np {
				log.Fatalf("-hot: rank %d out of range [0,%d)", rank, *np)
			}
			for _, gid := range box.Partition(rank).GIDs() {
				cfg.HotElems[gid] = factor
			}
		}
	}

	model, err := netmodel.ByName(*netName)
	if err != nil {
		log.Fatalf("-net: %v", err)
	}

	var spec *fault.Spec
	if *faultsSpec != "" {
		if *useLB {
			// Recovery re-homes elements itself; two subsystems rewriting
			// the ownership mid-run would fight over the partition.
			log.Fatalf("-faults cannot be combined with -loadbal")
		}
		spec, err = fault.Load(*faultsSpec)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		if *faultSeed != 0 {
			spec.Seed = *faultSeed
		}
		if len(spec.Crashes) > 0 && (*ckptDir == "" || *ckptEvery <= 0) {
			log.Fatalf("-faults: crash scenarios need -ckpt and -ckpt-every for rollback recovery")
		}
	}

	// Telemetry: the span tracer, metrics registry, and step collector
	// only observe — they never advance the virtual clock, so the modeled
	// run is bit-identical with them on or off.
	var (
		tel         *obs.Tracer
		reg         *obs.Registry
		coll        *obs.StepCollector
		metricsFile *os.File
		traceFile   *os.File
	)
	if *traceOut != "" || *metricsOut != "" || *debugAddr != "" || *useLB || spec != nil {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	if *traceOut != "" {
		// Open the output before the run so a bad path fails fast
		// instead of after the simulation has already finished.
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		tel = obs.NewTracer()
		cfg.Obs = tel
	}
	if *metricsOut != "" {
		metricsFile, err = os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("-metrics: %v", err)
		}
		coll = obs.NewStepCollector(metricsFile, *np, reg)
		cfg.Steps = coll
		if *showDiag {
			cfg.StepDiag = diag.StepScalars
		}
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatalf("-debug-addr: %v", err)
		}
		defer srv.Close()
		fmt.Printf("debug server: http://%s/debug/pprof/ and /debug/vars\n", srv.Addr())
	}
	opts := cfg.CommOptions(model)
	if tel != nil || reg != nil {
		opts.Tracer = obs.NewCommTracer(tel, reg)
	}
	var inj *fault.Injector
	if spec != nil {
		inj = fault.NewInjector(spec, *np, reg)
		opts.Faults = inj
	}

	// Telemetry must survive abnormal exits: the partial trace and step
	// stream of a run that panicked or was interrupted are exactly the
	// post-mortem artifacts wanted. The sink flushes once, whichever of
	// the signal handler, the failure path, or normal completion gets
	// there first.
	sink := &telemetrySink{tel: tel, traceFile: traceFile, coll: coll, metricsFile: metricsFile}
	if tel != nil || coll != nil {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sigc
			log.Printf("%v: flushing telemetry before exit", s)
			if err := sink.Flush(); err != nil {
				log.Printf("telemetry flush: %v", err)
			}
			os.Exit(130)
		}()
		defer func() {
			if p := recover(); p != nil {
				if err := sink.Flush(); err != nil {
					log.Printf("telemetry flush: %v", err)
				}
				panic(p)
			}
		}()
	}

	if !useTCP || *tcpRank == 0 {
		fmt.Printf("CMT-bone: %d ranks (%dx%dx%d), %d elements/rank, N=%d, %d steps, gs=%s net=%s\n",
			*np, cfg.ProcGrid[0], cfg.ProcGrid[1], cfg.ProcGrid[2],
			cfg.ElemGrid[0]*cfg.ElemGrid[1]*cfg.ElemGrid[2] / *np, cfg.N, *steps, *gsName, model.Name)
	}
	if useTCP {
		fmt.Printf("transport: tcp, this process is rank %d of %d\n", *tcpRank, *np)
	}
	if cfg.Workers > 1 {
		fmt.Printf("worker pool: %d workers per rank (wall time only; modeled time unchanged)\n", cfg.Workers)
	}
	if *useLB {
		fmt.Printf("load balancing: every %d steps, imbalance threshold %.2f\n", *lbEvery, *lbThreshold)
	}
	if *overlap {
		fmt.Printf("overlap: interior/boundary split with nonblocking gs exchange (results bit-identical)\n")
	}

	reports := make([]solver.Report, *np)
	profs := make([]*prof.Profiler, *np)
	methods := make([]gs.Method, *np)
	balancers := make([]*loadbal.Balancer, *np)
	var flowDiag diag.Summary
	var spectrum diag.Spectrum
	recoveries := make([]int, *np)
	// runComm dispatches between the in-process reference backend and the
	// TCP transport. The rank program, the modeled clocks, and therefore
	// every physics diagnostic are identical either way; over TCP this
	// process simply hosts one rank and reports that rank's view.
	runComm := func(fn func(*comm.Rank) error) (*comm.Stats, error) {
		if !useTCP {
			return comm.Run(*np, opts, fn)
		}
		tcfg := tcptransport.Config{Rank: *tcpRank, Size: *np}
		if *tcpRdv != "" {
			if err := tcptransport.ParseRendezvous(*tcpRdv, &tcfg); err != nil {
				return nil, fmt.Errorf("-rdv: %w", err)
			}
		}
		if *tcpPeers != "" {
			tcfg.Peers = strings.Split(*tcpPeers, ",")
		}
		tr, err := tcptransport.New(tcfg)
		if err != nil {
			return nil, fmt.Errorf("tcp transport: %w", err)
		}
		return comm.RunDistributed(tr, opts, fn)
	}
	stats, err := runComm(func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(
			float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
			0.1, float64(cfg.ElemGrid[0])/8+0.25))
		if spec != nil {
			rn, err := fault.NewRunner(s, fault.Config{
				Spec: spec, CkptDir: *ckptDir, CkptEvery: *ckptEvery,
				HeartbeatEvery: *hbEvery, Metrics: reg,
			})
			if err != nil {
				s.Close()
				return err
			}
			// The runner owns the current solver: after a recovery the
			// original is already closed and replaced.
			defer rn.Close()
			rep, err := rn.Run(*steps)
			if err != nil {
				return err
			}
			s = rn.Solver()
			reports[r.ID()] = rep
			recoveries[r.ID()] = rn.Recoveries
		} else {
			defer s.Close()
			var after func(int)
			if *useLB {
				b := loadbal.New(s, nil, reg, loadbal.Config{
					Threshold: *lbThreshold,
					Every:     *lbEvery,
				})
				balancers[r.ID()] = b
				after = b.AfterStep
			}
			reports[r.ID()] = s.RunWith(*steps, after)
		}
		profs[r.ID()] = s.Prof
		methods[r.ID()] = s.GS().Method()
		if *showDiag {
			d := diag.Compute(s)
			sp := diag.ModalSpectrum(s, solver.IRho)
			if r.ID() == 0 {
				flowDiag, spectrum = d, sp
			}
		}
		if *ckptDir != "" {
			if err := checkpoint.WriteFile(*ckptDir, "final", s, int64(*steps), 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		if ferr := sink.Flush(); ferr != nil {
			log.Printf("telemetry flush: %v", ferr)
		} else if tel != nil || coll != nil {
			log.Printf("telemetry flushed before exit")
		}
		log.Fatal(err)
	}

	// Ranks killed by a fault scenario leave zero-valued entries; report
	// from the first rank that finished.
	live := 0
	for i := range reports {
		if reports[i].Steps != 0 {
			live = i
			break
		}
	}
	rep := reports[live]
	fmt.Printf("done: steps=%d dt=%.3e mass=%.12f energy=%.9f lambda=%.6f\n",
		rep.Steps, rep.Dt, rep.Mass, rep.Energy, rep.WaveSpeed)
	fmt.Printf("gather-scatter method in use: %s\n", methods[live])
	fmt.Printf("wall time: %.3fs   modeled makespan: %.6fs   flops/rank: %.3g\n",
		stats.Wall, stats.MaxVirtualTime(), float64(rep.Ops.Flops()))
	if *overlap {
		fmt.Printf("overlap: %.6fs modeled exchange time hidden behind interior compute (all ranks)\n",
			stats.TotalOverlapHidden())
	}
	if inj != nil {
		fmt.Printf("faults: killed=%v recoveries=%d drops=%d corruptions=%d (crc-detected %d) delays=%d retransmits=%d\n",
			stats.Killed, recoveries[live], inj.Drops(), inj.Corrupts(),
			stats.CRCDetected, inj.Delays(), stats.Retransmits)
		if inj.Detected() < inj.Corrupts() && len(stats.Killed) == 0 {
			fmt.Printf("faults: WARNING: %d corruptions were never received — investigate\n",
				inj.Corrupts()-inj.Detected())
		}
	}
	if *useLB {
		b := balancers[0]
		moved, bytes := 0, int64(0)
		for _, rb := range balancers {
			moved += rb.MovedElems
			bytes += rb.MovedBytes
		}
		fmt.Printf("load balancing: %d epochs, %d rebalances, %d skips; %d elements migrated (%.1f KiB); imbalance %.2f -> %.2f\n",
			b.Epochs, b.Rebalances, b.Skips, moved, float64(bytes)/1024,
			reg.Gauge("loadbal_imbalance_before").Value(), reg.Gauge("loadbal_imbalance_after").Value())
	}
	if *ckptDir != "" {
		fmt.Printf("checkpoint written to %s\n", checkpoint.FilePath(*ckptDir, "final", 0))
	}
	if err := sink.Flush(); err != nil {
		log.Fatal(err)
	}
	if tel != nil {
		fmt.Printf("trace written to %s (%d spans, %d flows; load in ui.perfetto.dev)\n",
			*traceOut, len(tel.Spans()), len(tel.Flows()))
		if ds, df := tel.Dropped(); ds+df > 0 {
			fmt.Printf("trace: capacity reached, dropped %d spans and %d flows\n", ds, df)
		}
	}
	if coll != nil {
		fmt.Printf("step metrics written to %s (%d records)\n", *metricsOut, sink.records)
		f, err := os.Open(*metricsOut)
		if err != nil {
			log.Fatalf("-metrics: %v", err)
		}
		recs, err := obs.ReadSteps(f)
		f.Close()
		if err != nil {
			log.Fatalf("-metrics: %v", err)
		}
		fmt.Println()
		fmt.Print(report.TelemetrySummary(recs))
	}

	if *showDiag {
		fmt.Printf("diagnostics: %s\n", flowDiag)
		fmt.Printf("density modal spectrum (decay ratio %.2e):\n%s", spectrum.DecayRatio(), spectrum.Format())
	}
	if *showProfile {
		liveProfs := profs[:0]
		for _, p := range profs {
			if p != nil {
				liveProfs = append(liveProfs, p)
			}
		}
		fmt.Println()
		fmt.Print(report.Fig4ExecutionProfile(liveProfs, stats))
	}
	if *showMPI {
		fmt.Println()
		fmt.Print(report.Fig8MPIFractions(stats.RankMPIFractions(), true))
		fmt.Println()
		fmt.Print(report.Fig9TopMPICalls(stats.AggregateSites(), 20, stats.TotalAppWall()))
		fmt.Println()
		fmt.Print(report.Fig10MessageSizes(stats.AggregateSites(), 12))
	}
	os.Exit(0)
}

// telemetrySink owns the run's trace and step-metrics outputs and
// flushes them exactly once, from whichever exit path runs first —
// normal completion, the fatal-error path, a panic unwinding through
// main, or the SIGINT/SIGTERM handler. Every field is optional.
type telemetrySink struct {
	tel         *obs.Tracer
	traceFile   *os.File
	coll        *obs.StepCollector
	metricsFile *os.File

	once    sync.Once
	records int
	err     error
}

// Flush writes the Perfetto trace and the buffered step records and
// closes both files, keeping the first error. Safe to call from any
// goroutine, any number of times.
func (ts *telemetrySink) Flush() error {
	ts.once.Do(func() {
		keep := func(err error, what string) {
			if err != nil && ts.err == nil {
				ts.err = fmt.Errorf("%s: %w", what, err)
			}
		}
		if ts.tel != nil {
			keep(ts.tel.WritePerfetto(ts.traceFile), "-trace")
			keep(ts.traceFile.Close(), "-trace")
		}
		if ts.coll != nil {
			n, err := ts.coll.Flush()
			ts.records = n
			keep(err, "-metrics")
			keep(ts.metricsFile.Close(), "-metrics")
		}
	})
	return ts.err
}
