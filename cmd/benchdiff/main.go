// Command benchdiff is the continuous performance-regression harness:
// it loads committed BENCH_*.json baselines (any schema version),
// re-runs the same measurements in-process, and compares.
//
// Deterministic modeled metrics (virtual-clock makespans, modeled MPI
// fractions) are bit-reproducible, so they gate tightly (-threshold).
// Wall-clock metrics are noisy and host-dependent; by default they are
// report-only, and with -wall-threshold they gate using repetition-based
// confidence bounds (-reps). When a regression is found on a scenario
// whose runs carry critical-path summaries, benchdiff prints a blame
// diff — which rank/phase bucket of the critical path grew.
//
//	benchdiff BENCH_loadbal_baseline.json BENCH_overlap_baseline.json
//	benchdiff -record BENCH_trajectory.json
//	benchdiff -hot 16 BENCH_trajectory.json   # inject a skew, watch it fail
//
// Exit status: 0 clean, 1 regressions found, 2 error.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/report"
	"repro/internal/sem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")

	record := flag.String("record", "", "run all suites and write a fresh trajectory to this file instead of comparing")
	threshold := flag.Float64("threshold", 0.02, "relative worsening tolerated on deterministic (modeled) metrics")
	wallThreshold := flag.Float64("wall-threshold", 0, "gate wall-clock metrics beyond this relative worsening (0 = report-only)")
	reps := flag.Int("reps", 3, "kernel-sweep repetitions for wall-clock confidence bounds")
	topBlame := flag.Int("top", 3, "critical-path blame lines per regression")
	critOut := flag.String("critpath", "", "write the fresh run's full critical-path reports to this file")
	freshOut := flag.String("fresh", "", "also write the fresh trajectory to this file")
	hot := flag.Float64("hot", 0, "inject a hot-rank compute skew of this factor into the fresh loadbal study (regression demo)")
	verbose := flag.Bool("v", false, "list bit-identical metrics and unmatched scenarios too")
	// Positional arguments are the baseline files, so plain flag.Parse
	// (not cli.Parse, which rejects positionals).
	flag.Parse()

	if *record != "" {
		traj, crit, err := freshRun(suiteSet{loadbal: true, overlap: true, hier: true, kernel: true, mxm: true, allocs: true, serveload: true},
			nil, *reps, *hot)
		if err != nil {
			log.Fatal(err)
		}
		if err := traj.WriteFile(*record); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d results to %s\n", len(traj.Results), *record)
		writeCrit(*critOut, crit)
		return
	}

	paths := flag.Args()
	if len(paths) == 0 {
		log.Print("no baselines given; usage: benchdiff [flags] BENCH_baseline.json...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	base := &report.Trajectory{SchemaVersion: report.SchemaVersion}
	for _, p := range paths {
		t, err := report.ReadTrajectory(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %s: schema v%d, %d results\n", p, t.SchemaVersion, len(t.Results))
		base.Results = append(base.Results, t.Results...)
		if base.Host.NumCPU == 0 {
			base.Host = t.Host
		}
	}

	want := suitesOf(base)
	fresh, crit, err := freshRun(want, base, *reps, *hot)
	if err != nil {
		log.Fatal(err)
	}
	if *freshOut != "" {
		if err := fresh.WriteFile(*freshOut); err != nil {
			log.Fatal(err)
		}
	}
	writeCrit(*critOut, crit)

	opts := bench.CompareOptions{
		Threshold:     *threshold,
		WallThreshold: *wallThreshold,
		WallCI:        fresh.wallCI,
		TopBlame:      *topBlame,
	}
	if base.Host.NumCPU != 0 && base.Host.NumCPU != runtime.NumCPU() && *wallThreshold > 0 {
		fmt.Printf("note: baseline host had %d CPUs, this host %d — wall-clock comparisons are cross-machine\n",
			base.Host.NumCPU, runtime.NumCPU())
	}
	cmp := bench.Compare(base, fresh.Trajectory, opts)
	fmt.Println()
	fmt.Print(cmp.Format(*verbose))
	if len(cmp.Regressions) > 0 {
		os.Exit(1)
	}
}

// suiteSet selects which measurement suites a fresh run performs.
type suiteSet struct {
	loadbal, overlap, hier, kernel, mxm, allocs, serveload bool
}

func suitesOf(t *report.Trajectory) suiteSet {
	var s suiteSet
	for i := range t.Results {
		switch t.Results[i].Suite {
		case "scalebench-loadbal":
			s.loadbal = true
		case "scalebench-overlap":
			s.overlap = true
		case "scalebench-hier":
			s.hier = true
		case "kernelbench":
			s.kernel = true
		case "kernelbench-mxm":
			s.mxm = true
		case "allocs":
			s.allocs = true
		case "serveload":
			s.serveload = true
		}
	}
	return s
}

// freshTrajectory bundles the fresh measurements with the wall-clock
// confidence half-widths the repetitions produced.
type freshTrajectory struct {
	*report.Trajectory
	wallCI map[string]float64
}

// freshRun performs the selected suites in-process and returns the
// unified trajectory plus the critical-path reports of the traced runs.
func freshRun(want suiteSet, base *report.Trajectory, reps int, hot float64) (*freshTrajectory, []string, error) {
	traj := report.New(nil)
	out := &freshTrajectory{Trajectory: traj, wallCI: map[string]float64{}}
	var crit []string

	if want.loadbal {
		opts := bench.LoadbalOptions{Trace: true, HotFactor: hot}
		fmt.Printf("running loadbal study (traced)...\n")
		res, err := bench.LoadbalStudy(opts)
		if err != nil {
			return nil, nil, err
		}
		traj.Results = append(traj.Results, res.Results()...)
		for _, s := range res.Scenarios {
			if s.Critpath != nil {
				crit = append(crit, fmt.Sprintf("== scalebench-loadbal/%s ==\n%s",
					s.Scenario, s.Critpath.Format(5)))
			}
		}
	}
	if want.overlap {
		fmt.Printf("running overlap study (traced)...\n")
		res, err := bench.OverlapStudy(bench.OverlapOptions{Trace: true})
		if err != nil {
			return nil, nil, err
		}
		traj.Results = append(traj.Results, res.Results()...)
		for _, s := range res.Scenarios {
			if s.Critpath != nil {
				crit = append(crit, fmt.Sprintf("== scalebench-overlap/%s ==\n%s",
					s.Scenario, s.Critpath.Format(5)))
			}
		}
	}
	if want.hier {
		opts := hierOptsFrom(base)
		fmt.Printf("running hierarchical-collectives study (up to %d modeled ranks)...\n", opts.MaxRanks)
		res, err := bench.RunHierStudy(opts)
		if err != nil {
			return nil, nil, err
		}
		traj.Results = append(traj.Results, res.Results()...)
		for _, s := range res.Scenarios {
			if s.Critpath != nil && len(s.Critpath.CongestedLinks) > 0 {
				crit = append(crit, fmt.Sprintf("== scalebench-hier/%s ==\n%s",
					s.Scenario, s.Critpath.Format(5)))
			}
		}
	}
	if want.kernel {
		opts := sweepOptsFrom(base)
		fmt.Printf("running kernel worker sweep (n=%d nel=%d steps=%d, %d reps)...\n",
			opts.N, opts.Nel, opts.Steps, reps)
		results, ci := repeatedSweep(opts, reps)
		traj.Results = append(traj.Results, results...)
		for k, v := range ci {
			out.wallCI[k] = v
		}
	}
	if want.mxm {
		opts := mxmOptsFrom(base)
		fmt.Printf("running small-matrix mxm sweep (%d ks, nel=%d, tuned)...\n", len(opts.Ks), opts.Nel)
		traj.Results = append(traj.Results, bench.MxMResults(bench.MxMSweep(opts))...)
	}
	if want.allocs {
		fmt.Printf("running steady-state allocation guard...\n")
		recs, err := bench.AllocsGuard()
		if err != nil {
			return nil, nil, err
		}
		traj.Results = append(traj.Results, bench.AllocsResults(recs)...)
	}
	if want.serveload {
		opts := serveOptsFrom(base)
		opts.Defaults()
		fmt.Printf("running job-server load generation (%d jobs, %d slots)...\n", opts.Jobs, opts.Slots)
		res, err := bench.ServeLoad(opts)
		if err != nil {
			return nil, nil, err
		}
		traj.Results = append(traj.Results, res.Results(opts)...)
	}
	return out, crit, nil
}

// serveOptsFrom reconstructs the load-generation configuration from the
// baseline's recorded parameters, so the fresh run replays the committed
// script. A nil baseline (record mode) uses the defaults.
func serveOptsFrom(base *report.Trajectory) bench.ServeLoadOptions {
	var opts bench.ServeLoadOptions
	opts.Steps = 30 // record-mode default: long enough that preemption occurs
	if base == nil {
		return opts
	}
	for i := range base.Results {
		r := &base.Results[i]
		if r.Suite != "serveload" {
			continue
		}
		geti := func(key string, dst *int) {
			if v, ok := r.Params[key]; ok {
				fmt.Sscanf(v, "%d", dst)
			}
		}
		geti("slots", &opts.Slots)
		geti("jobs", &opts.Jobs)
		geti("tenants", &opts.Tenants)
		geti("ranks", &opts.Ranks)
		geti("n", &opts.N)
		geti("steps", &opts.Steps)
		break
	}
	return opts
}

// hierOptsFrom reconstructs the hierarchical-collectives study
// configuration from the baseline's recorded parameters, so the fresh
// run sweeps exactly the committed (topology, rank count) grid. A nil
// baseline (record mode) uses the committed-baseline defaults.
func hierOptsFrom(base *report.Trajectory) bench.HierOptions {
	var opts bench.HierOptions
	if base == nil {
		return opts
	}
	seenTopo := map[string]bool{}
	for i := range base.Results {
		r := &base.Results[i]
		if r.Suite != "scalebench-hier" {
			continue
		}
		if v, err := strconv.Atoi(r.Params["ranks"]); err == nil && v > opts.MaxRanks {
			opts.MaxRanks = v
		}
		if topo := r.Params["topo"]; topo != "" && !seenTopo[topo] {
			seenTopo[topo] = true
			opts.Topos = append(opts.Topos, topo)
		}
		if v, err := strconv.Atoi(r.Params["iters"]); err == nil {
			opts.Iters = v
		}
		if v, err := strconv.Atoi(r.Params["diag_len"]); err == nil {
			opts.DiagLen = v
		}
		if v, err := strconv.Atoi(r.Params["resid_len"]); err == nil {
			opts.ResidLen = v
		}
		if v, err := strconv.ParseFloat(r.Params["load"], 64); err == nil {
			opts.Load = v
			if v == 0 {
				opts.Load = -1 // preserve an explicitly idle-fabric baseline
			}
		}
	}
	return opts
}

// sweepOptsFrom reconstructs the kernel-sweep configuration from the
// baseline's recorded parameters and scenarios, so the fresh run
// measures exactly the committed points. A nil baseline (record mode)
// uses the committed-baseline defaults.
func sweepOptsFrom(base *report.Trajectory) bench.SweepOptions {
	opts := bench.SweepOptions{Workers: []int{1}, Variant: sem.Optimized}
	if base == nil {
		return opts
	}
	seen := map[int]bool{}
	var widths []int
	for i := range base.Results {
		r := &base.Results[i]
		if r.Suite != "kernelbench" {
			continue
		}
		if v, err := strconv.Atoi(r.Params["n"]); err == nil {
			opts.N = v
		}
		if v, err := strconv.Atoi(r.Params["nel"]); err == nil {
			opts.Nel = v
		}
		if v, err := strconv.Atoi(r.Params["steps"]); err == nil {
			opts.Steps = v
		}
		// Scenario format: "<dir>/<variant>/workers=<w>".
		parts := strings.Split(r.Scenario, "/")
		if len(parts) == 3 {
			if v, err := cli.ParseVariant(parts[1]); err == nil {
				opts.Variant = v
			}
			var w int
			if _, err := fmt.Sscanf(parts[2], "workers=%d", &w); err == nil && !seen[w] {
				seen[w] = true
				widths = append(widths, w)
			}
		}
	}
	if len(widths) > 0 {
		sort.Ints(widths)
		opts.Workers = widths
	}
	return opts
}

// mxmOptsFrom reconstructs the mxm-sweep configuration from the
// baseline's recorded parameters and scenarios. A nil baseline (record
// mode) uses the committed-baseline defaults. The fresh run always
// tunes, matching how the recorded baseline is produced.
func mxmOptsFrom(base *report.Trajectory) bench.MxMSweepOptions {
	opts := bench.MxMSweepOptions{Tune: true}
	if base == nil {
		opts.Ks = defaultMxMKs()
		opts.Nel = 32
		return opts
	}
	seen := map[int]bool{}
	for i := range base.Results {
		r := &base.Results[i]
		if r.Suite != "kernelbench-mxm" {
			continue
		}
		if v, err := strconv.Atoi(r.Params["nel"]); err == nil {
			opts.Nel = v
		}
		// Scenario format: "k=<k>/<variant>".
		var k int
		if _, err := fmt.Sscanf(r.Scenario, "k=%d/", &k); err == nil && !seen[k] {
			seen[k] = true
			opts.Ks = append(opts.Ks, k)
		}
	}
	sort.Ints(opts.Ks)
	if len(opts.Ks) == 0 {
		opts.Ks = defaultMxMKs()
	}
	return opts
}

func defaultMxMKs() []int {
	var ks []int
	for k := 4; k <= 16; k++ {
		ks = append(ks, k)
	}
	return ks
}

// repeatedSweep runs the worker sweep reps times, reporting per-metric
// means with 95%-style confidence half-widths (2*stderr) for the
// comparison's wall-clock noise bounds.
func repeatedSweep(opts bench.SweepOptions, reps int) ([]report.BenchResult, map[string]float64) {
	if reps < 1 {
		reps = 1
	}
	var runs [][]report.BenchResult
	for i := 0; i < reps; i++ {
		runs = append(runs, bench.SweepResults(bench.WorkerSweep(opts)))
	}
	results := make([]report.BenchResult, len(runs[0]))
	ci := map[string]float64{}
	for ri := range runs[0] {
		r := runs[0][ri] // key, params, metric order are identical across reps
		for mi := range r.Metrics {
			var vals []float64
			for _, run := range runs {
				vals = append(vals, run[ri].Metrics[mi].Value)
			}
			mean, half := meanCI(vals)
			r.Metrics[mi].Value = mean
			ci[r.Key()+"|"+r.Metrics[mi].Name] = half
		}
		results[ri] = r
	}
	return results, ci
}

// meanCI returns the sample mean and 2*stderr (0 for a single rep).
func meanCI(vals []float64) (float64, float64) {
	n := float64(len(vals))
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / n
	if len(vals) < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	return mean, 2 * math.Sqrt(ss/(n-1)) / math.Sqrt(n)
}

// writeCrit writes the collected critical-path reports, if requested.
func writeCrit(path string, crit []string) {
	if path == "" || len(crit) == 0 {
		return
	}
	var buf []byte
	for _, c := range crit {
		buf = append(buf, c...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote critical-path report to %s\n", path)
}
