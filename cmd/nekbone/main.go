// Command nekbone runs the Nekbone baseline mini-app: a conjugate-
// gradient solve of a spectral-element Helmholtz system with dssum
// communication, on an in-process communicator.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/gs"
	nb "repro/internal/nekbone"
	"repro/internal/netmodel"
	"repro/internal/prof"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nekbone: ")

	np := flag.Int("np", 8, "number of ranks")
	n := flag.Int("n", 8, "GLL points per direction per element")
	local := flag.Int("local", 2, "elements per rank per direction")
	iters := flag.Int("iters", 50, "CG iterations")
	gsName := flag.String("gs", "pairwise", "gather-scatter method: pairwise, crystal, allreduce")
	autotune := flag.Bool("autotune", false, "autotune the gather-scatter method at startup")
	netName := flag.String("net", netmodel.QDR.Name, "network model: "+strings.Join(netmodel.Names(), ", "))
	showProfile := flag.Bool("profile", false, "print the execution profile")
	cli.Parse()

	cfg := nb.DefaultConfig(*np, *n, *local)
	cfg.Iters = *iters
	m, err := gs.ParseMethod(*gsName)
	if err != nil {
		log.Fatalf("-gs: %v", err)
	}
	cfg.GSMethod = m
	cfg.AutoTune = *autotune

	model, err := netmodel.ByName(*netName)
	if err != nil {
		log.Fatalf("-net: %v", err)
	}

	fmt.Printf("Nekbone: %d ranks, N=%d, %d elements/rank, %d CG iterations, gs=%s net=%s\n",
		*np, *n, (*local)*(*local)*(*local), *iters, *gsName, model.Name)

	reports := make([]nb.Report, *np)
	profs := make([]*prof.Profiler, *np)
	methods := make([]gs.Method, *np)
	stats, err := comm.Run(*np, comm.Options{
		Model: model, Grid: cfg.ProcGrid, Periodic: cfg.Periodic,
	}, func(r *comm.Rank) error {
		s, err := nb.New(r, cfg)
		if err != nil {
			return err
		}
		reports[r.ID()] = s.Run()
		profs[r.ID()] = s.Prof
		methods[r.ID()] = s.GS().Method()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := reports[0]
	fmt.Printf("done: iters=%d final residual=%.6e\n", rep.Iters, rep.Residual)
	fmt.Printf("gather-scatter method in use: %s\n", methods[0])
	fmt.Printf("wall time: %.3fs   modeled makespan: %.6fs\n", stats.Wall, stats.MaxVirtualTime())

	if *showProfile {
		fmt.Println()
		fmt.Print(report.Fig4ExecutionProfile(profs, stats))
		fmt.Println()
		fmt.Print(report.Fig9TopMPICalls(stats.AggregateSites(), 20, stats.TotalAppWall()))
	}
}
