// Command validate runs the mini-app's physics and bookkeeping
// verification battery end-to-end and prints PASS/FAIL per check — the
// quick acceptance run for a new machine or a modified kernel. It covers
// the invariants the test suite asserts, at slightly larger sizes:
//
//   - uniform flow is an exact steady state (free-stream preservation)
//   - mass/momentum conservation on a periodic box
//   - parallel runs match serial runs
//   - viscous shear-wave decay matches the analytic rate
//   - gather-scatter methods agree with each other
//   - checkpoint resume is bit-identical
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/solver"
)

type check struct {
	name string
	run  func() error
}

func main() {
	log.SetFlags(0)
	verbose := flag.Bool("v", false, "print details for passing checks too")
	cli.Parse()

	checks := []check{
		{"free-stream preservation", checkFreeStream},
		{"conservation on periodic box", checkConservation},
		{"parallel == serial", checkParallelSerial},
		{"viscous shear-wave decay rate", checkShearDecay},
		{"gather-scatter method agreement", checkGSAgreement},
		{"checkpoint resume determinism", checkResume},
	}
	failed := 0
	for _, c := range checks {
		err := c.run()
		if err != nil {
			failed++
			fmt.Printf("FAIL  %-34s %v\n", c.name, err)
		} else {
			fmt.Printf("PASS  %-34s\n", c.name)
			if *verbose {
				fmt.Printf("      ok\n")
			}
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks passed\n", len(checks))
}

func checkFreeStream() error {
	var worst float64
	_, err := comm.RunSimple(4, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(4, 7, 2)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		want := solver.UniformState(1.2, 0.3, -0.1, 0.2, 0.9)
		s.SetInitial(func(x, y, z float64) [solver.NumFields]float64 { return want })
		s.Run(5)
		for c := 0; c < solver.NumFields; c++ {
			for _, v := range s.U[c] {
				if d := math.Abs(v - want[c]); d > worst {
					worst = d
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if worst > 1e-10 {
		return fmt.Errorf("drift %g", worst)
	}
	return nil
}

func checkConservation() error {
	var drift float64
	_, err := comm.RunSimple(8, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(8, 6, 2)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(2, 2, 2, 0.2, 0.5))
		before := s.TotalMass()
		rep := s.Run(10)
		if r.ID() == 0 {
			drift = math.Abs(rep.Mass-before) / math.Abs(before)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if drift > 1e-10 {
		return fmt.Errorf("relative mass drift %g", drift)
	}
	return nil
}

func checkParallelSerial() error {
	// Gather the density field keyed by global element id and compare
	// the 1-rank and 8-rank runs of the same global problem.
	run := func(p int, grid [3]int) (map[int64][]float64, error) {
		result := map[int64][]float64{}
		_, err := comm.RunSimple(p, func(r *comm.Rank) error {
			cfg := solver.Config{
				N: 5, ProcGrid: grid, ElemGrid: [3]int{2, 2, 2},
				Periodic: [3]bool{true, true, true}, CFL: 0.25,
			}
			s, err := solver.New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
			s.Run(4)
			n3 := cfg.N * cfg.N * cfg.N
			if r.ID() != 0 {
				for e := 0; e < s.Local.Nel; e++ {
					g := s.Local.GlobalElemCoords(e)
					payload := append([]float64{float64(s.Local.Box.GlobalElemID(g))},
						s.U[solver.IRho][e*n3:(e+1)*n3]...)
					r.Send(0, 901, payload)
				}
				return nil
			}
			for e := 0; e < s.Local.Nel; e++ {
				g := s.Local.GlobalElemCoords(e)
				result[s.Local.Box.GlobalElemID(g)] = append([]float64(nil), s.U[solver.IRho][e*n3:(e+1)*n3]...)
			}
			for len(result) < s.Local.Box.TotalElems() {
				data := r.Recv(comm.AnySource, 901)
				result[int64(data[0])] = data[1:]
			}
			return nil
		})
		return result, err
	}
	serial, err := run(1, [3]int{1, 1, 1})
	if err != nil {
		return err
	}
	parallel, err := run(8, [3]int{2, 2, 2})
	if err != nil {
		return err
	}
	if len(serial) != len(parallel) {
		return fmt.Errorf("element counts differ: %d vs %d", len(serial), len(parallel))
	}
	for id, sv := range serial {
		pv := parallel[id]
		for i := range sv {
			if math.Abs(sv[i]-pv[i]) > 1e-9*(1+math.Abs(sv[i])) {
				return fmt.Errorf("element %d point %d: serial %g vs parallel %g", id, i, sv[i], pv[i])
			}
		}
	}
	return nil
}

func checkShearDecay() error {
	const mu = 0.02
	k := math.Pi
	want := mu * k * k
	run := func(m float64) (float64, error) {
		var rate float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := solver.DefaultConfig(1, 8, 2)
			cfg.Mu = m
			cfg.CFL = 0.25
			s, err := solver.New(r, cfg)
			if err != nil {
				return err
			}
			amp := 0.01
			s.SetInitial(func(x, y, z float64) [solver.NumFields]float64 {
				return solver.UniformState(1, 0, amp*math.Sin(k*x), 0, 1/solver.Gamma)
			})
			norm := func() float64 {
				n := cfg.N
				n3 := n * n * n
				local := 0.0
				for e := 0; e < s.Local.Nel; e++ {
					for kk := 0; kk < n; kk++ {
						for j := 0; j < n; j++ {
							for i := 0; i < n; i++ {
								w := s.Ref.W[i] * s.Ref.W[j] * s.Ref.W[kk] / 8
								v := s.U[solver.IMomY][e*n3+i+n*j+n*n*kk]
								local += w * v * v
							}
						}
					}
				}
				return math.Sqrt(local)
			}
			e0 := norm()
			elapsed := 0.0
			for elapsed < 0.5 {
				dt := s.StableDt()
				s.Step(dt)
				elapsed += dt
			}
			rate = math.Log(e0/norm()) / elapsed
			return nil
		})
		return rate, err
	}
	base, err := run(0)
	if err != nil {
		return err
	}
	visc, err := run(mu)
	if err != nil {
		return err
	}
	got := visc - base
	if math.Abs(got-want) > 0.15*want {
		return fmt.Errorf("decay rate %g, want %g +-15%%", got, want)
	}
	return nil
}

func checkGSAgreement() error {
	run := func(m gs.Method) (float64, error) {
		var digest float64
		_, err := comm.RunSimple(4, func(r *comm.Rank) error {
			cfg := solver.DefaultConfig(4, 5, 1)
			cfg.GSMethod = m
			s, err := solver.New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
			rep := s.Run(3)
			if r.ID() == 0 {
				digest = rep.Energy
			}
			return nil
		})
		return digest, err
	}
	ref, err := run(gs.Pairwise)
	if err != nil {
		return err
	}
	for _, m := range []gs.Method{gs.CrystalRouter, gs.AllReduce} {
		got, err := run(m)
		if err != nil {
			return err
		}
		if math.Abs(got-ref) > 1e-10*(1+math.Abs(ref)) {
			return fmt.Errorf("%v energy digest %g differs from pairwise %g", m, got, ref)
		}
	}
	return nil
}

func checkResume() error {
	cfg := solver.DefaultConfig(2, 5, 2)
	ic := solver.GaussianPulse(1, 1, 1, 0.1, 0.5)
	direct := make([][]float64, 2)
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(ic)
		s.Run(6)
		direct[r.ID()] = append([]float64(nil), s.U[solver.IEnergy]...)
		return nil
	})
	if err != nil {
		return err
	}
	snaps := make([]*checkpoint.Snapshot, 2)
	_, err = comm.RunSimple(2, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(ic)
		s.Run(3)
		var buf bytes.Buffer
		if err := checkpoint.Write(&buf, s, 3, 0); err != nil {
			return err
		}
		snap, err := checkpoint.Read(&buf)
		if err != nil {
			return err
		}
		snaps[r.ID()] = snap
		return nil
	})
	if err != nil {
		return err
	}
	var worst float64
	_, err = comm.RunSimple(2, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		if _, _, err := checkpoint.Restore(s, snaps[r.ID()]); err != nil {
			return err
		}
		s.Run(3)
		for i, v := range s.U[solver.IEnergy] {
			if d := math.Abs(v - direct[r.ID()][i]); d > worst {
				worst = d
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if worst != 0 {
		return fmt.Errorf("resume differs by %g", worst)
	}
	return nil
}
