//go:build !race

package repro

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
