// Package diag computes flow diagnostics over the distributed solver
// state: global kinetic energy, enstrophy-like velocity-gradient norms,
// extrema, and per-direction modal Legendre spectra. These are the
// quantities a turbulence code watches during a run — and the modal
// spectrum doubles as the resolution monitor driving filtering and
// adaptivity decisions on the CMT-nek roadmap.
package diag

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/comm"
	"repro/internal/sem"
	"repro/internal/solver"
)

// Summary holds scalar diagnostics of the flow state (all global).
type Summary struct {
	Mass           float64 // integral of density
	KineticEnergy  float64 // integral of rho |u|^2 / 2
	InternalEnergy float64 // integral of p / (gamma - 1)
	MaxMach        float64 // max |u| / c
	MinDensity     float64
	MaxDensity     float64
}

// Compute evaluates the scalar diagnostics. Collective (vector
// reductions).
func Compute(s *solver.Solver) Summary {
	n := s.Cfg.N
	n3 := n * n * n
	jac := 1.0 / 8 // (h/2)^3 for unit-cube elements
	var ke, ie, mass float64
	maxMach := 0.0
	minRho, maxRho := math.Inf(1), math.Inf(-1)
	var u [solver.NumFields]float64
	for e := 0; e < s.Local.Nel; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					idx := e*n3 + i + n*j + n*n*k
					w := s.Ref.W[i] * s.Ref.W[j] * s.Ref.W[k] * jac
					for c := 0; c < solver.NumFields; c++ {
						u[c] = s.U[c][idx]
					}
					rho := u[solver.IRho]
					mom2 := u[solver.IMomX]*u[solver.IMomX] +
						u[solver.IMomY]*u[solver.IMomY] +
						u[solver.IMomZ]*u[solver.IMomZ]
					keLoc := 0.5 * mom2 / rho
					p := (solver.Gamma - 1) * (u[solver.IEnergy] - keLoc)
					mass += w * rho
					ke += w * keLoc
					ie += w * p / (solver.Gamma - 1)
					speed := math.Sqrt(mom2) / rho
					c := math.Sqrt(solver.Gamma * p / rho)
					if m := speed / c; m > maxMach {
						maxMach = m
					}
					if rho < minRho {
						minRho = rho
					}
					if rho > maxRho {
						maxRho = rho
					}
				}
			}
		}
	}
	s.Rank.SetSite("diag")
	sums := s.Rank.Allreduce(comm.OpSum, []float64{mass, ke, ie})
	maxes := s.Rank.Allreduce(comm.OpMax, []float64{maxMach, maxRho})
	mins := s.Rank.Allreduce(comm.OpMin, []float64{minRho})
	s.Rank.SetSite("")
	return Summary{
		Mass:           sums[0],
		KineticEnergy:  sums[1],
		InternalEnergy: sums[2],
		MaxMach:        maxes[0],
		MaxDensity:     maxes[1],
		MinDensity:     mins[0],
	}
}

// Scalars returns the summary as a flat name -> value map, the form the
// telemetry step stream embeds per timestep.
func (d Summary) Scalars() map[string]float64 {
	return map[string]float64{
		"mass":            d.Mass,
		"kinetic_energy":  d.KineticEnergy,
		"internal_energy": d.InternalEnergy,
		"max_mach":        d.MaxMach,
		"min_density":     d.MinDensity,
		"max_density":     d.MaxDensity,
	}
}

// StepScalars is a solver.Config.StepDiag hook: it computes the scalar
// diagnostics (collectively — every rank must run it, which the step
// loop guarantees) and returns them for the step record.
func StepScalars(s *solver.Solver) map[string]float64 {
	return Compute(s).Scalars()
}

// String implements fmt.Stringer.
func (d Summary) String() string {
	return fmt.Sprintf("mass=%.9f KE=%.6e IE=%.6e maxMach=%.4f rho=[%.4f,%.4f]",
		d.Mass, d.KineticEnergy, d.InternalEnergy, d.MaxMach, d.MinDensity, d.MaxDensity)
}

// Spectrum is the global mean modal Legendre energy of one field per
// 1D mode index: Spectrum[k] aggregates every modal coefficient whose
// maximum directional index is k. A spectrum whose tail fails to decay
// flags an under-resolved run (the trigger for filtering/adaptivity).
type Spectrum []float64

// ModalSpectrum computes the spectrum of one conserved field.
// Collective.
func ModalSpectrum(s *solver.Solver, field int) Spectrum {
	n := s.Cfg.N
	n3 := n * n * n
	// Nodal -> modal: coefficients a = (V^-1 (x) V^-1 (x) V^-1) u, done
	// as a tensor apply with the inverse Vandermonde.
	vinv := sem.InvVandermonde(s.Ref.X)
	spec := make([]float64, n)
	modal := make([]float64, n3)
	scratch := make([]float64, sem.TensorScratchLen(n, n, n, n, n, n))
	for e := 0; e < s.Local.Nel; e++ {
		ue := s.U[field][e*n3 : (e+1)*n3]
		sem.TensorApply3(vinv, n, n, vinv, n, n, vinv, n, n, ue, modal, scratch)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					mode := i
					if j > mode {
						mode = j
					}
					if k > mode {
						mode = k
					}
					a := modal[i+n*j+n*n*k]
					spec[mode] += a * a
				}
			}
		}
	}
	s.Rank.SetSite("diag")
	out := s.Rank.Allreduce(comm.OpSum, spec)
	s.Rank.SetSite("")
	total := float64(s.Local.Box.TotalElems())
	for i := range out {
		out[i] /= total
	}
	return out
}

// DecayRatio returns the ratio of the highest mode's energy to the total
// — the resolution indicator (small is well-resolved).
func (sp Spectrum) DecayRatio() float64 {
	total := 0.0
	for _, v := range sp {
		total += v
	}
	if total == 0 {
		return 0
	}
	return sp[len(sp)-1] / total
}

// Format renders the spectrum as a log-scale ASCII chart.
func (sp Spectrum) Format() string {
	var b strings.Builder
	maxLog := math.Inf(-1)
	minLog := math.Inf(1)
	logs := make([]float64, len(sp))
	for i, v := range sp {
		if v <= 0 {
			logs[i] = math.Inf(-1)
			continue
		}
		logs[i] = math.Log10(v)
		if logs[i] > maxLog {
			maxLog = logs[i]
		}
		if logs[i] < minLog {
			minLog = logs[i]
		}
	}
	span := maxLog - minLog
	if span <= 0 {
		span = 1
	}
	for i, lg := range logs {
		width := 0
		if !math.IsInf(lg, -1) {
			width = int((lg - minLog) / span * 40)
		}
		fmt.Fprintf(&b, "mode %2d %10.3e |%s\n", i, sp[i], strings.Repeat("#", width))
	}
	return b.String()
}
