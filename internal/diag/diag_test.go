package diag

import (
	"math"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/solver"
)

func TestSummaryQuiescentFlow(t *testing.T) {
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(2, 5, 2)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(func(x, y, z float64) [solver.NumFields]float64 {
			return solver.UniformState(1, 0, 0, 0, 1/solver.Gamma)
		})
		d := Compute(s)
		volume := float64(cfg.ElemGrid[0] * cfg.ElemGrid[1] * cfg.ElemGrid[2])
		if math.Abs(d.Mass-volume) > 1e-10 {
			t.Errorf("mass = %v, want %v", d.Mass, volume)
		}
		if d.KineticEnergy != 0 {
			t.Errorf("KE = %v at rest", d.KineticEnergy)
		}
		if d.MaxMach != 0 {
			t.Errorf("Mach = %v at rest", d.MaxMach)
		}
		if d.MinDensity != 1 || d.MaxDensity != 1 {
			t.Errorf("density range [%v, %v]", d.MinDensity, d.MaxDensity)
		}
		wantIE := volume * (1 / solver.Gamma) / (solver.Gamma - 1)
		if math.Abs(d.InternalEnergy-wantIE) > 1e-9 {
			t.Errorf("IE = %v, want %v", d.InternalEnergy, wantIE)
		}
		if d.String() == "" {
			t.Error("empty summary string")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSummaryKineticEnergy(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(1, 5, 2)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		const u0 = 0.3
		s.SetInitial(func(x, y, z float64) [solver.NumFields]float64 {
			return solver.UniformState(2, u0, 0, 0, 1)
		})
		d := Compute(s)
		volume := 8.0 // 2x2x2 elements of unit cube
		want := 0.5 * 2 * u0 * u0 * volume
		if math.Abs(d.KineticEnergy-want) > 1e-10 {
			t.Errorf("KE = %v, want %v", d.KineticEnergy, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModalSpectrumOfLowModeField(t *testing.T) {
	// A field linear in x has energy only in modes 0 and 1.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(1, 6, 1)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(func(x, y, z float64) [solver.NumFields]float64 {
			u := solver.UniformState(1, 0, 0, 0, 1/solver.Gamma)
			u[solver.IRho] = 1 + 0.1*(2*x-1) // linear in reference coords
			return u
		})
		sp := ModalSpectrum(s, solver.IRho)
		if len(sp) != 6 {
			t.Fatalf("spectrum length %d", len(sp))
		}
		if sp[0] <= 0 || sp[1] <= 0 {
			t.Errorf("modes 0/1 empty: %v", sp)
		}
		for k := 2; k < 6; k++ {
			if sp[k] > 1e-20 {
				t.Errorf("mode %d has spurious energy %v", k, sp[k])
			}
		}
		if r := sp.DecayRatio(); r > 1e-15 {
			t.Errorf("decay ratio %v for a resolved field", r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModalSpectrumFlagsRoughField(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(1, 5, 1)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		// Alternate the density pointwise: maximal high-mode content.
		s.SetInitial(func(x, y, z float64) [solver.NumFields]float64 {
			return solver.UniformState(1, 0, 0, 0, 1/solver.Gamma)
		})
		for i := range s.U[solver.IRho] {
			if i%2 == 0 {
				s.U[solver.IRho][i] += 0.1
			} else {
				s.U[solver.IRho][i] -= 0.1
			}
		}
		sp := ModalSpectrum(s, solver.IRho)
		if sp.DecayRatio() < 0.01 {
			t.Errorf("rough field not flagged: decay ratio %v", sp.DecayRatio())
		}
		out := sp.Format()
		if !strings.Contains(out, "mode  0") {
			t.Errorf("format output missing modes:\n%s", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpectrumConsistentAcrossRanks(t *testing.T) {
	// The spectrum is a global quantity: every rank must compute the
	// same values.
	spectra := make([]Spectrum, 4)
	_, err := comm.RunSimple(4, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(4, 5, 1)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		spectra[r.ID()] = ModalSpectrum(s, solver.IRho)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk := 1; rk < 4; rk++ {
		for k := range spectra[0] {
			if math.Abs(spectra[rk][k]-spectra[0][k]) > 1e-12*(1+spectra[0][k]) {
				t.Fatalf("rank %d spectrum differs at mode %d", rk, k)
			}
		}
	}
}
