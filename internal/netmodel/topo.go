package netmodel

import "fmt"

// Topology is a link-graph network model: ranks live on nodes, nodes hang
// off a switch fabric (two-level fat-tree or dragonfly), and every
// inter-node message is priced along its minimal route — the sum of the
// per-link latencies plus the payload over the bottleneck link's
// effective bandwidth. Intra-node messages never touch the fabric; they
// are priced by the (much smaller) IntraAlpha/IntraBeta pair, which is
// what makes node-aware communication structure worth modeling at all.
//
// Congestion is deterministic and sender-computable, preserving the
// repo's bit-reproducibility invariant (no shared mutable link state on
// the hot path). Two mechanisms compose:
//
//   - A static background load factor (SetBackgroundLoad): every link's
//     effective per-byte time is scaled by
//     1 + load*max(0, Sharers/Width - 1), where Sharers is the number of
//     ranks whose minimal routes can use the link and Width its parallel
//     capacity. Monotone in load; zero load prices the unloaded fabric.
//   - A per-message concurrency factor: the sender declares how many
//     co-located ranks on its node are sending in the same communication
//     round (collectives know their own round structure; point-to-point
//     traffic defaults to 1). The declared node-level flow count is
//     scaled up the tree under a homogeneity assumption — every node
//     under a leaf (router, group) contributes the same concurrent flow
//     count — and each link's per-byte time is multiplied by
//     max(1, flows/Width). This is the fluid bandwidth-sharing model
//     that makes a flat allreduce (every rank injecting every round) pay
//     for NIC and uplink contention that a node-leader collective avoids.
//
// A third, pattern-exact view — ReplayCongestion — replays a traced flow
// set through per-link queues offline; it is pure and deterministic and
// feeds the congested-link attribution on benchdiff blame lines.
type Topology struct {
	name         string
	ranks        int
	ranksPerNode int

	// Intra-node (shared-memory) pricing.
	IntraAlpha float64
	IntraBeta  float64

	links []Link
	load  float64

	kind topoKind

	// Fat-tree shape.
	nodesPerLeaf int
	leaves       int

	// Dragonfly shape.
	nodesPerRouter  int
	routersPerGroup int
	groups          int
}

type topoKind int

const (
	kindFatTree topoKind = iota
	kindDragonfly
)

// LinkClass identifies a link's level in the fabric.
type LinkClass int

const (
	// ClassNIC is a node's injection/ejection link to its first switch.
	ClassNIC LinkClass = iota
	// ClassLeafSpine is a fat-tree leaf's aggregated uplink bundle.
	ClassLeafSpine
	// ClassLocal is a dragonfly intra-group router-to-router link.
	ClassLocal
	// ClassGlobal is a dragonfly group-to-group link.
	ClassGlobal
)

// String implements fmt.Stringer.
func (c LinkClass) String() string {
	switch c {
	case ClassNIC:
		return "nic"
	case ClassLeafSpine:
		return "leaf-spine"
	case ClassLocal:
		return "local"
	case ClassGlobal:
		return "global"
	}
	return fmt.Sprintf("LinkClass(%d)", int(c))
}

// Link is one directed link (or aggregated bundle) of the fabric.
type Link struct {
	Name  string
	Class LinkClass
	// Alpha is the per-traversal latency share of this link; a route's
	// latency is the sum of its links' alphas.
	Alpha float64
	// Beta is the per-byte time of one lane of the link (1/bandwidth).
	Beta float64
	// Width is the number of parallel lanes: W concurrent flows cross at
	// full speed, beyond that they share.
	Width float64
	// Sharers is the number of ranks whose minimal routes can use the
	// link — the population the background-load factor draws from.
	Sharers int
}

// Name identifies the topology in reports.
func (t *Topology) Name() string { return t.name }

// Ranks returns the number of modeled ranks the topology hosts.
func (t *Topology) Ranks() int { return t.ranks }

// RanksPerNode returns the ranks hosted on each node.
func (t *Topology) RanksPerNode() int { return t.ranksPerNode }

// Nodes returns the node count.
func (t *Topology) Nodes() int { return t.ranks / t.ranksPerNode }

// NodeOf returns the node hosting a rank (block mapping: contiguous
// ranks share a node, the layout mpirun-style launchers produce).
func (t *Topology) NodeOf(rank int) int { return rank / t.ranksPerNode }

// NodeMap returns the rank→node map, the input a comm.Hierarchy is
// built from.
func (t *Topology) NodeMap() []int {
	m := make([]int, t.ranks)
	for r := range m {
		m[r] = r / t.ranksPerNode
	}
	return m
}

// Links returns a copy of the link table.
func (t *Topology) Links() []Link { return append([]Link(nil), t.links...) }

// SetBackgroundLoad sets the uniform offered-load fraction in [0,1] the
// static congestion factor prices. Not safe to call while a run is in
// flight: set it before comm.Run.
func (t *Topology) SetBackgroundLoad(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	t.load = u
}

// BackgroundLoad returns the configured offered-load fraction.
func (t *Topology) BackgroundLoad() float64 { return t.load }

// congest returns the effective per-byte multiplier of link l for a
// sender that declared nodeFlows concurrent co-located flows.
func (t *Topology) congest(l *Link, nodeFlows int) float64 {
	f := 1.0
	if t.load > 0 {
		if over := float64(l.Sharers)/l.Width - 1; over > 0 {
			f += t.load * over
		}
	}
	if nodeFlows < 1 {
		nodeFlows = 1
	}
	// Homogeneity assumption: every node below the link's level injects
	// the same number of concurrent flows.
	flows := float64(nodeFlows)
	switch l.Class {
	case ClassLeafSpine:
		flows *= float64(t.nodesPerLeaf)
	case ClassLocal:
		flows *= float64(t.nodesPerRouter)
	case ClassGlobal:
		flows *= float64(t.nodesPerRouter * t.routersPerGroup)
	}
	if share := flows / l.Width; share > 1 {
		f *= share
	}
	return f
}

// Route appends the link indices of the minimal route from src to dst
// (world ranks) to buf and returns it. An intra-node pair has an empty
// route. Routes are computed arithmetically; no graph search.
func (t *Topology) Route(src, dst int, buf []int) []int {
	ns, nd := t.NodeOf(src), t.NodeOf(dst)
	if ns == nd {
		return buf
	}
	switch t.kind {
	case kindFatTree:
		buf = append(buf, t.ftNICUp(ns))
		ls, ld := ns/t.nodesPerLeaf, nd/t.nodesPerLeaf
		if ls != ld {
			buf = append(buf, t.ftLeafUp(ls), t.ftLeafDown(ld))
		}
		return append(buf, t.ftNICDown(nd))
	default: // kindDragonfly
		buf = append(buf, t.dfNICUp(ns))
		rs, rd := ns/t.nodesPerRouter, nd/t.nodesPerRouter
		gs, gd := rs/t.routersPerGroup, rd/t.routersPerGroup
		lrs, lrd := rs%t.routersPerGroup, rd%t.routersPerGroup
		if gs == gd {
			if lrs != lrd {
				buf = append(buf, t.dfLocal(gs, lrs, lrd))
			}
		} else {
			// Minimal route: hop to the gateway router of the source
			// group for the destination group, cross the global link,
			// then hop from the receiving gateway to the target router.
			gwS := gd % t.routersPerGroup
			gwD := gs % t.routersPerGroup
			if lrs != gwS {
				buf = append(buf, t.dfLocal(gs, lrs, gwS))
			}
			buf = append(buf, t.dfGlobal(gs, gd))
			if gwD != lrd {
				buf = append(buf, t.dfLocal(gd, gwD, lrd))
			}
		}
		return append(buf, t.dfNICDown(nd))
	}
}

// MinRouteLinks returns the number of fabric links on the minimal route
// (0 for an intra-node pair).
func (t *Topology) MinRouteLinks(src, dst int) int {
	var buf [8]int
	return len(t.Route(src, dst, buf[:0]))
}

// PairCost prices a message of size bytes from src to dst (world ranks):
// the modeled one-way transfer cost, the sender-side injection overhead
// (inject is the model's InjectionFactor), and the route's link count.
// nodeFlows is the sender-declared count of co-located concurrent flows
// (see the type comment); values below 1 mean a lone flow.
func (t *Topology) PairCost(src, dst, size int, inject float64, nodeFlows int) (cost, overhead float64, links int) {
	if t.NodeOf(src) == t.NodeOf(dst) {
		cost = t.IntraAlpha + t.IntraBeta*float64(size)
		overhead = t.IntraAlpha + inject*t.IntraBeta*float64(size)
		return cost, overhead, 0
	}
	var buf [8]int
	route := t.Route(src, dst, buf[:0])
	alpha, betaEff := 0.0, 0.0
	for _, id := range route {
		l := &t.links[id]
		alpha += l.Alpha
		if b := l.Beta * t.congest(l, nodeFlows); b > betaEff {
			betaEff = b
		}
	}
	cost = alpha + betaEff*float64(size)
	overhead = alpha + inject*betaEff*float64(size)
	return cost, overhead, len(route)
}

// ---- fat-tree ----

// FatTreeConfig parameterizes a two-level (leaf/spine) fat-tree.
type FatTreeConfig struct {
	RanksPerNode int
	NodesPerLeaf int
	Leaves       int
	// Oversub is the leaf downlink:uplink ratio; 1 = full bisection. A
	// leaf's uplink bundle has Width = NodesPerLeaf/Oversub lanes.
	Oversub float64
	// Intra-node pricing.
	IntraAlpha, IntraBeta float64
	// Per-NIC-link latency and per-byte time (one NIC traversal each at
	// the source and destination node).
	LinkAlpha, LinkBeta float64
	// Per-leaf-spine-traversal latency and per-byte time (two
	// traversals on a cross-leaf route). Zero SpineBeta means LinkBeta.
	SpineAlpha, SpineBeta float64
}

// FatTree builds a two-level fat-tree topology.
func FatTree(cfg FatTreeConfig) (*Topology, error) {
	if cfg.RanksPerNode < 1 || cfg.NodesPerLeaf < 1 || cfg.Leaves < 1 {
		return nil, fmt.Errorf("netmodel: fat-tree needs positive shape, got rpn=%d npl=%d leaves=%d",
			cfg.RanksPerNode, cfg.NodesPerLeaf, cfg.Leaves)
	}
	if cfg.Oversub <= 0 {
		cfg.Oversub = 1
	}
	if cfg.SpineBeta == 0 {
		cfg.SpineBeta = cfg.LinkBeta
	}
	nodes := cfg.NodesPerLeaf * cfg.Leaves
	t := &Topology{
		name:         fmt.Sprintf("fat-tree/%dx%dx%d", cfg.Leaves, cfg.NodesPerLeaf, cfg.RanksPerNode),
		ranks:        nodes * cfg.RanksPerNode,
		ranksPerNode: cfg.RanksPerNode,
		IntraAlpha:   cfg.IntraAlpha,
		IntraBeta:    cfg.IntraBeta,
		kind:         kindFatTree,
		nodesPerLeaf: cfg.NodesPerLeaf,
		leaves:       cfg.Leaves,
	}
	uplinks := float64(cfg.NodesPerLeaf) / cfg.Oversub
	if uplinks < 1 {
		uplinks = 1
	}
	t.links = make([]Link, 2*nodes+2*cfg.Leaves)
	for n := 0; n < nodes; n++ {
		t.links[2*n] = Link{
			Name: fmt.Sprintf("nic-up:n%d", n), Class: ClassNIC,
			Alpha: cfg.LinkAlpha, Beta: cfg.LinkBeta, Width: 1, Sharers: cfg.RanksPerNode,
		}
		t.links[2*n+1] = Link{
			Name: fmt.Sprintf("nic-down:n%d", n), Class: ClassNIC,
			Alpha: cfg.LinkAlpha, Beta: cfg.LinkBeta, Width: 1, Sharers: cfg.RanksPerNode,
		}
	}
	base := 2 * nodes
	for l := 0; l < cfg.Leaves; l++ {
		t.links[base+2*l] = Link{
			Name: fmt.Sprintf("leaf-up:l%d", l), Class: ClassLeafSpine,
			Alpha: cfg.SpineAlpha, Beta: cfg.SpineBeta, Width: uplinks,
			Sharers: cfg.NodesPerLeaf * cfg.RanksPerNode,
		}
		t.links[base+2*l+1] = Link{
			Name: fmt.Sprintf("leaf-down:l%d", l), Class: ClassLeafSpine,
			Alpha: cfg.SpineAlpha, Beta: cfg.SpineBeta, Width: uplinks,
			Sharers: cfg.NodesPerLeaf * cfg.RanksPerNode,
		}
	}
	return t, nil
}

func (t *Topology) ftNICUp(node int) int   { return 2 * node }
func (t *Topology) ftNICDown(node int) int { return 2*node + 1 }
func (t *Topology) ftLeafUp(leaf int) int {
	return 2*t.nodesPerLeaf*t.leaves + 2*leaf
}
func (t *Topology) ftLeafDown(leaf int) int {
	return 2*t.nodesPerLeaf*t.leaves + 2*leaf + 1
}

// ---- dragonfly ----

// DragonflyConfig parameterizes a dragonfly: nodes attach to routers,
// routers form an all-to-all group, groups connect pairwise by global
// links.
type DragonflyConfig struct {
	RanksPerNode    int
	NodesPerRouter  int
	RoutersPerGroup int
	Groups          int
	// Intra-node pricing.
	IntraAlpha, IntraBeta float64
	// NIC link parameters.
	LinkAlpha, LinkBeta float64
	// Intra-group router-to-router link parameters.
	LocalAlpha, LocalBeta float64
	// Group-to-group (long optical) link parameters. GlobalWidth is the
	// number of parallel global cables per group pair (default 1).
	GlobalAlpha, GlobalBeta float64
	GlobalWidth             float64
}

// Dragonfly builds a dragonfly topology with minimal routing.
func Dragonfly(cfg DragonflyConfig) (*Topology, error) {
	if cfg.RanksPerNode < 1 || cfg.NodesPerRouter < 1 || cfg.RoutersPerGroup < 1 || cfg.Groups < 1 {
		return nil, fmt.Errorf("netmodel: dragonfly needs positive shape, got rpn=%d p=%d a=%d g=%d",
			cfg.RanksPerNode, cfg.NodesPerRouter, cfg.RoutersPerGroup, cfg.Groups)
	}
	if cfg.GlobalWidth <= 0 {
		cfg.GlobalWidth = 1
	}
	nodes := cfg.NodesPerRouter * cfg.RoutersPerGroup * cfg.Groups
	t := &Topology{
		name: fmt.Sprintf("dragonfly/g%da%dp%dx%d",
			cfg.Groups, cfg.RoutersPerGroup, cfg.NodesPerRouter, cfg.RanksPerNode),
		ranks:           nodes * cfg.RanksPerNode,
		ranksPerNode:    cfg.RanksPerNode,
		IntraAlpha:      cfg.IntraAlpha,
		IntraBeta:       cfg.IntraBeta,
		kind:            kindDragonfly,
		nodesPerRouter:  cfg.NodesPerRouter,
		routersPerGroup: cfg.RoutersPerGroup,
		groups:          cfg.Groups,
	}
	a, g := cfg.RoutersPerGroup, cfg.Groups
	nLocal := g * a * a
	t.links = make([]Link, 2*nodes+nLocal+g*g)
	for n := 0; n < nodes; n++ {
		t.links[2*n] = Link{
			Name: fmt.Sprintf("nic-up:n%d", n), Class: ClassNIC,
			Alpha: cfg.LinkAlpha, Beta: cfg.LinkBeta, Width: 1, Sharers: cfg.RanksPerNode,
		}
		t.links[2*n+1] = Link{
			Name: fmt.Sprintf("nic-down:n%d", n), Class: ClassNIC,
			Alpha: cfg.LinkAlpha, Beta: cfg.LinkBeta, Width: 1, Sharers: cfg.RanksPerNode,
		}
	}
	localBase := 2 * nodes
	perRouter := cfg.NodesPerRouter * cfg.RanksPerNode
	for gi := 0; gi < g; gi++ {
		for rs := 0; rs < a; rs++ {
			for rd := 0; rd < a; rd++ {
				t.links[localBase+(gi*a+rs)*a+rd] = Link{
					Name: fmt.Sprintf("local:g%d:r%d-r%d", gi, rs, rd), Class: ClassLocal,
					Alpha: cfg.LocalAlpha, Beta: cfg.LocalBeta, Width: 1, Sharers: perRouter,
				}
			}
		}
	}
	globalBase := localBase + nLocal
	perGroup := perRouter * a
	for gs := 0; gs < g; gs++ {
		for gd := 0; gd < g; gd++ {
			t.links[globalBase+gs*g+gd] = Link{
				Name: fmt.Sprintf("global:g%d-g%d", gs, gd), Class: ClassGlobal,
				Alpha: cfg.GlobalAlpha, Beta: cfg.GlobalBeta, Width: cfg.GlobalWidth, Sharers: perGroup,
			}
		}
	}
	return t, nil
}

func (t *Topology) dfNICUp(node int) int   { return 2 * node }
func (t *Topology) dfNICDown(node int) int { return 2*node + 1 }
func (t *Topology) dfLocal(group, rs, rd int) int {
	nodes := t.nodesPerRouter * t.routersPerGroup * t.groups
	return 2*nodes + (group*t.routersPerGroup+rs)*t.routersPerGroup + rd
}
func (t *Topology) dfGlobal(gs, gd int) int {
	nodes := t.nodesPerRouter * t.routersPerGroup * t.groups
	return 2*nodes + t.groups*t.routersPerGroup*t.routersPerGroup + gs*t.groups + gd
}

// ---- preset cluster builders ----

// FatTreeCluster builds a QDR-class fat-tree hosting ranks modeled ranks:
// 16 ranks per node, 16 nodes per leaf, 2:1 oversubscribed uplinks.
// ranks must be a multiple of 16; clusters smaller than one full leaf
// get a single leaf. This is the configuration the scalebench hier study
// and its committed baseline use.
func FatTreeCluster(ranks int) (*Topology, error) {
	const rpn = 16
	if ranks < rpn || ranks%rpn != 0 {
		return nil, fmt.Errorf("netmodel: fat-tree cluster needs a multiple of %d ranks, got %d", rpn, ranks)
	}
	nodes := ranks / rpn
	npl := 16
	if nodes < npl {
		npl = nodes
	}
	if nodes%npl != 0 {
		return nil, fmt.Errorf("netmodel: fat-tree cluster: %d nodes do not tile %d-node leaves", nodes, npl)
	}
	return FatTree(FatTreeConfig{
		RanksPerNode: rpn,
		NodesPerLeaf: npl,
		Leaves:       nodes / npl,
		Oversub:      2,
		IntraAlpha:   2.5e-7, IntraBeta: 8e-11,
		LinkAlpha: 6.5e-7, LinkBeta: 3.1e-10,
		SpineAlpha: 5e-7,
	})
}

// DragonflyCluster builds a QDR-class dragonfly hosting ranks modeled
// ranks: 16 ranks per node, 4 nodes per router, groups of 8 routers
// (shrunk proportionally below 2048 ranks so at least 2 groups exist).
func DragonflyCluster(ranks int) (*Topology, error) {
	const rpn = 16
	if ranks < 2*rpn || ranks%rpn != 0 {
		return nil, fmt.Errorf("netmodel: dragonfly cluster needs a multiple of %d ranks (>= %d), got %d", rpn, 2*rpn, ranks)
	}
	nodes := ranks / rpn
	p := 4
	if nodes < 2*p {
		p = nodes / 2
	}
	g := nodes / (p * 8) // aim for 8-router groups
	if g < 2 {
		g = 2
	}
	if nodes%(p*g) != 0 {
		return nil, fmt.Errorf("netmodel: dragonfly cluster: %d nodes do not tile p=%d groups=%d", nodes, p, g)
	}
	return Dragonfly(DragonflyConfig{
		RanksPerNode:   rpn,
		NodesPerRouter: p,
		RoutersPerGroup: nodes / (p * g),
		Groups:          g,
		IntraAlpha:      2.5e-7, IntraBeta: 8e-11,
		LinkAlpha: 6.5e-7, LinkBeta: 3.1e-10,
		LocalAlpha: 5e-7, LocalBeta: 3.1e-10,
		GlobalAlpha: 2e-6, GlobalBeta: 3.1e-10, GlobalWidth: 2,
	})
}
