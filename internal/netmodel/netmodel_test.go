package netmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostScalesWithSize(t *testing.T) {
	m := QDR
	small := m.Cost(8, 1)
	big := m.Cost(8*1024*1024, 1)
	if big <= small {
		t.Fatalf("cost should grow with size: %g vs %g", small, big)
	}
	want := m.Alpha + m.Beta*8
	if math.Abs(small-want) > 1e-18 {
		t.Fatalf("Cost(8,1) = %g, want %g", small, want)
	}
}

func TestCostHops(t *testing.T) {
	m := QDR
	if m.Cost(64, 4) <= m.Cost(64, 1) {
		t.Fatal("more hops should cost more on a distance-sensitive model")
	}
	flat := Loopback // SwitchHops == 0
	if flat.Cost(64, 4) != flat.Cost(64, 1) {
		t.Fatal("flat model must ignore hops")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, m.Name)
		}
		if m.Alpha <= 0 || m.Beta <= 0 || m.GammaCompute <= 0 {
			t.Fatalf("preset %q has nonpositive parameters: %+v", name, m)
		}
	}
	if _, err := ByName("no-such-machine"); err == nil {
		t.Fatal("ByName should fail for unknown models")
	}
}

func TestPresetOrdering(t *testing.T) {
	// Sanity of hardware-class ordering: loopback < QDR < GigE latency.
	if !(Loopback.Alpha < QDR.Alpha && QDR.Alpha < GigE.Alpha) {
		t.Fatal("latency presets out of order")
	}
	if !(Loopback.Beta < QDR.Beta && QDR.Beta < GigE.Beta) {
		t.Fatal("bandwidth presets out of order")
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(Loopback)
	if c.Now() != 0 {
		t.Fatal("clock must start at zero")
	}
	c.Advance(1.5)
	c.Advance(-3) // negative must be ignored
	if c.Now() != 1.5 {
		t.Fatalf("Now = %g, want 1.5", c.Now())
	}
	c.AdvanceCompute(2)
	if c.Now() != 1.5+2*Loopback.GammaCompute {
		t.Fatalf("Now = %g after compute", c.Now())
	}
}

func TestClockComputeScaling(t *testing.T) {
	c := NewClock(Exascale)
	c.AdvanceCompute(10)
	want := 10 * Exascale.GammaCompute
	if math.Abs(c.Now()-want) > 1e-12 {
		t.Fatalf("modeled compute %g, want %g", c.Now(), want)
	}
}

func TestSendStamp(t *testing.T) {
	c := NewClock(QDR)
	arrival := c.SendStamp(1024, 1)
	if arrival <= 0 {
		t.Fatal("arrival must be positive")
	}
	// Sender is only charged the injection overhead, not the wire time.
	if c.Now() != QDR.Alpha {
		t.Fatalf("sender clock = %g, want alpha = %g", c.Now(), QDR.Alpha)
	}
	if arrival < c.Now() {
		t.Fatal("arrival must not precede the sender's clock")
	}
}

func TestWaitUntil(t *testing.T) {
	c := NewClock(QDR)
	c.Advance(5)
	if w := c.WaitUntil(3); w != 0 {
		t.Fatalf("waiting for the past should be free, got %g", w)
	}
	if c.Now() != 5 {
		t.Fatal("WaitUntil must never move the clock backwards")
	}
	if w := c.WaitUntil(7.5); math.Abs(w-2.5) > 1e-12 {
		t.Fatalf("wait = %g, want 2.5", w)
	}
	if c.Now() != 7.5 {
		t.Fatalf("clock = %g, want 7.5", c.Now())
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Property: no sequence of operations ever decreases the clock.
	f := func(steps []float64) bool {
		c := NewClock(QDR)
		prev := 0.0
		for i, s := range steps {
			switch i % 3 {
			case 0:
				c.Advance(s)
			case 1:
				c.AdvanceCompute(s)
			case 2:
				c.WaitUntil(s)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostNonNegativeProperty(t *testing.T) {
	f := func(size uint16, hops uint8) bool {
		for _, m := range []Model{Loopback, QDR, GigE, Exascale} {
			if m.Cost(int(size), int(hops)) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInjectionFactorStallsSender(t *testing.T) {
	offload := Model{Name: "offload", Alpha: 1e-6, Beta: 1e-9, GammaCompute: 1}
	hostNIC := offload
	hostNIC.InjectionFactor = 1
	c1 := NewClock(offload)
	c2 := NewClock(hostNIC)
	const size = 1 << 20
	a1 := c1.SendStamp(size, 1)
	a2 := c2.SendStamp(size, 1)
	if a1 != a2 {
		t.Fatalf("arrival times must not depend on injection factor: %v vs %v", a1, a2)
	}
	if c2.Now() <= c1.Now() {
		t.Fatalf("host-driven sender should be stalled longer: %v vs %v", c2.Now(), c1.Now())
	}
	// Fully host-driven: sender stalled for alpha + full wire byte time.
	want := offload.Alpha + offload.Beta*size
	if math.Abs(c2.Now()-want) > 1e-15 {
		t.Fatalf("sender stall = %v, want %v", c2.Now(), want)
	}
}

func TestPhaseAccountingSumsToNow(t *testing.T) {
	c := NewClock(GigE)
	// Nested phases interleaved with every kind of clock mutation.
	pop := c.PushPhase("rhs")
	c.AdvanceCompute(1e-3)
	c.Advance(2e-4)
	inner := c.PushPhase("gs-exchange")
	arrival := c.SendStamp(4096, 2)
	c.WaitUntil(arrival)
	inner()
	if c.Phase() != "rhs" {
		t.Fatalf("phase after pop = %q, want rhs", c.Phase())
	}
	c.Advance(5e-5)
	pop()
	// Charges outside any phase land in the "" bucket.
	c.AdvanceCompute(3e-4)
	c.WaitUntil(c.Now()) // no-op wait charges nothing

	var sum float64
	for _, s := range c.PhaseSplits() {
		sum += s.Total()
	}
	if sum != c.Now() {
		t.Fatalf("sum of phase splits = %v, Now = %v (must be exact)", sum, c.Now())
	}
	sp := c.PhaseSplits()
	if sp["gs-exchange"].Wait == 0 || sp["gs-exchange"].Send == 0 {
		t.Fatalf("gs-exchange should have wait and send time: %+v", sp["gs-exchange"])
	}
	if sp["rhs"].Compute == 0 || sp["rhs"].Wait != 0 {
		t.Fatalf("rhs should be compute-only: %+v", sp["rhs"])
	}
	if sp[""].Compute == 0 {
		t.Fatalf("out-of-phase compute should land in \"\": %+v", sp[""])
	}
}

func TestPushPhaseEmptyKeepsEnclosing(t *testing.T) {
	c := NewClock(Loopback)
	pop := c.PushPhase("rk")
	noop := c.PushPhase("")
	c.Advance(1e-6)
	noop()
	pop()
	if got := c.PhaseSplits()["rk"].Compute; got == 0 {
		t.Fatalf("empty push must keep enclosing phase, rk.Compute = %v", got)
	}
}

func TestPhaseAccountingDoesNotPerturbClock(t *testing.T) {
	run := func(withPhases bool) float64 {
		c := NewClock(QDR)
		var pop func()
		if withPhases {
			pop = c.PushPhase("rhs")
		}
		c.AdvanceCompute(1e-3)
		a := c.SendStamp(1<<16, 3)
		c.WaitUntil(a)
		if withPhases {
			pop()
		}
		return c.Now()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("phase accounting changed the clock: %v vs %v", a, b)
	}
}
