package netmodel

import (
	"math"
	"testing"
)

// flatEquivFatTree builds a fat-tree whose route pricing should collapse
// to the flat model m for every pair: intra-node pricing equals the flat
// pair, NIC links carry half the latency each, spine traversals are
// free, every link runs at the flat Beta, and full bisection keeps all
// concurrency shares at 1.
func flatEquivFatTree(t *testing.T, m Model) *Topology {
	t.Helper()
	topo, err := FatTree(FatTreeConfig{
		RanksPerNode: 4, NodesPerLeaf: 8, Leaves: 4, Oversub: 1,
		IntraAlpha: m.Alpha, IntraBeta: m.Beta,
		LinkAlpha: m.Alpha / 2, LinkBeta: m.Beta,
		SpineAlpha: 0, SpineBeta: m.Beta,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// A zero-congestion fat-tree with matched parameters must price every
// pair exactly like the flat alpha-beta model (bitwise: the hierarchy
// layer relies on topology pricing degrading gracefully).
func TestFatTreeZeroCongestionReducesToFlat(t *testing.T) {
	m := QDR
	m.SwitchHops = 0
	topo := flatEquivFatTree(t, m)
	for _, size := range []int{0, 8, 512, 65536} {
		want := m.Cost(size, 1)
		wantOver := m.Alpha + m.InjectionFactor*m.Beta*float64(size)
		for _, pair := range [][2]int{{0, 1}, {0, 5}, {3, 17}, {0, 127}, {40, 90}} {
			cost, over, _ := topo.PairCost(pair[0], pair[1], size, m.InjectionFactor, 1)
			if math.Float64bits(cost) != math.Float64bits(want) {
				t.Errorf("pair %v size %d: topo cost %.12e, flat %.12e", pair, size, cost, want)
			}
			if math.Float64bits(over) != math.Float64bits(wantOver) {
				t.Errorf("pair %v size %d: topo overhead %.12e, flat %.12e", pair, size, over, wantOver)
			}
		}
	}
}

// Pricing must be monotone in the background offered load, for every
// route class and concurrency level.
func TestCongestionMonotoneInLoad(t *testing.T) {
	topo, err := FatTreeCluster(512)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{
		{0, 1},    // intra-node
		{0, 17},   // same leaf, different node
		{0, 300},  // cross-leaf
	}
	for _, flows := range []int{1, 4, 16} {
		for _, pair := range pairs {
			prev := -1.0
			for load := 0.0; load <= 1.0; load += 0.125 {
				topo.SetBackgroundLoad(load)
				cost, _, _ := topo.PairCost(pair[0], pair[1], 4096, 0, flows)
				if cost < prev {
					t.Fatalf("pair %v flows %d: cost decreased from %.3e to %.3e at load %.3f",
						pair, flows, prev, cost, load)
				}
				prev = cost
			}
		}
	}
	topo.SetBackgroundLoad(0)
}

// Declared sender concurrency must never make a message cheaper, and
// oversubscribed links must get strictly more expensive once declared
// flows exceed the width.
func TestConcurrencyMonotone(t *testing.T) {
	topo, err := FatTreeCluster(512) // 2:1 oversubscribed uplinks
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, flows := range []int{1, 2, 4, 8, 16} {
		cost, _, _ := topo.PairCost(0, 300, 4096, 0, flows)
		if cost < prev {
			t.Fatalf("flows %d: cross-leaf cost decreased %.3e -> %.3e", flows, prev, cost)
		}
		prev = cost
	}
	lone, _, _ := topo.PairCost(0, 300, 65536, 0, 1)
	full, _, _ := topo.PairCost(0, 300, 65536, 0, 16)
	if full <= lone {
		t.Fatalf("16 concurrent node flows priced %.3e, not above lone flow %.3e", full, lone)
	}
}

func TestFatTreeRouteCounts(t *testing.T) {
	topo, err := FatTree(FatTreeConfig{
		RanksPerNode: 2, NodesPerLeaf: 2, Leaves: 2,
		LinkAlpha: 1e-6, LinkBeta: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ src, dst, want int }{
		{0, 1, 0}, // same node
		{0, 2, 2}, // same leaf: nic up + nic down
		{0, 4, 4}, // cross leaf: + leaf up + leaf down
		{3, 7, 4},
	}
	for _, c := range cases {
		if got := topo.MinRouteLinks(c.src, c.dst); got != c.want {
			t.Errorf("route %d->%d: %d links, want %d", c.src, c.dst, got, c.want)
		}
	}
}

// Hand-computed minimal-route link counts for a 2-group dragonfly:
// rpn=2, 2 nodes/router, 2 routers/group. Ranks 0..7 are group 0
// (routers 0,1), ranks 8..15 group 1 (routers 2,3).
func TestDragonflyMinRouteCounts(t *testing.T) {
	topo, err := Dragonfly(DragonflyConfig{
		RanksPerNode: 2, NodesPerRouter: 2, RoutersPerGroup: 2, Groups: 2,
		LinkAlpha: 1e-6, LinkBeta: 1e-9, LocalAlpha: 1e-6, LocalBeta: 1e-9,
		GlobalAlpha: 2e-6, GlobalBeta: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Ranks() != 16 {
		t.Fatalf("ranks = %d, want 16", topo.Ranks())
	}
	cases := []struct {
		name           string
		src, dst, want int
	}{
		{"same node", 0, 1, 0},
		{"same router", 0, 2, 2},            // nic up + nic down
		{"same group, other router", 0, 4, 3}, // + one local hop
		// Cross-group aligned: src on its group's gateway router for
		// group 1 (gw = 1%2 = 1, nodes 2,3 → ranks 4..7), dst on group
		// 1's receiving gateway (gw = 0%2 = 0, nodes 8,9 → ranks 8..11):
		// nic up + global + nic down.
		{"cross group via gateways", 4, 8, 3},
		// General cross-group: both endpoints off-gateway adds two
		// local hops: nic, local, global, local, nic.
		{"cross group general", 0, 12, 5},
	}
	for _, c := range cases {
		if got := topo.MinRouteLinks(c.src, c.dst); got != c.want {
			t.Errorf("%s (%d->%d): %d links, want %d", c.name, c.src, c.dst, got, c.want)
		}
	}
}

func TestReplayDeterministicAndMonotone(t *testing.T) {
	topo, err := FatTreeCluster(512)
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{
		{Src: 0, Dst: 300, Bytes: 4096, Start: 0},
		{Src: 1, Dst: 301, Bytes: 4096, Start: 0},
		{Src: 2, Dst: 302, Bytes: 4096, Start: 1e-6},
		{Src: 17, Dst: 18, Bytes: 128, Start: 0},
		{Src: 5, Dst: 6, Bytes: 64, Start: 2e-6}, // intra-node
	}
	a := topo.ReplayCongestion(flows)
	b := topo.ReplayCongestion(flows)
	if a.Makespan != b.Makespan || a.QueueTotal != b.QueueTotal || len(a.Links) != len(b.Links) {
		t.Fatalf("replay not deterministic: %+v vs %+v", a, b)
	}

	// Adding flows must never shrink the replayed makespan or queueing.
	more := append(append([]Flow(nil), flows...),
		Flow{Src: 3, Dst: 303, Bytes: 8192, Start: 0},
		Flow{Src: 4, Dst: 304, Bytes: 8192, Start: 0},
	)
	c := topo.ReplayCongestion(more)
	if c.Makespan < a.Makespan {
		t.Fatalf("superset makespan %.3e < subset %.3e", c.Makespan, a.Makespan)
	}
	if c.QueueTotal < a.QueueTotal {
		t.Fatalf("superset queue %.3e < subset %.3e", c.QueueTotal, a.QueueTotal)
	}

	// Flows 0 and 1 leave the same node at the same instant: the shared
	// NIC-up link must have queued one of them.
	queued := false
	for _, l := range a.Links {
		if l.Queue > 0 {
			queued = true
		}
	}
	if !queued {
		t.Fatal("concurrent same-node flows produced no queueing")
	}
}

// The preset cluster builders must produce the shapes the scaling study
// and its committed baseline rely on, up to and beyond 10k ranks.
func TestClusterBuilders(t *testing.T) {
	for _, ranks := range []int{64, 256, 1024, 4096, 16384} {
		ft, err := FatTreeCluster(ranks)
		if err != nil {
			t.Fatalf("FatTreeCluster(%d): %v", ranks, err)
		}
		if ft.Ranks() != ranks {
			t.Fatalf("FatTreeCluster(%d) hosts %d ranks", ranks, ft.Ranks())
		}
		df, err := DragonflyCluster(ranks)
		if err != nil {
			t.Fatalf("DragonflyCluster(%d): %v", ranks, err)
		}
		if df.Ranks() != ranks {
			t.Fatalf("DragonflyCluster(%d) hosts %d ranks", ranks, df.Ranks())
		}
	}
}
