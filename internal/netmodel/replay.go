package netmodel

import "sort"

// Flow is one traced wire message for offline congestion replay.
type Flow struct {
	Src, Dst int     // world ranks
	Bytes    int64   // payload bytes
	Start    float64 // virtual send time
}

// LinkLoad is the replayed utilization of one fabric link.
type LinkLoad struct {
	Name  string
	Class LinkClass
	Flows int
	Bytes int64
	// Busy is the total serialized service time the link spent moving
	// the replayed flows.
	Busy float64
	// Queue is the total queueing delay the link imposed — the
	// congestion signal benchdiff blame lines surface.
	Queue float64
}

// Replay is the result of ReplayCongestion.
type Replay struct {
	Flows int
	// Makespan is the completion time of the last flow under per-link
	// store-and-forward queueing.
	Makespan float64
	// QueueTotal is the total queueing delay across all links.
	QueueTotal float64
	// Links lists the links that carried traffic, most congested
	// (largest Queue) first; ties break by name.
	Links []LinkLoad
}

// ReplayCongestion replays a traced flow set through per-link queues:
// flows are processed in deterministic (Start, Src, Dst, Bytes) order,
// each traversing its minimal route store-and-forward; a link busy with
// an earlier flow queues the later one. The function is pure — it reads
// only the topology's static link table — so the same flow set always
// yields the same replay, and replaying a superset of flows never
// decreases any completion time. Intra-node flows are priced by the
// intra-node parameters and touch no links.
func (t *Topology) ReplayCongestion(flows []Flow) Replay {
	ordered := append([]Flow(nil), flows...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Bytes < b.Bytes
	})

	busy := make([]float64, len(t.links))
	loads := make([]LinkLoad, len(t.links))
	rep := Replay{Flows: len(ordered)}
	var route [8]int
	for _, f := range ordered {
		now := f.Start
		if t.NodeOf(f.Src) == t.NodeOf(f.Dst) {
			now += t.IntraAlpha + t.IntraBeta*float64(f.Bytes)
		} else {
			for _, id := range t.Route(f.Src, f.Dst, route[:0]) {
				l := &t.links[id]
				service := l.Alpha + l.Beta*float64(f.Bytes)/l.Width
				queue := busy[id] - now
				if queue > 0 {
					now = busy[id]
					loads[id].Queue += queue
					rep.QueueTotal += queue
				}
				now += service
				busy[id] = now
				loads[id].Flows++
				loads[id].Bytes += f.Bytes
				loads[id].Busy += service
			}
		}
		if now > rep.Makespan {
			rep.Makespan = now
		}
	}
	for id, ld := range loads {
		if ld.Flows == 0 {
			continue
		}
		ld.Name = t.links[id].Name
		ld.Class = t.links[id].Class
		rep.Links = append(rep.Links, ld)
	}
	sort.Slice(rep.Links, func(i, j int) bool {
		if rep.Links[i].Queue != rep.Links[j].Queue {
			return rep.Links[i].Queue > rep.Links[j].Queue
		}
		return rep.Links[i].Name < rep.Links[j].Name
	})
	return rep
}
