// Package netmodel provides an analytic communication cost model used to
// attach cluster-scale network timings to the in-process message-passing
// runtime in internal/comm.
//
// The real transport in this repository is a Go channel; its latency has
// nothing to do with the Infiniband fabric the paper measured on. To
// reproduce the paper's communication results (Figures 7-10) each rank
// carries a virtual clock, and every message advances it according to a
// classic alpha-beta (latency + inverse-bandwidth) model:
//
//	t(message of s bytes) = Alpha + Beta*s
//
// Senders stamp messages with their virtual send time plus the transfer
// cost; receivers advance their clock to max(own, arrival). Computation
// phases advance the clock by measured wall time scaled by a configurable
// compute-speed factor. The result is a LogP-style simulation in which
// synchronization effects — in particular the MPI_Wait skew the paper
// highlights in Figure 9 — emerge naturally.
package netmodel

import "fmt"

// Model holds the parameters of an alpha-beta network plus a relative
// compute speed, describing one machine. The zero value is unusable; use
// one of the presets or fill in every field.
type Model struct {
	// Name identifies the preset in reports.
	Name string
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the per-byte transfer time in seconds (1/bandwidth).
	Beta float64
	// GammaCompute scales measured local compute wall time onto the
	// modeled machine: modeled = measured * GammaCompute. 1.0 means the
	// modeled machine computes exactly as fast as the host.
	GammaCompute float64
	// SwitchHops, when > 0, adds Alpha*hops extra latency per message
	// based on the Manhattan distance between ranks in the processor
	// grid; 0 disables distance sensitivity (flat network).
	SwitchHops float64
	// InjectionFactor is the fraction of a message's wire time the
	// *sender* is stalled for (LogGP's gap-per-byte): 0 models a fully
	// offloading NIC (sender pays only Alpha), 1 models a transport
	// where the host CPU drives every byte. Affects how much
	// communication a rank can overlap.
	InjectionFactor float64
	// Topo, when non-nil, replaces the flat Alpha/Beta/SwitchHops
	// pricing with link-graph topology pricing (see Topology): messages
	// are priced along their minimal route with distinct intra-node vs
	// inter-node parameters and deterministic congestion factors. The
	// flat Alpha/Beta still describe the fabric's headline figures for
	// reports; InjectionFactor applies unchanged.
	Topo *Topology
}

// Cost returns the modeled time to move size bytes over hops switch hops.
func (m Model) Cost(size int, hops int) float64 {
	c := m.Alpha + m.Beta*float64(size)
	if m.SwitchHops > 0 && hops > 1 {
		c += m.Alpha * m.SwitchHops * float64(hops-1)
	}
	return c
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("%s{alpha=%.2es beta=%.2es/B}", m.Name, m.Alpha, m.Beta)
}

// Presets. Numbers are order-of-magnitude figures for the corresponding
// hardware class; absolute values are not calibrated to any one machine,
// only the ratios between message sizes and rank counts matter for the
// reproduced experiment shapes.
var (
	// Loopback models in-process channel transport: negligible latency
	// and very high bandwidth. Using it makes modeled time track wall
	// time on the host.
	Loopback = Model{Name: "loopback", Alpha: 2e-7, Beta: 1e-10, GammaCompute: 1}

	// QDR approximates the Mellanox Infiniscale IV QDR fabric of the
	// Compton testbed used in the paper: ~1.3us latency, ~3.2GB/s
	// effective per-link bandwidth.
	QDR = Model{Name: "qdr-infiniband", Alpha: 1.3e-6, Beta: 3.1e-10, GammaCompute: 1, SwitchHops: 0.1}

	// GigE approximates commodity gigabit Ethernet with TCP: ~25us
	// latency, ~110MB/s, and a host-driven (non-offloading) stack, so
	// senders stall for most of the wire time.
	GigE = Model{Name: "gige", Alpha: 2.5e-5, Beta: 9e-9, GammaCompute: 1, SwitchHops: 0.05, InjectionFactor: 0.7}

	// Exascale is a notional future interconnect for the co-design
	// studies the paper motivates: 400ns latency, 25GB/s.
	Exascale = Model{Name: "notional-exascale", Alpha: 4e-7, Beta: 4e-11, GammaCompute: 0.2, SwitchHops: 0.02}
)

// ByName returns the preset with the given name.
func ByName(name string) (Model, error) {
	for _, m := range []Model{Loopback, QDR, GigE, Exascale} {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("netmodel: unknown model %q", name)
}

// Names lists the available preset names.
func Names() []string {
	return []string{Loopback.Name, QDR.Name, GigE.Name, Exascale.Name}
}

// Clock is a per-rank virtual clock. It is owned by exactly one rank
// goroutine; no locking is required.
type Clock struct {
	model Model
	now   float64
	speed float64 // compute slowdown factor (1 = nominal)

	// overlapHidden accumulates the modeled seconds of communication
	// hidden behind compute by split-phase exchanges: for each
	// begin/finish pair, min(compute until finish, time to last arrival),
	// the part of the wire time that did not extend the critical path.
	overlapHidden float64

	// Per-phase accounting: every advance of the clock is attributed to
	// the currently pushed phase label (""), so post-hoc analysis can
	// split a rank's modeled time into compute/wait/send per application
	// phase without re-deriving it from spans. Accounting never changes
	// `now`: modeled results are bit-identical with or without phases
	// pushed.
	phase  string
	splits map[string]*PhaseSplit
	cur    *PhaseSplit // cached splits[phase]
}

// PhaseSplit is the modeled-time split of one accounting phase on one
// rank. Compute covers Advance/AdvanceCompute, Wait covers the blocked
// share of WaitUntil, and Send covers the sender-side injection overhead
// charged by SendStamp. The splits of all phases sum exactly to the
// clock's Now.
type PhaseSplit struct {
	Compute float64
	Wait    float64
	Send    float64
}

// Total returns the phase's total modeled seconds.
func (p PhaseSplit) Total() float64 { return p.Compute + p.Wait + p.Send }

// NewClock returns a clock at time zero running under model m.
func NewClock(m Model) *Clock {
	return &Clock{model: m, speed: 1}
}

// split returns the accumulator of the current phase, creating it on
// first charge.
func (c *Clock) split() *PhaseSplit {
	if c.cur == nil {
		if c.splits == nil {
			c.splits = make(map[string]*PhaseSplit)
		}
		s := c.splits[c.phase]
		if s == nil {
			s = &PhaseSplit{}
			c.splits[c.phase] = s
		}
		c.cur = s
	}
	return c.cur
}

// PushPhase switches the accounting phase and returns the closure that
// restores the previous one; nest pushes like spans. The empty name is a
// no-op (keep the enclosing phase), so callers can pass an unmapped
// label through without special-casing.
func (c *Clock) PushPhase(name string) func() {
	if name == "" {
		return func() {}
	}
	prevPhase, prevCur := c.phase, c.cur
	c.phase, c.cur = name, nil
	return func() { c.phase, c.cur = prevPhase, prevCur }
}

// Phase returns the current accounting phase label ("" outside any).
func (c *Clock) Phase() string { return c.phase }

// PhaseSplits returns a copy of the per-phase modeled-time splits
// accumulated so far. The sum of all Totals equals Now exactly (same
// additions, same order), which is the self-check the critical-path
// engine runs against span-derived attribution.
func (c *Clock) PhaseSplits() map[string]PhaseSplit {
	out := make(map[string]PhaseSplit, len(c.splits))
	for name, s := range c.splits {
		out[name] = *s
	}
	return out
}

// SetComputeFactor scales all subsequent compute advances: 1 is the
// nominal machine, 1.5 models a rank running 50% slower (a straggler —
// thermal throttling, a noisy neighbor, or simply more work). Stragglers
// are how modeled runs reproduce the load-imbalance signature the paper
// reads out of its Figure 8/9 MPI_Wait profiles.
func (c *Clock) SetComputeFactor(f float64) {
	if f > 0 {
		c.speed = f
	}
}

// Model returns the machine model the clock runs under.
func (c *Clock) Model() Model { return c.model }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// AdvanceCompute accounts for local computation that took wall seconds of
// host wall time.
func (c *Clock) AdvanceCompute(wall float64) {
	if wall > 0 {
		dt := wall * c.model.GammaCompute * c.speed
		c.now += dt
		c.split().Compute += dt
	}
}

// Advance adds dt virtual seconds (dt >= 0) of modeled compute, scaled by
// the rank's compute factor.
func (c *Clock) Advance(dt float64) {
	if dt > 0 {
		d := dt * c.speed
		c.now += d
		c.split().Compute += d
	}
}

// SendStamp returns the virtual arrival time of a message of size bytes
// sent now over hops switch hops, and charges the sender the injection
// overhead: one Alpha plus InjectionFactor of the wire time (LogGP's
// per-byte gap); the remainder overlaps with further progress.
func (c *Clock) SendStamp(size, hops int) float64 {
	arrival := c.now + c.model.Cost(size, hops)
	overhead := c.model.Alpha + c.model.InjectionFactor*c.model.Beta*float64(size)
	c.now += overhead
	c.split().Send += overhead
	return arrival
}

// SendStampRoute is SendStamp for a message whose cost and sender-side
// overhead were already priced externally (topology routing — see
// Topology.PairCost): it stamps the arrival at now+cost and charges the
// sender the overhead, with the same phase accounting as SendStamp.
func (c *Clock) SendStampRoute(cost, overhead float64) float64 {
	arrival := c.now + cost
	c.now += overhead
	c.split().Send += overhead
	return arrival
}

// WaitUntil advances the clock to at least t and reports the time spent
// waiting (zero if t is in the past).
func (c *Clock) WaitUntil(t float64) float64 {
	if t <= c.now {
		return 0
	}
	wait := t - c.now
	c.now = t
	c.split().Wait += wait
	return wait
}

// AccountOverlap prices one completed split-phase exchange. begin is the
// virtual time the exchange was posted, computeEnd the time the
// overlapped compute finished (just before the finish-phase waits), and
// lastArrival the modeled arrival of the last inbound message. The
// hidden time — what a serial post-then-wait would have added to the
// critical path but the overlap absorbed — is min(computeEnd,
// lastArrival) - begin, clamped at zero. It is accumulated and reported
// through OverlapHiddenSeconds; the clock itself is not advanced (the
// arrivals were fixed at send time, so max(compute, exchange) emerges
// from the ordinary WaitUntil calls).
func (c *Clock) AccountOverlap(begin, computeEnd, lastArrival float64) {
	end := computeEnd
	if lastArrival < end {
		end = lastArrival
	}
	if h := end - begin; h > 0 {
		c.overlapHidden += h
	}
}

// OverlapHiddenSeconds returns the cumulative modeled communication time
// hidden behind compute by split-phase exchanges on this rank.
func (c *Clock) OverlapHiddenSeconds() float64 { return c.overlapHidden }
