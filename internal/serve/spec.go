package serve

import (
	"fmt"
	"regexp"

	"repro/internal/fault"
	"repro/internal/gs"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

// JobSpec is the submission body of POST /jobs: one simulation job —
// the mesh shape, polynomial order, physics flags, optional fault
// scenario, and step budget — plus the multi-tenancy envelope (tenant
// id, priority). Zero-valued knobs take the documented defaults.
type JobSpec struct {
	// Tenant is the submitting tenant's id (required; lowercase
	// alphanumerics plus '-' and '_'). Quotas and fair-share accounting
	// key on it.
	Tenant string `json:"tenant"`
	// Priority orders dispatch, 0 (default) through MaxPriority; a
	// higher-priority submission may preempt a running lower-priority
	// job.
	Priority int `json:"priority,omitempty"`

	// Ranks is the communicator size (default 4).
	Ranks int `json:"ranks,omitempty"`
	// N is the polynomial order: GLL points per direction per element
	// (default 5).
	N int `json:"n,omitempty"`
	// LocalElems is elements per rank per direction (default 2), so the
	// job owns Ranks * LocalElems^3 elements.
	LocalElems int `json:"local_elems,omitempty"`
	// Steps is the timestep budget (default 10).
	Steps int `json:"steps,omitempty"`

	// GS selects the gather-scatter method: pairwise (default),
	// crystal, or allreduce.
	GS string `json:"gs,omitempty"`
	// Net names the modeled network (default loopback; see
	// netmodel.Names).
	Net string `json:"net,omitempty"`
	// Physics flags, mirroring the cmtbone knobs.
	Dealias      bool    `json:"dealias,omitempty"`
	Mu           float64 `json:"mu,omitempty"`
	FilterCutoff int     `json:"filter_cutoff,omitempty"`
	Overlap      bool    `json:"overlap,omitempty"`
	// Workers is the intra-rank worker-pool width (default 1: slots
	// provide the wall-clock parallelism in a shared server).
	Workers int `json:"workers,omitempty"`

	// Faults, when non-nil, is a deterministic message-fault scenario
	// (drop/corrupt/delay rates; CRC framing and retransmission keep
	// results exact). Crash and stall scenarios need the disk
	// checkpoint/heartbeat runner and are rejected at admission. A
	// faulted job is not preemptible: its fault windows are defined on
	// the virtual clock, which restarts on resume.
	Faults *fault.Spec `json:"faults,omitempty"`
}

// MaxPriority bounds JobSpec.Priority.
const MaxPriority = 9

// Limits is the admission-control policy: any spec outside it is
// rejected with a reason (HTTP 400), and per-tenant counts above the
// quotas are deferred (HTTP 429). The zero value means DefaultLimits.
type Limits struct {
	MaxRanks int `json:"max_ranks"`
	MaxN     int `json:"max_n"`
	MaxSteps int `json:"max_steps"`
	// MaxElems bounds Ranks * LocalElems^3, the job's global element
	// count — the memory and compute envelope.
	MaxElems int `json:"max_elems"`
	// MaxQueuedPerTenant bounds a tenant's queued + suspended jobs.
	MaxQueuedPerTenant int `json:"max_queued_per_tenant"`
	// MaxRunningPerTenant bounds a tenant's concurrently running jobs;
	// jobs over it stay queued (not rejected) until a slot frees under
	// the quota.
	MaxRunningPerTenant int `json:"max_running_per_tenant"`
}

// DefaultLimits is a policy sized for the in-process runner slots.
func DefaultLimits() Limits {
	return Limits{
		MaxRanks:            16,
		MaxN:                12,
		MaxSteps:            1000,
		MaxElems:            4096,
		MaxQueuedPerTenant:  32,
		MaxRunningPerTenant: 2,
	}
}

// normalize fills zero fields with the defaults.
func (l *Limits) normalize() {
	d := DefaultLimits()
	if l.MaxRanks == 0 {
		l.MaxRanks = d.MaxRanks
	}
	if l.MaxN == 0 {
		l.MaxN = d.MaxN
	}
	if l.MaxSteps == 0 {
		l.MaxSteps = d.MaxSteps
	}
	if l.MaxElems == 0 {
		l.MaxElems = d.MaxElems
	}
	if l.MaxQueuedPerTenant == 0 {
		l.MaxQueuedPerTenant = d.MaxQueuedPerTenant
	}
	if l.MaxRunningPerTenant == 0 {
		l.MaxRunningPerTenant = d.MaxRunningPerTenant
	}
}

var tenantRe = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// withDefaults returns a copy with zero knobs filled in; admission and
// execution both see the same concrete spec.
func (sp JobSpec) withDefaults() JobSpec {
	if sp.Ranks == 0 {
		sp.Ranks = 4
	}
	if sp.N == 0 {
		sp.N = 5
	}
	if sp.LocalElems == 0 {
		sp.LocalElems = 2
	}
	if sp.Steps == 0 {
		sp.Steps = 10
	}
	if sp.GS == "" {
		sp.GS = "pairwise"
	}
	if sp.Net == "" {
		sp.Net = netmodel.Loopback.Name
	}
	if sp.Workers == 0 {
		sp.Workers = 1
	}
	return sp
}

// Validate is the admission check: a nil error means the (defaulted)
// spec is runnable under the limits. Every rejection carries the
// reason the client sees in the 400 body.
func (sp JobSpec) Validate(lim Limits) error {
	lim.normalize()
	sp = sp.withDefaults()
	if sp.Tenant == "" {
		return fmt.Errorf("tenant is required")
	}
	if !tenantRe.MatchString(sp.Tenant) {
		return fmt.Errorf("tenant %q is not a valid id (want %s)", sp.Tenant, tenantRe)
	}
	if sp.Priority < 0 || sp.Priority > MaxPriority {
		return fmt.Errorf("priority %d outside [0,%d]", sp.Priority, MaxPriority)
	}
	if sp.Ranks < 1 || sp.Ranks > lim.MaxRanks {
		return fmt.Errorf("ranks %d outside [1,%d]", sp.Ranks, lim.MaxRanks)
	}
	if sp.N < 2 || sp.N > lim.MaxN {
		return fmt.Errorf("n %d outside [2,%d]", sp.N, lim.MaxN)
	}
	if sp.LocalElems < 1 {
		return fmt.Errorf("local_elems %d must be >= 1", sp.LocalElems)
	}
	if elems := sp.Ranks * sp.LocalElems * sp.LocalElems * sp.LocalElems; elems > lim.MaxElems {
		return fmt.Errorf("job spans %d elements, limit %d", elems, lim.MaxElems)
	}
	if sp.Steps < 1 || sp.Steps > lim.MaxSteps {
		return fmt.Errorf("steps %d outside [1,%d]", sp.Steps, lim.MaxSteps)
	}
	if _, err := gs.ParseMethod(sp.GS); err != nil {
		return fmt.Errorf("gs: %v", err)
	}
	if _, err := netmodel.ByName(sp.Net); err != nil {
		return fmt.Errorf("net: %v", err)
	}
	if sp.Mu < 0 {
		return fmt.Errorf("mu %g must be >= 0", sp.Mu)
	}
	if sp.FilterCutoff != 0 && (sp.FilterCutoff < 0 || sp.FilterCutoff >= sp.N) {
		return fmt.Errorf("filter_cutoff %d outside [0,%d)", sp.FilterCutoff, sp.N)
	}
	if sp.Workers < 1 || sp.Workers > 8 {
		return fmt.Errorf("workers %d outside [1,8]", sp.Workers)
	}
	if sp.Faults != nil {
		if err := sp.Faults.Validate(); err != nil {
			return fmt.Errorf("faults: %v", err)
		}
		if len(sp.Faults.Crashes) > 0 || len(sp.Faults.Stalls) > 0 {
			return fmt.Errorf("faults: crash/stall scenarios need the disk-checkpoint runner; only message faults are served")
		}
	}
	return nil
}

// Preemptible reports whether a running job with this spec can be
// suspended and resumed bit-identically.
func (sp JobSpec) Preemptible() bool { return sp.Faults == nil }

// solverConfig maps the (defaulted, validated) spec onto a solver
// configuration. The gather-scatter method and netmodel parse cleanly:
// Validate already vetted them.
func (sp JobSpec) solverConfig() (solver.Config, netmodel.Model) {
	sp = sp.withDefaults()
	cfg := solver.DefaultConfig(sp.Ranks, sp.N, sp.LocalElems)
	m, _ := gs.ParseMethod(sp.GS)
	cfg.GSMethod = m
	cfg.Dealias = sp.Dealias
	cfg.Mu = sp.Mu
	cfg.FilterCutoff = sp.FilterCutoff
	cfg.Overlap = sp.Overlap
	cfg.Workers = sp.Workers
	model, _ := netmodel.ByName(sp.Net)
	return cfg, model
}

// CacheKey identifies the setup artifacts a spec can reuse: everything
// the reference operators and the gs discovery depend on — the mesh
// shape and partition, the order, and the dealiasing rule. Physics
// flags, step budgets, and tenancy deliberately do not appear: they
// share artifacts.
type CacheKey struct {
	Ranks      int
	N          int
	LocalElems int
}

// cacheKey returns the artifact key of the defaulted spec.
func (sp JobSpec) cacheKey() CacheKey {
	sp = sp.withDefaults()
	return CacheKey{Ranks: sp.Ranks, N: sp.N, LocalElems: sp.LocalElems}
}
