package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

func TestSubmitBadSpecIs400WithReason(t *testing.T) {
	srv := New(Config{Slots: 1})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		body string
		want string // substring of the error reason
	}{
		{`{"priority":1}`, "tenant is required"},
		{`{"tenant":"BAD CAPS"}`, "not a valid id"},
		{`{"tenant":"a","priority":99}`, "priority"},
		{`{"tenant":"a","n":99}`, "n 99"},
		{`{"tenant":"a","steps":-4}`, "steps"},
		{`{"tenant":"a","gs":"telepathy"}`, "gs"},
		{`{"tenant":"a","local_elems":9,"ranks":16}`, "elements"},
		{`{"tenant":"a","faults":{"crashes":[{"rank":1,"step":2}]}}`, "crash/stall"},
		{`{"tenant":"a","unknown_knob":true}`, "unknown_knob"},
		{`not json`, "bad job spec"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", tc.body, resp.StatusCode)
			continue
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Errorf("POST %s: reason %q does not mention %q", tc.body, e.Error, tc.want)
		}
	}
}

func TestQuotaExceededIs429(t *testing.T) {
	srv := New(Config{
		Slots:  1,
		Limits: Limits{MaxQueuedPerTenant: 2, MaxRunningPerTenant: 1},
	})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One long job occupies the slot; two more fill tenant a's queue.
	long := `{"tenant":"a","ranks":2,"local_elems":1,"steps":500}`
	if resp, _ := postJob(t, ts, long); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	for i := 0; i < 2; i++ {
		if resp, _ := postJob(t, ts, long); resp.StatusCode != http.StatusCreated {
			t.Fatalf("queue fill %d: %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	var e apiError
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429 (err %q)", resp.StatusCode, e.Error)
	}
	if !strings.Contains(e.Error, "quota") {
		t.Fatalf("429 reason %q does not mention the quota", e.Error)
	}
	// Another tenant is unaffected by a's quota.
	if resp, _ := postJob(t, ts, `{"tenant":"b","ranks":2,"local_elems":1,"steps":3}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("tenant b submit: %d", resp.StatusCode)
	}
}

// waitSteps polls until the job has completed at least n steps.
func waitSteps(t *testing.T, srv *Server, id int64, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j := srv.Job(id)
		if j == nil {
			t.Fatalf("job %d vanished", id)
		}
		j.mu.Lock()
		got := len(j.steps)
		j.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %d never reached %d steps", id, n)
}

func sameResult(a, b *Result) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Steps == b.Steps && eq(a.Dt, b.Dt) && eq(a.Mass, b.Mass) &&
		eq(a.Energy, b.Energy) && eq(a.WaveSpeed, b.WaveSpeed) &&
		eq(a.KineticEn, b.KineticEn) && eq(a.InternalEn, b.InternalEn) &&
		eq(a.MaxMach, b.MaxMach)
}

// TestPreemptionBitIdentical is the heart of the subsystem: a
// higher-priority submission preempts a running job mid-flight; the
// victim suspends through the in-memory checkpoint, migrates to a fresh
// comm.Run when rescheduled, and its final report and diagnostics are
// bit-for-bit those of an uninterrupted run of the same spec.
func TestPreemptionBitIdentical(t *testing.T) {
	spec := JobSpec{Tenant: "victim", Ranks: 2, LocalElems: 1, N: 5, Steps: 120}

	// Reference: the same spec, alone on its own server.
	ref := New(Config{Slots: 1})
	rj, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := ref.WaitJob(rj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref.Shutdown()
	if refSt.State != StateDone || refSt.Result == nil {
		t.Fatalf("reference run: state %s, result %v", refSt.State, refSt.Result)
	}

	// Contended server: one slot, the victim starts, then a
	// high-priority job arrives and evicts it.
	srv := New(Config{Slots: 1})
	defer srv.Shutdown()
	vj, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitSteps(t, srv, vj.ID, 3) // let it get properly mid-flight
	hj, err := srv.Submit(JobSpec{Tenant: "vip", Priority: 5, Ranks: 2, LocalElems: 1, N: 5, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}

	hiSt, err := srv.WaitJob(hj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hiSt.State != StateDone {
		t.Fatalf("high-priority job: state %s (%s)", hiSt.State, hiSt.Error)
	}
	vicSt, err := srv.WaitJob(vj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vicSt.State != StateDone || vicSt.Result == nil {
		t.Fatalf("victim: state %s (%s)", vicSt.State, vicSt.Error)
	}
	if vicSt.Preemptions < 1 || vicSt.Resumes < 1 {
		t.Fatalf("victim was not preempted: preemptions=%d resumes=%d", vicSt.Preemptions, vicSt.Resumes)
	}
	if len(vicSt.Slots) < 2 {
		t.Fatalf("victim ran %d segments, want >= 2 (slot history %v)", len(vicSt.Slots), vicSt.Slots)
	}
	if vicSt.StepsDone != spec.Steps {
		t.Fatalf("victim completed %d steps, want %d", vicSt.StepsDone, spec.Steps)
	}
	if vicSt.PreemptLatS <= 0 {
		t.Fatal("victim preemption latency was not measured")
	}
	if !sameResult(vicSt.Result, refSt.Result) {
		t.Fatalf("preempted result differs from uninterrupted run:\n  got  %+v\n  want %+v",
			vicSt.Result, refSt.Result)
	}
}

// TestPreemptionOrder: the weakest-priority running job is the victim,
// and non-preemptible (faulted) jobs are never evicted.
func TestPreemptionOrder(t *testing.T) {
	srv := New(Config{Slots: 2, Limits: Limits{MaxRunningPerTenant: 4}})
	defer srv.Shutdown()

	lo, err := srv.Submit(JobSpec{Tenant: "lo", Priority: 1, Ranks: 2, LocalElems: 1, Steps: 400})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := srv.Submit(JobSpec{Tenant: "mid", Priority: 3, Ranks: 2, LocalElems: 1, Steps: 400})
	if err != nil {
		t.Fatal(err)
	}
	waitSteps(t, srv, lo.ID, 1)
	waitSteps(t, srv, mid.ID, 1)

	hi, err := srv.Submit(JobSpec{Tenant: "hi", Priority: 7, Ranks: 2, LocalElems: 1, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.WaitJob(hi.ID); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Job(lo.ID).status().Preemptions >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Job(lo.ID).status().Preemptions; got < 1 {
		t.Fatalf("lowest-priority job has %d preemptions, want >= 1", got)
	}
	if got := srv.Job(mid.ID).status().Preemptions; got != 0 {
		t.Fatalf("mid-priority job was preempted (%d) while a weaker victim ran", got)
	}
	srv.Cancel(lo.ID)
	srv.Cancel(mid.ID)
}

func TestWarmCacheSkipsSetup(t *testing.T) {
	srv := New(Config{Slots: 1})
	defer srv.Shutdown()
	spec := JobSpec{Tenant: "t", Ranks: 2, LocalElems: 1, Steps: 2}

	cold, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	coldSt, err := srv.WaitJob(cold.ID)
	if err != nil {
		t.Fatal(err)
	}
	if coldSt.CacheHit {
		t.Fatal("first submission of a shape reported a warm cache")
	}
	warm, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	warmSt, err := srv.WaitJob(warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !warmSt.CacheHit {
		t.Fatal("repeat submission of the same shape missed the cache")
	}
	if warmSt.Result == nil || coldSt.Result == nil || !sameResult(warmSt.Result, coldSt.Result) {
		t.Fatalf("warm result differs from cold:\n  cold %+v\n  warm %+v", coldSt.Result, warmSt.Result)
	}
	if warmSt.SetupSecs <= 0 || coldSt.SetupSecs <= 0 {
		t.Fatalf("setup seconds not measured: cold %g warm %g", coldSt.SetupSecs, warmSt.SetupSecs)
	}
}

func TestStepStreamAndCancel(t *testing.T) {
	srv := New(Config{Slots: 1})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, `{"tenant":"t","ranks":2,"local_elems":1,"steps":6}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	stream, err := http.Get(ts.URL + "/jobs/" + itoa(st.ID) + "/steps")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	var events []StepEvent
	var final map[string]json.RawMessage
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"final"`)) {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var ev StepEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) != 6 {
		t.Fatalf("streamed %d step events, want 6", len(events))
	}
	for i, ev := range events {
		if ev.Step != i {
			t.Fatalf("event %d carries step %d", i, ev.Step)
		}
		if ev.Dt <= 0 {
			t.Fatalf("event %d has dt %g", i, ev.Dt)
		}
	}
	if final == nil {
		t.Fatal("stream ended without the final status line")
	}

	// Cancel path: a long job DELETEd mid-flight ends canceled.
	resp2, st2 := postJob(t, ts, `{"tenant":"t","ranks":2,"local_elems":1,"steps":500}`)
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("submit long: %d", resp2.StatusCode)
	}
	waitSteps(t, srv, st2.ID, 1)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+itoa(st2.ID), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	fin, err := srv.WaitJob(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled {
		t.Fatalf("deleted job ended %s, want canceled", fin.State)
	}

	// Unknown id is a 404.
	r404, err := http.Get(ts.URL + "/jobs/99999")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d, want 404", r404.StatusCode)
	}
}

// TestWarmSetupFasterThanCold measures the artifact cache's effect:
// across fresh servers, the first (cold) submission of a shape pays the
// reference-element build and the collective gs discovery; repeats reuse
// both. Sequential, uncontended submissions; medians, to shrug off
// scheduler noise.
func TestWarmSetupFasterThanCold(t *testing.T) {
	spec := JobSpec{Tenant: "t", Ranks: 4, N: 6, LocalElems: 1, Steps: 2}
	var cold, warm []float64
	for iter := 0; iter < 5; iter++ {
		srv := New(Config{Slots: 1})
		for i := 0; i < 3; i++ {
			j, err := srv.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			st, err := srv.WaitJob(j.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != StateDone {
				t.Fatalf("iter %d job %d: %s (%s)", iter, i, st.State, st.Error)
			}
			if wantHit := i > 0; st.CacheHit != wantHit {
				t.Fatalf("iter %d job %d: cache_hit %v, want %v", iter, i, st.CacheHit, wantHit)
			}
			if st.CacheHit {
				warm = append(warm, st.SetupSecs)
			} else {
				cold = append(cold, st.SetupSecs)
			}
		}
		srv.Shutdown()
	}
	sort.Float64s(cold)
	sort.Float64s(warm)
	cm, wm := cold[len(cold)/2], warm[len(warm)/2]
	if wm >= cm {
		t.Fatalf("warm setup median %.6fs is not below cold median %.6fs (cold %v, warm %v)",
			wm, cm, cold, warm)
	}
}

// TestFairSharePick exercises the dispatch policy directly: priority
// first, then least-consumed tenant, then FIFO sequence.
func TestFairSharePick(t *testing.T) {
	srv := New(Config{Slots: 1})
	a := newJob(1, 1, JobSpec{Tenant: "heavy"}.withDefaults())
	b := newJob(2, 2, JobSpec{Tenant: "light"}.withDefaults())
	srv.mu.Lock()
	defer srv.mu.Unlock()

	srv.queue = []*Job{a, b}
	srv.usage["heavy"] = 100
	if got := srv.pickLocked(); got != b {
		t.Fatalf("equal priority: picked %q, want the lighter tenant", got.Spec.Tenant)
	}
	// Priority trumps fair share.
	c := newJob(3, 3, JobSpec{Tenant: "heavy", Priority: 2}.withDefaults())
	srv.queue = append(srv.queue, c)
	if got := srv.pickLocked(); got != c {
		t.Fatalf("picked job %d, want the high-priority one", got.ID)
	}
	// FIFO within equal priority and usage.
	d := newJob(4, 4, JobSpec{Tenant: "light"}.withDefaults())
	srv.queue = []*Job{d, b}
	if got := srv.pickLocked(); got != b {
		t.Fatalf("picked job %d, want the earlier submission", got.ID)
	}
	// A tenant at its running quota is skipped.
	srv.queue = []*Job{b, a}
	run := newJob(5, 5, JobSpec{Tenant: "light"}.withDefaults())
	srv.running[run.ID] = run
	srv.lim.MaxRunningPerTenant = 1
	if got := srv.pickLocked(); got != a {
		t.Fatalf("picked job %d, want the unblocked tenant's job", got.ID)
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
