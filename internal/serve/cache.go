package serve

import (
	"sync"

	"repro/internal/gs"
	"repro/internal/obs"
	"repro/internal/sem"
)

// artifacts are the reusable setup products of one mesh/order shape: the
// reference-element operator matrices and the per-rank gather-scatter
// topologies. Both are read-only after construction, so concurrent jobs
// share one copy.
type artifacts struct {
	ref  *sem.Ref1D
	topo []*gs.Topology // nil until a run of this shape has donated one
}

// artifactCache keys artifacts by CacheKey so repeat submissions of the
// same shape skip the operator build and the collective gs discovery.
// Warm entries turn the setup phase into a table copy, which is what
// makes warm-cache time-to-first-step measurably lower than cold.
type artifactCache struct {
	mu      sync.Mutex
	entries map[CacheKey]*artifacts
	hits    *obs.Counter
	misses  *obs.Counter
}

func newArtifactCache(reg *obs.Registry) *artifactCache {
	return &artifactCache{
		entries: make(map[CacheKey]*artifacts),
		hits:    reg.Counter("serve_cache_hits"),
		misses:  reg.Counter("serve_cache_misses"),
	}
}

// acquire returns the entry for key, creating it (with a freshly built
// reference element) on first use. The boolean reports a warm hit: the
// entry already carries gs topologies, so the job's setup skips the
// discovery collectives entirely.
func (c *artifactCache) acquire(key CacheKey) (*artifacts, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.entries[key]
	if !ok {
		a = &artifacts{ref: sem.NewRef1D(key.N)}
		c.entries[key] = a
	}
	if a.topo != nil {
		c.hits.Add(1)
		return a, true
	}
	c.misses.Add(1)
	return a, false
}

// donate stores the gs topologies a cold run extracted. First donation
// wins; later identical ones are dropped (they would be equal anyway —
// the topology is a pure function of the shape).
func (c *artifactCache) donate(key CacheKey, topo []*gs.Topology) {
	if topo == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.entries[key]; a != nil && a.topo == nil {
		a.topo = topo
	}
}

// size returns the number of cached shapes.
func (c *artifactCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
