package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// buildMux wires the job API:
//
//	POST   /jobs            submit a JobSpec -> 201 + Status (400/429/503 on rejection)
//	GET    /jobs            list all job statuses, newest first
//	GET    /jobs/{id}       one job's status
//	GET    /jobs/{id}/steps stream step events as JSONL until the job ends
//	DELETE /jobs/{id}       cancel (running jobs stop at the next step boundary)
//	GET    /stats           scheduler snapshot
//	GET    /metrics         full metrics-registry snapshot
//	GET    /healthz         liveness
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/steps", s.handleSteps)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		var rej *RejectError
		if errors.As(err, &rej) {
			writeJSON(w, rej.Code, apiError{Error: rej.Reason})
			return
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Location", fmt.Sprintf("/jobs/%d", j.ID))
	writeJSON(w, http.StatusCreated, j.status())
}

// jobFrom resolves the {id} path value; a nil return means the response
// is already written.
func (s *Server) jobFrom(w http.ResponseWriter, r *http.Request) *Job {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "job id must be an integer"})
		return nil
	}
	j := s.Job(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no job %d", id)})
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobFrom(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Statuses())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFrom(w, r)
	if j == nil {
		return
	}
	s.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.status())
}

// handleSteps streams the job's step events as JSON Lines, flushing
// after every event, until the job reaches a terminal state (a final
// line carries the terminal status) or the client goes away.
func (s *Server) handleSteps(w http.ResponseWriter, r *http.Request) {
	j := s.jobFrom(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	done := r.Context().Done()
	sent := 0
	for {
		for _, ev := range j.stepsFrom(sent) {
			if err := enc.Encode(ev); err != nil {
				return
			}
			sent++
		}
		if flusher != nil {
			flusher.Flush()
		}
		count, state := j.waitChange(sent)
		if count <= sent && terminal(state) {
			// Drained and terminal: emit the final status line.
			s.mu.Lock()
			st := j.status()
			s.mu.Unlock()
			_ = enc.Encode(map[string]any{"final": st})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot()
	if snap == nil {
		snap = map[string]any{}
	}
	writeJSON(w, http.StatusOK, snap)
}
