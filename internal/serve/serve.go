// Package serve is the simulation-as-a-service layer: a multi-tenant
// job server over the in-process solver. Clients POST simulation job
// specs (mesh size, order, physics flags, fault scenario, step budget)
// tagged with a tenant id and a priority; the server admits them against
// a limits policy, queues them with per-tenant quotas and fair-share
// accounting, and executes each job as one comm.Run over a fixed pool of
// runner slots. Higher-priority submissions preempt running jobs through
// the in-memory checkpoint path: the victim's ranks collectively agree on
// a suspend step, serialize their state with checkpoint.WriteBytes, vacate
// the slot, and later resume — possibly on a different slot — with
// bit-identical final results. Setup artifacts (reference-element
// operators, gather-scatter topologies) are cached by mesh shape, so
// repeat submissions skip the discovery collectives.
package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config configures a Server. Zero values take defaults.
type Config struct {
	// Slots is the number of runner slots — jobs executing concurrently
	// (default 2). Each running job occupies one slot regardless of its
	// rank count; ranks are goroutines, so a slot is an admission token,
	// not a core.
	Slots int
	// Limits is the admission policy (zero fields take DefaultLimits).
	Limits Limits
	// Metrics, when non-nil, receives server counters and histograms;
	// each job additionally charges its solver metrics under a
	// "job<id>_" prefix of the same registry.
	Metrics *obs.Registry
}

// RejectError is an admission failure with the HTTP status the API maps
// it to: 400 for an invalid spec, 429 for a tenant over quota, 503 when
// the server is shutting down.
type RejectError struct {
	Code   int
	Reason string
}

func (e *RejectError) Error() string { return e.Reason }

// Server is the job scheduler: one queue, a fixed slot pool, per-tenant
// fair-share accounting, and the setup-artifact cache.
type Server struct {
	slots   int
	lim     Limits
	metrics *obs.Registry
	cache   *artifactCache

	hTTFS    *obs.Histogram
	hPreempt *obs.Histogram

	mu        sync.Mutex
	closed    bool
	nextID    int64
	nextSeq   int64
	jobs      map[int64]*Job
	queue     []*Job          // StateQueued / StateSuspended, awaiting dispatch
	running   map[int64]*Job  // jobs holding a slot (Running or Suspending)
	freeSlots []int
	usage     map[string]float64 // tenant -> consumed rank-seconds (fair share)
	wg        sync.WaitGroup
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	cfg.Limits.normalize()
	s := &Server{
		slots:   cfg.Slots,
		lim:     cfg.Limits,
		metrics: cfg.Metrics,
		cache:   newArtifactCache(cfg.Metrics),
		hTTFS: cfg.Metrics.Histogram("serve_ttfs_seconds",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
		hPreempt: cfg.Metrics.Histogram("serve_preempt_latency_seconds",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
		jobs:    make(map[int64]*Job),
		running: make(map[int64]*Job),
		usage:   make(map[string]float64),
	}
	for i := 0; i < cfg.Slots; i++ {
		s.freeSlots = append(s.freeSlots, i)
	}
	return s
}

// Handler returns the HTTP API (see http.go for the routes).
func (s *Server) Handler() http.Handler { return s.buildMux() }

// Submit admits a job spec: an invalid spec or an over-quota tenant
// returns a *RejectError carrying the HTTP status; an admitted job is
// queued (and dispatched immediately when a slot is free) and returned.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(s.lim); err != nil {
		s.metrics.Counter("serve_jobs_rejected").Add(1)
		return nil, &RejectError{Code: http.StatusBadRequest, Reason: err.Error()}
	}
	spec = spec.withDefaults()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &RejectError{Code: http.StatusServiceUnavailable, Reason: "server is shutting down"}
	}
	if n := s.pendingOfLocked(spec.Tenant); n >= s.lim.MaxQueuedPerTenant {
		s.metrics.Counter("serve_jobs_quota_rejected").Add(1)
		return nil, &RejectError{
			Code:   http.StatusTooManyRequests,
			Reason: fmt.Sprintf("tenant %q has %d queued jobs, quota %d", spec.Tenant, n, s.lim.MaxQueuedPerTenant),
		}
	}
	s.nextID++
	s.nextSeq++
	j := newJob(s.nextID, s.nextSeq, spec)
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.metrics.Counter("serve_jobs_submitted").Add(1)
	s.scheduleLocked()
	return j, nil
}

// Job returns the job by id, or nil.
func (s *Server) Job(id int64) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel stops a job: a queued or suspended job is canceled on the
// spot; a running job is flagged and cancels collectively at its next
// step boundary. Canceling a terminal job is a no-op. Returns false if
// the id is unknown.
func (s *Server) Cancel(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	s.cancelLocked(j)
	return true
}

func (s *Server) cancelLocked(j *Job) {
	j.cancel.Store(true)
	switch j.State() {
	case StateQueued, StateSuspended:
		s.dropFromQueueLocked(j)
		j.snaps = nil
		j.setState(StateCanceled)
		s.metrics.Counter("serve_jobs_canceled").Add(1)
		s.scheduleLocked()
	case StateRunning, StateSuspending:
		j.ctl.Store(ctlCancel)
	}
}

// Statuses snapshots every job, newest first.
func (s *Server) Statuses() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// Stats is the server-level snapshot of GET /stats.
type ServerStats struct {
	Slots       int                `json:"slots"`
	FreeSlots   int                `json:"free_slots"`
	Queued      int                `json:"queued"`
	Running     int                `json:"running"`
	Jobs        int                `json:"jobs"`
	CachedMesh  int                `json:"cached_shapes"`
	TenantUsage map[string]float64 `json:"tenant_rank_seconds"`
	Limits      Limits             `json:"limits"`
}

// Stats snapshots the scheduler state.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	usage := make(map[string]float64, len(s.usage))
	for k, v := range s.usage {
		usage[k] = v
	}
	return ServerStats{
		Slots: s.slots, FreeSlots: len(s.freeSlots),
		Queued: len(s.queue), Running: len(s.running), Jobs: len(s.jobs),
		CachedMesh: s.cache.size(), TenantUsage: usage, Limits: s.lim,
	}
}

// Shutdown cancels every job and waits for the slots to drain. Running
// jobs stop collectively at their next step boundary, so the drain is
// bounded by one timestep per running job.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	for _, j := range s.jobs {
		if !terminal(j.State()) {
			s.cancelLocked(j)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// pendingOfLocked counts a tenant's jobs that are admitted but not
// terminal and not currently holding a slot — the queue-quota
// denominator.
func (s *Server) pendingOfLocked(tenant string) int {
	n := 0
	for _, j := range s.queue {
		if j.Spec.Tenant == tenant {
			n++
		}
	}
	return n
}

// runningOfLocked counts a tenant's jobs holding slots.
func (s *Server) runningOfLocked(tenant string) int {
	n := 0
	for _, j := range s.running {
		if j.Spec.Tenant == tenant {
			n++
		}
	}
	return n
}

func (s *Server) dropFromQueueLocked(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// pickLocked selects the next job to dispatch: among tenants under
// their running quota, the highest priority wins; within a priority the
// tenant with the least consumed rank-seconds wins (fair share); within
// a tenant, FIFO by submission sequence. Linear scan — the queue is
// small and the policy stays deterministic and auditable.
func (s *Server) pickLocked() *Job {
	var best *Job
	for _, j := range s.queue {
		if s.runningOfLocked(j.Spec.Tenant) >= s.lim.MaxRunningPerTenant {
			continue
		}
		if best == nil || s.betterLocked(j, best) {
			best = j
		}
	}
	return best
}

// betterLocked reports whether a should dispatch before b.
func (s *Server) betterLocked(a, b *Job) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	ua, ub := s.usage[a.Spec.Tenant], s.usage[b.Spec.Tenant]
	if ua != ub {
		return ua < ub
	}
	return a.seq < b.seq
}

// scheduleLocked is the dispatch loop, run under s.mu after every
// scheduler event (submit, segment exit, cancel): fill free slots from
// the queue, then — if demand remains — preempt.
func (s *Server) scheduleLocked() {
	for len(s.freeSlots) > 0 {
		j := s.pickLocked()
		if j == nil {
			break
		}
		slot := s.freeSlots[len(s.freeSlots)-1]
		s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
		s.dispatchLocked(j, slot)
	}
	s.maybePreemptLocked()
	s.metrics.Gauge("serve_queue_depth").Set(float64(len(s.queue)))
	s.metrics.Gauge("serve_running").Set(float64(len(s.running)))
}

func (s *Server) dispatchLocked(j *Job, slot int) {
	s.dropFromQueueLocked(j)
	j.slot = slot
	j.slots = append(j.slots, slot)
	if j.snaps != nil {
		j.resumes++
		s.metrics.Counter("serve_resumes").Add(1)
	}
	j.ctl.Store(ctlNone)
	j.setState(StateRunning)
	s.running[j.ID] = j
	s.wg.Add(1)
	go s.runSegment(j, slot)
}

// maybePreemptLocked requests a suspend when the best queued job
// outranks the weakest running preemptible job and no slot is free. The
// victim checkpoints at its next step boundary and the freed slot is
// dispatched by the segment-exit path.
func (s *Server) maybePreemptLocked() {
	if len(s.freeSlots) > 0 {
		return
	}
	want := s.pickLocked()
	if want == nil {
		return
	}
	var victim *Job
	for _, j := range s.running {
		if j.State() != StateRunning || !j.Spec.Preemptible() {
			continue
		}
		if j.Spec.Priority >= want.Spec.Priority {
			continue
		}
		// Weakest first; among equals evict the youngest (least sunk work).
		if victim == nil || j.Spec.Priority < victim.Spec.Priority ||
			(j.Spec.Priority == victim.Spec.Priority && j.seq > victim.seq) {
			victim = j
		}
	}
	if victim == nil {
		return
	}
	victim.preemptReq = time.Now()
	victim.ctl.Store(ctlSuspend)
	victim.setState(StateSuspending)
	s.metrics.Counter("serve_preempt_requests").Add(1)
}

// WaitJob blocks until the job reaches a terminal state and returns its
// final status (a convenience for tests and the load generator).
func (s *Server) WaitJob(id int64) (Status, error) {
	j := s.Job(id)
	if j == nil {
		return Status{}, fmt.Errorf("serve: no job %d", id)
	}
	n := -1
	for {
		var st JobState
		n, st = j.waitChange(n)
		if terminal(st) {
			s.mu.Lock()
			out := j.status()
			s.mu.Unlock()
			return out, nil
		}
	}
}
