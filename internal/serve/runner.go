package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/gs"
	"repro/internal/solver"
)

// segment is the outcome of one dispatch: a job runs in segments
// separated by suspensions, each segment one comm.Run on one slot.
type segment struct {
	mu        sync.Mutex
	canceled  bool
	snaps     [][]byte // non-nil when the segment suspended
	stopStep  int      // first step of the next segment after a suspend
	report    solver.Report
	diag      diag.Summary
	completed bool
	topo      []*gs.Topology // extracted on cold runs for the cache
}

// runSegment executes one segment of job j on the given slot: build the
// solver on every rank (reusing cached artifacts), restore the suspend
// image or set the initial condition, then step until the budget is
// spent or the ranks collectively observe a suspend/cancel flag. Runs on
// its own goroutine; rejoins the scheduler through segmentExit.
func (s *Server) runSegment(j *Job, slot int) {
	defer s.wg.Done()
	spec := j.Spec.withDefaults()
	cfg, model := j.Spec.solverConfig()
	key := j.Spec.cacheKey()

	art, warm := s.cache.acquire(key)
	cfg.Ref = art.ref
	if warm {
		cfg.GSTopo = art.topo
	}
	jobReg := s.metrics.WithPrefix(fmt.Sprintf("job%d_", j.ID))
	cfg.Metrics = jobReg

	opts := comm.Options{Model: model, Grid: cfg.ProcGrid, Periodic: cfg.Periodic}
	if spec.Faults != nil {
		opts.Faults = fault.NewInjector(spec.Faults, spec.Ranks, jobReg)
	}

	resume := j.snaps // scheduler wrote these before dispatch; stable now
	startStep := j.resumeStep
	firstSegment := resume == nil
	if firstSegment {
		j.mu.Lock()
		j.cacheHit = warm
		j.mu.Unlock()
	}
	seg := &segment{}
	segStart := time.Now()

	stats, runErr := comm.Run(spec.Ranks, opts, func(r *comm.Rank) error {
		sv, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer sv.Close()
		if resume != nil {
			_, tm, err := checkpoint.RestoreBytes(sv, resume[r.ID()])
			if err != nil {
				return err
			}
			sv.SetSimTime(tm)
		} else {
			sv.SetInitial(solver.GaussianPulse(
				float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
				0.1, 0.5))
		}
		if r.ID() == 0 && firstSegment {
			j.mu.Lock()
			j.setupS = time.Since(segStart).Seconds()
			j.mu.Unlock()
		}

		var dt float64
		stop := ctlNone
		step := startStep
		for step < spec.Steps {
			dt = sv.AdvanceStep(step)
			step++
			if r.ID() == 0 {
				if step == 1 {
					t := time.Since(j.submitted).Seconds()
					j.mu.Lock()
					j.ttfs = t
					j.mu.Unlock()
					s.hTTFS.Observe(t)
				}
				j.appendStep(StepEvent{Step: step - 1, Dt: dt, SimTime: sv.SimTime(), VT: r.Clock().Now()})
			}
			// All ranks agree on the control flag at the same step
			// boundary — a collective max, so a flag raised mid-step is
			// either seen by everyone or by no one this step. Individual
			// flag reads would let ranks part ways and deadlock.
			ctl := r.AllreduceInts(comm.OpMax, []int64{j.ctl.Load()})
			if ctl[0] != ctlNone {
				stop = ctl[0]
				break
			}
		}

		switch {
		case stop == ctlCancel:
			if r.ID() == 0 {
				seg.mu.Lock()
				seg.canceled = true
				seg.mu.Unlock()
			}
		case stop == ctlSuspend:
			buf, err := checkpoint.WriteBytes(sv, int64(step), sv.SimTime())
			if err != nil {
				return err
			}
			seg.mu.Lock()
			if seg.snaps == nil {
				seg.snaps = make([][]byte, spec.Ranks)
			}
			seg.snaps[r.ID()] = buf
			seg.stopStep = step
			seg.mu.Unlock()
		default: // budget spent: the collective finish
			rep := sv.FinishReport(spec.Steps, dt)
			d := diag.Compute(sv)
			if r.ID() == 0 {
				seg.mu.Lock()
				seg.report, seg.diag, seg.completed = rep, d, true
				seg.mu.Unlock()
			}
		}

		if !warm {
			seg.mu.Lock()
			if seg.topo == nil {
				seg.topo = make([]*gs.Topology, spec.Ranks)
			}
			seg.topo[r.ID()] = sv.GS().Topology()
			seg.mu.Unlock()
		}
		return nil
	})

	var makespan float64
	if stats != nil {
		for _, vt := range stats.VirtualTimes {
			if vt > makespan {
				makespan = vt
			}
		}
	}
	if runErr == nil {
		s.cache.donate(key, completeTopo(seg.topo, spec.Ranks))
	}
	s.segmentExit(j, slot, spec, seg, runErr, makespan, time.Since(segStart).Seconds())
}

// completeTopo returns topo only when every rank contributed (an errored
// run may leave holes, and a partial table must never enter the cache).
func completeTopo(topo []*gs.Topology, ranks int) []*gs.Topology {
	if len(topo) != ranks {
		return nil
	}
	for _, t := range topo {
		if t == nil {
			return nil
		}
	}
	return topo
}

// segmentExit rejoins the scheduler: free the slot, charge the tenant's
// fair share, transition the job, and dispatch whatever the freed slot
// (or a requeued suspension) unblocks.
func (s *Server) segmentExit(j *Job, slot int, spec JobSpec, seg *segment, runErr error, makespan, wall float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, j.ID)
	s.freeSlots = append(s.freeSlots, slot)
	s.usage[spec.Tenant] += wall * float64(spec.Ranks)

	j.mu.Lock()
	j.makespan += makespan
	j.mu.Unlock()

	switch {
	case runErr != nil:
		j.snaps = nil
		j.fail(runErr)
		s.metrics.Counter("serve_jobs_failed").Add(1)
	case seg.canceled || j.cancel.Load():
		j.snaps = nil
		j.setState(StateCanceled)
		s.metrics.Counter("serve_jobs_canceled").Add(1)
	case seg.snaps != nil:
		// Preempted: hold the images and rejoin the queue.
		j.snaps = seg.snaps
		j.resumeStep = seg.stopStep
		lat := time.Since(j.preemptReq).Seconds()
		j.mu.Lock()
		j.preemptions++
		j.preemptLat = lat
		j.mu.Unlock()
		s.hPreempt.Observe(lat)
		s.metrics.Counter("serve_preemptions").Add(1)
		j.setState(StateSuspended)
		s.queue = append(s.queue, j)
	case seg.completed:
		res := resultFrom(spec.Steps, seg.report.Dt, seg.report.Mass, seg.report.Energy,
			seg.report.WaveSpeed, seg.diag, 0, spec.GS)
		j.mu.Lock()
		res.MakespanS = j.makespan
		j.result = res
		j.state = StateDone
		j.snaps = nil
		j.cond.Broadcast()
		j.mu.Unlock()
		s.metrics.Counter("serve_jobs_done").Add(1)
	default:
		// A run that neither completed, suspended, nor canceled and
		// reported no error cannot happen; fail loudly rather than hang.
		j.fail(fmt.Errorf("serve: job %d segment ended with no outcome", j.ID))
		s.metrics.Counter("serve_jobs_failed").Add(1)
	}
	s.scheduleLocked()
}
