package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
)

// JobState is the lifecycle of a submitted job.
type JobState string

// Job states. Queued jobs wait for a slot; Suspending jobs have been
// asked to checkpoint and vacate their slot; Suspended jobs sit back in
// the queue holding in-memory checkpoints and resume — possibly on a
// different slot — when scheduled again.
const (
	StateQueued     JobState = "queued"
	StateRunning    JobState = "running"
	StateSuspending JobState = "suspending"
	StateSuspended  JobState = "suspended"
	StateDone       JobState = "done"
	StateFailed     JobState = "failed"
	StateCanceled   JobState = "canceled"
)

// Control flags a scheduler raises on a running job; the job's ranks
// agree on the flag collectively once per step, so every rank takes the
// same exit at the same step.
const (
	ctlNone int64 = iota
	ctlSuspend
	ctlCancel
)

// StepEvent is one record of the per-job step stream (GET
// /jobs/{id}/steps): the step index, the dt used, accumulated simulated
// time, and rank 0's virtual clock.
type StepEvent struct {
	Step    int     `json:"step"`
	Dt      float64 `json:"dt"`
	SimTime float64 `json:"sim_time"`
	VT      float64 `json:"vt"`
}

// Result is the terminal summary of a completed job: the run report
// scalars plus the flow diagnostics, all computed collectively on the
// job's own ranks. For a preempted-then-resumed job these are
// bit-identical to an uninterrupted run of the same spec.
type Result struct {
	Steps      int     `json:"steps"`
	Dt         float64 `json:"dt"`
	Mass       float64 `json:"mass"`
	Energy     float64 `json:"energy"`
	WaveSpeed  float64 `json:"wave_speed"`
	KineticEn  float64 `json:"kinetic_energy"`
	InternalEn float64 `json:"internal_energy"`
	MaxMach    float64 `json:"max_mach"`
	// MakespanS sums the modeled makespans of the job's run segments.
	MakespanS float64 `json:"makespan_s"`
	// GSMethod is the exchange method the job ran with.
	GSMethod string `json:"gs_method"`
}

// Job is one submission's full server-side state.
type Job struct {
	ID     int64   `json:"id"`
	Spec   JobSpec `json:"spec"`
	seq    int64   // FIFO tie-break within (priority, fair share)
	ctl    atomic.Int64
	cancel atomic.Bool // sticky: DELETE observed (covers races with requeue)

	mu    sync.Mutex
	cond  *sync.Cond // broadcast on step append and state change
	state JobState
	err   string

	// Scheduling bookkeeping (guarded by the server mutex, not job.mu).
	slot        int   // current/last slot, -1 before first dispatch
	resumeStep  int   // first step of the next segment (0 = fresh start)
	snaps       [][]byte
	preemptions int
	resumes     int
	slots       []int // slot history, one entry per segment

	submitted  time.Time
	preemptReq time.Time // when the outstanding suspend was requested

	// Measured latencies (seconds), exposed in the status document.
	ttfs       float64 // submission -> first step completed (first segment only)
	setupS     float64 // solver construction wall time of the first segment
	preemptLat float64 // last suspend request -> slot vacated
	cacheHit   bool    // first segment reused cached setup artifacts
	makespan   float64 // summed modeled makespan of finished segments

	steps  []StepEvent
	result *Result
}

func newJob(id, seq int64, spec JobSpec) *Job {
	j := &Job{ID: id, Spec: spec, seq: seq, slot: -1, state: StateQueued, submitted: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// setState transitions the job and wakes streamers.
func (j *Job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.cond.Broadcast()
	j.mu.Unlock()
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// fail records a terminal error.
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = err.Error()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// appendStep publishes one step event (called from rank 0 of the
// running job only).
func (j *Job) appendStep(ev StepEvent) {
	j.mu.Lock()
	j.steps = append(j.steps, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// stepsFrom copies step events starting at index from; it does not
// block. Streamers poll it under waitChange.
func (j *Job) stepsFrom(from int) []StepEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from >= len(j.steps) {
		return nil
	}
	out := make([]StepEvent, len(j.steps)-from)
	copy(out, j.steps[from:])
	return out
}

// terminal reports whether the state is final.
func terminal(s JobState) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// waitChange blocks until the step count exceeds n or the job reaches a
// terminal state, returning the current (count, state).
func (j *Job) waitChange(n int) (int, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.steps) <= n && !terminal(j.state) {
		j.cond.Wait()
	}
	return len(j.steps), j.state
}

// Status is the JSON document of GET /jobs/{id}.
type Status struct {
	ID          int64    `json:"id"`
	Tenant      string   `json:"tenant"`
	Priority    int      `json:"priority"`
	State       JobState `json:"state"`
	Error       string   `json:"error,omitempty"`
	StepsDone   int      `json:"steps_done"`
	StepBudget  int      `json:"step_budget"`
	Preemptions int      `json:"preemptions"`
	Resumes     int      `json:"resumes"`
	Slots       []int    `json:"slots,omitempty"`
	CacheHit    bool     `json:"cache_hit"`
	TTFSSeconds float64  `json:"ttfs_seconds,omitempty"`
	SetupSecs   float64  `json:"setup_seconds,omitempty"`
	PreemptLatS float64  `json:"preempt_latency_seconds,omitempty"`
	Result      *Result  `json:"result,omitempty"`
}

// status snapshots the job for the API. The scheduling fields are
// written by the server loop under the server mutex; the server calls
// status with that mutex held so the snapshot is consistent.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Tenant: j.Spec.Tenant, Priority: j.Spec.Priority,
		State: j.state, Error: j.err,
		StepsDone: len(j.steps), StepBudget: j.Spec.withDefaults().Steps,
		Preemptions: j.preemptions, Resumes: j.resumes,
		Slots: append([]int(nil), j.slots...), CacheHit: j.cacheHit,
		TTFSSeconds: j.ttfs, SetupSecs: j.setupS, PreemptLatS: j.preemptLat,
		Result: j.result,
	}
	return st
}

// resultFrom assembles the terminal summary.
func resultFrom(steps int, dt, mass, energy, lambda float64, d diag.Summary, makespan float64, gsMethod string) *Result {
	return &Result{
		Steps: steps, Dt: dt, Mass: mass, Energy: energy, WaveSpeed: lambda,
		KineticEn: d.KineticEnergy, InternalEn: d.InternalEnergy, MaxMach: d.MaxMach,
		MakespanS: makespan, GSMethod: gsMethod,
	}
}
