package solver

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/netmodel"
)

// TestStragglerShowsLoadImbalanceSignature reproduces the paper's
// load-balancing observation (Figures 8-9): when one rank's elements
// cost more — the per-element cost skew of particle-laden multiphase
// flow, modeled by Config.HotElems — every *other* rank's modeled time
// fills up with MPI waiting: the straggler itself shows the lowest MPI
// share, its peers the highest. This is the behavioral-emulation
// read-out of MPI_Wait skew, and exactly the signature the loadbal
// subsystem erases by migrating hot elements.
func TestStragglerShowsLoadImbalanceSignature(t *testing.T) {
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testStragglerSignature(t, workers)
		})
	}
}

// testStragglerSignature runs the straggler scenario with the given
// intra-rank worker count: the modeled-time imbalance signature is a
// virtual-clock property and must be identical whether the kernels run
// serially or on a pool.
func testStragglerSignature(t *testing.T, workers int) {
	const np = 8
	run := func(hot map[int64]float64) []comm.RankMPI {
		cfg := DefaultConfig(np, 6, 2)
		cfg.Workers = workers
		cfg.HotElems = hot
		stats, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			defer s.Close()
			s.SetInitial(GaussianPulse(2, 2, 2, 0.1, 0.5))
			s.Run(3)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.RankMPIFractions()
	}

	// Balanced baseline.
	balanced := run(nil)
	balancedFrac := 0.0
	for _, f := range balanced {
		balancedFrac += f.FracModeled()
	}
	balancedFrac /= np

	// Every element of rank 3's subdomain costs 60% more: the rank-level
	// effect matches a 1.6x compute factor, but the skew now lives on
	// elements, so a load balancer could migrate it away.
	cfg := DefaultConfig(np, 6, 2)
	box, err := cfg.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	hot := make(map[int64]float64)
	for _, gid := range box.Partition(3).GIDs() {
		hot[gid] = 1.6
	}
	skewed := run(hot)

	stragglerFrac := skewed[3].FracModeled()
	peerFrac := 0.0
	for i, f := range skewed {
		if i != 3 {
			peerFrac += f.FracModeled()
		}
	}
	peerFrac /= np - 1

	if peerFrac <= balancedFrac {
		t.Errorf("peers of a straggler should wait more than a balanced run: %.3f vs %.3f",
			peerFrac, balancedFrac)
	}
	if stragglerFrac >= peerFrac {
		t.Errorf("the straggler should wait least: straggler %.3f vs peers %.3f",
			stragglerFrac, peerFrac)
	}
	// The straggler's makespan defines the run: its virtual time is the
	// maximum.
	maxVT, maxIdx := 0.0, -1
	for i, f := range skewed {
		if f.VirtualTime > maxVT {
			maxVT, maxIdx = f.VirtualTime, i
		}
	}
	if maxIdx != 3 {
		t.Errorf("rank %d has the longest modeled time; expected the straggler (3)", maxIdx)
	}
}
