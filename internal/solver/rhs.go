package solver

import (
	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/sem"
)

// eulerFlux fills out[c] with the flux of conserved variable c along
// direction d, given the conserved state u and precomputed velocity and
// pressure. All quantities are at one point.
func eulerFlux(d int, u *[NumFields]float64, vel *[3]float64, p float64, out *[NumFields]float64) {
	vn := vel[d]
	out[IRho] = u[IMomX+d]
	out[IMomX] = u[IMomX] * vn
	out[IMomY] = u[IMomY] * vn
	out[IMomZ] = u[IMomZ] * vn
	out[IMomX+d] += p
	out[IEnergy] = vn * (u[IEnergy] + p)
}

// pressure returns the ideal-gas pressure of a conserved state.
func pressure(u *[NumFields]float64) float64 {
	ke := 0.5 * (u[IMomX]*u[IMomX] + u[IMomY]*u[IMomY] + u[IMomZ]*u[IMomZ]) / u[IRho]
	return (Gamma - 1) * (u[IEnergy] - ke)
}

// wallCorrection returns (f - f*).n for conserved field c at a slip-wall
// face point: the ghost state mirrors the interior trace with the normal
// momentum negated, so with the Lax-Friedrichs flux
// (f - f*).n = sign*(F_in - F_ghost)/2 - lambda*(u_in - u_ghost)/2.
// Mass and energy fluxes cancel exactly (the box is sealed); normal
// momentum feels the wall's pressure reaction.
func (s *Solver) wallCorrection(c, d int, sign float64, idx int, lam float64) float64 {
	var us, ug, fin, fg [NumFields]float64
	for cc := 0; cc < NumFields; cc++ {
		us[cc] = s.faceU[cc][idx]
	}
	ug = us
	ug[IMomX+d] = -us[IMomX+d]
	inv := 1 / us[IRho]
	vel := [3]float64{us[IMomX] * inv, us[IMomY] * inv, us[IMomZ] * inv}
	p := pressure(&us)
	eulerFlux(d, &us, &vel, p, &fin)
	velG := vel
	velG[d] = -vel[d]
	eulerFlux(d, &ug, &velG, p, &fg)
	return sign*(fin[c]-fg[c])/2 - lam*(us[c]-ug[c])/2
}

// allRun returns the whole local element set as a single run — the
// blocking path's "runs" parameter, so it executes the same helpers (and
// the same pool partitions) as the interior/boundary split path does.
func (s *Solver) allRun() [][2]int {
	if s.Local.Nel == 0 {
		return nil
	}
	return [][2]int{{0, s.Local.Nel}}
}

// computeRHS evaluates the semi-discrete DG right-hand side of the
// conservation law for the state in, leaving it in s.rhs. One call is one
// pass through every kernel of the paper's Figure 4 profile; with Mu > 0
// the viscous (compressible Navier-Stokes) flux path adds the gradient
// sweeps of the parent code. The overlap path (computeRHSOverlap) runs
// the same helpers over interior/boundary element runs instead of one
// full run; every kernel is element-local, so both orders are
// bit-identical.
func (s *Solver) computeRHS(in *[NumFields][]float64) {
	viscous := s.Cfg.Mu > 0
	all := s.allRun()

	s.rhsPrimitive(in)
	if viscous {
		s.computeGradients(in)
	}
	s.faceExtractRuns(in, all)
	s.volumeRuns(in, all, viscous)
	if !viscous {
		s.surfaceFluxRuns(all)
	}

	// --- gs_op: nearest-neighbor exchange of state and flux traces.
	// After the exchange each shared face point holds in+out sums;
	// unshared (true boundary) points are untouched.
	stop := s.span("gs_op", obs.CatGS)
	for c := 0; c < NumFields; c++ {
		copy(s.exU[c], s.faceU[c])
		copy(s.exF[c], s.faceF[c])
	}
	if s.Cfg.PackedExchange {
		// gs_op_fields: one packed message per neighbor per exchange.
		s.gsh.OpFields(s.exU[:], comm.OpSum, s.gsh.Method())
		s.gsh.OpFields(s.exF[:], comm.OpSum, s.gsh.Method())
	} else {
		for c := 0; c < NumFields; c++ {
			s.gsh.Op(s.exU[c], comm.OpSum)
			s.gsh.Op(s.exF[c], comm.OpSum)
		}
	}
	stop()

	s.rhsTail()
}

// rhsPrimitive is the compute_primitive pass: velocity and pressure once
// per point, shared by all 15 (field, direction) flux evaluations.
func (s *Solver) rhsPrimitive(in *[NumFields][]float64) {
	vol := len(s.prP)
	stop := s.span("compute_primitive", obs.CatKernel)
	rho, mx, my, mz, en := in[IRho], in[IMomX], in[IMomY], in[IMomZ], in[IEnergy]
	vx, vy, vz, pr := s.velP[0], s.velP[1], s.velP[2], s.prP
	s.pool.For(vol, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			inv := 1 / rho[i]
			vx[i] = mx[i] * inv
			vy[i] = my[i] * inv
			vz[i] = mz[i] * inv
			pr[i] = (Gamma - 1) * (en[i] - 0.5*(mx[i]*vx[i]+my[i]*vy[i]+mz[i]*vz[i]))
		}
	})
	s.chargeCompute(sem.OpCount{Mul: int64(vol) * 8, Add: int64(vol) * 3,
		Load: int64(vol) * NumFields, Store: int64(vol) * 4}, pointwiseTraits)
	stop()
}

// faceExtractRuns is full2face_cmt over the given element runs: gather
// the surface traces of the state into s.faceU.
func (s *Solver) faceExtractRuns(in *[NumFields][]float64, runs [][2]int) {
	if len(runs) == 0 {
		return
	}
	n := s.Cfg.N
	n3 := n * n * n
	fpe := sem.NFaces * n * n
	stop := s.span("full2face_cmt", obs.CatKernel)
	var moveOps sem.OpCount
	for _, run := range runs {
		elo, ehi := run[0], run[1]
		for c := 0; c < NumFields; c++ {
			moveOps = moveOps.Plus(sem.Full2FacePool(s.pool, n,
				in[c][elo*n3:ehi*n3], ehi-elo, s.faceU[c][elo*fpe:ehi*fpe]))
		}
	}
	s.chargeCompute(moveOps, pointwiseTraits)
	stop()
}

// volumeRuns is the derivative kernel (ax_) phase — the dominant cost —
// over the given element runs. For each field and direction: pointwise
// flux, then the tensor-product derivative, accumulated with the constant
// metric into the divergence and negated into s.rhs. In the viscous path
// the face traces of the total flux are extracted here too (both sides
// then average them via gs, a BR1-style viscous interface flux).
func (s *Solver) volumeRuns(in *[NumFields][]float64, runs [][2]int, viscous bool) {
	n := s.Cfg.N
	n3 := n * n * n
	fpe := sem.NFaces * n * n
	pr, en := s.prP, in[IEnergy]
	for _, run := range runs {
		elo, ehi := run[0], run[1]
		nelr := ehi - elo
		off := elo * n3
		volr := nelr * n3
		for c := 0; c < NumFields; c++ {
			s.pool.For(volr, func(lo, hi int) {
				dv := s.div[off+lo : off+hi]
				for i := range dv {
					dv[i] = 0
				}
			})
			for d := 0; d < 3; d++ {
				stop := s.span("compute_flux", obs.CatKernel)
				vn := s.velP[d]
				switch {
				case c == IRho:
					copy(s.fx[off:off+volr], in[IMomX+d][off:off+volr])
				case c == IMomX+d:
					uc := in[c]
					s.pool.For(volr, func(lo, hi int) {
						for i := off + lo; i < off+hi; i++ {
							s.fx[i] = uc[i]*vn[i] + pr[i]
						}
					})
				case c == IEnergy:
					s.pool.For(volr, func(lo, hi int) {
						for i := off + lo; i < off+hi; i++ {
							s.fx[i] = vn[i] * (en[i] + pr[i])
						}
					})
				default:
					uc := in[c]
					s.pool.For(volr, func(lo, hi int) {
						for i := off + lo; i < off+hi; i++ {
							s.fx[i] = uc[i] * vn[i]
						}
					})
				}
				if viscous {
					s.addViscousFluxRange(c, d, off, volr)
				}
				s.chargeCompute(sem.OpCount{Mul: int64(volr), Add: int64(volr),
					Load: int64(volr) * 2, Store: int64(volr)}, pointwiseTraits)
				stop()

				if viscous {
					stop = s.span("full2face_cmt", obs.CatKernel)
					moveOps := sem.Full2FaceDirPool(s.pool, n, s.fx[off:off+volr], nelr,
						s.faceF[c][elo*fpe:ehi*fpe], d)
					s.chargeCompute(moveOps, pointwiseTraits)
					stop()
				}

				dir := sem.Direction(d)
				stop = s.span("ax_deriv_"+dir.String(), obs.CatKernel)
				ops := sem.DerivPool(s.pool, dir, s.Cfg.Variant, s.Ref,
					s.fx[off:off+volr], s.dwork[off:off+volr], nelr)
				s.chargeCompute(ops, derivTraits(dir, s.Cfg.Variant))
				stop()

				s.pool.For(volr, func(lo, hi int) {
					for i := off + lo; i < off+hi; i++ {
						s.div[i] += s.rx * s.dwork[i]
					}
				})
			}
			rc := s.rhs[c]
			s.pool.For(volr, func(lo, hi int) {
				for i := off + lo; i < off+hi; i++ {
					rc[i] = -s.div[i]
				}
			})
		}
		s.chargeCompute(sem.OpCount{Mul: int64(volr) * 3 * NumFields, Add: int64(volr) * 4 * NumFields,
			Load: int64(volr) * 2, Store: int64(volr)}, pointwiseTraits)
	}
}

// surfaceFluxRuns is the inviscid surface compute_flux over the given
// element runs: the normal flux at face points evaluated directly from
// the local trace (the viscous path extracts it from the volume flux in
// volumeRuns instead).
func (s *Solver) surfaceFluxRuns(runs [][2]int) {
	if len(runs) == 0 {
		return
	}
	n := s.Cfg.N
	n2 := n * n
	stop := s.span("compute_flux_surface", obs.CatKernel)
	faceLen := 0
	for _, run := range runs {
		rlo := run[0]
		s.pool.For(run[1]-run[0], func(elo, ehi int) {
			var us, fs [NumFields]float64
			var velPt [3]float64
			for e := rlo + elo; e < rlo+ehi; e++ {
				for f := 0; f < sem.NFaces; f++ {
					d := sem.FaceDir(f)
					base := e*sem.NFaces*n2 + f*n2
					for q := 0; q < n2; q++ {
						idx := base + q
						for c := 0; c < NumFields; c++ {
							us[c] = s.faceU[c][idx]
						}
						inv := 1 / us[IRho]
						velPt[0], velPt[1], velPt[2] = us[IMomX]*inv, us[IMomY]*inv, us[IMomZ]*inv
						p := pressure(&us)
						eulerFlux(d, &us, &velPt, p, &fs)
						for c := 0; c < NumFields; c++ {
							s.faceF[c][idx] = fs[c]
						}
					}
				}
			}
		})
		faceLen += (run[1] - run[0]) * sem.NFaces * n2
	}
	s.chargeCompute(sem.OpCount{Mul: int64(faceLen) * 6, Add: int64(faceLen) * 4,
		Load: int64(faceLen) * 2, Store: int64(faceLen)}, pointwiseTraits)
	stop()
}

// rhsTail is everything after the face exchange — numerical flux + lift,
// source terms, and dealiasing — identical in the blocking and overlap
// paths (both run it over all elements once the exchanged traces are
// complete).
func (s *Solver) rhsTail() {
	n := s.Cfg.N
	nel := s.Local.Nel
	n2 := n * n
	vol := nel * n * n * n
	faceLen := sem.FaceSliceLen(n, nel)

	// --- numerical flux (Lax-Friedrichs) and lift: the correction
	// (f - f*).n at each exchanged face point, scaled by the diagonal
	// lift factor, scatter-added into the volume residual. Boundary
	// face points (bmask == 0) either pass untouched (freestream) or
	// see a mirror ghost state (slip wall).
	stop := s.span("numerical_flux", obs.CatKernel)
	lam := s.lambda
	wall := s.Cfg.BC == BCWall
	for c := 0; c < NumFields; c++ {
		fc, uc := s.faceF[c], s.faceU[c]
		fsum, usum := s.exF[c], s.exU[c]
		dst := s.faceW
		s.pool.For(nel, func(elo, ehi int) {
			for e := elo; e < ehi; e++ {
				for f := 0; f < sem.NFaces; f++ {
					d := sem.FaceDir(f)
					sign := float64(sem.FaceSign(f))
					scale := s.liftScale[d]
					base := e*sem.NFaces*n2 + f*n2
					for q := 0; q < n2; q++ {
						idx := base + q
						if s.bmask[idx] == 0 {
							if wall {
								dst[idx] = scale * s.wallCorrection(c, d, sign, idx, lam)
							} else {
								dst[idx] = 0
							}
							continue
						}
						// (f - f*).n with the Lax-Friedrichs flux, written
						// in terms of the exchanged in+out sums.
						corr := sign*(fc[idx]-0.5*fsum[idx]) - lam*(uc[idx]-0.5*usum[idx])
						dst[idx] = scale * corr
					}
				}
			}
		})
		sem.Face2FullAddPool(s.pool, n, dst, nel, s.rhs[c])
	}
	s.chargeCompute(sem.OpCount{Mul: int64(faceLen) * NumFields * 4, Add: int64(faceLen) * NumFields * 4,
		Load: int64(faceLen) * NumFields * 4, Store: int64(faceLen) * NumFields}, pointwiseTraits)
	stop()

	// --- source terms: the conservation law's R (multiphase coupling).
	// Zero — i.e. absent — in the paper's current CMT-bone; populated by
	// couplers such as the particle cloud.
	if s.Source[0] != nil {
		stop = s.span("source_terms", obs.CatKernel)
		for c := 0; c < NumFields; c++ {
			src := s.Source[c]
			dst := s.rhs[c]
			s.pool.For(vol, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] += src[i]
				}
			})
		}
		s.chargeCompute(sem.OpCount{Add: int64(vol) * NumFields,
			Load: 2 * int64(vol) * NumFields, Store: int64(vol) * NumFields}, pointwiseTraits)
		stop()
	}

	// --- dealiasing: map each field to the fine mesh and back (cost
	// path of the dealiased flux evaluation).
	if s.Cfg.Dealias {
		stop = s.span("dealias", obs.CatKernel)
		var ops sem.OpCount
		for c := 0; c < NumFields; c++ {
			ops = ops.Plus(s.Ref.DealiasRoundTripPool(s.pool, s.rhs[c], nel, s.deaBufs))
		}
		s.chargeCompute(ops, pointwiseTraits)
		stop()
	}
}
