package solver_test

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/solver"
)

// A complete mini-app run: build a solver on each rank, set an initial
// condition, advance, and check conservation.
func Example() {
	cfg := solver.DefaultConfig(4 /*ranks*/, 5 /*N*/, 2 /*elems per dir*/)
	conserved := false
	_, err := comm.RunSimple(4, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(2, 2, 2, 0.1, 0.5))
		before := s.TotalMass()
		rep := s.Run(3)
		if r.ID() == 0 {
			conserved = math.Abs(rep.Mass-before) < 1e-10*before
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("mass conserved:", conserved)
	// Output: mass conserved: true
}
