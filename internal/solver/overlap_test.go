package solver

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// runOverlap runs a short multi-rank simulation and returns every rank's
// final conserved state, the run reports, and the comm stats (for the
// modeled makespan and the overlap-hidden accounting).
func runOverlap(t *testing.T, model netmodel.Model, elemsPerDir int, mutate func(*Config)) ([][NumFields][]float64, []Report, *comm.Stats) {
	t.Helper()
	const np = 4
	cfg := DefaultConfig(np, 5, elemsPerDir)
	if mutate != nil {
		mutate(&cfg)
	}
	states := make([][NumFields][]float64, np)
	reports := make([]Report, np)
	stats, err := comm.Run(np, cfg.CommOptions(model), func(r *comm.Rank) error {
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(GaussianPulse(1, 1, 1, 0.1, 0.5))
		reports[r.ID()] = s.Run(3)
		for c := 0; c < NumFields; c++ {
			states[r.ID()][c] = append([]float64(nil), s.U[c]...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return states, reports, stats
}

func requireBitIdentical(t *testing.T, got, want [][NumFields][]float64, label string) {
	t.Helper()
	for rank := range want {
		for c := 0; c < NumFields; c++ {
			for i, v := range want[rank][c] {
				if math.Float64bits(got[rank][c][i]) != math.Float64bits(v) {
					t.Fatalf("%s: rank %d field %d point %d: %x != %x",
						label, rank, c, i,
						math.Float64bits(got[rank][c][i]), math.Float64bits(v))
				}
			}
		}
	}
}

// TestOverlapBitIdentical is the tentpole's correctness contract: the
// interior/boundary split with the split-phase exchange must not change
// one bit of the solution or the run report on any physics path, gs
// method (the non-pairwise methods exercise the blocking fallback), or
// worker count. Only the modeled time may move.
func TestOverlapBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"plain", nil},
		{"dealias", func(c *Config) { c.Dealias = true }},
		{"viscous", func(c *Config) { c.Mu = 0.02 }},
		{"wall-bc", func(c *Config) {
			c.Periodic = [3]bool{false, true, true}
			c.BC = BCWall
		}},
		{"packed", func(c *Config) { c.PackedExchange = true }},
		{"filter", func(c *Config) { c.FilterCutoff = 3 }},
		{"crystal-fallback", func(c *Config) { c.GSMethod = gs.CrystalRouter }},
		{"allreduce-fallback", func(c *Config) { c.GSMethod = gs.AllReduce }},
		{"workers", func(c *Config) { c.Workers = 4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// elemsPerDir=3 gives every rank a non-empty interior set, so
			// the split actually reorders work (elemsPerDir=2 would make
			// every element a boundary element).
			off, offReports, _ := runOverlap(t, netmodel.QDR, 3, tc.mutate)
			on, onReports, _ := runOverlap(t, netmodel.QDR, 3, func(c *Config) {
				if tc.mutate != nil {
					tc.mutate(c)
				}
				c.Overlap = true
			})
			requireBitIdentical(t, on, off, tc.name)
			for rank := range offReports {
				if onReports[rank] != offReports[rank] {
					t.Fatalf("%s: rank %d report %+v != %+v",
						tc.name, rank, onReports[rank], offReports[rank])
				}
			}
		})
	}
}

// TestOverlapAllBoundary covers the degenerate split: with two elements
// per direction every local element touches a partition boundary, so the
// interior set is empty and Finish immediately follows Begin. Results
// must still be bit-identical.
func TestOverlapAllBoundary(t *testing.T) {
	off, _, _ := runOverlap(t, netmodel.QDR, 2, nil)
	on, _, _ := runOverlap(t, netmodel.QDR, 2, func(c *Config) { c.Overlap = true })
	requireBitIdentical(t, on, off, "all-boundary")
}

// TestOverlapHidesComm is the performance contract and the VT-invariance
// check: on a communication-bound configuration (slow GigE-class network,
// interior elements available) the overlap run must hide a positive
// amount of modeled exchange time behind interior compute, reduce — or
// at least not increase — the modeled makespan, and still produce the
// bit-identical solution. The shared overlap_hidden_seconds gauge must
// agree with the per-rank clock accounting.
func TestOverlapHidesComm(t *testing.T) {
	off, _, offStats := runOverlap(t, netmodel.GigE, 3, nil)
	if h := offStats.TotalOverlapHidden(); h != 0 {
		t.Fatalf("overlap-off run accounted %v hidden seconds, want 0", h)
	}

	reg := obs.NewRegistry()
	interior := make([]int, 4)
	var onStats *comm.Stats
	states := make([][NumFields][]float64, 4)
	cfg := DefaultConfig(4, 5, 3)
	cfg.Overlap = true
	cfg.Metrics = reg
	stats, err := comm.Run(4, cfg.CommOptions(netmodel.GigE), func(r *comm.Rank) error {
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		interior[r.ID()] = s.InteriorElems()
		s.SetInitial(GaussianPulse(1, 1, 1, 0.1, 0.5))
		s.Run(3)
		for c := 0; c < NumFields; c++ {
			states[r.ID()][c] = append([]float64(nil), s.U[c]...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	onStats = stats

	requireBitIdentical(t, states, off, "overlap-on vs off")
	for rank, n := range interior {
		if n == 0 {
			t.Fatalf("rank %d has no interior elements; config does not exercise overlap", rank)
		}
	}
	hidden := onStats.TotalOverlapHidden()
	if hidden <= 0 {
		t.Fatalf("overlap hid %v modeled seconds, want > 0", hidden)
	}
	if on, offVT := onStats.MaxVirtualTime(), offStats.MaxVirtualTime(); on > offVT {
		t.Fatalf("overlap-on makespan %v > overlap-off %v; overlap made the modeled run slower", on, offVT)
	}
	gauge := reg.Gauge("overlap_hidden_seconds").Value()
	if diff := math.Abs(gauge - hidden); diff > 1e-9*hidden {
		t.Fatalf("overlap_hidden_seconds gauge %v != clock accounting %v", gauge, hidden)
	}
}
