package solver

import (
	"repro/internal/obs"
	"repro/internal/sem"
)

// The viscous path: CMT-nek is an explicit solver for the compressible
// Navier-Stokes equations (paper Section III.A); setting Config.Mu > 0
// enables the corresponding flux terms here. Velocity and temperature
// gradients are computed with the same derivative kernel as the flux
// divergence (twelve more ax_ passes per right-hand side — exactly the
// kernel-count amplification the full physics brings), the Newtonian
// stress tensor and Fourier heat flux are formed pointwise, and the
// viscous contribution is folded into the total flux before the
// divergence and face-exchange stages, giving a BR1-style averaged
// interface flux.
//
// The gradients are the broken (element-local) DG gradients, without a
// dedicated interface correction — second-order accurate at element
// interfaces for resolved fields, which is what a cost-faithful mini-app
// needs; the shear-wave decay test pins the quantitative behaviour.

// gradient quantity indices within s.gradQ/s.gradD.
const (
	gradVx = iota
	gradVy
	gradVz
	gradT
	numGradQ
)

// computeGradients fills s.gradD[q][d] with the physical-space
// derivative of quantity q (velocity components and temperature) of the
// state in, along direction d. Requires the primitive pass to have run.
func (s *Solver) computeGradients(in *[NumFields][]float64) {
	nel := s.Local.Nel
	vol := len(s.prP)

	// Temperature with the gas constant R = 1: T = p / rho.
	stop := s.span("compute_primitive", obs.CatKernel)
	tq := s.gradQ[gradT]
	rho := in[IRho]
	s.pool.For(vol, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tq[i] = s.prP[i] / rho[i]
		}
	})
	copy(s.gradQ[gradVx], s.velP[0])
	copy(s.gradQ[gradVy], s.velP[1])
	copy(s.gradQ[gradVz], s.velP[2])
	s.chargeCompute(sem.OpCount{Mul: int64(vol), Load: 2 * int64(vol), Store: int64(vol)}, pointwiseTraits)
	stop()

	if s.Cfg.Variant == sem.Optimized {
		// Fused pass: all three directions of every quantity in one sweep
		// per element, bit-identical to the three separate sweeps (the
		// generated kernels replicate the Optimized accumulation order
		// exactly). The hw model is still charged per direction with the
		// same structural counts and traits the unfused path reports, so
		// modeled time is unchanged; only wall time and the profiler span
		// structure move.
		stop := s.span("ax_grad3_fused", obs.CatKernel)
		for q := 0; q < numGradQ; q++ {
			sem.Grad3FusedPool(s.pool, s.Ref, s.gradQ[q],
				s.gradD[q][0], s.gradD[q][1], s.gradD[q][2], nel)
			for d := 0; d < 3; d++ {
				dir := sem.Direction(d)
				s.chargeCompute(sem.DerivOps(s.Ref.N, nel), derivTraits(dir, s.Cfg.Variant))
			}
		}
		stop()
	} else {
		// The Basic variant keeps the three unfused sweeps: it is the
		// paper's untransformed ablation point, and fusion is itself a
		// loop transformation.
		for q := 0; q < numGradQ; q++ {
			for d := 0; d < 3; d++ {
				dir := sem.Direction(d)
				stop := s.span("ax_deriv_"+dir.String(), obs.CatKernel)
				ops := sem.DerivPool(s.pool, dir, s.Cfg.Variant, s.Ref, s.gradQ[q], s.gradD[q][d], nel)
				s.chargeCompute(ops, derivTraits(dir, s.Cfg.Variant))
				stop()
			}
		}
	}
	// Constant metric: d/dx = rx * d/dr.
	for q := 0; q < numGradQ; q++ {
		for d := 0; d < 3; d++ {
			gd := s.gradD[q][d]
			s.pool.For(vol, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					gd[i] *= s.rx
				}
			})
		}
	}
	s.chargeCompute(sem.OpCount{Mul: int64(vol) * numGradQ * 3,
		Load: int64(vol) * numGradQ * 3, Store: int64(vol) * numGradQ * 3}, pointwiseTraits)
}

// addViscousFlux subtracts the viscous flux of conserved variable c
// along direction d from s.fx (which already holds the Euler flux).
// Requires computeGradients.
func (s *Solver) addViscousFlux(c, d int) {
	s.addViscousFluxRange(c, d, 0, len(s.fx))
}

// addViscousFluxRange is addViscousFlux over the point range
// [off, off+volr) — the overlap path calls it per element run; values are
// pointwise, so any split is bit-identical to the full sweep.
func (s *Solver) addViscousFluxRange(c, d, off, volr int) {
	mu := s.Cfg.Mu
	// Fourier conductivity: kappa = mu * cp / Pr, cp = Gamma/(Gamma-1)
	// with R = 1.
	kappa := mu * Gamma / (Gamma - 1) / s.Cfg.Pr

	dudx := s.gradD[gradVx]
	dvdx := s.gradD[gradVy]
	dwdx := s.gradD[gradVz]

	switch {
	case c == IRho:
		// No viscous mass flux.
	case c >= IMomX && c <= IMomZ:
		i := c - IMomX // stress row
		// tau_{i,d} = mu (dv_i/dx_d + dv_d/dx_i) - (2/3) mu div(v) delta_{i,d}
		gi := s.gradD[gradVx+i][d]
		gd := s.gradD[gradVx+d][i]
		if i == d {
			s.pool.For(volr, func(lo, hi int) {
				for p := off + lo; p < off+hi; p++ {
					divv := dudx[0][p] + dvdx[1][p] + dwdx[2][p]
					tau := mu*(gi[p]+gd[p]) - (2.0/3.0)*mu*divv
					s.fx[p] -= tau
				}
			})
		} else {
			s.pool.For(volr, func(lo, hi int) {
				for p := off + lo; p < off+hi; p++ {
					s.fx[p] -= mu * (gi[p] + gd[p])
				}
			})
		}
	case c == IEnergy:
		// Work of the stress plus heat conduction:
		// F_visc,E[d] = sum_i v_i tau_{i,d} + kappa dT/dx_d.
		gT := s.gradD[gradT][d]
		s.pool.For(volr, func(lo, hi int) {
			for p := off + lo; p < off+hi; p++ {
				divv := dudx[0][p] + dvdx[1][p] + dwdx[2][p]
				var work float64
				for i := 0; i < 3; i++ {
					tau := mu * (s.gradD[gradVx+i][d][p] + s.gradD[gradVx+d][i][p])
					if i == d {
						tau -= (2.0 / 3.0) * mu * divv
					}
					work += s.velP[i][p] * tau
				}
				s.fx[p] -= work + kappa*gT[p]
			}
		})
	}
	s.chargeCompute(sem.OpCount{Mul: int64(volr) * 6, Add: int64(volr) * 6,
		Load: int64(volr) * 8, Store: int64(volr)}, pointwiseTraits)
}
