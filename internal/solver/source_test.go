package solver

import (
	"math"
	"testing"

	"repro/internal/comm"
)

func TestZeroSourceMatchesNoSource(t *testing.T) {
	run := func(enable bool) []float64 {
		var out []float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, 5, 2)
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(GaussianPulse(1, 1, 1, 0.05, 0.5))
			if enable {
				s.EnableSource() // allocated but all-zero
			}
			s.Run(3)
			out = append([]float64(nil), s.U[IEnergy]...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	off := run(false)
	on := run(true)
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("zero source changed the solution at %d: %v vs %v", i, off[i], on[i])
		}
	}
}

func TestConstantMassSourceGrowsMassAtKnownRate(t *testing.T) {
	// With du/dt = ... + R and R_rho = const, total mass must grow by
	// R * volume * t (the flux terms conserve mass exactly).
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 5, 2)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(func(x, y, z float64) [NumFields]float64 {
			return UniformState(1, 0, 0, 0, 1/Gamma)
		})
		src := s.EnableSource()
		const rate = 0.01
		for i := range src[IRho] {
			src[IRho][i] = rate
		}
		m0 := s.TotalMass()
		var elapsed float64
		const steps = 5
		for i := 0; i < steps; i++ {
			dt := 1e-3
			s.Step(dt)
			elapsed += dt
		}
		m1 := s.TotalMass()
		volume := float64(cfg.ElemGrid[0] * cfg.ElemGrid[1] * cfg.ElemGrid[2])
		want := m0 + rate*volume*elapsed
		if math.Abs(m1-want) > 1e-9*want {
			t.Errorf("mass after sourced run = %.12f, want %.12f", m1, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFilterKeepsUniformStateExactly(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 6, 2)
		cfg.FilterCutoff = 3
		cfg.FilterStrength = 0.2
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		want := UniformState(1.1, 0.2, 0, 0, 0.9)
		s.SetInitial(func(x, y, z float64) [NumFields]float64 { return want })
		s.Run(4)
		for c := 0; c < NumFields; c++ {
			for i, v := range s.U[c] {
				if math.Abs(v-want[c]) > 1e-10 {
					t.Errorf("filtered uniform state drifted: field %d idx %d: %v vs %v",
						c, i, v, want[c])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFilterStabilizesStrongPulse(t *testing.T) {
	// A strong pulse at marginal resolution: the filtered run must stay
	// finite and produce a bounded density field.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 7, 2)
		cfg.FilterCutoff = 4
		cfg.FilterStrength = 0.3
		cfg.CFL = 0.25
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.8, 0.3))
		for i := 0; i < 30; i++ {
			s.Step(s.StableDt())
		}
		for _, v := range s.U[IRho] {
			if math.IsNaN(v) || v <= 0 {
				t.Errorf("filtered strong pulse went unstable: rho = %v", v)
				return nil
			}
		}
		// The filter region must actually have run.
		found := false
		for _, reg := range s.Prof.Flat() {
			if reg.Name == "spectral_filter" && reg.Calls > 0 {
				found = true
			}
		}
		if !found {
			t.Error("spectral_filter region missing from profile")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFilterConservesMass(t *testing.T) {
	// The modal filter preserves mode 0 (the element mean is untouched
	// ... exactly: P_0 passes with sigma=1), so total mass is conserved.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 6, 2)
		cfg.FilterCutoff = 2
		cfg.FilterStrength = 1.0
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.2, 0.4))
		before := s.TotalMass()
		rep := s.Run(5)
		if math.Abs(rep.Mass-before) > 1e-9*math.Abs(before) {
			t.Errorf("filter broke mass conservation: %v -> %v", before, rep.Mass)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackedExchangeMatchesPerField(t *testing.T) {
	run := func(packed bool) []float64 {
		var out []float64
		_, err := comm.RunSimple(4, func(r *comm.Rank) error {
			cfg := DefaultConfig(4, 5, 1)
			cfg.PackedExchange = packed
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(GaussianPulse(1, 1, 1, 0.08, 0.5))
			s.Run(3)
			if r.ID() == 2 {
				out = append([]float64(nil), s.U[IMomX]...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	perField := run(false)
	packed := run(true)
	for i := range perField {
		if perField[i] != packed[i] {
			t.Fatalf("packed exchange diverges at %d: %v vs %v", i, packed[i], perField[i])
		}
	}
}

func TestDtControllerLimitsGrowth(t *testing.T) {
	c := &DtController{MaxGrowth: 1.1}
	first := c.Next(1e-3)
	if first != 1e-3 {
		t.Fatalf("first dt = %v", first)
	}
	// A sudden 10x jump in the stable dt must be limited to 10% growth.
	second := c.Next(1e-2)
	if second > 1.1*first+1e-15 {
		t.Fatalf("growth unbounded: %v after %v", second, first)
	}
	// A shrink is taken immediately.
	third := c.Next(1e-4)
	if third != 1e-4 {
		t.Fatalf("shrink not honored: %v", third)
	}
}

func TestRunAdaptiveConservesAndRecordsHistory(t *testing.T) {
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 5, 2)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.1, 0.5))
		before := s.TotalMass()
		rep, hist := s.RunAdaptive(6, nil)
		if len(hist) != 6 {
			t.Errorf("dt history length %d", len(hist))
		}
		for i := 1; i < len(hist); i++ {
			if hist[i] > hist[i-1]*1.1+1e-15 {
				t.Errorf("dt grew too fast at step %d: %v -> %v", i, hist[i-1], hist[i])
			}
		}
		if math.Abs(rep.Mass-before) > 1e-10*math.Abs(before) {
			t.Errorf("adaptive run broke conservation")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
