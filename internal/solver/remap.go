package solver

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/obs"
)

// remapTag is the point-to-point tag space of the element-migration
// exchange (distinct from the gs tag and the collective tag space).
const remapTag = 0x6c62 // "lb"

// Remap atomically reassigns element ownership mid-run: every rank packs
// the conserved state (and enabled source fields) of its departing
// elements plus k sidecar floats per element (the load balancer's cost
// EWMA travels here), exchanges them with a single Alltoallv — the same
// generalized all-to-all the particle migration uses — and rebuilds its
// local mesh view, scratch arrays, boundary mask, work weights, and
// gather-scatter topology over the new numbering. The previously
// selected gs method is retained (no re-tune).
//
// Remap is collective: every rank must call it with an identical newOwn
// and the same k. It moves data only — no arithmetic touches field
// values — so the global solution is bit-identical to a run that never
// rebalanced, regardless of when or how often Remap fires.
//
// The returned slice is the sidecar reassembled for the new local
// element set (length newNel*k), and movedElems/movedBytes report this
// rank's outbound migration volume.
func (s *Solver) Remap(newOwn *mesh.Ownership, sidecar []float64, k int) (newSidecar []float64, movedElems int, movedBytes int64) {
	if *newOwn.Box() != *s.Local.Box {
		panic("solver: Remap ownership built over a different box")
	}
	old := s.Local
	if len(sidecar) != old.Nel*k {
		panic(fmt.Sprintf("solver: Remap sidecar has %d floats, want %d*%d", len(sidecar), old.Nel, k))
	}
	stop := s.span("rebalance_migrate", obs.CatComm)
	s.Rank.SetSite("loadbal_migrate")

	rank := s.Rank.ID()
	p := s.Rank.Size()
	n3 := s.Cfg.N * s.Cfg.N * s.Cfg.N
	hasSource := s.Source[0] != nil
	nf := NumFields
	if hasSource {
		nf = 2 * NumFields
	}
	stride := 1 + nf*n3 + k // gid + fields (+ sources) + sidecar

	// Partition local elements into keepers and movers (per destination).
	counts := make([]int, p)
	for e := 0; e < old.Nel; e++ {
		if dst := newOwn.Owner(old.GID(e)); dst != rank {
			counts[dst] += stride
			movedElems++
		}
	}
	payload := make([]float64, 0, movedElems*stride)
	for dst := 0; dst < p; dst++ {
		if dst == rank || counts[dst] == 0 {
			continue
		}
		for e := 0; e < old.Nel; e++ {
			gid := old.GID(e)
			if newOwn.Owner(gid) != dst {
				continue
			}
			payload = append(payload, float64(gid))
			for c := 0; c < NumFields; c++ {
				payload = append(payload, s.U[c][e*n3:(e+1)*n3]...)
			}
			if hasSource {
				for c := 0; c < NumFields; c++ {
					payload = append(payload, s.Source[c][e*n3:(e+1)*n3]...)
				}
			}
			payload = append(payload, sidecar[e*k:(e+1)*k]...)
		}
	}
	movedBytes = int64(len(payload)) * 8

	recv, _ := s.Rank.Alltoallv(payload, counts)

	// Reassemble state arrays over the new canonical local ordering.
	newLocal := newOwn.Partition(rank)
	newVol := newLocal.Nel * n3
	var newU, newSrc [NumFields][]float64
	for c := 0; c < NumFields; c++ {
		newU[c] = make([]float64, newVol)
		if hasSource {
			newSrc[c] = make([]float64, newVol)
		}
	}
	newSidecar = make([]float64, newLocal.Nel*k)
	for e := 0; e < old.Nel; e++ { // keepers
		gid := old.GID(e)
		if newOwn.Owner(gid) != rank {
			continue
		}
		ne := newOwn.LocalIndex(gid)
		for c := 0; c < NumFields; c++ {
			copy(newU[c][ne*n3:(ne+1)*n3], s.U[c][e*n3:(e+1)*n3])
			if hasSource {
				copy(newSrc[c][ne*n3:(ne+1)*n3], s.Source[c][e*n3:(e+1)*n3])
			}
		}
		copy(newSidecar[ne*k:(ne+1)*k], sidecar[e*k:(e+1)*k])
	}
	for i := 0; i+stride <= len(recv); i += stride { // arrivals
		gid := int64(recv[i])
		ne := newOwn.LocalIndex(gid)
		off := i + 1
		for c := 0; c < NumFields; c++ {
			copy(newU[c][ne*n3:(ne+1)*n3], recv[off:off+n3])
			off += n3
		}
		if hasSource {
			for c := 0; c < NumFields; c++ {
				copy(newSrc[c][ne*n3:(ne+1)*n3], recv[off:off+n3])
				off += n3
			}
		}
		copy(newSidecar[ne*k:(ne+1)*k], recv[off:off+k])
	}

	// Swap in the new partition and rebuild everything derived from it.
	s.Local = newLocal
	s.ow = newOwn
	s.U = newU
	if hasSource {
		s.Source = newSrc
	}
	s.allocScratch()
	method := s.gsh.Method()
	s.Rank.SetSite("")
	s.setupGS()
	s.gsh.SetMethod(method)
	s.rebuildOverlap()
	stop()
	return newSidecar, movedElems, movedBytes
}
