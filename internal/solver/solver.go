package solver

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/hw"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/prof"
	"repro/internal/sem"
)

// Solver is one rank's CMT-bone instance.
type Solver struct {
	Cfg   Config
	Rank  *comm.Rank
	Local *mesh.Local
	Ref   *sem.Ref1D
	Prof  *prof.Profiler

	gsh *gs.GS // face-point gather-scatter

	// U holds the conserved variables, one slice of nel*N^3 per field.
	U [NumFields][]float64

	// Source holds optional volumetric source terms (the conservation
	// law's right-hand side R, which carries the multiphase coupling in
	// CMT-nek). Nil slices mean zero sources — the current CMT-bone
	// state per the paper. Call EnableSource to allocate; external
	// couplers (e.g. internal/particles) deposit into it.
	Source [NumFields][]float64

	// filter operators (nil when the spectral filter is disabled)
	filterMat     []float64
	filterScratch []float64

	// Scratch (allocated once).
	rhs    [NumFields][]float64
	u1, u2 [NumFields][]float64 // RK stages
	fx     []float64            // flux component being differentiated
	dwork  []float64            // derivative output
	div    []float64            // accumulated divergence
	velP   [3][]float64         // pointwise velocity (primitive pass)
	prP    []float64            // pointwise pressure (primitive pass)
	// viscous-path storage (allocated when Mu > 0)
	gradQ [numGradQ][]float64    // quantities to differentiate (vx,vy,vz,T)
	gradD [numGradQ][3][]float64 // their physical-space gradients
	faceU [NumFields][]float64   // face traces of U
	faceF [NumFields][]float64   // face traces of the normal flux
	exU   [NumFields][]float64   // exchanged (in+out summed) state traces
	exF   [NumFields][]float64   // exchanged flux traces
	faceW []float64              // per-field correction workspace
	bmask []float64              // 1 on exchanged face points, 0 on true boundaries

	// Intra-rank worker pool for the element-indexed kernels (Workers
	// in Config). The pool parallelizes wall time only: modeled time is
	// charged analytically on the rank goroutine, so results and
	// virtual-time traces are identical at any worker count.
	pool    *pool.Pool
	deaBufs *sem.DealiasBufs // per-worker dealiasing buffers
	wsPart  []float64        // per-slot wave-speed partial maxima

	// Geometry: uniform unit-cube elements, so d(ref)/d(phys) = 2.
	rx float64
	// liftScale[d] = 2/(h_d * w_0): the diagonal lift factor at face
	// points normal to direction d.
	liftScale [3]float64

	// Per-element work weights (Config.HotElems): elemW[e] is local
	// element e's cost multiplier, wSum their sum, workScale the factor
	// (wSum/Nel) every volume-proportional compute charge is scaled by.
	// All 1 without hot elements, so modeled times are unchanged.
	elemW     []float64
	wSum      float64
	workScale float64

	// kernelSec accumulates the virtual seconds this rank's clock
	// advanced inside chargeCompute — the measured per-rank kernel time
	// (including straggler compute factors) the load balancer's cost
	// model consumes.
	kernelSec float64

	// Overlap state (Config.Overlap): element classification from the gs
	// topology — bndElem[e] is true when element e holds any remotely
	// shared face point — as maximal contiguous runs, plus the reusable
	// split-phase exchange handles for the state and flux traces.
	// Rebuilt with the gs handle (construction, Remap, Shrink-rebuild).
	bndElem      []bool
	intRuns      [][2]int
	bndRuns      [][2]int
	pendU, pendF *gs.Pending
	prevHidden   float64 // overlap-hidden seconds at the last telemetry flush

	// ow is the current element ownership map (lazily the uniform split;
	// replaced by Remap).
	ow *mesh.Ownership

	// Accumulated structural op counts (feeds the hw model).
	Ops sem.OpCount

	// Lambda is the current global maximum wave speed (set by Lambda()).
	lambda float64

	// Telemetry (nil handles record nothing).
	rt        *obs.RankTracer // this rank's span recorder
	prevSplit comm.OpTotals   // MPI totals at the end of the last step
	prevVT    float64         // virtual clock at the end of the last step
	simTime   float64         // accumulated simulated time
}

// New builds a solver on rank r. Collective: every rank must call it with
// an identical configuration.
func New(r *comm.Rank, cfg Config) (*Solver, error) {
	cfg.normalize()
	if err := cfg.Validate(r.Size()); err != nil {
		return nil, err
	}
	box, err := cfg.Mesh()
	if err != nil {
		return nil, err
	}
	local := box.Partition(r.ID())
	if cfg.Ownership != nil {
		if *cfg.Ownership.Box() != *box {
			return nil, fmt.Errorf("solver: ownership map built over a different box")
		}
		local = cfg.Ownership.Partition(r.ID())
	}
	ref := cfg.Ref
	if ref != nil && ref.N != cfg.N {
		// A cache entry recorded for a different order is useless here;
		// rebuilding is always correct.
		ref = nil
	}
	if ref == nil {
		if cfg.Dealias && cfg.GaussDealias {
			ref = sem.NewRef1DGauss(cfg.N)
		} else {
			ref = sem.NewRef1D(cfg.N)
		}
	}
	if cfg.TuneMxM {
		sem.TuneMxMDefault()
	}

	s := &Solver{
		Cfg:   cfg,
		Rank:  r,
		Local: local,
		Ref:   ref,
		Prof:  prof.New(),
		rx:    2, // reference element [-1,1] onto unit cube
		rt:    cfg.Obs.Rank(r.WorldID(), r.Clock()),
		ow:    cfg.Ownership,
	}
	vol := local.Nel * cfg.N * cfg.N * cfg.N
	for c := 0; c < NumFields; c++ {
		s.U[c] = make([]float64, vol)
	}
	s.pool = pool.New(cfg.Workers)
	s.pool.Observe(cfg.Metrics)
	s.wsPart = make([]float64, s.pool.Workers())
	if cfg.Dealias {
		s.deaBufs = ref.NewDealiasBufs(s.pool.Workers())
	}
	if cfg.FilterCutoff > 0 {
		s.filterMat = sem.FilterMatrix(ref.X, cfg.FilterCutoff, 1.0)
		s.filterScratch = make([]float64, sem.FilterScratchLen(cfg.N))
	}
	for d := 0; d < 3; d++ {
		s.liftScale[d] = s.rx / ref.W[0]
	}
	s.allocScratch()

	if cfg.GSTopo != nil {
		// Cache hit: rebuild the gather-scatter handle from the recorded
		// discovery result — no setup collectives at all. Validate
		// guaranteed the table covers every rank, so the skip is
		// symmetric.
		gsh, err := gs.SetupFromTopology(r, cfg.GSTopo[r.ID()])
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("solver: cached gs topology: %w", err)
		}
		s.gsh = gsh
		s.gsh.SetSpanner(s.rt)
	} else {
		s.setupGS()
	}
	if cfg.AutoTune {
		stop := s.span("gs_autotune", obs.CatComm)
		gs.TuneModeled(s.gsh, cfg.TuneTrials)
		stop()
	} else {
		s.gsh.SetMethod(cfg.GSMethod)
	}
	s.rebuildOverlap()
	return s, nil
}

// allocScratch (re)allocates every local-size-dependent working array —
// everything except the conserved state U and the source fields, which
// Remap migrates rather than rebuilds — and refreshes the boundary mask
// and per-element work weights. Called at construction and after every
// element migration.
func (s *Solver) allocScratch() {
	local, cfg := s.Local, &s.Cfg
	n3 := cfg.N * cfg.N * cfg.N
	vol := local.Nel * n3
	for c := 0; c < NumFields; c++ {
		s.rhs[c] = make([]float64, vol)
		s.u1[c] = make([]float64, vol)
		s.u2[c] = make([]float64, vol)
	}
	s.fx = make([]float64, vol)
	s.dwork = make([]float64, vol)
	s.div = make([]float64, vol)
	for d := 0; d < 3; d++ {
		s.velP[d] = make([]float64, vol)
	}
	s.prP = make([]float64, vol)
	faceLen := sem.FaceSliceLen(cfg.N, local.Nel)
	for c := 0; c < NumFields; c++ {
		s.faceU[c] = make([]float64, faceLen)
		s.faceF[c] = make([]float64, faceLen)
		s.exU[c] = make([]float64, faceLen)
		s.exF[c] = make([]float64, faceLen)
	}
	s.faceW = make([]float64, faceLen)
	if cfg.Mu > 0 {
		for q := 0; q < numGradQ; q++ {
			s.gradQ[q] = make([]float64, vol)
			for d := 0; d < 3; d++ {
				s.gradD[q][d] = make([]float64, vol)
			}
		}
	}

	// Boundary mask: face points without a neighbor (non-periodic domain
	// boundary) get no numerical-flux correction.
	s.bmask = make([]float64, faceLen)
	n2 := cfg.N * cfg.N
	for e := 0; e < local.Nel; e++ {
		for f := 0; f < sem.NFaces; f++ {
			v := 0.0
			if _, ok := local.FaceNeighbor(e, f); ok {
				v = 1
			}
			base := e*sem.NFaces*n2 + f*n2
			for i := 0; i < n2; i++ {
				s.bmask[base+i] = v
			}
		}
	}
	s.initWeights()
}

// initWeights rebuilds the per-element work weights from Config.HotElems
// for the current local element set.
func (s *Solver) initWeights() {
	nel := s.Local.Nel
	s.elemW = make([]float64, nel)
	s.wSum = 0
	for e := 0; e < nel; e++ {
		w := 1.0
		if len(s.Cfg.HotElems) > 0 {
			if m, ok := s.Cfg.HotElems[s.Local.GID(e)]; ok {
				w = m
			}
		}
		s.elemW[e] = w
		s.wSum += w
	}
	if nel > 0 {
		s.workScale = s.wSum / float64(nel)
	} else {
		s.workScale = 1
	}
}

// setupGS (re)builds the gather-scatter handle over the current local
// element set (gs_setup, with its generalized all-to-all discovery
// phase). Collective.
func (s *Solver) setupGS() {
	stop := s.span("gs_setup", obs.CatComm)
	s.gsh = gs.Setup(s.Rank, s.Local.DGFaceIDs())
	stop()
	s.gsh.SetSpanner(s.rt)
}

// span opens both a profiler region and a telemetry span under the same
// name — and pushes the matching accounting phase on the rank's virtual
// clock, so every modeled advance inside the region is attributed to its
// application phase (always on; the clock's `now` is untouched, so
// results are bit-identical). Returns the closure ending all three.
// Close it after the kernel's chargeCompute so the span's virtual-time
// extent covers the modeled cost of the work.
func (s *Solver) span(name string, cat obs.Category) func() {
	popPhase := s.Rank.Clock().PushPhase(obs.PhaseOf(name, cat))
	stopProf := s.Prof.Start(name)
	if s.rt == nil {
		return func() {
			stopProf()
			popPhase()
		}
	}
	stopSpan := s.rt.Span(name, cat)
	return func() {
		stopProf()
		stopSpan()
		popPhase()
	}
}

// GS exposes the face gather-scatter handle (for reporting).
func (s *Solver) GS() *gs.GS { return s.gsh }

// Pool exposes the intra-rank worker pool (for occupancy reporting).
func (s *Solver) Pool() *pool.Pool { return s.pool }

// Close stops the worker pool's helper goroutines. The solver remains
// usable afterwards (kernels fall back to running on the caller), but
// steady-state use should treat Close as the end of the solver's life.
func (s *Solver) Close() { s.pool.Close() }

// EnableSource allocates the source-term fields (zeroed) and returns
// them; callers deposit coupling terms (e.g. particle drag reactions)
// before each Step.
func (s *Solver) EnableSource() *[NumFields][]float64 {
	if s.Source[0] == nil {
		vol := len(s.U[0])
		for c := 0; c < NumFields; c++ {
			s.Source[c] = make([]float64, vol)
		}
	}
	return &s.Source
}

// ZeroSource clears the source-term fields (no-op when disabled).
func (s *Solver) ZeroSource() {
	for c := 0; c < NumFields; c++ {
		for i := range s.Source[c] {
			s.Source[c][i] = 0
		}
	}
}

// Nel returns the local element count.
func (s *Solver) Nel() int { return s.Local.Nel }

// PointCoords returns the physical coordinates of point (i,j,k) of local
// element e; elements are unit cubes tiling [0, ElemGrid) per direction.
func (s *Solver) PointCoords(e, i, j, k int) (x, y, z float64) {
	g := s.Local.GlobalElemCoords(e)
	x = float64(g[0]) + (s.Ref.X[i]+1)/2
	y = float64(g[1]) + (s.Ref.X[j]+1)/2
	z = float64(g[2]) + (s.Ref.X[k]+1)/2
	return
}

// SetInitial fills the conserved variables from a pointwise function of
// physical coordinates.
func (s *Solver) SetInitial(f func(x, y, z float64) [NumFields]float64) {
	n := s.Cfg.N
	n3 := n * n * n
	for e := 0; e < s.Local.Nel; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					x, y, z := s.PointCoords(e, i, j, k)
					u := f(x, y, z)
					idx := e*n3 + i + n*j + n*n*k
					for c := 0; c < NumFields; c++ {
						s.U[c][idx] = u[c]
					}
				}
			}
		}
	}
}

// UniformState returns the conserved variables of a uniform flow with
// density rho, velocity (u,v,w) and pressure p.
func UniformState(rho, u, v, w, p float64) [NumFields]float64 {
	return [NumFields]float64{
		rho, rho * u, rho * v, rho * w,
		p/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w),
	}
}

// GaussianPulse returns an initial condition: a density/pressure bump of
// amplitude amp and width sigma centered at (cx,cy,cz) on a quiescent
// background — the acoustic test problem of the examples.
func GaussianPulse(cx, cy, cz, amp, sigma float64) func(x, y, z float64) [NumFields]float64 {
	return func(x, y, z float64) [NumFields]float64 {
		r2 := (x-cx)*(x-cx) + (y-cy)*(y-cy) + (z-cz)*(z-cz)
		b := amp * math.Exp(-r2/(2*sigma*sigma))
		rho := 1 + b
		p := 1/Gamma + b
		return UniformState(rho, 0, 0, 0, p)
	}
}

// chargeCompute advances the rank's virtual clock by the modeled cost of
// ops under traits on the configured machine (behavioral emulation of the
// compute phases between messages). The charge is scaled by the
// per-element work weights (Config.HotElems): every charged kernel is
// volume-proportional, so a rank's compute cost is the mean weight of
// its elements times the structural cost. The advance (including any
// straggler compute factor) is also accumulated into kernelSec, the
// measured kernel time the load balancer's cost model reads.
func (s *Solver) chargeCompute(ops sem.OpCount, tr hw.Traits) {
	s.Ops = s.Ops.Plus(ops)
	t := hw.Time(s.Cfg.Machine, hw.Ops{Mul: ops.Mul, Add: ops.Add, Load: ops.Load, Store: ops.Store}, tr)
	t *= s.workScale
	clock := s.Rank.Clock()
	before := clock.Now()
	clock.Advance(t)
	s.kernelSec += clock.Now() - before
}

// KernelSeconds returns the cumulative modeled compute seconds charged on
// this rank (virtual-clock advance of every kernel, including straggler
// compute factors) — the measurement feed of the load balancer.
func (s *Solver) KernelSeconds() float64 { return s.kernelSec }

// ElemCostShares fills dst (grown if needed) with each local element's
// share of this rank's compute charge: weight_e / sum(weights), summing
// to 1. Multiplying by a measured kernel-seconds delta attributes rank
// time to elements.
func (s *Solver) ElemCostShares(dst []float64) []float64 {
	nel := s.Local.Nel
	if cap(dst) < nel {
		dst = make([]float64, nel)
	}
	dst = dst[:nel]
	for e := 0; e < nel; e++ {
		dst[e] = s.elemW[e] / s.wSum
	}
	return dst
}

// Ownership returns the current element->rank map (building the uniform
// one on first use when the run started from the static box split).
func (s *Solver) Ownership() *mesh.Ownership {
	if s.ow == nil {
		s.ow = s.Local.Box.UniformOwnership()
	}
	return s.ow
}

// TraceSpan opens a named profiler region + telemetry span on this rank
// (for subsystems layered on the solver, e.g. the load balancer's
// rebalance epochs). Close the returned func to end it.
func (s *Solver) TraceSpan(name string, cat obs.Category) func() {
	return s.span(name, cat)
}

// derivTraits returns the hw traits matching the configured kernel
// variant and direction.
func derivTraits(dir sem.Direction, v sem.KernelVariant) hw.Traits {
	switch {
	case dir == sem.DirR && v == sem.Optimized:
		return hw.DudrOptimized
	case dir == sem.DirR:
		return hw.DudrBasic
	case dir == sem.DirS && v == sem.Optimized:
		return hw.DudsOptimized
	case dir == sem.DirS:
		return hw.DudsBasic
	case dir == sem.DirT && v == sem.Optimized:
		return hw.DudtOptimized
	default:
		return hw.DudtBasic
	}
}

// pointwiseTraits models simple streaming arithmetic (flux evaluation,
// vector updates).
var pointwiseTraits = hw.Traits{VecFrac: 0.6, OverheadPerFlop: 0.3, MissRate: 0.01}

// TotalMass returns the global integral of the density field — conserved
// exactly by the scheme on periodic domains. Collective (uses the vector
// reduction path).
func (s *Solver) TotalMass() float64 {
	return s.Integrate(IRho)
}

// Integrate returns the global integral of one conserved field, using LGL
// quadrature and an allreduce vector reduction (the paper's "vector
// reductions" communication class).
func (s *Solver) Integrate(field int) float64 {
	if field < 0 || field >= NumFields {
		panic(fmt.Sprintf("solver: field %d out of range", field))
	}
	n := s.Cfg.N
	n3 := n * n * n
	jac := 1.0 / (s.rx * s.rx * s.rx) // dV = (h/2)^3 dr ds dt
	local := 0.0
	for e := 0; e < s.Local.Nel; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				wjk := s.Ref.W[j] * s.Ref.W[k]
				row := e*n3 + n*j + n*n*k
				for i := 0; i < n; i++ {
					local += s.Ref.W[i] * wjk * s.U[field][row+i]
				}
			}
		}
	}
	s.Rank.SetSite("glsum")
	out := s.Rank.Allreduce(comm.OpSum, []float64{local * jac})
	s.Rank.SetSite("")
	return out[0]
}
