package solver

import (
	"math"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/sem"
)

// MaxWaveSpeed computes the global maximum |velocity| + sound speed — the
// Lax-Friedrichs dissipation coefficient and the CFL speed. Collective
// (allreduce max, one of the mini-app's vector reductions).
func (s *Solver) MaxWaveSpeed() float64 {
	popPhase := s.Rank.Clock().PushPhase(obs.PhaseOf("wave_speed", obs.CatKernel))
	stop := s.Prof.Start("wave_speed")
	stopSpan := s.rt.Span("wave_speed", obs.CatKernel)
	// Per-slot partial maxima: max is order-insensitive, so chunked
	// partials merged on the rank goroutine are bit-identical to the
	// serial sweep at any worker count.
	part := s.wsPart
	for i := range part {
		part[i] = 0
	}
	s.pool.ForSlots(len(s.U[IRho]), func(slot, lo, hi int) {
		pm := 0.0
		var u [NumFields]float64
		for i := lo; i < hi; i++ {
			for c := 0; c < NumFields; c++ {
				u[c] = s.U[c][i]
			}
			inv := 1 / u[IRho]
			speed2 := (u[IMomX]*u[IMomX] + u[IMomY]*u[IMomY] + u[IMomZ]*u[IMomZ]) * inv * inv
			p := pressure(&u)
			cs := math.Sqrt(Gamma * p * inv)
			if v := math.Sqrt(speed2) + cs; v > pm {
				pm = v
			}
		}
		part[slot] = pm
	})
	local := 0.0
	for _, v := range part {
		if v > local {
			local = v
		}
	}
	stop()
	s.chargeCompute(sem.OpCount{Mul: int64(len(s.U[IRho])) * 8, Add: int64(len(s.U[IRho])) * 5,
		Load: int64(len(s.U[IRho])) * NumFields, Store: 0}, pointwiseTraits)
	stopSpan()
	popPhase()
	popPhase = s.Rank.Clock().PushPhase(obs.PhaseOf("glmax", obs.CatComm))
	defer popPhase()
	stopRed := s.rt.Span("glmax", obs.CatComm)
	s.Rank.SetSite("glmax")
	out := s.Rank.Allreduce(comm.OpMax, []float64{local})
	s.Rank.SetSite("")
	stopRed()
	s.lambda = out[0]
	return out[0]
}

// StableDt returns a CFL-stable time step for the current state:
// dt = CFL * h / (N^2 * lambda), the spectral-element CFL rule with the
// minimum node spacing scaling as h/N^2. Collective.
func (s *Solver) StableDt() float64 {
	lam := s.MaxWaveSpeed()
	if lam == 0 {
		lam = 1
	}
	h := 1.0 // unit-cube elements
	n := float64(s.Cfg.N)
	return s.Cfg.CFL * h / (n * n * lam)
}

// Step advances the state by one SSP-RK3 step of size dt. Collective.
func (s *Solver) Step(dt float64) {
	stop := s.span("timestep", obs.CatStep)
	defer stop()

	vol := len(s.U[IRho])

	// Stage 1: u1 = U + dt RHS(U).
	s.rhsEval(&s.U)
	stopUpd := s.span("rk_update", obs.CatRK)
	for c := 0; c < NumFields; c++ {
		uc, rc, o := s.U[c], s.rhs[c], s.u1[c]
		s.pool.For(vol, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				o[i] = uc[i] + dt*rc[i]
			}
		})
	}
	stopUpd()
	// Stage 2: u2 = 3/4 U + 1/4 (u1 + dt RHS(u1)).
	s.rhsEval(&s.u1)
	stopUpd = s.span("rk_update", obs.CatRK)
	for c := 0; c < NumFields; c++ {
		uc, u1c, rc, o := s.U[c], s.u1[c], s.rhs[c], s.u2[c]
		s.pool.For(vol, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				o[i] = 0.75*uc[i] + 0.25*(u1c[i]+dt*rc[i])
			}
		})
	}
	stopUpd()
	// Stage 3: U = 1/3 U + 2/3 (u2 + dt RHS(u2)).
	s.rhsEval(&s.u2)
	stopUpd = s.span("rk_update", obs.CatRK)
	for c := 0; c < NumFields; c++ {
		uc, u2c, rc := s.U[c], s.u2[c], s.rhs[c]
		s.pool.For(vol, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				uc[i] = uc[i]/3 + 2.0/3.0*(u2c[i]+dt*rc[i])
			}
		})
	}
	s.chargeCompute(sem.OpCount{Mul: int64(vol) * NumFields * 6, Add: int64(vol) * NumFields * 4,
		Load: int64(vol) * NumFields * 8, Store: int64(vol) * NumFields * 3}, pointwiseTraits)
	stopUpd()

	// Spectral filter (shock-capturing proxy): attenuate the highest
	// Legendre modes of every conserved field.
	if s.filterMat != nil {
		stopF := s.span("spectral_filter", obs.CatKernel)
		var ops sem.OpCount
		for c := 0; c < NumFields; c++ {
			ops = ops.Plus(sem.FilterElements(s.filterMat, s.Cfg.N, s.U[c], s.Local.Nel,
				s.Cfg.FilterStrength, s.filterScratch))
		}
		s.chargeCompute(ops, pointwiseTraits)
		stopF()
	}
}

// stepTelemetry emits this rank's share of the finished step into the
// configured step collector: the virtual clock and per-bucket MPI
// deltas since the previous step, split into compute / wait / comm
// modeled seconds. It reads clocks and profiles but advances nothing,
// so the modeled run is identical with telemetry on or off.
func (s *Solver) stepTelemetry(step int, dt float64) {
	s.simTime += dt
	if s.Cfg.Overlap {
		// Cumulative modeled comm seconds this rank hid behind interior
		// compute, charged as per-step deltas (the registry is shared, so
		// the gauge sums over ranks).
		if h := s.Rank.Clock().OverlapHiddenSeconds(); h > s.prevHidden {
			s.Cfg.Metrics.Gauge("overlap_hidden_seconds").Add(h - s.prevHidden)
			s.prevHidden = h
		}
	}
	if s.Cfg.Steps == nil {
		return
	}
	var dg map[string]float64
	if s.Cfg.StepDiag != nil {
		dg = s.Cfg.StepDiag(s)
	}
	tot := s.Rank.Profile().Totals()
	vt := s.Rank.Clock().Now()
	commS := tot.Modeled - s.prevSplit.Modeled
	compute := (vt - s.prevVT) - commS
	if compute < 0 {
		compute = 0
	}
	s.Cfg.Steps.Report(step, s.simTime, dt, s.gsh.Method().String(), obs.RankStep{
		Rank:    s.Rank.WorldID(),
		VT:      vt,
		Compute: compute,
		Wait:    tot.Wait - s.prevSplit.Wait,
		Comm:    commS,
		Bytes:   tot.BytesSent - s.prevSplit.BytesSent,
	}, dg)
	s.prevSplit = tot
	s.prevVT = vt
}

// DtController implements growth-limited adaptive time stepping (the
// "adaptive time stepping" item of the paper's Section VII roadmap): the
// step follows the CFL-stable dt of the evolving state, but step-to-step
// growth is capped so the integrator cannot leap after a transient lull
// in the wave speed, and any shrink is taken immediately.
type DtController struct {
	// MaxGrowth caps dt_{n+1}/dt_n (default 1.1).
	MaxGrowth float64
	prev      float64
}

// Next returns the time step to use given the currently stable dt.
func (c *DtController) Next(stable float64) float64 {
	g := c.MaxGrowth
	if g <= 1 {
		g = 1.1
	}
	dt := stable
	if c.prev > 0 && dt > c.prev*g {
		dt = c.prev * g
	}
	c.prev = dt
	return dt
}

// RunAdaptive advances steps timesteps under a growth-limited adaptive
// controller and returns the summary plus the dt history. Collective.
func (s *Solver) RunAdaptive(steps int, ctl *DtController) (Report, []float64) {
	if ctl == nil {
		ctl = &DtController{}
	}
	hist := make([]float64, 0, steps)
	var dt float64
	for i := 0; i < steps; i++ {
		dt = ctl.Next(s.StableDt())
		s.Step(dt)
		s.stepTelemetry(i, dt)
		hist = append(hist, dt)
	}
	return s.FinishReport(steps, dt), hist
}

// Report summarizes a Run.
type Report struct {
	Steps     int
	Dt        float64
	Mass      float64 // global density integral after the run
	Energy    float64 // global energy integral after the run
	WaveSpeed float64 // final lambda
	Ops       sem.OpCount
}

// Run advances the solver steps timesteps, recomputing the stable dt and
// wave speed each step (the per-step vector reductions of the real code),
// and returns a summary. Collective.
func (s *Solver) Run(steps int) Report {
	return s.RunWith(steps, nil)
}

// RunWith is Run with a per-step hook: after is called at the end of
// every timestep (post-telemetry). The hook may be collective — the load
// balancer's epoch logic runs here — but must be called consistently on
// every rank.
func (s *Solver) RunWith(steps int, after func(step int)) Report {
	var dt float64
	for i := 0; i < steps; i++ {
		dt = s.AdvanceStep(i)
		if after != nil {
			after(i)
		}
	}
	return s.FinishReport(steps, dt)
}

// AdvanceStep runs one full timestep — the stable-dt reduction, the
// SSP-RK3 step, and step telemetry — and returns the dt used. Collective.
// External step drivers (e.g. the fault runner, whose loop interleaves
// heartbeats, auto-checkpoints and recovery between steps) use this
// instead of Run and finish with FinishReport.
func (s *Solver) AdvanceStep(step int) float64 {
	dt := s.StableDt()
	s.Step(dt)
	s.stepTelemetry(step, dt)
	return dt
}

// FinishReport closes the profiler and summarizes the run — the shared
// tail of Run/RunWith and of external step drivers.
func (s *Solver) FinishReport(steps int, dt float64) Report {
	s.Prof.Finish()
	return Report{
		Steps:     steps,
		Dt:        dt,
		Mass:      s.TotalMass(),
		Energy:    s.Integrate(IEnergy),
		WaveSpeed: s.lambda,
		Ops:       s.Ops,
	}
}

// SimTime returns the accumulated simulated time.
func (s *Solver) SimTime() float64 { return s.simTime }

// SetSimTime overwrites the accumulated simulated time (checkpoint
// restore onto a freshly built solver).
func (s *Solver) SetSimTime(t float64) { s.simTime = t }
