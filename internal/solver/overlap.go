package solver

import (
	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/sem"
)

// Compute/communication overlap (Config.Overlap): the classic DG/SEM
// latency-hiding optimization the paper's scaling discussion motivates —
// the gs_op exchange cost grows into the dominant term at scale while
// interior elements sit ready to compute. Each rank classifies its
// elements from the gs topology: an element is *boundary* when any of its
// face points carries a remotely-shared id, *interior* otherwise. The
// right-hand side then runs boundary face extraction first, posts the
// split-phase exchange (gs.Pending.Begin), computes every interior volume
// kernel while the messages are in flight, completes the exchange
// (Finish), and computes the boundary volume kernels — so the modeled
// step time becomes max(interior compute, exchange) + boundary compute
// instead of the serial sum. Every kernel is element-local and the gs
// combine order is preserved exactly, so results are bit-identical with
// overlap on or off.

// rhsEval dispatches one right-hand-side evaluation to the overlap or
// blocking pipeline.
func (s *Solver) rhsEval(in *[NumFields][]float64) {
	if s.Cfg.Overlap {
		s.computeRHSOverlap(in)
	} else {
		s.computeRHS(in)
	}
}

// rebuildOverlap (re)derives the interior/boundary element classification
// from the current gs topology and recreates the split-phase exchange
// handles. It must run whenever the gs handle is rebuilt — construction,
// Remap (load balancing), and the post-Shrink solver rebuild — so the
// element sets always match the live topology. No-op unless
// Config.Overlap is set.
func (s *Solver) rebuildOverlap() {
	if !s.Cfg.Overlap {
		return
	}
	nel := s.Local.Nel
	fpe := sem.NFaces * s.Cfg.N * s.Cfg.N
	shared := s.gsh.RemoteShared()
	s.bndElem = make([]bool, nel)
	for e := 0; e < nel; e++ {
		base := e * fpe
		for i := 0; i < fpe; i++ {
			if shared[base+i] {
				s.bndElem[e] = true
				break
			}
		}
	}
	s.intRuns = s.intRuns[:0]
	s.bndRuns = s.bndRuns[:0]
	for e := 0; e < nel; {
		lo := e
		bnd := s.bndElem[e]
		for e < nel && s.bndElem[e] == bnd {
			e++
		}
		if bnd {
			s.bndRuns = append(s.bndRuns, [2]int{lo, e})
		} else {
			s.intRuns = append(s.intRuns, [2]int{lo, e})
		}
	}
	// Fresh Pendings per gs handle: both are created in the same order on
	// every rank, so their deterministic tags agree globally.
	s.pendU = s.gsh.NewPending()
	s.pendF = s.gsh.NewPending()
}

// InteriorElems returns how many local elements have no remotely-shared
// face point (only meaningful with Config.Overlap).
func (s *Solver) InteriorElems() int {
	n := 0
	for _, run := range s.intRuns {
		n += run[1] - run[0]
	}
	return n
}

// copyTraces copies the face traces of the given element runs from src
// into dst (the exchange working copies).
func (s *Solver) copyTraces(dst, src *[NumFields][]float64, runs [][2]int) {
	fpe := sem.NFaces * s.Cfg.N * s.Cfg.N
	for _, run := range runs {
		lo, hi := run[0]*fpe, run[1]*fpe
		for c := 0; c < NumFields; c++ {
			copy(dst[c][lo:hi], src[c][lo:hi])
		}
	}
}

// computeRHSOverlap is computeRHS with the interior/boundary split: the
// same helpers over reordered element runs, with the exchange posted as
// soon as the boundary traces exist. The inviscid path overlaps both
// exchanges with the whole interior phase; the viscous path must run the
// boundary volume kernels before the flux exchange can start (they
// extract the viscous flux traces), so its flux exchange overlaps the
// interior phase only.
func (s *Solver) computeRHSOverlap(in *[NumFields][]float64) {
	viscous := s.Cfg.Mu > 0

	s.rhsPrimitive(in)
	if viscous {
		s.computeGradients(in)
	}

	if !viscous {
		// Boundary faces first, then both exchanges in flight across the
		// entire interior phase.
		s.faceExtractRuns(in, s.bndRuns)
		s.surfaceFluxRuns(s.bndRuns)
		s.copyTraces(&s.exU, &s.faceU, s.bndRuns)
		s.copyTraces(&s.exF, &s.faceF, s.bndRuns)
		stop := s.span("gs_op", obs.CatGS)
		s.pendU.Begin(s.exU[:], comm.OpSum)
		s.pendF.Begin(s.exF[:], comm.OpSum)
		stop()

		s.volumeRuns(in, s.intRuns, false)
		s.faceExtractRuns(in, s.intRuns)
		s.surfaceFluxRuns(s.intRuns)
		s.copyTraces(&s.exU, &s.faceU, s.intRuns)
		s.copyTraces(&s.exF, &s.faceF, s.intRuns)

		stop = s.span("gs_op", obs.CatGS)
		s.pendU.Finish()
		s.pendF.Finish()
		stop()

		s.volumeRuns(in, s.bndRuns, false)
	} else {
		// The state exchange starts as soon as the boundary traces are
		// extracted; the flux exchange needs the boundary volume pass
		// (which extracts the viscous flux traces) before it can start.
		s.faceExtractRuns(in, s.bndRuns)
		s.copyTraces(&s.exU, &s.faceU, s.bndRuns)
		stop := s.span("gs_op", obs.CatGS)
		s.pendU.Begin(s.exU[:], comm.OpSum)
		stop()

		s.volumeRuns(in, s.bndRuns, true)
		s.copyTraces(&s.exF, &s.faceF, s.bndRuns)
		stop = s.span("gs_op", obs.CatGS)
		s.pendF.Begin(s.exF[:], comm.OpSum)
		stop()

		s.volumeRuns(in, s.intRuns, true)
		s.faceExtractRuns(in, s.intRuns)
		s.copyTraces(&s.exU, &s.faceU, s.intRuns)
		s.copyTraces(&s.exF, &s.faceF, s.intRuns)

		stop = s.span("gs_op", obs.CatGS)
		s.pendU.Finish()
		s.pendF.Finish()
		stop()
	}

	s.rhsTail()
}
