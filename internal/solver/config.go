// Package solver is the CMT-bone mini-app core: an explicit discontinuous
// Galerkin spectral-element solver for the compressible Euler equations
// (the conservation law of the paper's Section III with zero source
// terms, matching the current CMT-nek state the mini-app abstracts). One
// time step exercises exactly the kernels the paper identifies:
//
//   - the derivative (ax_) kernel — small matrix multiplies applying the
//     N x N derivative operator over (N,N,N,Nel) data — for the flux
//     divergence;
//   - full2face_cmt surface extraction and its inverse;
//   - gs_op nearest-neighbor exchange through the gather-scatter library
//     for the numerical flux;
//   - vector reductions (allreduce) for the CFL time step and wave speed;
//   - optionally the dealiasing map to a finer reference mesh and back.
package solver

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/hw"
	"repro/internal/mesh"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/sem"
)

// NumFields is the number of conserved variables: density, three momentum
// components, and total energy.
const NumFields = 5

// Conserved-variable indices.
const (
	IRho = iota
	IMomX
	IMomY
	IMomZ
	IEnergy
)

// Gamma is the ratio of specific heats of the ideal gas.
const Gamma = 1.4

// BoundaryCondition selects the non-periodic boundary treatment.
type BoundaryCondition int

// Boundary conditions.
const (
	// BCFreestream leaves boundary faces uncorrected (the interior flux
	// is its own numerical flux): waves pass out with no reflection at
	// leading order. The mini-app default.
	BCFreestream BoundaryCondition = iota
	// BCWall is a slip (reflective) wall: the numerical flux sees a
	// mirror ghost state with the normal momentum negated, sealing the
	// box — zero mass and energy flux through the boundary.
	BCWall
)

// String implements fmt.Stringer.
func (b BoundaryCondition) String() string {
	switch b {
	case BCFreestream:
		return "freestream"
	case BCWall:
		return "wall"
	}
	return fmt.Sprintf("BoundaryCondition(%d)", int(b))
}

// Config describes one CMT-bone run. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	// N is the number of LGL points per direction per element (the
	// paper's "number of grid points along any one direction", 5-25).
	N int
	// ProcGrid is the processor grid; its product must equal the
	// communicator size.
	ProcGrid [3]int
	// ElemGrid is the global element grid; divisible by ProcGrid.
	ElemGrid [3]int
	// Periodic marks wrapping directions. The mini-app default is fully
	// periodic (no physical boundaries to model).
	Periodic [3]bool
	// BC selects the treatment of non-periodic domain boundaries.
	BC BoundaryCondition
	// Variant selects the derivative-kernel loop structure.
	Variant sem.KernelVariant
	// GSMethod is the gather-scatter exchange algorithm; ignored when
	// AutoTune is set.
	GSMethod gs.Method
	// AutoTune, when set, runs the startup gather-scatter tuner (the
	// paper's initialization step) and uses its choice.
	AutoTune bool
	// TuneTrials is the number of timing trials per method (default 3).
	TuneTrials int
	// TuneMxM, when set, runs the small-matrix kernel autotuner once per
	// process at solver construction (sem.TuneMxMDefault): every mxm
	// kernel — generated, SIMD, specialized — is verified bit-exact and
	// timed at the derivative kernel's dominant shapes, and MxMAuto call
	// sites dispatch to each shape's measured winner. All candidates are
	// bit-identical, so tuning never changes results, only wall time.
	TuneMxM bool
	// Dealias enables the fine-mesh round trip each step.
	Dealias bool
	// GaussDealias switches the dealiasing fine mesh from Lobatto to
	// interior Gauss points (Nek5000's over-integration rule). Only
	// meaningful with Dealias.
	GaussDealias bool
	// FilterCutoff, when > 0, enables the modal spectral filter (the
	// shock-capturing proxy of the CMT-nek roadmap): Legendre modes
	// below the cutoff pass untouched, higher modes are attenuated
	// after every step.
	FilterCutoff int
	// FilterStrength blends the filtered field: u <- (1-a)u + a Fu.
	// Default 0.05 when the filter is enabled.
	FilterStrength float64
	// PackedExchange moves all five conserved-variable face traces per
	// gather-scatter call in one packed message per neighbor
	// (gs_op_fields) instead of one message per field. Default false:
	// per-field messages, matching the paper's profile.
	PackedExchange bool
	// Overlap enables compute/communication overlap in the right-hand
	// side: each rank classifies its elements into interior (no remotely
	// shared face points) and boundary sets from the gs topology, posts
	// the face exchange as soon as the boundary traces exist, and runs
	// the interior volume kernels while the messages are in flight
	// (gslib's split-phase gs_op). Pure reordering of independent work:
	// results are bit-identical with overlap on or off; only the modeled
	// time changes (exchange latency hides behind interior compute).
	Overlap bool
	// Mu is the dynamic viscosity; > 0 enables the compressible
	// Navier-Stokes viscous flux path (CMT-nek's full governing
	// equations). Zero — the default — is the inviscid Euler path the
	// current CMT-bone exercises.
	Mu float64
	// Pr is the Prandtl number for the Fourier heat flux (default 0.72).
	Pr float64
	// CFL is the time-step safety factor (default 0.3).
	CFL float64
	// Machine is the processor model used to advance the virtual clock
	// for behavioral emulation (default hw.Generic).
	Machine hw.Machine

	// HotElems skews the modeled per-element compute cost: global
	// element id -> work multiplier (> 0; absent elements cost 1). It
	// models the non-uniform element cost of multiphase flow — particle
	// clouds concentrating in a few elements — without changing the
	// physics: only the virtual clock feels it, so solutions are
	// bit-identical with any skew. This is the knob load-imbalance
	// scenarios are built from; the load balancer migrates hot elements
	// to even the skew out. Shared by all ranks.
	HotElems map[int64]float64

	// Ownership, when non-nil, replaces the uniform box split with an
	// explicit element->rank map (e.g. restored from a checkpoint taken
	// after a rebalance). It must be built over the same Box this config
	// describes and be identical on every rank.
	Ownership *mesh.Ownership

	// Ref, when non-nil, is a prebuilt reference element reused instead
	// of rebuilding the LGL (or Gauss-dealiasing) operators — the
	// operator-matrix half of a setup-artifact cache. It must have been
	// built for the same N and the same GaussDealias choice; New
	// verifies the order and falls back to a fresh build on mismatch.
	Ref *sem.Ref1D

	// GSTopo, when non-nil, is a per-rank table of prebuilt
	// gather-scatter topologies (indexed by rank id, extracted by
	// gs.GS.Topology from an identical earlier run): ranks with an entry
	// skip the collective gs_setup discovery phase entirely. It only
	// applies to the initial setup over the starting partition; element
	// migration (Remap, post-Shrink rebuilds) always rediscovers.
	// Entries must cover all ranks or none — a partial table would leave
	// some ranks waiting in a collective the others skip.
	GSTopo []*gs.Topology

	// Workers is the intra-rank worker-pool width for the
	// element-indexed kernels (two-level concurrency: ranks x workers).
	// Elements write disjoint output, so results are bit-identical at
	// any worker count, and the modeled virtual time — charged
	// analytically from structural op counts — is unchanged; workers
	// move wall time only. 0 or 1 means serial. See pool.DefaultWorkers
	// for the cmd-level default.
	Workers int
	// Metrics, when non-nil, receives the worker pool's occupancy and
	// steal counters (pool_jobs, pool_chunks, pool_steals,
	// pool_busy_workers). Shared by all ranks.
	Metrics *obs.Registry

	// Obs, when non-nil, receives per-rank telemetry spans for every
	// timestep, RK stage, kernel, and exchange (export with
	// Obs.WritePerfetto). Shared by all ranks; recording never touches
	// the virtual clock, so modeled results are unchanged.
	Obs *obs.Tracer
	// Steps, when non-nil, receives one step-metrics record per
	// timestep per rank (the JSONL stream). Shared by all ranks.
	Steps *obs.StepCollector
	// StepDiag, when non-nil, runs once per timestep after the step and
	// its result is embedded in the step record. It executes on every
	// rank (so it may be collective, e.g. diag.StepScalars); only
	// meaningful together with Steps.
	StepDiag func(*Solver) map[string]float64
}

// DefaultConfig returns a small, fully periodic setup for p ranks:
// near-cubic processor grid, elemsPerDir local elements per direction per
// rank.
func DefaultConfig(p, n, elemsPerDir int) Config {
	pg := comm.FactorGrid(p)
	return Config{
		N:        n,
		ProcGrid: pg,
		ElemGrid: [3]int{pg[0] * elemsPerDir, pg[1] * elemsPerDir, pg[2] * elemsPerDir},
		Periodic: [3]bool{true, true, true},
		Variant:  sem.Optimized,
		GSMethod: gs.Pairwise,
		CFL:      0.3,
		Machine:  hw.Generic,
	}
}

// PaperFig7Config reproduces the Figure 7 problem setup: 256 processors
// (8 x 8 x 4), 100 elements per process (5 x 5 x 4), 25600 elements
// total, 10 grid points per element direction.
func PaperFig7Config() Config {
	cfg := DefaultConfig(256, 10, 1)
	cfg.ProcGrid = [3]int{8, 8, 4}
	cfg.ElemGrid = [3]int{40, 40, 16}
	return cfg
}

// Validate checks internal consistency against a communicator of size p.
func (c *Config) Validate(p int) error {
	if c.N < 2 {
		return fmt.Errorf("solver: N must be >= 2, got %d", c.N)
	}
	if prod := c.ProcGrid[0] * c.ProcGrid[1] * c.ProcGrid[2]; prod != p {
		// After a rank failure the survivors rebuild the solver on a
		// shrunken communicator while keeping the original box (and so
		// the original ProcGrid, which checkpoint metadata is validated
		// against). That is consistent exactly when the ownership map
		// leaves every rank outside the communicator empty.
		if c.Ownership == nil || prod < p {
			return fmt.Errorf("solver: proc grid %v does not tile %d ranks", c.ProcGrid, p)
		}
		for q := p; q < prod; q++ {
			if c.Ownership.Count(q) > 0 {
				return fmt.Errorf("solver: proc grid %v does not tile %d ranks (rank %d outside the communicator owns %d elements)",
					c.ProcGrid, p, q, c.Ownership.Count(q))
			}
		}
	}
	for d := 0; d < 3; d++ {
		if c.ElemGrid[d]%c.ProcGrid[d] != 0 {
			return fmt.Errorf("solver: elem grid %v not divisible by proc grid %v", c.ElemGrid, c.ProcGrid)
		}
	}
	if c.CFL <= 0 {
		return fmt.Errorf("solver: CFL must be positive, got %g", c.CFL)
	}
	for gid, m := range c.HotElems {
		if m <= 0 {
			return fmt.Errorf("solver: hot element %d has non-positive multiplier %g", gid, m)
		}
	}
	if c.GSTopo != nil {
		// All ranks or none: gs_setup discovery is collective, so a rank
		// skipping it while another runs it would deadlock the setup.
		if len(c.GSTopo) < p {
			return fmt.Errorf("solver: GSTopo covers %d ranks, communicator has %d", len(c.GSTopo), p)
		}
		for q := 0; q < p; q++ {
			if c.GSTopo[q] == nil {
				return fmt.Errorf("solver: GSTopo entry for rank %d is nil (table must cover all ranks or none)", q)
			}
		}
	}
	return nil
}

// normalize fills defaulted fields.
func (c *Config) normalize() {
	if c.CFL == 0 {
		c.CFL = 0.3
	}
	if c.TuneTrials == 0 {
		c.TuneTrials = 3
	}
	if c.Machine.Name == "" {
		c.Machine = hw.Generic
	}
	if c.FilterCutoff > 0 && c.FilterStrength == 0 {
		c.FilterStrength = 0.05
	}
	if c.Pr == 0 {
		c.Pr = 0.72
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
}

// CommOptions returns the comm.Options matching the configuration (grid
// and periodicity for Cartesian helpers and hop-distance modeling).
func (c Config) CommOptions(model netmodel.Model) comm.Options {
	return comm.Options{Model: model, Grid: c.ProcGrid, Periodic: c.Periodic}
}

// Mesh builds the global box description.
func (c Config) Mesh() (*mesh.Box, error) {
	return mesh.NewBox(c.ProcGrid, c.ElemGrid, c.N, c.Periodic)
}
