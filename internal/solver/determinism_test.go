package solver

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/netmodel"
)

// runState runs a short multi-rank simulation with the given worker
// count and returns every rank's final conserved state plus the run
// report and modeled makespan.
func runState(t *testing.T, workers int, mutate func(*Config)) ([][NumFields][]float64, []Report, float64) {
	t.Helper()
	const np = 4
	cfg := DefaultConfig(np, 5, 2)
	cfg.Workers = workers
	if mutate != nil {
		mutate(&cfg)
	}
	states := make([][NumFields][]float64, np)
	reports := make([]Report, np)
	stats, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(GaussianPulse(1, 1, 1, 0.1, 0.5))
		reports[r.ID()] = s.Run(3)
		for c := 0; c < NumFields; c++ {
			states[r.ID()][c] = append([]float64(nil), s.U[c]...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return states, reports, stats.MaxVirtualTime()
}

// TestWorkersBitIdentical is the tentpole's correctness contract: the
// intra-rank worker pool must not change a single bit of the solution,
// the report, or the modeled makespan at any worker count. Elements
// write disjoint output slices and modeled time is charged analytically
// on the rank goroutine, so workers move wall time only.
func TestWorkersBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"euler+dealias", func(c *Config) { c.Dealias = true }},
		{"viscous", func(c *Config) { c.Mu = 0.02 }},
		{"wall-bc", func(c *Config) {
			c.Periodic = [3]bool{false, true, true}
			c.BC = BCWall
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			refStates, refReports, refVT := runState(t, 1, tc.mutate)
			for _, w := range []int{2, 4, 7} {
				states, reports, vt := runState(t, w, tc.mutate)
				if vt != refVT {
					t.Fatalf("workers=%d modeled makespan %v != serial %v", w, vt, refVT)
				}
				for rank := range states {
					if reports[rank] != refReports[rank] {
						t.Fatalf("workers=%d rank %d report %+v != serial %+v",
							w, rank, reports[rank], refReports[rank])
					}
					for c := 0; c < NumFields; c++ {
						for i, v := range states[rank][c] {
							if math.Float64bits(v) != math.Float64bits(refStates[rank][c][i]) {
								t.Fatalf("workers=%d rank %d field %d point %d: %x != %x",
									w, rank, c, i, math.Float64bits(v),
									math.Float64bits(refStates[rank][c][i]))
							}
						}
					}
				}
			}
		})
	}
}

// TestWorkersSourceAndFilter covers the remaining pool-touched paths
// (source-term accumulation; the spectral filter stays serial but must
// coexist with the pool) under workers>1.
func TestWorkersSourceAndFilter(t *testing.T) {
	mutate := func(c *Config) {
		c.FilterCutoff = 3
	}
	run := func(workers int) [][NumFields][]float64 {
		const np = 2
		cfg := DefaultConfig(np, 5, 2)
		cfg.Workers = workers
		mutate(&cfg)
		states := make([][NumFields][]float64, np)
		_, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			defer s.Close()
			s.SetInitial(GaussianPulse(1, 1, 1, 0.1, 0.5))
			src := s.EnableSource()
			for i := range src[IEnergy] {
				src[IEnergy][i] = 1e-3
			}
			s.Run(2)
			for c := 0; c < NumFields; c++ {
				states[r.ID()][c] = append([]float64(nil), s.U[c]...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return states
	}
	ref := run(1)
	got := run(3)
	for rank := range ref {
		for c := 0; c < NumFields; c++ {
			for i, v := range got[rank][c] {
				if math.Float64bits(v) != math.Float64bits(ref[rank][c][i]) {
					t.Fatalf("rank %d field %d point %d differs with workers", rank, c, i)
				}
			}
		}
	}
}
