package solver

import (
	"math"
	"testing"

	"repro/internal/comm"
)

// shearWaveIC returns u_y = amp*sin(2 pi x / L) on a quiescent uniform
// background — the classic viscous-decay validation problem.
func shearWaveIC(lCells float64, amp float64) func(x, y, z float64) [NumFields]float64 {
	k := 2 * math.Pi / lCells
	return func(x, y, z float64) [NumFields]float64 {
		return UniformState(1, 0, amp*math.Sin(k*x), 0, 1/Gamma)
	}
}

// momentumYNorm returns the global L2 norm of the y-momentum.
func momentumYNorm(s *Solver) float64 {
	n := s.Cfg.N
	n3 := n * n * n
	local := 0.0
	for e := 0; e < s.Local.Nel; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					w := s.Ref.W[i] * s.Ref.W[j] * s.Ref.W[k] / 8
					v := s.U[IMomY][e*n3+i+n*j+n*n*k]
					local += w * v * v
				}
			}
		}
	}
	out := s.Rank.Allreduce(comm.OpSum, []float64{local})
	return math.Sqrt(out[0])
}

func TestViscousUniformFlowSteady(t *testing.T) {
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 5, 2)
		cfg.Mu = 0.05
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		want := UniformState(1.1, 0.2, -0.1, 0.3, 0.9)
		s.SetInitial(func(x, y, z float64) [NumFields]float64 { return want })
		s.Run(4)
		for c := 0; c < NumFields; c++ {
			for i, v := range s.U[c] {
				if math.Abs(v-want[c]) > 1e-10 {
					t.Errorf("viscous uniform flow drifted: field %d idx %d: %v vs %v", c, i, v, want[c])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShearWaveViscousDecayRate(t *testing.T) {
	// The y-momentum of a shear wave decays as exp(-nu k^2 t); the
	// measured rate (after subtracting the inviscid run's numerical
	// dissipation) must match the analytic rate.
	run := func(mu float64) (rate float64) {
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, 8, 2) // 2 elements/dir, L = 2
			cfg.Mu = mu
			cfg.CFL = 0.25
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(shearWaveIC(2, 0.01))
			e0 := momentumYNorm(s)
			elapsed := 0.0
			for elapsed < 0.5 {
				dt := s.StableDt()
				s.Step(dt)
				elapsed += dt
			}
			e1 := momentumYNorm(s)
			rate = math.Log(e0/e1) / elapsed
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rate
	}

	const mu = 0.02
	k := math.Pi // 2*pi/L with L = 2
	want := mu * k * k

	base := run(0)
	visc := run(mu)
	got := visc - base
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("viscous decay rate = %v (baseline %v), want %v +-15%%", got, base, want)
	}
	// Numerical dissipation must be a small correction, not the story.
	if base > 0.3*want {
		t.Fatalf("numerical dissipation %v too large vs physical %v", base, want)
	}
}

func TestViscousConservation(t *testing.T) {
	// Viscosity redistributes momentum and converts kinetic energy to
	// heat but conserves mass, total momentum, and total energy on a
	// periodic box.
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 6, 2)
		cfg.Mu = 0.03
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(shearWaveIC(float64(cfg.ElemGrid[0]), 0.05))
		m0 := s.TotalMass()
		e0 := s.Integrate(IEnergy)
		p0 := s.Integrate(IMomY)
		s.Run(8)
		if m1 := s.TotalMass(); math.Abs(m1-m0) > 1e-10*math.Abs(m0) {
			t.Errorf("mass drifted: %v -> %v", m0, m1)
		}
		if e1 := s.Integrate(IEnergy); math.Abs(e1-e0) > 1e-5*math.Abs(e0) {
			t.Errorf("total energy drifted: %v -> %v", e0, e1)
		}
		if p1 := s.Integrate(IMomY); math.Abs(p1-p0) > 1e-9 {
			t.Errorf("y-momentum drifted: %v -> %v", p0, p1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestViscousParallelMatchesSerial(t *testing.T) {
	run := func(p int, grid [3]int) []float64 {
		var out []float64
		_, err := comm.RunSimple(p, func(r *comm.Rank) error {
			cfg := Config{
				N: 5, ProcGrid: grid, ElemGrid: [3]int{2, 2, 2},
				Periodic: [3]bool{true, true, true}, CFL: 0.25, Mu: 0.02,
			}
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(shearWaveIC(2, 0.02))
			s.Run(3)
			if m := gatherGlobalDensity(s); m != nil {
				// flatten deterministically by global id order
				for id := int64(0); id < int64(len(m)); id++ {
					out = append(out, m[id]...)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1, [3]int{1, 1, 1})
	parallel := run(8, [3]int{2, 2, 2})
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("bad gather: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if math.Abs(serial[i]-parallel[i]) > 1e-9*(1+math.Abs(serial[i])) {
			t.Fatalf("viscous parallel run diverges at %d: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

func TestViscousAmplifiesDerivativeKernelCount(t *testing.T) {
	// The Navier-Stokes path adds 12 gradient passes per RHS: 27
	// direction passes per RHS vs 15 inviscid. With the Optimized
	// variant the 12 gradient passes run as one fused sweep per RHS
	// (span "ax_grad3_fused", 4 quantities x 3 directions each), so the
	// amplification is counted as fused calls times 12.
	count := func(mu float64) int64 {
		var calls int64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, 5, 1)
			cfg.Mu = mu
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(shearWaveIC(1, 0.01))
			s.Step(1e-4)
			for _, reg := range s.Prof.Flat() {
				switch reg.Name {
				case "ax_deriv_dudr", "ax_deriv_duds", "ax_deriv_dudt":
					calls += reg.Calls
				case "ax_grad3_fused":
					calls += reg.Calls * 12
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return calls
	}
	inviscid := count(0)
	viscous := count(0.01)
	// 3 RK stages: inviscid 3*15 = 45; viscous 3*27 = 81.
	if inviscid != 45 {
		t.Fatalf("inviscid deriv direction passes = %d, want 45", inviscid)
	}
	if viscous != 81 {
		t.Fatalf("viscous deriv direction passes = %d, want 81", viscous)
	}
}

// entropyWaveIC is an exact nonlinear Euler solution: a density wave
// advected unchanged at the uniform flow speed (pressure and velocity
// constant).
func entropyWaveIC(lCells, amp, u0 float64) func(x, y, z float64) [NumFields]float64 {
	k := 2 * math.Pi / lCells
	return func(x, y, z float64) [NumFields]float64 {
		rho := 1 + amp*math.Sin(k*x)
		return UniformState(rho, u0, 0, 0, 1/Gamma)
	}
}

func TestEntropyWaveSpectralConvergence(t *testing.T) {
	// Advect the wave for a fixed time and measure the density error
	// against the exact translated solution; the error must fall
	// steeply as N rises (spectral accuracy).
	const (
		u0  = 0.4
		amp = 0.02
		end = 0.5
	)
	errAt := func(n int) float64 {
		var maxErr float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, n, 2) // L = 2
			cfg.CFL = 0.2
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(entropyWaveIC(2, amp, u0))
			elapsed := 0.0
			for elapsed < end {
				dt := s.StableDt()
				if elapsed+dt > end {
					dt = end - elapsed
				}
				s.Step(dt)
				elapsed += dt
			}
			k := math.Pi
			nn := cfg.N
			n3 := nn * nn * nn
			for e := 0; e < s.Local.Nel; e++ {
				for kk := 0; kk < nn; kk++ {
					for j := 0; j < nn; j++ {
						for i := 0; i < nn; i++ {
							x, _, _ := s.PointCoords(e, i, j, kk)
							want := 1 + amp*math.Sin(k*(x-u0*end))
							got := s.U[IRho][e*n3+i+nn*j+nn*nn*kk]
							if d := math.Abs(got - want); d > maxErr {
								maxErr = d
							}
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return maxErr
	}
	coarse := errAt(4)
	fine := errAt(8)
	if fine >= coarse/8 {
		t.Fatalf("no spectral convergence: err(N=4)=%v err(N=8)=%v", coarse, fine)
	}
	if fine > 1e-4 {
		t.Fatalf("N=8 entropy wave error too large: %v", fine)
	}
}
