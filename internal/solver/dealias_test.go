package solver

import (
	"math"
	"testing"

	"repro/internal/comm"
)

func TestDealiasVariantsAgreeOnResolvedFields(t *testing.T) {
	// Both dealiasing rules (Lobatto and Gauss fine meshes) are exact
	// interpolation round trips for resolved fields, so a smooth run
	// must produce identical results with either — and with dealiasing
	// off.
	run := func(dealias, gauss bool) []float64 {
		var out []float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, 6, 2)
			cfg.Dealias = dealias
			cfg.GaussDealias = gauss
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(GaussianPulse(1, 1, 1, 0.05, 0.6))
			s.Run(3)
			out = append([]float64(nil), s.U[IEnergy]...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	off := run(false, false)
	lobatto := run(true, false)
	gauss := run(true, true)
	for i := range off {
		if math.Abs(off[i]-lobatto[i]) > 1e-9*(1+math.Abs(off[i])) {
			t.Fatalf("Lobatto dealiasing changed a resolved field at %d: %v vs %v",
				i, lobatto[i], off[i])
		}
		if math.Abs(off[i]-gauss[i]) > 1e-9*(1+math.Abs(off[i])) {
			t.Fatalf("Gauss dealiasing changed a resolved field at %d: %v vs %v",
				i, gauss[i], off[i])
		}
	}
}

func TestGaussDealiasRunsStable(t *testing.T) {
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 5, 2)
		cfg.Dealias = true
		cfg.GaussDealias = true
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		if s.Ref.XF[0] == -1 {
			t.Error("Gauss fine mesh should not contain endpoints")
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.1, 0.5))
		before := s.TotalMass()
		rep := s.Run(5)
		if math.Abs(rep.Mass-before) > 1e-10*math.Abs(before) {
			t.Errorf("mass drifted with Gauss dealiasing: %v -> %v", before, rep.Mass)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
