package solver

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/sem"
)

func TestUniformFlowIsSteady(t *testing.T) {
	// A uniform state is an exact steady solution: the numerical flux
	// equals the interior flux everywhere, so the RHS must vanish and
	// the state must be preserved to rounding over many steps.
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 5, 2)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		want := UniformState(1.2, 0.3, -0.2, 0.1, 0.8)
		s.SetInitial(func(x, y, z float64) [NumFields]float64 { return want })
		s.Run(5)
		for c := 0; c < NumFields; c++ {
			for i, v := range s.U[c] {
				if math.Abs(v-want[c]) > 1e-11 {
					t.Errorf("field %d drifted at %d: %v vs %v", c, i, v, want[c])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMassAndConservation(t *testing.T) {
	_, err := comm.RunSimple(4, func(r *comm.Rank) error {
		cfg := DefaultConfig(4, 6, 1)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(
			float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
			0.1, 0.5))
		before := s.TotalMass()
		energyBefore := s.Integrate(IEnergy)
		rep := s.Run(10)
		if math.Abs(rep.Mass-before) > 1e-10*math.Abs(before) {
			t.Errorf("mass not conserved: %v -> %v", before, rep.Mass)
		}
		// Momentum integrals are conserved too on a periodic box.
		for _, c := range []int{IMomX, IMomY, IMomZ} {
			if m := s.Integrate(c); math.Abs(m) > 1e-9 {
				t.Errorf("momentum %d drifted to %v", c, m)
			}
		}
		// Total (conserved) energy integral changes only through the LF
		// dissipation acting on the energy field's own flux — it must
		// stay bounded and close to the initial value.
		if math.Abs(rep.Energy-energyBefore) > 0.05*math.Abs(energyBefore) {
			t.Errorf("energy integral moved too much: %v -> %v", energyBefore, rep.Energy)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPulseStaysBoundedAndPropagates(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 6, 3) // 3x3x3 elements on one rank
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1.5, 1.5, 1.5, 0.05, 0.4))
		// Sample a point far from the pulse center: element (2,2,2).
		probe := func() float64 {
			e := s.Local.ElemIndex(2, 2, 2)
			n := cfg.N
			return s.U[IRho][e*n*n*n+(n-1)+n*(n-1)+n*n*(n-1)]
		}
		before := probe()
		for i := 0; i < 60; i++ {
			s.Step(s.StableDt())
		}
		after := probe()
		if math.Abs(after-before) < 1e-8 {
			t.Errorf("acoustic wave never reached the probe: %v -> %v", before, after)
		}
		// Bounded: no blowup anywhere.
		for _, v := range s.U[IRho] {
			if math.IsNaN(v) || v <= 0 || v > 2 {
				t.Errorf("density out of bounds: %v", v)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// gatherGlobalDensity collects the density field onto rank 0 keyed by
// global element id.
func gatherGlobalDensity(s *Solver) map[int64][]float64 {
	r := s.Rank
	n3 := s.Cfg.N * s.Cfg.N * s.Cfg.N
	if r.ID() != 0 {
		for e := 0; e < s.Local.Nel; e++ {
			g := s.Local.GlobalElemCoords(e)
			payload := append([]float64{float64(s.Local.Box.GlobalElemID(g))},
				s.U[IRho][e*n3:(e+1)*n3]...)
			r.Send(0, 999, payload)
		}
		return nil
	}
	out := map[int64][]float64{}
	for e := 0; e < s.Local.Nel; e++ {
		g := s.Local.GlobalElemCoords(e)
		out[s.Local.Box.GlobalElemID(g)] = append([]float64(nil), s.U[IRho][e*n3:(e+1)*n3]...)
	}
	total := s.Local.Box.TotalElems()
	for len(out) < total {
		data := r.Recv(comm.AnySource, 999)
		out[int64(data[0])] = data[1:]
	}
	return out
}

func TestParallelMatchesSerial(t *testing.T) {
	// The same global problem on 1 rank and on 8 ranks must produce the
	// same fields (up to floating-point reassociation in reductions).
	elemGrid := [3]int{4, 2, 2}
	n := 5
	steps := 4
	ic := GaussianPulse(2, 1, 1, 0.08, 0.6)

	run := func(p int, procGrid [3]int) map[int64][]float64 {
		var result map[int64][]float64
		_, err := comm.RunSimple(p, func(r *comm.Rank) error {
			cfg := Config{
				N: n, ProcGrid: procGrid, ElemGrid: elemGrid,
				Periodic: [3]bool{true, true, true},
				Variant:  sem.Optimized, GSMethod: gs.Pairwise, CFL: 0.25,
			}
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(ic)
			s.Run(steps)
			if m := gatherGlobalDensity(s); m != nil {
				result = m
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return result
	}

	serial := run(1, [3]int{1, 1, 1})
	parallel := run(8, [3]int{2, 2, 2})
	if len(serial) != len(parallel) {
		t.Fatalf("element counts differ: %d vs %d", len(serial), len(parallel))
	}
	for id, sv := range serial {
		pv, ok := parallel[id]
		if !ok {
			t.Fatalf("element %d missing from parallel run", id)
		}
		for i := range sv {
			if math.Abs(sv[i]-pv[i]) > 1e-9*(1+math.Abs(sv[i])) {
				t.Fatalf("element %d point %d: serial %v vs parallel %v", id, i, sv[i], pv[i])
			}
		}
	}
}

func TestVariantsProduceSameAnswer(t *testing.T) {
	run := func(v sem.KernelVariant) []float64 {
		var out []float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, 5, 2)
			cfg.Variant = v
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(GaussianPulse(1, 1, 1, 0.05, 0.5))
			s.Run(3)
			out = append([]float64(nil), s.U[IEnergy]...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	basic := run(sem.Basic)
	opt := run(sem.Optimized)
	for i := range basic {
		if math.Abs(basic[i]-opt[i]) > 1e-10*(1+math.Abs(basic[i])) {
			t.Fatalf("kernel variants diverge at %d: %v vs %v", i, basic[i], opt[i])
		}
	}
}

func TestGSMethodsProduceSameAnswer(t *testing.T) {
	run := func(m gs.Method) []float64 {
		var out []float64
		_, err := comm.RunSimple(4, func(r *comm.Rank) error {
			cfg := DefaultConfig(4, 4, 1)
			cfg.GSMethod = m
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(GaussianPulse(1, 1, 1, 0.05, 0.5))
			s.Run(3)
			if r.ID() == 0 {
				out = append([]float64(nil), s.U[IRho]...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(gs.Pairwise)
	for _, m := range []gs.Method{gs.CrystalRouter, gs.AllReduce} {
		got := run(m)
		for i := range ref {
			if math.Abs(ref[i]-got[i]) > 1e-10*(1+math.Abs(ref[i])) {
				t.Fatalf("%v diverges from pairwise at %d: %v vs %v", m, i, got[i], ref[i])
			}
		}
	}
}

func TestWaveSpeedQuiescent(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 4, 2)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		// Background of GaussianPulse with amp 0: rho=1, p=1/gamma, at
		// rest => wave speed = sound speed = sqrt(gamma*p/rho) = 1.
		s.SetInitial(GaussianPulse(0, 0, 0, 0, 1))
		if lam := s.MaxWaveSpeed(); math.Abs(lam-1) > 1e-12 {
			t.Errorf("quiescent wave speed = %v, want 1", lam)
		}
		if dt := s.StableDt(); dt <= 0 || dt > 1 {
			t.Errorf("dt = %v", dt)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDealiasRunWorks(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 5, 2)
		cfg.Dealias = true
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.05, 0.5))
		rep := s.Run(2)
		if rep.Ops.Flops() <= 0 {
			t.Error("no work recorded")
		}
		for _, v := range s.U[IRho] {
			if math.IsNaN(v) {
				t.Error("NaN with dealiasing enabled")
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonPeriodicRunStaysFinite(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 5, 2)
		cfg.Periodic = [3]bool{false, false, false}
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.05, 0.5))
		s.Run(5)
		for _, v := range s.U[IRho] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Error("non-periodic run produced non-finite density")
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProfileShape(t *testing.T) {
	// The derivative kernel must dominate the execution profile, as in
	// the paper's Figure 4.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 8, 2)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.05, 0.5))
		s.Run(3)
		self := map[string]float64{}
		for _, reg := range s.Prof.Flat() {
			self[reg.Name] += reg.Self
		}
		deriv := self["ax_deriv_dudr"] + self["ax_deriv_duds"] + self["ax_deriv_dudt"]
		if deriv <= 0 {
			t.Error("no derivative time recorded")
		}
		if deriv <= self["full2face_cmt"] {
			t.Errorf("derivative (%v) should dominate full2face (%v)", deriv, self["full2face_cmt"])
		}
		if self["timestep"] < 0 {
			t.Error("negative self time")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(4, 5, 2)
	if err := cfg.Validate(4); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := cfg.Validate(5); err == nil {
		t.Fatal("wrong rank count accepted")
	}
	bad := cfg
	bad.N = 1
	if err := bad.Validate(4); err == nil {
		t.Fatal("N=1 accepted")
	}
	bad = cfg
	bad.ElemGrid = [3]int{3, 3, 3}
	if err := bad.Validate(4); err == nil {
		t.Fatal("indivisible elem grid accepted")
	}
}

func TestPaperFig7Config(t *testing.T) {
	cfg := PaperFig7Config()
	if err := cfg.Validate(256); err != nil {
		t.Fatal(err)
	}
	box, err := cfg.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	if box.TotalElems() != 25600 || box.LocalElems() != 100 {
		t.Fatalf("paper setup: total %d local %d", box.TotalElems(), box.LocalElems())
	}
}

func TestAutoTuneRuns(t *testing.T) {
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 4, 1)
		cfg.AutoTune = true
		cfg.TuneTrials = 1
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.05, 0.5))
		s.Run(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
