package solver

import (
	"math"
	"testing"

	"repro/internal/comm"
)

func closedBoxConfig(p, n int) Config {
	cfg := DefaultConfig(p, n, 2)
	cfg.Periodic = [3]bool{false, false, false}
	cfg.BC = BCWall
	cfg.CFL = 0.25
	return cfg
}

func TestWallBCSealsTheBox(t *testing.T) {
	// A pulse in a closed box: mass and total energy must be conserved
	// (no flux through walls) even though the box is not periodic.
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := closedBoxConfig(2, 6)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(
			float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
			0.15, 0.5))
		m0 := s.TotalMass()
		e0 := s.Integrate(IEnergy)
		s.Run(12)
		if m1 := s.TotalMass(); math.Abs(m1-m0) > 1e-10*math.Abs(m0) {
			t.Errorf("wall box leaked mass: %v -> %v", m0, m1)
		}
		if e1 := s.Integrate(IEnergy); math.Abs(e1-e0) > 1e-10*math.Abs(e0) {
			t.Errorf("wall box leaked energy: %v -> %v", e0, e1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWallBCReflectsPulse(t *testing.T) {
	// Freestream boundaries let the wave leave (energy decays); walls
	// keep it inside (kinetic energy persists after the transit time).
	kineticAfter := func(bc BoundaryCondition) float64 {
		var ke float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, 6, 2)
			cfg.Periodic = [3]bool{false, false, false}
			cfg.BC = bc
			cfg.CFL = 0.25
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			s.SetInitial(GaussianPulse(1, 1, 1, 0.2, 0.4))
			// Run past several box-crossing times (box side 2, c ~ 1).
			elapsed := 0.0
			for elapsed < 6 {
				dt := s.StableDt()
				s.Step(dt)
				elapsed += dt
			}
			// Kinetic energy proxy.
			for i := range s.U[IRho] {
				mom2 := s.U[IMomX][i]*s.U[IMomX][i] +
					s.U[IMomY][i]*s.U[IMomY][i] +
					s.U[IMomZ][i]*s.U[IMomZ][i]
				ke += mom2 / s.U[IRho][i]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ke
	}
	open := kineticAfter(BCFreestream)
	closed := kineticAfter(BCWall)
	if closed <= open {
		t.Fatalf("walls should retain energy: open %v vs closed %v", open, closed)
	}
}

func TestWallBCQuiescentSteady(t *testing.T) {
	// A box of still gas with walls must stay exactly still.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := closedBoxConfig(1, 5)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		want := UniformState(1, 0, 0, 0, 1/Gamma)
		s.SetInitial(func(x, y, z float64) [NumFields]float64 { return want })
		s.Run(5)
		for c := 0; c < NumFields; c++ {
			for i, v := range s.U[c] {
				if math.Abs(v-want[c]) > 1e-12 {
					t.Errorf("field %d drifted at %d: %v vs %v", c, i, v, want[c])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWallBCStaysFiniteLong(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := closedBoxConfig(1, 6)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(GaussianPulse(1, 1, 1, 0.3, 0.4))
		for i := 0; i < 80; i++ {
			s.Step(s.StableDt())
		}
		for _, v := range s.U[IRho] {
			if math.IsNaN(v) || v <= 0 || v > 3 {
				t.Errorf("closed-box run unstable: rho = %v", v)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBCStrings(t *testing.T) {
	if BCFreestream.String() != "freestream" || BCWall.String() != "wall" {
		t.Fatal("BC names wrong")
	}
}
