package bench

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sem"
)

// TestMxMSweepEffectiveLabels is the regression test for the -mxm
// labeling bug: for k outside [4, 10] the "specialized" column used to
// credit the specialized kernel with the fused+unroll fallback's
// numbers. The sweep records must carry the kernel that actually ran.
func TestMxMSweepEffectiveLabels(t *testing.T) {
	records := MxMSweep(MxMSweepOptions{Ks: []int{8, 12}, Nel: 2, FlopBudget: 1})
	byKey := map[string]MxMRecord{}
	for _, r := range records {
		byKey[r.Variant+"/"+strconv.Itoa(r.K)] = r
	}
	if len(byKey) != 2*len(sem.MxMVariants) {
		t.Fatalf("got %d distinct records, want %d", len(byKey), 2*len(sem.MxMVariants))
	}
	if got := byKey["specialized/8"].Effective; got != "specialized" {
		t.Errorf("k=8 specialized: effective %q", got)
	}
	if got := byKey["specialized/12"].Effective; got != "fused+unroll" {
		t.Errorf("k=12 specialized: effective %q, want fused+unroll (the labeling bug)", got)
	}
	if got := byKey["generated/12"].Effective; got != "generated" {
		t.Errorf("k=12 generated: effective %q", got)
	}
	if got := byKey["auto/8"].Effective; !strings.HasPrefix(got, "auto:") {
		t.Errorf("k=8 auto: effective %q lacks auto: prefix", got)
	}
	for _, r := range records {
		if r.Gflops <= 0 {
			t.Errorf("%s/k=%d: non-positive Gflop/s", r.Variant, r.K)
		}
		if r.SpeedupVsFU <= 0 {
			t.Errorf("%s/k=%d: non-positive speedup", r.Variant, r.K)
		}
	}
}

func TestMxMResultsSchema(t *testing.T) {
	recs := MxMSweep(MxMSweepOptions{Ks: []int{12}, Nel: 2, FlopBudget: 1})
	results := MxMResults(recs)
	if len(results) != len(recs) {
		t.Fatalf("got %d results for %d records", len(results), len(recs))
	}
	for i, r := range results {
		if r.Suite != "kernelbench-mxm" {
			t.Errorf("suite %q", r.Suite)
		}
		if !strings.HasPrefix(r.Scenario, "k=12/") {
			t.Errorf("scenario %q", r.Scenario)
		}
		if r.Params["effective"] != recs[i].Effective {
			t.Errorf("%s: params effective %q != record %q", r.Scenario, r.Params["effective"], recs[i].Effective)
		}
		if _, ok := r.Metric("gflops_per_sec"); !ok {
			t.Errorf("%s: missing gflops_per_sec", r.Scenario)
		}
		if _, ok := r.Metric("speedup_vs_fused_unroll"); !ok {
			t.Errorf("%s: missing speedup metric", r.Scenario)
		}
	}
}
