package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
)

// ServeLoadOptions configures one job-server load run.
type ServeLoadOptions struct {
	// Slots is the server's runner-slot count (default 2).
	Slots int
	// Jobs is the number of submissions (default 24).
	Jobs int
	// Tenants round-robins submissions over this many tenant ids
	// (default 3), exercising the fair-share path.
	Tenants int
	// PreemptEvery makes every k-th job high-priority (priority 7), so
	// the run measures preemption latency too. 0 disables (default 6).
	PreemptEvery int
	// Job shape (defaults: Ranks 2, N 5, LocalElems 1, Steps 5).
	Ranks, N, LocalElems, Steps int
	// RatePerSec, when > 0, paces submissions open-loop at this rate;
	// 0 submits the whole batch immediately (burst).
	RatePerSec float64
}

// Defaults fills unset fields with the standard load shape.
func (o *ServeLoadOptions) Defaults() {
	if o.Slots == 0 {
		o.Slots = 2
	}
	if o.Jobs == 0 {
		o.Jobs = 24
	}
	if o.Tenants == 0 {
		o.Tenants = 3
	}
	if o.PreemptEvery == 0 {
		o.PreemptEvery = 6
	}
	if o.Ranks == 0 {
		o.Ranks = 2
	}
	if o.N == 0 {
		o.N = 5
	}
	if o.LocalElems == 0 {
		o.LocalElems = 1
	}
	if o.Steps == 0 {
		o.Steps = 5
	}
}

// ServeLoadResult is the measured outcome of a load run.
type ServeLoadResult struct {
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	Preemptions int     `json:"preemptions"`
	Resumes     int     `json:"resumes"`
	CacheHits   int     `json:"cache_hits"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`

	TTFSP50 float64 `json:"ttfs_p50_s"`
	TTFSP99 float64 `json:"ttfs_p99_s"`
	// ColdSetupS is the solver-setup wall time of the sequential
	// cache-miss probe; WarmSetupS the median of the cache-hit probes
	// that follow it. Both are uncontended, so warm lower than cold is
	// the artifact cache paying off, not scheduling luck.
	ColdSetupS float64 `json:"cold_setup_s"`
	WarmSetupS float64 `json:"warm_setup_s"`

	PreemptP50 float64 `json:"preempt_latency_p50_s,omitempty"`
	PreemptP99 float64 `json:"preempt_latency_p99_s,omitempty"`
}

// ServeLoad runs an open-loop load generation against an in-process job
// server driven through its real HTTP front (httptest transport), and
// reports sustained throughput, time-to-first-step percentiles, and
// preemption latency. The server-side measured latencies (TTFS, setup,
// preemption) come from the job statuses, so they are transport-noise
// free; throughput includes the full HTTP + scheduler path.
func ServeLoad(opts ServeLoadOptions) (*ServeLoadResult, error) {
	opts.Defaults()
	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{
		Slots:   opts.Slots,
		Metrics: reg,
		Limits:  serve.Limits{MaxQueuedPerTenant: opts.Jobs + 1, MaxRunningPerTenant: opts.Slots},
	})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var interval time.Duration
	if opts.RatePerSec > 0 {
		interval = time.Duration(float64(time.Second) / opts.RatePerSec)
	}

	res := &ServeLoadResult{Submitted: opts.Jobs}

	// Cache probe: one cold then three warm submissions of the load
	// shape, sequential and uncontended, so the cold/warm setup split
	// measures the artifact cache and not CPU contention. This also
	// pre-warms the cache for the burst (every load job then measures
	// the steady state a long-running server serves from).
	probe := serve.JobSpec{
		Tenant: "probe", Ranks: opts.Ranks, N: opts.N,
		LocalElems: opts.LocalElems, Steps: 2,
	}
	var warm []float64
	for i := 0; i < 4; i++ {
		body, _ := json.Marshal(probe)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("serveload: probe %d: %w", i, err)
		}
		var st serve.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("serveload: probe %d: status %d (%v)", i, resp.StatusCode, err)
		}
		fin, err := srv.WaitJob(st.ID)
		if err != nil {
			return nil, err
		}
		if fin.State != serve.StateDone {
			return nil, fmt.Errorf("serveload: probe %d ended %s (%s)", i, fin.State, fin.Error)
		}
		if fin.CacheHit {
			warm = append(warm, fin.SetupSecs)
		} else {
			res.ColdSetupS = fin.SetupSecs
		}
	}
	res.WarmSetupS = percentile(warm, 0.50)

	// Open loop: submissions fire without waiting for server progress
	// (each on its own goroutine), so a busy server accumulates a real
	// queue instead of throttling the generator — that queue is what
	// exercises fair share and preemption.
	start := time.Now()
	ids := make([]int64, opts.Jobs)
	errs := make([]error, opts.Jobs)
	var wg sync.WaitGroup
	for i := 0; i < opts.Jobs; i++ {
		spec := serve.JobSpec{
			Tenant:     fmt.Sprintf("tenant%d", i%opts.Tenants),
			Ranks:      opts.Ranks,
			N:          opts.N,
			LocalElems: opts.LocalElems,
			Steps:      opts.Steps,
		}
		if opts.PreemptEvery > 0 && i%opts.PreemptEvery == opts.PreemptEvery-1 {
			spec.Priority = 7
		}
		wg.Add(1)
		go func(i int, spec serve.JobSpec) {
			defer wg.Done()
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = fmt.Errorf("serveload: submit %d: %w", i, err)
				return
			}
			var st serve.Status
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusCreated {
				errs[i] = fmt.Errorf("serveload: submit %d: status %d (%v)", i, resp.StatusCode, err)
				return
			}
			ids[i] = st.ID
		}(i, spec)
		if interval > 0 {
			time.Sleep(interval)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var ttfs, preempt []float64
	for _, id := range ids {
		st, err := srv.WaitJob(id)
		if err != nil {
			return nil, err
		}
		if st.State != serve.StateDone {
			return nil, fmt.Errorf("serveload: job %d ended %s (%s)", id, st.State, st.Error)
		}
		res.Completed++
		res.Preemptions += st.Preemptions
		res.Resumes += st.Resumes
		ttfs = append(ttfs, st.TTFSSeconds)
		if st.CacheHit {
			res.CacheHits++
		}
		if st.PreemptLatS > 0 {
			preempt = append(preempt, st.PreemptLatS)
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	if res.WallSeconds > 0 {
		res.JobsPerSec = float64(res.Completed) / res.WallSeconds
	}
	res.TTFSP50, res.TTFSP99 = percentile(ttfs, 0.50), percentile(ttfs, 0.99)
	res.PreemptP50 = percentile(preempt, 0.50)
	res.PreemptP99 = percentile(preempt, 0.99)
	return res, nil
}

// percentile returns the q-quantile of vals by nearest rank (0 when
// empty).
func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// Results converts the load run into schema-versioned bench results.
// The job/completion counts are deterministic (the load script is
// fixed); every latency is wall clock and therefore report-only in
// regression gating.
func (r *ServeLoadResult) Results(opts ServeLoadOptions) []report.BenchResult {
	opts.Defaults()
	params := map[string]string{
		"slots":   fmt.Sprint(opts.Slots),
		"jobs":    fmt.Sprint(opts.Jobs),
		"tenants": fmt.Sprint(opts.Tenants),
		"ranks":   fmt.Sprint(opts.Ranks),
		"n":       fmt.Sprint(opts.N),
		"steps":   fmt.Sprint(opts.Steps),
	}
	return []report.BenchResult{{
		Suite:    "serveload",
		Scenario: fmt.Sprintf("slots=%d/jobs=%d", opts.Slots, opts.Jobs),
		Params:   params,
		Metrics: []report.Metric{
			{Name: "jobs_completed", Value: float64(r.Completed), Deterministic: true},
			{Name: "jobs_per_sec", Value: r.JobsPerSec, Unit: "1/s"},
			{Name: "ttfs_p50", Value: r.TTFSP50, Unit: "s", LessIsBetter: true},
			{Name: "ttfs_p99", Value: r.TTFSP99, Unit: "s", LessIsBetter: true},
			{Name: "cold_setup", Value: r.ColdSetupS, Unit: "s", LessIsBetter: true},
			{Name: "warm_setup", Value: r.WarmSetupS, Unit: "s", LessIsBetter: true},
			{Name: "preempt_latency_p50", Value: r.PreemptP50, Unit: "s", LessIsBetter: true},
			{Name: "preempt_latency_p99", Value: r.PreemptP99, Unit: "s", LessIsBetter: true},
			{Name: "preemptions", Value: float64(r.Preemptions)},
		},
	}}
}
