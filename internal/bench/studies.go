// Package bench holds the measurement cores of the repo's benchmark
// commands — the loadbal and overlap scenario studies of scalebench,
// the derivative-kernel worker sweep of kernelbench, and the
// steady-state allocation guard — so cmd/benchdiff can re-run exactly
// the committed-baseline measurements in-process and compare, and the
// bench commands stay thin front-ends.
//
// Every modeled quantity (virtual-clock makespans, modeled MPI
// fractions) is deterministic: compute is charged analytically, so two
// runs of the same study on any host produce bit-identical modeled
// results. Wall-clock quantities are measured on the host and noisy.
package bench

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/loadbal"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/solver"
)

// LoadbalOptions parameterize the skewed-load scenario study.
type LoadbalOptions struct {
	N          int     // GLL points per direction (0 = 5, the baseline's)
	Workers    int     // pool width per rank (0 = DefaultWorkers)
	HotFactor  float64 // hot-rank cost multiplier (0 = 4, the baseline's)
	Threshold  float64 // imbalance triggering a rebalance (0 = 1.2)
	Every      int     // steps between epochs (0 = 2)
	Trace      bool    // record spans/flows and attach critpath summaries
	Net        netmodel.Model
	NetSet     bool // Net is meaningful (zero Model is unusable)
}

// LBScenario is one measured scenario of the loadbal study.
type LBScenario struct {
	Scenario          string
	Ranks             int
	Makespan          float64
	MPIFrac           float64
	ImbalanceBefore   float64
	ImbalanceAfter    float64
	Rebalances        int
	MigratedElems     int
	ReductionVsSkewed float64
	Critpath          *critpath.Summary
}

// LoadbalResult is the study output plus the knobs that produced it.
type LoadbalResult struct {
	N, Steps, HotRank int
	HotFactor         float64
	Threshold         float64
	Every             int
	Net               string
	Scenarios         []LBScenario
}

// LoadbalStudy measures the dynamic load balancer against a one-hot-rank
// cost skew: balanced (floor), skewed static (ceiling), and skewed with
// the balancer on. Identical in configuration to the committed
// BENCH_loadbal_baseline.json when opts is zero.
func LoadbalStudy(opts LoadbalOptions) (*LoadbalResult, error) {
	const np, localElems, hotRank, steps = 8, 2, 3, 12
	n := opts.N
	if n == 0 {
		n = 5
	}
	hotFactor := opts.HotFactor
	if hotFactor == 0 {
		hotFactor = 4.0
	}
	lbCfg := loadbal.Config{Threshold: opts.Threshold, Every: opts.Every}
	if lbCfg.Threshold == 0 {
		lbCfg.Threshold = 1.2
	}
	if lbCfg.Every == 0 {
		lbCfg.Every = 2
	}
	model := opts.Net
	if !opts.NetSet {
		model = netmodel.QDR
	}

	base := solver.DefaultConfig(np, n, localElems)
	box, err := base.Mesh()
	if err != nil {
		return nil, fmt.Errorf("loadbal study: %w", err)
	}
	hot := make(map[int64]float64)
	for _, gid := range box.Partition(hotRank).GIDs() {
		hot[gid] = hotFactor
	}

	run := func(hotElems map[int64]float64, balance bool) (LBScenario, error) {
		cfg := base
		cfg.HotElems = hotElems
		cfg.Workers = opts.Workers
		if cfg.Workers == 0 {
			cfg.Workers = pool.DefaultWorkers(np)
		}
		reg := obs.NewRegistry()
		var tel *obs.Tracer
		if opts.Trace {
			tel = obs.NewTracer()
			cfg.Obs = tel
		}
		commOpts := cfg.CommOptions(model)
		if tel != nil {
			commOpts.Tracer = obs.NewCommTracer(tel, nil)
		}
		balancers := make([]*loadbal.Balancer, np)
		stats, err := comm.Run(np, commOpts, func(r *comm.Rank) error {
			s, err := solver.New(r, cfg)
			if err != nil {
				return err
			}
			defer s.Close()
			s.SetInitial(solver.GaussianPulse(
				float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
				0.1, 0.5))
			var after func(int)
			if balance {
				b := loadbal.New(s, nil, reg, lbCfg)
				balancers[r.ID()] = b
				after = b.AfterStep
			}
			s.RunWith(steps, after)
			return nil
		})
		if err != nil {
			return LBScenario{}, err
		}
		mpi := 0.0
		for _, f := range stats.RankMPIFractions() {
			mpi += f.FracModeled()
		}
		out := LBScenario{Ranks: np, Makespan: stats.MaxVirtualTime(), MPIFrac: mpi / np}
		if balance {
			out.ImbalanceBefore = reg.Gauge("loadbal_imbalance_before").Value()
			out.ImbalanceAfter = reg.Gauge("loadbal_imbalance_after").Value()
			out.Rebalances = balancers[0].Rebalances
			out.MigratedElems = int(reg.Counter("loadbal_migrated_elems").Value())
		}
		if tel != nil {
			a, err := critpath.Analyze(tel.Spans(), tel.Flows(), critpath.Virtual)
			if err != nil {
				return LBScenario{}, fmt.Errorf("critpath: %w", err)
			}
			s := a.Summary()
			out.Critpath = &s
		}
		return out, nil
	}

	balanced, err := run(nil, false)
	if err != nil {
		return nil, fmt.Errorf("loadbal study (balanced): %w", err)
	}
	balanced.Scenario = "balanced"
	skewed, err := run(hot, false)
	if err != nil {
		return nil, fmt.Errorf("loadbal study (skewed): %w", err)
	}
	skewed.Scenario = "skewed"
	rebal, err := run(hot, true)
	if err != nil {
		return nil, fmt.Errorf("loadbal study (skewed+loadbal): %w", err)
	}
	rebal.Scenario = "skewed+loadbal"
	res := &LoadbalResult{
		N: n, Steps: steps, HotRank: hotRank, HotFactor: hotFactor,
		Threshold: lbCfg.Threshold, Every: lbCfg.Every, Net: model.Name,
	}
	for _, s := range []LBScenario{balanced, skewed, rebal} {
		s.ReductionVsSkewed = 1 - s.Makespan/skewed.Makespan
		res.Scenarios = append(res.Scenarios, s)
	}
	return res, nil
}

// Results converts the study into the unified schema.
func (r *LoadbalResult) Results() []report.BenchResult {
	var out []report.BenchResult
	for _, s := range r.Scenarios {
		out = append(out, report.BenchResult{
			Suite:    "scalebench-loadbal",
			Scenario: s.Scenario,
			Params: map[string]string{
				"n": fmt.Sprint(r.N), "steps": fmt.Sprint(r.Steps), "net": r.Net,
				"hot_rank": fmt.Sprint(r.HotRank), "hot_factor": fmt.Sprint(r.HotFactor),
			},
			Metrics: []report.Metric{
				{Name: "makespan_s", Value: s.Makespan, Unit: "s", Deterministic: true, LessIsBetter: true},
				{Name: "mpi_frac", Value: s.MPIFrac, Unit: "frac", Deterministic: true, LessIsBetter: true},
				{Name: "reduction_vs_skewed", Value: s.ReductionVsSkewed, Unit: "frac"},
			},
			Critpath: s.Critpath,
		})
	}
	return out
}

// OverlapOptions parameterize the compute/communication overlap study.
type OverlapOptions struct {
	N       int // GLL points per direction (0 = 5, the baseline's)
	Workers int
	Trace   bool
	Net     netmodel.Model
	NetSet  bool
}

// OVScenario is one measured scenario of the overlap study.
type OVScenario struct {
	Scenario            string
	Ranks               int
	Makespan            float64
	MPIFrac             float64
	HiddenSeconds       float64
	InteriorElems       int
	BoundaryElems       int
	ReductionVsBlocking float64
	Critpath            *critpath.Summary
}

// OverlapResult is the study output plus the knobs that produced it.
type OverlapResult struct {
	N, LocalElems, Steps int
	Net                  string
	Scenarios            []OVScenario
}

// OverlapStudy measures the split-phase exchange against the blocking
// baseline on a communication-bound configuration. Identical to the
// committed BENCH_overlap_baseline.json when opts is zero.
func OverlapStudy(opts OverlapOptions) (*OverlapResult, error) {
	const np, localElems, steps = 8, 3, 8
	n := opts.N
	if n == 0 {
		n = 5
	}
	model := opts.Net
	if !opts.NetSet {
		model = netmodel.GigE
	}

	run := func(overlap bool) (OVScenario, error) {
		cfg := solver.DefaultConfig(np, n, localElems)
		cfg.Overlap = overlap
		cfg.Workers = opts.Workers
		if cfg.Workers == 0 {
			cfg.Workers = pool.DefaultWorkers(np)
		}
		var tel *obs.Tracer
		if opts.Trace {
			tel = obs.NewTracer()
			cfg.Obs = tel
		}
		commOpts := cfg.CommOptions(model)
		if tel != nil {
			commOpts.Tracer = obs.NewCommTracer(tel, nil)
		}
		interior := 0
		stats, err := comm.Run(np, commOpts, func(r *comm.Rank) error {
			s, err := solver.New(r, cfg)
			if err != nil {
				return err
			}
			defer s.Close()
			if r.ID() == 0 {
				interior = s.InteriorElems()
			}
			s.SetInitial(solver.GaussianPulse(
				float64(cfg.ElemGrid[0])/2, float64(cfg.ElemGrid[1])/2, float64(cfg.ElemGrid[2])/2,
				0.1, 0.5))
			s.Run(steps)
			return nil
		})
		if err != nil {
			return OVScenario{}, err
		}
		mpi := 0.0
		for _, f := range stats.RankMPIFractions() {
			mpi += f.FracModeled()
		}
		out := OVScenario{Ranks: np, Makespan: stats.MaxVirtualTime(), MPIFrac: mpi / np}
		if overlap {
			out.HiddenSeconds = stats.TotalOverlapHidden()
			out.InteriorElems = interior
			out.BoundaryElems = localElems*localElems*localElems - interior
		}
		if tel != nil {
			a, err := critpath.Analyze(tel.Spans(), tel.Flows(), critpath.Virtual)
			if err != nil {
				return OVScenario{}, fmt.Errorf("critpath: %w", err)
			}
			s := a.Summary()
			out.Critpath = &s
		}
		return out, nil
	}

	blocking, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("overlap study (blocking): %w", err)
	}
	blocking.Scenario = "blocking"
	split, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("overlap study (overlap): %w", err)
	}
	split.Scenario = "overlap"
	res := &OverlapResult{N: n, LocalElems: localElems, Steps: steps, Net: model.Name}
	for _, s := range []OVScenario{blocking, split} {
		s.ReductionVsBlocking = 1 - s.Makespan/blocking.Makespan
		res.Scenarios = append(res.Scenarios, s)
	}
	return res, nil
}

// Results converts the study into the unified schema.
func (r *OverlapResult) Results() []report.BenchResult {
	var out []report.BenchResult
	for _, s := range r.Scenarios {
		out = append(out, report.BenchResult{
			Suite:    "scalebench-overlap",
			Scenario: s.Scenario,
			Params: map[string]string{
				"n": fmt.Sprint(r.N), "steps": fmt.Sprint(r.Steps), "net": r.Net,
				"local_elems_per_dir": fmt.Sprint(r.LocalElems),
			},
			Metrics: []report.Metric{
				{Name: "makespan_s", Value: s.Makespan, Unit: "s", Deterministic: true, LessIsBetter: true},
				{Name: "mpi_frac", Value: s.MPIFrac, Unit: "frac", Deterministic: true, LessIsBetter: true},
				{Name: "reduction_vs_blocking", Value: s.ReductionVsBlocking, Unit: "frac"},
			},
			Critpath: s.Critpath,
		})
	}
	return out
}
