package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/report"
	"repro/internal/sem"
)

// The small-matrix mxm sweep: every MxM variant across the reduction
// sizes the spectral-element kernels produce (k = N is the 1D operator
// size), in the derivative kernel's dominant shape m = N^2, n = N,
// batched over elements the way the solver calls it. This is the
// measurement behind `kernelbench -mxm` and the "kernelbench-mxm"
// baseline suite cmd/benchdiff re-runs.

// MxMSweepOptions parameterize the sweep.
type MxMSweepOptions struct {
	// Ks lists the reduction sizes to measure (nil = 4..16, the hand-
	// specialized range plus the generated range's upper half).
	Ks []int
	// Nel is the number of elements per batched call (0 = 32).
	Nel int
	// FlopBudget is the approximate floating-point work per measured
	// (k, variant) cell; the repetition count is derived from it so
	// small and large k measure for comparable wall time (0 = 2e8).
	FlopBudget float64
	// Tune runs the mxm autotuner before measuring, so the auto column
	// reflects the tuned table (the solver's startup behaviour with
	// Config.TuneMxM).
	Tune bool
	// Each, when non-nil, receives every record as it is measured.
	Each func(MxMRecord)
}

// MxMRecord is one (k, variant) measurement.
type MxMRecord struct {
	K, M, N   int
	Nel       int
	Steps     int
	Variant   string
	// Effective is the kernel that actually ran (sem.MxMEffective):
	// variants outside their specialization range report their
	// fallback here instead of silently crediting the named variant.
	Effective string
	Wall      float64
	Gflops    float64
	// SpeedupVsFU is this variant's Gflop/s over MxMFusedUnroll's at
	// the same shape — the transformation-set baseline CMT-bone
	// inherits from Nek5000.
	SpeedupVsFU float64
}

// MxMSweep measures every MxM variant at each k in the dominant
// derivative shape (m = k*k, n = k) and returns one record per cell.
func MxMSweep(opts MxMSweepOptions) []MxMRecord {
	ks := opts.Ks
	if ks == nil {
		for k := 4; k <= 16; k++ {
			ks = append(ks, k)
		}
	}
	nel := opts.Nel
	if nel == 0 {
		nel = 32
	}
	budget := opts.FlopBudget
	if budget == 0 {
		budget = 2e8
	}
	if opts.Tune {
		sem.TuneMxMDefault()
	}

	var records []MxMRecord
	for _, k := range ks {
		m, n := k*k, k
		steps := int(budget / float64(2*m*k*n*nel))
		if steps < 1 {
			steps = 1
		}
		rng := rand.New(rand.NewSource(1))
		a := make([]float64, nel*m*k)
		for i := range a {
			a[i] = rng.Float64()
		}
		b := make([]float64, k*n)
		for i := range b {
			b[i] = rng.Float64()
		}
		c := make([]float64, nel*m*n)

		kRecs := make([]MxMRecord, 0, len(sem.MxMVariants))
		var fuGflops float64
		for _, v := range sem.MxMVariants {
			sem.MxMBatch(v, a, m, b, k, c, n, nel) // warm: resolve + fault pages
			start := time.Now()
			var ops sem.OpCount
			for s := 0; s < steps; s++ {
				ops = ops.Plus(sem.MxMBatch(v, a, m, b, k, c, n, nel))
			}
			wall := time.Since(start).Seconds()
			g := float64(ops.Flops()) / wall / 1e9
			if v == sem.MxMFusedUnroll {
				fuGflops = g
			}
			kRecs = append(kRecs, MxMRecord{
				K: k, M: m, N: n, Nel: nel, Steps: steps,
				Variant: v.String(), Effective: sem.MxMEffective(v, k),
				Wall: wall, Gflops: g,
			})
		}
		for i := range kRecs {
			if fuGflops > 0 {
				kRecs[i].SpeedupVsFU = kRecs[i].Gflops / fuGflops
			}
			if opts.Each != nil {
				opts.Each(kRecs[i])
			}
		}
		records = append(records, kRecs...)
	}
	return records
}

// MxMResults converts sweep records into the unified schema under suite
// "kernelbench-mxm". Both metrics are wall-clock derived, so they are
// report-only under benchdiff's default gating.
func MxMResults(records []MxMRecord) []report.BenchResult {
	var out []report.BenchResult
	for _, r := range records {
		out = append(out, report.BenchResult{
			Suite:    "kernelbench-mxm",
			Scenario: fmt.Sprintf("k=%02d/%s", r.K, r.Variant),
			Params: map[string]string{
				"m": fmt.Sprint(r.M), "n": fmt.Sprint(r.N),
				"nel": fmt.Sprint(r.Nel), "steps": fmt.Sprint(r.Steps),
				"effective": r.Effective,
			},
			Metrics: []report.Metric{
				{Name: "gflops_per_sec", Value: r.Gflops, Unit: "gflop/s"},
				{Name: "speedup_vs_fused_unroll", Value: r.SpeedupVsFU, Unit: "x"},
			},
		})
	}
	return out
}
