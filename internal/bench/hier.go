package bench

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/report"
)

// HierOptions parameterize the hierarchical-collectives scaling study.
type HierOptions struct {
	// MaxRanks is the largest modeled rank count (0 = 4096). Rank counts
	// sweep 256, 1024, 4096, ... up to this value; every count must be a
	// multiple of 16 (the modeled node width) with a power-of-two node
	// count, which the 4^k sweep guarantees.
	MaxRanks int
	// Topos lists the modeled fabrics (nil = fat-tree and dragonfly).
	Topos []string
	// Iters is the number of timed repetitions per collective (0 = 3).
	Iters int
	// DiagLen is the diagnostics-allreduce payload in floats (0 = 256,
	// the size of the solver's per-step flow-diagnostics reduction at
	// scale); ResidLen the residual allreduce (0 = 8).
	DiagLen, ResidLen int
	// Load is the static background load on the fabric (0 = 0.25;
	// negative for an idle fabric).
	Load float64
	// ReplayMax bounds congestion replay: scenarios with more ranks skip
	// the replay to keep trace memory bounded (0 = 1024; negative
	// disables replay entirely).
	ReplayMax int
}

func (o *HierOptions) fill() {
	if o.MaxRanks == 0 {
		o.MaxRanks = 4096
	}
	if o.Topos == nil {
		o.Topos = []string{"fat-tree", "dragonfly"}
	}
	if o.Iters == 0 {
		o.Iters = 3
	}
	if o.DiagLen == 0 {
		o.DiagLen = 256
	}
	if o.ResidLen == 0 {
		o.ResidLen = 8
	}
	if o.Load == 0 {
		o.Load = 0.25
	} else if o.Load < 0 {
		o.Load = 0
	}
	if o.ReplayMax == 0 {
		o.ReplayMax = 1024
	}
}

// HierScenario is one measured (topology, rank count, method) point.
type HierScenario struct {
	Scenario string
	Topo     string
	Ranks    int
	Method   string // "flat" or "hier"
	// Worst-rank modeled seconds per operation (averaged over Iters),
	// and the modeled makespan of the whole collective sequence.
	DiagTime, ResidTime, BcastTime, BarrierTime float64
	CollTime                                    float64
	// DiagCRC fingerprints the bits of the final diagnostics-allreduce
	// result; the study errors out if flat and hier disagree.
	DiagCRC uint64
	// DiagReduction and CollReduction compare hier against flat at the
	// same (topology, ranks): 1 - hier/flat. Zero on flat scenarios.
	DiagReduction, CollReduction float64
	// Critpath carries the congestion replay (most-queued links) for
	// scenarios small enough to trace.
	Critpath *critpath.Summary
}

// HierResult is the study output plus the knobs that produced it.
type HierResult struct {
	MaxRanks, Iters, DiagLen, ResidLen int
	Load                               float64
	Scenarios                          []HierScenario
}

// hierTopo builds the modeled fabric for one scenario.
func hierTopo(name string, ranks int, load float64) (*netmodel.Topology, error) {
	var t *netmodel.Topology
	var err error
	switch name {
	case "fat-tree":
		t, err = netmodel.FatTreeCluster(ranks)
	case "dragonfly":
		t, err = netmodel.DragonflyCluster(ranks)
	default:
		err = fmt.Errorf("unknown topology %q (want fat-tree or dragonfly)", name)
	}
	if err != nil {
		return nil, err
	}
	t.SetBackgroundLoad(load)
	return t, nil
}

// hierPayload fills a deterministic rank-and-iteration-seeded payload
// with full-mantissa values in [1, 2) — every bit of every element
// participates in the flat-vs-hier identity check.
func hierPayload(dst []float64, rank, salt int) {
	for i := range dst {
		x := uint64(rank)*0x9e3779b97f4a7c15 + uint64(salt)*0xbf58476d1ce4e5b9 + uint64(i) + 1
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		dst[i] = math.Float64frombits(0x3ff0000000000000 | x>>12)
	}
}

// runHierScenario times the per-step collective sequence of a solver
// iteration — a diagnostics allreduce, a residual max-allreduce, a
// control broadcast, a barrier — at the given scale with collectives
// either flat or hierarchical.
func runHierScenario(opts HierOptions, topoName string, ranks int, hier bool) (HierScenario, error) {
	topo, err := hierTopo(topoName, ranks, opts.Load)
	if err != nil {
		return HierScenario{}, err
	}
	model := netmodel.QDR
	model.Topo = topo

	commOpts := comm.Options{Model: model}
	if hier {
		commOpts.Collectives = comm.CollHier
	}
	var tel *obs.Tracer
	if opts.ReplayMax > 0 && ranks <= opts.ReplayMax {
		tel = obs.NewTracer()
		commOpts.Tracer = obs.NewCommTracer(tel, nil)
	}

	diagT := make([]float64, ranks)
	residT := make([]float64, ranks)
	bcastT := make([]float64, ranks)
	barrierT := make([]float64, ranks)
	var crc uint64
	stats, err := comm.Run(ranks, commOpts, func(r *comm.Rank) error {
		id := r.ID()
		diag := make([]float64, opts.DiagLen)
		resid := make([]float64, opts.ResidLen)
		ctrl := make([]float64, opts.ResidLen)
		var last []float64
		for it := 0; it < opts.Iters; it++ {
			hierPayload(diag, id, 2*it)
			hierPayload(resid, id, 2*it+1)
			t0 := r.Clock().Now()
			last = r.Allreduce(comm.OpSum, diag)
			t1 := r.Clock().Now()
			r.Allreduce(comm.OpMax, resid)
			t2 := r.Clock().Now()
			r.Bcast(0, ctrl)
			t3 := r.Clock().Now()
			r.Barrier()
			t4 := r.Clock().Now()
			diagT[id] += t1 - t0
			residT[id] += t2 - t1
			bcastT[id] += t3 - t2
			barrierT[id] += t4 - t3
		}
		if id == 0 {
			// FNV-1a over the result bits: any single-bit divergence
			// between the flat and hierarchical paths changes it.
			h := uint64(14695981039346656037)
			for _, v := range last {
				b := math.Float64bits(v)
				for s := 0; s < 64; s += 8 {
					h = (h ^ (b >> s & 0xff)) * 1099511628211
				}
			}
			crc = h
		}
		return nil
	})
	if err != nil {
		return HierScenario{}, err
	}

	method := "flat"
	if hier {
		method = "hier"
	}
	worst := func(per []float64) float64 {
		m := 0.0
		for _, v := range per {
			if v > m {
				m = v
			}
		}
		return m / float64(opts.Iters)
	}
	out := HierScenario{
		Scenario: fmt.Sprintf("%s/p%d/%s", topoName, ranks, method),
		Topo:     topoName, Ranks: ranks, Method: method,
		DiagTime: worst(diagT), ResidTime: worst(residT),
		BcastTime: worst(bcastT), BarrierTime: worst(barrierT),
		CollTime: stats.MaxVirtualTime(),
		DiagCRC:  crc,
	}
	if tel != nil {
		replay := topo.ReplayCongestion(critpath.WireFlows(tel.Flows()))
		s := &critpath.Summary{Domain: "virtual", Makespan: replay.Makespan}
		s.AttachCongestion(replay, 8)
		out.Critpath = s
	}
	return out, nil
}

// RunHierStudy measures flat versus hierarchical collectives across
// modeled fabrics and rank counts. Every metric is modeled (virtual
// clocks), so the study is bit-reproducible on any host; it also
// enforces the repo's physics invariant by fingerprinting the allreduce
// result bits and failing if the two methods ever disagree.
func RunHierStudy(opts HierOptions) (*HierResult, error) {
	opts.fill()
	var counts []int
	for p := 256; p <= opts.MaxRanks; p *= 4 {
		counts = append(counts, p)
	}
	if len(counts) == 0 {
		counts = []int{opts.MaxRanks}
	}
	res := &HierResult{
		MaxRanks: opts.MaxRanks, Iters: opts.Iters,
		DiagLen: opts.DiagLen, ResidLen: opts.ResidLen, Load: opts.Load,
	}
	for _, topoName := range opts.Topos {
		for _, p := range counts {
			flat, err := runHierScenario(opts, topoName, p, false)
			if err != nil {
				return nil, fmt.Errorf("hier study %s/p%d/flat: %w", topoName, p, err)
			}
			hier, err := runHierScenario(opts, topoName, p, true)
			if err != nil {
				return nil, fmt.Errorf("hier study %s/p%d/hier: %w", topoName, p, err)
			}
			if flat.DiagCRC != hier.DiagCRC {
				return nil, fmt.Errorf("hier study %s/p%d: allreduce bits diverge between flat (%#x) and hier (%#x)",
					topoName, p, flat.DiagCRC, hier.DiagCRC)
			}
			hier.DiagReduction = 1 - hier.DiagTime/flat.DiagTime
			hier.CollReduction = 1 - hier.CollTime/flat.CollTime
			res.Scenarios = append(res.Scenarios, flat, hier)
		}
	}
	return res, nil
}

// Results converts the study into the unified schema.
func (r *HierResult) Results() []report.BenchResult {
	var out []report.BenchResult
	for _, s := range r.Scenarios {
		metrics := []report.Metric{
			{Name: "coll_time_s", Value: s.CollTime, Unit: "s", Deterministic: true, LessIsBetter: true},
			{Name: "allreduce_diag_s", Value: s.DiagTime, Unit: "s", Deterministic: true, LessIsBetter: true},
			{Name: "allreduce_resid_s", Value: s.ResidTime, Unit: "s", Deterministic: true, LessIsBetter: true},
			{Name: "bcast_s", Value: s.BcastTime, Unit: "s", Deterministic: true, LessIsBetter: true},
			{Name: "barrier_s", Value: s.BarrierTime, Unit: "s", Deterministic: true, LessIsBetter: true},
		}
		if s.Method == "hier" {
			metrics = append(metrics,
				report.Metric{Name: "allreduce_diag_reduction", Value: s.DiagReduction, Unit: "frac", Deterministic: true},
				report.Metric{Name: "coll_time_reduction", Value: s.CollReduction, Unit: "frac", Deterministic: true},
			)
		}
		out = append(out, report.BenchResult{
			Suite:    "scalebench-hier",
			Scenario: s.Scenario,
			Params: map[string]string{
				"topo": s.Topo, "ranks": fmt.Sprint(s.Ranks), "method": s.Method,
				"iters": fmt.Sprint(r.Iters), "diag_len": fmt.Sprint(r.DiagLen),
				"resid_len": fmt.Sprint(r.ResidLen), "load": fmt.Sprint(r.Load),
				"diag_crc": fmt.Sprintf("%#x", s.DiagCRC),
			},
			Metrics:  metrics,
			Critpath: s.Critpath,
		})
	}
	return out
}
