package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/sem"
)

// SweepOptions parameterize the derivative-kernel worker sweep.
type SweepOptions struct {
	N       int                // GLL points per direction (0 = 9)
	Nel     int                // elements (0 = 64)
	Steps   int                // repetitions (0 = 200)
	Variant sem.KernelVariant  // kernel variant (default Optimized)
	Workers []int              // widths to sweep (nil = 1,2,4..NumCPU)
	Each    func(SweepRecord)  // optional per-record progress callback
}

// SweepRecord is one (direction, workers) measurement.
type SweepRecord struct {
	N       int
	Nel     int
	Steps   int
	Dir     string
	Variant string
	Workers int
	Wall    float64
	Gflops  float64
	Speedup float64
	NumCPU  int
}

// WorkerCounts returns 1, 2, 4, ... plus NumCPU, deduplicated — the
// default sweep widths.
func WorkerCounts() []int {
	var ws []int
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		ws = append(ws, w)
	}
	if last := ws[len(ws)-1]; last != runtime.NumCPU() {
		ws = append(ws, runtime.NumCPU())
	}
	return ws
}

// WorkerSweep times the derivative kernel across worker counts. The
// element loop is the only thing that parallelizes; numerical results
// are bit-identical at every width (the solver's determinism test pins
// that), so this is purely a wall-clock measurement — noisy, unlike the
// modeled studies.
func WorkerSweep(opts SweepOptions) []SweepRecord {
	n, nel, steps := opts.N, opts.Nel, opts.Steps
	if n == 0 {
		n = 9
	}
	if nel == 0 {
		nel = 64
	}
	if steps == 0 {
		steps = 200
	}
	v := opts.Variant
	widths := opts.Workers
	if widths == nil {
		widths = WorkerCounts()
	}

	ref := sem.NewRef1D(n)
	n3 := n * n * n
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, nel*n3)
	for i := range u {
		u[i] = rng.Float64()
	}
	du := make([]float64, len(u))

	var records []SweepRecord
	serial := map[string]float64{}
	for _, w := range widths {
		pl := pool.New(w)
		for _, dir := range []sem.Direction{sem.DirT, sem.DirR, sem.DirS} {
			start := time.Now()
			var ops sem.OpCount
			for s := 0; s < steps; s++ {
				ops = ops.Plus(sem.DerivPool(pl, dir, v, ref, u, du, nel))
			}
			wall := time.Since(start).Seconds()
			if _, ok := serial[dir.String()]; !ok {
				serial[dir.String()] = wall
			}
			rec := SweepRecord{
				N: n, Nel: nel, Steps: steps,
				Dir: dir.String(), Variant: v.String(), Workers: w,
				Wall: wall, Gflops: float64(ops.Flops()) / wall / 1e9,
				Speedup: serial[dir.String()] / wall, NumCPU: runtime.NumCPU(),
			}
			records = append(records, rec)
			if opts.Each != nil {
				opts.Each(rec)
			}
		}
		pl.Close()
	}
	return records
}

// SweepResults converts sweep records into the unified schema.
func SweepResults(records []SweepRecord) []report.BenchResult {
	var out []report.BenchResult
	for _, r := range records {
		out = append(out, report.BenchResult{
			Suite:    "kernelbench",
			Scenario: fmt.Sprintf("%s/%s/workers=%d", r.Dir, r.Variant, r.Workers),
			Params: map[string]string{
				"n": fmt.Sprint(r.N), "nel": fmt.Sprint(r.Nel), "steps": fmt.Sprint(r.Steps),
			},
			Metrics: []report.Metric{
				{Name: "wall_seconds", Value: r.Wall, Unit: "s", LessIsBetter: true},
				{Name: "gflops_per_sec", Value: r.Gflops, Unit: "gflop/s"},
				{Name: "speedup_vs_serial", Value: r.Speedup, Unit: "x"},
			},
		})
	}
	return out
}
