package bench

import "testing"

// The small-scale study must show a hierarchical win on the congested
// diagnostics allreduce, produce bit-identical physics across methods
// (RunHierStudy errors out internally if not), and be deterministic.
func TestHierStudySmall(t *testing.T) {
	opts := HierOptions{MaxRanks: 256, Topos: []string{"fat-tree"}, Iters: 2}
	res, err := RunHierStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(res.Scenarios))
	}
	flat, hier := res.Scenarios[0], res.Scenarios[1]
	if flat.Method != "flat" || hier.Method != "hier" {
		t.Fatalf("scenario order: %s, %s", flat.Scenario, hier.Scenario)
	}
	if flat.DiagCRC != hier.DiagCRC {
		t.Fatalf("crc mismatch survived the study: %#x vs %#x", flat.DiagCRC, hier.DiagCRC)
	}
	if hier.DiagReduction <= 0 {
		t.Errorf("hier diag allreduce not faster: reduction %.3f (flat %.3g s, hier %.3g s)",
			hier.DiagReduction, flat.DiagTime, hier.DiagTime)
	}
	if hier.Critpath == nil || len(hier.Critpath.CongestedLinks) == 0 {
		t.Error("256-rank scenario should carry a congestion replay")
	}

	again, err := RunHierStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Scenarios {
		a, b := res.Scenarios[i], again.Scenarios[i]
		if a.CollTime != b.CollTime || a.DiagTime != b.DiagTime || a.DiagCRC != b.DiagCRC {
			t.Errorf("%s not deterministic: coll %v vs %v, diag %v vs %v, crc %#x vs %#x",
				a.Scenario, a.CollTime, b.CollTime, a.DiagTime, b.DiagTime, a.DiagCRC, b.DiagCRC)
		}
	}

	results := res.Results()
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if _, ok := results[0].Metric("allreduce_diag_reduction"); ok {
		t.Error("flat scenario must not carry a reduction metric")
	}
	if m, ok := results[1].Metric("allreduce_diag_reduction"); !ok || m.Value != hier.DiagReduction {
		t.Errorf("hier reduction metric: %+v, want %v", m, hier.DiagReduction)
	}
}

// The dragonfly fabric must support the study shapes too.
func TestHierStudyDragonflySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 512 rank goroutines")
	}
	res, err := RunHierStudy(HierOptions{MaxRanks: 256, Topos: []string{"dragonfly"}, Iters: 1, ReplayMax: -1})
	if err != nil {
		t.Fatal(err)
	}
	hier := res.Scenarios[1]
	if hier.DiagReduction <= 0 {
		t.Errorf("hier diag allreduce not faster on dragonfly: reduction %.3f", hier.DiagReduction)
	}
}
