package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/report"
)

// AllocsRecord is one exchange method's steady-state allocation rate.
type AllocsRecord struct {
	Method string
	PerOp  float64
}

// AllocsGuard measures steady-state heap allocations per gather-scatter
// exchange for every method — the zero-alloc acceptance bar of the gs
// package, runnable outside `go test` so benchdiff can track it. GC is
// pinned during the measurement so sync.Pool contents are stable; the
// residual count is a few bookkeeping allocations from the fence
// barriers, far below one per op.
func AllocsGuard() ([]AllocsRecord, error) {
	const p = 8
	const opsPerRank = 20
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	benchIDs := func(r, p, blk, overlap int) []int64 {
		ids := make([]int64, blk)
		ring := int64(p * (blk - overlap))
		base := int64(r * (blk - overlap))
		for i := range ids {
			ids[i] = (base + int64(i)) % ring
		}
		return ids
	}

	var out []AllocsRecord
	for _, m := range []gs.Method{gs.Pairwise, gs.CrystalRouter, gs.AllReduce} {
		var mallocs uint64
		_, err := comm.RunSimple(p, func(r *comm.Rank) error {
			g := gs.Setup(r, benchIDs(r.ID(), p, 512, 32))
			vals := make([]float64, 512)
			for i := range vals {
				vals[i] = float64(i%7) + 1
			}
			for w := 0; w < 3; w++ {
				g.OpWith(vals, comm.OpSum, m)
			}
			r.Barrier()
			var m0, m1 runtime.MemStats
			if r.ID() == 0 {
				runtime.ReadMemStats(&m0)
			}
			r.Barrier()
			for i := 0; i < opsPerRank; i++ {
				g.OpWith(vals, comm.OpSum, m)
			}
			r.Barrier()
			if r.ID() == 0 {
				runtime.ReadMemStats(&m1)
				atomic.StoreUint64(&mallocs, m1.Mallocs-m0.Mallocs)
			}
			r.Barrier()
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("allocs guard (%v): %w", m, err)
		}
		out = append(out, AllocsRecord{
			Method: m.String(),
			PerOp:  float64(mallocs) / float64(p*opsPerRank),
		})
	}
	return out, nil
}

// AllocsResults converts guard records into the unified schema. The
// rate is not bit-deterministic (scheduling can shift a pool refill),
// so the metric carries its own absolute bar instead: anything under
// one allocation per op is steady-state clean.
func AllocsResults(recs []AllocsRecord) []report.BenchResult {
	var out []report.BenchResult
	for _, r := range recs {
		out = append(out, report.BenchResult{
			Suite:    "allocs",
			Scenario: "gs/" + r.Method,
			Metrics: []report.Metric{
				{Name: "allocs_per_op", Value: r.PerOp, Unit: "allocs/op", LessIsBetter: true},
			},
		})
	}
	return out
}
