package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/report"
)

// runStudies runs the traced loadbal study twice (identical config) and
// once with an injected hot-rank slowdown, shared across the tests
// below to keep the suite fast.
var studyCache struct {
	a, b, hot *LoadbalResult
}

func studies(t *testing.T) (*LoadbalResult, *LoadbalResult, *LoadbalResult) {
	t.Helper()
	if studyCache.a == nil {
		var err error
		if studyCache.a, err = LoadbalStudy(LoadbalOptions{Trace: true}); err != nil {
			t.Fatal(err)
		}
		if studyCache.b, err = LoadbalStudy(LoadbalOptions{Trace: true}); err != nil {
			t.Fatal(err)
		}
		if studyCache.hot, err = LoadbalStudy(LoadbalOptions{Trace: true, HotFactor: 16}); err != nil {
			t.Fatal(err)
		}
	}
	return studyCache.a, studyCache.b, studyCache.hot
}

func trajOf(res []report.BenchResult) *report.Trajectory {
	return &report.Trajectory{SchemaVersion: report.SchemaVersion, Results: res}
}

// Modeled makespans must be bit-identical across runs — the property
// that lets benchdiff gate them tightly.
func TestLoadbalStudyDeterministic(t *testing.T) {
	a, b, _ := studies(t)
	for i := range a.Scenarios {
		if a.Scenarios[i].Makespan != b.Scenarios[i].Makespan {
			t.Errorf("%s: makespan %v vs %v, want bit-identical",
				a.Scenarios[i].Scenario, a.Scenarios[i].Makespan, b.Scenarios[i].Makespan)
		}
		if a.Scenarios[i].MPIFrac != b.Scenarios[i].MPIFrac {
			t.Errorf("%s: mpi_frac differs across identical runs", a.Scenarios[i].Scenario)
		}
	}
}

// The acceptance criterion: critpath attribution sums to the modeled
// makespan within 1e-9 on a traced scalebench(-style) run.
func TestCritpathAttributionSumsToMakespan(t *testing.T) {
	a, _, _ := studies(t)
	for _, s := range a.Scenarios {
		if s.Critpath == nil {
			t.Fatalf("%s: no critpath summary on a traced run", s.Scenario)
		}
		var sum float64
		for _, c := range s.Critpath.Cells {
			sum += c.Total()
		}
		if math.Abs(sum-s.Critpath.Makespan) > 1e-9 {
			t.Errorf("%s: attribution sums to %.12f, makespan %.12f (|err| %g > 1e-9)",
				s.Scenario, sum, s.Critpath.Makespan, math.Abs(sum-s.Critpath.Makespan))
		}
		if s.Critpath.Makespan <= 0 || s.Critpath.Makespan > s.Makespan {
			t.Errorf("%s: critpath makespan %v vs run makespan %v",
				s.Scenario, s.Critpath.Makespan, s.Makespan)
		}
	}
}

// Identical fresh runs must diff clean: zero regressions, modeled
// metrics bit-stable.
func TestCompareIdenticalRunsClean(t *testing.T) {
	a, b, _ := studies(t)
	cmp := Compare(trajOf(a.Results()), trajOf(b.Results()), CompareOptions{})
	if len(cmp.Regressions) != 0 {
		t.Fatalf("identical runs regressed: %+v", cmp.Regressions)
	}
	for _, d := range cmp.Deltas {
		if d.Deterministic && d.Rel != 0 {
			t.Errorf("deterministic metric %s/%s drifted: %v -> %v", d.Key, d.Metric, d.Base, d.Cur)
		}
	}
}

// An injected hot-rank slowdown must be caught as a regression with a
// critical-path blame line naming the responsible phase.
func TestCompareCatchesInjectedSkew(t *testing.T) {
	a, _, hot := studies(t)
	cmp := Compare(trajOf(a.Results()), trajOf(hot.Results()), CompareOptions{})
	if len(cmp.Regressions) == 0 {
		t.Fatal("4x->16x hot-rank skew not caught as a regression")
	}
	var skewRegressed bool
	for _, d := range cmp.Regressions {
		if d.Key == "scalebench-loadbal/skewed" && d.Metric == "makespan_s" {
			skewRegressed = true
		}
	}
	if !skewRegressed {
		t.Fatalf("skewed makespan not among regressions: %+v", cmp.Regressions)
	}
	lines := cmp.Blame["scalebench-loadbal/skewed"]
	if len(lines) == 0 {
		t.Fatal("no critpath blame for the skew regression")
	}
	phases := []string{"rhs", "gs-exchange", "rk", "reduce", "rebalance", "recovery", "other"}
	var named bool
	for _, l := range lines {
		for _, p := range phases {
			if strings.Contains(l.Text, p) {
				named = true
			}
		}
	}
	if !named {
		t.Fatalf("blame lines name no phase: %+v", lines)
	}
	out := cmp.Format(false)
	if !strings.Contains(out, "blame:") {
		t.Fatalf("Format missing blame lines:\n%s", out)
	}
}

// Wall-clock metrics must not gate by default (report-only), and must
// gate when a wall threshold is set.
func TestCompareWallGating(t *testing.T) {
	base := trajOf([]report.BenchResult{{
		Suite: "kernelbench", Scenario: "dudr/optimized/workers=1",
		Metrics: []report.Metric{{Name: "wall_seconds", Value: 1.0, Unit: "s", LessIsBetter: true}},
	}})
	cur := trajOf([]report.BenchResult{{
		Suite: "kernelbench", Scenario: "dudr/optimized/workers=1",
		Metrics: []report.Metric{{Name: "wall_seconds", Value: 1.5, Unit: "s", LessIsBetter: true}},
	}})
	cmp := Compare(base, cur, CompareOptions{})
	if len(cmp.Regressions) != 0 {
		t.Fatalf("wall metric gated without -wall-threshold: %+v", cmp.Regressions)
	}
	if cmp.Deltas[0].Note == "" {
		t.Fatal("ungated wall delta should carry a report-only note")
	}
	cmp = Compare(base, cur, CompareOptions{WallThreshold: 0.1})
	if len(cmp.Regressions) != 1 {
		t.Fatalf("wall regression not caught under -wall-threshold: %+v", cmp.Deltas)
	}
	// A CI wider than the excursion suppresses the regression.
	cmp = Compare(base, cur, CompareOptions{
		WallThreshold: 0.1,
		WallCI:        map[string]float64{"kernelbench/dudr/optimized/workers=1|wall_seconds": 0.6},
	})
	if len(cmp.Regressions) != 0 {
		t.Fatalf("regression within the noise CI must not gate: %+v", cmp.Regressions)
	}
}

// The allocs guard's absolute bar: small drifts near zero never gate,
// crossing one alloc/op does.
func TestCompareAllocsAbsoluteBar(t *testing.T) {
	mk := func(v float64) *report.Trajectory {
		return trajOf(AllocsResults([]AllocsRecord{{Method: "pairwise", PerOp: v}}))
	}
	if cmp := Compare(mk(0.02), mk(0.9), CompareOptions{}); len(cmp.Regressions) != 0 {
		t.Fatalf("sub-1/op drift gated: %+v", cmp.Regressions)
	}
	if cmp := Compare(mk(0.02), mk(40), CompareOptions{}); len(cmp.Regressions) != 1 {
		t.Fatal("leaky exchange (40 allocs/op) not caught")
	}
}

func TestWorkerSweepSmall(t *testing.T) {
	recs := WorkerSweep(SweepOptions{N: 5, Nel: 4, Steps: 2, Workers: []int{1}})
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 directions", len(recs))
	}
	for _, r := range recs {
		if r.Wall <= 0 || r.Gflops <= 0 || r.Speedup != 1 {
			t.Fatalf("record = %+v", r)
		}
	}
	res := SweepResults(recs)
	if len(res) != 3 || res[0].Suite != "kernelbench" {
		t.Fatalf("results = %+v", res)
	}
}
