package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs/critpath"
	"repro/internal/report"
)

// CompareOptions tune regression detection.
type CompareOptions struct {
	// Threshold is the relative worsening tolerated on deterministic
	// (modeled) metrics before a regression is declared. Modeled paths
	// are bit-stable, so this only has to absorb intentional small
	// drifts; default 0.02.
	Threshold float64
	// WallThreshold gates wall-clock metrics when > 0. The default 0
	// reports wall deltas without gating: baselines recorded on a
	// different host are not comparable wall-wise.
	WallThreshold float64
	// WallCI maps "suite/scenario|metric" to an absolute confidence
	// half-width for the fresh measurement (from repetitions); a wall
	// regression must exceed both the relative threshold and the CI.
	WallCI map[string]float64
	// TopBlame bounds the critical-path blame lines per regression
	// (default 3).
	TopBlame int
}

// Delta is one metric compared across two trajectories.
type Delta struct {
	Key           string  // suite/scenario
	Metric        string
	Unit          string
	Base, Cur     float64
	Rel           float64 // (cur-base)/|base|, 0 if base == 0
	Deterministic bool
	Worse         bool // moved in the metric's bad direction
	Regression    bool // worse beyond the applicable threshold
	Note          string
}

// Comparison is the result of diffing a fresh run against a baseline.
type Comparison struct {
	Deltas      []Delta
	Regressions []Delta
	// Missing lists baseline result keys the fresh run did not produce;
	// New lists fresh keys absent from the baseline (not regressions).
	Missing []string
	New     []string
	// Blame maps a regressed key to its critical-path blame lines, when
	// both runs carried a critpath summary.
	Blame map[string][]critpath.BlameLine
}

// absFloor returns the absolute worsening a unit tolerates regardless
// of relative threshold — the near-zero-baseline guard. The allocation
// guard's bar is "under one per op", not a percentage of ~0.
func absFloor(unit string) float64 {
	if unit == "allocs/op" {
		return 1.0
	}
	return 0
}

// Compare diffs cur against base, scenario by scenario, metric by
// metric. Metrics present on only one side are skipped (schema growth
// is not a regression).
func Compare(base, cur *report.Trajectory, opts CompareOptions) *Comparison {
	if opts.Threshold == 0 {
		opts.Threshold = 0.02
	}
	if opts.TopBlame == 0 {
		opts.TopBlame = 3
	}
	out := &Comparison{Blame: map[string][]critpath.BlameLine{}}
	for _, key := range base.Keys() {
		br := base.Find(key)
		cr := cur.Find(key)
		if cr == nil {
			out.Missing = append(out.Missing, key)
			continue
		}
		keyRegressed := false
		for _, bm := range br.Metrics {
			cm, ok := cr.Metric(bm.Name)
			if !ok {
				continue
			}
			d := Delta{
				Key: key, Metric: bm.Name, Unit: bm.Unit,
				Base: bm.Value, Cur: cm.Value,
				Deterministic: bm.Deterministic,
			}
			if bm.Value != 0 {
				d.Rel = (cm.Value - bm.Value) / abs(bm.Value)
			}
			if bm.LessIsBetter {
				d.Worse = cm.Value > bm.Value
			} else {
				d.Worse = cm.Value < bm.Value
			}
			worseBy := abs(cm.Value - bm.Value)
			switch {
			case !d.Worse:
				// Improvement or equal: never a regression.
			case bm.Deterministic:
				d.Regression = worseBy > max(opts.Threshold*abs(bm.Value), absFloor(bm.Unit))
			case bm.Unit == "allocs/op":
				// Absolute bar independent of host speed.
				d.Regression = worseBy > absFloor(bm.Unit)
			case opts.WallThreshold > 0:
				bound := max(opts.WallThreshold*abs(bm.Value), absFloor(bm.Unit))
				if ci := opts.WallCI[key+"|"+bm.Name]; ci > bound {
					bound = ci
				}
				d.Regression = worseBy > bound
			default:
				d.Note = "wall-clock, report-only"
			}
			out.Deltas = append(out.Deltas, d)
			if d.Regression {
				out.Regressions = append(out.Regressions, d)
				keyRegressed = true
			}
		}
		if keyRegressed && br.Critpath != nil && cr.Critpath != nil {
			if lines := critpath.Blame(*br.Critpath, *cr.Critpath, opts.TopBlame); len(lines) > 0 {
				out.Blame[key] = lines
			}
		}
	}
	for _, key := range cur.Keys() {
		if base.Find(key) == nil {
			out.New = append(out.New, key)
		}
	}
	return out
}

// Format renders the comparison for terminals: one line per metric,
// regressions marked, blame lines under their scenario.
func (c *Comparison) Format(verbose bool) string {
	var b strings.Builder
	lastKey := ""
	blamed := map[string]bool{}
	for _, d := range c.Deltas {
		if !verbose && !d.Worse && d.Rel == 0 {
			continue // bit-identical: only counted, not listed
		}
		if d.Key != lastKey {
			fmt.Fprintf(&b, "%s:\n", d.Key)
			lastKey = d.Key
		}
		mark := " "
		if d.Regression {
			mark = "✗"
		} else if d.Worse {
			mark = "~"
		}
		fmt.Fprintf(&b, "  %s %-22s %14.9g -> %-14.9g %+7.2f%%", mark, d.Metric, d.Base, d.Cur, 100*d.Rel)
		if d.Note != "" {
			fmt.Fprintf(&b, "  (%s)", d.Note)
		}
		b.WriteString("\n")
		if d.Regression && !blamed[d.Key] {
			blamed[d.Key] = true
			for _, l := range c.Blame[d.Key] {
				fmt.Fprintf(&b, "      blame: %s\n", l.Text)
			}
		}
	}
	stable := 0
	for _, d := range c.Deltas {
		if d.Rel == 0 {
			stable++
		}
	}
	fmt.Fprintf(&b, "%d metrics compared, %d bit-identical, %d regressions\n",
		len(c.Deltas), stable, len(c.Regressions))
	for _, k := range c.Missing {
		fmt.Fprintf(&b, "missing from fresh run: %s\n", k)
	}
	if verbose {
		sort.Strings(c.New)
		for _, k := range c.New {
			fmt.Fprintf(&b, "new (no baseline): %s\n", k)
		}
	}
	return b.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
