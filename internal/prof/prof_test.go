package prof

import (
	"strings"
	"testing"
	"time"
)

func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func TestFlatProfileBasics(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		stop := p.Start("kernel")
		spin(2 * time.Millisecond)
		stop()
	}
	p.Finish()
	flat := p.Flat()
	if len(flat) != 1 {
		t.Fatalf("regions = %d", len(flat))
	}
	r := flat[0]
	if r.Name != "kernel" || r.Calls != 3 {
		t.Fatalf("region = %+v", r)
	}
	if r.Self < 0.005 || r.Total < r.Self {
		t.Fatalf("timings inconsistent: %+v", r)
	}
	if p.Elapsed() < r.Total {
		t.Fatalf("elapsed %v < region total %v", p.Elapsed(), r.Total)
	}
}

func TestNestedSelfVsTotal(t *testing.T) {
	p := New()
	stopOuter := p.Start("outer")
	spin(time.Millisecond)
	stopInner := p.Start("inner")
	spin(4 * time.Millisecond)
	stopInner()
	stopOuter()
	p.Finish()

	byName := map[string]RegionStat{}
	for _, r := range p.Flat() {
		byName[r.Name] = r
	}
	outer, inner := byName["outer"], byName["inner"]
	if outer.Total < inner.Total {
		t.Fatalf("outer total %v < inner total %v", outer.Total, inner.Total)
	}
	// Outer self excludes inner: roughly 1ms vs 4ms.
	if outer.Self >= inner.Self {
		t.Fatalf("outer self %v should be well below inner self %v", outer.Self, inner.Self)
	}
	if diff := outer.Total - outer.Self - inner.Total; diff > 1e-4 && diff < -1e-4 {
		t.Fatalf("self/total bookkeeping off by %v", diff)
	}
}

func TestCallGraphEdges(t *testing.T) {
	p := New()
	stop := p.Start("step")
	p.Start("flux")()
	p.Start("flux")()
	p.Start("exchange")()
	stop()
	p.Finish()

	edges := p.Edges()
	got := map[string]int64{}
	for _, e := range edges {
		got[e.Parent+"->"+e.Child] = e.Calls
	}
	if got["<root>->step"] != 1 {
		t.Fatalf("root edge missing: %v", got)
	}
	if got["step->flux"] != 2 {
		t.Fatalf("step->flux calls = %d", got["step->flux"])
	}
	if got["step->exchange"] != 1 {
		t.Fatalf("step->exchange calls = %d", got["step->exchange"])
	}
}

func TestUnbalancedStopPanics(t *testing.T) {
	p := New()
	stopA := p.Start("a")
	p.Start("b") // never stopped before stopA
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced stop must panic")
		}
	}()
	stopA()
}

func TestMergeAcrossRanks(t *testing.T) {
	mk := func() *Profiler {
		p := New()
		stop := p.Start("work")
		spin(time.Millisecond)
		stop()
		p.Finish()
		return p
	}
	ps := []*Profiler{mk(), mk(), mk()}
	flat, edges, elapsed := Merge(ps)
	if len(flat) != 1 || flat[0].Calls != 3 {
		t.Fatalf("merged flat = %+v", flat)
	}
	if len(edges) != 1 || edges[0].Calls != 3 {
		t.Fatalf("merged edges = %+v", edges)
	}
	if elapsed < flat[0].Total {
		t.Fatalf("merged elapsed %v < total %v", elapsed, flat[0].Total)
	}
}

func TestFormatFlat(t *testing.T) {
	p := New()
	p.Start("derivative")()
	p.Finish()
	out := FormatFlat(p.Flat(), p.Elapsed())
	if !strings.Contains(out, "derivative") || !strings.Contains(out, "% time") {
		t.Fatalf("format missing columns:\n%s", out)
	}
}

func TestFormatCallGraph(t *testing.T) {
	p := New()
	stop := p.Start("a")
	p.Start("b")()
	stop()
	p.Finish()
	out := FormatCallGraph(p.Edges())
	if !strings.Contains(out, "a -> b") {
		t.Fatalf("call graph missing edge:\n%s", out)
	}
}

func TestFinishIdempotent(t *testing.T) {
	p := New()
	p.Start("x")()
	p.Finish()
	e1 := p.Elapsed()
	p.Finish()
	if p.Elapsed() != e1 {
		t.Fatal("double Finish changed elapsed")
	}
	// Reopening the window accumulates.
	p.Start("y")()
	p.Finish()
	if p.Elapsed() < e1 {
		t.Fatal("elapsed shrank after reopen")
	}
}
