// Package prof is a lightweight execution profiler standing in for the
// gprof view of Figure 4: applications bracket named regions, and the
// profiler produces a flat profile (self time, total time, call counts,
// percentages) plus parent->child call-graph edges. One Profiler belongs
// to one rank; Merge aggregates across ranks.
package prof

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profiler accumulates region timings for a single goroutine (rank). It
// is not safe for concurrent use; create one per rank and Merge.
type Profiler struct {
	regions map[string]*regionAcc
	edges   map[[2]string]*edgeAcc
	stack   []frame
	began   time.Time
	running bool
	elapsed float64
}

type regionAcc struct {
	calls       int64
	total, self float64
}

type edgeAcc struct {
	calls int64
	total float64
}

type frame struct {
	name  string
	start time.Time
	child float64
}

// New returns an empty profiler; its wall-clock window opens at the first
// Start and closes at Finish.
func New() *Profiler {
	return &Profiler{
		regions: make(map[string]*regionAcc),
		edges:   make(map[[2]string]*edgeAcc),
	}
}

// Start opens a region and returns the function closing it. Regions
// nest: time inside an inner region is charged to the inner region's
// self time and to the outer region's total (inclusive) time only.
//
//	defer p.Start("compute_flux")()
func (p *Profiler) Start(name string) func() {
	if !p.running {
		p.running = true
		p.began = time.Now()
	}
	p.stack = append(p.stack, frame{name: name, start: time.Now()})
	depth := len(p.stack)
	return func() {
		if len(p.stack) != depth {
			panic(fmt.Sprintf("prof: unbalanced Stop for region %q (depth %d, want %d)",
				name, len(p.stack), depth))
		}
		f := p.stack[depth-1]
		p.stack = p.stack[:depth-1]
		total := time.Since(f.start).Seconds()
		acc, ok := p.regions[f.name]
		if !ok {
			acc = &regionAcc{}
			p.regions[f.name] = acc
		}
		acc.calls++
		acc.total += total
		acc.self += total - f.child
		parent := "<root>"
		if depth >= 2 {
			p.stack[depth-2].child += total
			parent = p.stack[depth-2].name
		}
		ek := [2]string{parent, f.name}
		e, ok := p.edges[ek]
		if !ok {
			e = &edgeAcc{}
			p.edges[ek] = e
		}
		e.calls++
		e.total += total
	}
}

// Finish closes the profiler's wall-clock window; further Starts reopen
// it. Finish is idempotent.
func (p *Profiler) Finish() {
	if p.running {
		p.elapsed += time.Since(p.began).Seconds()
		p.running = false
	}
}

// Elapsed returns the total wall seconds between the first Start and
// Finish.
func (p *Profiler) Elapsed() float64 {
	if p.running {
		return p.elapsed + time.Since(p.began).Seconds()
	}
	return p.elapsed
}

// RegionStat is one row of the flat profile.
type RegionStat struct {
	Name  string
	Calls int64
	Total float64 // inclusive seconds
	Self  float64 // exclusive seconds
}

// Edge is one parent->child arc of the call graph.
type Edge struct {
	Parent, Child string
	Calls         int64
	Total         float64
}

// Flat returns the flat profile sorted by descending self time — the
// layout of a gprof flat profile.
func (p *Profiler) Flat() []RegionStat {
	out := make([]RegionStat, 0, len(p.regions))
	for name, a := range p.regions {
		out = append(out, RegionStat{Name: name, Calls: a.calls, Total: a.total, Self: a.self})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Edges returns the call-graph arcs sorted by descending time.
func (p *Profiler) Edges() []Edge {
	out := make([]Edge, 0, len(p.edges))
	for k, e := range p.edges {
		out = append(out, Edge{Parent: k[0], Child: k[1], Calls: e.calls, Total: e.total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Parent+out[i].Child < out[j].Parent+out[j].Child
	})
	return out
}

// Merge returns a profiler-less aggregate of many ranks' flat profiles:
// summed calls and times per region, plus the summed elapsed window.
func Merge(profs []*Profiler) ([]RegionStat, []Edge, float64) {
	regions := map[string]*RegionStat{}
	edges := map[[2]string]*Edge{}
	elapsed := 0.0
	for _, p := range profs {
		elapsed += p.Elapsed()
		for _, r := range p.Flat() {
			a, ok := regions[r.Name]
			if !ok {
				a = &RegionStat{Name: r.Name}
				regions[r.Name] = a
			}
			a.Calls += r.Calls
			a.Total += r.Total
			a.Self += r.Self
		}
		for _, e := range p.Edges() {
			k := [2]string{e.Parent, e.Child}
			a, ok := edges[k]
			if !ok {
				a = &Edge{Parent: e.Parent, Child: e.Child}
				edges[k] = a
			}
			a.Calls += e.Calls
			a.Total += e.Total
		}
	}
	rs := make([]RegionStat, 0, len(regions))
	for _, r := range regions {
		rs = append(rs, *r)
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Self != rs[j].Self {
			return rs[i].Self > rs[j].Self
		}
		return rs[i].Name < rs[j].Name
	})
	es := make([]Edge, 0, len(edges))
	for _, e := range edges {
		es = append(es, *e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Total != es[j].Total {
			return es[i].Total > es[j].Total
		}
		return es[i].Parent+es[i].Child < es[j].Parent+es[j].Child
	})
	return rs, es, elapsed
}

// FormatFlat renders a flat profile as a gprof-style text table; total is
// the time base for the percentage column (pass the merged elapsed time).
func FormatFlat(stats []RegionStat, total float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s %12s %12s %10s  %s\n", "% time", "self(s)", "total(s)", "calls", "name")
	for _, r := range stats {
		pct := 0.0
		if total > 0 {
			pct = 100 * r.Self / total
		}
		fmt.Fprintf(&b, "%6.2f%% %12.6f %12.6f %10d  %s\n", pct, r.Self, r.Total, r.Calls, r.Name)
	}
	return b.String()
}

// FormatCallGraph renders the call-graph arcs as indented text.
func FormatCallGraph(edges []Edge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s  %s\n", "total(s)", "calls", "parent -> child")
	for _, e := range edges {
		fmt.Fprintf(&b, "%12.6f %10d  %s -> %s\n", e.Total, e.Calls, e.Parent, e.Child)
	}
	return b.String()
}
