package nekbone

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/gs"
)

func TestMultiplicityCorrect(t *testing.T) {
	// On a single rank with 2x1x1 elements, interior points have
	// multiplicity 1 and the shared face multiplicity 2.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 4, 1)
		cfg.ElemGrid = [3]int{2, 1, 1}
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		n := cfg.N
		n3 := n * n * n
		// Element 0's i = n-1 plane is shared.
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				shared := s.invMult[(n-1)+n*j+n*n*k]
				if math.Abs(shared-0.5) > 1e-14 {
					t.Errorf("shared point invMult = %v, want 0.5", shared)
				}
				interior := s.invMult[1+n*j+n*n*k]
				if interior != 1 {
					t.Errorf("interior point invMult = %v, want 1", interior)
				}
			}
		}
		_ = n3
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAxSymmetricPositiveDefinite(t *testing.T) {
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 4, 1)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		n := len(s.invMult)
		rng := rand.New(rand.NewSource(int64(7))) // same seed everywhere
		mkContinuous := func() []float64 {
			u := make([]float64, n)
			for i := range u {
				u[i] = rng.NormFloat64()
			}
			// Make continuous: average shared points.
			s.DSSum(u)
			for i := range u {
				u[i] *= s.invMult[i]
			}
			return u
		}
		u := mkContinuous()
		v := mkContinuous()
		au := make([]float64, n)
		av := make([]float64, n)
		s.Ax(u, au)
		s.Ax(v, av)
		uav := s.GLSC2(u, av)
		vau := s.GLSC2(v, au)
		if math.Abs(uav-vau) > 1e-9*(1+math.Abs(uav)) {
			t.Errorf("Ax not symmetric: <u,Av> = %v, <v,Au> = %v", uav, vau)
		}
		uau := s.GLSC2(u, au)
		if uau <= 0 {
			t.Errorf("Ax not positive definite: <u,Au> = %v", uau)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAxConstantIsMassOnly(t *testing.T) {
	// K annihilates constants, so A*1 must equal the (assembled) mass
	// term: dssum(sigma * M * 1).
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 5, 1)
		cfg.ElemGrid = [3]int{2, 2, 1}
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		nPts := len(s.invMult)
		one := make([]float64, nPts)
		for i := range one {
			one[i] = 1
		}
		w := make([]float64, nPts)
		s.Ax(one, w)
		// Expected: dssum of sigma/8 * w3.
		want := make([]float64, nPts)
		for i := range want {
			want[i] = s.Cfg.MassShift / 8 * s.w3[i]
		}
		s.DSSum(want)
		for i := range w {
			if math.Abs(w[i]-want[i]) > 1e-10 {
				t.Errorf("A*1 at %d = %v, want %v", i, w[i], want[i])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCGMatchesDenseSolve(t *testing.T) {
	// Single element, N=3: assemble the dense operator by applying Ax to
	// unit vectors, solve directly by Gaussian elimination, and compare
	// with CG.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 3, 1)
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		n := len(s.invMult) // 27
		amat := make([][]float64, n)
		e := make([]float64, n)
		for j := 0; j < n; j++ {
			for i := range e {
				e[i] = 0
			}
			e[j] = 1
			col := make([]float64, n)
			s.Ax(e, col)
			amat[j] = col
		}
		f := make([]float64, n)
		for i := range f {
			f[i] = math.Sin(float64(i))
		}
		// Dense Gaussian elimination on A^T ordered as rows (A is
		// symmetric so columns == rows).
		mat := make([][]float64, n)
		rhs := append([]float64(nil), f...)
		for i := range mat {
			mat[i] = make([]float64, n)
			for j := range mat[i] {
				mat[i][j] = amat[j][i]
			}
		}
		for col := 0; col < n; col++ {
			piv := col
			for row := col + 1; row < n; row++ {
				if math.Abs(mat[row][col]) > math.Abs(mat[piv][col]) {
					piv = row
				}
			}
			mat[col], mat[piv] = mat[piv], mat[col]
			rhs[col], rhs[piv] = rhs[piv], rhs[col]
			for row := col + 1; row < n; row++ {
				fct := mat[row][col] / mat[col][col]
				for j := col; j < n; j++ {
					mat[row][j] -= fct * mat[col][j]
				}
				rhs[row] -= fct * rhs[col]
			}
		}
		direct := make([]float64, n)
		for row := n - 1; row >= 0; row-- {
			v := rhs[row]
			for j := row + 1; j < n; j++ {
				v -= mat[row][j] * direct[j]
			}
			direct[row] = v / mat[row][row]
		}

		x, res := s.CG(f, 400)
		if len(res) == 0 {
			t.Error("CG made no iterations")
			return nil
		}
		for i := range x {
			if math.Abs(x[i]-direct[i]) > 1e-6*(1+math.Abs(direct[i])) {
				t.Errorf("CG[%d] = %v, direct %v", i, x[i], direct[i])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCGResidualDecreases(t *testing.T) {
	_, err := comm.RunSimple(4, func(r *comm.Rank) error {
		cfg := DefaultConfig(4, 6, 1)
		cfg.Iters = 30
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		rep := s.Run()
		if rep.Iters == 0 {
			t.Error("no iterations")
			return nil
		}
		if rep.Residual <= 0 || math.IsNaN(rep.Residual) {
			t.Errorf("bad final residual %v", rep.Residual)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCGConvergesSubstantially(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 5, 2)
		cfg.Iters = 200
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		rep := s.Run()
		if rep.Residual > 1e-6 {
			t.Errorf("CG residual after %d iters = %v, want < 1e-6", rep.Iters, rep.Residual)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelResidualsMatchSerial(t *testing.T) {
	run := func(p int) []float64 {
		var out []float64
		_, err := comm.RunSimple(p, func(r *comm.Rank) error {
			cfg := DefaultConfig(p, 4, 1)
			cfg.ProcGrid = comm.FactorGrid(p)
			cfg.ElemGrid = [3]int{2, 2, 2}
			cfg.Iters = 15
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			rep := s.Run()
			if r.ID() == 0 {
				out = []float64{rep.Residual}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	if math.Abs(serial[0]-parallel[0]) > 1e-8*(1+math.Abs(serial[0])) {
		t.Fatalf("residuals diverge: serial %v vs parallel %v", serial[0], parallel[0])
	}
}

func TestGSMethodsAgreeInCG(t *testing.T) {
	run := func(m gs.Method) float64 {
		var out float64
		_, err := comm.RunSimple(2, func(r *comm.Rank) error {
			cfg := DefaultConfig(2, 4, 1)
			cfg.GSMethod = m
			cfg.Iters = 10
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			rep := s.Run()
			if r.ID() == 0 {
				out = rep.Residual
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(gs.Pairwise)
	for _, m := range []gs.Method{gs.CrystalRouter, gs.AllReduce} {
		if got := run(m); math.Abs(got-ref) > 1e-9*(1+math.Abs(ref)) {
			t.Fatalf("%v residual %v differs from pairwise %v", m, got, ref)
		}
	}
}

func TestNekboneNeighborhoodRicherThanCMT(t *testing.T) {
	// The continuous numbering couples corners/edges: an interior rank
	// in a 3x3x3 processor grid must see 26 neighbors in dssum.
	counts := make([]int, 27)
	_, err := comm.RunSimple(27, func(r *comm.Rank) error {
		cfg := DefaultConfig(27, 3, 1)
		cfg.ProcGrid = [3]int{3, 3, 3}
		cfg.ElemGrid = [3]int{3, 3, 3}
		cfg.Periodic = [3]bool{true, true, true}
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		counts[r.ID()] = len(s.GS().Neighbors())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk, c := range counts {
		if c != 26 {
			t.Fatalf("rank %d has %d dssum neighbors, want 26", rk, c)
		}
	}
}

func TestJacobiPreconditionerAcceleratesCG(t *testing.T) {
	// Jacobi PCG must reach a tighter residual in the same iteration
	// budget than plain CG (the GLL diagonal varies strongly, so the
	// preconditioner has real work to do).
	run := func(jacobi bool) float64 {
		var res float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, 8, 2)
			cfg.Iters = 40
			cfg.Jacobi = jacobi
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			rep := s.Run()
			res = rep.Residual
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	pcg := run(true)
	if pcg >= plain {
		t.Fatalf("Jacobi PCG residual %v not better than plain CG %v", pcg, plain)
	}
}

func TestJacobiSolvesSameSystem(t *testing.T) {
	// Both variants must converge to the same solution.
	solve := func(jacobi bool) []float64 {
		var x []float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			cfg := DefaultConfig(1, 4, 1)
			cfg.Jacobi = jacobi
			s, err := New(r, cfg)
			if err != nil {
				return err
			}
			f := make([]float64, len(s.invMult))
			for i := range f {
				f[i] = math.Sin(float64(i) * 0.1)
			}
			s.DSSum(f)
			for i := range f {
				f[i] *= s.invMult[i]
			}
			x, _ = s.CG(f, 300)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	plain := solve(false)
	pcg := solve(true)
	for i := range plain {
		if math.Abs(plain[i]-pcg[i]) > 1e-6*(1+math.Abs(plain[i])) {
			t.Fatalf("solutions differ at %d: %v vs %v", i, plain[i], pcg[i])
		}
	}
}

func TestJacobiDiagonalPositive(t *testing.T) {
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := DefaultConfig(2, 5, 1)
		cfg.Jacobi = true
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		for i, v := range s.invDiag {
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Errorf("invDiag[%d] = %v", i, v)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJacobiDiagonalMatchesOperator(t *testing.T) {
	// The assembled diagonal must equal e_i . A e_i for unit vectors.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := DefaultConfig(1, 3, 1)
		cfg.ElemGrid = [3]int{2, 1, 1}
		cfg.Jacobi = true
		s, err := New(r, cfg)
		if err != nil {
			return err
		}
		n := len(s.invMult)
		e := make([]float64, n)
		w := make([]float64, n)
		for idx := 0; idx < n; idx += 7 { // sample a few entries
			for i := range e {
				e[i] = 0
			}
			// Unit vector in the assembled space: set every redundant
			// copy of the idx-th global point... sampling only interior
			// points (multiplicity 1) keeps this simple.
			if s.invMult[idx] != 1 {
				continue
			}
			e[idx] = 1
			s.Ax(e, w)
			want := 1 / s.invDiag[idx]
			if math.Abs(w[idx]-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("diag[%d]: Ax gives %v, builder gives %v", idx, w[idx], want)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
