// Package nekbone reimplements the Nekbone mini-app, the reference
// baseline the paper compares CMT-bone against in Figure 7. Nekbone
// distills Nek5000's incompressible-flow solve: a conjugate-gradient
// iteration on a spectral-element Helmholtz system, whose communication
// is the direct-stiffness summation (dssum) — a gather-scatter over the
// continuous GLL-point numbering — plus the vector reductions (glsc) of
// the CG dot products.
//
// Both mini-apps deliberately share the gather-scatter library
// (internal/gs), just as the real codes share Nek5000's gs library; the
// difference is the exchange pattern it is configured with: CMT-bone's
// face ids touch at most 6 neighbors, Nekbone's continuous ids couple
// faces, edges, and corners — up to 26 neighbors.
package nekbone

import (
	"math"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/hw"
	"repro/internal/mesh"
	"repro/internal/prof"
	"repro/internal/sem"
)

// Config describes a Nekbone run.
type Config struct {
	// N is the number of GLL points per direction per element.
	N int
	// ProcGrid and ElemGrid follow the same rules as the CMT-bone
	// solver configuration.
	ProcGrid [3]int
	ElemGrid [3]int
	Periodic [3]bool
	// GSMethod selects the dssum exchange algorithm (ignored when
	// AutoTune is set).
	GSMethod gs.Method
	// AutoTune runs the startup gather-scatter tuner.
	AutoTune bool
	// TuneTrials is the trial count per method for the tuner.
	TuneTrials int
	// Iters is the CG iteration count for Run.
	Iters int
	// MassShift is the Helmholtz mass-term weight (keeps the operator
	// positive definite; Nekbone's h2 term). Default 0.1.
	MassShift float64
	// Jacobi enables diagonal (Jacobi) preconditioning of the CG
	// iteration.
	Jacobi bool
	// Machine is the processor model for virtual-clock accounting.
	Machine hw.Machine
}

// DefaultConfig mirrors solver.DefaultConfig for Nekbone.
func DefaultConfig(p, n, elemsPerDir int) Config {
	pg := comm.FactorGrid(p)
	return Config{
		N:        n,
		ProcGrid: pg,
		ElemGrid: [3]int{pg[0] * elemsPerDir, pg[1] * elemsPerDir, pg[2] * elemsPerDir},
		GSMethod: gs.Pairwise,
		Iters:    50,
	}
}

// Solver is one rank's Nekbone instance.
type Solver struct {
	Cfg   Config
	Rank  *comm.Rank
	Local *mesh.Local
	Ref   *sem.Ref1D
	Prof  *prof.Profiler

	gsh     *gs.GS
	invMult []float64 // 1/multiplicity per point (for assembled dot products)
	w3      []float64 // tensor quadrature weights per element point
	invDiag []float64 // 1/diag(A), assembled (Jacobi preconditioner)

	// scratch
	dr, ds, dt []float64
	tmp        []float64

	Ops sem.OpCount
}

// New builds a Nekbone solver on rank r. Collective.
func New(r *comm.Rank, cfg Config) (*Solver, error) {
	if cfg.MassShift == 0 {
		cfg.MassShift = 0.1
	}
	if cfg.TuneTrials == 0 {
		cfg.TuneTrials = 3
	}
	if cfg.Machine.Name == "" {
		cfg.Machine = hw.Generic
	}
	box, err := mesh.NewBox(cfg.ProcGrid, cfg.ElemGrid, cfg.N, cfg.Periodic)
	if err != nil {
		return nil, err
	}
	local := box.Partition(r.ID())
	ref := sem.NewRef1D(cfg.N)
	s := &Solver{Cfg: cfg, Rank: r, Local: local, Ref: ref, Prof: prof.New()}

	n := cfg.N
	vol := local.Nel * n * n * n
	s.dr = make([]float64, vol)
	s.ds = make([]float64, vol)
	s.dt = make([]float64, vol)
	s.tmp = make([]float64, vol)

	// Tensor-product quadrature weights (unit-cube elements).
	s.w3 = make([]float64, vol)
	for e := 0; e < local.Nel; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					s.w3[e*n*n*n+i+n*j+n*n*k] = ref.W[i] * ref.W[j] * ref.W[k]
				}
			}
		}
	}

	stop := s.Prof.Start("gs_setup")
	s.gsh = gs.Setup(r, local.ContinuousIDs())
	stop()
	if cfg.AutoTune {
		stop := s.Prof.Start("gs_autotune")
		gs.TuneModeled(s.gsh, cfg.TuneTrials)
		stop()
	} else {
		s.gsh.SetMethod(cfg.GSMethod)
	}

	// Multiplicity: dssum of ones counts how many elements share each
	// point; its inverse weights the assembled inner products.
	s.invMult = make([]float64, vol)
	for i := range s.invMult {
		s.invMult[i] = 1
	}
	s.DSSum(s.invMult)
	for i := range s.invMult {
		s.invMult[i] = 1 / s.invMult[i]
	}

	if cfg.Jacobi {
		s.buildJacobi()
	}
	return s, nil
}

// buildJacobi assembles the inverse diagonal of A for the Jacobi
// preconditioner. For the separable stiffness operator the local
// diagonal at point (i,j,k) is
//
//	sum_l D[l,i]^2 G(l,j,k) + D[l,j]^2 G(i,l,k) + D[l,k]^2 G(i,j,l)
//
// with G the diagonal geometric factor, plus the mass shift; the global
// diagonal is its dssum.
func (s *Solver) buildJacobi() {
	n := s.Cfg.N
	n3 := n * n * n
	nel := s.Local.Nel
	rx := 2.0
	geo := rx * rx / (rx * rx * rx)
	mass := s.Cfg.MassShift / (rx * rx * rx)

	d := s.Ref.D
	diag := make([]float64, nel*n3)
	g := func(e, i, j, k int) float64 {
		return s.w3[e*n3+i+n*j+n*n*k] * geo
	}
	for e := 0; e < nel; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					acc := 0.0
					for l := 0; l < n; l++ {
						dli := d[l*n+i]
						dlj := d[l*n+j]
						dlk := d[l*n+k]
						acc += dli*dli*g(e, l, j, k) +
							dlj*dlj*g(e, i, l, k) +
							dlk*dlk*g(e, i, j, l)
					}
					idx := e*n3 + i + n*j + n*n*k
					diag[idx] = acc + mass*s.w3[idx]
				}
			}
		}
	}
	s.DSSum(diag)
	s.invDiag = diag
	for i := range s.invDiag {
		s.invDiag[i] = 1 / s.invDiag[i]
	}
}

// GS exposes the dssum gather-scatter handle.
func (s *Solver) GS() *gs.GS { return s.gsh }

// DSSum performs the direct-stiffness summation: values at shared GLL
// points are summed across all elements (and ranks) holding them.
func (s *Solver) DSSum(u []float64) {
	stop := s.Prof.Start("dssum")
	s.gsh.Op(u, comm.OpSum)
	stop()
}

// GLSC2 returns the assembled global inner product of two redundantly
// stored continuous vectors (weighted by inverse multiplicity so shared
// points count once). Collective vector reduction.
func (s *Solver) GLSC2(a, b []float64) float64 {
	stop := s.Prof.Start("glsc")
	local := 0.0
	for i := range a {
		local += a[i] * b[i] * s.invMult[i]
	}
	stop()
	s.Rank.SetSite("glsc")
	out := s.Rank.Allreduce(comm.OpSum, []float64{local})
	s.Rank.SetSite("")
	s.chargeCompute(sem.OpCount{Mul: int64(len(a)) * 2, Add: int64(len(a)),
		Load: int64(len(a)) * 3}, axTraits)
	return out[0]
}

var axTraits = hw.Traits{VecFrac: 0.5, OverheadPerFlop: 0.35, MissRate: 0.02}

func (s *Solver) chargeCompute(ops sem.OpCount, tr hw.Traits) {
	s.Ops = s.Ops.Plus(ops)
	s.Rank.Clock().Advance(hw.Time(s.Cfg.Machine, hw.Ops{
		Mul: ops.Mul, Add: ops.Add, Load: ops.Load, Store: ops.Store}, tr))
}

// Ax applies the assembled Helmholtz operator: w = (K + sigma*M) u, where
// K is the spectral-element stiffness matrix (D^T W D per direction with
// the constant unit-cube metric) and M the diagonal LGL mass matrix,
// followed by dssum. u must be continuous (equal values at shared
// points); w comes out continuous. This is Nekbone's ax kernel — the same
// small-matrix-multiply structure as CMT-bone's derivative kernel.
func (s *Solver) Ax(u, w []float64) {
	stop := s.Prof.Start("ax")
	n := s.Cfg.N
	nel := s.Local.Nel
	rx := 2.0 // d(ref)/d(phys) for unit-cube elements
	geo := rx * rx / (rx * rx * rx)

	var ops sem.OpCount
	// Gradient.
	ops = ops.Plus(sem.Deriv(sem.DirR, sem.Optimized, s.Ref, u, s.dr, nel))
	ops = ops.Plus(sem.Deriv(sem.DirS, sem.Optimized, s.Ref, u, s.ds, nel))
	ops = ops.Plus(sem.Deriv(sem.DirT, sem.Optimized, s.Ref, u, s.dt, nel))
	// Diagonal geometric factor: quadrature weight times metric.
	for i := range s.dr {
		g := s.w3[i] * geo
		s.dr[i] *= g
		s.ds[i] *= g
		s.dt[i] *= g
	}
	// Divergence with the transposed operator: w = D^T(...) summed.
	ops = ops.Plus(sem.ApplyDir(sem.DirR, s.Ref.Dt, n, s.dr, w, nel))
	ops = ops.Plus(sem.ApplyDir(sem.DirS, s.Ref.Dt, n, s.ds, s.tmp, nel))
	for i := range w {
		w[i] += s.tmp[i]
	}
	ops = ops.Plus(sem.ApplyDir(sem.DirT, s.Ref.Dt, n, s.dt, s.tmp, nel))
	mass := s.Cfg.MassShift / (rx * rx * rx)
	for i := range w {
		w[i] += s.tmp[i] + mass*s.w3[i]*u[i]
	}
	stop()
	vol := int64(len(u))
	ops = ops.Plus(sem.OpCount{Mul: 6 * vol, Add: 4 * vol, Load: 8 * vol, Store: 4 * vol})
	s.chargeCompute(ops, axTraits)

	s.DSSum(w)
}

// Residuals holds the per-iteration residual norms of a CG solve.
type Residuals []float64

// CG runs iters conjugate-gradient iterations on Ax = f, starting from
// zero, and returns the solution along with the residual norm after each
// iteration. With Config.Jacobi the iteration is diagonally
// preconditioned. f must be continuous. Collective.
func (s *Solver) CG(f []float64, iters int) ([]float64, Residuals) {
	stopAll := s.Prof.Start("cg_solve")
	defer stopAll()

	n := len(f)
	x := make([]float64, n)
	r := append([]float64(nil), f...)
	z := make([]float64, n)
	w := make([]float64, n)
	applyPrecond := func() {
		if s.invDiag != nil {
			for i := range z {
				z[i] = r[i] * s.invDiag[i]
			}
		} else {
			copy(z, r)
		}
	}
	applyPrecond()
	p := append([]float64(nil), z...)

	res := make(Residuals, 0, iters)
	rz := s.GLSC2(r, z)
	for it := 0; it < iters; it++ {
		s.Ax(p, w)
		pw := s.GLSC2(p, w)
		if pw == 0 {
			break
		}
		alpha := rz / pw
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * w[i]
		}
		res = append(res, math.Sqrt(s.GLSC2(r, r)))
		applyPrecond()
		rznew := s.GLSC2(r, z)
		beta := rznew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rznew
		vol := int64(n)
		s.chargeCompute(sem.OpCount{Mul: 4 * vol, Add: 3 * vol, Load: 8 * vol, Store: 4 * vol}, axTraits)
	}
	return x, res
}

// Report summarizes a Run.
type Report struct {
	Iters    int
	Residual float64 // final residual norm
	Ops      sem.OpCount
}

// Run executes the standard Nekbone workload: assemble a smooth
// right-hand side, run Cfg.Iters CG iterations, and report. Collective.
func (s *Solver) Run() Report {
	n := s.Cfg.N
	n3 := n * n * n
	f := make([]float64, s.Local.Nel*n3)
	for e := 0; e < s.Local.Nel; e++ {
		g := s.Local.GlobalElemCoords(e)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					x := float64(g[0]) + (s.Ref.X[i]+1)/2
					y := float64(g[1]) + (s.Ref.X[j]+1)/2
					z := float64(g[2]) + (s.Ref.X[k]+1)/2
					f[e*n3+i+n*j+n*n*k] = math.Sin(x) * math.Cos(2*y) * math.Sin(3*z)
				}
			}
		}
	}
	// Make the RHS continuous (average shared points via dssum and
	// multiplicity), as Nekbone's setup does.
	s.DSSum(f)
	for i := range f {
		f[i] *= s.invMult[i]
	}
	_, res := s.CG(f, s.Cfg.Iters)
	s.Prof.Finish()
	final := 0.0
	if len(res) > 0 {
		final = res[len(res)-1]
	}
	return Report{Iters: len(res), Residual: final, Ops: s.Ops}
}
