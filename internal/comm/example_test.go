package comm_test

import (
	"fmt"

	"repro/internal/comm"
)

// Run spawns goroutine ranks that communicate like MPI processes: here a
// ring where each rank passes its id to the right.
func ExampleRun() {
	results := make([]float64, 4)
	_, err := comm.RunSimple(4, func(r *comm.Rank) error {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		r.Send(right, 0, []float64{float64(r.ID())})
		got := r.Recv(left, 0)
		results[r.ID()] = got[0]
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(results)
	// Output: [3 0 1 2]
}

// Collectives follow MPI semantics: every rank calls, every rank gets the
// result.
func ExampleRank_Allreduce() {
	sums := make([]float64, 3)
	_, _ = comm.RunSimple(3, func(r *comm.Rank) error {
		v := r.Allreduce(comm.OpSum, []float64{float64(r.ID() + 1)})
		sums[r.ID()] = v[0]
		return nil
	})
	fmt.Println(sums)
	// Output: [6 6 6]
}

// Split carves sub-communicators out of the world, like MPI_Comm_split.
func ExampleRank_Split() {
	sizes := make([]int, 6)
	_, _ = comm.RunSimple(6, func(r *comm.Rank) error {
		g := r.Split(r.ID()%2, r.ID())
		sizes[r.ID()] = g.Size()
		return nil
	})
	fmt.Println(sizes)
	// Output: [3 3 3 3 3 3]
}
