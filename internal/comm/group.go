package comm

import (
	"fmt"
	"sort"
	"time"
)

// Sub-communicators (MPI_Comm_split): a Group is a subset of the world's
// ranks with its own dense numbering and collective operations. Nek-family
// codes split communicators for row/column exchanges and for I/O
// aggregation; the mini-app exposes the same capability.

// groupTagBase opens a tag space disjoint from both user tags and world
// collective tags; each color gets a 16-tag window.
const groupTagBase = 1 << 26

// maxGroupColor bounds color values so group tag windows stay disjoint.
const maxGroupColor = 1 << 16

// Group is one rank's membership in a split communicator.
type Group struct {
	r       *Rank
	color   int
	members []int // world ranks, ordered by (key, world rank)
	myIdx   int
}

// Split partitions the world communicator by color (MPI_Comm_split):
// ranks passing equal colors form a group, ordered by key (ties broken by
// world rank). Collective over the world communicator. color must be in
// [0, 65536).
func (r *Rank) Split(color, key int) *Group {
	if color < 0 || color >= maxGroupColor {
		panic(fmt.Sprintf("comm: split color %d outside [0, %d)", color, maxGroupColor))
	}
	start := time.Now()
	v0 := r.clock.Now()
	// Learn everyone's (color, key): two integer allgathers.
	colors := r.allgatherInt64Raw(int64(color), collTagBase+12)
	keys := r.allgatherInt64Raw(int64(key), collTagBase+13)
	type memberKey struct{ key, rank int }
	var mine []memberKey
	for rank, c := range colors {
		if int(c) == color {
			mine = append(mine, memberKey{int(keys[rank]), rank})
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	g := &Group{r: r, color: color}
	for idx, m := range mine {
		g.members = append(g.members, m.rank)
		if m.rank == r.id {
			g.myIdx = idx
		}
	}
	r.prof.record("MPI_Comm_split", time.Since(start).Seconds(), r.clock.Now()-v0, 0)
	return g
}

// allgatherInt64Raw is the ring allgather of one int64 per rank without
// profiling (used inside Split, which records itself as one MPI call).
func (r *Rank) allgatherInt64Raw(v int64, tag int) []int64 {
	p, id := r.comm.size, r.id
	out := make([]int64, p)
	out[id] = v
	right, left := (id+1)%p, (id-1+p)%p
	cur := id
	for step := 0; step < p-1; step++ {
		r.sendRaw(right, tag, nil, []int64{out[cur]})
		m := r.recvRaw(left, tag)
		cur = (cur - 1 + p) % p
		out[cur] = m.ints[0]
	}
	return out
}

// Size returns the group's rank count.
func (g *Group) Size() int { return len(g.members) }

// ID returns this rank's index within the group.
func (g *Group) ID() int { return g.myIdx }

// WorldRank translates a group index to the world rank.
func (g *Group) WorldRank(idx int) int {
	if idx < 0 || idx >= len(g.members) {
		panic(fmt.Sprintf("comm: group rank %d outside [0,%d)", idx, len(g.members)))
	}
	return g.members[idx]
}

// Members returns the world ranks of the group in group order.
func (g *Group) Members() []int {
	return append([]int(nil), g.members...)
}

// tag returns the group-scoped collective tag for operation slot op.
func (g *Group) tag(op int) int {
	return groupTagBase + g.color*16 + op
}

// Send sends within the group (dst is a group index). It is profiled as
// a world point-to-point send.
func (g *Group) Send(dst, tag int, data []float64) {
	g.r.Send(g.WorldRank(dst), tag, data)
}

// Recv receives within the group (src is a group index, or AnySource).
func (g *Group) Recv(src, tag int) []float64 {
	w := AnySource
	if src != AnySource {
		w = g.WorldRank(src)
	}
	return g.r.Recv(w, tag)
}

// Barrier blocks until every group member has entered it (dissemination
// over the group's members).
func (g *Group) Barrier() {
	coll := g.r.collStart("MPI_Barrier")
	p, id := len(g.members), g.myIdx
	var bytes int64
	for k := 1; k < p; k <<= 1 {
		bytes += g.r.sendRaw(g.members[(id+k)%p], g.tag(0), nil, nil)
		g.r.recvRawColl(g.members[(id-k%p+p)%p], g.tag(0), g.members)
	}
	coll.done(bytes)
}

// Bcast broadcasts from group root (binomial tree over the group).
func (g *Group) Bcast(root int, data []float64) []float64 {
	coll := g.r.collStart("MPI_Bcast")
	p, id := len(g.members), g.myIdx
	vr := (id - root + p) % p
	var bytes int64
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := g.members[(id-mask+p)%p]
			m := g.r.recvRawColl(parent, g.tag(1), g.members)
			data = m.data
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < p {
			bytes += g.r.sendRaw(g.members[(id+mask)%p], g.tag(1), data, nil)
		}
	}
	coll.done(bytes)
	return data
}

// Allreduce combines data across the group (recursive doubling with a
// fold for non-power-of-two group sizes), updating data in place.
func (g *Group) Allreduce(op ReduceOp, data []float64) []float64 {
	coll := g.r.collStart("MPI_Allreduce")
	p, id := len(g.members), g.myIdx
	tag := g.tag(2)
	var bytes int64
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2
	if id >= p2 {
		bytes += g.r.sendRaw(g.members[id-p2], tag, data, nil)
		m := g.r.recvRawColl(g.members[id-p2], tag, g.members)
		copy(data, m.data)
		coll.done(bytes)
		return data
	}
	if id < rem {
		m := g.r.recvRawColl(g.members[id+p2], tag, g.members)
		op.combine(data, m.data)
	}
	for mask := 1; mask < p2; mask <<= 1 {
		partner := g.members[id^mask]
		bytes += g.r.sendRaw(partner, tag, data, nil)
		m := g.r.recvRawColl(partner, tag, g.members)
		op.combine(data, m.data)
	}
	if id < rem {
		bytes += g.r.sendRaw(g.members[id+p2], tag, data, nil)
	}
	coll.done(bytes)
	return data
}

// Allgather concatenates each member's fixed-size contribution in group
// order on every member (ring over the group).
func (g *Group) Allgather(data []float64) []float64 {
	coll := g.r.collStart("MPI_Allgather")
	p, id := len(g.members), g.myIdx
	n := len(data)
	tag := g.tag(3)
	out := make([]float64, n*p)
	copy(out[id*n:], data)
	var bytes int64
	right, left := g.members[(id+1)%p], g.members[(id-1+p)%p]
	cur := id
	for step := 0; step < p-1; step++ {
		chunk := make([]float64, n)
		copy(chunk, out[cur*n:(cur+1)*n])
		bytes += g.r.sendRaw(right, tag, chunk, nil)
		m := g.r.recvRawColl(left, tag, g.members)
		cur = (cur - 1 + p) % p
		copy(out[cur*n:], m.data)
	}
	coll.done(bytes)
	return out
}
