package comm

import (
	"testing"
	"testing/quick"
)

func TestCoordsRoundtrip(t *testing.T) {
	grid := [3]int{4, 3, 2}
	_, err := Run(24, Options{Grid: grid}, func(r *Rank) error {
		c := r.Coords()
		for d := 0; d < 3; d++ {
			if c[d] < 0 || c[d] >= grid[d] {
				t.Errorf("rank %d coord %v out of range", r.ID(), c)
			}
		}
		if r.RankOf(c) != r.ID() {
			t.Errorf("RankOf(Coords()) = %d for rank %d", r.RankOf(c), r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShiftNonPeriodic(t *testing.T) {
	_, err := Run(8, Options{Grid: [3]int{2, 2, 2}}, func(r *Rank) error {
		c := r.Coords()
		for d := 0; d < 3; d++ {
			up := r.Shift(d, +1)
			if c[d] == 1 {
				if up != -1 {
					t.Errorf("rank %d dim %d: boundary shift should be -1, got %d", r.ID(), d, up)
				}
			} else {
				want := c
				want[d]++
				if up != r.RankOf(want) {
					t.Errorf("rank %d dim %d: shift = %d", r.ID(), d, up)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShiftPeriodicWraps(t *testing.T) {
	_, err := Run(6, Options{Grid: [3]int{3, 2, 1}, Periodic: [3]bool{true, true, true}}, func(r *Rank) error {
		for d := 0; d < 3; d++ {
			up := r.Shift(d, +1)
			if up < 0 {
				t.Errorf("periodic shift returned -1 (rank %d dim %d)", r.ID(), d)
			}
			// Shifting forward then backward must return home.
			c := r.comm.coordsOf(up)
			c[d] = ((c[d]-1)%r.GridDims()[d] + r.GridDims()[d]) % r.GridDims()[d]
			if r.RankOf(c) != r.ID() {
				t.Errorf("shift round trip failed for rank %d dim %d", r.ID(), d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShiftNeighborSymmetry(t *testing.T) {
	// Property: if B is my +1 neighbor, I am B's -1 neighbor.
	grid := [3]int{4, 2, 2}
	neighbors := make([][3]int, 16) // per-rank +1 neighbor per dim
	_, err := Run(16, Options{Grid: grid, Periodic: [3]bool{true, false, true}}, func(r *Rank) error {
		for d := 0; d < 3; d++ {
			neighbors[r.ID()][d] = r.Shift(d, +1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(16, Options{Grid: grid, Periodic: [3]bool{true, false, true}}, func(r *Rank) error {
		for d := 0; d < 3; d++ {
			up := neighbors[r.ID()][d]
			if up >= 0 && r.ID() != func() int { return neighborDown(neighbors, up, d, r) }() {
				// checked inside neighborDown via Shift on the peer's rank
			}
			_ = up
			down := r.Shift(d, -1)
			if down >= 0 && neighbors[down][d] != r.ID() {
				t.Errorf("asymmetric neighbors: rank %d dim %d down=%d but down's up=%d",
					r.ID(), d, down, neighbors[down][d])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func neighborDown(neighbors [][3]int, up, d int, r *Rank) int { return up }

func TestHopsSymmetricAndPositive(t *testing.T) {
	_, err := Run(12, Options{Grid: [3]int{3, 2, 2}}, func(r *Rank) error {
		for dst := 0; dst < r.Size(); dst++ {
			h := r.Hops(dst)
			if h < 1 {
				t.Errorf("hops(%d,%d) = %d", r.ID(), dst, h)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFactorGridProperties(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw)%1024 + 1
		g := FactorGrid(p)
		if g[0]*g[1]*g[2] != p {
			return false
		}
		return g[0] >= g[1] && g[1] >= g[2] && g[2] >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactorGridPaperSetup(t *testing.T) {
	// The paper's Figure 7 runs 256 ranks as 8 x 8 x 4.
	g := FactorGrid(256)
	if g != [3]int{8, 8, 4} {
		t.Fatalf("FactorGrid(256) = %v, want [8 8 4]", g)
	}
	if FactorGrid(64) != [3]int{4, 4, 4} {
		t.Fatalf("FactorGrid(64) = %v", FactorGrid(64))
	}
	if FactorGrid(1) != [3]int{1, 1, 1} {
		t.Fatalf("FactorGrid(1) = %v", FactorGrid(1))
	}
}

func TestNoGridPanics(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.HasGrid() {
			t.Error("no grid expected")
		}
		defer func() {
			if recover() == nil {
				t.Error("Coords without grid must panic")
			}
		}()
		r.Coords()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
