package comm

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Property-based checks for the collectives: randomized rank counts
// (including non-powers-of-2, which exercise the fold/unfold phases of
// recursive doubling and the remainder handling of Rabenseifner),
// randomized payload sizes and randomized contents, all compared against
// a trivial serial reference. Payload values are small integers stored
// in float64s, so sums and products are exact regardless of the
// reduction's association order.
//
// These tests exercise the in-process backend only (they share slices
// across ranks, which requires one address space). The same class of
// seeded randomized-collective properties also runs against the TCP
// backend — one OS process per rank, serial references re-derived
// locally from the shared seed — as the "property-collectives" contract
// in internal/comm/conformance.

// randPayload fills integer-valued float64s in [-8, 8).
func randPayload(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(16) - 8)
	}
	return out
}

func applyOp(op ReduceOp, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	}
	panic("unknown op")
}

// gatherAll runs fn on every rank of a p-rank communicator and returns the
// per-rank results.
func gatherAll(t *testing.T, p int, fn func(r *Rank) []float64) [][]float64 {
	t.Helper()
	results := make([][]float64, p)
	if _, err := RunSimple(p, func(r *Rank) error {
		results[r.ID()] = fn(r)
		return nil
	}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return results
}

func TestPropertyAllreduce(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA11))
	ops := []ReduceOp{OpSum, OpProd, OpMin, OpMax}
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.Intn(9)  // 1..9, covers non-powers-of-2
		n := 1 + rng.Intn(64) // element count
		op := ops[rng.Intn(len(ops))]
		inputs := make([][]float64, p)
		for i := range inputs {
			inputs[i] = randPayload(rng, n)
		}
		// Serial reference.
		want := append([]float64(nil), inputs[0]...)
		for i := 1; i < p; i++ {
			for j := range want {
				want[j] = applyOp(op, want[j], inputs[i][j])
			}
		}
		results := gatherAll(t, p, func(r *Rank) []float64 {
			return r.Allreduce(op, append([]float64(nil), inputs[r.ID()]...))
		})
		for id, got := range results {
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d (p=%d n=%d op=%d): rank %d element %d = %v, want %v",
						trial, p, n, op, id, j, got[j], want[j])
				}
			}
		}
	}
}

func TestPropertyGather(t *testing.T) {
	rng := rand.New(rand.NewSource(0x6A7))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(8)
		n := 1 + rng.Intn(32)
		root := rng.Intn(p)
		inputs := make([][]float64, p)
		var want []float64
		for i := range inputs {
			inputs[i] = randPayload(rng, n)
			want = append(want, inputs[i]...)
		}
		results := gatherAll(t, p, func(r *Rank) []float64 {
			return r.Gather(root, inputs[r.ID()])
		})
		for id, got := range results {
			if id != root {
				if got != nil {
					t.Fatalf("trial %d: non-root %d got non-nil gather result", trial, id)
				}
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: root gathered %d values, want %d", trial, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d (p=%d n=%d root=%d): element %d = %v, want %v",
						trial, p, n, root, j, got[j], want[j])
				}
			}
		}
	}
}

func TestPropertyAlltoallv(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA270))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(8)
		// Randomized, possibly zero, per-destination counts.
		counts := make([][]int, p) // counts[src][dst]
		sends := make([][]float64, p)
		for src := 0; src < p; src++ {
			counts[src] = make([]int, p)
			total := 0
			for dst := 0; dst < p; dst++ {
				counts[src][dst] = rng.Intn(5)
				total += counts[src][dst]
			}
			sends[src] = randPayload(rng, total)
		}
		// Serial reference: receiver dst sees src's chunk for dst, in
		// ascending src order.
		want := make([][]float64, p)
		wantCounts := make([][]int, p)
		for dst := 0; dst < p; dst++ {
			wantCounts[dst] = make([]int, p)
			for src := 0; src < p; src++ {
				off := 0
				for d := 0; d < dst; d++ {
					off += counts[src][d]
				}
				want[dst] = append(want[dst], sends[src][off:off+counts[src][dst]]...)
				wantCounts[dst][src] = counts[src][dst]
			}
		}
		gotCounts := make([][]int, p)
		results := gatherAll(t, p, func(r *Rank) []float64 {
			recv, rc := r.Alltoallv(sends[r.ID()], counts[r.ID()])
			gotCounts[r.ID()] = rc
			return recv
		})
		for id := 0; id < p; id++ {
			if fmt.Sprint(gotCounts[id]) != fmt.Sprint(wantCounts[id]) {
				t.Fatalf("trial %d (p=%d): rank %d recvCounts %v, want %v",
					trial, p, id, gotCounts[id], wantCounts[id])
			}
			if fmt.Sprint(results[id]) != fmt.Sprint(want[id]) {
				t.Fatalf("trial %d (p=%d): rank %d recv %v, want %v",
					trial, p, id, results[id], want[id])
			}
		}
	}
}

func TestPropertyBcastAllgather(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBCA5))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(9)
		n := 1 + rng.Intn(32)
		root := rng.Intn(p)
		msg := randPayload(rng, n)
		inputs := make([][]float64, p)
		var flat []float64
		for i := range inputs {
			inputs[i] = randPayload(rng, n)
			flat = append(flat, inputs[i]...)
		}
		type out struct{ bcast, allg []float64 }
		outs := make([]out, p)
		if _, err := RunSimple(p, func(r *Rank) error {
			in := inputs[r.ID()]
			if r.ID() == root {
				in = msg
			}
			var b []float64
			if r.ID() == root {
				b = r.Bcast(root, append([]float64(nil), msg...))
			} else {
				b = r.Bcast(root, nil)
			}
			a := r.Allgather(append([]float64(nil), in...))
			outs[r.ID()] = out{bcast: b, allg: a}
			return nil
		}); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		wantFlat := append([]float64(nil), flat...)
		copy(wantFlat[root*n:], msg)
		for id := 0; id < p; id++ {
			if fmt.Sprint(outs[id].bcast) != fmt.Sprint(msg) {
				t.Fatalf("trial %d (p=%d root=%d): rank %d bcast %v, want %v",
					trial, p, root, id, outs[id].bcast, msg)
			}
			if fmt.Sprint(outs[id].allg) != fmt.Sprint(wantFlat) {
				t.Fatalf("trial %d (p=%d): rank %d allgather %v, want %v",
					trial, p, id, outs[id].allg, wantFlat)
			}
		}
	}
}

// TestPropertyAllreduceMatchesUnderFaults: injected drop/corrupt/delay
// faults change modeled time but never results — the same randomized
// allreduces give identical answers with an aggressive fault plane
// installed.
func TestPropertyAllreduceMatchesUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(0xFA17))
	for trial := 0; trial < 10; trial++ {
		p := 2 + rng.Intn(6)
		n := 1 + rng.Intn(16)
		inputs := make([][]float64, p)
		for i := range inputs {
			inputs[i] = randPayload(rng, n)
		}
		run := func(f FaultPlane) [][]float64 {
			res := make([][]float64, p)
			if _, err := Run(p, Options{Faults: f}, func(r *Rank) error {
				res[r.ID()] = r.Allreduce(OpSum, append([]float64(nil), inputs[r.ID()]...))
				return nil
			}); err != nil {
				t.Fatalf("run failed: %v", err)
			}
			return res
		}
		clean := run(nil)
		noisy := run(&everyNthFaults{n: 3})
		for id := range clean {
			for j := range clean[id] {
				if math.Float64bits(clean[id][j]) != math.Float64bits(noisy[id][j]) {
					t.Fatalf("trial %d: rank %d element %d differs under faults: %v vs %v",
						trial, id, j, noisy[id][j], clean[id][j])
				}
			}
		}
	}
}

// everyNthFaults deterministically faults every n-th message it sees per
// (src,dst) pair, cycling drop → corrupt → delay.
type everyNthFaults struct {
	mu  sync.Mutex
	n   int
	cnt map[[2]int]int
}

func (f *everyNthFaults) Message(src, dst, tag int, bytes int64, sendVT float64) FaultAction {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cnt == nil {
		f.cnt = make(map[[2]int]int)
	}
	k := [2]int{src, dst}
	c := f.cnt[k]
	f.cnt[k] = c + 1
	if f.n <= 0 || c%f.n != f.n-1 {
		return FaultAction{}
	}
	switch (c / f.n) % 3 {
	case 0:
		return FaultAction{Drop: true}
	case 1:
		if bytes > 0 {
			return FaultAction{Corrupt: true, FlipBit: c * 13}
		}
		return FaultAction{Drop: true}
	default:
		return FaultAction{DelayVT: 2e-6}
	}
}

func (f *everyNthFaults) CRCDetected(src, dst, tag int) {}
