package comm

import (
	"math"
	"testing"

	"repro/internal/netmodel"
)

// White-box tests of the posted-receive direct-delivery fast path: when a
// receive is already posted at send time (and the communicator needs no
// CRC framing or fault plane), the sender copies the payload straight
// into the request-owned buffers, skipping the message envelope.

// TestDirectDeliveryOrdering drives both completion paths through one
// receiver and checks non-overtaking: a message queued before the receive
// was posted completes through the staged path, a message sent after
// completes by direct delivery, and both arrive in send order. Handshakes
// on a side tag pin the real-time interleaving.
func TestDirectDeliveryOrdering(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		const tag, hs = 7, 99
		if r.ID() == 0 {
			r.Send(1, tag, []float64{1}) // queued before any receive exists
			r.Send(1, hs, nil)           // handshake: m1 is in the mailbox
			r.Recv(1, hs)                // wait until both receives are posted
			r.Send(1, tag, []float64{2}) // delivered into the posted request
			return nil
		}
		r.Recv(0, hs) // m1 queued
		var r1, r2 Request
		r.IrecvInto(&r1, 0, tag) // matches the queued m1 immediately
		r.IrecvInto(&r2, 0, tag) // posted, waiting for m2
		r.Send(0, hs, nil)
		d1, _ := r1.Wait()
		d2, _ := r2.Wait()
		if d1[0] != 1 || d2[0] != 2 {
			t.Errorf("non-overtaking violated: got %v then %v", d1[0], d2[0])
		}
		if r1.direct {
			t.Error("r1 matched a queued message but completed direct")
		}
		if !r2.direct {
			t.Error("r2 was posted before the send but did not go direct")
		}
		if r1.Source() != 0 || r2.Source() != 0 {
			t.Errorf("sources %d, %d, want 0, 0", r1.Source(), r2.Source())
		}
		if r2.Arrival() <= 0 {
			t.Errorf("direct delivery recorded arrival %v", r2.Arrival())
		}
		r1.Free()
		r2.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDirectDeliveryMatchesStaged runs the identical posted-receive
// exchange on a plain communicator (direct eligible) and a CRC-framed one
// (staged only) and requires bit-identical payloads and identical modeled
// times — the fast path must be invisible except to the allocator.
func TestDirectDeliveryMatchesStaged(t *testing.T) {
	run := func(crc bool) ([]float64, float64, float64) {
		t.Helper()
		var data []float64
		var arrival float64
		stats, err := Run(2, Options{Model: netmodel.QDR, CRC: crc}, func(r *Rank) error {
			const tag, hs = 5, 50
			if r.ID() == 0 {
				r.Recv(1, hs)
				r.Send(1, tag, []float64{3.25, -0.5, math.Pi})
				return nil
			}
			var req Request
			r.IrecvInto(&req, 0, tag)
			r.Send(0, hs, nil)
			d, _ := req.Wait()
			data = append([]float64(nil), d...)
			arrival = req.Arrival()
			if req.direct == crc {
				t.Errorf("crc=%v but direct=%v", crc, req.direct)
			}
			req.Free()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return data, arrival, stats.MaxVirtualTime()
	}

	dData, dArr, dVT := run(false)
	sData, sArr, sVT := run(true)
	if len(dData) != len(sData) {
		t.Fatalf("payload lengths differ: %d vs %d", len(dData), len(sData))
	}
	for i := range dData {
		if math.Float64bits(dData[i]) != math.Float64bits(sData[i]) {
			t.Fatalf("payload %d differs: %x vs %x", i,
				math.Float64bits(dData[i]), math.Float64bits(sData[i]))
		}
	}
	if dArr != sArr {
		t.Fatalf("modeled arrival differs: direct %v, staged %v", dArr, sArr)
	}
	if dVT != sVT {
		t.Fatalf("modeled makespan differs: direct %v, staged %v", dVT, sVT)
	}
}

// TestDirectDeliveryWildcard posts an AnySource/AnyTag receive and checks
// the direct path resolves the actual source and tag like the staged path
// does.
func TestDirectDeliveryWildcard(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		const hs = 60
		if r.ID() == 0 {
			r.Recv(1, hs)
			r.Send(1, 42, []float64{7})
			return nil
		}
		var req Request
		r.IrecvInto(&req, AnySource, AnyTag)
		r.Send(0, hs, nil)
		d, _ := req.Wait()
		if d[0] != 7 {
			t.Errorf("wildcard receive got %v", d[0])
		}
		if !req.direct {
			t.Error("posted wildcard receive did not go direct")
		}
		if req.Source() != 0 {
			t.Errorf("wildcard source %d, want 0", req.Source())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
