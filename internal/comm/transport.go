package comm

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Pluggable wire transport. The mailbox/request semantics of this package
// — per-(source, tag) non-overtaking FIFO order, eager buffered sends,
// posted-receive direct delivery, CRC framing with reject-and-retransmit,
// and the fault plane's DeadRankError/Shrink protocol — are the contract;
// a Transport is the wire that carries messages between ranks hosted in
// different OS processes. The in-process goroutine backend is the
// reference implementation of the contract: all ranks are local, the
// "wire" is a mailbox enqueue, and no Transport is involved. A distributed
// run (RunDistributed) hosts a subset of the ranks and ships every frame
// addressed to a non-local rank through the Transport; inbound frames are
// fed back through a Receiver into the exact same mailbox paths, so both
// backends are verified against one behavioral bar — the conformance suite
// in internal/comm/conformance.
//
// Frames carry the virtual-clock timestamps stamped by the sender's
// netmodel clock, so a run spanning OS processes still prices the modeled
// cluster: modeled time is a function of program order and message sizes
// only, and is bit-identical across backends.

// Frame is one wire message between processes: the (tag, src, CRC,
// payload) tuple of the mailbox fabric plus the virtual-clock timestamps
// the network model needs. Src and Dst are member ids within the
// communicator identified by Ctx (0 is the world communicator; shrunken
// sub-communicators derive deterministic ids, so every process computes
// the same routing key without coordination).
type Frame struct {
	Ctx      uint64
	Src, Dst int
	Tag      int
	Data     []float64
	Ints     []int64
	SendVT   float64 // sender's virtual time at injection
	Arrival  float64 // modeled arrival time at the destination
	CRC      uint32  // payload checksum, when Framed
	Framed   bool    // frame carries a CRC to verify on receive
}

// Bytes returns the payload size of the frame in bytes.
func (f *Frame) Bytes() int64 { return 8 * int64(len(f.Data)+len(f.Ints)) }

// Receiver is the inbound side a Transport delivers into. Both methods
// may be called from transport-owned goroutines concurrently.
type Receiver interface {
	// DeliverFrame routes one inbound frame into the destination
	// mailbox. The frame's payload slices are owned by the receiver
	// from this point on.
	DeliverFrame(f *Frame)
	// PeerDead reports that world rank w died: an explicit death notice,
	// or a peer process disconnecting without a graceful goodbye. The
	// runtime maps it onto the fault plane's dead-rank state, so blocked
	// receives surface DeadRankError and survivors can Shrink.
	PeerDead(world int)
}

// Transport moves frames between the OS processes of one distributed run.
// Implementations must preserve per-(src, dst) send order — the mailbox
// fabric's non-overtaking guarantee is built on it — and must never block
// a sending rank indefinitely (sends are eager; buffering is the
// transport's job).
type Transport interface {
	// Name identifies the backend in reports ("tcp", ...).
	Name() string
	// Size is the world communicator size spanned by all processes.
	Size() int
	// LocalRanks lists the world ranks hosted in this process, ascending.
	LocalRanks() []int
	// Start begins delivering inbound frames into the receiver. It is
	// called exactly once, before any Send.
	Start(rcv Receiver) error
	// Send ships one frame to the process hosting world rank dstWorld.
	// The payload slices are only borrowed for the duration of the call
	// (the caller may reuse them immediately after), so implementations
	// must serialize or copy before returning. Send to a dead or
	// departed peer is not an error worth surfacing: like an eager send
	// into a dead rank's mailbox, the message is silently dropped.
	Send(dstWorld int, f *Frame) error
	// NotifyDead announces the death of a locally hosted world rank to
	// every peer process (Rank.Kill), ordered after all frames already
	// sent, so peers drain pre-crash messages before observing the death.
	NotifyDead(world int)
	// Close tears the transport down gracefully: flush outbound frames,
	// tell every peer goodbye so the disconnect is not mistaken for a
	// crash, then release the connections.
	Close() error
	// Abort tears the transport down immediately, without a goodbye.
	// Peers observe the disconnect as a failure (PeerDead), which is the
	// correct signal: the local process is unwinding from an error.
	Abort()
}

// childCtx derives the deterministic routing id of a shrunken
// sub-communicator: every member calls Shrink with the identical member
// list, so every process computes the same id with no coordination.
func childCtx(parent uint64, members []int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(parent)
	for _, m := range members {
		put(uint64(m))
	}
	id := h.Sum64()
	if id == worldCtx {
		id = 1 // never collide with the world communicator
	}
	return id
}

// worldCtx is the routing id of the world communicator.
const worldCtx uint64 = 0

// ctxRegistry is the per-process routing table of a distributed run:
// communicator id -> local Comm. Frames for a communicator this process
// has not created yet (a remote peer reached Shrink first and already
// sent) are pended and flushed on registration, preserving order. Death
// notices are also recorded here so a sub-communicator created after a
// notice still observes the death.
type ctxRegistry struct {
	mu        sync.Mutex
	comms     map[uint64]*Comm
	pending   map[uint64][]*Frame
	deadWorld map[int]bool
}

func newCtxRegistry() *ctxRegistry {
	return &ctxRegistry{
		comms:     make(map[uint64]*Comm),
		pending:   make(map[uint64][]*Frame),
		deadWorld: make(map[int]bool),
	}
}

// register installs a communicator and flushes any frames and deaths that
// arrived before it existed locally.
func (g *ctxRegistry) register(ctx uint64, c *Comm) {
	g.mu.Lock()
	g.comms[ctx] = c
	queued := g.pending[ctx]
	delete(g.pending, ctx)
	var dead []int
	for w := range g.deadWorld {
		dead = append(dead, w)
	}
	g.mu.Unlock()
	sort.Ints(dead)
	for _, w := range dead {
		c.markDeadByWorld(w)
	}
	for _, f := range queued {
		c.acceptFrame(f)
	}
}

// route delivers an inbound frame to its communicator, pending it if the
// communicator does not exist locally yet.
func (g *ctxRegistry) route(f *Frame) {
	g.mu.Lock()
	c := g.comms[f.Ctx]
	if c == nil {
		g.pending[f.Ctx] = append(g.pending[f.Ctx], f)
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	c.acceptFrame(f)
}

// markWorld records the death of world rank w and marks it in every
// registered communicator, waking blocked receivers.
func (g *ctxRegistry) markWorld(w int) {
	g.mu.Lock()
	g.deadWorld[w] = true
	comms := make([]*Comm, 0, len(g.comms))
	for _, c := range g.comms {
		comms = append(comms, c)
	}
	g.mu.Unlock()
	for _, c := range comms {
		c.markDeadByWorld(w)
	}
}

// markDeadByWorld marks the member of c with world id w (if any) dead and
// wakes the communicator's blocked receivers. Unlike markDead it does not
// walk ancestors: the registry marks every communicator directly.
func (c *Comm) markDeadByWorld(w int) {
	for id := 0; id < c.size; id++ {
		if c.worldIDOf(id) == w {
			c.dead[id].Store(true)
			for _, b := range c.boxes {
				b.wake()
			}
			return
		}
	}
}

// acceptFrame lands an inbound wire frame in the destination mailbox,
// through the same two paths a local send uses: posted-receive direct
// delivery when nothing can reject the payload, a staged (possibly
// CRC-framed) message otherwise. The modeled arrival time was stamped by
// the sender's clock and rides in the frame.
func (c *Comm) acceptFrame(f *Frame) {
	if f.Dst < 0 || f.Dst >= c.size {
		return // malformed routing; drop
	}
	box := c.boxes[f.Dst]
	if c.directEligible() && !f.Framed {
		box.deliverOrQueue(c, f.Src, f.Tag, f.Data, f.Ints, f.Arrival)
		return
	}
	m := c.getMessage()
	m.src, m.tag = f.Src, f.Tag
	m.data = append(m.data[:0], f.Data...)
	m.ints = append(m.ints[:0], f.Ints...)
	m.arrival = f.Arrival
	m.crc, m.framed = f.CRC, f.Framed
	box.put(m)
}

// commReceiver adapts the root communicator to the Transport's Receiver.
type commReceiver struct{ root *Comm }

func (cr commReceiver) DeliverFrame(f *Frame) { cr.root.reg.route(f) }
func (cr commReceiver) PeerDead(w int)        { cr.root.reg.markWorld(w) }

// isLocalWorld reports whether world rank w is hosted in this process.
func (c *Comm) isLocalWorld(w int) bool {
	lw := c.root.localWorld
	return lw == nil || (w >= 0 && w < len(lw) && lw[w])
}

// RunDistributed is Run for one process of a multi-process run: it spawns
// a goroutine for every rank the transport hosts locally, wires frames
// addressed to remote ranks through the transport, and waits for the
// local ranks. All processes must use identical Options (the network
// model, grid, CRC and fault configuration are part of the communicator
// contract; a fault plane is installed per process and sees the sends of
// locally hosted ranks).
//
// The returned Stats covers the local ranks only: remote entries of the
// per-rank slices are zero (profiles are present but empty). Global
// results — physics diagnostics, modeled makespan — should be computed
// in-run with collectives, exactly as an MPI application would.
//
// On a clean return the transport has been closed gracefully; peers see a
// goodbye, not a failure. If a local rank fails, the transport is aborted
// instead, so blocked peers observe the disconnect as a dead rank rather
// than hanging.
func RunDistributed(t Transport, opts Options, fn func(*Rank) error) (*Stats, error) {
	size := t.Size()
	locals := t.LocalRanks()
	if size < 1 {
		return nil, fmt.Errorf("comm: transport world size must be >= 1, got %d", size)
	}
	if len(locals) == 0 {
		return nil, fmt.Errorf("comm: transport hosts no local ranks")
	}
	localWorld := make([]bool, size)
	for _, w := range locals {
		if w < 0 || w >= size {
			return nil, fmt.Errorf("comm: local rank %d outside world [0,%d)", w, size)
		}
		localWorld[w] = true
	}
	c, err := newComm(size, opts)
	if err != nil {
		return nil, err
	}
	c.transport = t
	c.localWorld = localWorld
	c.reg = newCtxRegistry()
	c.reg.register(worldCtx, c)
	if err := t.Start(commReceiver{root: c}); err != nil {
		return nil, fmt.Errorf("comm: transport start: %w", err)
	}
	stats, err := runRanks(c, opts, locals, fn)
	if err != nil {
		t.Abort()
		return nil, err
	}
	if cerr := t.Close(); cerr != nil {
		return nil, fmt.Errorf("comm: transport close: %w", cerr)
	}
	return stats, nil
}
