// Package tcptransport is a comm.Transport over TCP sockets: one OS
// process per world rank, a full mesh of connections formed by a
// rendezvous/bootstrap step, and length-prefixed wire frames that carry
// the (tag, src, CRC, payload) tuple of the mailbox fabric plus the
// virtual-clock timestamps the network model stamps at the sender — so a
// run spanning processes still prices the same modeled cluster,
// bit-identically to the in-process backend.
//
// The wire has two integrity layers on purpose. Every wire message ends
// in a whole-body CRC32 checked here, guarding against transport-level
// corruption and desync — a failure is a hard protocol error. Separately,
// a data frame may carry the application-level payload CRC of comm's
// framing (Frame.CRC/Framed), which is verified by the receiving mailbox,
// not here: fault-plane-injected corruption must cross the wire intact so
// the receiver's reject-and-retransmit path is exercised end to end.
package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/comm"
)

// Wire message types.
const (
	typData  = 1 // a comm.Frame between ranks
	typBye   = 2 // graceful teardown: departure is not a death
	typDead  = 3 // a hosted rank died (Rank.Kill); body is the world rank
	typHello = 4 // bootstrap: dialer identifies its rank (+ mesh address)
	typTable = 5 // bootstrap: rank 0 broadcasts the address table

	// typJobHello is a rendezvous-broker check-in: job name, world rank,
	// world size, advertised mesh address (see broker.go). The broker
	// answers with a typTable once the job's roster is complete.
	typJobHello = 6
)

const (
	wireMagic   = 0x434d5457 // "CMTW"
	wireVersion = 1

	// headerLen is the fixed outer header: magic u32, version u8, type
	// u8, body length u32, body CRC32 u32.
	headerLen = 14

	// dataFixedLen is the fixed prefix of a data body: ctx u64, src u32,
	// dst u32, tag i64, sendVT f64, arrival f64, payload CRC u32, flags
	// u8, nData u32, nInts u32.
	dataFixedLen = 53

	// MaxBodyBytes bounds a wire message body. Reads validate the
	// declared length against this cap (and data bodies against their
	// element counts) before allocating, so a corrupt or hostile length
	// field can neither over-allocate nor desync the stream silently.
	MaxBodyBytes = 1 << 27

	flagFramed = 1 << 0
)

// castagnoli matches comm's payload CRC polynomial; reusing it keeps the
// codec dependency-free and the table shared process-wide.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Protocol errors. All decode failures are errors, never panics: the
// reader faces a real network and the fuzz target holds it to that.
var (
	ErrBadMagic   = errors.New("tcptransport: bad frame magic")
	ErrBadVersion = errors.New("tcptransport: unsupported frame version")
	ErrBadLength  = errors.New("tcptransport: frame length out of range")
	ErrBadCRC     = errors.New("tcptransport: frame body CRC mismatch")
	ErrTruncated  = errors.New("tcptransport: truncated frame")
)

// appendWire appends one outer-framed wire message to dst.
func appendWire(dst []byte, typ byte, body []byte) []byte {
	var h [headerLen]byte
	binary.LittleEndian.PutUint32(h[0:], wireMagic)
	h[4] = wireVersion
	h[5] = typ
	binary.LittleEndian.PutUint32(h[6:], uint32(len(body)))
	binary.LittleEndian.PutUint32(h[10:], crc32.Checksum(body, castagnoli))
	dst = append(dst, h[:]...)
	return append(dst, body...)
}

// readWire reads and validates one wire message. The body buffer is
// freshly allocated and owned by the caller. io.EOF is returned only at
// a clean message boundary; a partial read is ErrTruncated.
func readWire(r io.Reader) (typ byte, body []byte, err error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, ErrTruncated
	}
	if _, err := io.ReadFull(r, h[1:]); err != nil {
		return 0, nil, ErrTruncated
	}
	if binary.LittleEndian.Uint32(h[0:]) != wireMagic {
		return 0, nil, ErrBadMagic
	}
	if h[4] != wireVersion {
		return 0, nil, ErrBadVersion
	}
	typ = h[5]
	n := int(binary.LittleEndian.Uint32(h[6:]))
	if n > MaxBodyBytes {
		return 0, nil, ErrBadLength
	}
	body, err = readBody(r, n)
	if err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(h[10:]) {
		return 0, nil, ErrBadCRC
	}
	return typ, body, nil
}

// readBody reads an n-byte body in bounded chunks, so memory grows with
// the bytes a peer actually sends rather than with a declared length —
// a lying header cannot allocate MaxBodyBytes from a short stream.
func readBody(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	cap0 := n
	if cap0 > chunk {
		cap0 = chunk
	}
	body := make([]byte, 0, cap0)
	for len(body) < n {
		take := n - len(body)
		if take > chunk {
			take = chunk
		}
		off := len(body)
		body = append(body, make([]byte, take)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return nil, ErrTruncated
		}
	}
	return body, nil
}

// appendData appends a type-data wire message carrying f to dst.
func appendData(dst []byte, f *comm.Frame) []byte {
	bodyLen := dataFixedLen + 8*(len(f.Data)+len(f.Ints))
	var h [headerLen]byte
	binary.LittleEndian.PutUint32(h[0:], wireMagic)
	h[4] = wireVersion
	h[5] = typData
	binary.LittleEndian.PutUint32(h[6:], uint32(bodyLen))
	// CRC is computed over the body after it is written.
	dst = append(dst, h[:]...)
	bodyStart := len(dst)

	var b [dataFixedLen]byte
	binary.LittleEndian.PutUint64(b[0:], f.Ctx)
	binary.LittleEndian.PutUint32(b[8:], uint32(f.Src))
	binary.LittleEndian.PutUint32(b[12:], uint32(f.Dst))
	binary.LittleEndian.PutUint64(b[16:], uint64(f.Tag))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(f.SendVT))
	binary.LittleEndian.PutUint64(b[32:], math.Float64bits(f.Arrival))
	binary.LittleEndian.PutUint32(b[40:], f.CRC)
	if f.Framed {
		b[44] = flagFramed
	}
	binary.LittleEndian.PutUint32(b[45:], uint32(len(f.Data)))
	binary.LittleEndian.PutUint32(b[49:], uint32(len(f.Ints)))
	dst = append(dst, b[:]...)
	var w [8]byte
	for _, v := range f.Data {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		dst = append(dst, w[:]...)
	}
	for _, v := range f.Ints {
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		dst = append(dst, w[:]...)
	}
	binary.LittleEndian.PutUint32(dst[bodyStart-4:bodyStart], crc32.Checksum(dst[bodyStart:], castagnoli))
	return dst
}

// decodeData decodes a type-data body into a Frame. The element counts
// are cross-validated against the body length before any payload
// allocation, so a corrupted count cannot over-allocate.
func decodeData(body []byte) (*comm.Frame, error) {
	if len(body) < dataFixedLen {
		return nil, ErrTruncated
	}
	nData := binary.LittleEndian.Uint32(body[45:])
	nInts := binary.LittleEndian.Uint32(body[49:])
	if nData > MaxBodyBytes/8 || nInts > MaxBodyBytes/8 {
		return nil, ErrBadLength
	}
	want := dataFixedLen + 8*(int(nData)+int(nInts))
	if len(body) != want {
		return nil, fmt.Errorf("%w: data body %d bytes, counts need %d", ErrBadLength, len(body), want)
	}
	f := &comm.Frame{
		Ctx:     binary.LittleEndian.Uint64(body[0:]),
		Src:     int(int32(binary.LittleEndian.Uint32(body[8:]))),
		Dst:     int(int32(binary.LittleEndian.Uint32(body[12:]))),
		Tag:     int(int64(binary.LittleEndian.Uint64(body[16:]))),
		SendVT:  math.Float64frombits(binary.LittleEndian.Uint64(body[24:])),
		Arrival: math.Float64frombits(binary.LittleEndian.Uint64(body[32:])),
		CRC:     binary.LittleEndian.Uint32(body[40:]),
		Framed:  body[44]&flagFramed != 0,
	}
	off := dataFixedLen
	if nData > 0 {
		f.Data = make([]float64, nData)
		for i := range f.Data {
			f.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
	}
	if nInts > 0 {
		f.Ints = make([]int64, nInts)
		for i := range f.Ints {
			f.Ints[i] = int64(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
	}
	return f, nil
}

// appendDead appends a death-notice wire message for world rank w.
func appendDead(dst []byte, w int) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(w))
	return appendWire(dst, typDead, b[:])
}

// decodeDead decodes a death-notice body.
func decodeDead(body []byte) (int, error) {
	if len(body) != 4 {
		return 0, ErrBadLength
	}
	return int(int32(binary.LittleEndian.Uint32(body))), nil
}

// appendHello appends the bootstrap hello: the dialer's world rank and
// (possibly empty) advertised mesh listen address.
func appendHello(dst []byte, rank int, addr string) []byte {
	if len(addr) > math.MaxUint16 {
		addr = addr[:math.MaxUint16]
	}
	b := make([]byte, 6+len(addr))
	binary.LittleEndian.PutUint32(b[0:], uint32(rank))
	binary.LittleEndian.PutUint16(b[4:], uint16(len(addr)))
	copy(b[6:], addr)
	return appendWire(dst, typHello, b)
}

// decodeHello decodes a hello body.
func decodeHello(body []byte) (rank int, addr string, err error) {
	if len(body) < 6 {
		return 0, "", ErrTruncated
	}
	rank = int(int32(binary.LittleEndian.Uint32(body[0:])))
	n := int(binary.LittleEndian.Uint16(body[4:]))
	if len(body) != 6+n {
		return 0, "", ErrBadLength
	}
	return rank, string(body[6:]), nil
}

// appendTable appends the bootstrap address table: one mesh listen
// address per world rank, in rank order.
func appendTable(dst []byte, addrs []string) []byte {
	n := 4
	for _, a := range addrs {
		if len(a) > math.MaxUint16 {
			a = a[:math.MaxUint16]
		}
		n += 2 + len(a)
	}
	b := make([]byte, 0, n)
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(len(addrs)))
	b = append(b, u[:]...)
	for _, a := range addrs {
		if len(a) > math.MaxUint16 {
			a = a[:math.MaxUint16]
		}
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(a)))
		b = append(b, l[:]...)
		b = append(b, a...)
	}
	return appendWire(dst, typTable, b)
}

// decodeTable decodes an address-table body. The entry count is bounded
// by the body length (2 bytes minimum per entry), so a corrupted count
// cannot over-allocate.
func decodeTable(body []byte) ([]string, error) {
	if len(body) < 4 {
		return nil, ErrTruncated
	}
	count := binary.LittleEndian.Uint32(body[0:])
	if int64(count) > int64(len(body)-4)/2 {
		return nil, ErrBadLength
	}
	addrs := make([]string, 0, count)
	off := 4
	for i := uint32(0); i < count; i++ {
		if off+2 > len(body) {
			return nil, ErrTruncated
		}
		n := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+n > len(body) {
			return nil, ErrTruncated
		}
		addrs = append(addrs, string(body[off:off+n]))
		off += n
	}
	if off != len(body) {
		return nil, ErrBadLength
	}
	return addrs, nil
}
