package tcptransport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
)

func TestParseRendezvous(t *testing.T) {
	var cfg Config
	if err := ParseRendezvous("/tmp/rdv-file", &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.RendezvousFile != "/tmp/rdv-file" || cfg.BrokerAddr != "" {
		t.Fatalf("file form parsed as %+v", cfg)
	}

	cfg = Config{}
	if err := ParseRendezvous("tcp://10.0.0.1:9333/jobA", &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.BrokerAddr != "10.0.0.1:9333" || cfg.Job != "jobA" || cfg.RendezvousFile != "" {
		t.Fatalf("url form parsed as %+v", cfg)
	}

	cfg = Config{}
	if err := ParseRendezvous("tcp://localhost:70000/x", &cfg); err == nil {
		// SplitHostPort accepts any port string; the dial rejects it
		// later. Only a missing port is a parse error.
		_ = cfg
	}
	if err := ParseRendezvous("tcp://noport", &Config{}); err == nil {
		t.Fatal("address without port accepted")
	}
}

func TestJobHelloRoundTrip(t *testing.T) {
	wire := appendJobHello(nil, "job-7", 3, 8, "10.1.2.3:4567")
	typ, body, err := readWire(bytes.NewReader(wire))
	if err != nil || typ != typJobHello {
		t.Fatalf("typ %d err %v", typ, err)
	}
	job, rank, size, addr, err := decodeJobHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if job != "job-7" || rank != 3 || size != 8 || addr != "10.1.2.3:4567" {
		t.Fatalf("round trip: %q %d %d %q", job, rank, size, addr)
	}
	// Truncation and length lies must error, not panic.
	for cut := 0; cut < len(body); cut++ {
		decodeJobHello(body[:cut])
	}
}

// Two concurrent jobs rendezvous through one broker, form their meshes,
// and run a collective each — no rendezvous file anywhere.
func TestBrokerTwoConcurrentJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns goroutine fleets with real sockets")
	}
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve()
	defer b.Close()

	runJob := func(job string, size int) error {
		var wg sync.WaitGroup
		errs := make([]error, size)
		for rank := 0; rank < size; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				tr, err := New(Config{
					Rank: rank, Size: size,
					BrokerAddr: b.Addr(), Job: job,
					BootstrapTimeout: 30 * time.Second,
					CloseTimeout:     30 * time.Second,
				})
				if err != nil {
					errs[rank] = err
					return
				}
				_, err = comm.RunDistributed(tr, comm.Options{}, func(r *comm.Rank) error {
					sum := r.Allreduce(comm.OpSum, []float64{1})
					if sum[0] != float64(size) {
						return fmt.Errorf("allreduce = %v, want %d", sum[0], size)
					}
					return nil
				})
				errs[rank] = err
			}(rank)
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				return fmt.Errorf("%s rank %d: %w", job, rank, err)
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	jobErrs := make([]error, 2)
	for i, spec := range []struct {
		job  string
		size int
	}{{"alpha", 3}, {"beta", 4}} {
		wg.Add(1)
		go func(i int, job string, size int) {
			defer wg.Done()
			jobErrs[i] = runJob(job, size)
		}(i, spec.job, spec.size)
	}
	wg.Wait()
	for _, err := range jobErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
