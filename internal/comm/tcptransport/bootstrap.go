package tcptransport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Mesh formation. Both modes end in the same shape — a full mesh with
// exactly one connection per rank pair, the lower-numbered side having
// dialed — so the rest of the transport never cares how the mesh formed.
//
// Rendezvous mode exists because fixed ports collide in CI: every rank
// binds an ephemeral port, and only rank 0's address must be discovered
// out of band (a known address, or a file the launcher passes to all
// ranks, which rank 0 writes atomically once it knows its port).

// bootstrap forms the mesh per the config, filling t.ln and t.peers.
func (t *Transport) bootstrap() error {
	deadline := time.Now().Add(t.cfg.bootstrapTimeout())
	if t.cfg.Peers != nil {
		return t.bootstrapExplicit(deadline)
	}
	if t.cfg.BrokerAddr != "" {
		return t.bootstrapBroker(deadline)
	}
	return t.bootstrapRendezvous(deadline)
}

// bootstrapExplicit: every address is known up front; rank i listens on
// Peers[i], dials every higher rank, accepts every lower one.
func (t *Transport) bootstrapExplicit(deadline time.Time) error {
	ln, err := net.Listen("tcp", t.cfg.Peers[t.cfg.Rank])
	if err != nil {
		return fmt.Errorf("tcptransport: listen %s: %w", t.cfg.Peers[t.cfg.Rank], err)
	}
	t.ln = ln
	return t.meshConnect(deadline, t.cfg.Peers, 0)
}

// bootstrapRendezvous: ephemeral ports, rank 0 as the address broker.
func (t *Transport) bootstrapRendezvous(deadline time.Time) error {
	listenAddr := "127.0.0.1:0"
	if t.cfg.Rank == 0 && t.cfg.RendezvousAddr != "" {
		listenAddr = t.cfg.RendezvousAddr
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("tcptransport: listen %s: %w", listenAddr, err)
	}
	t.ln = ln

	if t.cfg.Rank == 0 {
		if t.cfg.RendezvousFile != "" {
			if err := publishAddr(t.cfg.RendezvousFile, ln.Addr().String()); err != nil {
				return err
			}
		}
		return t.brokerMesh(deadline)
	}
	return t.joinMesh(deadline)
}

// brokerMesh is rank 0's side: accept a hello from every other rank
// (learning its mesh address; the connection itself becomes the 0<->i
// mesh edge), then broadcast the completed address table.
func (t *Transport) brokerMesh(deadline time.Time) error {
	addrs := make([]string, t.cfg.Size)
	addrs[0] = t.ln.Addr().String()
	type helloConn struct {
		conn net.Conn
		rank int
	}
	var conns []helloConn
	for got := 0; got < t.cfg.Size-1; got++ {
		if dl, ok := t.ln.(*net.TCPListener); ok {
			dl.SetDeadline(deadline)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcptransport: rank 0 accept (have %d/%d peers): %w", got, t.cfg.Size-1, err)
		}
		typ, body, rerr := readWireDeadline(conn, deadline)
		if rerr != nil || typ != typHello {
			conn.Close()
			got-- // not a mesh peer (port scan, stray probe); keep waiting
			continue
		}
		rank, addr, derr := decodeHello(body)
		if derr != nil || rank <= 0 || rank >= t.cfg.Size || addrs[rank] != "" {
			conn.Close()
			return fmt.Errorf("tcptransport: rank 0 got bad hello (rank %d): %v", rank, derr)
		}
		addrs[rank] = addr
		conns = append(conns, helloConn{conn, rank})
	}
	table := appendTable(nil, addrs)
	for _, hc := range conns {
		if err := writeWireDeadline(hc.conn, table, deadline); err != nil {
			return fmt.Errorf("tcptransport: rank 0 send table to rank %d: %w", hc.rank, err)
		}
		if err := t.addPeer(hc.rank, hc.conn); err != nil {
			return err
		}
	}
	return nil
}

// joinMesh is a non-zero rank's side: dial rank 0, introduce ourselves
// with our own mesh address, receive the table, then form the remaining
// edges lower-dials-higher among ranks >= 1.
func (t *Transport) joinMesh(deadline time.Time) error {
	addr0 := t.cfg.RendezvousAddr
	if addr0 == "" {
		var err error
		addr0, err = awaitAddr(t.cfg.RendezvousFile, deadline)
		if err != nil {
			return err
		}
	}
	conn0, err := dialRetry(addr0, deadline)
	if err != nil {
		return fmt.Errorf("tcptransport: rank %d dial rank 0 at %s: %w", t.cfg.Rank, addr0, err)
	}
	hello := appendHello(nil, t.cfg.Rank, t.ln.Addr().String())
	if err := writeWireDeadline(conn0, hello, deadline); err != nil {
		return fmt.Errorf("tcptransport: rank %d hello to rank 0: %w", t.cfg.Rank, err)
	}
	typ, body, err := readWireDeadline(conn0, deadline)
	if err != nil || typ != typTable {
		return fmt.Errorf("tcptransport: rank %d awaiting address table: type %d, %v", t.cfg.Rank, typ, err)
	}
	addrs, err := decodeTable(body)
	if err != nil || len(addrs) != t.cfg.Size {
		return fmt.Errorf("tcptransport: rank %d bad address table (%d entries): %v", t.cfg.Rank, len(addrs), err)
	}
	if err := t.addPeer(0, conn0); err != nil {
		return err
	}
	return t.meshConnect(deadline, addrs, 1)
}

// meshConnect forms the lower-dials-higher edges among ranks >= lowest,
// given everyone's listen address: this rank dials every higher rank
// (identifying itself with a hello) and accepts every lower one. Edges
// already present in t.peers (rank 0's brokered connections) are skipped.
func (t *Transport) meshConnect(deadline time.Time, addrs []string, lowest int) error {
	id := t.cfg.Rank
	type dialResult struct {
		rank int
		conn net.Conn
		err  error
	}
	var dials int
	results := make(chan dialResult, t.cfg.Size)
	for j := id + 1; j < t.cfg.Size; j++ {
		if j < lowest || t.peers[j] != nil {
			continue
		}
		dials++
		go func(j int) {
			conn, err := dialRetry(addrs[j], deadline)
			if err == nil {
				err = writeWireDeadline(conn, appendHello(nil, id, ""), deadline)
				if err != nil {
					conn.Close()
					conn = nil
				}
			}
			results <- dialResult{j, conn, err}
		}(j)
	}

	accepts := 0
	for j := lowest; j < id; j++ {
		if t.peers[j] == nil {
			accepts++
		}
	}
	for accepts > 0 {
		if dl, ok := t.ln.(*net.TCPListener); ok {
			dl.SetDeadline(deadline)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcptransport: rank %d accept (%d edges pending): %w", id, accepts, err)
		}
		typ, body, rerr := readWireDeadline(conn, deadline)
		if rerr != nil || typ != typHello {
			conn.Close()
			continue // stray connection; keep waiting
		}
		rank, _, derr := decodeHello(body)
		if derr != nil || rank < lowest || rank >= id {
			conn.Close()
			return fmt.Errorf("tcptransport: rank %d got bad hello (rank %d): %v", id, rank, derr)
		}
		if err := t.addPeer(rank, conn); err != nil {
			return err
		}
		accepts--
	}

	for ; dials > 0; dials-- {
		res := <-results
		if res.err != nil {
			return fmt.Errorf("tcptransport: rank %d dial rank %d: %w", id, res.rank, res.err)
		}
		if err := t.addPeer(res.rank, res.conn); err != nil {
			return err
		}
	}
	return nil
}

// dialRetry dials addr with backoff until it connects or the deadline
// expires — peers of a launched run come up in any order.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 5 * time.Millisecond
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = errors.New("deadline expired")
			}
			return nil, lastErr
		}
		conn, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return conn, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// publishAddr atomically writes addr to path (write temp + rename), so a
// polling reader never observes a partial address.
func publishAddr(path, addr string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".rendezvous-*")
	if err != nil {
		return fmt.Errorf("tcptransport: publish rendezvous address: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.WriteString(addr + "\n"); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("tcptransport: publish rendezvous address: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("tcptransport: publish rendezvous address: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("tcptransport: publish rendezvous address: %w", err)
	}
	return nil
}

// awaitAddr polls path until rank 0's address appears or the deadline
// expires.
func awaitAddr(path string, deadline time.Time) (string, error) {
	if path == "" {
		return "", errors.New("tcptransport: no rendezvous address or file configured")
	}
	for {
		b, err := os.ReadFile(path)
		if err == nil {
			if addr := strings.TrimSpace(string(b)); addr != "" {
				return addr, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("tcptransport: rendezvous file %s empty after timeout", path)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
