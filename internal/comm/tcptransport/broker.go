package tcptransport

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"time"
)

// Rendezvous broker: a standalone TCP service that replaces the shared
// rendezvous *file* with address exchange over the network, so a run's
// ranks need no common filesystem — the launcher starts `cmtbroker`
// once, and every rank is pointed at it with `-rdv tcp://host:port/job`.
//
// Protocol: each rank connects, sends a job hello (job name, its rank,
// the world size, and its mesh listen address), and waits. When all Size
// ranks of a job have checked in, the broker sends every one of them the
// completed address table and closes the connections; the ranks then
// form the usual full mesh directly (lower rank dials higher). The
// broker connections are bootstrap-only — no application traffic ever
// crosses the broker, and one broker serves any number of concurrent
// jobs, keyed by name.

// ParseRendezvous interprets a -rdv argument into cfg: a
// "tcp://host:port/job" URL selects broker bootstrap (the job component
// may be empty when the broker serves a single job), anything else is a
// rendezvous file path.
func ParseRendezvous(s string, cfg *Config) error {
	if !strings.HasPrefix(s, "tcp://") {
		cfg.RendezvousFile = s
		return nil
	}
	rest := strings.TrimPrefix(s, "tcp://")
	addr, job := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		addr, job = rest[:i], rest[i+1:]
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return fmt.Errorf("tcptransport: rendezvous URL %q: %w", s, err)
	}
	cfg.BrokerAddr = addr
	cfg.Job = job
	return nil
}

// brokerJob is one job's partial roster on the broker.
type brokerJob struct {
	size  int
	addrs []string
	conns []net.Conn // indexed by rank; nil where not yet checked in
	got   int
}

// Broker is the rendezvous broker server. Create with NewBroker, run
// Serve (blocking), stop with Close.
type Broker struct {
	ln   net.Listener
	mu   sync.Mutex
	jobs map[string]*brokerJob
	// HelloTimeout bounds how long an accepted connection may take to
	// deliver its hello (default 30s). A rank then waits on its open
	// connection, without deadline, for the rest of its job to arrive.
	HelloTimeout time.Duration
}

// NewBroker listens on addr (e.g. "127.0.0.1:0") and returns the broker.
func NewBroker(addr string) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: broker listen %s: %w", addr, err)
	}
	return &Broker{ln: ln, jobs: make(map[string]*brokerJob)}, nil
}

// Addr returns the broker's actual listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// Close stops the accept loop and drops every pending connection.
func (b *Broker) Close() error {
	err := b.ln.Close()
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, j := range b.jobs {
		for _, c := range j.conns {
			if c != nil {
				c.Close()
			}
		}
	}
	b.jobs = make(map[string]*brokerJob)
	return err
}

// Serve accepts rank check-ins until Close. Per-connection errors are
// contained (the offending connection is dropped); only listener failure
// ends the loop.
func (b *Broker) Serve() error {
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return err
		}
		go b.handle(conn)
	}
}

func (b *Broker) handle(conn net.Conn) {
	hello := 30 * time.Second
	if b.HelloTimeout > 0 {
		hello = b.HelloTimeout
	}
	typ, body, err := readWireDeadline(conn, time.Now().Add(hello))
	if err != nil || typ != typJobHello {
		conn.Close()
		return
	}
	job, rank, size, addr, err := decodeJobHello(body)
	if err != nil || rank < 0 || rank >= size || size < 1 || addr == "" {
		conn.Close()
		return
	}

	b.mu.Lock()
	j := b.jobs[job]
	if j == nil {
		j = &brokerJob{size: size, addrs: make([]string, size), conns: make([]net.Conn, size)}
		b.jobs[job] = j
	}
	if size != j.size || j.conns[rank] != nil {
		// Size disagreement or duplicate rank: reject the newcomer, keep
		// the roster (a retrying rank reconnects after its first
		// connection died — that slot frees when the write fails).
		b.mu.Unlock()
		conn.Close()
		return
	}
	j.addrs[rank] = addr
	j.conns[rank] = conn
	j.got++
	if j.got < j.size {
		b.mu.Unlock()
		return
	}
	delete(b.jobs, job)
	b.mu.Unlock()

	table := appendTable(nil, j.addrs)
	deadline := time.Now().Add(hello)
	for _, c := range j.conns {
		_ = writeWireDeadline(c, table, deadline)
		c.Close()
	}
}

// bootstrapBroker forms the mesh through a rendezvous broker: listen on
// an ephemeral port, check in with the broker, receive the full address
// table, then connect every pair directly (lower rank dials higher).
func (t *Transport) bootstrapBroker(deadline time.Time) error {
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return fmt.Errorf("tcptransport: listen: %w", err)
	}
	t.ln = ln

	conn, err := dialRetry(t.cfg.BrokerAddr, deadline)
	if err != nil {
		return fmt.Errorf("tcptransport: rank %d dial broker %s: %w", t.cfg.Rank, t.cfg.BrokerAddr, err)
	}
	defer conn.Close()
	hello := appendJobHello(nil, t.cfg.Job, t.cfg.Rank, t.cfg.Size, advertiseAddr(conn, ln))
	if err := writeWireDeadline(conn, hello, deadline); err != nil {
		return fmt.Errorf("tcptransport: rank %d hello to broker: %w", t.cfg.Rank, err)
	}
	typ, body, err := readWireDeadline(conn, deadline)
	if err != nil || typ != typTable {
		return fmt.Errorf("tcptransport: rank %d awaiting broker table: type %d, %v", t.cfg.Rank, typ, err)
	}
	addrs, err := decodeTable(body)
	if err != nil || len(addrs) != t.cfg.Size {
		return fmt.Errorf("tcptransport: rank %d bad broker table (%d entries): %v", t.cfg.Rank, len(addrs), err)
	}
	return t.meshConnect(deadline, addrs, 0)
}

// advertiseAddr derives the address peers should dial: the IP this host
// used to reach the broker (loopback stays loopback, a routed interface
// stays routed) joined with the mesh listener's port.
func advertiseAddr(brokerConn net.Conn, ln net.Listener) string {
	port := ln.Addr().(*net.TCPAddr).Port
	ip := "127.0.0.1"
	if a, ok := brokerConn.LocalAddr().(*net.TCPAddr); ok && a.IP != nil && !a.IP.IsUnspecified() {
		ip = a.IP.String()
	}
	return net.JoinHostPort(ip, fmt.Sprint(port))
}

// appendJobHello appends the broker check-in: job name, world rank,
// world size, and the rank's advertised mesh address.
func appendJobHello(dst []byte, job string, rank, size int, addr string) []byte {
	if len(job) > math.MaxUint16 {
		job = job[:math.MaxUint16]
	}
	if len(addr) > math.MaxUint16 {
		addr = addr[:math.MaxUint16]
	}
	b := make([]byte, 0, 12+len(job)+len(addr))
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(rank))
	b = append(b, u[:]...)
	binary.LittleEndian.PutUint32(u[:], uint32(size))
	b = append(b, u[:]...)
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(job)))
	b = append(b, l[:]...)
	b = append(b, job...)
	binary.LittleEndian.PutUint16(l[:], uint16(len(addr)))
	b = append(b, l[:]...)
	b = append(b, addr...)
	return appendWire(dst, typJobHello, b)
}

// decodeJobHello decodes a broker check-in body.
func decodeJobHello(body []byte) (job string, rank, size int, addr string, err error) {
	if len(body) < 12 {
		return "", 0, 0, "", ErrTruncated
	}
	rank = int(int32(binary.LittleEndian.Uint32(body[0:])))
	size = int(int32(binary.LittleEndian.Uint32(body[4:])))
	nj := int(binary.LittleEndian.Uint16(body[8:]))
	off := 10
	if off+nj+2 > len(body) {
		return "", 0, 0, "", ErrTruncated
	}
	job = string(body[off : off+nj])
	off += nj
	na := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	if off+na != len(body) {
		return "", 0, 0, "", ErrBadLength
	}
	return job, rank, size, string(body[off:]), nil
}
