//go:build race

package tcptransport

// raceEnabled reports that the race detector is active. The Isend/Irecv
// storm test always runs, but trims its message volume when instrumented
// so CI race jobs stay fast; the uninstrumented run keeps the full storm
// as a throughput smoke.
const raceEnabled = true
