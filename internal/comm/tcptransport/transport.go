package tcptransport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
)

// Config describes one process of a TCP-backed run: which world rank it
// hosts and how the full mesh is formed. Exactly one of the two bootstrap
// modes is used:
//
//   - Explicit peers: Peers lists every rank's listen address (len ==
//     Size); rank i listens on Peers[i] and rank i dials rank j for every
//     j > i.
//   - Rendezvous: every rank listens on an ephemeral port; rank 0
//     publishes its address (RendezvousAddr, or atomically written to
//     RendezvousFile for launchers that pick ports at runtime), the
//     others dial it, identify themselves, and receive the full address
//     table, then the pairs among ranks >= 1 dial lower-to-higher.
type Config struct {
	// Rank is the world rank this process hosts.
	Rank int
	// Size is the world communicator size (number of processes).
	Size int
	// Peers, when len == Size, selects explicit-peers bootstrap.
	Peers []string
	// RendezvousAddr is rank 0's listen address ("host:port"). On rank 0
	// it is bound directly; on other ranks it is dialed. Empty means
	// rank 0 binds 127.0.0.1:0 and RendezvousFile must carry the result.
	RendezvousAddr string
	// RendezvousFile, when set, is where rank 0 atomically publishes its
	// actual listen address and where other ranks poll for it.
	RendezvousFile string
	// BrokerAddr, when set, selects broker bootstrap: every rank checks
	// in with the rendezvous broker (cmd/cmtbroker) at this address and
	// receives the full address table over the network — no shared
	// filesystem needed. Usually set by ParseRendezvous from a
	// "tcp://host:port/job" -rdv argument.
	BrokerAddr string
	// Job names this run at the broker, so one broker can rendezvous any
	// number of concurrent runs. Empty is a valid (single-job) name.
	Job string
	// BootstrapTimeout bounds the whole mesh-formation step (dial
	// retries, hellos, table). Zero means 30s.
	BootstrapTimeout time.Duration
	// CloseTimeout bounds the graceful-teardown linger waiting for every
	// peer's goodbye. Zero means 30s.
	CloseTimeout time.Duration
}

func (c *Config) bootstrapTimeout() time.Duration {
	if c.BootstrapTimeout > 0 {
		return c.BootstrapTimeout
	}
	return 30 * time.Second
}

func (c *Config) closeTimeout() time.Duration {
	if c.CloseTimeout > 0 {
		return c.CloseTimeout
	}
	return 30 * time.Second
}

// sendq is a per-peer unbounded outbound queue drained by one writer
// goroutine. Pushes never block, which is what keeps comm's eager-send
// guarantee over a real socket: if the kernel buffer fills mid-pairwise
// exchange, frames queue here instead of blocking the sending rank.
type sendq struct {
	mu      sync.Mutex
	cond    *sync.Cond
	bufs    [][]byte
	closed  bool // no further pushes; writer exits after draining
	discard bool // writer hit a dead socket; drop instead of accumulate
}

func newSendq() *sendq {
	q := &sendq{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *sendq) push(b []byte) {
	q.mu.Lock()
	if q.closed || q.discard {
		q.mu.Unlock()
		return
	}
	q.bufs = append(q.bufs, b)
	q.mu.Unlock()
	q.cond.Signal()
}

// close stops accepting pushes; the writer drains what is queued, then
// exits. Safe to call more than once.
func (q *sendq) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// peer is one remote process of the mesh.
type peer struct {
	rank     int
	conn     net.Conn
	q        *sendq
	byed     atomic.Bool // received their goodbye
	readDone chan struct{}
	wrDone   chan struct{}
}

// Transport is a comm.Transport over a TCP full mesh, one process per
// world rank. Create it with New (which forms the mesh, so all processes
// of a run must be started together), hand it to comm.RunDistributed.
type Transport struct {
	cfg     Config
	ln      net.Listener
	peers   []*peer // by world rank; nil at Config.Rank
	rcv     comm.Receiver
	started atomic.Bool
	down    atomic.Bool // Close/Abort begun: reader errors are expected
}

var _ comm.Transport = (*Transport)(nil)

// New forms the mesh: listen, bootstrap (rendezvous or explicit peers),
// and connect to every peer. It blocks until all Size processes are
// interconnected or the bootstrap timeout expires.
func New(cfg Config) (*Transport, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("tcptransport: size must be >= 1, got %d", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("tcptransport: rank %d outside [0,%d)", cfg.Rank, cfg.Size)
	}
	if cfg.Peers != nil && len(cfg.Peers) != cfg.Size {
		return nil, fmt.Errorf("tcptransport: %d peer addresses for %d ranks", len(cfg.Peers), cfg.Size)
	}
	t := &Transport{cfg: cfg, peers: make([]*peer, cfg.Size)}
	if err := t.bootstrap(); err != nil {
		t.teardownConns()
		return nil, err
	}
	return t, nil
}

// Name implements comm.Transport.
func (t *Transport) Name() string { return "tcp" }

// Size implements comm.Transport.
func (t *Transport) Size() int { return t.cfg.Size }

// LocalRanks implements comm.Transport: one hosted rank per process.
func (t *Transport) LocalRanks() []int { return []int{t.cfg.Rank} }

// Start spawns the per-peer reader and writer goroutines and begins
// delivering inbound frames into rcv.
func (t *Transport) Start(rcv comm.Receiver) error {
	if t.started.Swap(true) {
		return fmt.Errorf("tcptransport: Start called twice")
	}
	t.rcv = rcv
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		go t.writeLoop(p)
		go t.readLoop(p)
	}
	return nil
}

// Send implements comm.Transport: serialize now (the frame's payload
// slices are only borrowed) and queue on the destination process's
// writer. A departed peer swallows the frame, matching the semantics of
// an eager send into a dead rank's mailbox.
func (t *Transport) Send(dstWorld int, f *comm.Frame) error {
	if dstWorld < 0 || dstWorld >= len(t.peers) || t.peers[dstWorld] == nil {
		return fmt.Errorf("tcptransport: no peer hosts world rank %d", dstWorld)
	}
	t.peers[dstWorld].q.push(appendData(nil, f))
	return nil
}

// NotifyDead implements comm.Transport: announce a hosted rank's death
// to every peer, ordered after all frames already queued to each.
func (t *Transport) NotifyDead(world int) {
	for _, p := range t.peers {
		if p != nil {
			p.q.push(appendDead(nil, world))
		}
	}
}

// Close implements comm.Transport's graceful teardown: queue a goodbye
// behind all outstanding frames, flush, half-close, then linger until
// every peer's goodbye (or death notice) arrives so no departure is
// mistaken for a crash — on either side.
func (t *Transport) Close() error {
	t.down.Store(true)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.q.push(appendWire(nil, typBye, nil))
		p.q.close()
	}
	deadline := time.NewTimer(t.cfg.closeTimeout())
	defer deadline.Stop()
	var firstErr error
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		select {
		case <-p.wrDone:
		case <-deadline.C:
			firstErr = fmt.Errorf("tcptransport: close timeout flushing to rank %d", p.rank)
			t.teardownConns()
			return firstErr
		}
	}
	// Writers have flushed and half-closed; wait for each peer to finish
	// talking (their bye, then EOF).
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		select {
		case <-p.readDone:
		case <-deadline.C:
			firstErr = fmt.Errorf("tcptransport: close timeout waiting for goodbye from rank %d", p.rank)
			t.teardownConns()
			return firstErr
		}
	}
	t.teardownConns()
	return firstErr
}

// Abort implements comm.Transport: immediate teardown, no goodbye. Peers
// observe the disconnect as the death of this process's rank.
func (t *Transport) Abort() {
	t.down.Store(true)
	for _, p := range t.peers {
		if p != nil {
			p.q.close()
		}
	}
	t.teardownConns()
}

func (t *Transport) teardownConns() {
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range t.peers {
		if p != nil && p.conn != nil {
			p.conn.Close()
		}
	}
}

// writeLoop drains one peer's queue onto its socket. On exit (queue
// closed and drained) it half-closes the connection so the peer's reader
// sees a clean EOF after the goodbye.
func (t *Transport) writeLoop(p *peer) {
	defer close(p.wrDone)
	for {
		p.q.mu.Lock()
		for len(p.q.bufs) == 0 && !p.q.closed {
			p.q.cond.Wait()
		}
		batch := p.q.bufs
		p.q.bufs = nil
		closed := p.q.closed
		p.q.mu.Unlock()
		if len(batch) > 0 && !p.q.discard {
			bufs := net.Buffers(batch)
			if _, err := bufs.WriteTo(p.conn); err != nil {
				// Peer is gone; stop accumulating and let receive-side
				// dead-rank detection handle the rest.
				p.q.mu.Lock()
				p.q.discard = true
				p.q.bufs = nil
				p.q.mu.Unlock()
			}
		}
		if closed {
			break
		}
	}
	if tc, ok := p.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

// readLoop decodes one peer's inbound stream and routes it: data frames
// to the receiver, death notices to the fault plane, a goodbye marks the
// departure graceful. A broken stream (EOF without goodbye, protocol
// error) is a process failure: every rank it hosts is reported dead.
func (t *Transport) readLoop(p *peer) {
	defer close(p.readDone)
	br := bufio.NewReaderSize(p.conn, 1<<16)
	for {
		typ, body, err := readWire(br)
		if err != nil {
			if !p.byed.Load() && !t.down.Load() {
				t.rcv.PeerDead(p.rank)
			}
			return
		}
		switch typ {
		case typData:
			f, err := decodeData(body)
			if err != nil {
				if !t.down.Load() {
					t.rcv.PeerDead(p.rank)
				}
				return
			}
			t.rcv.DeliverFrame(f)
		case typDead:
			w, err := decodeDead(body)
			if err != nil {
				if !t.down.Load() {
					t.rcv.PeerDead(p.rank)
				}
				return
			}
			t.rcv.PeerDead(w)
		case typBye:
			p.byed.Store(true)
			// Keep reading: the clean EOF follows the peer's half-close.
		default:
			// Unknown type from a same-version peer: protocol error.
			if !t.down.Load() && !p.byed.Load() {
				t.rcv.PeerDead(p.rank)
			}
			return
		}
	}
}

func (t *Transport) addPeer(rank int, conn net.Conn) error {
	if rank < 0 || rank >= t.cfg.Size || rank == t.cfg.Rank {
		return fmt.Errorf("tcptransport: bogus peer rank %d", rank)
	}
	if t.peers[rank] != nil {
		return fmt.Errorf("tcptransport: duplicate connection for rank %d", rank)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	t.peers[rank] = &peer{
		rank:     rank,
		conn:     conn,
		q:        newSendq(),
		readDone: make(chan struct{}),
		wrDone:   make(chan struct{}),
	}
	return nil
}

// readWireDeadline is readWire with a read deadline, for bootstrap
// exchanges where a stalled peer must not hang the mesh forever.
func readWireDeadline(conn net.Conn, d time.Time) (byte, []byte, error) {
	conn.SetReadDeadline(d)
	defer conn.SetReadDeadline(time.Time{})
	return readWire(conn)
}

// writeWireDeadline writes one pre-encoded wire message under a deadline.
func writeWireDeadline(conn net.Conn, buf []byte, d time.Time) error {
	conn.SetWriteDeadline(d)
	defer conn.SetWriteDeadline(time.Time{})
	_, err := conn.Write(buf)
	return err
}
