package tcptransport

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"repro/internal/comm"
)

func frameEqual(a, b *comm.Frame) bool {
	if a.Ctx != b.Ctx || a.Src != b.Src || a.Dst != b.Dst || a.Tag != b.Tag ||
		a.CRC != b.CRC || a.Framed != b.Framed ||
		math.Float64bits(a.SendVT) != math.Float64bits(b.SendVT) ||
		math.Float64bits(a.Arrival) != math.Float64bits(b.Arrival) ||
		len(a.Data) != len(b.Data) || len(a.Ints) != len(b.Ints) {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	for i := range a.Ints {
		if a.Ints[i] != b.Ints[i] {
			return false
		}
	}
	return true
}

func TestDataRoundTrip(t *testing.T) {
	frames := []*comm.Frame{
		{},
		{Ctx: 7, Src: 3, Dst: 1, Tag: 1 << 26, SendVT: 1.25e-6, Arrival: 2.5e-6},
		{Src: -1, Tag: -1, Data: []float64{math.Inf(1), math.NaN(), -0.0}},
		{Ctx: math.MaxUint64, Data: []float64{1, 2, 3}, Ints: []int64{-9, 0, 1 << 62},
			CRC: 0xdeadbeef, Framed: true, SendVT: math.MaxFloat64},
	}
	for i, f := range frames {
		wire := appendData(nil, f)
		typ, body, err := readWire(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("frame %d: readWire: %v", i, err)
		}
		if typ != typData {
			t.Fatalf("frame %d: type %d", i, typ)
		}
		got, err := decodeData(body)
		if err != nil {
			t.Fatalf("frame %d: decodeData: %v", i, err)
		}
		if !frameEqual(f, got) {
			t.Fatalf("frame %d: round trip mismatch:\n  sent %+v\n  got  %+v", i, f, got)
		}
	}
}

func TestControlRoundTrip(t *testing.T) {
	wire := appendDead(nil, 12)
	typ, body, err := readWire(bytes.NewReader(wire))
	if err != nil || typ != typDead {
		t.Fatalf("dead: type %d err %v", typ, err)
	}
	if w, err := decodeDead(body); err != nil || w != 12 {
		t.Fatalf("dead: got %d, %v", w, err)
	}

	wire = appendHello(nil, 3, "127.0.0.1:4242")
	typ, body, err = readWire(bytes.NewReader(wire))
	if err != nil || typ != typHello {
		t.Fatalf("hello: type %d err %v", typ, err)
	}
	if rank, addr, err := decodeHello(body); err != nil || rank != 3 || addr != "127.0.0.1:4242" {
		t.Fatalf("hello: got %d %q, %v", rank, addr, err)
	}

	addrs := []string{"a:1", "", "b:22", "c:333"}
	wire = appendTable(nil, addrs)
	typ, body, err = readWire(bytes.NewReader(wire))
	if err != nil || typ != typTable {
		t.Fatalf("table: type %d err %v", typ, err)
	}
	got, err := decodeTable(body)
	if err != nil || len(got) != len(addrs) {
		t.Fatalf("table: got %v, %v", got, err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("table entry %d: %q != %q", i, got[i], addrs[i])
		}
	}
}

func TestReadWireRejects(t *testing.T) {
	good := appendData(nil, &comm.Frame{Data: []float64{1, 2}})

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := []struct {
		name string
		wire []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"truncated header", good[:5], ErrTruncated},
		{"truncated body", good[:len(good)-3], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) { b[0] ^= 0xff }), ErrBadMagic},
		{"bad version", corrupt(func(b []byte) { b[4] = 99 }), ErrBadVersion},
		{"oversized length", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[6:], MaxBodyBytes+1)
		}), ErrBadLength},
		{"body bit flip", corrupt(func(b []byte) { b[headerLen+20] ^= 1 }), ErrBadCRC},
	}
	for _, tc := range cases {
		if _, _, err := readWire(bytes.NewReader(tc.wire)); err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeDataRejectsCountMismatch(t *testing.T) {
	// A body whose element counts disagree with its length must error
	// before any payload allocation.
	body := make([]byte, dataFixedLen)
	binary.LittleEndian.PutUint32(body[45:], 1<<30) // nData claims 8 GiB
	if _, err := decodeData(body); err == nil {
		t.Fatal("oversized count accepted")
	}
	body = make([]byte, dataFixedLen+8)
	binary.LittleEndian.PutUint32(body[45:], 2) // two floats, one present
	if _, err := decodeData(body); err == nil {
		t.Fatal("count/length mismatch accepted")
	}
}

// FuzzReadFrame holds the codec to its contract under arbitrary input:
// truncated, oversized, and corrupt frames must error — never panic and
// never allocate beyond the declared caps. Wired into `make fuzz-smoke`.
func FuzzReadFrame(f *testing.F) {
	f.Add(appendData(nil, &comm.Frame{Data: []float64{1, 2, 3}, Ints: []int64{4}, Framed: true, CRC: 9}))
	f.Add(appendDead(nil, 3))
	f.Add(appendHello(nil, 1, "127.0.0.1:9"))
	f.Add(appendTable(nil, []string{"a:1", "b:2"}))
	f.Add(appendWire(nil, typBye, nil))
	f.Add([]byte{0x57, 0x54, 0x4d, 0x43}) // reversed magic
	f.Add(make([]byte, headerLen))
	f.Fuzz(func(t *testing.T, raw []byte) {
		br := bytes.NewReader(raw)
		for {
			typ, body, err := readWire(br)
			if err != nil {
				return // every malformed input must land here, not panic
			}
			if len(body) > MaxBodyBytes {
				t.Fatalf("readWire returned %d-byte body above cap", len(body))
			}
			switch typ {
			case typData:
				if fr, err := decodeData(body); err == nil {
					// Decoded payload sizes are bounded by the body that
					// carried them.
					if 8*(len(fr.Data)+len(fr.Ints)) > len(body) {
						t.Fatalf("decoded payload larger than body")
					}
					reenc := appendData(nil, fr)
					typ2, body2, err2 := readWire(bytes.NewReader(reenc))
					if err2 != nil || typ2 != typData {
						t.Fatalf("re-encode failed: %v", err2)
					}
					fr2, err2 := decodeData(body2)
					if err2 != nil || !frameEqual(fr, fr2) {
						t.Fatalf("decode/encode/decode not stable")
					}
				}
			case typDead:
				decodeDead(body)
			case typHello:
				decodeHello(body)
			case typTable:
				decodeTable(body)
			}
		}
	})
}
