package tcptransport

import (
	"fmt"
	"math/rand"

	"testing"

	"repro/internal/comm"
)

// TestTCPIsendIrecvStorm is the race-detector pattern for the TCP
// backend: every rank posts batches of nonblocking receives and fires
// eager sends at every peer concurrently with the transport's reader and
// writer goroutines, across both tag-matched and wildcard receives. Under
// `-race` (the CI race job runs ./internal/comm/..., which includes this
// package) the detector watches the sendq handoff, the direct-delivery
// completion from the reader goroutine, and the teardown path all at
// once. Payload contents are seeded per (src, batch) so delivery is also
// verified, not just survived.
func TestTCPIsendIrecvStorm(t *testing.T) {
	const size = 3
	batches, perBatch := 40, 8
	if raceEnabled {
		batches = 15
	}
	if testing.Short() {
		batches = 5
	}
	runTCP(t, size, comm.Options{}, func(r *comm.Rank) error {
		id := r.ID()
		for b := 0; b < batches; b++ {
			// Ranks drift across batches (no barrier), so each batch gets
			// its own tag: an early send from a fast peer's later batch
			// queues instead of matching this batch's receives.
			tag := 100 + b
			// Post all receives first (some match queued messages, some
			// are completed directly by the transport reader), then fire
			// all sends, then drain.
			// Every third batch receives entirely by wildcard; the others
			// entirely by specific source. Mixing them within one batch
			// would let a wildcard steal a message a specific receive is
			// counting on and starve it.
			wildcard := b%3 == 0
			reqs := make([]*comm.Request, 0, perBatch*(size-1))
			for peer := 0; peer < size; peer++ {
				if peer == id {
					continue
				}
				for k := 0; k < perBatch; k++ {
					src := peer
					if wildcard {
						src = comm.AnySource
					}
					reqs = append(reqs, r.Irecv(src, tag))
				}
			}
			for peer := 0; peer < size; peer++ {
				if peer == id {
					continue
				}
				rng := rand.New(rand.NewSource(int64(id)<<20 | int64(b)))
				for k := 0; k < perBatch; k++ {
					r.IsendMsg(peer, tag, []float64{rng.Float64(), float64(id)}, []int64{int64(b), int64(k)})
				}
			}
			got := 0
			for _, req := range reqs {
				data, ints, err := req.WaitErr()
				if err != nil {
					return fmt.Errorf("batch %d: %v", b, err)
				}
				if len(data) != 2 || len(ints) != 2 {
					return fmt.Errorf("batch %d: payload shape %d/%d", b, len(data), len(ints))
				}
				if int(ints[0]) != b {
					return fmt.Errorf("batch %d: cross-batch delivery (got batch %d)", b, ints[0])
				}
				got++
				req.Free()
			}
			if got != perBatch*(size-1) {
				return fmt.Errorf("batch %d: %d deliveries, want %d", b, got, perBatch*(size-1))
			}
		}
		return nil
	})
}
