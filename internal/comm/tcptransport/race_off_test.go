//go:build !race

package tcptransport

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
