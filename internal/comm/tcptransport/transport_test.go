package tcptransport

import (
	"errors"
	"fmt"
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/netmodel"
)

// The unit tests here run every "process" of a TCP mesh as a goroutine
// inside the test binary — real localhost sockets, one Transport per
// virtual process — so the race detector observes the full transport
// concurrently with the comm runtime. The true multi-OS-process bar is
// held by internal/comm/conformance, which spawns child processes.

// runTCP runs fn as a size-rank distributed run over a TCP mesh hosted
// in-process, one Transport (and one RunDistributed) per rank, and
// returns each rank's Stats.
func runTCP(t *testing.T, size int, opts comm.Options, fn func(*comm.Rank) error) []*comm.Stats {
	t.Helper()
	stats, errs := runTCPErr(t, size, opts, fn)
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return stats
}

func runTCPErr(t *testing.T, size int, opts comm.Options, fn func(*comm.Rank) error) ([]*comm.Stats, []error) {
	t.Helper()
	rendezvous := filepath.Join(t.TempDir(), "rendezvous")
	stats := make([]*comm.Stats, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := New(Config{
				Rank: rank, Size: size,
				RendezvousFile:   rendezvous,
				BootstrapTimeout: 30 * time.Second,
				CloseTimeout:     30 * time.Second,
			})
			if err != nil {
				errs[rank] = fmt.Errorf("bootstrap: %w", err)
				return
			}
			stats[rank], errs[rank] = comm.RunDistributed(tr, opts, fn)
		}(rank)
	}
	wg.Wait()
	return stats, errs
}

func TestTCPSendRecv(t *testing.T) {
	const size = 4
	runTCP(t, size, comm.Options{}, func(r *comm.Rank) error {
		// Ring: send to the right, receive from the left, twice (FIFO).
		right := (r.ID() + 1) % size
		left := (r.ID() - 1 + size) % size
		r.Send(right, 1, []float64{float64(r.ID()), 1})
		r.Send(right, 1, []float64{float64(r.ID()), 2})
		first := r.Recv(left, 1)
		second := r.Recv(left, 1)
		if first[0] != float64(left) || second[0] != float64(left) {
			return fmt.Errorf("payload from wrong source: %v %v", first, second)
		}
		if first[1] != 1 || second[1] != 2 {
			return fmt.Errorf("FIFO order violated: got %v then %v", first[1], second[1])
		}
		return nil
	})
}

func TestTCPExplicitPeers(t *testing.T) {
	const size = 3
	// Reserve three distinct ephemeral ports, then hand the addresses to
	// the explicit-peers bootstrap.
	addrs := reserveAddrs(t, size)
	stats := make([]*comm.Stats, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := New(Config{Rank: rank, Size: size, Peers: addrs})
			if err != nil {
				errs[rank] = err
				return
			}
			stats[rank], errs[rank] = comm.RunDistributed(tr, comm.Options{}, func(r *comm.Rank) error {
				sum := r.Allreduce(comm.OpSum, []float64{float64(r.ID())})
				if sum[0] != 3 { // 0+1+2
					return fmt.Errorf("allreduce got %v", sum[0])
				}
				return nil
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestTCPCollectivesMatchInProcess is the headline invariant: modeled
// time is a function of program order and message sizes only, so the
// same program produces bit-identical results and virtual clocks on both
// backends.
func TestTCPCollectivesMatchInProcess(t *testing.T) {
	const size = 4
	opts := comm.Options{Model: netmodel.GigE}
	prog := func(r *comm.Rank) error {
		data := make([]float64, 64)
		for i := range data {
			data[i] = float64(r.ID()*1000 + i)
		}
		r.Allreduce(comm.OpSum, data)
		all := r.Allgather(data[:4])
		r.Allreduce(comm.OpMax, all)
		if r.ID()%2 == 0 {
			r.Send((r.ID()+1)%size, 9, all[:8])
		} else {
			r.Recv((r.ID()-1+size)%size, 9)
		}
		r.Barrier()
		return nil
	}
	ref, err := comm.Run(size, opts, prog)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	stats := runTCP(t, size, opts, prog)
	for rank := 0; rank < size; rank++ {
		got := stats[rank].VirtualTimes[rank]
		want := ref.VirtualTimes[rank]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("rank %d final VT %v over TCP, %v in-process", rank, got, want)
		}
	}
}

// TestTCPPostedReceiveDirectDelivery exercises the fast path end to end:
// without CRC framing a posted Irecv must be completed directly by the
// transport's reader goroutine.
func TestTCPPostedReceiveDirectDelivery(t *testing.T) {
	const size = 2
	runTCP(t, size, comm.Options{}, func(r *comm.Rank) error {
		if r.ID() == 0 {
			req := r.Irecv(1, 5)
			r.Send(1, 4, []float64{1}) // tell peer the receive is posted
			data, _, err := req.WaitErr()
			if err != nil {
				return err
			}
			if len(data) != 3 || data[0] != 7 {
				return fmt.Errorf("direct-delivered payload wrong: %v", data)
			}
		} else {
			r.Recv(0, 4)
			r.Send(0, 5, []float64{7, 8, 9})
		}
		return nil
	})
}

// TestTCPDeadRankError kills a rank in one "process"; a peer blocked on
// it in another must get the typed error through the wire's death notice.
func TestTCPDeadRankError(t *testing.T) {
	const size = 3
	stats, errs := runTCPErr(t, size, comm.Options{}, func(r *comm.Rank) error {
		switch r.ID() {
		case 0:
			r.Send(1, 1, []float64{42}) // drains before the death is seen
			r.Kill()
		case 1:
			if got := r.Recv(0, 1); got[0] != 42 {
				return fmt.Errorf("pre-death payload lost: %v", got)
			}
			req := r.Irecv(0, 2)
			var dead comm.DeadRankError
			if _, _, err := req.WaitErr(); !errors.As(err, &dead) {
				return fmt.Errorf("want DeadRankError, got %v", err)
			}
			if dead.World != 0 {
				return fmt.Errorf("DeadRankError names world %d, want 0", dead.World)
			}
		case 2:
			// Not involved; verifies uninvolved processes tear down clean.
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if len(stats[0].Killed) != 1 || stats[0].Killed[0] != 0 {
		t.Fatalf("killing process recorded %v, want [0]", stats[0].Killed)
	}
}

// TestTCPCollectiveDeadFailsFast: the fail-fast collective contract must
// hold across processes — death notices travel the wire.
func TestTCPCollectiveDeadFailsFast(t *testing.T) {
	const size = 4
	runTCP(t, size, comm.Options{}, func(r *comm.Rank) error {
		if r.ID() == 2 {
			r.Kill()
		}
		_, err := r.AllreduceErr(comm.OpSum, []float64{1})
		var dead comm.DeadRankError
		if !errors.As(err, &dead) {
			return fmt.Errorf("want DeadRankError from allreduce, got %v", err)
		}
		if dead.World != 2 {
			return fmt.Errorf("DeadRankError names world %d, want 2", dead.World)
		}
		return nil
	})
}

// TestTCPShrinkReformation: kill, observe, Shrink, and run collectives on
// the survivor communicator — over real sockets, with the sub-communicator
// formed independently in every process (deterministic routing ids).
func TestTCPShrinkReformation(t *testing.T) {
	const size = 4
	survivors := []int{0, 1, 3}
	runTCP(t, size, comm.Options{}, func(r *comm.Rank) error {
		if r.ID() == 2 {
			r.Kill()
		}
		if _, err := r.AllreduceErr(comm.OpSum, []float64{1}); err == nil {
			return errors.New("allreduce should have failed")
		}
		sub, err := r.Shrink(survivors)
		if err != nil {
			return err
		}
		sum := sub.Allreduce(comm.OpSum, []float64{float64(r.ID())})
		if sum[0] != 4 { // 0+1+3
			return fmt.Errorf("survivor allreduce got %v, want 4", sum[0])
		}
		all := sub.Allgather([]float64{float64(sub.ID())})
		for i, v := range all {
			if v != float64(i) {
				return fmt.Errorf("survivor allgather %v", all)
			}
		}
		return nil
	})
}

// TestTCPChaosCRCRetransmit drives the fault plane over real sockets: a
// corrupted first copy crosses the wire as its own frame, is rejected by
// the receiver's CRC check, and the clean retransmission lands — with
// results bit-identical to the in-process backend under the same plane.
func TestTCPChaosCRCRetransmit(t *testing.T) {
	const size = 3
	prog := func(r *comm.Rank) error {
		data := []float64{float64(r.ID() + 1)}
		for i := 0; i < 30; i++ {
			out := r.Allreduce(comm.OpSum, []float64{data[0]})
			if out[0] != 6 { // 1+2+3
				return fmt.Errorf("iteration %d: allreduce got %v, want 6", i, out[0])
			}
		}
		return nil
	}
	ref, err := comm.Run(size, comm.Options{Faults: newEveryNth(3)}, prog)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	if ref.CRCDetected == 0 || ref.Retransmits == 0 {
		t.Fatalf("fault plane inert in-process: crc=%d retx=%d", ref.CRCDetected, ref.Retransmits)
	}
	stats := runTCP(t, size, comm.Options{Faults: newEveryNth(3)}, prog)
	var crc, retx int64
	for rank := 0; rank < size; rank++ {
		crc += stats[rank].CRCDetected
		retx += stats[rank].Retransmits
		got := stats[rank].VirtualTimes[rank]
		want := ref.VirtualTimes[rank]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("rank %d VT %v over TCP, %v in-process (faults must price identically)", rank, got, want)
		}
	}
	// Each process counts receive-side detections and send-side
	// retransmits for its own rank; summed they must match the
	// all-in-one-process run.
	if crc != ref.CRCDetected || retx != ref.Retransmits {
		t.Errorf("fault counters over TCP crc=%d retx=%d, in-process crc=%d retx=%d",
			crc, retx, ref.CRCDetected, ref.Retransmits)
	}
}

// everyNth deterministically faults every n-th message per (src,dst)
// pair, cycling drop → corrupt → delay; a process-local mirror of the
// plane the comm property tests use. Under TCP each process sees only
// its own ranks' sends, but per-(src,dst) counting makes the decisions
// identical to the in-process run.
type everyNth struct {
	mu  sync.Mutex
	n   int
	cnt map[[2]int]int
}

func newEveryNth(n int) *everyNth { return &everyNth{n: n, cnt: make(map[[2]int]int)} }

func (f *everyNth) Message(src, dst, tag int, bytes int64, sendVT float64) comm.FaultAction {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := [2]int{src, dst}
	c := f.cnt[k]
	f.cnt[k] = c + 1
	if f.n <= 0 || c%f.n != f.n-1 {
		return comm.FaultAction{}
	}
	switch (c / f.n) % 3 {
	case 0:
		return comm.FaultAction{Drop: true}
	case 1:
		return comm.FaultAction{Corrupt: true, FlipBit: c % 53}
	default:
		return comm.FaultAction{DelayVT: 3e-6}
	}
}

func (f *everyNth) CRCDetected(src, dst, tag int) {}

// reserveAddrs grabs n distinct localhost ports and releases them, so an
// explicit-peers test has addresses that were just free.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}
