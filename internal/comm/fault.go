package comm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Fault plane. A FaultPlane installed via Options.Faults sees every wire
// message (point-to-point sends and the rounds inside collectives) and may
// perturb its delivery: lose the first copy (drop-with-retransmit), flip a
// payload bit on the first copy (detected by the per-message CRC and
// retried), or delay it. All perturbations preserve delivery — the runtime
// models a reliable transport with detect-and-retransmit, so faults cost
// modeled time instead of deadlocking the run — and all decisions are the
// injector's, so a seeded injector makes every chaos run deterministic.

// FaultAction is the injector's verdict for one wire message. The zero
// value means "deliver normally".
type FaultAction struct {
	// Drop loses the first copy on the wire: the receiver sees only the
	// retransmission, RetransmitVT modeled seconds after the original
	// arrival would have been.
	Drop bool
	// Corrupt delivers a first copy with payload bit FlipBit inverted
	// (its CRC left describing the original payload, so the receiver
	// detects the damage) followed by a clean retransmission RetransmitVT
	// later. CRC framing is forced on whenever a fault plane is
	// installed, so corruption can never be absorbed silently.
	Corrupt bool
	// FlipBit selects which payload bit Corrupt inverts, modulo the
	// payload size. Ignored unless Corrupt is set.
	FlipBit int
	// DelayVT postpones the delivery by the given modeled seconds
	// (congestion / slow-link transient). Composes with Drop/Corrupt.
	DelayVT float64
	// RetransmitVT is the modeled timeout-and-resend penalty charged by
	// Drop and Corrupt; 0 selects DefaultRetransmitVT.
	RetransmitVT float64
}

// DefaultRetransmitVT is the modeled seconds a lost or corrupted copy
// costs before its retransmission arrives, when the FaultAction does not
// say otherwise. It is deliberately large against the alpha of the
// bundled network models so injected faults are visible in modeled time.
const DefaultRetransmitVT = 100e-6

// FaultPlane decides the fate of wire messages. Message is called from
// every sending rank goroutine concurrently and must be safe for
// concurrent use; src and dst are world (original communicator) ranks, so
// decisions are stable across communicator shrinks. CRCDetected is a
// notification that a receiver's CRC check caught an injected corruption
// (again with world ranks), letting the injector account detections
// against injections.
type FaultPlane interface {
	Message(src, dst, tag int, bytes int64, sendVT float64) FaultAction
	CRCDetected(src, dst, tag int)
}

// DeadRankError reports that an operation waited on a rank that has been
// killed. Rank is the peer's id in the communicator the operation used;
// World is the same peer in the original (world) numbering.
type DeadRankError struct {
	Rank  int
	World int
}

// Error implements error.
func (e DeadRankError) Error() string {
	if e.Rank != e.World {
		return fmt.Sprintf("comm: rank %d (world %d) is dead", e.Rank, e.World)
	}
	return fmt.Sprintf("comm: rank %d is dead", e.Rank)
}

// killPanic unwinds a rank killed by Rank.Kill. Run recovers it and
// records the death without aborting the surviving ranks.
type killPanic struct{ world int }

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// payloadCRC checksums a message payload (floats then ints, little
// endian), the integrity guard corrupted frames are detected against.
func payloadCRC(data []float64, ints []int64) uint32 {
	var buf [8]byte
	crc := uint32(0)
	for _, v := range data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	for _, v := range ints {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	return crc
}

// flipPayloadBit inverts one bit of the payload, addressing the floats
// first and then the ints, with bit reduced modulo the payload size.
func flipPayloadBit(data []float64, ints []int64, bit int) {
	total := 64 * (len(data) + len(ints))
	if total == 0 {
		return
	}
	bit = ((bit % total) + total) % total
	idx, pos := bit/64, uint(bit%64)
	if idx < len(data) {
		data[idx] = math.Float64frombits(math.Float64bits(data[idx]) ^ (1 << pos))
	} else {
		ints[idx-len(data)] ^= 1 << pos
	}
}
