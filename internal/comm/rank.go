package comm

import (
	"fmt"
	"time"

	"repro/internal/netmodel"
)

// Rank is one process of the communicator. Exactly one goroutine owns a
// Rank; its methods must not be called concurrently.
type Rank struct {
	comm  *Comm
	id    int
	clock *netmodel.Clock
	prof  *Profile

	// flows is the concurrent-sender count this rank's node declares to
	// topology congestion pricing for the messages it is about to send:
	// collStart sets it to the communicator's flatFlows, hierarchical
	// algorithms overwrite it with 1 (only leaders inject), and
	// collRegion.done resets it to 0 (point-to-point traffic = lone
	// flow). Owned by the rank goroutine like every other Rank field.
	flows int
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// WorldID returns this rank's index in the original (world) communicator.
// It differs from ID only on ranks obtained from Shrink.
func (r *Rank) WorldID() int { return r.comm.worldIDOf(r.id) }

// WorldIDOf translates any member id of this rank's communicator to the
// original (world) numbering.
func (r *Rank) WorldIDOf(id int) int { return r.comm.worldIDOf(id) }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// Kill marks this rank dead — in its current communicator and every
// ancestor — wakes all blocked receivers so peers observe the death, and
// unwinds the rank's goroutine. It never returns. Run records the death
// in Stats.Killed and lets the surviving ranks finish; operations that
// wait on the dead rank fail with DeadRankError (WaitErr) or a panicked
// DeadRankError (the blocking calls) once its pre-crash messages are
// drained.
func (r *Rank) Kill() {
	w := r.WorldID()
	r.comm.markDead(r.id)
	if root := r.comm.root; root != nil && root.transport != nil {
		// Distributed run: mark the death in every locally registered
		// communicator and announce it to the peer processes, ordered
		// after everything this rank already sent.
		root.reg.markWorld(w)
		root.transport.NotifyDead(w)
	}
	panic(killPanic{world: w})
}

// Clock exposes the rank's virtual clock, so applications can account
// modeled compute time (e.g. from the hw instruction model) between
// communication phases.
func (r *Rank) Clock() *netmodel.Clock { return r.clock }

// SetSite labels subsequent MPI operations with a call-site name, the way
// mpiP attributes time to call sites. An empty string clears the label.
func (r *Rank) SetSite(site string) { r.prof.site = site }

// Site returns the current call-site label.
func (r *Rank) Site() string { return r.prof.site }

// Profile returns the rank's MPI profile (for in-run inspection; Run also
// returns all profiles in Stats).
func (r *Rank) Profile() *Profile { return r.prof }

func (r *Rank) checkPeer(peer int) {
	if peer < 0 || peer >= r.comm.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", peer, r.comm.size))
	}
}

// stampSend prices one outgoing message and advances the sender's clock:
// topology routing (minimal route, per-link congestion, the rank's
// declared flow concurrency) when the model carries a Topology, the flat
// alpha-beta model otherwise. It returns the modeled arrival time and
// the hop count recorded in traces (route links under a topology,
// grid-Manhattan hops otherwise).
func (r *Rank) stampSend(dst int, nbytes int64) (arrival float64, hops int) {
	c := r.comm
	if topo := c.model.Topo; topo != nil {
		flows := r.flows
		if flows < 1 {
			flows = 1
		}
		cost, over, links := topo.PairCost(c.worldIDOf(r.id), c.worldIDOf(dst), int(nbytes), c.model.InjectionFactor, flows)
		return r.clock.SendStampRoute(cost, over), links
	}
	h := c.hops(r.id, dst)
	return r.clock.SendStamp(int(nbytes), h), h
}

// deliver copies the payload into a message (eager-buffered send,
// MPI_Bsend semantics: the caller's buffer is reusable immediately),
// stamps its modeled arrival time, and drops it into the destination
// mailbox. It returns the payload byte count — not the message, which
// belongs to the receiver the moment it is enqueued (the receiver may
// consume and recycle it at any time).
//
// This is also where the fault plane intercepts the wire: a dropped or
// corrupted first copy always ends in a clean delivery one retransmission
// timeout later, so faults cost modeled time but can never lose data or
// deadlock the run. Corruption relies on the non-overtaking mailbox order
// per (source, tag): the damaged copy is enqueued before the clean one,
// so the receiver's CRC check rejects it and the very next matching
// message is the retransmission.
func (r *Rank) deliver(dst, tag int, data []float64, ints []int64) int64 {
	c := r.comm
	if !c.isLocalWorld(c.worldIDOf(dst)) {
		return r.deliverRemote(dst, tag, data, ints)
	}
	if c.directEligible() {
		// Fast path: without CRC framing or a fault plane nothing can
		// reject or reorder the payload, so deliver straight to the
		// destination mailbox — into an already-posted receive's buffers
		// when one matches (one copy, no envelope), or a staged message
		// otherwise. Timing is identical to the staged path: the same
		// SendStamp fixes the arrival, so modeled time cannot depend on
		// whether the receive was posted first.
		nbytes := 8 * int64(len(data)+len(ints))
		sendVT := r.clock.Now()
		arrival, hops := r.stampSend(dst, nbytes)
		c.boxes[dst].deliverOrQueue(c, r.id, tag, data, ints, arrival)
		c.trace(c.worldIDOf(r.id), c.worldIDOf(dst), tag, nbytes, hops, sendVT, arrival, r.prof.site)
		return nbytes
	}
	m := c.getMessage()
	m.src, m.tag = r.id, tag
	m.data = append(m.data[:0], data...)
	m.ints = append(m.ints[:0], ints...)
	nbytes := m.bytes()
	if c.crc {
		m.crc = payloadCRC(m.data, m.ints)
		m.framed = true
	}
	sendVT := r.clock.Now()
	arrival, hops := r.stampSend(dst, nbytes)
	if c.faults != nil {
		act := c.faults.Message(c.worldIDOf(r.id), c.worldIDOf(dst), tag, nbytes, sendVT)
		if act != (FaultAction{}) {
			arrival += act.DelayVT
			rto := act.RetransmitVT
			if rto <= 0 {
				rto = DefaultRetransmitVT
			}
			switch {
			case act.Drop:
				// The first copy is lost on the wire; the receiver only
				// ever sees the retransmission, one timeout later.
				arrival += rto
				c.retransmits.Add(1)
			case act.Corrupt && nbytes > 0:
				bad := c.getMessage()
				bad.src, bad.tag = r.id, tag
				bad.data = append(bad.data[:0], m.data...)
				bad.ints = append(bad.ints[:0], m.ints...)
				bad.crc, bad.framed = m.crc, m.framed
				flipPayloadBit(bad.data, bad.ints, act.FlipBit)
				bad.arrival = arrival
				c.boxes[dst].put(bad)
				arrival += rto
				c.retransmits.Add(1)
			}
		}
	}
	m.arrival = arrival
	c.boxes[dst].put(m)
	c.trace(c.worldIDOf(r.id), c.worldIDOf(dst), tag, nbytes, hops, sendVT, arrival, r.prof.site)
	return nbytes
}

// deliverRemote is deliver for a destination hosted in another process:
// the same eager-send semantics, CRC framing and fault-plane interception
// as the local staged path, but the message ships as a transport frame
// carrying the modeled arrival time instead of landing in a local
// mailbox. The fault plane still acts at the sender — a corrupted first
// copy is shipped as its own frame before the clean retransmission, and
// the transport's per-(src, dst) ordering plays the role of the mailbox's
// non-overtaking queue. Transport.Send only borrows the payload slices,
// so the caller's buffers stay reusable immediately, exactly like a
// buffered local send.
func (r *Rank) deliverRemote(dst, tag int, data []float64, ints []int64) int64 {
	c := r.comm
	t := c.root.transport
	dstWorld := c.worldIDOf(dst)
	nbytes := 8 * int64(len(data)+len(ints))
	var crc uint32
	framed := false
	if c.crc {
		crc = payloadCRC(data, ints)
		framed = true
	}
	sendVT := r.clock.Now()
	arrival, hops := r.stampSend(dst, nbytes)
	if c.faults != nil {
		act := c.faults.Message(c.worldIDOf(r.id), dstWorld, tag, nbytes, sendVT)
		if act != (FaultAction{}) {
			arrival += act.DelayVT
			rto := act.RetransmitVT
			if rto <= 0 {
				rto = DefaultRetransmitVT
			}
			switch {
			case act.Drop:
				// The first copy is lost on the wire; the receiver only
				// ever sees the retransmission, one timeout later.
				arrival += rto
				c.retransmits.Add(1)
			case act.Corrupt && nbytes > 0:
				badData := append([]float64(nil), data...)
				badInts := append([]int64(nil), ints...)
				flipPayloadBit(badData, badInts, act.FlipBit)
				_ = t.Send(dstWorld, &Frame{
					Ctx: c.ctx, Src: r.id, Dst: dst, Tag: tag,
					Data: badData, Ints: badInts,
					SendVT: sendVT, Arrival: arrival,
					CRC: crc, Framed: framed,
				})
				arrival += rto
				c.retransmits.Add(1)
			}
		}
	}
	// A send error means the peer is gone; like an eager send into a dead
	// rank's mailbox it is dropped silently — the death surfaces on the
	// receive side as DeadRankError.
	_ = t.Send(dstWorld, &Frame{
		Ctx: c.ctx, Src: r.id, Dst: dst, Tag: tag,
		Data: data, Ints: ints,
		SendVT: sendVT, Arrival: arrival,
		CRC: crc, Framed: framed,
	})
	c.trace(c.worldIDOf(r.id), dstWorld, tag, nbytes, hops, sendVT, arrival, r.prof.site)
	return nbytes
}

// receive finalizes a matched message: the virtual clock waits for its
// modeled arrival and the modeled wait is reported for profiling.
func (r *Rank) receive(m *message) float64 {
	return r.clock.WaitUntil(m.arrival)
}

// frameOK verifies a message's CRC frame. A failed check counts the
// detection, notifies the fault plane, recycles the damaged frame and
// reports false — the caller loops for the retransmission.
func (r *Rank) frameOK(m *message) bool {
	if !m.framed || payloadCRC(m.data, m.ints) == m.crc {
		return true
	}
	c := r.comm
	c.crcDetected.Add(1)
	if c.faults != nil {
		c.faults.CRCDetected(c.worldIDOf(m.src), c.worldIDOf(r.id), m.tag)
	}
	c.putMessage(m)
	return false
}

// takeChecked blocks for a matching message whose CRC frame verifies,
// discarding damaged frames (their retransmissions follow under the
// non-overtaking order). Waiting on a specific dead sender returns a
// DeadRankError once its queued messages are drained.
func (r *Rank) takeChecked(src, tag int) (*message, error) {
	for {
		m, err := r.comm.boxes[r.id].takeDead(src, tag, r.comm)
		if err != nil {
			return nil, err
		}
		if r.frameOK(m) {
			return m, nil
		}
	}
}

// mustTake is takeChecked for the blocking receive paths, which surface a
// dead sender by unwinding with the typed error.
func (r *Rank) mustTake(src, tag int) *message {
	m, err := r.takeChecked(src, tag)
	if err != nil {
		panic(err)
	}
	return m
}

// Send sends a float64 payload to dst with the given tag. Sends are eager
// and buffered: they never block and the caller's buffer is reusable as
// soon as Send returns.
func (r *Rank) Send(dst, tag int, data []float64) {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, tag, data, nil)
	r.prof.record("MPI_Send", time.Since(start).Seconds(), r.comm.model.Alpha, nbytes)
}

// SendInts sends an int64 payload.
func (r *Rank) SendInts(dst, tag int, ints []int64) {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, tag, nil, ints)
	r.prof.record("MPI_Send", time.Since(start).Seconds(), r.comm.model.Alpha, nbytes)
}

// SendMsg sends a mixed payload of floats and ints in one message.
func (r *Rank) SendMsg(dst, tag int, data []float64, ints []int64) {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, tag, data, ints)
	r.prof.record("MPI_Send", time.Since(start).Seconds(), r.comm.model.Alpha, nbytes)
}

// IsendMsg starts a nonblocking send of a mixed float/int payload and
// discards the request — sends are eager, so the request of an Isend is
// complete the moment it is created and waiting on it is free. Hot
// exchange paths use this to post sends without allocating a Request;
// it records as MPI_Isend, exactly like Isend.
func (r *Rank) IsendMsg(dst, tag int, data []float64, ints []int64) {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, tag, data, ints)
	r.prof.record("MPI_Isend", time.Since(start).Seconds(), r.comm.model.Alpha, nbytes)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its float payload. src may be AnySource and tag AnyTag.
func (r *Rank) Recv(src, tag int) []float64 {
	data, _, _ := r.recvCommon("MPI_Recv", src, tag)
	return data
}

// RecvInts is Recv for int64 payloads.
func (r *Rank) RecvInts(src, tag int) []int64 {
	_, ints, _ := r.recvCommon("MPI_Recv", src, tag)
	return ints
}

// RecvMsg receives a mixed payload, also reporting the sender (useful with
// AnySource).
func (r *Rank) RecvMsg(src, tag int) (data []float64, ints []int64, from int) {
	return r.recvCommon("MPI_Recv", src, tag)
}

func (r *Rank) recvCommon(op string, src, tag int) ([]float64, []int64, int) {
	if src != AnySource {
		r.checkPeer(src)
	}
	start := time.Now()
	m := r.mustTake(src, tag)
	wait := r.receive(m)
	r.prof.record(op, time.Since(start).Seconds(), wait, m.bytes())
	return m.data, m.ints, m.src
}

// Sendrecv performs a simultaneous exchange with (possibly different)
// peers, the pattern pairwise-exchange algorithms are built from.
func (r *Rank) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, sendTag, data, nil)
	in := r.mustTake(src, recvTag)
	wait := r.receive(in)
	r.prof.record("MPI_Sendrecv", time.Since(start).Seconds(), wait+r.comm.model.Alpha, nbytes+in.bytes())
	return in.data
}

// Probe blocks until a message matching (src, tag) is available and
// returns its source, tag and payload byte count without receiving it.
func (r *Rank) Probe(src, tag int) (fromSrc, fromTag int, bytes int64) {
	start := time.Now()
	m := r.comm.boxes[r.id].peek(src, tag, r.comm)
	r.prof.record("MPI_Probe", time.Since(start).Seconds(), 0, 0)
	return m.src, m.tag, m.bytes()
}
