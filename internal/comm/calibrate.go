package comm

import (
	"fmt"
	"time"

	"repro/internal/netmodel"
)

// CalibrateModel measures the live in-process transport with a ping-pong
// between two ranks and least-squares fits an alpha-beta model to the
// observed one-way times. The result plays the same role as a cluster
// micro-benchmark (e.g. OSU latency/bandwidth) in a real co-design study:
// it grounds the network-model axis in measurements, so modeled times for
// "this machine" can be compared against the QDR/exascale presets.
//
// sizes are payload lengths in float64s (defaults cover 8B..512KiB);
// reps round trips are averaged per size.
func CalibrateModel(name string, sizes []int, reps int) (netmodel.Model, error) {
	if name == "" {
		name = "calibrated"
	}
	if len(sizes) == 0 {
		sizes = []int{1, 16, 256, 4096, 65536}
	}
	if reps < 1 {
		reps = 20
	}
	type sample struct {
		bytes  float64
		oneway float64
	}
	samples := make([]sample, 0, len(sizes))

	_, err := RunSimple(2, func(r *Rank) error {
		for _, n := range sizes {
			buf := make([]float64, n)
			// Warm the path.
			if r.ID() == 0 {
				r.Send(1, 1, buf)
				r.Recv(1, 1)
			} else {
				r.Recv(0, 1)
				r.Send(0, 1, buf)
			}
			start := time.Now()
			for i := 0; i < reps; i++ {
				if r.ID() == 0 {
					r.Send(1, 2, buf)
					r.Recv(1, 2)
				} else {
					r.Recv(0, 2)
					r.Send(0, 2, buf)
				}
			}
			if r.ID() == 0 {
				rtt := time.Since(start).Seconds() / float64(reps)
				samples = append(samples, sample{bytes: float64(8 * n), oneway: rtt / 2})
			}
		}
		return nil
	})
	if err != nil {
		return netmodel.Model{}, err
	}

	// Least squares t = alpha + beta*bytes.
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		sx += s.bytes
		sy += s.oneway
		sxx += s.bytes * s.bytes
		sxy += s.bytes * s.oneway
	}
	m := float64(len(samples))
	den := m*sxx - sx*sx
	if den == 0 {
		return netmodel.Model{}, fmt.Errorf("comm: calibration needs at least two distinct sizes")
	}
	beta := (m*sxy - sx*sy) / den
	alpha := (sy - beta*sx) / m
	// Transport noise can produce slightly negative fits; clamp to tiny
	// positive values so the model stays usable.
	if alpha <= 0 {
		alpha = 1e-9
	}
	if beta <= 0 {
		beta = 1e-12
	}
	return netmodel.Model{Name: name, Alpha: alpha, Beta: beta, GammaCompute: 1}, nil
}
