package comm

import "testing"

// IsendMsg + IrecvInto + Free is the zero-allocation exchange triple the
// gather-scatter hot paths use; check the payloads round-trip and that
// freed envelopes are recycled without corrupting later messages.
func TestIsendMsgIrecvIntoFree(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		peer := 1 - r.ID()
		var req Request
		for iter := 0; iter < 50; iter++ {
			data := []float64{float64(r.ID()), float64(iter)}
			ints := []int64{int64(iter), int64(r.ID()), 7}
			r.IsendMsg(peer, 42, data, ints)
			r.IrecvInto(&req, peer, 42)
			gotData, gotInts := req.Wait()
			if len(gotData) != 2 || gotData[0] != float64(peer) || gotData[1] != float64(iter) {
				t.Errorf("rank %d iter %d: data = %v", r.ID(), iter, gotData)
			}
			if len(gotInts) != 3 || gotInts[0] != int64(iter) || gotInts[1] != int64(peer) || gotInts[2] != 7 {
				t.Errorf("rank %d iter %d: ints = %v", r.ID(), iter, gotInts)
			}
			req.Free()
			req.Free() // double free is a no-op
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Freeing a send request must not recycle the message, which the
// receiver still owns.
func TestFreeOnSendRequestIsNoop(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			req := r.Isend(1, 9, []float64{1, 2, 3})
			req.Free() // must not hand the in-flight message to the pool
			r.Send(1, 9, []float64{4, 5, 6})
		} else {
			first := r.Recv(0, 9)
			second := r.Recv(0, 9)
			if first[0] != 1 || first[1] != 2 || first[2] != 3 {
				t.Errorf("first message corrupted: %v", first)
			}
			if second[0] != 4 || second[1] != 5 || second[2] != 6 {
				t.Errorf("second message corrupted: %v", second)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
