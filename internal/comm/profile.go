package comm

import (
	"sort"
)

// Profile accumulates mpiP-style statistics for one rank: for every
// (MPI operation, call site) pair, the call count, host wall time,
// modeled network time, and byte counts. Call sites are the labels the
// application sets with Rank.SetSite, mirroring how mpiP attributes MPI
// time to source locations (Figures 8-10 of the paper).
type Profile struct {
	Rank int

	appWall float64
	site    string
	stats   map[statKey]*CallStat
	order   []statKey // first-seen order, for stable iteration
}

type statKey struct{ op, site string }

// CallStat is the accumulated record of one (operation, site) pair.
type CallStat struct {
	Op       string  // MPI operation name, e.g. "MPI_Wait"
	Site     string  // application call-site label, e.g. "gs_op"
	Count    int64   // number of calls
	Wall     float64 // total host wall seconds inside the call
	Modeled  float64 // total modeled network/wait seconds
	Bytes    int64   // total payload bytes moved by this rank
	MaxBytes int64   // largest single payload
	MinBytes int64   // smallest single payload (0 until first call)
}

// AvgBytes returns the mean payload size per call.
func (c *CallStat) AvgBytes() float64 {
	if c.Count == 0 {
		return 0
	}
	return float64(c.Bytes) / float64(c.Count)
}

// Name returns "Op@Site" (or just Op when no site label was active).
func (c *CallStat) Name() string {
	if c.Site == "" {
		return c.Op
	}
	return c.Op + "@" + c.Site
}

func newProfile(rank int) *Profile {
	return &Profile{Rank: rank, stats: make(map[statKey]*CallStat)}
}

func (p *Profile) record(op string, wall, modeled float64, bytes int64) {
	k := statKey{op, p.site}
	s, ok := p.stats[k]
	if !ok {
		s = &CallStat{Op: op, Site: p.site}
		p.stats[k] = s
		p.order = append(p.order, k)
	}
	s.Count++
	s.Wall += wall
	s.Modeled += modeled
	s.Bytes += bytes
	if bytes > s.MaxBytes {
		s.MaxBytes = bytes
	}
	if s.Count == 1 || bytes < s.MinBytes {
		s.MinBytes = bytes
	}
}

// AppWall returns the rank's total host wall time from communicator start
// to this rank's completion.
func (p *Profile) AppWall() float64 { return p.appWall }

// OpTotals is a profile's accumulated statistics classified into the
// coarse buckets the telemetry step stream reports. The split follows
// where modeled time is charged: point-to-point receives and waits are
// pure blocking, sends charge only injection overhead, and collectives
// mix both (counted in Modeled but not Wait).
type OpTotals struct {
	Calls     int64
	Wall      float64 // host seconds inside MPI operations
	Modeled   float64 // modeled seconds inside MPI operations
	Wait      float64 // modeled seconds blocked on receive-side ops
	BytesSent int64   // payload bytes sent point-to-point
}

// Totals classifies the profile so far. Like the rest of Profile it is
// for use by the owning rank goroutine; taking deltas of successive
// calls yields per-phase splits.
func (p *Profile) Totals() OpTotals {
	var t OpTotals
	for _, k := range p.order {
		s := p.stats[k]
		t.Calls += s.Count
		t.Wall += s.Wall
		t.Modeled += s.Modeled
		switch s.Op {
		case "MPI_Recv", "MPI_Wait":
			t.Wait += s.Modeled
		case "MPI_Send", "MPI_Isend":
			t.BytesSent += s.Bytes
		case "MPI_Sendrecv":
			// Records the send and receive payload together; the wait
			// share of its modeled time is blocking.
			t.Wait += s.Modeled
			t.BytesSent += s.Bytes / 2
		}
	}
	return t
}

// MPIWall returns total host wall seconds spent inside MPI operations.
// Summation follows call-site insertion order (not map order) so the
// float result is reproducible across runs.
func (p *Profile) MPIWall() float64 {
	t := 0.0
	for _, k := range p.order {
		t += p.stats[k].Wall
	}
	return t
}

// MPIModeled returns total modeled network seconds across MPI operations.
// Summation follows call-site insertion order (not map order) so the
// float result is reproducible across runs.
func (p *Profile) MPIModeled() float64 {
	t := 0.0
	for _, k := range p.order {
		t += p.stats[k].Modeled
	}
	return t
}

// Calls returns this rank's per-site statistics sorted by descending wall
// time.
func (p *Profile) Calls() []*CallStat {
	out := make([]*CallStat, 0, len(p.order))
	for _, k := range p.order {
		out = append(out, p.stats[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}

// RankMPI summarizes one rank's MPI share of execution, the per-rank bars
// of Figure 8.
type RankMPI struct {
	Rank        int
	AppWall     float64 // total wall seconds
	MPIWall     float64 // wall seconds inside MPI
	VirtualTime float64 // modeled app completion time
	MPIModeled  float64 // modeled seconds inside MPI
}

// FracWall returns the wall-time MPI fraction.
func (r RankMPI) FracWall() float64 {
	if r.AppWall == 0 {
		return 0
	}
	return r.MPIWall / r.AppWall
}

// FracModeled returns the modeled-time MPI fraction.
func (r RankMPI) FracModeled() float64 {
	if r.VirtualTime == 0 {
		return 0
	}
	return r.MPIModeled / r.VirtualTime
}

// RankMPIFractions returns the Figure 8 data: per-rank MPI time share.
func (s *Stats) RankMPIFractions() []RankMPI {
	out := make([]RankMPI, s.Size)
	for i, p := range s.Profiles {
		out[i] = RankMPI{
			Rank:        i,
			AppWall:     p.AppWall(),
			MPIWall:     p.MPIWall(),
			VirtualTime: s.VirtualTimes[i],
			MPIModeled:  p.MPIModeled(),
		}
	}
	return out
}

// SiteSummary aggregates one (operation, site) pair across all ranks: the
// rows of Figures 9 (time per call site) and 10 (message sizes).
type SiteSummary struct {
	Op       string
	Site     string
	Count    int64
	Wall     float64
	Modeled  float64
	Bytes    int64
	MaxBytes int64
	MinBytes int64
}

// Name returns "Op@Site" (or just Op when no site label was recorded).
func (ss SiteSummary) Name() string {
	if ss.Site == "" {
		return ss.Op
	}
	return ss.Op + "@" + ss.Site
}

// AvgBytes returns mean payload bytes per call across all ranks.
func (ss SiteSummary) AvgBytes() float64 {
	if ss.Count == 0 {
		return 0
	}
	return float64(ss.Bytes) / float64(ss.Count)
}

// AggregateSites merges per-rank profiles into per-call-site totals,
// sorted by descending wall time (the ordering of Figure 9).
func (s *Stats) AggregateSites() []SiteSummary {
	agg := make(map[statKey]*SiteSummary)
	var order []statKey
	for _, p := range s.Profiles {
		for _, k := range p.order {
			cs := p.stats[k]
			ss, ok := agg[k]
			if !ok {
				ss = &SiteSummary{Op: cs.Op, Site: cs.Site, MinBytes: cs.MinBytes}
				agg[k] = ss
				order = append(order, k)
			}
			ss.Count += cs.Count
			ss.Wall += cs.Wall
			ss.Modeled += cs.Modeled
			ss.Bytes += cs.Bytes
			if cs.MaxBytes > ss.MaxBytes {
				ss.MaxBytes = cs.MaxBytes
			}
			if cs.Count > 0 && cs.MinBytes < ss.MinBytes {
				ss.MinBytes = cs.MinBytes
			}
		}
	}
	out := make([]SiteSummary, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}

// TotalMPIWall sums MPI wall time over all ranks.
func (s *Stats) TotalMPIWall() float64 {
	t := 0.0
	for _, p := range s.Profiles {
		t += p.MPIWall()
	}
	return t
}

// TotalAppWall sums application wall time over all ranks.
func (s *Stats) TotalAppWall() float64 {
	t := 0.0
	for _, p := range s.Profiles {
		t += p.AppWall()
	}
	return t
}
