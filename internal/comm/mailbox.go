package comm

import (
	"errors"
	"sync"
)

// errAborted is panicked out of blocking operations when the run is torn
// down after another rank failed; Run recovers it.
var errAborted = errors.New("comm: run aborted")

// message is the unit moved between ranks. Payloads are float64 and int64
// slices (the two element types the mini-app moves); either may be nil.
type message struct {
	src, tag int
	data     []float64
	ints     []int64
	arrival  float64 // virtual arrival time under the network model
	crc      uint32  // payload checksum, when framed
	framed   bool    // message carries a CRC frame to verify on receive
}

func (m *message) bytes() int64 {
	return 8 * int64(len(m.data)+len(m.ints))
}

// mailbox is one rank's receive queue: an unbounded FIFO with MPI-style
// (source, tag) matching. FIFO scan order gives the MPI non-overtaking
// guarantee per (source, tag) pair.
//
// posted holds receive requests registered before any matching message
// arrived (the direct-delivery fast path, enabled only without CRC
// framing or a fault plane): a sender finding a matching posted request
// copies the payload straight into request-owned buffers and completes
// it, skipping the message envelope and the queue scan. Registration
// (matchOrPost) and delivery (deliverOrQueue) are each one critical
// section, which maintains the invariant that a queued message and a
// posted request matching each other never coexist — so per-(source,
// tag) non-overtaking order is preserved across both paths.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*message
	posted []*Request
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func match(m *message, src, tag int) bool {
	return (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
}

// put deposits a message; it never blocks (eager-send semantics).
func (b *mailbox) put(m *message) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return // run is being torn down; drop silently
	}
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// take removes and returns the first queued message matching (src, tag),
// blocking until one arrives. It panics with errAborted if the mailbox is
// closed while waiting.
func (b *mailbox) take(src, tag int) *message {
	m, _ := b.takeDead(src, tag, nil)
	return m
}

// takeDead is take with dead-rank awareness: when c is non-nil, src names
// a specific rank, that rank is marked dead in c, and no matching message
// remains queued, it returns a DeadRankError instead of blocking forever.
// Queued pre-crash messages are always drained before the error fires, so
// detection is deterministic: a waiter sees everything the peer sent
// before dying, then the death. Wakeup is race-free because markDead sets
// the dead flag before acquiring this mailbox's lock to broadcast (see
// Comm.markDead).
func (b *mailbox) takeDead(src, tag int, c *Comm) (*message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if m := b.removeLocked(src, tag); m != nil {
			return m, nil
		}
		if b.closed {
			panic(errAborted)
		}
		if c != nil && src != AnySource && c.rankDead(src) {
			return nil, DeadRankError{Rank: src, World: c.worldIDOf(src)}
		}
		b.cond.Wait()
	}
}

// takeCollective is takeDead for collective rounds, where blocking on a
// live partner must still observe the death of any other participant:
// a collective cannot complete once a member is gone, so a rank stuck
// waiting for a contribution that will never be forwarded fails fast
// with the dead member's error (ULFM MPI_ERR_PROC_FAILED semantics)
// instead of hanging. members scopes the check to a subset of c's
// member ids (a split Group); nil means every member. Matching queued
// messages are always drained first, so a participant that completed
// its part of the collective before dying never aborts it: eager sends
// are enqueued before Kill marks the death, and the queue is checked
// before the dead flags.
func (b *mailbox) takeCollective(src, tag int, c *Comm, members []int) (*message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if m := b.removeLocked(src, tag); m != nil {
			return m, nil
		}
		if b.closed {
			panic(errAborted)
		}
		if d := c.firstDead(members); d >= 0 {
			return nil, DeadRankError{Rank: d, World: c.worldIDOf(d)}
		}
		b.cond.Wait()
	}
}

// tryTake is take without blocking; it returns nil when no message
// matches.
func (b *mailbox) tryTake(src, tag int) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		panic(errAborted)
	}
	return b.removeLocked(src, tag)
}

// peek blocks until a matching message is queued and returns it without
// removing it (MPI_Probe). Like takeDead it refuses to wait forever on a
// dead peer, but since Probe has no error return the death unwinds as a
// panicked DeadRankError.
func (b *mailbox) peek(src, tag int, c *Comm) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for _, m := range b.queue {
			if match(m, src, tag) {
				return m
			}
		}
		if b.closed {
			panic(errAborted)
		}
		if c != nil && src != AnySource && c.rankDead(src) {
			panic(DeadRankError{Rank: src, World: c.worldIDOf(src)})
		}
		b.cond.Wait()
	}
}

// matchOrPost either completes req from an already-queued message or
// registers it for direct delivery, atomically — the receive side of the
// fast path. Only called when the communicator carries no CRC framing,
// so no frame-check loop is needed.
func (b *mailbox) matchOrPost(req *Request, src, tag int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		panic(errAborted)
	}
	if m := b.removeLocked(src, tag); m != nil {
		req.complete(m)
		return
	}
	b.posted = append(b.posted, req)
}

// deliverOrQueue is the send side of the fast path: under one lock
// acquisition it either completes the first matching posted request by
// copying the payload into its buffers, or stages a message in the queue.
func (b *mailbox) deliverOrQueue(c *Comm, src, tag int, data []float64, ints []int64, arrival float64) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return // run is being torn down; drop silently
	}
	if req := b.takePostedLocked(src, tag); req != nil {
		req.buf = append(req.buf[:0], data...)
		req.ibuf = append(req.ibuf[:0], ints...)
		req.direct = true
		req.from = src
		req.arrival = arrival
		req.done = true
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	m := c.getMessage()
	m.src, m.tag = src, tag
	m.data = append(m.data[:0], data...)
	m.ints = append(m.ints[:0], ints...)
	m.arrival = arrival
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// takePostedLocked removes and returns the first posted request matching
// (src, tag) — posting order, mirroring the queue's FIFO matching.
func (b *mailbox) takePostedLocked(src, tag int) *Request {
	for i, req := range b.posted {
		if (req.src == AnySource || req.src == src) && (req.tag == AnyTag || req.tag == tag) {
			b.removePostedAt(i)
			return req
		}
	}
	return nil
}

// unpostLocked removes req from the posted list if registered (a waiter
// abandoning the request on a dead-sender error).
func (b *mailbox) unpostLocked(req *Request) {
	for i, q := range b.posted {
		if q == req {
			b.removePostedAt(i)
			return
		}
	}
}

func (b *mailbox) removePostedAt(i int) {
	copy(b.posted[i:], b.posted[i+1:])
	b.posted[len(b.posted)-1] = nil
	b.posted = b.posted[:len(b.posted)-1]
}

// waitRequest blocks until req completes — by direct delivery (a sender
// finds it posted), or by a matching queued message — with the same
// dead-sender and teardown semantics as takeDead. Frame-checked (CRC)
// communicators never post requests, so the frame loop here only runs
// for unposted requests, whose fields the owner goroutine holds
// exclusively.
func (b *mailbox) waitRequest(req *Request, r *Rank) error {
	b.mu.Lock()
	for {
		if req.done {
			b.mu.Unlock()
			return nil
		}
		if m := b.removeLocked(req.src, req.tag); m != nil {
			b.mu.Unlock()
			if r.frameOK(m) {
				req.complete(m)
				return nil
			}
			b.mu.Lock()
			continue
		}
		if b.closed {
			b.mu.Unlock()
			panic(errAborted)
		}
		if req.src != AnySource && r.comm.rankDead(req.src) {
			b.unpostLocked(req)
			b.mu.Unlock()
			return DeadRankError{Rank: req.src, World: r.comm.worldIDOf(req.src)}
		}
		b.cond.Wait()
	}
}

func (b *mailbox) removeLocked(src, tag int) *message {
	for i, m := range b.queue {
		if match(m, src, tag) {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return m
		}
	}
	return nil
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// wake re-checks all blocked waiters. Taking the lock before broadcasting
// is what makes the dead-rank wakeup race-free: any waiter between its
// dead-flag check and cond.Wait still holds the lock, so the broadcast
// cannot slip into that window.
func (b *mailbox) wake() {
	b.mu.Lock()
	b.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	b.cond.Broadcast()
}
