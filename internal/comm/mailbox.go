package comm

import (
	"errors"
	"sync"
)

// errAborted is panicked out of blocking operations when the run is torn
// down after another rank failed; Run recovers it.
var errAborted = errors.New("comm: run aborted")

// message is the unit moved between ranks. Payloads are float64 and int64
// slices (the two element types the mini-app moves); either may be nil.
type message struct {
	src, tag int
	data     []float64
	ints     []int64
	arrival  float64 // virtual arrival time under the network model
	crc      uint32  // payload checksum, when framed
	framed   bool    // message carries a CRC frame to verify on receive
}

func (m *message) bytes() int64 {
	return 8 * int64(len(m.data)+len(m.ints))
}

// mailbox is one rank's receive queue: an unbounded FIFO with MPI-style
// (source, tag) matching. FIFO scan order gives the MPI non-overtaking
// guarantee per (source, tag) pair.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*message
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func match(m *message, src, tag int) bool {
	return (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
}

// put deposits a message; it never blocks (eager-send semantics).
func (b *mailbox) put(m *message) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return // run is being torn down; drop silently
	}
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// take removes and returns the first queued message matching (src, tag),
// blocking until one arrives. It panics with errAborted if the mailbox is
// closed while waiting.
func (b *mailbox) take(src, tag int) *message {
	m, _ := b.takeDead(src, tag, nil)
	return m
}

// takeDead is take with dead-rank awareness: when c is non-nil, src names
// a specific rank, that rank is marked dead in c, and no matching message
// remains queued, it returns a DeadRankError instead of blocking forever.
// Queued pre-crash messages are always drained before the error fires, so
// detection is deterministic: a waiter sees everything the peer sent
// before dying, then the death. Wakeup is race-free because markDead sets
// the dead flag before acquiring this mailbox's lock to broadcast (see
// Comm.markDead).
func (b *mailbox) takeDead(src, tag int, c *Comm) (*message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if m := b.removeLocked(src, tag); m != nil {
			return m, nil
		}
		if b.closed {
			panic(errAborted)
		}
		if c != nil && src != AnySource && c.rankDead(src) {
			return nil, DeadRankError{Rank: src, World: c.worldIDOf(src)}
		}
		b.cond.Wait()
	}
}

// tryTake is take without blocking; it returns nil when no message
// matches.
func (b *mailbox) tryTake(src, tag int) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		panic(errAborted)
	}
	return b.removeLocked(src, tag)
}

// peek blocks until a matching message is queued and returns it without
// removing it (MPI_Probe). Like takeDead it refuses to wait forever on a
// dead peer, but since Probe has no error return the death unwinds as a
// panicked DeadRankError.
func (b *mailbox) peek(src, tag int, c *Comm) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for _, m := range b.queue {
			if match(m, src, tag) {
				return m
			}
		}
		if b.closed {
			panic(errAborted)
		}
		if c != nil && src != AnySource && c.rankDead(src) {
			panic(DeadRankError{Rank: src, World: c.worldIDOf(src)})
		}
		b.cond.Wait()
	}
}

func (b *mailbox) removeLocked(src, tag int) *message {
	for i, m := range b.queue {
		if match(m, src, tag) {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return m
		}
	}
	return nil
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// wake re-checks all blocked waiters. Taking the lock before broadcasting
// is what makes the dead-rank wakeup race-free: any waiter between its
// dead-flag check and cond.Wait still holds the lock, so the broadcast
// cannot slip into that window.
func (b *mailbox) wake() {
	b.mu.Lock()
	b.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	b.cond.Broadcast()
}
