package comm

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/netmodel"
)

func TestNewHierarchyDenseRenumbering(t *testing.T) {
	// Sparse labels, interleaved map: ranks 0,2 on node 7; ranks 1,3 on
	// node 3. Labels must renumber densely by ascending label.
	h, err := NewHierarchy([]int{7, 3, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", h.NumNodes())
	}
	if h.NodeOf(1) != 0 || h.NodeOf(0) != 1 {
		t.Fatalf("dense renumbering wrong: nodeOf = %v", h.nodeOf)
	}
	if got := h.Members(0); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("node 0 members %v", got)
	}
	if h.Leader(0) != 1 || h.Leader(1) != 0 {
		t.Fatalf("leaders %v", h.leaders)
	}
	if h.MaxRanksPerNode() != 2 {
		t.Fatalf("MaxRanksPerNode = %d", h.MaxRanksPerNode())
	}
	if _, err := NewHierarchy([]int{0, -1}); err == nil {
		t.Fatal("negative node label accepted")
	}
}

func TestBlockHierarchyShapes(t *testing.T) {
	h := BlockHierarchy(10, 4) // nodes of 4,4,2
	if h.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", h.NumNodes())
	}
	if got := h.Members(2); !reflect.DeepEqual(got, []int{8, 9}) {
		t.Fatalf("last node %v", got)
	}
	if h.Leader(1) != 4 {
		t.Fatalf("leader of node 1 = %d", h.Leader(1))
	}
	if h.MaxRanksPerNode() != 4 {
		t.Fatalf("MaxRanksPerNode = %d", h.MaxRanksPerNode())
	}
}

// runCollect runs fn under the given options and returns rank 0's result.
func runCollect(t *testing.T, p int, opts Options, fn func(*Rank) []float64) [][]float64 {
	t.Helper()
	out := make([][]float64, p)
	_, err := Run(p, opts, func(r *Rank) error {
		out[r.ID()] = fn(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Power-of-two block layouts must make every hierarchical collective
// bit-identical to the flat path — the invariant that lets the solver
// switch methods without perturbing physics.
func TestHierBitIdenticalPow2(t *testing.T) {
	const p, rpn = 16, 4
	hierOpts := Options{Hierarchy: BlockHierarchy(p, rpn), Collectives: CollHier}
	for _, op := range []ReduceOp{OpSum, OpProd, OpMin, OpMax} {
		for _, n := range []int{1, 5, 64} {
			flat := runCollect(t, p, Options{}, func(r *Rank) []float64 {
				return r.Allreduce(op, collProbe(r.ID(), n, 0xabc))
			})
			hier := runCollect(t, p, hierOpts, func(r *Rank) []float64 {
				return r.Allreduce(op, collProbe(r.ID(), n, 0xabc))
			})
			for id := range flat {
				for j := range flat[id] {
					if math.Float64bits(flat[id][j]) != math.Float64bits(hier[id][j]) {
						t.Fatalf("op=%v n=%d rank=%d slot %d: flat %x hier %x",
							op, n, id, j, flat[id][j], hier[id][j])
					}
				}
			}
		}
	}
}

// Every hierarchical collective must produce correct results on any
// layout, including non-power-of-two nodes (correctness is layout-free;
// only float bit-identity needs the pow2 shape).
func TestHierCollectivesCorrectIrregular(t *testing.T) {
	const p = 11
	opts := Options{Hierarchy: BlockHierarchy(p, 3), Collectives: CollHier}
	_, err := Run(p, opts, func(r *Rank) error {
		id := r.ID()
		// Allreduce ints: exact under any association.
		ints := r.AllreduceInts(OpSum, []int64{int64(id), 1})
		if ints[0] != int64(p*(p-1))/2 || ints[1] != int64(p) {
			t.Errorf("rank %d: int allreduce got %v", id, ints)
		}
		mx := r.Allreduce(OpMax, []float64{float64(id)})
		if mx[0] != float64(p-1) {
			t.Errorf("rank %d: max got %v", id, mx[0])
		}
		// Bcast from a non-leader root.
		var in []float64
		if id == 4 {
			in = []float64{3.5, -1}
		}
		got := r.Bcast(4, in)
		if !reflect.DeepEqual(got, []float64{3.5, -1}) {
			t.Errorf("rank %d: bcast got %v", id, got)
		}
		var iin []int64
		if id == 7 {
			iin = []int64{9, 8}
		}
		igot := r.BcastInts(7, iin)
		if !reflect.DeepEqual(igot, []int64{9, 8}) {
			t.Errorf("rank %d: bcast ints got %v", id, igot)
		}
		// Reduce onto rank 0 (always a node leader).
		red := r.Reduce(OpSum, 0, []float64{1})
		if id == 0 && red[0] != float64(p) {
			t.Errorf("reduce got %v", red)
		}
		if id != 0 && red != nil {
			t.Errorf("rank %d: non-root reduce got %v", id, red)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TuneCollectives must reject the hierarchical method on layouts that
// break float bit-identity, and keep the flat dispatch.
func TestTuneRejectsIrregularLayout(t *testing.T) {
	const p = 12 // 3 ranks per node: intra tree != flat RD low rounds
	opts := Options{Hierarchy: BlockHierarchy(p, 3)}
	_, err := Run(p, opts, func(r *Rank) error {
		method, _, hierOK := TuneCollectives(r, 1, true)
		if hierOK {
			t.Errorf("rank %d: irregular layout passed verification", r.ID())
		}
		if method != CollFlat {
			t.Errorf("rank %d: selected %v", r.ID(), method)
		}
		if r.hierOn() {
			t.Errorf("rank %d: hier dispatch on after rejection", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// On a congested fat-tree topology model, the tuner must verify the
// pow2 hierarchy bit-exact and select it by modeled time.
func TestTuneSelectsHierOnTopology(t *testing.T) {
	const p = 64
	topo, err := netmodel.FatTree(netmodel.FatTreeConfig{
		RanksPerNode: 8, NodesPerLeaf: 4, Leaves: 2, Oversub: 2,
		IntraAlpha: 2.5e-7, IntraBeta: 8e-11,
		LinkAlpha: 6.5e-7, LinkBeta: 3.1e-10,
		SpineAlpha: 5e-7, SpineBeta: 3.1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := netmodel.QDR
	model.Topo = topo
	opts := Options{Model: model, Hierarchy: BlockHierarchy(p, 8)}
	_, err = Run(p, opts, func(r *Rank) error {
		method, timings, hierOK := TuneCollectives(r, 2, true)
		if !hierOK {
			t.Errorf("rank %d: pow2 block layout failed verification", r.ID())
			return nil
		}
		if len(timings) != 2 {
			t.Errorf("rank %d: %d timings", r.ID(), len(timings))
			return nil
		}
		if method != CollHier {
			t.Errorf("rank %d: selected %v (flat %.3e hier %.3e)",
				r.ID(), method, timings[0].ModelMax, timings[1].ModelMax)
		}
		if !r.hierOn() {
			t.Errorf("rank %d: winner not committed", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Auto-derived hierarchy: CollHier with a topology model and no explicit
// Hierarchy must group ranks by the topology's node map.
func TestHierAutoDerivedFromTopology(t *testing.T) {
	topo, err := netmodel.FatTreeCluster(64)
	if err != nil {
		t.Fatal(err)
	}
	model := netmodel.QDR
	model.Topo = topo
	_, err = Run(64, Options{Model: model, Collectives: CollHier}, func(r *Rank) error {
		if r.comm.hier == nil || !r.hierOn() {
			t.Errorf("rank %d: hierarchy not derived", r.ID())
			return nil
		}
		got := r.AllreduceInts(OpSum, []int64{1})
		if got[0] != 64 {
			t.Errorf("rank %d: allreduce got %d", r.ID(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A topology too small for the communicator must be rejected.
func TestTopologyTooSmallRejected(t *testing.T) {
	topo, err := netmodel.FatTreeCluster(16)
	if err != nil {
		t.Fatal(err)
	}
	model := netmodel.Loopback
	model.Topo = topo
	_, err = Run(32, Options{Model: model}, func(r *Rank) error { return nil })
	if err == nil {
		t.Fatal("undersized topology accepted")
	}
}

// RabenseifnerMinLen must be tunable via Options and environment, with
// Options taking precedence.
func TestRabenseifnerMinLenTunable(t *testing.T) {
	if got := resolveRabMinLen(0); got != rabenseifnerMinLenDefault {
		t.Fatalf("default = %d", got)
	}
	if got := resolveRabMinLen(512); got != 512 {
		t.Fatalf("option = %d", got)
	}
	t.Setenv("CMT_RABENSEIFNER_MINLEN", "128")
	if got := resolveRabMinLen(0); got != 128 {
		t.Fatalf("env = %d", got)
	}
	if got := resolveRabMinLen(512); got != 512 {
		t.Fatalf("option should beat env, got %d", got)
	}
	t.Setenv("CMT_RABENSEIFNER_MINLEN", "bogus")
	if got := resolveRabMinLen(0); got != rabenseifnerMinLenDefault {
		t.Fatalf("bogus env = %d", got)
	}

	// End to end: with the switch lowered to 16, a 16-long vector takes
	// the Rabenseifner path (watch its distinctive tag traffic via the
	// byte count differing from recursive doubling at p=4: RD sends
	// 2*16*8 bytes per rank, reduce-scatter+allgather sends 8+4+4+8
	// floats = 24*8 bytes).
	_, err := Run(4, Options{RabenseifnerMinLen: 16}, func(r *Rank) error {
		data := collProbeInts(r.ID(), 16, 0xfeed)
		want := append([]float64(nil), data...)
		r2 := append([]float64(nil), data...)
		r.allreduceRabenseifner(OpSum, want)
		got := r.Allreduce(OpSum, r2)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Errorf("rank %d: dispatch did not take Rabenseifner path (slot %d)", r.ID(), i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Shrinking a hierarchical communicator must drop to flat collectives
// (the survivor set has no guaranteed node layout) and still work.
func TestShrinkDropsHierarchy(t *testing.T) {
	const p = 8
	opts := Options{Hierarchy: BlockHierarchy(p, 4), Collectives: CollHier}
	_, err := Run(p, opts, func(r *Rank) error {
		if r.ID() == 5 {
			r.Kill()
		}
		if _, err := r.AllreduceErr(OpSum, []float64{1}); err == nil {
			t.Errorf("rank %d: allreduce survived member death", r.ID())
			return nil
		}
		sub, err := r.Shrink([]int{0, 1, 2, 3, 4, 6, 7})
		if err != nil {
			return err
		}
		if sub.hierOn() {
			t.Errorf("rank %d: shrunken comm still hierarchical", r.ID())
		}
		got := sub.AllreduceInts(OpSum, []int64{1})
		if got[0] != int64(p-1) {
			t.Errorf("rank %d: shrunken allreduce got %d", r.ID(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
