package comm

import (
	"strings"
	"testing"
)

func TestTracerRecordsP2P(t *testing.T) {
	var tr MemTracer
	_, err := Run(2, Options{Tracer: &tr}, func(r *Rank) error {
		if r.ID() == 0 {
			r.SetSite("exchange")
			r.Send(1, 5, []float64{1, 2, 3})
		} else {
			r.Recv(0, 5)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(events))
	}
	e := events[0]
	if e.Src != 0 || e.Dst != 1 || e.Tag != 5 || e.Bytes != 24 || e.Site != "exchange" {
		t.Fatalf("event = %+v", e)
	}
	if e.ArriveVT <= e.SendVT {
		t.Fatalf("arrival %v must follow send %v", e.ArriveVT, e.SendVT)
	}
}

func TestTracerSeesCollectiveWires(t *testing.T) {
	var tr MemTracer
	_, err := Run(4, Options{Tracer: &tr}, func(r *Rank) error {
		r.Allreduce(OpSum, []float64{1})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recursive doubling on 4 ranks: 2 rounds x 4 ranks = 8 wire
	// messages.
	if tr.Len() != 8 {
		t.Fatalf("allreduce produced %d wire messages, want 8", tr.Len())
	}
}

func TestTraceSummary(t *testing.T) {
	var tr MemTracer
	_, err := Run(4, Options{Tracer: &tr, Grid: [3]int{4, 1, 1}}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(3, 1, make([]float64, 10)) // 3 hops on the grid
		}
		if r.ID() == 3 {
			r.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Messages != 1 || s.Bytes != 80 || s.MeanBytes != 80 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MaxHops != 3 {
		t.Fatalf("hops = %d, want 3 (grid distance)", s.MaxHops)
	}
}

func TestTraceCSV(t *testing.T) {
	var tr MemTracer
	_, err := Run(2, Options{Tracer: &tr}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 7, []float64{1})
		} else {
			r.Recv(0, 7)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "src,dst,tag,bytes,hops,send_vt,arrive_vt,site") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "0,1,7,8,1,") {
		t.Fatalf("missing event row:\n%s", out)
	}
}

func TestTracerCapDrops(t *testing.T) {
	tr := MemTracer{Cap: 3}
	_, err := Run(4, Options{Tracer: &tr}, func(r *Rank) error {
		r.Allreduce(OpSum, []float64{1}) // 8 wire messages on 4 ranks
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("retained %d events, want Cap=3", tr.Len())
	}
	if tr.Dropped() != 5 {
		t.Fatalf("dropped %d events, want 5", tr.Dropped())
	}
	s := tr.Summarize()
	if s.Dropped != 5 || s.Messages != 3 {
		t.Fatalf("summary = %+v, want 3 messages and 5 dropped", s)
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	var a, b MemTracer
	_, err := Run(2, Options{Tracer: MultiTracer{&a, &b}}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 1, []float64{1})
		} else {
			r.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out lost events: a=%d b=%d, want 1 each", a.Len(), b.Len())
	}
}

func TestNoTracerNoPanic(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 0, nil)
		} else {
			r.Recv(0, 0)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateModel(t *testing.T) {
	m, err := CalibrateModel("host", []int{1, 64, 4096, 65536}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "host" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.Alpha <= 0 || m.Beta <= 0 {
		t.Fatalf("nonpositive fit: alpha=%g beta=%g", m.Alpha, m.Beta)
	}
	// Sanity: moving 1MB must be modeled slower than 8 bytes.
	if m.Cost(1<<20, 1) <= m.Cost(8, 1) {
		t.Fatal("calibrated model not size-sensitive")
	}
	// The in-process transport is far faster than gigabit Ethernet.
	if m.Alpha > 1e-3 {
		t.Fatalf("calibrated latency %g implausibly high", m.Alpha)
	}
}

func TestCalibrateModelDefaults(t *testing.T) {
	m, err := CalibrateModel("", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "calibrated" {
		t.Fatalf("default name = %q", m.Name)
	}
}
