package comm

import (
	"fmt"
	"math"
	"time"
)

// CollMethod selects the collective algorithm family a communicator
// dispatches to, the way gs.Method selects an exchange method.
type CollMethod int32

const (
	// CollFlat runs the classic single-level algorithms (dissemination
	// barrier, binomial bcast/reduce, recursive-doubling/Rabenseifner
	// allreduce).
	CollFlat CollMethod = iota
	// CollHier runs the two-level node-leader algorithms over the
	// communicator's Hierarchy.
	CollHier
)

// String implements fmt.Stringer.
func (m CollMethod) String() string {
	switch m {
	case CollFlat:
		return "flat"
	case CollHier:
		return "hierarchical"
	}
	return fmt.Sprintf("CollMethod(%d)", int32(m))
}

// CollTiming summarizes one collective method's measured cost across all
// ranks, mirroring gs.Timing.
type CollTiming struct {
	Method CollMethod
	// Host wall seconds per probe iteration: mean/min/max of the
	// per-rank averages over the tuning trials.
	WallAvg, WallMin, WallMax float64
	// Modeled network seconds per probe iteration, same statistics.
	ModelAvg, ModelMin, ModelMax float64
}

// selectCollMethod picks the method whose worst-rank time is smallest;
// ties keep the earlier (flat) entry, so a deterministic timing list
// yields a deterministic choice on every rank.
func selectCollMethod(timings []CollTiming, byModel bool) CollMethod {
	cost := func(t CollTiming) float64 {
		if byModel {
			return t.ModelMax
		}
		return t.WallMax
	}
	best := timings[0]
	for _, t := range timings[1:] {
		if cost(t) < cost(best) {
			best = t
		}
	}
	return best.Method
}

// TuneCollectives verifies and times the collective algorithm families
// and commits the winner as the communicator's dispatch method, the way
// gs.TuneBy picks an exchange method. It is collective: every rank must
// call it with identical arguments, and every rank computes the same
// winner from allreduced statistics. The method is written exactly once,
// after all measurement.
//
// Verification comes first, and only bit-exact-verified candidates are
// eligible for timing:
//
//   - Flat vs hierarchical allreduce on pseudo-random float probes
//     across ops and vector lengths: the hierarchical method is eligible
//     only if every result is bit-identical to the flat path (true for
//     power-of-two block layouts; irregular layouts fail here and keep
//     the communicator on the flat path, preserving the repo's
//     bit-reproducibility invariant).
//   - Recursive doubling vs Rabenseifner at the algorithm-switch length:
//     exact-arithmetic probes (integer-valued sums, min/max on floats)
//     must agree bitwise, catching implementation drift between the two
//     flat algorithms before the size-based switch is trusted.
//
// byModel selects the modeled-time criterion (the right one when
// simulating a cluster from a laptop); false selects host wall time.
// The returned bool reports whether the hierarchical method passed
// verification. With no Hierarchy configured only the flat path is
// verified and timed.
func TuneCollectives(r *Rank, trials int, byModel bool) (CollMethod, []CollTiming, bool) {
	if trials < 1 {
		trials = 1
	}
	c := r.comm
	hierOK := r.verifyCollectives()
	methods := []CollMethod{CollFlat}
	if hierOK && c.hier != nil {
		methods = append(methods, CollHier)
	}

	probe64 := collProbe(r.id, 64, 0x5bd1)
	probe8 := collProbe(r.id, 8, 0x9e37)
	scratch := make([]float64, 64)
	timings := make([]CollTiming, 0, len(methods))
	for _, m := range methods {
		// Warm once (first-use allocations), then time.
		r.collProbeIter(m, probe64, probe8, scratch)
		r.Barrier()
		v0 := r.clock.Now()
		start := time.Now()
		for t := 0; t < trials; t++ {
			r.collProbeIter(m, probe64, probe8, scratch)
		}
		wall := time.Since(start).Seconds() / float64(trials)
		model := (r.clock.Now() - v0) / float64(trials)

		// Cross-rank statistics, the gs.timeMethods reduction.
		stats := []float64{wall, -wall, wall, model, -model, model}
		r.Allreduce(OpMax, stats[:2])
		r.Allreduce(OpSum, stats[2:3])
		r.Allreduce(OpMax, stats[3:5])
		r.Allreduce(OpSum, stats[5:6])
		p := float64(c.size)
		timings = append(timings, CollTiming{
			Method:   m,
			WallMax:  stats[0],
			WallMin:  -stats[1],
			WallAvg:  stats[2] / p,
			ModelMax: stats[3],
			ModelMin: -stats[4],
			ModelAvg: stats[5] / p,
		})
	}
	best := selectCollMethod(timings, byModel)
	c.collMethod.Store(int32(best))
	return best, timings, hierOK
}

// collProbeIter runs one tuning iteration of method m: a diagnostics-
// sized and a residual-sized allreduce plus a barrier, the global
// operations that dominate CMT-bone's scaling.
func (r *Rank) collProbeIter(m CollMethod, probe64, probe8, scratch []float64) {
	copy(scratch[:64], probe64)
	r.allreduceForce(m, OpSum, scratch[:64])
	copy(scratch[:8], probe8)
	r.allreduceForce(m, OpMax, scratch[:8])
	r.barrierForce(m)
}

// allreduceForce runs a small-vector allreduce with an explicit method,
// bypassing the committed dispatch (tuning only).
func (r *Rank) allreduceForce(m CollMethod, op ReduceOp, data []float64) {
	coll := r.collStart("MPI_Allreduce")
	var bytes int64
	if m == CollHier {
		bytes = r.allreduceHier(op, data, nil)
	} else {
		bytes = r.allreduceRaw(op, data, nil)
	}
	coll.done(bytes)
}

// barrierForce runs a barrier with an explicit method (tuning only).
func (r *Rank) barrierForce(m CollMethod) {
	coll := r.collStart("MPI_Barrier")
	var bytes int64
	if m == CollHier {
		bytes = r.barrierHier()
	} else {
		bytes = r.barrierRaw()
	}
	coll.done(bytes)
}

// collProbe fills a deterministic pseudo-random probe vector: full
// mantissas so any change in floating-point association shows up
// bitwise.
func collProbe(rank, n int, salt uint64) []float64 {
	out := make([]float64, n)
	for i := range out {
		h := uint64(rank+1)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + salt
		h ^= h >> 31
		h *= 0x94d049bb133111eb
		h ^= h >> 29
		// Uniform in [1, 2) with full mantissa entropy, sign-flipped on
		// odd hashes: sums are well-conditioned but association-
		// sensitive in the low bits.
		v := 1 + float64(h>>12)/(1<<52)
		if h&1 != 0 {
			v = -v
		}
		out[i] = v
	}
	return out
}

// collProbeInts fills an integer-valued float probe in [-8, 8): sums of
// up to ~2^49 such values are exact, so any two associations agree
// bitwise — the payload used to cross-check algorithms whose combine
// trees legitimately differ.
func collProbeInts(rank, n int, salt uint64) []float64 {
	out := make([]float64, n)
	for i := range out {
		h := uint64(rank+1)*0xd1342543de82ef95 + uint64(i)*0xaf251af3b0f025b5 + salt
		h ^= h >> 33
		out[i] = float64(int64(h%16) - 8)
	}
	return out
}

// verifyCollectives is the bit-exactness gate: it returns whether the
// hierarchical allreduce reproduced the flat path bitwise on every rank
// (vacuously true checks still run the flat-vs-flat Rabenseifner probes,
// whose failure also reports false). Collective.
func (r *Rank) verifyCollectives() bool {
	c := r.comm
	ok := true
	bitsEqual := func(a, b []float64) bool {
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}

	if c.hier != nil {
		for _, op := range []ReduceOp{OpSum, OpProd, OpMin, OpMax} {
			for _, n := range []int{1, 3, 64} {
				probe := collProbe(r.id, n, uint64(op)<<8+uint64(n))
				flat := append([]float64(nil), probe...)
				hier := append([]float64(nil), probe...)
				r.allreduceRaw(op, flat, nil)
				r.allreduceHier(op, hier, nil)
				if !bitsEqual(flat, hier) {
					ok = false
				}
			}
		}
		// Integer payloads through the int path: exact under any
		// association, so this checks protocol correctness, not layout.
		intsFlat := []int64{int64(r.id) + 1, -3, int64(r.id * r.id)}
		intsHier := append([]int64(nil), intsFlat...)
		r.allreduceRaw(OpSum, nil, intsFlat)
		r.allreduceHier(OpSum, nil, intsHier)
		for i := range intsFlat {
			if intsFlat[i] != intsHier[i] {
				ok = false
			}
		}
	}

	// Recursive doubling vs Rabenseifner at the switch length, on
	// payloads where both associations are exact.
	if c.size > 2 {
		n := c.rabMinLen
		if n < 4 {
			n = 4
		}
		if n > 1<<16 {
			n = 1 << 16
		}
		sum := collProbeInts(r.id, n, 0x51ab)
		rd := append([]float64(nil), sum...)
		rab := append([]float64(nil), sum...)
		r.allreduceRaw(OpSum, rd, nil)
		r.allreduceRabenseifner(OpSum, rab)
		if !bitsEqual(rd, rab) {
			ok = false
		}
		ext := collProbe(r.id, n, 0x7a11)
		for _, op := range []ReduceOp{OpMin, OpMax} {
			rd := append([]float64(nil), ext...)
			rab := append([]float64(nil), ext...)
			r.allreduceRaw(op, rd, nil)
			r.allreduceRabenseifner(op, rab)
			if !bitsEqual(rd, rab) {
				ok = false
			}
		}
	}

	// Agree on the verdict across ranks (flat path: the method under
	// test must not carry its own verification verdict).
	flag := []int64{1}
	if !ok {
		flag[0] = 0
	}
	r.allreduceRaw(OpMin, nil, flag)
	return flag[0] == 1
}
