package comm

import (
	"sync"
	"testing"
	"time"
)

// White-box tests of the mailbox, the correctness core of the transport.

func TestMailboxFIFOPerSourceTag(t *testing.T) {
	b := newMailbox()
	for i := 0; i < 5; i++ {
		b.put(&message{src: 1, tag: 7, data: []float64{float64(i)}})
	}
	for i := 0; i < 5; i++ {
		m := b.take(1, 7)
		if m.data[0] != float64(i) {
			t.Fatalf("FIFO violated: got %v at position %d", m.data[0], i)
		}
	}
}

func TestMailboxSelectiveMatching(t *testing.T) {
	b := newMailbox()
	b.put(&message{src: 1, tag: 1})
	b.put(&message{src: 2, tag: 1})
	b.put(&message{src: 1, tag: 2})
	if m := b.take(2, 1); m.src != 2 {
		t.Fatalf("matched wrong source %d", m.src)
	}
	if m := b.take(1, 2); m.tag != 2 {
		t.Fatalf("matched wrong tag %d", m.tag)
	}
	if m := b.take(AnySource, AnyTag); m.src != 1 || m.tag != 1 {
		t.Fatalf("wildcard matched (%d,%d)", m.src, m.tag)
	}
}

func TestMailboxTryTake(t *testing.T) {
	b := newMailbox()
	if m := b.tryTake(AnySource, AnyTag); m != nil {
		t.Fatal("tryTake on empty box returned a message")
	}
	b.put(&message{src: 0, tag: 3})
	if m := b.tryTake(0, 4); m != nil {
		t.Fatal("tryTake matched wrong tag")
	}
	if m := b.tryTake(0, 3); m == nil {
		t.Fatal("tryTake missed a queued message")
	}
	if m := b.tryTake(0, 3); m != nil {
		t.Fatal("message not consumed")
	}
}

func TestMailboxPeekDoesNotConsume(t *testing.T) {
	b := newMailbox()
	b.put(&message{src: 5, tag: 9, data: []float64{1}})
	if m := b.peek(5, 9, nil); m == nil || m.data[0] != 1 {
		t.Fatal("peek failed")
	}
	if m := b.tryTake(5, 9); m == nil {
		t.Fatal("peek consumed the message")
	}
}

func TestMailboxBlockingTakeWakesOnPut(t *testing.T) {
	b := newMailbox()
	done := make(chan *message, 1)
	go func() { done <- b.take(3, 3) }()
	time.Sleep(2 * time.Millisecond) // let the taker block
	b.put(&message{src: 3, tag: 3})
	select {
	case m := <-done:
		if m.src != 3 {
			t.Fatalf("woke with wrong message from %d", m.src)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take never woke")
	}
}

func TestMailboxCloseUnblocksTakers(t *testing.T) {
	b := newMailbox()
	var wg sync.WaitGroup
	panicked := make(chan bool, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { panicked <- recover() == errAborted }()
			b.take(AnySource, AnyTag)
		}()
	}
	time.Sleep(2 * time.Millisecond)
	b.close()
	wg.Wait()
	for i := 0; i < 3; i++ {
		if !<-panicked {
			t.Fatal("blocked taker did not unwind with errAborted")
		}
	}
}

func TestMailboxPutAfterCloseDropped(t *testing.T) {
	b := newMailbox()
	b.close()
	b.put(&message{src: 0, tag: 0}) // must not panic
	defer func() {
		if recover() != errAborted {
			t.Fatal("tryTake on closed box must abort")
		}
	}()
	b.tryTake(AnySource, AnyTag)
}

func TestMailboxConcurrentProducersConsumers(t *testing.T) {
	b := newMailbox()
	const producers, per = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.put(&message{src: src, tag: 0, data: []float64{float64(i)}})
			}
		}(p)
	}
	// Per-source FIFO must hold even under concurrency.
	next := make([]int, producers)
	for i := 0; i < producers*per; i++ {
		m := b.take(AnySource, 0)
		if int(m.data[0]) != next[m.src] {
			t.Fatalf("source %d out of order: got %v want %d", m.src, m.data[0], next[m.src])
		}
		next[m.src]++
	}
	wg.Wait()
}
