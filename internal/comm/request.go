package comm

import "time"

// Request represents an in-flight nonblocking operation. Isend requests
// complete immediately (sends are eager); Irecv requests complete in Wait,
// which is where the mini-app — like its MPI parent — accumulates its
// synchronization time (Figure 9's dominant MPI_Wait).
//
// On communicators without CRC framing or a fault plane, an Irecv posted
// before the matching send completes by direct delivery: the sender copies
// the payload into the request-owned buf/ibuf, skipping the message
// envelope. The buffers persist across IrecvInto reposts, so steady-state
// exchanges stay allocation-free. All completion state is written either
// by the owning rank goroutine or by a sender holding the owner's mailbox
// lock, which the owner re-acquires before reading (waitRequest/Test).
type Request struct {
	rank     *Rank
	src, tag int
	msg      *message
	done     bool
	isSend   bool

	// Direct-delivery completion state (posted-receive fast path).
	direct  bool      // completed by a sender copy, not a queued message
	from    int       // actual source once complete (AnySource before)
	arrival float64   // virtual arrival time once complete
	buf     []float64 // request-owned payload buffers, reused across
	ibuf    []int64   // reposts of the same Request
}

// complete marks req satisfied by queued message m. Callers either own
// req exclusively or hold the owning mailbox's lock.
func (req *Request) complete(m *message) {
	req.msg = m
	req.from = m.src
	req.arrival = m.arrival
	req.done = true
}

// Isend starts a nonblocking send of a float payload. The returned request
// is already complete; Wait on it is free. See Send for buffer ownership.
// The request does not retain the message — that belongs to the receiver
// from the moment it is enqueued.
func (r *Rank) Isend(dst, tag int, data []float64) *Request {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, tag, data, nil)
	r.prof.record("MPI_Isend", time.Since(start).Seconds(), r.comm.model.Alpha, nbytes)
	return &Request{rank: r, done: true, isSend: true}
}

// IsendInts starts a nonblocking send of an int payload.
func (r *Rank) IsendInts(dst, tag int, ints []int64) *Request {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, tag, nil, ints)
	r.prof.record("MPI_Isend", time.Since(start).Seconds(), r.comm.model.Alpha, nbytes)
	return &Request{rank: r, done: true, isSend: true}
}

// Irecv posts a nonblocking receive for a message from src with tag.
// Matching happens lazily: Wait blocks until a matching message arrives.
// src may be AnySource and tag AnyTag.
func (r *Rank) Irecv(src, tag int) *Request {
	req := &Request{}
	r.IrecvInto(req, src, tag)
	return req
}

// IrecvInto is Irecv posting into a caller-owned Request, for hot paths
// that repost the same receives every exchange and must not allocate.
// Any previous contents of req are overwritten (the payload buffers are
// kept and reused); req must not have an incomplete receive outstanding.
func (r *Rank) IrecvInto(req *Request, src, tag int) {
	if src != AnySource {
		r.checkPeer(src)
	}
	start := time.Now()
	buf, ibuf := req.buf, req.ibuf
	*req = Request{rank: r, src: src, tag: tag, from: AnySource, buf: buf, ibuf: ibuf}
	if r.comm.directEligible() {
		// Atomically match an already-queued message or register the
		// request so the sender can deliver straight into it.
		r.comm.boxes[r.id].matchOrPost(req, src, tag)
	} else {
		// Eagerly match an already-queued message so Test/Wait on a
		// satisfied receive is cheap and ordering mirrors posting order.
		// Damaged frames are consumed and discarded here just like in
		// Wait; their retransmissions follow in order.
		for {
			m := r.comm.boxes[r.id].tryTake(src, tag)
			if m == nil {
				break
			}
			if r.frameOK(m) {
				req.complete(m)
				break
			}
		}
	}
	r.prof.record("MPI_Irecv", time.Since(start).Seconds(), 0, 0)
}

// Test reports whether the request has completed, matching a queued
// message if one is available, without blocking. The completion flag is
// read under the mailbox lock because a sender may be completing a posted
// request concurrently.
func (req *Request) Test() bool {
	if req.isSend {
		return true
	}
	b := req.rank.comm.boxes[req.rank.id]
	b.mu.Lock()
	for {
		if req.done {
			b.mu.Unlock()
			return true
		}
		m := b.removeLocked(req.src, req.tag)
		if m == nil {
			if b.closed {
				b.mu.Unlock()
				panic(errAborted)
			}
			b.mu.Unlock()
			return false
		}
		b.mu.Unlock()
		if req.rank.frameOK(m) {
			req.complete(m)
			return true
		}
		b.mu.Lock()
	}
}

// Wait blocks until the request completes and returns the received
// payloads (nil for send requests). The modeled wait time — how long the
// message was still in flight under the network model — is charged to
// MPI_Wait, reproducing the paper's synchronization accounting. If the
// awaited sender has been killed, Wait unwinds with a panicked
// DeadRankError; callers that must survive peer death use WaitErr.
func (req *Request) Wait() ([]float64, []int64) {
	data, ints, err := req.WaitErr()
	if err != nil {
		panic(err)
	}
	return data, ints
}

// WaitErr is Wait returning a typed error instead of deadlocking (or
// unwinding) when the awaited sender died: once the dead rank's queued
// messages are drained, a receive matching it specifically fails with a
// DeadRankError. This is the primitive heartbeat-based failure detection
// is built on.
func (req *Request) WaitErr() ([]float64, []int64, error) {
	r := req.rank
	start := time.Now()
	if !req.isSend {
		if err := r.comm.boxes[r.id].waitRequest(req, r); err != nil {
			r.prof.record("MPI_Wait", time.Since(start).Seconds(), 0, 0)
			return nil, nil, err
		}
	}
	var wait float64
	var bytes int64
	var data []float64
	var ints []int64
	switch {
	case req.isSend:
	case req.direct:
		wait = r.clock.WaitUntil(req.arrival)
		bytes = 8 * int64(len(req.buf)+len(req.ibuf))
		data, ints = req.buf, req.ibuf
	case req.msg != nil:
		wait = r.receive(req.msg)
		bytes = req.msg.bytes()
		data, ints = req.msg.data, req.msg.ints
	}
	r.prof.record("MPI_Wait", time.Since(start).Seconds(), wait, bytes)
	return data, ints, nil
}

// Arrival returns the modeled arrival time of a completed receive
// (meaningful after Wait).
func (req *Request) Arrival() float64 {
	return req.arrival
}

// Source returns the sender of a completed receive request (meaningful
// after Wait, particularly with AnySource).
func (req *Request) Source() int {
	if req.isSend || !req.done {
		return AnySource
	}
	return req.from
}

// Free returns a completed receive's message envelope (and its payload
// capacity) to the communicator's buffer pool. The payload slices
// returned by Wait must not be used after Free. Freeing is optional —
// unfreed messages are simply left to the garbage collector — and only
// meaningful on receive requests that went through the queue: the
// receiver owns a message, so send requests, direct deliveries (whose
// buffers stay with the request), and incomplete receives are left
// untouched.
func (req *Request) Free() {
	if req.isSend || !req.done || req.msg == nil {
		return
	}
	req.rank.comm.putMessage(req.msg)
	req.msg = nil
}

// WaitAll completes every request in order (MPI_Waitall).
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, req := range reqs {
		req.Wait()
	}
}
