package comm

import "time"

// Request represents an in-flight nonblocking operation. Isend requests
// complete immediately (sends are eager); Irecv requests complete in Wait,
// which is where the mini-app — like its MPI parent — accumulates its
// synchronization time (Figure 9's dominant MPI_Wait).
type Request struct {
	rank     *Rank
	src, tag int
	msg      *message
	done     bool
	isSend   bool
}

// Isend starts a nonblocking send of a float payload. The returned request
// is already complete; Wait on it is free. See Send for buffer ownership.
// The request does not retain the message — that belongs to the receiver
// from the moment it is enqueued.
func (r *Rank) Isend(dst, tag int, data []float64) *Request {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, tag, data, nil)
	r.prof.record("MPI_Isend", time.Since(start).Seconds(), r.comm.model.Alpha, nbytes)
	return &Request{rank: r, done: true, isSend: true}
}

// IsendInts starts a nonblocking send of an int payload.
func (r *Rank) IsendInts(dst, tag int, ints []int64) *Request {
	r.checkPeer(dst)
	start := time.Now()
	nbytes := r.deliver(dst, tag, nil, ints)
	r.prof.record("MPI_Isend", time.Since(start).Seconds(), r.comm.model.Alpha, nbytes)
	return &Request{rank: r, done: true, isSend: true}
}

// Irecv posts a nonblocking receive for a message from src with tag.
// Matching happens lazily: Wait blocks until a matching message arrives.
// src may be AnySource and tag AnyTag.
func (r *Rank) Irecv(src, tag int) *Request {
	req := &Request{}
	r.IrecvInto(req, src, tag)
	return req
}

// IrecvInto is Irecv posting into a caller-owned Request, for hot paths
// that repost the same receives every exchange and must not allocate.
// Any previous contents of req are overwritten; req must not have an
// incomplete receive outstanding.
func (r *Rank) IrecvInto(req *Request, src, tag int) {
	if src != AnySource {
		r.checkPeer(src)
	}
	start := time.Now()
	*req = Request{rank: r, src: src, tag: tag}
	// Eagerly match an already-queued message so Test/Wait on a
	// satisfied receive is cheap and ordering mirrors posting order.
	// Damaged frames are consumed and discarded here just like in Wait;
	// their retransmissions follow in order.
	for {
		m := r.comm.boxes[r.id].tryTake(src, tag)
		if m == nil {
			break
		}
		if r.frameOK(m) {
			req.msg = m
			req.done = true
			break
		}
	}
	r.prof.record("MPI_Irecv", time.Since(start).Seconds(), 0, 0)
}

// Test reports whether the request has completed, matching a queued
// message if one is available, without blocking.
func (req *Request) Test() bool {
	if req.done {
		return true
	}
	for {
		m := req.rank.comm.boxes[req.rank.id].tryTake(req.src, req.tag)
		if m == nil {
			break
		}
		if req.rank.frameOK(m) {
			req.msg = m
			req.done = true
			break
		}
	}
	return req.done
}

// Wait blocks until the request completes and returns the received
// payloads (nil for send requests). The modeled wait time — how long the
// message was still in flight under the network model — is charged to
// MPI_Wait, reproducing the paper's synchronization accounting. If the
// awaited sender has been killed, Wait unwinds with a panicked
// DeadRankError; callers that must survive peer death use WaitErr.
func (req *Request) Wait() ([]float64, []int64) {
	data, ints, err := req.WaitErr()
	if err != nil {
		panic(err)
	}
	return data, ints
}

// WaitErr is Wait returning a typed error instead of deadlocking (or
// unwinding) when the awaited sender died: once the dead rank's queued
// messages are drained, a receive matching it specifically fails with a
// DeadRankError. This is the primitive heartbeat-based failure detection
// is built on.
func (req *Request) WaitErr() ([]float64, []int64, error) {
	r := req.rank
	start := time.Now()
	if !req.done {
		m, err := r.takeChecked(req.src, req.tag)
		if err != nil {
			r.prof.record("MPI_Wait", time.Since(start).Seconds(), 0, 0)
			return nil, nil, err
		}
		req.msg = m
		req.done = true
	}
	var wait float64
	var bytes int64
	if !req.isSend && req.msg != nil {
		wait = r.receive(req.msg)
		bytes = req.msg.bytes()
	}
	r.prof.record("MPI_Wait", time.Since(start).Seconds(), wait, bytes)
	if req.msg == nil {
		return nil, nil, nil
	}
	return req.msg.data, req.msg.ints, nil
}

// Source returns the sender of a completed receive request (meaningful
// after Wait, particularly with AnySource).
func (req *Request) Source() int {
	if req.msg == nil {
		return AnySource
	}
	return req.msg.src
}

// Free returns a completed receive's message envelope (and its payload
// capacity) to the communicator's buffer pool. The payload slices
// returned by Wait must not be used after Free. Freeing is optional —
// unfreed messages are simply left to the garbage collector — and only
// meaningful on receive requests: the receiver owns a message, so send
// requests and incomplete receives are left untouched.
func (req *Request) Free() {
	if req.isSend || !req.done || req.msg == nil {
		return
	}
	req.rank.comm.putMessage(req.msg)
	req.msg = nil
}

// WaitAll completes every request in order (MPI_Waitall).
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, req := range reqs {
		req.Wait()
	}
}
