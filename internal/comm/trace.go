package comm

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Message tracing. Section VI of the paper motivates collecting "size,
// frequency, average distance etc." of communication to build network
// models for system simulation; a Tracer receives every wire-level
// message (including the point-to-point rounds inside collectives) with
// its modeled send and arrival times, producing exactly that dataset.

// TraceEvent describes one message on the wire.
type TraceEvent struct {
	Src, Dst int
	Tag      int
	Bytes    int64
	Hops     int     // switch-hop distance under the processor grid
	SendVT   float64 // sender's virtual time at injection
	ArriveVT float64 // modeled arrival time at the destination
	Site     string  // sender's call-site label
}

// Tracer receives message events. Record is called from many rank
// goroutines concurrently and must be safe for concurrent use.
type Tracer interface {
	Record(TraceEvent)
}

// MemTracer is an in-memory Tracer collecting events. Cap, when > 0,
// bounds how many events are retained: a long run cannot grow the
// tracer without bound, and the overflow is reported by Dropped rather
// than silently lost.
type MemTracer struct {
	// Cap is the maximum number of retained events (0 = unbounded).
	// Set it before the run starts.
	Cap int

	mu      sync.Mutex
	events  []TraceEvent
	dropped int64
}

// Record implements Tracer.
func (m *MemTracer) Record(e TraceEvent) {
	m.mu.Lock()
	if m.Cap > 0 && len(m.events) >= m.Cap {
		m.dropped++
	} else {
		m.events = append(m.events, e)
	}
	m.mu.Unlock()
}

// Dropped returns how many events were discarded because the tracer was
// at Cap.
func (m *MemTracer) Dropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Events returns the recorded events sorted by send time (stable on
// source rank for equal times).
func (m *MemTracer) Events() []TraceEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]TraceEvent(nil), m.events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SendVT != out[j].SendVT {
			return out[i].SendVT < out[j].SendVT
		}
		return out[i].Src < out[j].Src
	})
	return out
}

// Len returns the number of recorded events.
func (m *MemTracer) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// MultiTracer fans every event out to several tracers, so one run can
// feed e.g. both a CSV message dump and the telemetry layer's flow
// converter.
type MultiTracer []Tracer

// Record implements Tracer.
func (ts MultiTracer) Record(e TraceEvent) {
	for _, t := range ts {
		t.Record(e)
	}
}

// Summary aggregates the trace for quick inspection.
type TraceSummary struct {
	Messages  int64
	Bytes     int64
	MeanBytes float64
	MeanHops  float64
	MaxHops   int
	Dropped   int64 // events discarded at Cap (not in the aggregates)
}

// Summarize computes aggregate statistics over the trace.
func (m *MemTracer) Summarize() TraceSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s TraceSummary
	var hops int64
	for _, e := range m.events {
		s.Messages++
		s.Bytes += e.Bytes
		hops += int64(e.Hops)
		if e.Hops > s.MaxHops {
			s.MaxHops = e.Hops
		}
	}
	if s.Messages > 0 {
		s.MeanBytes = float64(s.Bytes) / float64(s.Messages)
		s.MeanHops = float64(hops) / float64(s.Messages)
	}
	s.Dropped = m.dropped
	return s
}

// WriteCSV dumps the trace in CSV form (one row per message), the input
// format for offline network simulators.
func (m *MemTracer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "src,dst,tag,bytes,hops,send_vt,arrive_vt,site"); err != nil {
		return err
	}
	for _, e := range m.Events() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.9f,%.9f,%s\n",
			e.Src, e.Dst, e.Tag, e.Bytes, e.Hops, e.SendVT, e.ArriveVT, e.Site); err != nil {
			return err
		}
	}
	return nil
}

// trace is the internal hook called on every wire message.
func (c *Comm) trace(src, dst, tag int, bytes int64, hops int, sendVT, arriveVT float64, site string) {
	if c.tracer == nil {
		return
	}
	c.tracer.Record(TraceEvent{
		Src: src, Dst: dst, Tag: tag, Bytes: bytes, Hops: hops,
		SendVT: sendVT, ArriveVT: arriveVT, Site: site,
	})
}
