package comm

import (
	"errors"
	"testing"
	"time"
)

// A collective must not hang when a participant dies mid-collective:
// every surviving rank blocked inside it — including ranks waiting on
// live partners that will never forward the dead rank's contribution —
// must observe a typed DeadRankError promptly.

// runWithTimeout fails the test if the run does not finish in time — the
// hang these tests are regressions against.
func runWithTimeout(t *testing.T, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s: collective hung after a member died", name)
	}
}

// TestAllreduceDeadRankFailsFast kills one rank before it contributes to
// an allreduce; every survivor must get a DeadRankError naming it.
func TestAllreduceDeadRankFailsFast(t *testing.T) {
	const size = 4
	const victim = 2
	runWithTimeout(t, "allreduce", func() {
		errCh := make(chan error, size)
		stats, err := RunSimple(size, func(r *Rank) error {
			if r.ID() == victim {
				r.Kill()
			}
			_, aerr := r.AllreduceErr(OpSum, []float64{float64(r.ID())})
			errCh <- aerr
			return nil
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if len(stats.Killed) != 1 || stats.Killed[0] != victim {
			t.Fatalf("killed = %v, want [%d]", stats.Killed, victim)
		}
		close(errCh)
		got := 0
		for aerr := range errCh {
			got++
			var dead DeadRankError
			if !errors.As(aerr, &dead) {
				t.Fatalf("survivor error = %v, want DeadRankError", aerr)
			}
			if dead.World != victim {
				t.Fatalf("DeadRankError names world %d, want %d", dead.World, victim)
			}
		}
		if got != size-1 {
			t.Fatalf("%d survivors reported, want %d", got, size-1)
		}
	})
}

// TestBarrierDeadRankFailsFast is the same regression for the
// dissemination barrier, whose rounds wait on live neighbors.
func TestBarrierDeadRankFailsFast(t *testing.T) {
	const size = 5 // non-power-of-two: dissemination rounds cross the victim
	const victim = 0
	runWithTimeout(t, "barrier", func() {
		errCh := make(chan error, size)
		_, err := RunSimple(size, func(r *Rank) error {
			if r.ID() == victim {
				r.Kill()
			}
			errCh <- r.BarrierErr()
			return nil
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		close(errCh)
		for berr := range errCh {
			var dead DeadRankError
			if !errors.As(berr, &dead) {
				t.Fatalf("survivor error = %v, want DeadRankError", berr)
			}
		}
	})
}

// TestCollectiveDeadUnderFaults runs the fail-fast path with CRC framing
// and a fault plane installed (the staged-message path), where rejected
// frames and retransmissions interleave with the death.
func TestCollectiveDeadUnderFaults(t *testing.T) {
	const size = 4
	const victim = 3
	runWithTimeout(t, "allreduce+faults", func() {
		errCh := make(chan error, size)
		_, err := Run(size, Options{Faults: &everyNthFaults{n: 3}}, func(r *Rank) error {
			// A clean faulted allreduce first, then the death.
			if _, aerr := r.AllreduceErr(OpSum, []float64{1}); aerr != nil {
				errCh <- aerr
				return nil
			}
			if r.ID() == victim {
				r.Kill()
			}
			_, aerr := r.AllreduceErr(OpMax, []float64{float64(r.ID())})
			errCh <- aerr
			return nil
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		close(errCh)
		survivors := 0
		for aerr := range errCh {
			survivors++
			var dead DeadRankError
			if !errors.As(aerr, &dead) {
				t.Fatalf("survivor error = %v, want DeadRankError", aerr)
			}
			if dead.World != victim {
				t.Fatalf("DeadRankError names world %d, want %d", dead.World, victim)
			}
		}
		if survivors != size-1 {
			t.Fatalf("%d survivors reported, want %d", survivors, size-1)
		}
	})
}

// TestDeadBeforeCollectiveStillDrains proves the drain guarantee: a rank
// that completes its whole part of a collective exchange and only then
// dies does not abort peers that already hold its contributions.
func TestDeadBeforeCollectiveStillDrains(t *testing.T) {
	const size = 3
	runWithTimeout(t, "drain", func() {
		_, err := RunSimple(size, func(r *Rank) error {
			// Rank 2 sends its p2p payload, then dies. Rank 0 must still
			// receive the payload (drained before the death is observed),
			// and only a subsequent receive errors.
			switch r.ID() {
			case 2:
				r.Send(0, 7, []float64{42})
				r.Kill()
			case 0:
				got := r.Recv(2, 7)
				if len(got) != 1 || got[0] != 42 {
					return errors.New("pre-death payload lost")
				}
				req := r.Irecv(2, 8)
				var dead DeadRankError
				if _, _, err := req.WaitErr(); !errors.As(err, &dead) {
					return errors.New("expected DeadRankError after drain")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	})
}

// TestGroupCollectiveScopedToMembers: the death of a world rank OUTSIDE a
// split group must not fail the group's collectives.
func TestGroupCollectiveScopedToMembers(t *testing.T) {
	const size = 4
	runWithTimeout(t, "group-scope", func() {
		_, err := RunSimple(size, func(r *Rank) error {
			// Ranks 0,1 form color 0; ranks 2,3 form color 1. Rank 3 dies
			// after everyone leaves Split (a world collective, which death
			// would rightly fail); color 0's group allreduce must still
			// complete even though a world rank is dead.
			g := r.Split(r.ID()/2, r.ID())
			if r.ID() < 2 {
				r.Send(3, 99, []float64{1}) // "I'm out of Split"
			}
			if r.ID() == 3 {
				r.Recv(0, 99)
				r.Recv(1, 99)
				r.Kill()
			}
			if r.ID() >= 2 {
				return nil // rank 2's group lost a member; nothing to assert
			}
			// Give the death time to land so the scoping is actually
			// exercised while rank 3 is marked dead.
			for i := 0; i < 100; i++ {
				out := g.Allreduce(OpSum, []float64{1})
				if out[0] != 2 {
					return errors.New("group allreduce wrong sum")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	})
}
