package comm

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/netmodel"
)

func TestSendRecvRoundtrip(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 7, []float64{1, 2, 3})
			return nil
		}
		got := r.Recv(0, 7)
		if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
			t.Errorf("rank 1 got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufferReusable(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			buf := []float64{42}
			r.Send(1, 0, buf)
			buf[0] = -1  // must not affect the message (eager copy)
			r.Recv(1, 1) // wait until receiver checked
			return nil
		}
		got := r.Recv(0, 0)
		if got[0] != 42 {
			t.Errorf("eager send did not copy: got %v", got[0])
		}
		r.Send(0, 1, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 10, []float64{10})
			r.Send(1, 20, []float64{20})
			return nil
		}
		// Receive out of send order, selected by tag.
		if got := r.Recv(0, 20); got[0] != 20 {
			t.Errorf("tag 20 delivered %v", got[0])
		}
		if got := r.Recv(0, 10); got[0] != 10 {
			t.Errorf("tag 10 delivered %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertaking(t *testing.T) {
	const n = 50
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, 3, []float64{float64(i)})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			if got := r.Recv(0, 3); got[0] != float64(i) {
				t.Errorf("message %d overtaken by %v", i, got[0])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	_, err := RunSimple(4, func(r *Rank) error {
		if r.ID() != 0 {
			r.Send(0, r.ID()*100, []float64{float64(r.ID())})
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			data, _, from := r.RecvMsg(AnySource, AnyTag)
			if data[0] != float64(from) {
				t.Errorf("payload %v does not identify sender %d", data[0], from)
			}
			seen[from] = true
		}
		if len(seen) != 3 {
			t.Errorf("expected 3 distinct senders, saw %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntAndMixedPayloads(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			r.SendInts(1, 1, []int64{5, -6, 7})
			r.SendMsg(1, 2, []float64{1.5}, []int64{9})
			return nil
		}
		if got := r.RecvInts(0, 1); !reflect.DeepEqual(got, []int64{5, -6, 7}) {
			t.Errorf("ints = %v", got)
		}
		d, is, _ := r.RecvMsg(0, 2)
		if d[0] != 1.5 || is[0] != 9 {
			t.Errorf("mixed = %v %v", d, is)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		other := 1 - r.ID()
		got := r.Sendrecv(other, 5, []float64{float64(r.ID())}, other, 5)
		if got[0] != float64(other) {
			t.Errorf("rank %d got %v", r.ID(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 9, []float64{1, 2, 3, 4})
			return nil
		}
		src, tag, bytes := r.Probe(AnySource, AnyTag)
		if src != 0 || tag != 9 || bytes != 32 {
			t.Errorf("probe = (%d,%d,%d), want (0,9,32)", src, tag, bytes)
		}
		// Probe must not consume: the receive still works.
		if got := r.Recv(0, 9); len(got) != 4 {
			t.Errorf("after probe, recv got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvBeforeSend(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			req := r.Irecv(1, 4)
			data, _ := req.Wait()
			if data[0] != 11 {
				t.Errorf("irecv got %v", data)
			}
			if req.Source() != 1 {
				t.Errorf("source = %d", req.Source())
			}
			return nil
		}
		r.Send(0, 4, []float64{11})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendWaitAll(t *testing.T) {
	_, err := RunSimple(3, func(r *Rank) error {
		if r.ID() == 0 {
			var reqs []*Request
			for dst := 1; dst < 3; dst++ {
				reqs = append(reqs, r.Isend(dst, 0, []float64{float64(dst)}))
			}
			for dst := 1; dst < 3; dst++ {
				reqs = append(reqs, r.Irecv(dst, 1))
			}
			r.WaitAll(reqs...)
			return nil
		}
		if got := r.Recv(0, 0); got[0] != float64(r.ID()) {
			t.Errorf("rank %d got %v", r.ID(), got)
		}
		r.Send(0, 1, []float64{0})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestTest(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			req := r.Irecv(1, 2)
			// Hand-shake so the message is definitely queued before Test.
			r.Recv(1, 3)
			if !req.Test() {
				t.Error("Test should succeed once the message is queued")
			}
			data, _ := req.Wait()
			if data[0] != 8 {
				t.Errorf("got %v", data)
			}
			return nil
		}
		r.Send(0, 2, []float64{8})
		r.Send(0, 3, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := RunSimple(4, func(r *Rank) error {
		if r.ID() == 2 {
			return sentinel
		}
		// Other ranks block forever; the abort must unwind them.
		r.Recv(AnySource, 99)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunPanicRecovered(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 1 {
			panic("kaboom")
		}
		r.Recv(1, 0)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if _, err := RunSimple(0, func(r *Rank) error { return nil }); err == nil {
		t.Fatal("size 0 must be rejected")
	}
}

func TestRunRejectsBadGrid(t *testing.T) {
	_, err := Run(8, Options{Grid: [3]int{3, 3, 1}}, func(r *Rank) error { return nil })
	if err == nil {
		t.Fatal("grid not tiling the size must be rejected")
	}
}

func TestVirtualClockAdvancesOnTraffic(t *testing.T) {
	stats, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 0, make([]float64, 1000))
		} else {
			r.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver must be charged at least the full message cost.
	min := stats.Profiles[1].MPIModeled()
	if min <= 0 {
		t.Fatal("receiver modeled time must be positive")
	}
	if stats.MaxVirtualTime() <= 0 {
		t.Fatal("virtual makespan must be positive")
	}
}

func TestModeledTimeOrdersBySize(t *testing.T) {
	run := func(n int) float64 {
		stats, err := Run(2, Options{Model: mustModel(t, "qdr-infiniband")}, func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, 0, make([]float64, n))
			} else {
				r.Recv(0, 0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.MaxVirtualTime()
	}
	if run(100000) <= run(10) {
		t.Fatal("bigger messages must take longer modeled time")
	}
}

func TestSelfSend(t *testing.T) {
	_, err := RunSimple(1, func(r *Rank) error {
		r.Send(0, 0, []float64{3.5})
		if got := r.Recv(0, 0); got[0] != 3.5 {
			t.Errorf("self-send got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func mustModel(t *testing.T, name string) netmodel.Model {
	t.Helper()
	m, err := netmodel.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func init() { _ = math.Pi }
