package comm

import "fmt"

// Hierarchy is a two-level node grouping of a communicator's ranks: the
// rank→node map real launchers expose (MPI_COMM_TYPE_SHARED). Each
// node's lowest rank is its leader. Hierarchical collectives reduce and
// broadcast within a node first and run the inter-node phase over the
// leaders only, so each node injects one flow into the fabric per round
// instead of one per rank — the per-node communication structure CMT-nek
// inherits from Nek5000.
//
// Bit-identity: with power-of-two uniform node sizes, a power-of-two
// node count and a block (contiguous) rank→node map, the hierarchical
// allreduce associates floating-point sums along exactly the same
// combine tree as the flat recursive-doubling path, so results are
// bit-identical with hierarchy on or off. TuneCollectives verifies this
// on probe data and refuses to select the hierarchical method when the
// layout breaks the equivalence (non-power-of-two nodes, irregular
// maps). Integer reductions and broadcasts are exact under any layout.
type Hierarchy struct {
	nodeOf  []int   // rank -> node index (dense, 0-based)
	nodes   [][]int // node -> ascending member ranks
	idx     []int   // rank -> position within its node's member list
	leaders []int   // node -> leader rank (lowest member)
	maxNode int     // largest node population
}

// NewHierarchy builds a Hierarchy from a rank→node map. Node labels may
// be any non-negative integers; nodes are ordered by ascending label and
// renumbered densely.
func NewHierarchy(nodeOf []int) (*Hierarchy, error) {
	if len(nodeOf) == 0 {
		return nil, fmt.Errorf("comm: hierarchy needs at least one rank")
	}
	maxLabel := 0
	for r, n := range nodeOf {
		if n < 0 {
			return nil, fmt.Errorf("comm: rank %d has negative node %d", r, n)
		}
		if n > maxLabel {
			maxLabel = n
		}
	}
	dense := make([]int, maxLabel+1)
	for i := range dense {
		dense[i] = -1
	}
	h := &Hierarchy{nodeOf: make([]int, len(nodeOf)), idx: make([]int, len(nodeOf))}
	for label := 0; label <= maxLabel; label++ {
		used := false
		for _, n := range nodeOf {
			if n == label {
				used = true
				break
			}
		}
		if used {
			dense[label] = len(h.nodes)
			h.nodes = append(h.nodes, nil)
		}
	}
	for r, label := range nodeOf {
		n := dense[label]
		h.nodeOf[r] = n
		h.idx[r] = len(h.nodes[n])
		h.nodes[n] = append(h.nodes[n], r)
	}
	for _, mem := range h.nodes {
		h.leaders = append(h.leaders, mem[0])
		if len(mem) > h.maxNode {
			h.maxNode = len(mem)
		}
	}
	return h, nil
}

// BlockHierarchy groups size ranks into contiguous nodes of ranksPerNode
// (the last node takes the remainder) — the block layout mpirun-style
// launchers produce and the layout under which hierarchical and flat
// float reductions are bit-identical for power-of-two shapes.
func BlockHierarchy(size, ranksPerNode int) *Hierarchy {
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	nodeOf := make([]int, size)
	for r := range nodeOf {
		nodeOf[r] = r / ranksPerNode
	}
	h, err := NewHierarchy(nodeOf)
	if err != nil {
		panic(err) // unreachable: the block map is always valid
	}
	return h
}

// NumNodes returns the node count.
func (h *Hierarchy) NumNodes() int { return len(h.nodes) }

// NodeOf returns the (dense) node index hosting a rank.
func (h *Hierarchy) NodeOf(rank int) int { return h.nodeOf[rank] }

// Members returns the ascending member ranks of a node.
func (h *Hierarchy) Members(node int) []int {
	return append([]int(nil), h.nodes[node]...)
}

// Leader returns a node's leader (its lowest rank).
func (h *Hierarchy) Leader(node int) int { return h.leaders[node] }

// MaxRanksPerNode returns the largest node population.
func (h *Hierarchy) MaxRanksPerNode() int { return h.maxNode }

// size returns the number of ranks the hierarchy maps.
func (h *Hierarchy) size() int { return len(h.nodeOf) }

// Hierarchical collective tag slots (collTagBase+0..13 are the flat
// collectives, +16.. the hierarchical phases).
const (
	hierTagReduceUp  = collTagBase + 16 // allreduce: intra-node reduce
	hierTagLeader    = collTagBase + 17 // allreduce: inter-leader allreduce
	hierTagBcastDown = collTagBase + 18 // allreduce: intra-node bcast
	hierTagBarUp     = collTagBase + 19 // barrier: intra-node gather
	hierTagBarDissem = collTagBase + 20 // barrier: leader dissemination
	hierTagBarRel    = collTagBase + 21 // barrier: intra-node release
	hierTagBcRoot    = collTagBase + 22 // bcast: root -> node leader
	hierTagBcLeader  = collTagBase + 23 // bcast: inter-leader binomial
	hierTagBcDown    = collTagBase + 24 // bcast: intra-node binomial
	hierTagRedUp     = collTagBase + 25 // reduce: intra-node reduce
	hierTagRedLeader = collTagBase + 26 // reduce: inter-leader binomial
)

// hierOn reports whether collectives should take the hierarchical path.
func (r *Rank) hierOn() bool {
	c := r.comm
	return c.hier != nil && CollMethod(c.collMethod.Load()) == CollHier
}

// allreduceHier is the two-level allreduce: binomial intra-node reduce
// onto the node leader, recursive-doubling allreduce across the leaders,
// binomial intra-node broadcast of the result. Each node injects exactly
// one flow per inter-node round (r.flows = 1), which is the modeled win
// over the flat path on a topology-priced network.
func (r *Rank) allreduceHier(op ReduceOp, data []float64, ints []int64) int64 {
	h := r.comm.hier
	node := h.nodeOf[r.id]
	mem := h.nodes[node]
	idx := h.idx[r.id]
	nm := len(mem)
	var bytes int64
	r.flows = 1

	// Intra-node binomial reduce onto mem[0]. The combine order matches
	// the low rounds of flat recursive doubling under a block map.
	for mask := 1; mask < nm; mask <<= 1 {
		if idx&mask != 0 {
			bytes += r.sendRaw(mem[idx-mask], hierTagReduceUp, data, ints)
			break
		}
		if idx+mask < nm {
			r.combineFrom(op, data, ints, r.recvRaw(mem[idx+mask], hierTagReduceUp))
		}
	}

	if idx == 0 {
		bytes += r.allreduceMembers(op, data, ints, h.leaders, node, hierTagLeader)
	}

	// Intra-node binomial broadcast of the reduced result (MPICH shape).
	mask := 1
	for mask < nm {
		if idx&mask != 0 {
			m := r.recvRaw(mem[idx-mask], hierTagBcastDown)
			if data != nil {
				copy(data, m.data)
			}
			if ints != nil {
				copy(ints, m.ints)
			}
			r.freeRaw(m)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if idx+mask < nm {
			bytes += r.sendRaw(mem[idx+mask], hierTagBcastDown, data, ints)
		}
	}
	return bytes
}

// allreduceMembers is recursive-doubling allreduce (with the
// non-power-of-two fold) over an explicit member list; idx is this
// rank's position in it. It mirrors allreduceRaw but addresses members.
func (r *Rank) allreduceMembers(op ReduceOp, data []float64, ints []int64, members []int, idx, tag int) int64 {
	p := len(members)
	var bytes int64
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2
	if idx >= p2 {
		bytes += r.sendRaw(members[idx-p2], tag, data, ints)
		m := r.recvRaw(members[idx-p2], tag)
		if data != nil {
			copy(data, m.data)
		}
		if ints != nil {
			copy(ints, m.ints)
		}
		r.freeRaw(m)
		return bytes
	}
	if idx < rem {
		r.combineFrom(op, data, ints, r.recvRaw(members[idx+p2], tag))
	}
	for mask := 1; mask < p2; mask <<= 1 {
		partner := members[idx^mask]
		bytes += r.sendRaw(partner, tag, data, ints)
		r.combineFrom(op, data, ints, r.recvRaw(partner, tag))
	}
	if idx < rem {
		bytes += r.sendRaw(members[idx+p2], tag, data, ints)
	}
	return bytes
}

// barrierHier: intra-node binomial gather onto the leader, dissemination
// barrier across leaders, intra-node binomial release.
func (r *Rank) barrierHier() int64 {
	h := r.comm.hier
	node := h.nodeOf[r.id]
	mem := h.nodes[node]
	idx := h.idx[r.id]
	nm := len(mem)
	var bytes int64
	r.flows = 1

	for mask := 1; mask < nm; mask <<= 1 {
		if idx&mask != 0 {
			bytes += r.sendRaw(mem[idx-mask], hierTagBarUp, nil, nil)
			break
		}
		if idx+mask < nm {
			r.freeRaw(r.recvRaw(mem[idx+mask], hierTagBarUp))
		}
	}

	if idx == 0 {
		nl := len(h.leaders)
		for k := 1; k < nl; k <<= 1 {
			bytes += r.sendRaw(h.leaders[(node+k)%nl], hierTagBarDissem, nil, nil)
			r.freeRaw(r.recvRaw(h.leaders[(node-k%nl+nl)%nl], hierTagBarDissem))
		}
	}

	mask := 1
	for mask < nm {
		if idx&mask != 0 {
			r.freeRaw(r.recvRaw(mem[idx-mask], hierTagBarRel))
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if idx+mask < nm {
			bytes += r.sendRaw(mem[idx+mask], hierTagBarRel, nil, nil)
		}
	}
	return bytes
}

// bcastHier: the root hands its payload to its node leader, a binomial
// broadcast runs across the leaders (rooted at the root's node), and
// each leader broadcasts binomially within its node. Broadcast moves
// bytes without combining, so it is bit-exact under any layout.
func (r *Rank) bcastHier(root int, data []float64, ints []int64) ([]float64, []int64, int64) {
	h := r.comm.hier
	node := h.nodeOf[r.id]
	mem := h.nodes[node]
	idx := h.idx[r.id]
	nm := len(mem)
	rootNode := h.nodeOf[root]
	rootLeader := h.leaders[rootNode]
	origData, origInts := data, ints
	var bytes int64
	r.flows = 1

	if root != rootLeader {
		if r.id == root {
			bytes += r.sendRaw(rootLeader, hierTagBcRoot, data, ints)
		} else if r.id == rootLeader {
			m := r.recvRaw(root, hierTagBcRoot)
			data, ints = m.data, m.ints
		}
	}

	if idx == 0 {
		nl := len(h.leaders)
		vr := (node - rootNode + nl) % nl
		mask := 1
		for mask < nl {
			if vr&mask != 0 {
				m := r.recvRaw(h.leaders[(node-mask+nl)%nl], hierTagBcLeader)
				data, ints = m.data, m.ints
				break
			}
			mask <<= 1
		}
		for mask >>= 1; mask > 0; mask >>= 1 {
			if vr+mask < nl {
				bytes += r.sendRaw(h.leaders[(node+mask)%nl], hierTagBcLeader, data, ints)
			}
		}
	}

	mask := 1
	for mask < nm {
		if idx&mask != 0 {
			m := r.recvRaw(mem[idx-mask], hierTagBcDown)
			data, ints = m.data, m.ints
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if idx+mask < nm {
			bytes += r.sendRaw(mem[idx+mask], hierTagBcDown, data, ints)
		}
	}
	if r.id == root {
		// The blocking Bcast contract: root gets its own slice back.
		return origData, origInts, bytes
	}
	return data, ints, bytes
}

// reduceHier: intra-node binomial reduce onto each leader, then a
// binomial reduce across leaders rooted at the root's node. root must be
// a node leader (the collective dispatcher only routes here for root 0,
// which is always the leader of its node); for leader roots under a
// power-of-two block layout the combine tree matches the flat binomial
// reduce exactly.
func (r *Rank) reduceHier(op ReduceOp, root int, data []float64) ([]float64, int64) {
	h := r.comm.hier
	node := h.nodeOf[r.id]
	mem := h.nodes[node]
	idx := h.idx[r.id]
	nm := len(mem)
	rootNode := h.nodeOf[root]
	if root != h.leaders[rootNode] {
		panic(fmt.Sprintf("comm: hierarchical reduce root %d is not a node leader", root))
	}
	var bytes int64
	r.flows = 1

	for mask := 1; mask < nm; mask <<= 1 {
		if idx&mask != 0 {
			bytes += r.sendRaw(mem[idx-mask], hierTagRedUp, data, nil)
			return nil, bytes
		}
		if idx+mask < nm {
			m := r.recvRaw(mem[idx+mask], hierTagRedUp)
			op.combine(data, m.data)
			r.freeRaw(m)
		}
	}

	// Leaders: binomial reduce rooted at the root's node leader.
	nl := len(h.leaders)
	vr := (node - rootNode + nl) % nl
	for mask := 1; mask < nl; mask <<= 1 {
		if vr&mask != 0 {
			bytes += r.sendRaw(h.leaders[(node-mask+nl)%nl], hierTagRedLeader, data, nil)
			return nil, bytes
		}
		if vr+mask < nl {
			m := r.recvRaw(h.leaders[(node+mask)%nl], hierTagRedLeader)
			op.combine(data, m.data)
			r.freeRaw(m)
		}
	}
	return data, bytes
}
