package comm

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Shrink re-forms the communicator over a subset of its members — the
// ULFM MPI_Comm_shrink analogue the recovery protocol is built on. Every
// surviving rank calls Shrink with the identical ascending member list
// (its own current ids) and receives a Rank in a shared sub-communicator
// with dense renumbering 0..len(members)-1, the same virtual clock and
// profile as the caller, and the parent's network model, tracer and fault
// plane. Repeated Shrinks with the same member list return the same
// sub-communicator, which is what makes the call collective-free: the
// first member to arrive creates it, the rest attach, and messages sent
// to a member that has not yet attached simply queue in its mailbox.
//
// The Cartesian grid does not survive a shrink (the survivor set has no
// grid shape); modeled hop distances in the sub-communicator are 1.
func (r *Rank) Shrink(members []int) (*Rank, error) {
	c := r.comm
	start := time.Now()
	if len(members) < 1 {
		return nil, fmt.Errorf("comm: shrink to empty member list")
	}
	idx := -1
	for i, m := range members {
		if m < 0 || m >= c.size {
			return nil, fmt.Errorf("comm: shrink member %d out of range [0,%d)", m, c.size)
		}
		if i > 0 && m <= members[i-1] {
			return nil, fmt.Errorf("comm: shrink members must be strictly ascending, got %v", members)
		}
		if c.rankDead(m) {
			return nil, fmt.Errorf("comm: shrink member %d is dead", m)
		}
		if m == r.id {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("comm: rank %d is not in shrink member list %v", r.id, members)
	}

	key := fmt.Sprint(members)
	c.childMu.Lock()
	sub, ok := c.children[key]
	if !ok {
		sub = &Comm{
			size:     len(members),
			model:    c.model,
			tracer:   c.tracer,
			faults:   c.faults,
			crc:      c.crc,
			parent:   c,
			root:     c.root,
			parentOf: append([]int(nil), members...),
			dead:     make([]atomic.Bool, len(members)),
			// The node hierarchy does NOT survive a shrink: the survivor
			// set has no guaranteed layout, so collectives drop back to
			// the flat algorithms (hier nil, collMethod zero). Algorithm
			// tunables and the flat congestion declaration carry over.
			rabMinLen: c.rabMinLen,
			flatFlows: c.flatFlows,
		}
		sub.worldOf = make([]int, len(members))
		for i, m := range members {
			sub.worldOf[i] = c.worldIDOf(m)
		}
		sub.boxes = make([]*mailbox, len(members))
		for i := range sub.boxes {
			sub.boxes[i] = newMailbox()
		}
		if c.children == nil {
			c.children = make(map[string]*Comm)
		}
		c.children[key] = sub
		if c.root != nil && c.root.transport != nil {
			// Distributed run: derive the deterministic routing id every
			// process computes for this member list (Shrink is called with
			// world-stable inputs on every survivor) and register it, which
			// also flushes frames from peers that reached Shrink first.
			sub.ctx = childCtx(c.ctx, sub.worldOf)
			c.childMu.Unlock()
			c.root.reg.register(sub.ctx, sub)
			c.childMu.Lock()
		}
	}
	c.childMu.Unlock()

	r.prof.record("MPI_Comm_shrink", time.Since(start).Seconds(), 0, 0)
	return &Rank{comm: sub, id: idx, clock: r.clock, prof: r.prof}, nil
}
