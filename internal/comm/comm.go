// Package comm is an in-process message-passing runtime that reproduces
// the MPI communication patterns CMT-bone exercises: tagged point-to-point
// sends and receives (blocking and nonblocking), the collectives used by
// the gather-scatter library (barrier, broadcast, reduce, allreduce,
// gather, allgather, alltoall, alltoallv), and Cartesian topology helpers.
//
// There is no mature MPI for Go, so ranks are goroutines and the transport
// is per-rank mailboxes with MPI-style (source, tag) matching and
// non-overtaking order. Sends are eager (buffered) and never block, which
// matches the small-message regime of the mini-app and keeps the runtime
// deadlock-free by construction; all waiting happens on the receive side,
// exactly where the paper observes it (MPI_Wait, Figure 9).
//
// Two kinds of time are tracked. Host wall time is measured around every
// operation, giving an mpiP-style profile (Figures 8-10). In addition each
// rank carries a netmodel.Clock, a virtual clock advanced by an alpha-beta
// network model, so the same run also yields cluster-scale modeled
// timings — the "robust network models for system simulation" the paper's
// Section VI motivates.
package comm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netmodel"
)

// Wildcards for Recv/Irecv/Probe matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Options configures a communicator run.
type Options struct {
	// Model is the network cost model; the zero value selects
	// netmodel.Loopback.
	Model netmodel.Model
	// Grid, when non-zero, declares a 3D processor grid of exactly
	// Grid[0]*Grid[1]*Grid[2] == size ranks. It enables the Cartesian
	// helpers on Rank and distance-sensitive message costs.
	Grid [3]int
	// Periodic marks each grid dimension as wrapping. Only meaningful
	// with Grid.
	Periodic [3]bool
	// Tracer, when non-nil, receives every wire-level message (see
	// TraceEvent) for offline network modeling.
	Tracer Tracer
	// ComputeFactors, when non-nil (length == size), slows each rank's
	// modeled compute by the given factor (1 = nominal, 1.5 = 50%
	// slower) — straggler injection for load-imbalance studies.
	ComputeFactors []float64
	// Faults, when non-nil, installs a fault-injection plane that sees
	// every wire message and may drop (with retransmit), corrupt (with
	// CRC detection and retransmit) or delay it. Installing a fault
	// plane forces CRC framing on.
	Faults FaultPlane
	// CRC enables per-message CRC framing even without a fault plane:
	// every payload is checksummed at send and verified at receive.
	CRC bool
	// Hierarchy, when non-nil, declares the node grouping of the ranks
	// (which ranks share a physical node) and enables the two-level
	// hierarchical collectives. When nil but Model.Topo is set and
	// Collectives is CollHier, the hierarchy is derived from the
	// topology's node map.
	Hierarchy *Hierarchy
	// Collectives selects the initial collective dispatch method. The
	// zero value (CollFlat) runs the classic single-level algorithms;
	// CollHier turns on the node-leader two-level algorithms
	// unconditionally, trusting the caller that the layout preserves
	// bit-identical results (power-of-two node sizes and counts) — use
	// TuneCollectives to verify and pick automatically instead.
	Collectives CollMethod
	// RabenseifnerMinLen overrides the vector length at which Allreduce
	// switches from recursive doubling to the Rabenseifner algorithm.
	// 0 consults the CMT_RABENSEIFNER_MINLEN environment variable, then
	// falls back to the built-in default (4096).
	RabenseifnerMinLen int
}

// Comm is the shared state of one communicator: the mailboxes and the
// collected per-rank profiles. It is created by Run and not used directly.
type Comm struct {
	size     int
	model    netmodel.Model
	boxes    []*mailbox
	grid     [3]int
	periodic [3]bool
	hasGrid  bool
	tracer   Tracer

	// Hierarchical-collective state. hier is the node grouping (nil =
	// no hierarchy known); collMethod is the committed dispatch method
	// (a CollMethod, atomic because TuneCollectives writes it while
	// other ranks may be dispatching); rabMinLen is the recursive-
	// doubling/Rabenseifner switch length; flatFlows is the per-node
	// concurrent-sender count flat collectives declare to topology
	// congestion pricing (every rank of a node injects at once).
	hier       *Hierarchy
	collMethod atomic.Int32
	rabMinLen  int
	flatFlows  int

	// Fault plane state. faults/crc are inherited by shrunken
	// sub-communicators; dead is per-communicator (one flag per member),
	// set by Rank.Kill and observed by blocked receives.
	faults FaultPlane
	crc    bool
	dead   []atomic.Bool

	// Shrink bookkeeping. parent/parentOf link a shrunken communicator
	// to the one it was carved from (parentOf[i] = member i's id in the
	// parent); worldOf[i] is member i in the original world numbering
	// (nil = identity). children dedups Shrink calls so every member of
	// the same member list shares one sub-communicator.
	parent   *Comm
	parentOf []int
	worldOf  []int
	childMu  sync.Mutex
	children map[string]*Comm

	// Fault-plane counters, aggregated into Stats (including children).
	crcDetected atomic.Int64
	retransmits atomic.Int64

	// msgPool recycles message envelopes (and their payload capacity)
	// between sends. Messages only return here through Request.Free —
	// recycling is opt-in, so payload slices handed out by Recv/Wait
	// stay valid indefinitely unless the receiver frees them.
	msgPool sync.Pool

	// Distributed-run state, set only on the root (world) communicator of
	// a RunDistributed process and reached through root from
	// sub-communicators. localWorld[w] reports whether world rank w is
	// hosted in this process; nil means all ranks are local (the
	// in-process backend), which keeps the hot send path free of any
	// transport overhead. ctx is this communicator's routing id in the
	// per-process registry (worldCtx for the world communicator).
	root       *Comm
	transport  Transport
	localWorld []bool
	reg        *ctxRegistry
	ctx        uint64
}

// getMessage returns a recycled message envelope, or a fresh one.
func (c *Comm) getMessage() *message {
	if m, ok := c.msgPool.Get().(*message); ok {
		return m
	}
	return &message{}
}

// putMessage returns a message to the pool, keeping payload capacity.
func (c *Comm) putMessage(m *message) {
	m.src, m.tag, m.arrival = 0, 0, 0
	m.crc, m.framed = 0, false
	c.msgPool.Put(m)
}

// directEligible reports whether the posted-receive direct-delivery fast
// path may be used: CRC framing and the fault plane both need the staged
// message envelope (to verify or re-send frames), so either disables it.
func (c *Comm) directEligible() bool { return !c.crc && c.faults == nil }

// rankDead reports whether member id of this communicator was killed.
func (c *Comm) rankDead(id int) bool { return c.dead[id].Load() }

// firstDead returns the lowest dead member id among members (every
// member of the communicator when members is nil), or -1 when all are
// alive.
func (c *Comm) firstDead(members []int) int {
	if members == nil {
		for id := 0; id < c.size; id++ {
			if c.dead[id].Load() {
				return id
			}
		}
		return -1
	}
	for _, id := range members {
		if c.dead[id].Load() {
			return id
		}
	}
	return -1
}

// worldIDOf translates a member id of this communicator to the original
// world numbering.
func (c *Comm) worldIDOf(id int) int {
	if c.worldOf == nil {
		return id
	}
	return c.worldOf[id]
}

// markDead flags member id of this communicator (and the corresponding
// member of every ancestor communicator) as dead and wakes all blocked
// receivers so they can observe it. The dead flag is set before each
// mailbox's lock is taken to broadcast, which makes the wakeup race-free
// (see mailbox.wake).
func (c *Comm) markDead(id int) {
	for c != nil {
		c.dead[id].Store(true)
		for _, b := range c.boxes {
			b.wake()
		}
		if c.parent == nil {
			return
		}
		id = c.parentOf[id]
		c = c.parent
	}
}

// closeAll closes every mailbox of this communicator and, recursively, of
// every shrunken sub-communicator, so an abort unwinds ranks blocked at
// any communicator level.
func (c *Comm) closeAll() {
	for _, b := range c.boxes {
		b.close()
	}
	c.childMu.Lock()
	kids := make([]*Comm, 0, len(c.children))
	for _, k := range c.children {
		kids = append(kids, k)
	}
	c.childMu.Unlock()
	for _, k := range kids {
		k.closeAll()
	}
}

// faultTotals sums the fault-plane counters over this communicator and
// all shrunken sub-communicators.
func (c *Comm) faultTotals() (crcDetected, retransmits int64) {
	crcDetected = c.crcDetected.Load()
	retransmits = c.retransmits.Load()
	c.childMu.Lock()
	kids := make([]*Comm, 0, len(c.children))
	for _, k := range c.children {
		kids = append(kids, k)
	}
	c.childMu.Unlock()
	for _, k := range kids {
		a, b := k.faultTotals()
		crcDetected += a
		retransmits += b
	}
	return crcDetected, retransmits
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// hops returns the switch-hop distance between two ranks: Manhattan
// distance on the processor grid when one is declared, else 1.
func (c *Comm) hops(src, dst int) int {
	if !c.hasGrid || src == dst {
		return 1
	}
	a, b := c.coordsOf(src), c.coordsOf(dst)
	h := 0
	for d := 0; d < 3; d++ {
		diff := a[d] - b[d]
		if diff < 0 {
			diff = -diff
		}
		if c.periodic[d] && c.grid[d]-diff < diff {
			diff = c.grid[d] - diff
		}
		h += diff
	}
	if h < 1 {
		h = 1
	}
	return h
}

func (c *Comm) coordsOf(rank int) [3]int {
	nx, ny := c.grid[0], c.grid[1]
	return [3]int{rank % nx, (rank / nx) % ny, rank / (nx * ny)}
}

func (c *Comm) rankOf(coords [3]int) int {
	return coords[0] + c.grid[0]*(coords[1]+c.grid[1]*coords[2])
}

// Stats is the result of a completed Run: one profile and final virtual
// time per rank, plus overall host wall time.
type Stats struct {
	Size         int
	Wall         float64    // host wall seconds for the whole run
	VirtualTimes []float64  // final netmodel clock per rank
	Profiles     []*Profile // per-rank MPI profiles, indexed by rank

	// OverlapHidden is the modeled communication time each rank hid
	// behind compute via split-phase exchanges (see
	// netmodel.Clock.AccountOverlap). Zero when overlap is not used.
	OverlapHidden []float64

	// Killed lists the world ranks that died via Rank.Kill, ascending.
	// A killed rank does not abort the run; its survivors' results are
	// still valid.
	Killed []int
	// CRCDetected counts receive-side CRC rejections (each followed by a
	// successful retransmission) across the run, including shrunken
	// sub-communicators. With a fault plane installed this equals the
	// corruptions that were actually received — zero silent corruption.
	CRCDetected int64
	// Retransmits counts messages the fault plane dropped or corrupted,
	// each of which cost one modeled retransmission timeout.
	Retransmits int64
}

// TotalOverlapHidden sums the modeled communication seconds hidden
// behind compute across all ranks.
func (s *Stats) TotalOverlapHidden() float64 {
	sum := 0.0
	for _, h := range s.OverlapHidden {
		sum += h
	}
	return sum
}

// MaxVirtualTime returns the slowest rank's modeled completion time, the
// modeled makespan of the run.
func (s *Stats) MaxVirtualTime() float64 {
	max := 0.0
	for _, t := range s.VirtualTimes {
		if t > max {
			max = t
		}
	}
	return max
}

// newComm builds a world communicator from Options. It is shared by Run
// (in-process, all ranks local) and RunDistributed (some ranks remote).
func newComm(size int, opts Options) (*Comm, error) {
	model := opts.Model
	if model.Name == "" {
		model = netmodel.Loopback
	}
	c := &Comm{size: size, model: model, tracer: opts.Tracer}
	c.root = c
	c.faults = opts.Faults
	c.crc = opts.CRC || opts.Faults != nil
	c.dead = make([]atomic.Bool, size)
	if topo := model.Topo; topo != nil && topo.Ranks() < size {
		return nil, fmt.Errorf("comm: topology %s hosts %d ranks, need %d", topo.Name(), topo.Ranks(), size)
	}
	c.hier = opts.Hierarchy
	if c.hier == nil && model.Topo != nil && opts.Collectives == CollHier {
		h, err := NewHierarchy(model.Topo.NodeMap()[:size])
		if err != nil {
			return nil, err
		}
		c.hier = h
	}
	if c.hier != nil && c.hier.size() != size {
		return nil, fmt.Errorf("comm: hierarchy maps %d ranks, communicator has %d", c.hier.size(), size)
	}
	if opts.Collectives == CollHier {
		if c.hier == nil {
			return nil, fmt.Errorf("comm: Collectives=CollHier needs a Hierarchy or a topology model")
		}
		c.collMethod.Store(int32(CollHier))
	}
	c.rabMinLen = resolveRabMinLen(opts.RabenseifnerMinLen)
	c.flatFlows = 1
	if c.hier != nil {
		c.flatFlows = c.hier.MaxRanksPerNode()
	} else if model.Topo != nil {
		c.flatFlows = model.Topo.RanksPerNode()
	}
	if opts.Grid != [3]int{} {
		if opts.Grid[0]*opts.Grid[1]*opts.Grid[2] != size {
			return nil, fmt.Errorf("comm: grid %v does not tile %d ranks", opts.Grid, size)
		}
		c.grid = opts.Grid
		c.periodic = opts.Periodic
		c.hasGrid = true
	}
	c.boxes = make([]*mailbox, size)
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
	}
	return c, nil
}

// runRanks spawns one goroutine per rank in locals, each executing fn,
// and waits for all of them — the shared execution core of Run and
// RunDistributed. The first error (or recovered panic) aborts the run:
// all mailboxes are closed so blocked ranks unwind promptly. Ranks not in
// locals are hosted elsewhere; their Stats entries stay zero (with empty
// profiles, so aggregations need no nil checks).
func runRanks(c *Comm, opts Options, locals []int, fn func(*Rank) error) (*Stats, error) {
	size := c.size
	stats := &Stats{
		Size:          size,
		VirtualTimes:  make([]float64, size),
		Profiles:      make([]*Profile, size),
		OverlapHidden: make([]float64, size),
	}
	for id := 0; id < size; id++ {
		stats.Profiles[id] = newProfile(id)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	var abortOnce sync.Once
	abort := func() {
		abortOnce.Do(c.closeAll)
	}
	var killedMu sync.Mutex

	start := time.Now()
	for _, id := range locals {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{
				comm:  c,
				id:    id,
				clock: netmodel.NewClock(c.model),
				prof:  newProfile(id),
			}
			if opts.ComputeFactors != nil && id < len(opts.ComputeFactors) {
				r.clock.SetComputeFactor(opts.ComputeFactors[id])
			}
			defer func() {
				if p := recover(); p != nil {
					switch v := p.(type) {
					case killPanic:
						// An injected crash, not a failure: record the
						// death and let the survivors run on.
						killedMu.Lock()
						stats.Killed = append(stats.Killed, v.world)
						killedMu.Unlock()
					case error:
						if p == errAborted {
							errs[id] = fmt.Errorf("comm: rank %d aborted: %w", id, errAborted)
						} else {
							errs[id] = fmt.Errorf("comm: rank %d panicked: %w", id, v)
						}
						abort()
					default:
						errs[id] = fmt.Errorf("comm: rank %d panicked: %v", id, p)
						abort()
					}
				}
				r.prof.appWall = time.Since(start).Seconds()
				stats.VirtualTimes[id] = r.clock.Now()
				stats.OverlapHidden[id] = r.clock.OverlapHiddenSeconds()
				stats.Profiles[id] = r.prof
			}()
			if err := fn(r); err != nil {
				errs[id] = err
				abort()
			}
		}(id)
	}
	wg.Wait()
	stats.Wall = time.Since(start).Seconds()
	sort.Ints(stats.Killed)
	stats.CRCDetected, stats.Retransmits = c.faultTotals()
	// Report the root cause: a rank's own error or panic, not the
	// secondary "aborted" unwinds it triggered in its peers.
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errAborted) {
			aborted = err
			continue
		}
		return nil, err
	}
	if aborted != nil {
		return nil, aborted
	}
	return stats, nil
}

// Run spawns size ranks, each executing fn concurrently, and waits for all
// of them. The first error (or recovered panic) aborts the run: all
// mailboxes are closed so blocked ranks unwind promptly. On success the
// returned Stats carries every rank's MPI profile and virtual clock.
func Run(size int, opts Options, fn func(*Rank) error) (*Stats, error) {
	if size < 1 {
		return nil, fmt.Errorf("comm: size must be >= 1, got %d", size)
	}
	c, err := newComm(size, opts)
	if err != nil {
		return nil, err
	}
	locals := make([]int, size)
	for i := range locals {
		locals[i] = i
	}
	return runRanks(c, opts, locals, fn)
}

// RunSimple is Run with the loopback network model and no grid. It is the
// form most tests use.
func RunSimple(size int, fn func(*Rank) error) (*Stats, error) {
	return Run(size, Options{}, fn)
}
