package comm

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// ReduceOp selects the combining operation of a reduction.
type ReduceOp int

// Reduction operations.
const (
	OpSum ReduceOp = iota
	OpProd
	OpMin
	OpMax
)

// String implements fmt.Stringer.
func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

// combine folds src into dst element-wise.
func (op ReduceOp) combine(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("comm: reduce length mismatch %d vs %d", len(dst), len(src)))
	}
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpProd:
		for i, v := range src {
			dst[i] *= v
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
}

func (op ReduceOp) combineInts(dst, src []int64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("comm: reduce length mismatch %d vs %d", len(dst), len(src)))
	}
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpProd:
		for i, v := range src {
			dst[i] *= v
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
}

// Collective messages use a reserved tag space far above application tags,
// so user point-to-point traffic can never match collective rounds.
const collTagBase = 1 << 24

// raw point-to-point helpers used inside collectives: they move data and
// advance the virtual clock but record no profile entries, so a collective
// shows up as a single MPI call the way mpiP reports it. Like deliver,
// sendRaw copies payloads, so collectives may keep mutating their working
// buffers after each round's send.

func (r *Rank) sendRaw(dst, tag int, data []float64, ints []int64) int64 {
	return r.deliver(dst, tag, data, ints)
}

// recvRaw blocks for a collective round's message with fail-fast death
// semantics: if ANY member of the communicator dies while this rank is
// blocked — not just the partner it is receiving from — the wait unwinds
// with a typed DeadRankError instead of hanging on a contribution that
// can never be forwarded. Queued messages (including the retransmission
// after a rejected CRC frame) are always drained first, so a member that
// finished its part of the collective before dying cannot abort it. The
// blocking collectives surface the error as a panicked DeadRankError,
// like every blocking receive; BarrierErr/AllreduceErr return it.
func (r *Rank) recvRaw(src, tag int) *message {
	return r.recvRawColl(src, tag, nil)
}

// recvRawColl is recvRaw scoped to a member subset (a split Group):
// only the death of a participant fails the collective, never that of
// an unrelated world rank.
func (r *Rank) recvRawColl(src, tag int, members []int) *message {
	for {
		m, err := r.comm.boxes[r.id].takeCollective(src, tag, r.comm, members)
		if err != nil {
			panic(err)
		}
		if r.frameOK(m) {
			r.clock.WaitUntil(m.arrival)
			return m
		}
	}
}

// freeRaw recycles a raw message whose payload has been fully consumed
// (combined or copied out). Collectives that hand a message's payload to
// the caller — Bcast, Scatter, the alltoalls — must NOT free it.
func (r *Rank) freeRaw(m *message) { r.comm.putMessage(m) }

// collRegion is an open profiled collective region. It is a value (not
// a returned closure) so opening one costs no heap allocation — the
// collectives sit on the gs hot path where per-call allocations are
// banned.
type collRegion struct {
	r     *Rank
	op    string
	start time.Time
	v0    float64
}

// collStart opens a profiled collective region; call done with the
// bytes sent to record (wall, modeled, bytes). It also declares the
// rank's sender concurrency to topology congestion pricing: inside a
// flat collective every rank of a node injects into the fabric at once
// (flatFlows); hierarchical algorithms overwrite this with 1 on entry
// (only the leader injects per inter-node round). done resets the
// declaration, so point-to-point traffic outside collectives is priced
// as a lone flow.
func (r *Rank) collStart(op string) collRegion {
	r.flows = r.comm.flatFlows
	return collRegion{r: r, op: op, start: time.Now(), v0: r.clock.Now()}
}

func (c collRegion) done(bytes int64) {
	c.r.flows = 0
	c.r.prof.record(c.op, time.Since(c.start).Seconds(), c.r.clock.Now()-c.v0, bytes)
}

// Barrier blocks until every rank has entered it. The flat path is a
// dissemination barrier (ceil(log2 P) rounds); with hierarchical
// collectives selected, ranks gather on their node leader, the leaders
// disseminate, and the release fans back out within each node.
func (r *Rank) Barrier() {
	coll := r.collStart("MPI_Barrier")
	var bytes int64
	if r.hierOn() {
		bytes = r.barrierHier()
	} else {
		bytes = r.barrierRaw()
	}
	coll.done(bytes)
}

// barrierRaw is the flat dissemination barrier.
func (r *Rank) barrierRaw() int64 {
	p, id := r.comm.size, r.id
	tag := collTagBase + 0
	var bytes int64
	for k := 1; k < p; k <<= 1 {
		bytes += r.sendRaw((id+k)%p, tag, nil, nil)
		r.freeRaw(r.recvRaw((id-k%p+p)%p, tag))
	}
	return bytes
}

// catchDead converts a panicked DeadRankError into a returned error;
// any other panic propagates. It backs the *Err collective variants.
func catchDead(err *error) {
	if p := recover(); p != nil {
		if d, ok := p.(DeadRankError); ok {
			*err = d
			return
		}
		panic(p)
	}
}

// BarrierErr is Barrier returning a typed error: if any member of the
// communicator dies while this rank is inside the barrier, it returns
// the DeadRankError instead of unwinding the goroutine — the form
// recovery protocols use to observe a failure and move to Shrink.
func (r *Rank) BarrierErr() (err error) {
	defer catchDead(&err)
	r.Barrier()
	return nil
}

// AllreduceErr is Allreduce returning a typed error on member death;
// data is garbage when err is non-nil.
func (r *Rank) AllreduceErr(op ReduceOp, data []float64) (out []float64, err error) {
	defer catchDead(&err)
	return r.Allreduce(op, data), nil
}

// Bcast broadcasts data from root using a binomial tree (two-level
// node-leader trees with hierarchical collectives selected; broadcast
// moves bytes without combining, so either path yields identical
// results). Non-root ranks pass nil and receive the broadcast value;
// root gets its own slice back.
func (r *Rank) Bcast(root int, data []float64) []float64 {
	coll := r.collStart("MPI_Bcast")
	var (
		d     []float64
		bytes int64
	)
	if r.hierOn() {
		d, _, bytes = r.bcastHier(root, data, nil)
	} else {
		d, _, bytes = r.bcastRaw(root, data, nil)
	}
	coll.done(bytes)
	return d
}

// BcastInts is Bcast for int64 payloads.
func (r *Rank) BcastInts(root int, ints []int64) []int64 {
	coll := r.collStart("MPI_Bcast")
	var (
		is    []int64
		bytes int64
	)
	if r.hierOn() {
		_, is, bytes = r.bcastHier(root, nil, ints)
	} else {
		_, is, bytes = r.bcastRaw(root, nil, ints)
	}
	coll.done(bytes)
	return is
}

func (r *Rank) bcastRaw(root int, data []float64, ints []int64) ([]float64, []int64, int64) {
	p, id := r.comm.size, r.id
	vr := (id - root + p) % p
	tag := collTagBase + 1
	var bytes int64
	// Binomial tree (MPICH shape): receive from the parent identified by
	// the lowest set bit of vr, then forward to children at successively
	// lower bits.
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := (id - mask + p) % p
			m := r.recvRaw(parent, tag)
			data, ints = m.data, m.ints
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < p {
			bytes += r.sendRaw((id+mask)%p, tag, data, ints)
		}
	}
	return data, ints, bytes
}

// Reduce combines data from all ranks onto root using a binomial tree.
// On root the input slice is updated in place with the reduction and also
// returned; on other ranks the contents of data are consumed (mutated as
// scratch) and the return value is nil.
func (r *Rank) Reduce(op ReduceOp, root int, data []float64) []float64 {
	coll := r.collStart("MPI_Reduce")
	// The hierarchical path requires a node-leader root; rank 0 (the only
	// root the mini-app reduces onto) is always the leader of its node.
	if r.hierOn() && root == 0 {
		out, bytes := r.reduceHier(op, root, data)
		coll.done(bytes)
		return out
	}
	p, id := r.comm.size, r.id
	vr := (id - root + p) % p
	tag := collTagBase + 2
	var bytes int64
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			bytes += r.sendRaw((vr-mask+root)%p, tag, data, nil)
			coll.done(bytes)
			return nil
		}
		if vr+mask < p {
			m := r.recvRaw((vr+mask+root)%p, tag)
			op.combine(data, m.data)
			r.freeRaw(m)
		}
	}
	coll.done(bytes)
	return data
}

// rabenseifnerMinLenDefault is the default vector length above which
// Allreduce switches from recursive doubling (latency-optimal, log2 P
// messages of the full vector) to the Rabenseifner algorithm
// (bandwidth-optimal: reduce-scatter then allgather, moving ~2x the
// vector total instead of log2(P)x) — the size-based algorithm switch
// real MPI libraries make. Tune per machine with
// Options.RabenseifnerMinLen or the CMT_RABENSEIFNER_MINLEN environment
// variable.
const rabenseifnerMinLenDefault = 4096

// resolveRabMinLen applies the Options > environment > default
// precedence for the algorithm-switch length.
func resolveRabMinLen(opt int) int {
	if opt > 0 {
		return opt
	}
	if s := os.Getenv("CMT_RABENSEIFNER_MINLEN"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return rabenseifnerMinLenDefault
}

// Allreduce combines data across all ranks and leaves the result on every
// rank, updating data in place and returning it. Small vectors use
// recursive doubling — two-level node-leader recursive doubling when the
// hierarchical method is selected, which cuts the per-node fabric
// injection from one flow per rank to one per node. Large vectors use the
// flat Rabenseifner reduce-scatter/allgather algorithm regardless: it is
// bandwidth-optimal, and the hierarchical small-vector path would move
// the full vector log2(nodes) times.
func (r *Rank) Allreduce(op ReduceOp, data []float64) []float64 {
	coll := r.collStart("MPI_Allreduce")
	var bytes int64
	switch {
	case len(data) >= r.comm.rabMinLen && r.comm.size > 2:
		bytes = r.allreduceRabenseifner(op, data)
	case r.hierOn():
		bytes = r.allreduceHier(op, data, nil)
	default:
		bytes = r.allreduceRaw(op, data, nil)
	}
	coll.done(bytes)
	return data
}

// allreduceRabenseifner: fold to a power of two, recursive-halving
// reduce-scatter (each round exchanges half the remaining vector), then
// recursive-doubling allgather, then unfold.
func (r *Rank) allreduceRabenseifner(op ReduceOp, data []float64) int64 {
	p, id := r.comm.size, r.id
	tag := collTagBase + 11
	var bytes int64

	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2
	// Fold: high ranks park their data on their low partner.
	if id >= p2 {
		bytes += r.sendRaw(id-p2, tag, data, nil)
		m := r.recvRaw(id-p2, tag)
		copy(data, m.data)
		r.freeRaw(m)
		return bytes
	}
	if id < rem {
		m := r.recvRaw(id+p2, tag)
		op.combine(data, m.data)
		r.freeRaw(m)
	}

	n := len(data)
	// Reduce-scatter by recursive halving: after round k, this rank is
	// responsible for a 1/2^k slice that holds fully reduced values. The
	// parent interval of each split is recorded so the allgather phase
	// reconstructs exactly, even for odd slice lengths. Partners at each
	// round share the same interval history (they differ only in the
	// current mask bit), so their split points agree.
	type span struct{ lo, hi int }
	lo, hi := 0, n
	var parentsArr [64]span // log2(P) deep; stack storage, no per-call alloc
	parents := parentsArr[:0]
	for mask := p2 >> 1; mask >= 1; mask >>= 1 {
		partner := id ^ mask
		parents = append(parents, span{lo, hi})
		mid := lo + (hi-lo)/2
		var sendLo, sendHi, keepLo, keepHi int
		if id&mask == 0 {
			// Keep the lower half, send the upper.
			sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
		} else {
			sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
		}
		bytes += r.sendRaw(partner, tag, data[sendLo:sendHi], nil)
		m := r.recvRaw(partner, tag)
		op.combine(data[keepLo:keepHi], m.data)
		r.freeRaw(m)
		lo, hi = keepLo, keepHi
	}
	// Allgather by recursive doubling, unwinding the recorded splits.
	for mask := 1; mask < p2; mask <<= 1 {
		partner := id ^ mask
		parent := parents[len(parents)-1]
		parents = parents[:len(parents)-1]
		bytes += r.sendRaw(partner, tag, data[lo:hi], nil)
		m := r.recvRaw(partner, tag)
		if lo == parent.lo {
			copy(data[hi:parent.hi], m.data)
		} else {
			copy(data[parent.lo:lo], m.data)
		}
		r.freeRaw(m)
		lo, hi = parent.lo, parent.hi
	}
	// Unfold.
	if id < rem {
		bytes += r.sendRaw(id+p2, tag, data, nil)
	}
	return bytes
}

// AllreduceInts is Allreduce for int64 payloads. Integer reductions are
// exact under any combine order, so the hierarchical path applies
// whenever selected, regardless of layout.
func (r *Rank) AllreduceInts(op ReduceOp, ints []int64) []int64 {
	coll := r.collStart("MPI_Allreduce")
	var bytes int64
	if r.hierOn() {
		bytes = r.allreduceHier(op, nil, ints)
	} else {
		bytes = r.allreduceRaw(op, nil, ints)
	}
	coll.done(bytes)
	return ints
}

// combineFrom folds a received message into the local buffers and
// recycles it.
func (r *Rank) combineFrom(op ReduceOp, data []float64, ints []int64, m *message) {
	if data != nil {
		op.combine(data, m.data)
	}
	if ints != nil {
		op.combineInts(ints, m.ints)
	}
	r.freeRaw(m)
}

func (r *Rank) allreduceRaw(op ReduceOp, data []float64, ints []int64) int64 {
	p, id := r.comm.size, r.id
	tag := collTagBase + 3
	var bytes int64
	// Fold ranks beyond the largest power of two into the lower block.
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2
	if id >= p2 {
		bytes += r.sendRaw(id-p2, tag, data, ints)
		m := r.recvRaw(id-p2, tag)
		if data != nil {
			copy(data, m.data)
		}
		if ints != nil {
			copy(ints, m.ints)
		}
		r.freeRaw(m)
		return bytes
	}
	if id < rem {
		m := r.recvRaw(id+p2, tag)
		r.combineFrom(op, data, ints, m)
	}
	// Recursive doubling among the power-of-two block.
	for mask := 1; mask < p2; mask <<= 1 {
		partner := id ^ mask
		bytes += r.sendRaw(partner, tag, data, ints)
		r.combineFrom(op, data, ints, r.recvRaw(partner, tag))
	}
	if id < rem {
		bytes += r.sendRaw(id+p2, tag, data, ints)
	}
	return bytes
}

// Gather collects fixed-size contributions onto root, concatenated in
// rank order. Non-root ranks receive nil.
func (r *Rank) Gather(root int, data []float64) []float64 {
	coll := r.collStart("MPI_Gather")
	p, id := r.comm.size, r.id
	tag := collTagBase + 4
	if id != root {
		bytes := r.sendRaw(root, tag, data, nil)
		coll.done(bytes)
		return nil
	}
	out := make([]float64, len(data)*p)
	copy(out[id*len(data):], data)
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		m := r.recvRaw(src, tag)
		copy(out[src*len(data):], m.data)
	}
	coll.done(0)
	return out
}

// Scatter distributes consecutive equal chunks of send (significant only
// on root) to every rank and returns this rank's chunk of length n.
func (r *Rank) Scatter(root int, send []float64, n int) []float64 {
	coll := r.collStart("MPI_Scatter")
	p, id := r.comm.size, r.id
	tag := collTagBase + 5
	if id == root {
		if len(send) != n*p {
			panic(fmt.Sprintf("comm: scatter needs %d values, got %d", n*p, len(send)))
		}
		var bytes int64
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			chunk := make([]float64, n)
			copy(chunk, send[dst*n:(dst+1)*n])
			bytes += r.sendRaw(dst, tag, chunk, nil)
		}
		out := make([]float64, n)
		copy(out, send[id*n:(id+1)*n])
		coll.done(bytes)
		return out
	}
	m := r.recvRaw(root, tag)
	coll.done(0)
	return m.data
}

// Allgather concatenates each rank's fixed-size contribution in rank
// order on every rank (ring algorithm, P-1 steps).
func (r *Rank) Allgather(data []float64) []float64 {
	coll := r.collStart("MPI_Allgather")
	p, id := r.comm.size, r.id
	n := len(data)
	tag := collTagBase + 6
	out := make([]float64, n*p)
	copy(out[id*n:], data)
	var bytes int64
	right, left := (id+1)%p, (id-1+p)%p
	cur := id
	for step := 0; step < p-1; step++ {
		chunk := make([]float64, n)
		copy(chunk, out[cur*n:(cur+1)*n])
		bytes += r.sendRaw(right, tag, chunk, nil)
		m := r.recvRaw(left, tag)
		cur = (cur - 1 + p) % p
		copy(out[cur*n:], m.data)
	}
	coll.done(bytes)
	return out
}

// AllgatherInts is Allgather for one int64 per rank, the form the
// gather-scatter setup uses to learn global sizes.
func (r *Rank) AllgatherInts(v int64) []int64 {
	coll := r.collStart("MPI_Allgather")
	p, id := r.comm.size, r.id
	tag := collTagBase + 7
	out := make([]int64, p)
	out[id] = v
	var bytes int64
	right, left := (id+1)%p, (id-1+p)%p
	cur := id
	for step := 0; step < p-1; step++ {
		bytes += r.sendRaw(right, tag, nil, []int64{out[cur]})
		m := r.recvRaw(left, tag)
		cur = (cur - 1 + p) % p
		out[cur] = m.ints[0]
	}
	coll.done(bytes)
	return out
}

// Alltoall exchanges fixed-size chunks: chunk i of send goes to rank i,
// and the result holds one chunk from every rank, in rank order. This is
// the generalized all-to-all the gather-scatter discovery phase uses.
func (r *Rank) Alltoall(send []float64, n int) []float64 {
	coll := r.collStart("MPI_Alltoall")
	p, id := r.comm.size, r.id
	if len(send) != n*p {
		panic(fmt.Sprintf("comm: alltoall needs %d values, got %d", n*p, len(send)))
	}
	tag := collTagBase + 8
	out := make([]float64, n*p)
	copy(out[id*n:], send[id*n:(id+1)*n])
	var bytes int64
	for step := 1; step < p; step++ {
		dst := (id + step) % p
		src := (id - step + p) % p
		chunk := make([]float64, n)
		copy(chunk, send[dst*n:(dst+1)*n])
		bytes += r.sendRaw(dst, tag, chunk, nil)
		m := r.recvRaw(src, tag)
		copy(out[src*n:], m.data)
	}
	coll.done(bytes)
	return out
}

// Alltoallv exchanges variable-size int64 chunks; sendCounts[i] values go
// to rank i. It returns the received values concatenated in rank order
// along with the per-source counts.
func (r *Rank) AlltoallvInts(send []int64, sendCounts []int) (recv []int64, recvCounts []int) {
	coll := r.collStart("MPI_Alltoallv")
	p, id := r.comm.size, r.id
	if len(sendCounts) != p {
		panic(fmt.Sprintf("comm: alltoallv needs %d counts, got %d", p, len(sendCounts)))
	}
	offs := make([]int, p+1)
	for i, c := range sendCounts {
		offs[i+1] = offs[i] + c
	}
	if offs[p] != len(send) {
		panic(fmt.Sprintf("comm: alltoallv counts sum %d != payload %d", offs[p], len(send)))
	}
	tag := collTagBase + 9
	chunks := make([][]int64, p)
	chunks[id] = send[offs[id]:offs[id+1]]
	var bytes int64
	for step := 1; step < p; step++ {
		dst := (id + step) % p
		src := (id - step + p) % p
		chunk := make([]int64, sendCounts[dst])
		copy(chunk, send[offs[dst]:offs[dst+1]])
		bytes += r.sendRaw(dst, tag, nil, chunk)
		m := r.recvRaw(src, tag)
		chunks[src] = m.ints
	}
	recvCounts = make([]int, p)
	total := 0
	for i, c := range chunks {
		recvCounts[i] = len(c)
		total += len(c)
	}
	recv = make([]int64, 0, total)
	for _, c := range chunks {
		recv = append(recv, c...)
	}
	coll.done(bytes)
	return recv, recvCounts
}

// Alltoallv is AlltoallvInts for float64 payloads.
func (r *Rank) Alltoallv(send []float64, sendCounts []int) (recv []float64, recvCounts []int) {
	coll := r.collStart("MPI_Alltoallv")
	p, id := r.comm.size, r.id
	if len(sendCounts) != p {
		panic(fmt.Sprintf("comm: alltoallv needs %d counts, got %d", p, len(sendCounts)))
	}
	offs := make([]int, p+1)
	for i, c := range sendCounts {
		offs[i+1] = offs[i] + c
	}
	if offs[p] != len(send) {
		panic(fmt.Sprintf("comm: alltoallv counts sum %d != payload %d", offs[p], len(send)))
	}
	tag := collTagBase + 10
	chunks := make([][]float64, p)
	chunks[id] = send[offs[id]:offs[id+1]]
	var bytes int64
	for step := 1; step < p; step++ {
		dst := (id + step) % p
		src := (id - step + p) % p
		chunk := make([]float64, sendCounts[dst])
		copy(chunk, send[offs[dst]:offs[dst+1]])
		bytes += r.sendRaw(dst, tag, chunk, nil)
		m := r.recvRaw(src, tag)
		chunks[src] = m.data
	}
	recvCounts = make([]int, p)
	total := 0
	for i, c := range chunks {
		recvCounts[i] = len(c)
		total += len(c)
	}
	recv = make([]float64, 0, total)
	for _, c := range chunks {
		recv = append(recv, c...)
	}
	coll.done(bytes)
	return recv, recvCounts
}
