package comm

import (
	"testing"
)

func TestProfileRecordsCalls(t *testing.T) {
	stats, err := RunSimple(2, func(r *Rank) error {
		r.SetSite("exchange")
		if r.ID() == 0 {
			r.Send(1, 0, []float64{1, 2})
			r.Send(1, 0, []float64{1, 2, 3, 4})
		} else {
			r.Recv(0, 0)
			r.Recv(0, 0)
		}
		r.SetSite("")
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p0 := stats.Profiles[0]
	var send *CallStat
	for _, c := range p0.Calls() {
		if c.Op == "MPI_Send" && c.Site == "exchange" {
			send = c
		}
	}
	if send == nil {
		t.Fatal("no MPI_Send@exchange stat on rank 0")
	}
	if send.Count != 2 {
		t.Fatalf("send count = %d", send.Count)
	}
	if send.Bytes != 16+32 {
		t.Fatalf("send bytes = %d", send.Bytes)
	}
	if send.MinBytes != 16 || send.MaxBytes != 32 {
		t.Fatalf("min/max = %d/%d", send.MinBytes, send.MaxBytes)
	}
	if send.AvgBytes() != 24 {
		t.Fatalf("avg = %v", send.AvgBytes())
	}
	if send.Name() != "MPI_Send@exchange" {
		t.Fatalf("name = %q", send.Name())
	}
}

func TestProfileAggregation(t *testing.T) {
	stats, err := RunSimple(4, func(r *Rank) error {
		r.SetSite("phase1")
		r.Allreduce(OpSum, []float64{1})
		r.SetSite("phase2")
		r.Allreduce(OpSum, []float64{2})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sites := stats.AggregateSites()
	byName := map[string]SiteSummary{}
	for _, s := range sites {
		byName[s.Name()] = s
	}
	for _, name := range []string{"MPI_Allreduce@phase1", "MPI_Allreduce@phase2"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("missing aggregate %q (have %v)", name, byName)
		}
		if s.Count != 4 {
			t.Fatalf("%s count = %d, want 4 (one per rank)", name, s.Count)
		}
	}
}

func TestRankMPIFractions(t *testing.T) {
	stats, err := RunSimple(3, func(r *Rank) error {
		r.Barrier()
		r.Allreduce(OpMax, []float64{float64(r.ID())})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fr := stats.RankMPIFractions()
	if len(fr) != 3 {
		t.Fatalf("fractions for %d ranks", len(fr))
	}
	for _, f := range fr {
		if f.AppWall <= 0 {
			t.Errorf("rank %d app wall %v", f.Rank, f.AppWall)
		}
		if f.FracWall() < 0 || f.FracWall() > 1 {
			t.Errorf("rank %d wall fraction %v outside [0,1]", f.Rank, f.FracWall())
		}
		if f.MPIModeled <= 0 {
			t.Errorf("rank %d modeled MPI time %v", f.Rank, f.MPIModeled)
		}
	}
}

func TestTotalsConsistent(t *testing.T) {
	stats, err := RunSimple(2, func(r *Rank) error {
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range stats.Profiles {
		sum += p.MPIWall()
	}
	if got := stats.TotalMPIWall(); got != sum {
		t.Fatalf("TotalMPIWall = %v, want %v", got, sum)
	}
	if stats.TotalAppWall() <= 0 {
		t.Fatal("TotalAppWall must be positive")
	}
}

func TestWaitChargedToMPIWait(t *testing.T) {
	stats, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 0 {
			req := r.Irecv(1, 0)
			req.Wait()
		} else {
			r.Send(0, 0, make([]float64, 4096))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range stats.Profiles[0].Calls() {
		if c.Op == "MPI_Wait" {
			found = true
			if c.Bytes != 4096*8 {
				t.Errorf("MPI_Wait bytes = %d", c.Bytes)
			}
			if c.Modeled <= 0 {
				t.Errorf("MPI_Wait modeled time = %v, want > 0", c.Modeled)
			}
		}
	}
	if !found {
		t.Fatal("no MPI_Wait entry recorded")
	}
}
