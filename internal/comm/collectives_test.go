package comm

import (
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// testSizes covers 1 rank, powers of two, and awkward non-powers.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range testSizes {
		var before, after int64
		_, err := RunSimple(p, func(r *Rank) error {
			atomic.AddInt64(&before, 1)
			r.Barrier()
			// Every rank must observe all arrivals once past the barrier.
			if got := atomic.LoadInt64(&before); got != int64(p) {
				t.Errorf("p=%d rank %d passed barrier with only %d arrivals", p, r.ID(), got)
			}
			atomic.AddInt64(&after, 1)
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if after != int64(p) {
			t.Fatalf("p=%d: %d ranks finished", p, after)
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root++ {
			payload := []float64{float64(root) + 0.5, 42}
			_, err := RunSimple(p, func(r *Rank) error {
				var in []float64
				if r.ID() == root {
					in = payload
				}
				got := r.Bcast(root, in)
				if !reflect.DeepEqual(got, payload) {
					t.Errorf("p=%d root=%d rank=%d got %v", p, root, r.ID(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestBcastInts(t *testing.T) {
	_, err := RunSimple(5, func(r *Rank) error {
		var in []int64
		if r.ID() == 3 {
			in = []int64{-1, 2, 3}
		}
		got := r.BcastInts(3, in)
		if !reflect.DeepEqual(got, []int64{-1, 2, 3}) {
			t.Errorf("rank %d got %v", r.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root += max(1, p/3) {
			_, err := RunSimple(p, func(r *Rank) error {
				data := []float64{float64(r.ID()), 1}
				got := r.Reduce(OpSum, root, data)
				if r.ID() == root {
					wantSum := float64(p*(p-1)) / 2
					if got[0] != wantSum || got[1] != float64(p) {
						t.Errorf("p=%d root=%d reduce got %v", p, root, got)
					}
				} else if got != nil {
					t.Errorf("non-root got non-nil %v", got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
		}
	}
}

func TestAllreduceOps(t *testing.T) {
	for _, p := range testSizes {
		_, err := RunSimple(p, func(r *Rank) error {
			id := float64(r.ID())
			sum := r.Allreduce(OpSum, []float64{id})
			if sum[0] != float64(p*(p-1))/2 {
				t.Errorf("p=%d sum got %v", p, sum[0])
			}
			min := r.Allreduce(OpMin, []float64{id})
			if min[0] != 0 {
				t.Errorf("p=%d min got %v", p, min[0])
			}
			max := r.Allreduce(OpMax, []float64{id})
			if max[0] != float64(p-1) {
				t.Errorf("p=%d max got %v", p, max[0])
			}
			prod := r.Allreduce(OpProd, []float64{2})
			if prod[0] != math.Pow(2, float64(p)) {
				t.Errorf("p=%d prod got %v", p, prod[0])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceInts(t *testing.T) {
	for _, p := range testSizes {
		_, err := RunSimple(p, func(r *Rank) error {
			got := r.AllreduceInts(OpMax, []int64{int64(r.ID()), -int64(r.ID())})
			if got[0] != int64(p-1) || got[1] != 0 {
				t.Errorf("p=%d got %v", p, got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceMatchesSerialProperty(t *testing.T) {
	// Property: Allreduce(sum) over random vectors equals the serial sum,
	// within floating-point reassociation tolerance.
	f := func(seed int64, rawP uint8) bool {
		p := int(rawP)%6 + 2
		n := 17
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float64, p)
		want := make([]float64, n)
		for i := range inputs {
			inputs[i] = make([]float64, n)
			for j := range inputs[i] {
				inputs[i][j] = rng.NormFloat64()
				want[j] += inputs[i][j]
			}
		}
		ok := true
		_, err := RunSimple(p, func(r *Rank) error {
			buf := append([]float64(nil), inputs[r.ID()]...)
			got := r.Allreduce(OpSum, buf)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterInverse(t *testing.T) {
	const p, n = 6, 3
	_, err := RunSimple(p, func(r *Rank) error {
		mine := make([]float64, n)
		for i := range mine {
			mine[i] = float64(r.ID()*100 + i)
		}
		all := r.Gather(2, mine)
		if r.ID() == 2 {
			if len(all) != p*n {
				t.Errorf("gather len %d", len(all))
			}
			for rank := 0; rank < p; rank++ {
				for i := 0; i < n; i++ {
					if all[rank*n+i] != float64(rank*100+i) {
						t.Errorf("gather[%d][%d] = %v", rank, i, all[rank*n+i])
					}
				}
			}
		}
		// Scatter the gathered vector back: every rank must get its own
		// contribution again.
		back := r.Scatter(2, all, n)
		if !reflect.DeepEqual(back, mine) {
			t.Errorf("rank %d scatter got %v want %v", r.ID(), back, mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range testSizes {
		_, err := RunSimple(p, func(r *Rank) error {
			got := r.Allgather([]float64{float64(r.ID()), float64(-r.ID())})
			if len(got) != 2*p {
				t.Errorf("p=%d len %d", p, len(got))
				return nil
			}
			for rank := 0; rank < p; rank++ {
				if got[2*rank] != float64(rank) || got[2*rank+1] != float64(-rank) {
					t.Errorf("p=%d slot %d = %v,%v", p, rank, got[2*rank], got[2*rank+1])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllgatherInts(t *testing.T) {
	_, err := RunSimple(7, func(r *Rank) error {
		got := r.AllgatherInts(int64(r.ID() * r.ID()))
		for rank := range got {
			if got[rank] != int64(rank*rank) {
				t.Errorf("slot %d = %d", rank, got[rank])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallTransposes(t *testing.T) {
	for _, p := range testSizes {
		_, err := RunSimple(p, func(r *Rank) error {
			// send[dst] = 1000*me + dst, so recv[src] must be 1000*src + me.
			send := make([]float64, p)
			for dst := range send {
				send[dst] = float64(1000*r.ID() + dst)
			}
			got := r.Alltoall(send, 1)
			for src := range got {
				if got[src] != float64(1000*src+r.ID()) {
					t.Errorf("p=%d recv[%d] = %v", p, src, got[src])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoallvInts(t *testing.T) {
	const p = 4
	_, err := RunSimple(p, func(r *Rank) error {
		// Rank i sends (i+dst) copies of value i*10+dst to dst.
		var send []int64
		counts := make([]int, p)
		for dst := 0; dst < p; dst++ {
			counts[dst] = r.ID() + dst
			for k := 0; k < counts[dst]; k++ {
				send = append(send, int64(r.ID()*10+dst))
			}
		}
		recv, rc := r.AlltoallvInts(send, counts)
		off := 0
		for src := 0; src < p; src++ {
			wantCount := src + r.ID()
			if rc[src] != wantCount {
				t.Errorf("rank %d: recvCounts[%d] = %d, want %d", r.ID(), src, rc[src], wantCount)
			}
			for k := 0; k < rc[src]; k++ {
				if recv[off+k] != int64(src*10+r.ID()) {
					t.Errorf("rank %d: bad value from %d: %d", r.ID(), src, recv[off+k])
				}
			}
			off += rc[src]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvFloats(t *testing.T) {
	const p = 3
	_, err := RunSimple(p, func(r *Rank) error {
		counts := []int{1, 2, 3}
		send := []float64{
			float64(r.ID()),
			float64(r.ID()) + 0.1, float64(r.ID()) + 0.2,
			float64(r.ID()) + 0.3, float64(r.ID()) + 0.4, float64(r.ID()) + 0.5,
		}
		recv, rc := r.Alltoallv(send, counts)
		wantTotal := 0
		for src := 0; src < p; src++ {
			wantTotal += r.ID() + 1
			if rc[src] != r.ID()+1 {
				t.Errorf("rank %d rc[%d]=%d", r.ID(), src, rc[src])
			}
		}
		if len(recv) != wantTotal {
			t.Errorf("rank %d got %d values, want %d", r.ID(), len(recv), wantTotal)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveSequences(t *testing.T) {
	// Back-to-back collectives of the same kind must not cross-match.
	_, err := RunSimple(6, func(r *Rank) error {
		for iter := 0; iter < 20; iter++ {
			v := r.Allreduce(OpSum, []float64{float64(iter)})
			if v[0] != float64(6*iter) {
				t.Errorf("iter %d: got %v", iter, v[0])
				return nil
			}
		}
		r.Barrier()
		r.Barrier()
		got := r.Bcast(0, pick(r.ID() == 0, []float64{99}, nil))
		if got[0] != 99 {
			t.Errorf("bcast after barriers got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func pick[T any](cond bool, a, b T) T {
	if cond {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestAllreduceRabenseifnerLargeVectors(t *testing.T) {
	// Vectors above the size threshold take the reduce-scatter/allgather
	// path; results must match the serial sum exactly, including odd
	// lengths and non-power-of-two rank counts.
	for _, p := range []int{3, 4, 5, 7, 8} {
		for _, n := range []int{rabenseifnerMinLenDefault, rabenseifnerMinLenDefault + 1, rabenseifnerMinLenDefault + 1023} {
			inputs := make([][]float64, p)
			want := make([]float64, n)
			rng := rand.New(rand.NewSource(int64(p*100000 + n)))
			for r := 0; r < p; r++ {
				inputs[r] = make([]float64, n)
				for i := range inputs[r] {
					inputs[r][i] = rng.NormFloat64()
					want[i] += inputs[r][i]
				}
			}
			_, err := RunSimple(p, func(r *Rank) error {
				buf := append([]float64(nil), inputs[r.ID()]...)
				got := r.Allreduce(OpSum, buf)
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
						t.Errorf("p=%d n=%d rank=%d slot %d: %v want %v",
							p, n, r.ID(), i, got[i], want[i])
						return nil
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
		}
	}
}

func TestAllreduceLargeMinMax(t *testing.T) {
	const p, n = 6, rabenseifnerMinLenDefault + 7
	_, err := RunSimple(p, func(r *Rank) error {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(r.ID()*n + i)
		}
		got := r.Allreduce(OpMax, buf)
		for i := range got {
			want := float64((p-1)*n + i)
			if got[i] != want {
				t.Errorf("max slot %d = %v, want %v", i, got[i], want)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
