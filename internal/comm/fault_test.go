package comm

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/netmodel"
)

// scriptedFaults is a FaultPlane issuing pre-programmed actions keyed by
// (src, dst, tag); unmatched messages pass clean.
type scriptedFaults struct {
	mu       sync.Mutex
	act      map[[3]int]FaultAction
	once     bool // consume each scripted action on first use
	detected [][3]int
}

func (f *scriptedFaults) Message(src, dst, tag int, bytes int64, sendVT float64) FaultAction {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := [3]int{src, dst, tag}
	a, ok := f.act[k]
	if !ok {
		// Tag -1 is a wildcard: match any tag on the (src, dst) pair.
		k = [3]int{src, dst, -1}
		if a, ok = f.act[k]; !ok {
			return FaultAction{}
		}
	}
	if f.once {
		delete(f.act, k)
	}
	return a
}

func (f *scriptedFaults) CRCDetected(src, dst, tag int) {
	f.mu.Lock()
	f.detected = append(f.detected, [3]int{src, dst, tag})
	f.mu.Unlock()
}

// TestWaitErrDeadSender is the regression for the recv timeout path: a
// Wait on an Irecv whose sender died must return a typed error, not
// deadlock. Both orders are exercised — receiver already blocked when the
// sender dies, and death before the receive is posted.
func TestWaitErrDeadSender(t *testing.T) {
	for _, order := range []string{"already-dead", "dies-while-blocked"} {
		t.Run(order, func(t *testing.T) {
			deadCh := make(chan struct{})
			done := make(chan error, 1)
			_, err := RunSimple(2, func(r *Rank) error {
				if r.ID() == 1 {
					// The deferred close runs while the kill panic unwinds,
					// strictly after markDead — so once deadCh is closed the
					// death is visible to rank 0.
					defer close(deadCh)
					if order == "dies-while-blocked" {
						// Give rank 0 time to block inside WaitErr first.
						time.Sleep(20 * time.Millisecond)
					}
					r.Kill()
				}
				if order == "already-dead" {
					<-deadCh
				}
				_, _, werr := r.Irecv(1, 7).WaitErr()
				done <- werr
				return nil
			})
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			select {
			case werr := <-done:
				var dre DeadRankError
				if !errors.As(werr, &dre) {
					t.Fatalf("WaitErr returned %v, want DeadRankError", werr)
				}
				if dre.Rank != 1 || dre.World != 1 {
					t.Fatalf("DeadRankError names rank %d/world %d, want 1/1", dre.Rank, dre.World)
				}
			default:
				t.Fatal("WaitErr never completed")
			}
		})
	}
}

// TestWaitErrDrainsBeforeDeath: messages sent before the crash must all
// be received before the dead error fires, so no pre-crash data is lost
// and detection lands at a deterministic point.
func TestWaitErrDrainsBeforeDeath(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 1 {
			r.Send(0, 3, []float64{1})
			r.Send(0, 3, []float64{2})
			r.Kill()
		}
		for want := 1.0; want <= 2; want++ {
			data, _, werr := r.Irecv(1, 3).WaitErr()
			if werr != nil {
				return werr
			}
			if data[0] != want {
				t.Errorf("got %v, want %v", data[0], want)
			}
		}
		if _, _, werr := r.Irecv(1, 3).WaitErr(); !errors.As(werr, new(DeadRankError)) {
			t.Errorf("after draining: got %v, want DeadRankError", werr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKilledRankDoesNotAbortRun: a Kill is an injected fault, not a
// failure — survivors finish and the death is recorded in Stats.
func TestKilledRankDoesNotAbortRun(t *testing.T) {
	stats, err := RunSimple(3, func(r *Rank) error {
		if r.ID() == 1 {
			r.Kill()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("survivors should finish cleanly, got %v", err)
	}
	if len(stats.Killed) != 1 || stats.Killed[0] != 1 {
		t.Fatalf("Stats.Killed = %v, want [1]", stats.Killed)
	}
}

// TestBlockingRecvFromDeadRankFailsTyped: the blocking paths unwind the
// run with the typed cause instead of hanging.
func TestBlockingRecvFromDeadRankFailsTyped(t *testing.T) {
	_, err := RunSimple(2, func(r *Rank) error {
		if r.ID() == 1 {
			r.Kill()
		}
		r.Recv(1, 5)
		return nil
	})
	if err == nil || !errors.As(err, new(DeadRankError)) {
		t.Fatalf("run error = %v, want wrapped DeadRankError", err)
	}
}

// TestDropStillDelivers: a dropped first copy is replaced by a
// retransmission one timeout later — payload intact, arrival late.
func TestDropStillDelivers(t *testing.T) {
	faults := &scriptedFaults{act: map[[3]int]FaultAction{
		{0, 1, 9}: {Drop: true, RetransmitVT: 5e-3},
	}}
	var cleanVT, faultyVT float64
	run := func(f FaultPlane, out *float64) {
		t.Helper()
		_, err := Run(2, Options{Model: netmodel.QDR, Faults: f}, func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, 9, []float64{42})
				return nil
			}
			if got := r.Recv(0, 9); got[0] != 42 {
				t.Errorf("payload %v, want 42", got[0])
			}
			*out = r.Clock().Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	run(nil, &cleanVT)
	run(faults, &faultyVT)
	if d := faultyVT - cleanVT; math.Abs(d-5e-3) > 1e-9 {
		t.Fatalf("drop cost %.6f modeled seconds, want the 5e-3 retransmit timeout", d)
	}
}

// TestCorruptionDetectedAndRetried: a bit-flipped first copy must be
// caught by CRC and replaced by the clean retransmission — the receiver
// sees the exact payload, the detection is counted, and nothing is
// silently absorbed.
func TestCorruptionDetectedAndRetried(t *testing.T) {
	faults := &scriptedFaults{act: map[[3]int]FaultAction{
		{0, 1, 4}: {Corrupt: true, FlipBit: 17, RetransmitVT: 1e-3},
	}, once: true}
	payload := []float64{1, 2, 3, 4}
	stats, err := Run(2, Options{Model: netmodel.QDR, Faults: faults}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 4, payload)
			return nil
		}
		got := r.Recv(0, 4)
		for i, v := range payload {
			if math.Float64bits(got[i]) != math.Float64bits(v) {
				t.Errorf("value %d: got %x want %x — corruption leaked through", i, got[i], v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CRCDetected != 1 {
		t.Fatalf("CRCDetected = %d, want 1", stats.CRCDetected)
	}
	if stats.Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", stats.Retransmits)
	}
	if len(faults.detected) != 1 || faults.detected[0] != [3]int{0, 1, 4} {
		t.Fatalf("fault plane notified of %v, want [[0 1 4]]", faults.detected)
	}
}

// TestCorruptionDetectedOnCollectivePath: the raw receives inside
// collectives verify frames too.
func TestCorruptionDetectedOnCollectivePath(t *testing.T) {
	faults := &scriptedFaults{act: map[[3]int]FaultAction{
		{0, 1, -1}: {Corrupt: true, FlipBit: 3},
	}, once: true}
	stats, err := Run(2, Options{Faults: faults}, func(r *Rank) error {
		in := []float64{float64(r.ID() + 1)}
		out := r.Allreduce(OpSum, in)
		if out[0] != 3 {
			t.Errorf("allreduce under corruption = %v, want 3", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CRCDetected != 1 {
		t.Fatalf("CRCDetected = %d, want 1", stats.CRCDetected)
	}
}

// TestDelayPricesVirtualTime: a delayed message shifts the receiver's
// modeled completion by the delay.
func TestDelayPricesVirtualTime(t *testing.T) {
	faults := &scriptedFaults{act: map[[3]int]FaultAction{
		{0, 1, 2}: {DelayVT: 7e-3},
	}}
	var vt float64
	_, err := Run(2, Options{Model: netmodel.QDR, Faults: faults}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 2, []float64{1})
			return nil
		}
		r.Recv(0, 2)
		vt = r.Clock().Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if vt < 7e-3 {
		t.Fatalf("receiver finished at %.6f modeled seconds, want >= the 7e-3 delay", vt)
	}
}

// TestCRCFramingIsVTInvariant: enabling CRC framing without faults must
// not change modeled time or payloads — checksums ride outside the
// modeled byte counts.
func TestCRCFramingIsVTInvariant(t *testing.T) {
	run := func(crc bool) []float64 {
		t.Helper()
		vts := make([]float64, 4)
		_, err := Run(4, Options{Model: netmodel.QDR, CRC: crc}, func(r *Rank) error {
			data := []float64{float64(r.ID())}
			sum := r.Allreduce(OpSum, data)
			if sum[0] != 6 {
				t.Errorf("allreduce = %v, want 6", sum[0])
			}
			r.Barrier()
			vts[r.ID()] = r.Clock().Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return vts
	}
	plain, framed := run(false), run(true)
	for i := range plain {
		if plain[i] != framed[i] {
			t.Fatalf("rank %d: VT %.9f with CRC vs %.9f without", i, framed[i], plain[i])
		}
	}
}

// TestShrink: survivors re-form a dense communicator sharing clocks and
// world identity; collectives over the sub-communicator work and world
// translation round-trips.
func TestShrink(t *testing.T) {
	_, err := RunSimple(4, func(r *Rank) error {
		if r.ID() == 1 {
			r.Kill()
		}
		// Drain nothing: rank 1 dies immediately; survivors shrink.
		sub, err := r.Shrink([]int{0, 2, 3})
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			t.Errorf("sub size %d, want 3", sub.Size())
		}
		wantWorld := []int{0, 2, 3}
		if w := sub.WorldID(); w != wantWorld[sub.ID()] {
			t.Errorf("sub rank %d has world id %d, want %d", sub.ID(), w, wantWorld[sub.ID()])
		}
		sum := sub.Allreduce(OpSum, []float64{float64(sub.WorldID())})
		if sum[0] != 5 {
			t.Errorf("sub allreduce = %v, want 5", sum[0])
		}
		// Point-to-point in the dense numbering.
		next := (sub.ID() + 1) % sub.Size()
		prev := (sub.ID() + sub.Size() - 1) % sub.Size()
		sub.Send(next, 11, []float64{float64(sub.ID())})
		if got := sub.Recv(prev, 11); int(got[0]) != prev {
			t.Errorf("sub recv %v from %d", got, prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShrinkValidation: malformed member lists are rejected.
func TestShrinkValidation(t *testing.T) {
	_, err := RunSimple(3, func(r *Rank) error {
		if _, err := r.Shrink([]int{2, 0, 1}); err == nil {
			t.Error("unsorted member list accepted")
		}
		if _, err := r.Shrink([]int{0, 3}); err == nil {
			t.Error("out-of-range member accepted")
		}
		if r.ID() == 2 {
			if _, err := r.Shrink([]int{0, 1}); err == nil {
				t.Error("shrink excluding the caller accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKillInShrunkenComm: a death inside a sub-communicator is visible
// both there and at world level.
func TestKillInShrunkenComm(t *testing.T) {
	stats, err := RunSimple(3, func(r *Rank) error {
		sub, err := r.Shrink([]int{0, 1, 2})
		if err != nil {
			return err
		}
		if sub.ID() == 2 {
			// Wait until both survivors have shrunk (Shrink validates
			// member liveness, so dying first would fail their calls).
			r.Recv(0, 99)
			r.Recv(1, 99)
			sub.Kill()
		}
		r.Send(2, 99, nil)
		if _, _, werr := sub.Irecv(2, 1).WaitErr(); !errors.As(werr, new(DeadRankError)) {
			t.Errorf("sub comm: got %v, want DeadRankError", werr)
		}
		if _, _, werr := r.Irecv(2, 1).WaitErr(); !errors.As(werr, new(DeadRankError)) {
			t.Errorf("world comm: got %v, want DeadRankError", werr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Killed) != 1 || stats.Killed[0] != 2 {
		t.Fatalf("Stats.Killed = %v, want [2]", stats.Killed)
	}
}
