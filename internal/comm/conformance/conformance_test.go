package conformance

import (
	"fmt"
	"math"
	"os"
	"testing"
)

// TestMain dispatches worker mode before any tests run: when the TCP
// harness re-executes this binary with the conformance environment set,
// WorkerMain runs one contract rank and exits the process.
func TestMain(m *testing.M) {
	WorkerMain()
	os.Exit(m.Run())
}

func TestConformanceInProcess(t *testing.T) {
	for i := range Contracts {
		c := &Contracts[i]
		for _, seed := range c.SeedList() {
			t.Run(fmt.Sprintf("%s/seed=%d", c.Name, seed), func(t *testing.T) {
				if _, err := RunInProcess(c, seed); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestConformanceTCP runs the same contract table with one OS process
// per rank over real sockets, and for deterministic contracts demands
// the merged outcome be bit-identical to a fresh in-process run: same
// per-rank virtual clocks, same CRC-rejection and retransmission
// counters.
func TestConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for i := range Contracts {
		c := &Contracts[i]
		for _, seed := range c.SeedList() {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", c.Name, seed), func(t *testing.T) {
				t.Parallel()
				got, err := RunTCP(c, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !c.Deterministic {
					return
				}
				want, err := RunInProcess(c, seed)
				if err != nil {
					t.Fatalf("in-process reference: %v", err)
				}
				for rank := range want.VirtualTimes {
					if math.Float64bits(got.VirtualTimes[rank]) != math.Float64bits(want.VirtualTimes[rank]) {
						t.Errorf("rank %d virtual time %v over TCP, %v in-process (not bit-identical)",
							rank, got.VirtualTimes[rank], want.VirtualTimes[rank])
					}
				}
				if got.CRCDetected != want.CRCDetected {
					t.Errorf("CRC rejections: %d over TCP, %d in-process", got.CRCDetected, want.CRCDetected)
				}
				if got.Retransmits != want.Retransmits {
					t.Errorf("retransmissions: %d over TCP, %d in-process", got.Retransmits, want.Retransmits)
				}
			})
		}
	}
}
