package conformance

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/comm"
	"repro/internal/netmodel"
)

// Contracts is the table every backend must pass. Contract programs only
// use seed-derived data — each rank can reconstruct every other rank's
// inputs locally, so serial references need no side channel (the ranks
// may be in different OS processes).
var Contracts = []Contract{
	{
		// Messages between one (src, dst) pair with one tag arrive in
		// send order; interleaved tags do not disturb each other's order.
		Name:          "fifo-order",
		Ranks:         2,
		Deterministic: true,
		Opts:          gigeOpts,
		Rank: func(r *comm.Rank, seed int64) error {
			const n = 50
			peer := 1 - r.ID()
			for i := 0; i < n; i++ {
				r.IsendMsg(peer, 5, []float64{float64(seed)}, []int64{int64(i)})
				r.IsendMsg(peer, 6, nil, []int64{int64(-i)})
			}
			for i := 0; i < n; i++ {
				_, ints, _ := r.RecvMsg(peer, 5)
				if len(ints) != 1 || ints[0] != int64(i) {
					return fmt.Errorf("tag 5 message %d out of order: %v", i, ints)
				}
				_, ints, _ = r.RecvMsg(peer, 6)
				if len(ints) != 1 || ints[0] != int64(-i) {
					return fmt.Errorf("tag 6 message %d out of order: %v", i, ints)
				}
			}
			return nil
		},
	},
	{
		// Nonblocking sends match nonblocking receives across tags and
		// AnySource, with payloads intact.
		Name:          "isend-irecv-matching",
		Ranks:         3,
		Deterministic: true,
		Opts:          gigeOpts,
		Rank: func(r *comm.Rank, seed int64) error {
			id, size := r.ID(), r.Size()
			const per = 10
			var reqs []*comm.Request
			for peer := 0; peer < size; peer++ {
				if peer == id {
					continue
				}
				for k := 0; k < per; k++ {
					src := peer
					if k%2 == 1 {
						src = comm.AnySource
					}
					reqs = append(reqs, r.Irecv(src, 10+k))
				}
			}
			for peer := 0; peer < size; peer++ {
				if peer == id {
					continue
				}
				rng := rankRNG(seed, id, peer)
				for k := 0; k < per; k++ {
					r.IsendMsg(peer, 10+k, []float64{rng.Float64()}, []int64{int64(id)})
				}
			}
			for _, req := range reqs {
				data, ints, err := req.WaitErr()
				if err != nil {
					return err
				}
				if len(data) != 1 || len(ints) != 1 {
					return fmt.Errorf("payload shape %d/%d", len(data), len(ints))
				}
				if src := int(ints[0]); src == id || src < 0 || src >= size {
					return fmt.Errorf("impossible source %d", src)
				}
				req.Free()
			}
			return nil
		},
	},
	{
		// Receives posted before the matching send arrives complete with
		// the right payload — on the in-process backend this is the
		// direct-delivery fast path (no staging copy); over TCP the frame
		// lands in the posted request from the reader goroutine.
		Name:          "posted-direct-delivery",
		Ranks:         2,
		Deterministic: true,
		Opts:          gigeOpts,
		Rank: func(r *comm.Rank, seed int64) error {
			peer := 1 - r.ID()
			const n = 20
			reqs := make([]*comm.Request, n)
			for i := range reqs {
				reqs[i] = r.Irecv(peer, 3)
			}
			// Both sides have posted everything before either sends: the
			// ready handshake guarantees the receives exist first.
			r.Send(peer, 1, nil)
			r.Recv(peer, 1)
			rng := rankRNG(seed, r.ID(), peer)
			for i := 0; i < n; i++ {
				r.Isend(peer, 3, []float64{rng.Float64(), float64(i)})
			}
			want := rankRNG(seed, peer, r.ID())
			for i, req := range reqs {
				data, _, err := req.WaitErr()
				if err != nil {
					return err
				}
				if len(data) != 2 || data[0] != want.Float64() || data[1] != float64(i) {
					return fmt.Errorf("posted receive %d got %v", i, data)
				}
				req.Free()
			}
			return nil
		},
	},
	{
		// Collectives agree with serial references computed locally from
		// the shared seed: allreduce over all ops, bcast, allgather.
		Name:          "collectives-vs-serial",
		Ranks:         5,
		Deterministic: true,
		Opts:          gigeOpts,
		Rank:          collectivesVsSerial,
	},
	{
		// Injected corruption is detected by CRC and retransmitted; drops
		// are retransmitted. Payloads still arrive exact, and both
		// counters prove the machinery actually fired.
		Name:          "crc-reject-retransmit",
		Ranks:         3,
		Deterministic: true,
		Opts: func() comm.Options {
			return comm.Options{Model: netmodel.GigE, Faults: &cyclingFaults{n: 2}}
		},
		Rank: func(r *comm.Rank, seed int64) error {
			id, size := r.ID(), r.Size()
			rng := rankRNG(seed, id, 0)
			for round := 0; round < 8; round++ {
				peer := (id + 1 + round%(size-1)) % size
				payload := []float64{float64(rng.Intn(1000)), float64(round)}
				r.Isend(peer, 20+round, payload)
			}
			for round := 0; round < 8; round++ {
				from := (id - 1 - round%(size-1) + 2*size) % size
				want := rankRNG(seed, from, 0)
				for skip := 0; skip < round; skip++ {
					want.Intn(1000)
				}
				data := r.Recv(from, 20+round)
				if len(data) != 2 || data[0] != float64(want.Intn(1000)) || data[1] != float64(round) {
					return fmt.Errorf("round %d from %d: corrupted payload survived: %v", round, from, data)
				}
			}
			sum := r.Allreduce(comm.OpSum, []float64{1})
			if sum[0] != float64(size) {
				return fmt.Errorf("faulted allreduce = %v, want %d", sum[0], size)
			}
			return nil
		},
		Check: func(m *Merged, seed int64) error {
			if m.CRCDetected == 0 {
				return errors.New("fault plane injected corruption but no CRC rejection was recorded")
			}
			if m.Retransmits == 0 {
				return errors.New("fault plane fired but no retransmissions were recorded")
			}
			return nil
		},
	},
	{
		// A dead peer surfaces as DeadRankError on receives that can
		// never complete — after already-sent messages drain.
		Name:  "dead-rank-error",
		Ranks: 3,
		Rank: func(r *comm.Rank, seed int64) error {
			switch r.ID() {
			case 0:
				r.Send(1, 1, []float64{42})
				r.Kill()
			case 1:
				if data := r.Recv(0, 1); len(data) != 1 || data[0] != 42 {
					return fmt.Errorf("pre-death message lost: %v", data)
				}
				return wantDead(r.Irecv(0, 2), 0)
			case 2:
				return wantDead(r.Irecv(0, 3), 0)
			}
			return nil
		},
		Check: func(m *Merged, seed int64) error {
			if len(m.Killed) != 1 || m.Killed[0] != 0 {
				return fmt.Errorf("killed = %v, want [0]", m.Killed)
			}
			return nil
		},
	},
	{
		// A collective with a dead member fails fast with DeadRankError;
		// survivors Shrink and the re-formed communicator's collectives
		// work.
		Name:  "shrink-reformation",
		Ranks: 4,
		Rank: func(r *comm.Rank, seed int64) error {
			if r.ID() == 2 {
				r.Kill()
			}
			if _, err := r.AllreduceErr(comm.OpSum, []float64{1}); !isDead(err, 2) {
				return fmt.Errorf("collective with dead member: err = %v, want DeadRankError world 2", err)
			}
			sub, err := r.Shrink([]int{0, 1, 3})
			if err != nil {
				return fmt.Errorf("shrink: %v", err)
			}
			if sum := sub.Allreduce(comm.OpSum, []float64{1}); sum[0] != 3 {
				return fmt.Errorf("shrunken allreduce = %v, want 3", sum[0])
			}
			worlds := sub.Allgather([]float64{float64(sub.WorldID())})
			if fmt.Sprint(worlds) != "[0 1 3]" {
				return fmt.Errorf("shrunken allgather world ids = %v, want [0 1 3]", worlds)
			}
			return nil
		},
		Check: func(m *Merged, seed int64) error {
			if len(m.Killed) != 1 || m.Killed[0] != 2 {
				return fmt.Errorf("killed = %v, want [2]", m.Killed)
			}
			return nil
		},
	},
	{
		// Satellite of internal/comm/property_test.go: the same class of
		// randomized-collective properties, seeded so each rank derives
		// the serial reference locally, run against every backend
		// (multi-process over TCP) at several seeds.
		Name:          "property-collectives",
		Ranks:         5,
		Deterministic: true,
		Opts:          gigeOpts,
		Rank:          propertyCollectives,
		Seeds:         []int64{1, 2, 3},
	},
	{
		// Hierarchical collectives on a power-of-two block layout are
		// bit-identical to the flat algorithms: float allreduces match a
		// local simulation of the flat recursive-doubling combine tree
		// bitwise, exact ops match serial references, and the
		// Deterministic flag additionally pins the modeled clocks across
		// the in-process and TCP backends.
		Name:          "hier-collectives-vs-flat",
		Ranks:         8,
		Deterministic: true,
		Opts:          hierOpts(8, 4),
		Rank:          hierCollectivesVsFlat,
		Seeds:         []int64{1, 4},
	},
	{
		// A node leader dying mid-run fails hierarchical collectives fast
		// with a typed DeadRankError on every rank — including the dead
		// leader's node members, who must not deadlock waiting for their
		// stuck leader — and the shrunken communicator (which drops back
		// to flat collectives) works.
		Name:  "hier-leader-death",
		Ranks: 6,
		Opts:  hierOpts(6, 3),
		Rank: func(r *comm.Rank, seed int64) error {
			// BlockHierarchy(6, 3): nodes {0,1,2} and {3,4,5}, leaders 0
			// and 3. Rank 3 dies as the leader of node 1.
			if r.ID() == 3 {
				r.Kill()
			}
			if _, err := r.AllreduceErr(comm.OpSum, []float64{1}); !isDead(err, 3) {
				return fmt.Errorf("hier collective with dead leader: err = %v, want DeadRankError world 3", err)
			}
			if err := r.BarrierErr(); !isDead(err, 3) {
				return fmt.Errorf("hier barrier with dead leader: err = %v, want DeadRankError world 3", err)
			}
			sub, err := r.Shrink([]int{0, 1, 2, 4, 5})
			if err != nil {
				return fmt.Errorf("shrink: %v", err)
			}
			if sum := sub.Allreduce(comm.OpSum, []float64{1}); sum[0] != 5 {
				return fmt.Errorf("shrunken allreduce = %v, want 5", sum[0])
			}
			return nil
		},
		Check: func(m *Merged, seed int64) error {
			if len(m.Killed) != 1 || m.Killed[0] != 3 {
				return fmt.Errorf("killed = %v, want [3]", m.Killed)
			}
			return nil
		},
	},
}

func gigeOpts() comm.Options { return comm.Options{Model: netmodel.GigE} }

// hierOpts builds options that turn the hierarchical collectives on over
// a block node map of the given shape, under the GigE model.
func hierOpts(ranks, perNode int) func() comm.Options {
	return func() comm.Options {
		return comm.Options{
			Model:       netmodel.GigE,
			Hierarchy:   comm.BlockHierarchy(ranks, perNode),
			Collectives: comm.CollHier,
		}
	}
}

// rankRNG derives a deterministic stream from (seed, a, b) so any rank
// can reproduce any other rank's payloads.
func rankRNG(seed int64, a, b int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(a)*9_697 + int64(b)))
}

func wantDead(req *comm.Request, world int) error {
	_, _, err := req.WaitErr()
	if !isDead(err, world) {
		return fmt.Errorf("receive from dead rank: err = %v, want DeadRankError world %d", err, world)
	}
	return nil
}

func isDead(err error, world int) bool {
	var dre comm.DeadRankError
	return errors.As(err, &dre) && dre.World == world
}

// serialReduce folds op over per-rank inputs element-wise.
func serialReduce(op comm.ReduceOp, inputs [][]float64) []float64 {
	want := append([]float64(nil), inputs[0]...)
	for i := 1; i < len(inputs); i++ {
		for j := range want {
			switch op {
			case comm.OpSum:
				want[j] += inputs[i][j]
			case comm.OpProd:
				want[j] *= inputs[i][j]
			case comm.OpMin:
				want[j] = math.Min(want[j], inputs[i][j])
			case comm.OpMax:
				want[j] = math.Max(want[j], inputs[i][j])
			}
		}
	}
	return want
}

// intPayload fills integer-valued float64s in [-8, 8) so sums and
// products are exact regardless of reduction association order.
func intPayload(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(16) - 8)
	}
	return out
}

func collectivesVsSerial(r *comm.Rank, seed int64) error {
	id, size := r.ID(), r.Size()
	const n = 16
	inputs := make([][]float64, size)
	for i := range inputs {
		inputs[i] = intPayload(rankRNG(seed, i, 0), n)
	}
	for _, op := range []comm.ReduceOp{comm.OpSum, comm.OpProd, comm.OpMin, comm.OpMax} {
		want := serialReduce(op, inputs)
		got := r.Allreduce(op, append([]float64(nil), inputs[id]...))
		for j := range want {
			if got[j] != want[j] {
				return fmt.Errorf("allreduce op %d element %d = %v, want %v", op, j, got[j], want[j])
			}
		}
	}
	for root := 0; root < size; root++ {
		var in []float64
		if id == root {
			in = append([]float64(nil), inputs[root]...)
		}
		got := r.Bcast(root, in)
		for j := range inputs[root] {
			if got[j] != inputs[root][j] {
				return fmt.Errorf("bcast root %d element %d = %v, want %v", root, j, got[j], inputs[root][j])
			}
		}
	}
	all := r.Allgather(append([]float64(nil), inputs[id]...))
	if len(all) != size*n {
		return fmt.Errorf("allgather length %d, want %d", len(all), size*n)
	}
	for i := 0; i < size; i++ {
		for j := 0; j < n; j++ {
			if all[i*n+j] != inputs[i][j] {
				return fmt.Errorf("allgather rank %d element %d = %v, want %v", i, j, all[i*n+j], inputs[i][j])
			}
		}
	}
	if r.BarrierErr() != nil {
		return errors.New("barrier failed with no dead ranks")
	}
	return nil
}

func propertyCollectives(r *comm.Rank, seed int64) error {
	id, size := r.ID(), r.Size()
	ops := []comm.ReduceOp{comm.OpSum, comm.OpProd, comm.OpMin, comm.OpMax}
	for trial := 0; trial < 6; trial++ {
		// Every rank derives the identical trial shape from the shared
		// stream, then its own payload from a per-rank stream.
		shape := rankRNG(seed, -1, trial)
		n := 1 + shape.Intn(32)
		op := ops[shape.Intn(len(ops))]
		root := shape.Intn(size)
		inputs := make([][]float64, size)
		for i := range inputs {
			inputs[i] = intPayload(rankRNG(seed, i, trial+1), n)
		}
		want := serialReduce(op, inputs)
		got := r.Allreduce(op, append([]float64(nil), inputs[id]...))
		for j := range want {
			if got[j] != want[j] {
				return fmt.Errorf("trial %d allreduce element %d = %v, want %v", trial, j, got[j], want[j])
			}
		}
		gathered := r.Gather(root, append([]float64(nil), inputs[id]...))
		if id == root {
			for i := 0; i < size; i++ {
				for j := 0; j < n; j++ {
					if gathered[i*n+j] != inputs[i][j] {
						return fmt.Errorf("trial %d gather rank %d element %d = %v, want %v",
							trial, i, j, gathered[i*n+j], inputs[i][j])
					}
				}
			}
		} else if gathered != nil {
			return fmt.Errorf("trial %d: non-root got non-nil gather result", trial)
		}
		scattered := r.Scatter(root, flatten(inputs, id == root), n)
		for j := 0; j < n; j++ {
			if scattered[j] != inputs[id][j] {
				return fmt.Errorf("trial %d scatter element %d = %v, want %v", trial, j, scattered[j], inputs[id][j])
			}
		}
	}
	return nil
}

// serialRD simulates the flat recursive-doubling allreduce combine tree
// locally for a power-of-two rank count: at each round every rank folds
// its partner's pre-round buffer into its own, exactly as allreduceRaw
// does, so the result is the bitwise reference the hierarchical path
// must reproduce on pow2 block layouts.
func serialRD(op comm.ReduceOp, inputs [][]float64) []float64 {
	p := len(inputs)
	bufs := make([][]float64, p)
	for i := range bufs {
		bufs[i] = append([]float64(nil), inputs[i]...)
	}
	for mask := 1; mask < p; mask <<= 1 {
		next := make([][]float64, p)
		for i := range next {
			next[i] = append([]float64(nil), bufs[i]...)
			src := bufs[i^mask]
			for j := range next[i] {
				switch op {
				case comm.OpSum:
					next[i][j] += src[j]
				case comm.OpProd:
					next[i][j] *= src[j]
				case comm.OpMin:
					if src[j] < next[i][j] {
						next[i][j] = src[j]
					}
				case comm.OpMax:
					if src[j] > next[i][j] {
						next[i][j] = src[j]
					}
				}
			}
		}
		bufs = next
	}
	return bufs[0]
}

func hierCollectivesVsFlat(r *comm.Rank, seed int64) error {
	id, size := r.ID(), r.Size()
	for _, n := range []int{1, 7, 32} {
		inputs := make([][]float64, size)
		for i := range inputs {
			rng := rankRNG(seed, i, n)
			inputs[i] = make([]float64, n)
			for j := range inputs[i] {
				inputs[i][j] = rng.NormFloat64() // full-mantissa floats
			}
		}
		for _, op := range []comm.ReduceOp{comm.OpSum, comm.OpProd, comm.OpMin, comm.OpMax} {
			want := serialRD(op, inputs)
			got := r.Allreduce(op, append([]float64(nil), inputs[id]...))
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					return fmt.Errorf("n=%d op %v element %d: hier %x differs from flat combine tree %x",
						n, op, j, got[j], want[j])
				}
			}
		}
	}
	// Integer reductions: exact under any association, checked against the
	// plain serial fold.
	mine := []int64{int64(id) + 1, int64(id * id)}
	got := r.AllreduceInts(comm.OpSum, append([]int64(nil), mine...))
	var wantA, wantB int64
	for i := 0; i < size; i++ {
		wantA += int64(i) + 1
		wantB += int64(i * i)
	}
	if got[0] != wantA || got[1] != wantB {
		return fmt.Errorf("int allreduce = %v, want [%d %d]", got, wantA, wantB)
	}
	// Broadcast from leader and non-leader roots through the two-level
	// tree.
	for _, root := range []int{0, 5} {
		payload := intPayload(rankRNG(seed, root, 99), 6)
		var in []float64
		if id == root {
			in = append([]float64(nil), payload...)
		}
		out := r.Bcast(root, in)
		for j := range payload {
			if out[j] != payload[j] {
				return fmt.Errorf("hier bcast root %d element %d = %v, want %v", root, j, out[j], payload[j])
			}
		}
	}
	if err := r.BarrierErr(); err != nil {
		return fmt.Errorf("hier barrier: %v", err)
	}
	return nil
}

func flatten(inputs [][]float64, isRoot bool) []float64 {
	if !isRoot {
		return nil
	}
	var out []float64
	for _, in := range inputs {
		out = append(out, in...)
	}
	return out
}

// cyclingFaults deterministically faults every n-th message per (src,
// dst) pair, cycling corrupt → drop → delay. Per-pair counting keeps the
// schedule identical whether the pairs live in one process or several;
// corruption comes first so even light per-pair traffic exercises the
// CRC reject path.
type cyclingFaults struct {
	mu  sync.Mutex
	n   int
	cnt map[[2]int]int
}

func (f *cyclingFaults) Message(src, dst, tag int, bytes int64, sendVT float64) comm.FaultAction {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cnt == nil {
		f.cnt = make(map[[2]int]int)
	}
	k := [2]int{src, dst}
	c := f.cnt[k]
	f.cnt[k] = c + 1
	if c%f.n != f.n-1 {
		return comm.FaultAction{}
	}
	switch (c / f.n) % 3 {
	case 0:
		if bytes > 0 {
			return comm.FaultAction{Corrupt: true, FlipBit: c * 7}
		}
		return comm.FaultAction{Drop: true}
	case 1:
		return comm.FaultAction{Drop: true}
	default:
		return comm.FaultAction{DelayVT: 3e-6}
	}
}

func (f *cyclingFaults) CRCDetected(src, dst, tag int) {}
