// Package conformance is the behavioral bar every comm.Transport backend
// must clear: one table of contracts — FIFO ordering, Isend/Irecv
// matching, posted-receive direct delivery, collectives against serial
// references, CRC reject-and-retransmit, dead-rank error surfacing,
// Shrink re-formation, and the seeded randomized-collective property
// suite — run identically against the in-process reference backend and
// the TCP multi-process backend. A future backend (QUIC, shared memory)
// lands by passing this same table, not by growing its own tests.
//
// The in-process harness runs a contract directly under comm.Run. The
// TCP harness re-executes the test binary once per rank in worker mode
// (selected by environment variables, dispatched from TestMain before
// any test runs), so the contract body executes in genuinely separate OS
// processes connected by real sockets; each worker reports its rank's
// stats as JSON, and the parent merges them for the contract's Check.
// Because the workers are the test binary itself, a `-race` run spawns
// race-instrumented workers — a detected race fails the worker and
// therefore the suite.
package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/comm"
	"repro/internal/comm/tcptransport"
)

// Contract is one behavioral requirement, phrased as a program every
// rank runs plus a predicate over the merged run outcome. The same
// (seeded) program must pass on every backend.
type Contract struct {
	// Name identifies the contract in test names and worker dispatch.
	Name string
	// Ranks is the world size the contract runs at.
	Ranks int
	// Deterministic marks contracts whose virtual clocks and fault
	// counters must be bit-identical across backends (programs with no
	// death: modeled time is a function of program order and message
	// sizes only). The harness cross-checks them backend against backend.
	Deterministic bool
	// Opts builds the run options (fresh per run: fault planes carry
	// per-run counters).
	Opts func() comm.Options
	// Rank is the per-rank program. A non-nil error fails the contract.
	Rank func(r *comm.Rank, seed int64) error
	// Check, when non-nil, validates the merged outcome of the run.
	Check func(m *Merged, seed int64) error
	// Seeds to run; nil means {1}.
	Seeds []int64
}

// Merged is the outcome of one contract run, unified across however many
// processes hosted the ranks.
type Merged struct {
	Size         int
	VirtualTimes []float64 // final VT per world rank, from its hosting process
	Killed       []int     // world ranks that died, ascending
	CRCDetected  int64     // receive-side CRC rejections, summed
	Retransmits  int64     // send-side drops/corruptions, summed
}

// SeedList returns the contract's seeds, defaulting to {1}.
func (c *Contract) SeedList() []int64 {
	if len(c.Seeds) == 0 {
		return []int64{1}
	}
	return c.Seeds
}

func (c *Contract) opts() comm.Options {
	if c.Opts == nil {
		return comm.Options{}
	}
	return c.Opts()
}

// Lookup returns the named contract, or nil.
func Lookup(name string) *Contract {
	for i := range Contracts {
		if Contracts[i].Name == name {
			return &Contracts[i]
		}
	}
	return nil
}

// RunInProcess runs one contract seed on the reference backend.
func RunInProcess(c *Contract, seed int64) (*Merged, error) {
	stats, err := comm.Run(c.Ranks, c.opts(), func(r *comm.Rank) error {
		return c.Rank(r, seed)
	})
	if err != nil {
		return nil, err
	}
	m := &Merged{
		Size:         stats.Size,
		VirtualTimes: stats.VirtualTimes,
		Killed:       stats.Killed,
		CRCDetected:  stats.CRCDetected,
		Retransmits:  stats.Retransmits,
	}
	return m, c.check(m, seed)
}

func (c *Contract) check(m *Merged, seed int64) error {
	if c.Check == nil {
		return nil
	}
	return c.Check(m, seed)
}

// Worker-mode environment. The parent sets these on each spawned child;
// WorkerMain (called from TestMain) detects them and becomes rank
// CMT_CONF_RANK of the contract run instead of running tests.
const (
	envContract = "CMT_CONF_CONTRACT"
	envRank     = "CMT_CONF_RANK"
	envSize     = "CMT_CONF_SIZE"
	envSeed     = "CMT_CONF_SEED"
	envRdv      = "CMT_CONF_RDV"
	envStats    = "CMT_CONF_STATS"
)

// workerStats is one worker's contribution to Merged.
type workerStats struct {
	Rank   int     `json:"rank"`
	VT     float64 `json:"vt"`
	Killed []int   `json:"killed"`
	CRC    int64   `json:"crc"`
	Retx   int64   `json:"retx"`
}

// WorkerMain dispatches worker mode: a no-op in the parent test process,
// but in a spawned child it runs the contract rank and exits the process
// with 0 on success. Call it from TestMain before m.Run.
func WorkerMain() {
	name := os.Getenv(envContract)
	if name == "" {
		return
	}
	os.Exit(workerRun(name))
}

func workerRun(name string) int {
	c := Lookup(name)
	if c == nil {
		fmt.Fprintf(os.Stderr, "conformance worker: unknown contract %q\n", name)
		return 2
	}
	rank, err1 := strconv.Atoi(os.Getenv(envRank))
	size, err2 := strconv.Atoi(os.Getenv(envSize))
	seed, err3 := strconv.ParseInt(os.Getenv(envSeed), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		fmt.Fprintf(os.Stderr, "conformance worker: bad env: %v %v %v\n", err1, err2, err3)
		return 2
	}
	tr, err := tcptransport.New(tcptransport.Config{
		Rank: rank, Size: size,
		RendezvousFile:   os.Getenv(envRdv),
		BootstrapTimeout: 60 * time.Second,
		CloseTimeout:     60 * time.Second,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformance worker rank %d: bootstrap: %v\n", rank, err)
		return 1
	}
	stats, err := comm.RunDistributed(tr, c.opts(), func(r *comm.Rank) error {
		return c.Rank(r, seed)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformance worker rank %d: %v\n", rank, err)
		return 1
	}
	out := workerStats{
		Rank:   rank,
		VT:     stats.VirtualTimes[rank],
		Killed: stats.Killed,
		CRC:    stats.CRCDetected,
		Retx:   stats.Retransmits,
	}
	b, err := json.Marshal(out)
	if err == nil {
		err = os.WriteFile(os.Getenv(envStats), b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformance worker rank %d: stats: %v\n", rank, err)
		return 1
	}
	return 0
}

// RunTCP runs one contract seed on the TCP backend: one spawned OS
// process per rank (re-executing the current binary in worker mode),
// merged stats, contract Check.
func RunTCP(c *Contract, seed int64) (*Merged, error) {
	dir, err := os.MkdirTemp("", "conformance-"+c.Name+"-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	rdv := filepath.Join(dir, "rendezvous")

	type child struct {
		cmd    *exec.Cmd
		stderr *bytes.Buffer
		stats  string
	}
	children := make([]child, c.Ranks)
	for rank := 0; rank < c.Ranks; rank++ {
		statsPath := filepath.Join(dir, fmt.Sprintf("stats-%d.json", rank))
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			envContract+"="+c.Name,
			envRank+"="+strconv.Itoa(rank),
			envSize+"="+strconv.Itoa(c.Ranks),
			envSeed+"="+strconv.FormatInt(seed, 10),
			envRdv+"="+rdv,
			envStats+"="+statsPath,
		)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			for _, ch := range children[:rank] {
				ch.cmd.Process.Kill()
				ch.cmd.Wait()
			}
			return nil, fmt.Errorf("spawn rank %d: %w", rank, err)
		}
		children[rank] = child{cmd: cmd, stderr: &stderr, stats: statsPath}
	}

	// A hung contract (the bug class several contracts are regressions
	// against) must fail, not wedge the suite: kill the fleet after a
	// generous deadline.
	timeout := time.AfterFunc(120*time.Second, func() {
		for _, ch := range children {
			ch.cmd.Process.Kill()
		}
	})
	defer timeout.Stop()

	var firstErr error
	for rank, ch := range children {
		if err := ch.cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker rank %d: %v\nstderr:\n%s", rank, err, ch.stderr.String())
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	m := &Merged{Size: c.Ranks, VirtualTimes: make([]float64, c.Ranks)}
	killed := map[int]bool{}
	for rank, ch := range children {
		b, err := os.ReadFile(ch.stats)
		if err != nil {
			return nil, fmt.Errorf("worker rank %d wrote no stats: %w", rank, err)
		}
		var ws workerStats
		if err := json.Unmarshal(b, &ws); err != nil {
			return nil, fmt.Errorf("worker rank %d stats: %w", rank, err)
		}
		if ws.Rank != rank {
			return nil, fmt.Errorf("worker rank %d reported as rank %d", rank, ws.Rank)
		}
		m.VirtualTimes[rank] = ws.VT
		m.CRCDetected += ws.CRC
		m.Retransmits += ws.Retx
		for _, k := range ws.Killed {
			killed[k] = true
		}
	}
	for k := range killed {
		m.Killed = append(m.Killed, k)
	}
	sort.Ints(m.Killed)
	return m, c.check(m, seed)
}
