package comm

import (
	"math"
	"testing"
)

func TestSplitEvenOdd(t *testing.T) {
	const p = 7
	_, err := RunSimple(p, func(r *Rank) error {
		g := r.Split(r.ID()%2, r.ID())
		wantSize := p / 2
		if r.ID()%2 == 0 {
			wantSize = (p + 1) / 2
		}
		if g.Size() != wantSize {
			t.Errorf("rank %d group size %d, want %d", r.ID(), g.Size(), wantSize)
		}
		// Members are the ranks of my parity, ascending (key = world
		// rank).
		for i, w := range g.Members() {
			if w%2 != r.ID()%2 {
				t.Errorf("rank %d group contains wrong-parity member %d", r.ID(), w)
			}
			if g.WorldRank(i) != w {
				t.Errorf("WorldRank mismatch at %d", i)
			}
		}
		if g.WorldRank(g.ID()) != r.ID() {
			t.Errorf("rank %d: my group index maps to %d", r.ID(), g.WorldRank(g.ID()))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdersGroup(t *testing.T) {
	const p = 4
	_, err := RunSimple(p, func(r *Rank) error {
		// Reverse ordering via descending keys.
		g := r.Split(0, p-r.ID())
		if g.ID() != p-1-r.ID() {
			t.Errorf("rank %d got group index %d, want %d", r.ID(), g.ID(), p-1-r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupAllreducePerColor(t *testing.T) {
	const p = 9 // three colors of three
	_, err := RunSimple(p, func(r *Rank) error {
		color := r.ID() / 3
		g := r.Split(color, r.ID())
		sum := g.Allreduce(OpSum, []float64{float64(r.ID())})
		want := float64(3*color*3 + 3) // sum of the three ids in the color
		// ids are 3c, 3c+1, 3c+2 -> sum = 9c + 3
		want = float64(9*color + 3)
		if sum[0] != want {
			t.Errorf("rank %d color %d: group sum %v, want %v", r.ID(), color, sum[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupAllreduceNonPowerOfTwo(t *testing.T) {
	const p = 10 // one group of 10 (non power of two)
	_, err := RunSimple(p, func(r *Rank) error {
		g := r.Split(0, r.ID())
		got := g.Allreduce(OpMax, []float64{float64(r.ID())})
		if got[0] != float64(p-1) {
			t.Errorf("group max = %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupBcast(t *testing.T) {
	const p = 8
	_, err := RunSimple(p, func(r *Rank) error {
		g := r.Split(r.ID()%2, r.ID())
		var in []float64
		if g.ID() == 1 { // second member of each parity group
			in = []float64{float64(100 + r.ID()%2)}
		}
		got := g.Bcast(1, in)
		want := float64(100 + r.ID()%2)
		if got[0] != want {
			t.Errorf("rank %d bcast got %v, want %v", r.ID(), got[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupAllgather(t *testing.T) {
	const p = 6
	_, err := RunSimple(p, func(r *Rank) error {
		g := r.Split(r.ID()%3, r.ID())
		out := g.Allgather([]float64{float64(r.ID())})
		if len(out) != g.Size() {
			t.Errorf("allgather size %d", len(out))
		}
		for i, v := range out {
			if int(v) != g.WorldRank(i) {
				t.Errorf("slot %d = %v, want %d", i, v, g.WorldRank(i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupBarrierAndP2P(t *testing.T) {
	const p = 6
	_, err := RunSimple(p, func(r *Rank) error {
		g := r.Split(r.ID()%2, r.ID())
		g.Barrier()
		// Ring send within the group.
		next := (g.ID() + 1) % g.Size()
		prev := (g.ID() - 1 + g.Size()) % g.Size()
		g.Send(next, 42, []float64{float64(g.ID())})
		got := g.Recv(prev, 42)
		if got[0] != float64(prev) {
			t.Errorf("group ring got %v, want %v", got[0], prev)
		}
		g.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentGroupCollectivesDontCross(t *testing.T) {
	// Two groups run different collectives at the same time; the values
	// must stay separated (disjoint tag windows per color).
	const p = 8
	_, err := RunSimple(p, func(r *Rank) error {
		color := r.ID() % 2
		g := r.Split(color, r.ID())
		for iter := 0; iter < 10; iter++ {
			v := g.Allreduce(OpSum, []float64{float64(color + 1)})
			want := float64((color + 1) * g.Size())
			if math.Abs(v[0]-want) > 1e-12 {
				t.Errorf("iter %d color %d: sum %v, want %v", iter, color, v[0], want)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRejectsBadColor(t *testing.T) {
	_, err := RunSimple(1, func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("negative color must panic")
			}
		}()
		r.Split(-1, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRecordedAsMPICall(t *testing.T) {
	stats, err := RunSimple(2, func(r *Rank) error {
		r.Split(0, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range stats.AggregateSites() {
		if s.Op == "MPI_Comm_split" {
			found = true
		}
	}
	if !found {
		t.Fatal("split missing from MPI profile")
	}
}
