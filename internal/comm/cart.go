package comm

import "fmt"

// Cartesian topology helpers. When Run is given Options.Grid, ranks are
// laid out on a 3D processor grid in x-fastest order — the decomposition
// CMT-bone uses for its computational domain (e.g. the paper's Figure 7
// setup: 256 ranks as an 8 x 8 x 4 grid).

// HasGrid reports whether the communicator carries a processor grid.
func (r *Rank) HasGrid() bool { return r.comm.hasGrid }

// GridDims returns the processor grid dimensions.
func (r *Rank) GridDims() [3]int { return r.comm.grid }

// Coords returns this rank's grid coordinates.
func (r *Rank) Coords() [3]int {
	r.mustGrid()
	return r.comm.coordsOf(r.id)
}

// RankOf maps grid coordinates to a rank id.
func (r *Rank) RankOf(coords [3]int) int {
	r.mustGrid()
	for d := 0; d < 3; d++ {
		if coords[d] < 0 || coords[d] >= r.comm.grid[d] {
			panic(fmt.Sprintf("comm: coords %v outside grid %v", coords, r.comm.grid))
		}
	}
	return r.comm.rankOf(coords)
}

// Shift returns the neighbor rank displaced by disp along dim, following
// MPI_Cart_shift semantics: -1 (no neighbor) at a non-periodic boundary,
// wraparound when the dimension is periodic.
func (r *Rank) Shift(dim, disp int) int {
	r.mustGrid()
	c := r.comm.coordsOf(r.id)
	n := r.comm.grid[dim]
	v := c[dim] + disp
	if r.comm.periodic[dim] {
		v = ((v % n) + n) % n
	} else if v < 0 || v >= n {
		return -1
	}
	c[dim] = v
	return r.comm.rankOf(c)
}

// Hops returns the modeled switch-hop distance from this rank to dst,
// which the network model uses for distance-sensitive message costs.
func (r *Rank) Hops(dst int) int { return r.comm.hops(r.id, dst) }

func (r *Rank) mustGrid() {
	if !r.comm.hasGrid {
		panic("comm: communicator has no Cartesian grid (set Options.Grid)")
	}
}

// FactorGrid splits p ranks into a near-cubic [3]int processor grid with
// nx >= ny >= nz, the heuristic Nek-family codes use to keep surface-to-
// volume ratio low. It always succeeds (worst case p x 1 x 1).
func FactorGrid(p int) [3]int {
	best := [3]int{p, 1, 1}
	bestScore := score(best)
	for nz := 1; nz*nz*nz <= p; nz++ {
		if p%nz != 0 {
			continue
		}
		rest := p / nz
		for ny := nz; ny*ny <= rest; ny++ {
			if rest%ny != 0 {
				continue
			}
			g := [3]int{rest / ny, ny, nz}
			if s := score(g); s < bestScore {
				best, bestScore = g, s
			}
		}
	}
	return best
}

// score is the surface area of the grid box; lower is more cubic.
func score(g [3]int) int {
	return g[0]*g[1] + g[1]*g[2] + g[0]*g[2]
}
