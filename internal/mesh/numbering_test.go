package mesh

import (
	"testing"
)

// gatherAllFaceIDs collects every rank's DG face ids keyed by
// (rank, elem, face).
func gatherAllFaceIDs(b *Box) map[int][]int64 {
	out := map[int][]int64{}
	for r := 0; r < b.Ranks(); r++ {
		out[r] = b.Partition(r).DGFaceIDs()
	}
	return out
}

func TestDGFaceIDsSharedAcrossFaces(t *testing.T) {
	for _, periodic := range [][3]bool{{false, false, false}, {true, true, true}} {
		b := mustBox(t, [3]int{2, 2, 1}, [3]int{4, 2, 2}, 3, periodic)
		n2 := b.N * b.N
		all := gatherAllFaceIDs(b)
		for r := 0; r < b.Ranks(); r++ {
			l := b.Partition(r)
			for e := 0; e < l.Nel; e++ {
				for f := 0; f < 6; f++ {
					nb, ok := l.FaceNeighbor(e, f)
					if !ok {
						continue
					}
					mine := all[r][e*6*n2+f*n2 : e*6*n2+(f+1)*n2]
					theirBase := nb.Elem*6*n2 + (f^1)*n2
					theirs := all[nb.Rank][theirBase : theirBase+n2]
					for i := 0; i < n2; i++ {
						if mine[i] != theirs[i] {
							t.Fatalf("periodic=%v: face ids differ across shared face (r%d e%d f%d point %d): %d vs %d",
								periodic, r, e, f, i, mine[i], theirs[i])
						}
					}
				}
			}
		}
	}
}

func TestDGFaceIDsSharedByAtMostTwo(t *testing.T) {
	b := mustBox(t, [3]int{2, 1, 1}, [3]int{2, 2, 2}, 3, [3]bool{true, false, false})
	counts := map[int64]int{}
	for _, ids := range gatherAllFaceIDs(b) {
		for _, id := range ids {
			counts[id]++
		}
	}
	for id, c := range counts {
		if c != 1 && c != 2 {
			t.Fatalf("face point id %d appears %d times; faces join at most two elements", id, c)
		}
	}
}

func TestDGFaceIDsBoundaryUnshared(t *testing.T) {
	// Non-periodic single-element domain: all 6 faces are boundaries, so
	// every id must be unique.
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{1, 1, 1}, 4, [3]bool{})
	ids := b.Partition(0).DGFaceIDs()
	seen := map[int64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("boundary face id %d duplicated", id)
		}
		seen[id] = true
	}
	if len(seen) != 6*16 {
		t.Fatalf("expected 96 distinct ids, got %d", len(seen))
	}
}

func TestDGFaceIDsPeriodicSingleElement(t *testing.T) {
	// One element, periodic in x: its two x faces are the same physical
	// face, so their ids must coincide pointwise.
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{1, 1, 1}, 3, [3]bool{true, false, false})
	ids := b.Partition(0).DGFaceIDs()
	n2 := 9
	for i := 0; i < n2; i++ {
		if ids[0*n2+i] != ids[1*n2+i] {
			t.Fatalf("periodic wrap: x faces differ at %d: %d vs %d", i, ids[i], ids[n2+i])
		}
	}
}

func TestContinuousIDsMatchAcrossElements(t *testing.T) {
	// Continuity: physically coincident points (faces, edges, corners)
	// must share ids. Check by mapping ids back from independent
	// enumeration of the global lattice.
	b := mustBox(t, [3]int{2, 1, 1}, [3]int{2, 2, 1}, 3, [3]bool{})
	n := b.N
	type point struct{ x, y, z int64 }
	byID := map[int64]point{}
	for r := 0; r < b.Ranks(); r++ {
		l := b.Partition(r)
		ids := l.ContinuousIDs()
		for e := 0; e < l.Nel; e++ {
			g := l.GlobalElemCoords(e)
			for k := 0; k < n; k++ {
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						id := ids[e*n*n*n+i+n*j+n*n*k]
						p := point{
							int64(g[0]*(n-1) + i),
							int64(g[1]*(n-1) + j),
							int64(g[2]*(n-1) + k),
						}
						if prev, ok := byID[id]; ok && prev != p {
							t.Fatalf("id %d maps to two physical points %v and %v", id, prev, p)
						}
						byID[id] = p
					}
				}
			}
		}
	}
	// Count distinct lattice points: (2*(3-1)+1) * (2*2+1) * (1*2+1).
	want := 5 * 5 * 3
	if len(byID) != want {
		t.Fatalf("distinct continuous ids = %d, want %d", len(byID), want)
	}
}

func TestContinuousIDsPeriodicWrap(t *testing.T) {
	// Periodic in x: the rightmost lattice plane is the leftmost plane.
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{2, 1, 1}, 3, [3]bool{true, false, false})
	l := b.Partition(0)
	ids := l.ContinuousIDs()
	n := b.N
	n3 := n * n * n
	// Element 1's i = n-1 plane must equal element 0's i = 0 plane.
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			right := ids[1*n3+(n-1)+n*j+n*n*k]
			left := ids[0*n3+0+n*j+n*n*k]
			if right != left {
				t.Fatalf("periodic continuous ids differ at (%d,%d): %d vs %d", j, k, right, left)
			}
		}
	}
}

func TestContinuousIDsSharedFaceCount(t *testing.T) {
	// In a 2x1x1 element mesh (one rank), ids on the shared face appear
	// twice, interior ids once.
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{2, 1, 1}, 4, [3]bool{})
	ids := b.Partition(0).ContinuousIDs()
	counts := map[int64]int{}
	for _, id := range ids {
		counts[id]++
	}
	twice, once := 0, 0
	for _, c := range counts {
		switch c {
		case 1:
			once++
		case 2:
			twice++
		default:
			t.Fatalf("continuous id appears %d times in a 2-element mesh", c)
		}
	}
	if twice != 16 { // the shared 4x4 face
		t.Fatalf("shared ids = %d, want 16", twice)
	}
	if once != 2*64-2*16 {
		t.Fatalf("unshared ids = %d", once)
	}
}

func TestFaceIDRangesDisjointPerDimension(t *testing.T) {
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{3, 4, 5}, 3, [3]bool{})
	// Faces normal to different dimensions must never collide.
	seen := map[int64]int{}
	for g0 := 0; g0 < 3; g0++ {
		for g1 := 0; g1 < 4; g1++ {
			for g2 := 0; g2 < 5; g2++ {
				for f := 0; f < 6; f++ {
					id := b.ElemFaceID([3]int{g0, g1, g2}, f)
					dim := f / 2
					if prev, ok := seen[id]; ok && prev != dim {
						t.Fatalf("face id %d used by dims %d and %d", id, prev, dim)
					}
					seen[id] = dim
				}
			}
		}
	}
}
