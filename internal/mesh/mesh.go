// Package mesh describes the structured computational domain of the
// mini-app: a global box of hexahedral spectral elements distributed over
// a 3D processor grid, exactly as in the paper's Figure 7 setup
// (e.g. 25600 elements as 40 x 40 x 16 over an 8 x 8 x 4 processor grid,
// 5 x 5 x 4 elements per rank). It provides element ownership, face
// adjacency across ranks, and the two global numbering schemes the
// gather-scatter library consumes: per-face-point ids for CMT-bone's
// discontinuous Galerkin surface exchange, and continuous GLL-point ids
// for Nekbone's direct-stiffness summation.
package mesh

import "fmt"

// Box is the global domain description shared by all ranks.
type Box struct {
	ProcGrid [3]int  // ranks per direction
	ElemGrid [3]int  // global elements per direction
	N        int     // LGL points per direction per element
	Periodic [3]bool // wraparound per direction
}

// NewBox validates and builds a Box. ElemGrid must be divisible by
// ProcGrid in every direction (uniform distribution, as in the parent
// code's box meshes).
func NewBox(procGrid, elemGrid [3]int, n int, periodic [3]bool) (*Box, error) {
	if n < 2 {
		return nil, fmt.Errorf("mesh: need at least 2 points per direction, got %d", n)
	}
	for d := 0; d < 3; d++ {
		if procGrid[d] < 1 || elemGrid[d] < 1 {
			return nil, fmt.Errorf("mesh: grids must be positive, got proc %v elem %v", procGrid, elemGrid)
		}
		if elemGrid[d]%procGrid[d] != 0 {
			return nil, fmt.Errorf("mesh: elements %v not divisible by processors %v in dim %d",
				elemGrid, procGrid, d)
		}
	}
	return &Box{ProcGrid: procGrid, ElemGrid: elemGrid, N: n, Periodic: periodic}, nil
}

// Ranks returns the total number of ranks the box is partitioned over.
func (b *Box) Ranks() int { return b.ProcGrid[0] * b.ProcGrid[1] * b.ProcGrid[2] }

// TotalElems returns the global element count.
func (b *Box) TotalElems() int { return b.ElemGrid[0] * b.ElemGrid[1] * b.ElemGrid[2] }

// ElemsPerRank returns the per-rank element counts per direction.
func (b *Box) ElemsPerRank() [3]int {
	return [3]int{
		b.ElemGrid[0] / b.ProcGrid[0],
		b.ElemGrid[1] / b.ProcGrid[1],
		b.ElemGrid[2] / b.ProcGrid[2],
	}
}

// LocalElems returns the number of elements owned by each rank.
func (b *Box) LocalElems() int {
	e := b.ElemsPerRank()
	return e[0] * e[1] * e[2]
}

// RankCoords maps a rank id to processor-grid coordinates (x fastest).
func (b *Box) RankCoords(rank int) [3]int {
	nx, ny := b.ProcGrid[0], b.ProcGrid[1]
	return [3]int{rank % nx, (rank / nx) % ny, rank / (nx * ny)}
}

// RankOf maps processor-grid coordinates to the rank id.
func (b *Box) RankOf(coords [3]int) int {
	return coords[0] + b.ProcGrid[0]*(coords[1]+b.ProcGrid[1]*coords[2])
}

// OwnerOfElem returns the rank owning the element at global element
// coordinates g.
func (b *Box) OwnerOfElem(g [3]int) int {
	per := b.ElemsPerRank()
	return b.RankOf([3]int{g[0] / per[0], g[1] / per[1], g[2] / per[2]})
}

// GlobalElemID linearizes global element coordinates (x fastest).
func (b *Box) GlobalElemID(g [3]int) int64 {
	return int64(g[0]) + int64(b.ElemGrid[0])*(int64(g[1])+int64(b.ElemGrid[1])*int64(g[2]))
}

// Local is one rank's view of the partition: either the uniform box
// split (Box.Partition, Own == nil, a contiguous sub-box) or an
// arbitrary element set under an explicit Ownership
// (Ownership.Partition). In both cases local elements are ordered by
// ascending global element id — for the uniform split that is exactly
// the x-fastest local ordering.
type Local struct {
	Box    *Box
	Rank   int
	Coords [3]int // processor-grid coordinates (uniform split only)
	Elems  [3]int // local elements per direction (uniform split only)
	First  [3]int // global coords of the first (lowest-gid) local element
	Nel    int    // total local elements

	// Own is the explicit ownership map behind this view; nil means the
	// uniform box split.
	Own *Ownership

	// generalized-view element tables (Own != nil only)
	gids    []int64
	globals [][3]int
}

// Partition returns rank's local view.
func (b *Box) Partition(rank int) *Local {
	if rank < 0 || rank >= b.Ranks() {
		panic(fmt.Sprintf("mesh: rank %d outside [0,%d)", rank, b.Ranks()))
	}
	per := b.ElemsPerRank()
	c := b.RankCoords(rank)
	return &Local{
		Box:    b,
		Rank:   rank,
		Coords: c,
		Elems:  per,
		First:  [3]int{c[0] * per[0], c[1] * per[1], c[2] * per[2]},
		Nel:    per[0] * per[1] * per[2],
	}
}

// ElemIndex linearizes local element coordinates (x fastest). Uniform
// box splits only.
func (l *Local) ElemIndex(ex, ey, ez int) int {
	return ex + l.Elems[0]*(ey+l.Elems[1]*ez)
}

// ElemCoords inverts ElemIndex. Uniform box splits only.
func (l *Local) ElemCoords(e int) [3]int {
	nx, ny := l.Elems[0], l.Elems[1]
	return [3]int{e % nx, (e / nx) % ny, e / (nx * ny)}
}

// GlobalElemCoords returns the global coordinates of local element e.
func (l *Local) GlobalElemCoords(e int) [3]int {
	if l.Own != nil {
		return l.globals[e]
	}
	c := l.ElemCoords(e)
	return [3]int{l.First[0] + c[0], l.First[1] + c[1], l.First[2] + c[2]}
}

// GID returns the global element id of local element e.
func (l *Local) GID(e int) int64 {
	if l.Own != nil {
		return l.gids[e]
	}
	return l.Box.GlobalElemID(l.GlobalElemCoords(e))
}

// GIDs returns every local element's global id in local order.
func (l *Local) GIDs() []int64 {
	if l.Own != nil {
		return append([]int64(nil), l.gids...)
	}
	out := make([]int64, l.Nel)
	for e := 0; e < l.Nel; e++ {
		out[e] = l.GID(e)
	}
	return out
}

// LocalElemAt returns the local index of the element at global
// coordinates g, or ok == false when this rank does not own it. It works
// for both uniform and ownership-map views.
func (l *Local) LocalElemAt(g [3]int) (int, bool) {
	if l.Own != nil {
		gid := l.Box.GlobalElemID(g)
		if l.Own.Owner(gid) != l.Rank {
			return 0, false
		}
		return l.Own.LocalIndex(gid), true
	}
	var c [3]int
	for d := 0; d < 3; d++ {
		c[d] = g[d] - l.First[d]
		if c[d] < 0 || c[d] >= l.Elems[d] {
			return 0, false
		}
	}
	return l.ElemIndex(c[0], c[1], c[2]), true
}

// Neighbor describes the element on the other side of a face.
type Neighbor struct {
	Rank int // owning rank (may be the local rank)
	Elem int // local element index on the owning rank
}

// FaceNeighbor returns the neighbor across face f (sem face numbering:
// 2*dim + 0 for minus, 2*dim + 1 for plus) of local element e. ok is
// false at a non-periodic domain boundary.
func (l *Local) FaceNeighbor(e, f int) (nb Neighbor, ok bool) {
	dim := f / 2
	disp := -1
	if f%2 == 1 {
		disp = +1
	}
	g := l.GlobalElemCoords(e)
	g[dim] += disp
	n := l.Box.ElemGrid[dim]
	if g[dim] < 0 || g[dim] >= n {
		if !l.Box.Periodic[dim] {
			return Neighbor{}, false
		}
		g[dim] = ((g[dim] % n) + n) % n
	}
	if l.Own != nil {
		gid := l.Box.GlobalElemID(g)
		return Neighbor{Rank: l.Own.Owner(gid), Elem: l.Own.LocalIndex(gid)}, true
	}
	rank := l.Box.OwnerOfElem(g)
	per := l.Box.ElemsPerRank()
	lc := [3]int{g[0] % per[0], g[1] % per[1], g[2] % per[2]}
	elem := lc[0] + per[0]*(lc[1]+per[1]*lc[2])
	return Neighbor{Rank: rank, Elem: elem}, true
}

// NeighborRanks returns the distinct remote ranks this rank exchanges
// faces with, in ascending order — the nearest-neighbor communication
// stencil (up to 6 for a uniform 3D box decomposition; arbitrary
// ownership maps may touch more).
func (l *Local) NeighborRanks() []int {
	seen := map[int]bool{}
	for e := 0; e < l.Nel; e++ {
		for f := 0; f < 6; f++ {
			if nb, ok := l.FaceNeighbor(e, f); ok && nb.Rank != l.Rank {
				seen[nb.Rank] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	// Insertion sort: the list is short (6 for box splits).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
