package mesh

// Global numbering schemes. The gather-scatter library identifies shared
// degrees of freedom purely by global integer ids (Nek5000's gs_setup
// receives "index sets containing the global ids of the elements"); the
// mesh produces those ids here.

// numPlanes returns how many distinct face planes exist normal to dim:
// one more than the element count on a bounded direction, exactly the
// element count when the direction wraps.
func (b *Box) numPlanes(dim int) int {
	if b.Periodic[dim] {
		return b.ElemGrid[dim]
	}
	return b.ElemGrid[dim] + 1
}

// faceBase returns the first global face id for faces normal to dim.
func (b *Box) faceBase(dim int) int64 {
	base := int64(0)
	for d := 0; d < dim; d++ {
		other := int64(1)
		for o := 0; o < 3; o++ {
			if o != d {
				other *= int64(b.ElemGrid[o])
			}
		}
		base += int64(b.numPlanes(d)) * other
	}
	return base
}

// globalFaceID returns the unique id of the mesh face normal to dim at
// plane index plane, positioned at the element coordinates a, b in the
// two remaining directions (lower dimension first).
func (b *Box) globalFaceID(dim, plane, ca, cb int) int64 {
	if b.Periodic[dim] {
		plane %= b.ElemGrid[dim]
	}
	var na int
	switch dim {
	case 0:
		na = b.ElemGrid[1]
	default:
		na = b.ElemGrid[0]
	}
	return b.faceBase(dim) + int64(plane) + int64(b.numPlanes(dim))*(int64(ca)+int64(na)*int64(cb))
}

// ElemFaceID returns the global face id of face f (sem numbering) of the
// element at global coordinates g.
func (b *Box) ElemFaceID(g [3]int, f int) int64 {
	dim := f / 2
	plane := g[dim]
	if f%2 == 1 {
		plane++
	}
	var ca, cb int
	switch dim {
	case 0:
		ca, cb = g[1], g[2]
	case 1:
		ca, cb = g[0], g[2]
	default:
		ca, cb = g[0], g[1]
	}
	return b.globalFaceID(dim, plane, ca, cb)
}

// DGFaceIDs returns the global id of every face point of every local
// element, in the same layout sem.Full2Face produces face data:
// ids[e*6*N^2 + f*N^2 + (p + N*q)]. Two elements sharing a face see
// identical ids for physically coincident points, so a gather-scatter
// over these ids implements the DG nearest-neighbor surface exchange.
// Face points on non-periodic domain boundaries get ids shared with no
// other rank (the gather-scatter leaves them unchanged).
func (l *Local) DGFaceIDs() []int64 {
	n := l.Box.N
	n2 := n * n
	ids := make([]int64, l.Nel*6*n2)
	for e := 0; e < l.Nel; e++ {
		g := l.GlobalElemCoords(e)
		for f := 0; f < 6; f++ {
			fid := l.Box.ElemFaceID(g, f)
			base := e*6*n2 + f*n2
			for idx := 0; idx < n2; idx++ {
				ids[base+idx] = fid*int64(n2) + int64(idx)
			}
		}
	}
	return ids
}

// pointsPerDir returns the global count of distinct GLL lattice points in
// dimension d for the continuous numbering.
func (b *Box) pointsPerDir(d int) int64 {
	n := int64(b.ElemGrid[d]) * int64(b.N-1)
	if !b.Periodic[d] {
		n++
	}
	return n
}

// ContinuousIDs returns the global GLL-point id of every volume point of
// every local element, layout ids[e*N^3 + (i + N*j + N^2*k)]. Points on
// shared element faces, edges and corners receive the same id in every
// element that touches them — the numbering Nekbone's direct-stiffness
// summation (dssum) gathers over.
func (l *Local) ContinuousIDs() []int64 {
	n := l.Box.N
	n3 := n * n * n
	npx, npy := l.Box.pointsPerDir(0), l.Box.pointsPerDir(1)
	ids := make([]int64, l.Nel*n3)
	for e := 0; e < l.Nel; e++ {
		g := l.GlobalElemCoords(e)
		for k := 0; k < n; k++ {
			gz := lattice(l.Box, 2, g[2], k)
			for j := 0; j < n; j++ {
				gy := lattice(l.Box, 1, g[1], j)
				rowBase := e*n3 + n*j + n*n*k
				for i := 0; i < n; i++ {
					gx := lattice(l.Box, 0, g[0], i)
					ids[rowBase+i] = gx + npx*(gy+npy*gz)
				}
			}
		}
	}
	return ids
}

// lattice maps (global element coordinate, local point index) to the
// global GLL lattice coordinate along dimension d, wrapping when the
// dimension is periodic.
func lattice(b *Box, d, elem, point int) int64 {
	v := int64(elem)*int64(b.N-1) + int64(point)
	if b.Periodic[d] {
		v %= b.pointsPerDir(d)
	}
	return v
}
