package mesh

import (
	"math/rand"
	"testing"
)

func testBox(t *testing.T) *Box {
	t.Helper()
	b, err := NewBox([3]int{2, 2, 1}, [3]int{4, 4, 2}, 4, [3]bool{true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// randomOwnership builds a deterministic arbitrary element->rank map
// with every rank owning at least one element.
func randomOwnership(t *testing.T, b *Box, seed int64) *Ownership {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	owner := make([]int, b.TotalElems())
	for i := range owner {
		owner[i] = rng.Intn(b.Ranks())
	}
	// Guarantee non-empty ranks so every Partition is exercised.
	for r := 0; r < b.Ranks(); r++ {
		owner[r] = r
	}
	o, err := NewOwnership(b, owner)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOwnershipRoundtrip(t *testing.T) {
	b := testBox(t)
	o := randomOwnership(t, b, 7)

	total := 0
	for r := 0; r < b.Ranks(); r++ {
		l := o.Partition(r)
		if l.Nel != o.Count(r) {
			t.Fatalf("rank %d: Nel %d != Count %d", r, l.Nel, o.Count(r))
		}
		total += l.Nel
		prev := int64(-1)
		for e := 0; e < l.Nel; e++ {
			gid := l.GID(e)
			if gid <= prev {
				t.Fatalf("rank %d: gids not ascending at %d: %d after %d", r, e, gid, prev)
			}
			prev = gid
			if o.Owner(gid) != r {
				t.Fatalf("rank %d enumerates element %d owned by %d", r, gid, o.Owner(gid))
			}
			if o.LocalIndex(gid) != e {
				t.Fatalf("LocalIndex(%d) = %d, want %d", gid, o.LocalIndex(gid), e)
			}
			g := l.GlobalElemCoords(e)
			if b.GlobalElemID(g) != gid {
				t.Fatalf("coords %v linearize to %d, want %d", g, b.GlobalElemID(g), gid)
			}
			if idx, ok := l.LocalElemAt(g); !ok || idx != e {
				t.Fatalf("LocalElemAt(%v) = %d,%v want %d,true", g, idx, ok, e)
			}
		}
	}
	if total != b.TotalElems() {
		t.Fatalf("partitions cover %d elements, box has %d", total, b.TotalElems())
	}
}

func TestOwnershipEncodeDecode(t *testing.T) {
	b := testBox(t)
	o := randomOwnership(t, b, 11)
	back, err := DecodeOwnership(b, o.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !o.Equal(back) {
		t.Fatal("decode(encode) differs from original")
	}
}

func TestOwnershipRejectsBadInput(t *testing.T) {
	b := testBox(t)
	if _, err := NewOwnership(b, make([]int, 3)); err == nil {
		t.Error("short owner map accepted")
	}
	bad := make([]int, b.TotalElems())
	bad[5] = b.Ranks()
	if _, err := NewOwnership(b, bad); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

// TestUniformOwnershipMatchesBoxPartition pins the canonical-order
// contract: the explicit uniform map yields element-for-element the same
// local views as the implicit box split, so switching a run from
// Box.Partition to Ownership.Partition changes nothing.
func TestUniformOwnershipMatchesBoxPartition(t *testing.T) {
	b := testBox(t)
	o := b.UniformOwnership()
	if !o.IsUniform() {
		t.Fatal("uniform ownership not recognized as uniform")
	}
	for r := 0; r < b.Ranks(); r++ {
		lu, lo := b.Partition(r), o.Partition(r)
		if lu.Nel != lo.Nel {
			t.Fatalf("rank %d: Nel %d vs %d", r, lu.Nel, lo.Nel)
		}
		for e := 0; e < lu.Nel; e++ {
			if lu.GlobalElemCoords(e) != lo.GlobalElemCoords(e) {
				t.Fatalf("rank %d elem %d: coords %v vs %v", r, e,
					lu.GlobalElemCoords(e), lo.GlobalElemCoords(e))
			}
			for f := 0; f < 6; f++ {
				nu, oku := lu.FaceNeighbor(e, f)
				no, oko := lo.FaceNeighbor(e, f)
				if oku != oko || nu != no {
					t.Fatalf("rank %d elem %d face %d: %v,%v vs %v,%v", r, e, f, nu, oku, no, oko)
				}
			}
		}
		du, do := lu.DGFaceIDs(), lo.DGFaceIDs()
		for i := range du {
			if du[i] != do[i] {
				t.Fatalf("rank %d: DG face id %d differs: %d vs %d", r, i, du[i], do[i])
			}
		}
	}
}

// TestFaceNeighborSymmetryUnderOwnership checks adjacency consistency on
// an arbitrary map: crossing a face and crossing back returns the
// original element, with rank/index agreeing with the ownership tables.
func TestFaceNeighborSymmetryUnderOwnership(t *testing.T) {
	b := testBox(t)
	o := randomOwnership(t, b, 23)
	locals := make([]*Local, b.Ranks())
	for r := range locals {
		locals[r] = o.Partition(r)
	}
	for r, l := range locals {
		for e := 0; e < l.Nel; e++ {
			for f := 0; f < 6; f++ {
				nb, ok := l.FaceNeighbor(e, f)
				if !ok {
					t.Fatalf("periodic box must have all neighbors (rank %d elem %d face %d)", r, e, f)
				}
				back, ok := locals[nb.Rank].FaceNeighbor(nb.Elem, f^1)
				if !ok || back.Rank != r || back.Elem != e {
					t.Fatalf("rank %d elem %d face %d: neighbor %+v round-trips to %+v,%v",
						r, e, f, nb, back, ok)
				}
			}
		}
	}
}

// TestDGFaceIDsConsistentUnderOwnership checks that the gather-scatter
// numbering is partition-independent: every face-point id appears exactly
// twice globally (fully periodic box), under uniform and arbitrary maps
// alike.
func TestDGFaceIDsConsistentUnderOwnership(t *testing.T) {
	b := testBox(t)
	for name, o := range map[string]*Ownership{
		"uniform": b.UniformOwnership(),
		"random":  randomOwnership(t, b, 31),
	} {
		count := map[int64]int{}
		for r := 0; r < b.Ranks(); r++ {
			for _, id := range o.Partition(r).DGFaceIDs() {
				count[id]++
			}
		}
		for id, c := range count {
			if c != 2 {
				t.Fatalf("%s: face-point id %d appears %d times, want 2", name, id, c)
			}
		}
	}
}

func TestOwnershipMaxCount(t *testing.T) {
	b := testBox(t)
	owner := make([]int, b.TotalElems())
	// Rank 0 owns everything except one element per other rank.
	for r := 1; r < b.Ranks(); r++ {
		owner[r] = r
	}
	o, err := NewOwnership(b, owner)
	if err != nil {
		t.Fatal(err)
	}
	want := b.TotalElems() - (b.Ranks() - 1)
	if o.MaxCount() != want {
		t.Fatalf("MaxCount = %d, want %d", o.MaxCount(), want)
	}
}
