package mesh

import (
	"encoding/binary"
	"fmt"
)

// Byte-level wire form of an Ownership map: enough mesh identity to
// validate a decode, then one int32 owner per element. The recovery
// protocol checksums this encoding and allreduces the checksum so every
// survivor proves it re-homed the dead rank's elements identically before
// restoring; it is also the fuzz surface for ownership decoding.
//
// Layout (little endian):
//
//	uint32 magic "OWNR"    uint32 version
//	int32  procGrid[3]     int32 elemGrid[3]     int32 N
//	uint8  periodic[3]     uint8 pad
//	int32  owner[totalElems]
const (
	ownershipWireMagic   uint32 = 0x4f574e52 // "OWNR"
	ownershipWireVersion uint32 = 1
	ownershipWireHeader         = 4 + 4 + 12 + 12 + 4 + 4
)

// WireBytes serializes the ownership map for cross-rank comparison and
// transport.
func (o *Ownership) WireBytes() []byte {
	b := o.box
	out := make([]byte, 0, ownershipWireHeader+4*len(o.owner))
	out = binary.LittleEndian.AppendUint32(out, ownershipWireMagic)
	out = binary.LittleEndian.AppendUint32(out, ownershipWireVersion)
	for d := 0; d < 3; d++ {
		out = binary.LittleEndian.AppendUint32(out, uint32(b.ProcGrid[d]))
	}
	for d := 0; d < 3; d++ {
		out = binary.LittleEndian.AppendUint32(out, uint32(b.ElemGrid[d]))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(b.N))
	for d := 0; d < 3; d++ {
		p := byte(0)
		if b.Periodic[d] {
			p = 1
		}
		out = append(out, p)
	}
	out = append(out, 0)
	for _, r := range o.owner {
		out = binary.LittleEndian.AppendUint32(out, uint32(r))
	}
	return out
}

// DecodeOwnershipWire rebuilds an Ownership from WireBytes output. The
// encoding must describe exactly the given box; arbitrary bytes error
// cleanly (the expected size is derived from the trusted box before any
// element data is touched, so a forged header cannot force a large
// allocation).
func DecodeOwnershipWire(b *Box, data []byte) (*Ownership, error) {
	total := b.TotalElems()
	want := ownershipWireHeader + 4*total
	if len(data) != want {
		return nil, fmt.Errorf("mesh: ownership wire is %d bytes, box needs %d", len(data), want)
	}
	if magic := binary.LittleEndian.Uint32(data[0:]); magic != ownershipWireMagic {
		return nil, fmt.Errorf("mesh: bad ownership wire magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != ownershipWireVersion {
		return nil, fmt.Errorf("mesh: unsupported ownership wire version %d", v)
	}
	off := 8
	for d := 0; d < 3; d++ {
		if g := int(int32(binary.LittleEndian.Uint32(data[off+4*d:]))); g != b.ProcGrid[d] {
			return nil, fmt.Errorf("mesh: ownership wire proc grid differs from box in dim %d: %d vs %d", d, g, b.ProcGrid[d])
		}
	}
	off += 12
	for d := 0; d < 3; d++ {
		if g := int(int32(binary.LittleEndian.Uint32(data[off+4*d:]))); g != b.ElemGrid[d] {
			return nil, fmt.Errorf("mesh: ownership wire elem grid differs from box in dim %d: %d vs %d", d, g, b.ElemGrid[d])
		}
	}
	off += 12
	if n := int(int32(binary.LittleEndian.Uint32(data[off:]))); n != b.N {
		return nil, fmt.Errorf("mesh: ownership wire N=%d, box N=%d", n, b.N)
	}
	off += 4
	for d := 0; d < 3; d++ {
		switch p := data[off+d]; {
		case p > 1:
			return nil, fmt.Errorf("mesh: ownership wire periodic flag %d invalid", p)
		case (p == 1) != b.Periodic[d]:
			return nil, fmt.Errorf("mesh: ownership wire periodicity differs from box in dim %d", d)
		}
	}
	if data[off+3] != 0 {
		return nil, fmt.Errorf("mesh: ownership wire padding not zero")
	}
	off += 4
	owner := make([]int, total)
	for i := range owner {
		owner[i] = int(int32(binary.LittleEndian.Uint32(data[off+4*i:])))
	}
	return NewOwnership(b, owner)
}
