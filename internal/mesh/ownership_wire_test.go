package mesh

import (
	"bytes"
	"testing"
)

func wireTestBox(t testing.TB) *Box {
	t.Helper()
	b, err := NewBox([3]int{2, 2, 1}, [3]int{4, 4, 2}, 5, [3]bool{true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOwnershipWireRoundTrip(t *testing.T) {
	box := wireTestBox(t)
	// Non-uniform ownership so the owner table carries real structure.
	total := box.TotalElems()
	owner := make([]int, total)
	for gid := 0; gid < total; gid++ {
		owner[gid] = (gid * 7) % box.Ranks()
	}
	own, err := NewOwnership(box, owner)
	if err != nil {
		t.Fatal(err)
	}
	data := own.WireBytes()
	back, err := DecodeOwnershipWire(box, data)
	if err != nil {
		t.Fatalf("decoding own encoding: %v", err)
	}
	if !own.Equal(back) {
		t.Fatal("wire round trip changed the ownership")
	}
	// Re-encode determinism: byte-identical.
	if !bytes.Equal(data, back.WireBytes()) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestOwnershipWireRejectsMismatchedBox(t *testing.T) {
	box := wireTestBox(t)
	data := box.UniformOwnership().WireBytes()
	other, err := NewBox([3]int{2, 2, 1}, [3]int{4, 4, 4}, 5, [3]bool{true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeOwnershipWire(other, data); err == nil {
		t.Fatal("decode against a different box accepted")
	}
}

// FuzzDecodeOwnershipWire throws arbitrary bytes at the wire decoder:
// it must either error cleanly or return an ownership that passes
// NewOwnership validation — never panic, never OOM (the length is
// checked against the trusted box before any allocation).
func FuzzDecodeOwnershipWire(f *testing.F) {
	box, err := NewBox([3]int{2, 1, 1}, [3]int{2, 2, 2}, 4, [3]bool{true, true, true})
	if err != nil {
		f.Fatal(err)
	}
	valid := box.UniformOwnership().WireBytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])
	f.Add(valid[:len(valid)-1])
	for _, bit := range []int{0, 77, 200} {
		flipped := append([]byte(nil), valid...)
		flipped[bit/8%len(flipped)] ^= 1 << (bit % 8)
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		own, err := DecodeOwnershipWire(box, data)
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		total := box.TotalElems()
		covered := 0
		for r := 0; r < box.Ranks(); r++ {
			covered += own.Count(r)
		}
		if covered != total {
			t.Fatalf("accepted ownership covers %d of %d elements", covered, total)
		}
	})
}
