package mesh

import (
	"testing"
	"testing/quick"
)

func mustBox(t *testing.T, proc, elem [3]int, n int, periodic [3]bool) *Box {
	t.Helper()
	b, err := NewBox(proc, elem, n, periodic)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox([3]int{2, 1, 1}, [3]int{3, 1, 1}, 4, [3]bool{}); err == nil {
		t.Fatal("indivisible elements must be rejected")
	}
	if _, err := NewBox([3]int{1, 1, 1}, [3]int{1, 1, 1}, 1, [3]bool{}); err == nil {
		t.Fatal("n < 2 must be rejected")
	}
	if _, err := NewBox([3]int{0, 1, 1}, [3]int{1, 1, 1}, 3, [3]bool{}); err == nil {
		t.Fatal("zero proc grid must be rejected")
	}
}

func TestPaperSetupCounts(t *testing.T) {
	// Figure 7: 256 processors as 8x8x4, elements 40x40x16, local 5x5x4,
	// 100 elements per process, 25600 total, N=10.
	b := mustBox(t, [3]int{8, 8, 4}, [3]int{40, 40, 16}, 10, [3]bool{})
	if b.Ranks() != 256 {
		t.Fatalf("ranks = %d", b.Ranks())
	}
	if b.TotalElems() != 25600 {
		t.Fatalf("total elems = %d", b.TotalElems())
	}
	if b.LocalElems() != 100 {
		t.Fatalf("local elems = %d", b.LocalElems())
	}
	if b.ElemsPerRank() != [3]int{5, 5, 4} {
		t.Fatalf("local distribution = %v", b.ElemsPerRank())
	}
}

func TestRankCoordsRoundtrip(t *testing.T) {
	b := mustBox(t, [3]int{3, 2, 4}, [3]int{3, 2, 4}, 3, [3]bool{})
	for r := 0; r < b.Ranks(); r++ {
		if b.RankOf(b.RankCoords(r)) != r {
			t.Fatalf("rank coords roundtrip failed for %d", r)
		}
	}
}

func TestElemIndexRoundtrip(t *testing.T) {
	b := mustBox(t, [3]int{2, 2, 2}, [3]int{4, 6, 2}, 3, [3]bool{})
	l := b.Partition(5)
	for e := 0; e < l.Nel; e++ {
		c := l.ElemCoords(e)
		if l.ElemIndex(c[0], c[1], c[2]) != e {
			t.Fatalf("elem coords roundtrip failed for %d", e)
		}
	}
}

func TestEveryElementOwnedOnce(t *testing.T) {
	b := mustBox(t, [3]int{2, 3, 2}, [3]int{4, 6, 4}, 3, [3]bool{})
	owned := map[int64]int{}
	for r := 0; r < b.Ranks(); r++ {
		l := b.Partition(r)
		for e := 0; e < l.Nel; e++ {
			g := l.GlobalElemCoords(e)
			if b.OwnerOfElem(g) != r {
				t.Fatalf("element %v owned by %d but enumerated by %d", g, b.OwnerOfElem(g), r)
			}
			owned[b.GlobalElemID(g)]++
		}
	}
	if len(owned) != b.TotalElems() {
		t.Fatalf("enumerated %d distinct elements, want %d", len(owned), b.TotalElems())
	}
	for id, c := range owned {
		if c != 1 {
			t.Fatalf("element %d enumerated %d times", id, c)
		}
	}
}

func TestFaceNeighborSymmetry(t *testing.T) {
	// If B is A's neighbor across face f, then A is B's neighbor across
	// the opposite face.
	for _, periodic := range [][3]bool{{false, false, false}, {true, true, true}, {true, false, true}} {
		b := mustBox(t, [3]int{2, 2, 1}, [3]int{4, 4, 3}, 3, periodic)
		for r := 0; r < b.Ranks(); r++ {
			l := b.Partition(r)
			for e := 0; e < l.Nel; e++ {
				for f := 0; f < 6; f++ {
					nb, ok := l.FaceNeighbor(e, f)
					if !ok {
						continue
					}
					ln := b.Partition(nb.Rank)
					back, ok2 := ln.FaceNeighbor(nb.Elem, f^1)
					if !ok2 {
						t.Fatalf("periodic=%v: neighbor of neighbor missing (r%d e%d f%d)", periodic, r, e, f)
					}
					if back.Rank != r || back.Elem != e {
						t.Fatalf("periodic=%v: asymmetric adjacency (r%d e%d f%d -> r%d e%d -> r%d e%d)",
							periodic, r, e, f, nb.Rank, nb.Elem, back.Rank, back.Elem)
					}
				}
			}
		}
	}
}

func TestFaceNeighborBoundaries(t *testing.T) {
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{2, 2, 2}, 3, [3]bool{})
	l := b.Partition(0)
	// Element (0,0,0): minus faces are domain boundaries.
	e := l.ElemIndex(0, 0, 0)
	for _, f := range []int{0, 2, 4} {
		if _, ok := l.FaceNeighbor(e, f); ok {
			t.Fatalf("face %d of corner element should be a boundary", f)
		}
	}
	for _, f := range []int{1, 3, 5} {
		if _, ok := l.FaceNeighbor(e, f); !ok {
			t.Fatalf("face %d of corner element should have a neighbor", f)
		}
	}
}

func TestFaceNeighborPeriodicWrap(t *testing.T) {
	b := mustBox(t, [3]int{2, 1, 1}, [3]int{4, 1, 1}, 3, [3]bool{true, true, true})
	l := b.Partition(0)
	e := l.ElemIndex(0, 0, 0)
	nb, ok := l.FaceNeighbor(e, 0) // x-minus from the first element wraps
	if !ok {
		t.Fatal("periodic wrap missing")
	}
	if nb.Rank != 1 {
		t.Fatalf("wrapped neighbor rank = %d, want 1", nb.Rank)
	}
	lr := b.Partition(1)
	if lr.GlobalElemCoords(nb.Elem) != [3]int{3, 0, 0} {
		t.Fatalf("wrapped neighbor at %v", lr.GlobalElemCoords(nb.Elem))
	}
}

func TestNeighborRanksStencil(t *testing.T) {
	// Interior rank of a 3x3x3 processor grid has exactly 6 face
	// neighbors; corner rank of a non-periodic grid has 3.
	b := mustBox(t, [3]int{3, 3, 3}, [3]int{3, 3, 3}, 3, [3]bool{})
	center := b.RankOf([3]int{1, 1, 1})
	if got := b.Partition(center).NeighborRanks(); len(got) != 6 {
		t.Fatalf("interior rank has %d neighbors: %v", len(got), got)
	}
	corner := b.RankOf([3]int{0, 0, 0})
	if got := b.Partition(corner).NeighborRanks(); len(got) != 3 {
		t.Fatalf("corner rank has %d neighbors: %v", len(got), got)
	}
	// Fully periodic: every rank has 6.
	bp := mustBox(t, [3]int{3, 3, 3}, [3]int{3, 3, 3}, 3, [3]bool{true, true, true})
	if got := bp.Partition(0).NeighborRanks(); len(got) != 6 {
		t.Fatalf("periodic corner rank has %d neighbors: %v", len(got), got)
	}
}

func TestNeighborRanksSorted(t *testing.T) {
	b := mustBox(t, [3]int{2, 2, 2}, [3]int{2, 2, 2}, 3, [3]bool{true, true, true})
	for r := 0; r < 8; r++ {
		nbs := b.Partition(r).NeighborRanks()
		for i := 1; i < len(nbs); i++ {
			if nbs[i] <= nbs[i-1] {
				t.Fatalf("rank %d neighbors not sorted: %v", r, nbs)
			}
		}
	}
}

func TestPartitionPanicsOutOfRange(t *testing.T) {
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{1, 1, 1}, 3, [3]bool{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank must panic")
		}
	}()
	b.Partition(1)
}

func TestOwnershipProperty(t *testing.T) {
	// Property: for random valid boxes, every global element's owner
	// enumerates it.
	f := func(px, py, pz, mx, my, mz uint8) bool {
		proc := [3]int{int(px)%3 + 1, int(py)%3 + 1, int(pz)%2 + 1}
		elem := [3]int{proc[0] * (int(mx)%3 + 1), proc[1] * (int(my)%3 + 1), proc[2] * (int(mz)%3 + 1)}
		b, err := NewBox(proc, elem, 3, [3]bool{})
		if err != nil {
			return false
		}
		count := 0
		for r := 0; r < b.Ranks(); r++ {
			count += b.Partition(r).Nel
		}
		return count == b.TotalElems()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestElemsPerRankAndTotals(t *testing.T) {
	b := mustBox(t, [3]int{2, 4, 1}, [3]int{6, 8, 5}, 4, [3]bool{})
	if b.ElemsPerRank() != [3]int{3, 2, 5} {
		t.Fatalf("per-rank = %v", b.ElemsPerRank())
	}
	if b.LocalElems() != 30 || b.TotalElems() != 240 || b.Ranks() != 8 {
		t.Fatalf("counts: local=%d total=%d ranks=%d", b.LocalElems(), b.TotalElems(), b.Ranks())
	}
}

func TestGlobalElemIDsUniqueAndDense(t *testing.T) {
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{3, 4, 2}, 3, [3]bool{})
	seen := map[int64]bool{}
	for z := 0; z < 2; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 3; x++ {
				id := b.GlobalElemID([3]int{x, y, z})
				if id < 0 || id >= int64(b.TotalElems()) {
					t.Fatalf("id %d out of dense range", id)
				}
				if seen[id] {
					t.Fatalf("duplicate id %d", id)
				}
				seen[id] = true
			}
		}
	}
}

func TestPartialPeriodicityMixedFaces(t *testing.T) {
	// Periodic only in y: x and z boundaries must be walls, y must wrap.
	b := mustBox(t, [3]int{1, 1, 1}, [3]int{2, 2, 2}, 3, [3]bool{false, true, false})
	l := b.Partition(0)
	corner := l.ElemIndex(0, 0, 0)
	if _, ok := l.FaceNeighbor(corner, 0); ok {
		t.Fatal("x-minus should be a boundary")
	}
	if _, ok := l.FaceNeighbor(corner, 2); !ok {
		t.Fatal("y-minus should wrap")
	}
	if _, ok := l.FaceNeighbor(corner, 4); ok {
		t.Fatal("z-minus should be a boundary")
	}
}
