package mesh

// Ownership generalizes the static box split: an explicit map from every
// global element to its owning rank. The dynamic load balancer produces
// these maps from measured per-element costs; the mesh derives Local
// views, face adjacency, and the gather-scatter numberings from them,
// so the rest of the mini-app is agnostic to how elements landed where.
//
// The canonical local ordering on every rank is ascending global element
// id. For the uniform box split this coincides exactly with the existing
// x-fastest local ordering, so uniform Ownership partitions are
// drop-in-identical to Box.Partition views.

import "fmt"

// Ownership is an immutable global element -> rank assignment, shared
// (read-only) by every rank of a run. All ranks must construct it from
// identical inputs.
type Ownership struct {
	box      *Box
	owner    []int32 // global elem id -> owning rank
	localIdx []int32 // global elem id -> local index on its owner
	elems    [][]int64
}

// NewOwnership validates and indexes an element->rank map. owner[gid]
// is the rank owning the element with global id gid (x-fastest
// linearization); its length must equal the box's total element count.
// Ranks may own zero elements.
func NewOwnership(b *Box, owner []int) (*Ownership, error) {
	if len(owner) != b.TotalElems() {
		return nil, fmt.Errorf("mesh: ownership covers %d elements, box has %d", len(owner), b.TotalElems())
	}
	o := &Ownership{
		box:      b,
		owner:    make([]int32, len(owner)),
		localIdx: make([]int32, len(owner)),
		elems:    make([][]int64, b.Ranks()),
	}
	counts := make([]int, b.Ranks())
	for gid, r := range owner {
		if r < 0 || r >= b.Ranks() {
			return nil, fmt.Errorf("mesh: element %d owned by rank %d outside [0,%d)", gid, r, b.Ranks())
		}
		o.owner[gid] = int32(r)
		counts[r]++
	}
	for r := range o.elems {
		o.elems[r] = make([]int64, 0, counts[r])
	}
	// Ascending gid scan yields each rank's elements already in canonical
	// (ascending-gid) local order.
	for gid := range owner {
		r := o.owner[gid]
		o.localIdx[gid] = int32(len(o.elems[r]))
		o.elems[r] = append(o.elems[r], int64(gid))
	}
	return o, nil
}

// UniformOwnership returns the static box split as an explicit map: the
// partition Box.Partition describes implicitly.
func (b *Box) UniformOwnership() *Ownership {
	owner := make([]int, b.TotalElems())
	eg := b.ElemGrid
	for gz := 0; gz < eg[2]; gz++ {
		for gy := 0; gy < eg[1]; gy++ {
			for gx := 0; gx < eg[0]; gx++ {
				g := [3]int{gx, gy, gz}
				owner[b.GlobalElemID(g)] = b.OwnerOfElem(g)
			}
		}
	}
	o, err := NewOwnership(b, owner)
	if err != nil {
		panic(err) // unreachable: the box split is always valid
	}
	return o
}

// Box returns the global domain the ownership partitions.
func (o *Ownership) Box() *Box { return o.box }

// Owner returns the rank owning the element with global id gid.
func (o *Ownership) Owner(gid int64) int { return int(o.owner[gid]) }

// LocalIndex returns the local element index of gid on its owning rank
// (the canonical ascending-gid position).
func (o *Ownership) LocalIndex(gid int64) int { return int(o.localIdx[gid]) }

// Count returns how many elements rank owns.
func (o *Ownership) Count(rank int) int { return len(o.elems[rank]) }

// Elements returns rank's global element ids in canonical (ascending)
// order. The slice is shared; do not mutate.
func (o *Ownership) Elements(rank int) []int64 { return o.elems[rank] }

// MaxCount returns the largest per-rank element count (the element-count
// imbalance numerator).
func (o *Ownership) MaxCount() int {
	max := 0
	for _, e := range o.elems {
		if len(e) > max {
			max = len(e)
		}
	}
	return max
}

// Encode serializes the owner map for the wire (Bcast after a
// repartitioning decision).
func (o *Ownership) Encode() []int64 {
	out := make([]int64, len(o.owner))
	for i, r := range o.owner {
		out[i] = int64(r)
	}
	return out
}

// DecodeOwnership rebuilds an Ownership from Encode's wire form.
func DecodeOwnership(b *Box, wire []int64) (*Ownership, error) {
	owner := make([]int, len(wire))
	for i, r := range wire {
		owner[i] = int(r)
	}
	return NewOwnership(b, owner)
}

// Equal reports whether two ownerships assign every element identically.
func (o *Ownership) Equal(p *Ownership) bool {
	if len(o.owner) != len(p.owner) {
		return false
	}
	for i, r := range o.owner {
		if r != p.owner[i] {
			return false
		}
	}
	return true
}

// IsUniform reports whether the map coincides with the static box split.
func (o *Ownership) IsUniform() bool {
	eg := o.box.ElemGrid
	for gz := 0; gz < eg[2]; gz++ {
		for gy := 0; gy < eg[1]; gy++ {
			for gx := 0; gx < eg[0]; gx++ {
				g := [3]int{gx, gy, gz}
				if int(o.owner[o.box.GlobalElemID(g)]) != o.box.OwnerOfElem(g) {
					return false
				}
			}
		}
	}
	return true
}

// elemCoordsOf inverts GlobalElemID.
func (b *Box) elemCoordsOf(gid int64) [3]int {
	nx, ny := int64(b.ElemGrid[0]), int64(b.ElemGrid[1])
	return [3]int{int(gid % nx), int((gid / nx) % ny), int(gid / (nx * ny))}
}

// Partition returns rank's local view under this ownership. Local
// elements are ordered by ascending global id (the canonical order); for
// a uniform ownership this matches Box.Partition element for element.
func (o *Ownership) Partition(rank int) *Local {
	if rank < 0 || rank >= o.box.Ranks() {
		panic(fmt.Sprintf("mesh: rank %d outside [0,%d)", rank, o.box.Ranks()))
	}
	gids := o.elems[rank]
	globals := make([][3]int, len(gids))
	for i, gid := range gids {
		globals[i] = o.box.elemCoordsOf(gid)
	}
	l := &Local{
		Box:     o.box,
		Rank:    rank,
		Nel:     len(gids),
		Own:     o,
		gids:    gids,
		globals: globals,
	}
	if len(globals) > 0 {
		l.First = globals[0]
	}
	return l
}
