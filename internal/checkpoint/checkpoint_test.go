package checkpoint

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/solver"
)

func mkSolver(t testing.TB, r *comm.Rank, p int) *solver.Solver {
	t.Helper()
	cfg := solver.DefaultConfig(p, 5, 2)
	s, err := solver.New(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
	return s
}

func TestRoundtripInMemory(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1)
		s.Run(2)
		var buf bytes.Buffer
		if err := Write(&buf, s, 2, 0.123); err != nil {
			t.Error(err)
			return nil
		}
		snap, err := Read(&buf)
		if err != nil {
			t.Error(err)
			return nil
		}
		if snap.Meta.Step != 2 || snap.Meta.Time != 0.123 {
			t.Errorf("meta = %+v", snap.Meta)
		}
		for c := 0; c < solver.NumFields; c++ {
			for i := range s.U[c] {
				if snap.U[c][i] != s.U[c][i] {
					t.Errorf("field %d differs at %d", c, i)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsMismatchedMesh(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1)
		var buf bytes.Buffer
		if err := Write(&buf, s, 0, 0); err != nil {
			t.Error(err)
			return nil
		}
		snap, err := Read(&buf)
		if err != nil {
			t.Error(err)
			return nil
		}
		// Solver with a different N must refuse the snapshot.
		cfg := solver.DefaultConfig(1, 6, 2)
		other, err := solver.New(r, cfg)
		if err != nil {
			t.Error(err)
			return nil
		}
		if _, _, err := Restore(other, snap); err == nil {
			t.Error("mesh mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Correct magic, wrong version.
	var buf bytes.Buffer
	buf.Write([]byte{0x42, 0x54, 0x4d, 0x43}) // Magic little-endian
	buf.Write([]byte{0xff, 0, 0, 0})          // version 255
	if _, err := Read(&buf); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestResumeEquivalence(t *testing.T) {
	// Running 6 steps straight must equal running 3, checkpointing,
	// restoring into a fresh solver, and running 3 more.
	const p = 2
	direct := make([][]float64, p)
	resumed := make([][]float64, p)

	_, err := comm.RunSimple(p, func(r *comm.Rank) error {
		s := mkSolver(t, r, p)
		s.Run(6)
		direct[r.ID()] = append([]float64(nil), s.U[solver.IEnergy]...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	snaps := make([]*Snapshot, p)
	_, err = comm.RunSimple(p, func(r *comm.Rank) error {
		s := mkSolver(t, r, p)
		s.Run(3)
		var buf bytes.Buffer
		if err := Write(&buf, s, 3, 0); err != nil {
			return err
		}
		snap, err := Read(&buf)
		if err != nil {
			return err
		}
		snaps[r.ID()] = snap
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	_, err = comm.RunSimple(p, func(r *comm.Rank) error {
		s := mkSolver(t, r, p)
		step, _, err := Restore(s, snaps[r.ID()])
		if err != nil {
			return err
		}
		if step != 3 {
			t.Errorf("restored step = %d", step)
		}
		s.Run(3)
		resumed[r.ID()] = append([]float64(nil), s.U[solver.IEnergy]...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for rank := 0; rank < p; rank++ {
		for i := range direct[rank] {
			if math.Abs(direct[rank][i]-resumed[rank][i]) > 1e-12*(1+math.Abs(direct[rank][i])) {
				t.Fatalf("rank %d: resumed run diverges at %d: %v vs %v",
					rank, i, resumed[rank][i], direct[rank][i])
			}
		}
	}
}

func TestFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		s := mkSolver(t, r, 2)
		s.Run(1)
		if err := WriteFile(dir, "test", s, 1, 0.5); err != nil {
			return err
		}
		snap, err := ReadFile(dir, "test", r.ID())
		if err != nil {
			return err
		}
		if _, tm, err := Restore(s, snap); err != nil || tm != 0.5 {
			t.Errorf("restore: time=%v err=%v", tm, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(t.TempDir(), "nope", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}
