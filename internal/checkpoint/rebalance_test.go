package checkpoint

import (
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/loadbal"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

// rebalCfg is the skewed-load setup shared by the rebalance round-trip
// test: 8 ranks, one octant's elements 4x the cost, so the balancer
// fires within a couple of epochs.
func rebalCfg(t *testing.T) solver.Config {
	t.Helper()
	const np = 8
	cfg := solver.DefaultConfig(np, 5, 2)
	box, err := cfg.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	hot := make(map[int64]float64)
	for _, gid := range box.Partition(3).GIDs() {
		hot[gid] = 4
	}
	cfg.HotElems = hot
	return cfg
}

// stateByGID captures every local element's conserved state keyed by
// global id, so runs on different partitions compare element-for-element.
func stateByGID(s *solver.Solver, into map[int64][]float64, mu *sync.Mutex) {
	n3 := s.Cfg.N * s.Cfg.N * s.Cfg.N
	mu.Lock()
	defer mu.Unlock()
	for e := 0; e < s.Local.Nel; e++ {
		flat := make([]float64, 0, solver.NumFields*n3)
		for c := 0; c < solver.NumFields; c++ {
			flat = append(flat, s.U[c][e*n3:(e+1)*n3]...)
		}
		into[s.Local.GID(e)] = flat
	}
}

// TestRestoreAcrossRebalance checkpoints a run after a dynamic rebalance
// has moved elements off the uniform split, rebuilds the recorded
// ownership from the files alone, restores into solvers constructed on
// that partition, continues the run, and requires the final state to be
// bit-identical to an uninterrupted run.
func TestRestoreAcrossRebalance(t *testing.T) {
	const np, preSteps, postSteps = 8, 6, 3
	cfg := rebalCfg(t)
	dir := t.TempDir()
	var mu sync.Mutex

	// Uninterrupted reference: physics is partition-independent, so a
	// plain run of preSteps+postSteps is the ground truth.
	ref := make(map[int64][]float64)
	_, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		s.Run(preSteps + postSteps)
		stateByGID(s, ref, &mu)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Leg 1: run with the balancer until it has migrated, checkpoint.
	rebalanced := false
	_, err = comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		b := loadbal.New(s, nil, nil, loadbal.Config{Every: 2})
		s.RunWith(preSteps, b.AfterStep)
		if r.ID() == 0 && b.Rebalances > 0 {
			rebalanced = true
		}
		return WriteFile(dir, "reb", s, preSteps, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rebalanced {
		t.Fatal("balancer never fired before the checkpoint; test exercises nothing")
	}

	// Rebuild the partition from the files alone: it must differ from
	// the uniform split.
	box, err := cfg.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	own, err := ReadOwnership(dir, "reb", box)
	if err != nil {
		t.Fatal(err)
	}
	if own.IsUniform() {
		t.Fatal("recorded ownership is uniform; rebalance did not reach the checkpoint")
	}

	// Leg 2: restore onto the recorded partition and finish the run.
	got := make(map[int64][]float64)
	cfg2 := cfg
	cfg2.Ownership = own
	_, err = comm.Run(np, cfg2.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg2)
		if err != nil {
			return err
		}
		defer s.Close()
		snap, err := ReadFile(dir, "reb", r.ID())
		if err != nil {
			return err
		}
		if _, _, err := Restore(s, snap); err != nil {
			return err
		}
		s.Run(postSteps)
		stateByGID(s, got, &mu)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(ref) {
		t.Fatalf("restored run covered %d elements, reference %d", len(got), len(ref))
	}
	for gid, want := range ref {
		g := got[gid]
		for i, v := range want {
			if math.Float64bits(g[i]) != math.Float64bits(v) {
				t.Fatalf("element %d value %d: restored %x != reference %x",
					gid, i, math.Float64bits(g[i]), math.Float64bits(v))
			}
		}
	}
}

// TestRestoreRejectsWrongPartition: restoring a rebalanced snapshot into
// a solver on the uniform split must fail loudly, not corrupt state.
func TestRestoreRejectsWrongPartition(t *testing.T) {
	const np = 8
	cfg := rebalCfg(t)
	dir := t.TempDir()
	_, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		b := loadbal.New(s, nil, nil, loadbal.Config{Every: 2})
		s.RunWith(4, b.AfterStep)
		if b.Rebalances == 0 {
			return nil // decision may differ per epoch; the other ranks agree anyway
		}
		return WriteFile(dir, "wrong", s, 4, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg) // uniform split
		if err != nil {
			return err
		}
		defer s.Close()
		snap, err := ReadFile(dir, "wrong", r.ID())
		if err != nil {
			return nil // this rank moved nothing and kept its uniform set
		}
		if _, _, rerr := Restore(s, snap); rerr == nil && !ownershipMatchesUniform(snap, s) {
			t.Errorf("rank %d: restore accepted a mismatched partition", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ownershipMatchesUniform reports whether the snapshot's gid list equals
// the solver's (uniform) local element set — the only case Restore may
// accept.
func ownershipMatchesUniform(snap *Snapshot, s *solver.Solver) bool {
	gids := s.Local.GIDs()
	if len(snap.GIDs) != len(gids) {
		return false
	}
	for i, g := range gids {
		if snap.GIDs[i] != g {
			return false
		}
	}
	return true
}
