package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/comm"
	"repro/internal/solver"
)

// validCheckpointBytes serializes a real (small) solver state, so the
// fuzzer starts from a fully valid input and mutates deep fields, not
// just the header.
func validCheckpointBytes(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	cfg := solver.DefaultConfig(1, 4, 2)
	if _, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		return Write(&buf, s, 3, 0.25)
	}); err != nil {
		f.Fatalf("building seed checkpoint: %v", err)
	}
	return buf.Bytes()
}

// FuzzRead throws arbitrary bytes at the checkpoint parser; it must
// reject or parse, never panic or allocate absurdly.
func FuzzRead(f *testing.F) {
	// Seed with a valid header prefix and some corruptions.
	valid := []byte{0x42, 0x54, 0x4d, 0x43, 1, 0, 0, 0}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x54, 0x4d, 0x43})
	f.Add(bytes.Repeat([]byte{0xff}, 128))
	// A complete valid checkpoint, plus truncated and bit-flipped copies.
	full := validCheckpointBytes(f)
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-3])
	for _, bit := range []int{17, len(full)*4 + 5, len(full)*8 - 9} {
		flipped := append([]byte(nil), full...)
		flipped[bit/8%len(full)] ^= 1 << (bit % 8)
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against headers claiming giant element counts: Read
		// must fail cleanly, not OOM (the Nel/N sanity check).
		snap, err := Read(bytes.NewReader(data))
		if err == nil && snap == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}

// FuzzReadParticles exercises the particle parser the same way.
func FuzzReadParticles(f *testing.F) {
	f.Add([]byte{0x50, 0x54, 0x4d, 0x43, 1, 0, 0, 0})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ReadParticles(bytes.NewReader(data))
	})
}
