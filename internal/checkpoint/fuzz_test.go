package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the checkpoint parser; it must
// reject or parse, never panic or allocate absurdly.
func FuzzRead(f *testing.F) {
	// Seed with a valid header prefix and some corruptions.
	valid := []byte{0x42, 0x54, 0x4d, 0x43, 1, 0, 0, 0}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x54, 0x4d, 0x43})
	f.Add(bytes.Repeat([]byte{0xff}, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against headers claiming giant element counts: Read
		// must fail cleanly, not OOM (the Nel/N sanity check).
		snap, err := Read(bytes.NewReader(data))
		if err == nil && snap == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}

// FuzzReadParticles exercises the particle parser the same way.
func FuzzReadParticles(f *testing.F) {
	f.Add([]byte{0x50, 0x54, 0x4d, 0x43, 1, 0, 0, 0})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ReadParticles(bytes.NewReader(data))
	})
}
