package checkpoint

import (
	"bytes"
	"fmt"

	"repro/internal/solver"
)

// WriteBytes serializes rank state s at the given step/time into a fresh
// byte slice — byte-for-byte the content WriteFile would put on disk, so
// in-memory checkpoints (job suspend/resume, migration between runner
// slots) and restart files stay one format. No temp-dir round trip.
func WriteBytes(s *solver.Solver, step int64, time float64) ([]byte, error) {
	var buf bytes.Buffer
	// Header + gids + five field arrays of float64.
	n3 := s.Cfg.N * s.Cfg.N * s.Cfg.N
	buf.Grow(8 + 52 + 8*s.Local.Nel + 8*solver.NumFields*s.Local.Nel*n3)
	if err := Write(&buf, s, step, time); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadBytes parses a checkpoint from an in-memory image produced by
// WriteBytes (or read from a checkpoint file — the formats are
// identical).
func ReadBytes(b []byte) (*Snapshot, error) {
	snap, err := Read(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// RestoreBytes is the suspend/resume fast path: decode an in-memory
// checkpoint and copy it into a compatible solver, returning the
// recorded step and simulated time.
func RestoreBytes(s *solver.Solver, b []byte) (step int64, time float64, err error) {
	snap, err := ReadBytes(b)
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: restore from memory: %w", err)
	}
	return Restore(s, snap)
}
