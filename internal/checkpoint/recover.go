package checkpoint

import (
	"fmt"

	"repro/internal/solver"
)

// RestoreRemapped restores a checkpoint set written by nfiles ranks into
// a solver whose partition — and possibly communicator size — no longer
// matches the files: the failure-recovery path, where survivors of a rank
// crash rebuild solvers over a re-homed ownership map and resume from the
// last complete checkpoint. Every calling rank reads all nfiles files and
// copies out the elements its current ownership assigns to it; the mesh
// shape (N, element grid, processor grid — survivors keep the original
// box) is validated against the solver's config, per-file rank/Nel checks
// are deliberately not applied (the partition has changed), and every
// local element must be covered by exactly one file. Collective in
// effect: all ranks must call it against the same checkpoint set.
func RestoreRemapped(s *solver.Solver, dir, tag string, nfiles int) (step int64, simTime float64, err error) {
	if nfiles < 1 {
		return 0, 0, fmt.Errorf("checkpoint: restore from %d files", nfiles)
	}
	own := s.Ownership()
	me := s.Rank.ID()
	n3 := s.Cfg.N * s.Cfg.N * s.Cfg.N
	filled := make([]bool, s.Local.Nel)
	first := true
	for rank := 0; rank < nfiles; rank++ {
		snap, rerr := ReadFile(dir, tag, rank)
		if rerr != nil {
			return 0, 0, rerr
		}
		m := snap.Meta
		if int(m.N) != s.Cfg.N ||
			int(m.ElemGrid[0]) != s.Cfg.ElemGrid[0] ||
			int(m.ElemGrid[1]) != s.Cfg.ElemGrid[1] ||
			int(m.ElemGrid[2]) != s.Cfg.ElemGrid[2] ||
			int(m.ProcGrid[0]) != s.Cfg.ProcGrid[0] ||
			int(m.ProcGrid[1]) != s.Cfg.ProcGrid[1] ||
			int(m.ProcGrid[2]) != s.Cfg.ProcGrid[2] {
			return 0, 0, fmt.Errorf("checkpoint: mesh mismatch in file %d: snapshot N=%d grid=%v procs=%v vs config N=%d grid=%v procs=%v",
				rank, m.N, m.ElemGrid, m.ProcGrid, s.Cfg.N, s.Cfg.ElemGrid, s.Cfg.ProcGrid)
		}
		if first {
			step, simTime = m.Step, m.Time
			first = false
		} else if m.Step != step || m.Time != simTime {
			return 0, 0, fmt.Errorf("checkpoint: file %d is at step %d/time %g, set started at step %d/time %g",
				rank, m.Step, m.Time, step, simTime)
		}
		gids := snap.GIDs
		if gids == nil {
			// Version-1 file: the gid list is the uniform split of the
			// rank recorded in the header.
			if int(m.Rank) < 0 || int(m.Rank) >= s.Local.Box.Ranks() {
				return 0, 0, fmt.Errorf("checkpoint: file %d records rank %d outside the box's %d ranks",
					rank, m.Rank, s.Local.Box.Ranks())
			}
			gids = s.Local.Box.Partition(int(m.Rank)).GIDs()
			if len(gids) != int(m.Nel) {
				return 0, 0, fmt.Errorf("checkpoint: version-1 file %d has %d elements, uniform split gives %d",
					rank, m.Nel, len(gids))
			}
		}
		for e, g := range gids {
			if own.Owner(g) != me {
				continue
			}
			ne := own.LocalIndex(g)
			if filled[ne] {
				return 0, 0, fmt.Errorf("checkpoint: element %d restored twice", g)
			}
			for c := 0; c < solver.NumFields; c++ {
				copy(s.U[c][ne*n3:(ne+1)*n3], snap.U[c][e*n3:(e+1)*n3])
			}
			filled[ne] = true
		}
	}
	for e, ok := range filled {
		if !ok {
			return 0, 0, fmt.Errorf("checkpoint: no file covers local element %d (gid %d)", e, s.Local.GID(e))
		}
	}
	return step, simTime, nil
}
