// Package checkpoint provides restart files for the mini-app: each rank
// serializes its conserved-variable fields plus enough metadata to
// validate a resume. Production Nek-family codes lean on restart files
// for long campaigns; the mini-app carries the same capability so
// checkpoint I/O cost can be included in performance studies.
//
// The format is a fixed little-endian binary layout (stdlib
// encoding/binary): a magic/version header, the mesh shape, the step
// counter and simulation time, the rank's global element id list (format
// version 2 — records arbitrary element->rank ownership so a run can
// checkpoint after a dynamic rebalance and restore the exact partition),
// then the five field arrays. Version-1 files (no gid list, implied
// uniform box split) still read.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/mesh"
	"repro/internal/solver"
)

// Magic identifies checkpoint files ("CMTB" + format version).
const (
	Magic   uint32 = 0x434d5442
	Version uint32 = 2
)

// Meta is the validated header of a checkpoint.
type Meta struct {
	N        int32
	ElemGrid [3]int32
	ProcGrid [3]int32
	Rank     int32
	Nel      int32
	Step     int64
	Time     float64
}

// Snapshot is one rank's checkpoint contents.
type Snapshot struct {
	Meta Meta
	// GIDs lists the rank's global element ids in local (ascending)
	// order. Nil for version-1 files, which imply the uniform box split.
	GIDs []int64
	U    [solver.NumFields][]float64
}

// metaOf captures the solver's identity for the header.
func metaOf(s *solver.Solver, step int64, time float64) Meta {
	return Meta{
		N: int32(s.Cfg.N),
		ElemGrid: [3]int32{int32(s.Cfg.ElemGrid[0]), int32(s.Cfg.ElemGrid[1]),
			int32(s.Cfg.ElemGrid[2])},
		ProcGrid: [3]int32{int32(s.Cfg.ProcGrid[0]), int32(s.Cfg.ProcGrid[1]),
			int32(s.Cfg.ProcGrid[2])},
		Rank: int32(s.Rank.ID()),
		Nel:  int32(s.Local.Nel),
		Step: step,
		Time: time,
	}
}

// Write serializes rank state s at the given step/time to w.
func Write(w io.Writer, s *solver.Solver, step int64, time float64) error {
	meta := metaOf(s, step, time)
	for _, v := range []interface{}{Magic, Version, meta} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("checkpoint: write header: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, s.Local.GIDs()); err != nil {
		return fmt.Errorf("checkpoint: write gids: %w", err)
	}
	n3 := s.Cfg.N * s.Cfg.N * s.Cfg.N
	want := s.Local.Nel * n3
	for c := 0; c < solver.NumFields; c++ {
		if len(s.U[c]) != want {
			return fmt.Errorf("checkpoint: field %d has %d values, want %d", c, len(s.U[c]), want)
		}
		if err := binary.Write(w, binary.LittleEndian, s.U[c]); err != nil {
			return fmt.Errorf("checkpoint: write field %d: %w", c, err)
		}
	}
	return nil
}

// Read parses a checkpoint from r.
func Read(r io.Reader) (*Snapshot, error) {
	var magic, version uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("checkpoint: read version: %w", err)
	}
	if version != 1 && version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", version)
	}
	var snap Snapshot
	if err := binary.Read(r, binary.LittleEndian, &snap.Meta); err != nil {
		return nil, fmt.Errorf("checkpoint: read header: %w", err)
	}
	m := snap.Meta
	if m.N < 2 || m.Nel < 1 {
		return nil, fmt.Errorf("checkpoint: implausible header: N=%d Nel=%d", m.N, m.Nel)
	}
	if version >= 2 {
		gids, err := readInt64sChunked(r, int(m.Nel))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: read gids: %w", err)
		}
		total := int64(m.ElemGrid[0]) * int64(m.ElemGrid[1]) * int64(m.ElemGrid[2])
		for i, g := range gids {
			if g < 0 || g >= total || (i > 0 && g <= gids[i-1]) {
				return nil, fmt.Errorf("checkpoint: gid list not ascending in [0,%d)", total)
			}
		}
		snap.GIDs = gids
	}
	vol := int(m.Nel) * int(m.N) * int(m.N) * int(m.N)
	for c := 0; c < solver.NumFields; c++ {
		// Read in bounded chunks so a forged header claiming a huge
		// element count fails at EOF instead of exhausting memory.
		field, err := readFloatsChunked(r, vol)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: read field %d: %w", c, err)
		}
		for _, v := range field {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("checkpoint: field %d contains NaN", c)
			}
		}
		snap.U[c] = field
	}
	return &snap, nil
}

// readFloatsChunked reads exactly n float64s, allocating as data arrives.
func readFloatsChunked(r io.Reader, n int) ([]float64, error) {
	const chunk = 1 << 16
	out := make([]float64, 0, min(n, chunk))
	buf := make([]float64, chunk)
	for len(out) < n {
		want := n - len(out)
		if want > chunk {
			want = chunk
		}
		if err := binary.Read(r, binary.LittleEndian, buf[:want]); err != nil {
			return nil, err
		}
		out = append(out, buf[:want]...)
	}
	return out, nil
}

// readInt64sChunked reads exactly n int64s, allocating as data arrives —
// like readFloatsChunked, it makes a forged header claiming a huge count
// fail at EOF instead of exhausting memory.
func readInt64sChunked(r io.Reader, n int) ([]int64, error) {
	const chunk = 1 << 16
	out := make([]int64, 0, min(n, chunk))
	buf := make([]int64, chunk)
	for len(out) < n {
		want := n - len(out)
		if want > chunk {
			want = chunk
		}
		if err := binary.Read(r, binary.LittleEndian, buf[:want]); err != nil {
			return nil, err
		}
		out = append(out, buf[:want]...)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Restore copies a snapshot's fields into a compatible solver, returning
// the recorded step and time. The solver must match the snapshot's mesh
// shape and rank.
func Restore(s *solver.Solver, snap *Snapshot) (step int64, time float64, err error) {
	m := snap.Meta
	if int(m.N) != s.Cfg.N ||
		int(m.ElemGrid[0]) != s.Cfg.ElemGrid[0] ||
		int(m.ElemGrid[1]) != s.Cfg.ElemGrid[1] ||
		int(m.ElemGrid[2]) != s.Cfg.ElemGrid[2] ||
		int(m.ProcGrid[0]) != s.Cfg.ProcGrid[0] ||
		int(m.ProcGrid[1]) != s.Cfg.ProcGrid[1] ||
		int(m.ProcGrid[2]) != s.Cfg.ProcGrid[2] {
		return 0, 0, fmt.Errorf("checkpoint: mesh mismatch: snapshot N=%d grid=%v procs=%v vs config N=%d grid=%v procs=%v",
			m.N, m.ElemGrid, m.ProcGrid, s.Cfg.N, s.Cfg.ElemGrid, s.Cfg.ProcGrid)
	}
	if int(m.Rank) != s.Rank.ID() {
		return 0, 0, fmt.Errorf("checkpoint: rank mismatch: snapshot %d, solver %d", m.Rank, s.Rank.ID())
	}
	if int(m.Nel) != s.Local.Nel {
		return 0, 0, fmt.Errorf("checkpoint: element count mismatch: %d vs %d", m.Nel, s.Local.Nel)
	}
	if snap.GIDs != nil {
		for e, g := range s.Local.GIDs() {
			if snap.GIDs[e] != g {
				return 0, 0, fmt.Errorf("checkpoint: element %d is gid %d in snapshot, %d in solver (restore with the snapshot's ownership)",
					e, snap.GIDs[e], g)
			}
		}
	} else if !s.Ownership().IsUniform() {
		return 0, 0, fmt.Errorf("checkpoint: version-1 snapshot implies the uniform split, solver has a rebalanced partition")
	}
	for c := 0; c < solver.NumFields; c++ {
		copy(s.U[c], snap.U[c])
	}
	return m.Step, m.Time, nil
}

// FilePath returns the per-rank checkpoint path under dir for the given
// tag: dir/<tag>.rank<rank>.ckpt.
func FilePath(dir, tag string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.rank%04d.ckpt", tag, rank))
}

// WriteFile checkpoints one rank to its file under dir, creating dir if
// needed.
func WriteFile(dir, tag string, s *solver.Solver, step int64, time float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	path := FilePath(dir, tag, s.Rank.ID())
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := Write(f, s, step, time); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads one rank's checkpoint from dir.
func ReadFile(dir, tag string, rank int) (*Snapshot, error) {
	f, err := os.Open(FilePath(dir, tag, rank))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// ReadOwnership reconstructs the element->rank map recorded by a full
// set of per-rank checkpoint files under dir (headers and gid lists
// only; field data is not read). Pass the resulting Ownership through
// Config.Ownership so the restored run resumes on the exact partition it
// checkpointed with — including one produced by a mid-run rebalance.
// Version-1 checkpoint sets return the uniform split.
func ReadOwnership(dir, tag string, box *mesh.Box) (*mesh.Ownership, error) {
	p := box.Ranks()
	owner := make([]int, box.TotalElems())
	for i := range owner {
		owner[i] = -1
	}
	sawGIDs := false
	for rank := 0; rank < p; rank++ {
		gids, uniform, err := readGIDHeader(dir, tag, rank)
		if err != nil {
			return nil, err
		}
		if uniform {
			gids = box.Partition(rank).GIDs()
		} else {
			sawGIDs = true
		}
		for _, g := range gids {
			if g < 0 || g >= int64(len(owner)) || owner[g] != -1 {
				return nil, fmt.Errorf("checkpoint: rank %d claims gid %d already owned or out of range", rank, g)
			}
			owner[g] = rank
		}
	}
	for g, r := range owner {
		if r == -1 {
			return nil, fmt.Errorf("checkpoint: no rank owns element %d", g)
		}
	}
	if !sawGIDs {
		return box.UniformOwnership(), nil
	}
	return mesh.NewOwnership(box, owner)
}

// readGIDHeader reads one file's header and gid list, stopping before
// the field data. uniform is true for version-1 files.
func readGIDHeader(dir, tag string, rank int) (gids []int64, uniform bool, err error) {
	f, err := os.Open(FilePath(dir, tag, rank))
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	var magic, version uint32
	var meta Meta
	for _, v := range []interface{}{&magic, &version, &meta} {
		if err := binary.Read(f, binary.LittleEndian, v); err != nil {
			return nil, false, fmt.Errorf("checkpoint: read header of rank %d: %w", rank, err)
		}
	}
	if magic != Magic {
		return nil, false, fmt.Errorf("checkpoint: bad magic %#x in rank %d file", magic, rank)
	}
	if version == 1 {
		return nil, true, nil
	}
	if version != Version {
		return nil, false, fmt.Errorf("checkpoint: unsupported version %d in rank %d file", version, rank)
	}
	if int(meta.Rank) != rank {
		return nil, false, fmt.Errorf("checkpoint: rank %d file recorded for rank %d", rank, meta.Rank)
	}
	if meta.Nel < 0 {
		return nil, false, fmt.Errorf("checkpoint: negative element count in rank %d file", rank)
	}
	gids, err = readInt64sChunked(f, int(meta.Nel))
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: read gids of rank %d: %w", rank, err)
	}
	return gids, false, nil
}
