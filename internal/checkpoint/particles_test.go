package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/comm"
	"repro/internal/particles"
	"repro/internal/solver"
)

func TestParticleRoundtrip(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(1, 5, 2)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(func(x, y, z float64) [solver.NumFields]float64 {
			return solver.UniformState(1, 0.2, 0, 0, 1/solver.Gamma)
		})
		c, err := particles.New(s, particles.Config{Tau: 0.1})
		if err != nil {
			return err
		}
		c.Seed(30, 1)
		for i := 0; i < 5; i++ {
			c.Step(0.01)
		}
		before := append([]particles.Particle(nil), c.Particles()...)

		var buf bytes.Buffer
		if err := WriteParticles(&buf, c, r.ID()); err != nil {
			t.Error(err)
			return nil
		}
		rank, ps, err := ReadParticles(&buf)
		if err != nil {
			t.Error(err)
			return nil
		}
		if rank != 0 || len(ps) != len(before) {
			t.Errorf("rank=%d count=%d", rank, len(ps))
			return nil
		}
		for i := range ps {
			if ps[i] != before[i] {
				t.Errorf("particle %d differs: %+v vs %+v", i, ps[i], before[i])
				return nil
			}
		}
		// Restore into a fresh cloud and continue stepping.
		c2, err := particles.New(s, particles.Config{Tau: 0.1})
		if err != nil {
			return err
		}
		c2.SetParticles(ps)
		if c2.Count() != len(before) {
			t.Errorf("restored count %d", c2.Count())
		}
		c2.Step(0.01)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParticleReadRejectsGarbage(t *testing.T) {
	if _, _, err := ReadParticles(bytes.NewReader([]byte{9, 9, 9, 9, 0, 0, 0, 0})); err == nil {
		t.Fatal("garbage accepted")
	}
	// Fluid magic is not particle magic.
	var buf bytes.Buffer
	buf.Write([]byte{0x42, 0x54, 0x4d, 0x43})
	if _, _, err := ReadParticles(&buf); err == nil {
		t.Fatal("fluid checkpoint accepted as particles")
	}
}

func TestParticleEmptyCloud(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(1, 5, 1)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		c, err := particles.New(s, particles.Config{Tau: 0.1})
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := WriteParticles(&buf, c, 0); err != nil {
			t.Error(err)
			return nil
		}
		_, ps, err := ReadParticles(&buf)
		if err != nil {
			t.Error(err)
			return nil
		}
		if len(ps) != 0 {
			t.Errorf("empty cloud read back %d particles", len(ps))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
