package checkpoint

import (
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

// TestRestoreRemappedOntoFewerRanks writes a 4-rank checkpoint mid-run,
// restores it onto 2 ranks under an ownership that re-homes everything
// onto those ranks, and requires the continued run's final state to be
// bit-identical to the uninterrupted 4-rank run — restore across a rank
// count change must be exact.
func TestRestoreRemappedOntoFewerRanks(t *testing.T) {
	const np, preSteps, postSteps = 4, 3, 3
	cfg := solver.DefaultConfig(np, 5, 2)
	dir := t.TempDir()
	var mu sync.Mutex

	// Uninterrupted reference plus the checkpoint files.
	ref := make(map[int64][]float64)
	var simAtCkpt float64
	_, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		for i := 0; i < preSteps; i++ {
			s.AdvanceStep(i)
		}
		if r.ID() == 0 {
			simAtCkpt = s.SimTime()
		}
		if err := WriteFile(dir, "remap", s, preSteps, s.SimTime()); err != nil {
			return err
		}
		for i := preSteps; i < preSteps+postSteps; i++ {
			s.AdvanceStep(i)
		}
		stateByGID(s, ref, &mu)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fold the 4-rank partition onto 2 ranks: rank r's elements go to
	// rank r mod 2.
	box, err := cfg.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	uniform := box.UniformOwnership()
	owner := make([]int, box.TotalElems())
	for gid := range owner {
		owner[gid] = uniform.Owner(int64(gid)) % 2
	}
	folded, err := mesh.NewOwnership(box, owner)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Ownership = folded

	got := make(map[int64][]float64)
	_, err = comm.Run(2, comm.Options{Model: netmodel.QDR}, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg2)
		if err != nil {
			return err
		}
		defer s.Close()
		step, simTime, err := RestoreRemapped(s, dir, "remap", np)
		if err != nil {
			return err
		}
		if step != preSteps {
			t.Errorf("restored step %d, want %d", step, preSteps)
		}
		if r.ID() == 0 && simTime != simAtCkpt {
			t.Errorf("restored sim time %v, want %v", simTime, simAtCkpt)
		}
		s.SetSimTime(simTime)
		for i := preSteps; i < preSteps+postSteps; i++ {
			s.AdvanceStep(i)
		}
		stateByGID(s, got, &mu)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("remapped state covers %d elements, want %d", len(got), len(ref))
	}
	for gid, w := range ref {
		g := got[gid]
		for j := range w {
			if math.Float64bits(g[j]) != math.Float64bits(w[j]) {
				t.Fatalf("element %d value %d differs after remapped restore", gid, j)
			}
		}
	}
}

// TestRestoreRemappedMissingFile: an incomplete checkpoint set fails
// with an error, never a partial silent restore.
func TestRestoreRemappedMissingFile(t *testing.T) {
	cfg := solver.DefaultConfig(1, 4, 2)
	dir := t.TempDir()
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		if err := WriteFile(dir, "part", s, 1, 0); err != nil {
			return err
		}
		// Claim there are two files; only rank 0's exists.
		if _, _, err := RestoreRemapped(s, dir, "part", 2); err == nil {
			t.Error("incomplete checkpoint set restored without error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
