package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/particles"
)

// Particle checkpointing: the dispersed phase serializes alongside the
// fluid so coupled campaigns can resume losslessly.

// ParticleMagic identifies particle checkpoint sections.
const ParticleMagic uint32 = 0x434d5450 // "CMTP"

// particleHeader is the fixed header of a particle checkpoint.
type particleHeader struct {
	Rank  int32
	Count int64
}

// WriteParticles serializes one rank's cloud to w.
func WriteParticles(w io.Writer, c *particles.Cloud, rank int) error {
	hdr := particleHeader{Rank: int32(rank), Count: int64(c.Count())}
	for _, v := range []interface{}{ParticleMagic, Version, hdr} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("checkpoint: particles header: %w", err)
		}
	}
	for _, p := range c.Particles() {
		rec := [7]float64{
			float64(p.ID),
			p.Pos[0], p.Pos[1], p.Pos[2],
			p.Vel[0], p.Vel[1], p.Vel[2],
		}
		if err := binary.Write(w, binary.LittleEndian, rec[:]); err != nil {
			return fmt.Errorf("checkpoint: particle record: %w", err)
		}
	}
	return nil
}

// ReadParticles parses a particle checkpoint, returning the rank it was
// written by and the particles.
func ReadParticles(r io.Reader) (rank int, ps []particles.Particle, err error) {
	var magic, version uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return 0, nil, fmt.Errorf("checkpoint: particles magic: %w", err)
	}
	if magic != ParticleMagic {
		return 0, nil, fmt.Errorf("checkpoint: bad particle magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return 0, nil, err
	}
	if version != Version {
		return 0, nil, fmt.Errorf("checkpoint: unsupported particle version %d", version)
	}
	var hdr particleHeader
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return 0, nil, err
	}
	if hdr.Count < 0 {
		return 0, nil, fmt.Errorf("checkpoint: negative particle count %d", hdr.Count)
	}
	// Append record by record so a forged count fails at EOF instead of
	// pre-allocating unbounded memory.
	rec := make([]float64, 7)
	for i := int64(0); i < hdr.Count; i++ {
		if err := binary.Read(r, binary.LittleEndian, rec); err != nil {
			return 0, nil, fmt.Errorf("checkpoint: particle %d: %w", i, err)
		}
		ps = append(ps, particles.Particle{
			ID:  int64(rec[0]),
			Pos: [3]float64{rec[1], rec[2], rec[3]},
			Vel: [3]float64{rec[4], rec[5], rec[6]},
		})
	}
	return int(hdr.Rank), ps, nil
}
