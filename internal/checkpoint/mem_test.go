package checkpoint

import (
	"bytes"
	"math"
	"os"
	"testing"

	"repro/internal/comm"
	"repro/internal/solver"
)

// TestBytesMatchesFilePath proves the in-memory path and the file path
// are the same format: WriteBytes output is byte-for-byte what WriteFile
// puts on disk, and decoding either image yields equivalent snapshots
// that restore to bit-identical solver state.
func TestBytesMatchesFilePath(t *testing.T) {
	dir := t.TempDir()
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		s := mkSolver(t, r, 2)
		s.Run(3)

		mem, err := WriteBytes(s, 3, 0.375)
		if err != nil {
			t.Error(err)
			return nil
		}
		if err := WriteFile(dir, "eq", s, 3, 0.375); err != nil {
			t.Error(err)
			return nil
		}
		disk, err := os.ReadFile(FilePath(dir, "eq", r.ID()))
		if err != nil {
			t.Error(err)
			return nil
		}
		if !bytes.Equal(mem, disk) {
			t.Errorf("rank %d: in-memory image (%d bytes) differs from the file image (%d bytes)",
				r.ID(), len(mem), len(disk))
			return nil
		}

		fromMem, err := ReadBytes(mem)
		if err != nil {
			t.Error(err)
			return nil
		}
		fromDisk, err := ReadFile(dir, "eq", r.ID())
		if err != nil {
			t.Error(err)
			return nil
		}
		if fromMem.Meta != fromDisk.Meta {
			t.Errorf("rank %d: meta differs: mem %+v disk %+v", r.ID(), fromMem.Meta, fromDisk.Meta)
		}
		for c := 0; c < solver.NumFields; c++ {
			for i := range fromMem.U[c] {
				if math.Float64bits(fromMem.U[c][i]) != math.Float64bits(fromDisk.U[c][i]) {
					t.Errorf("rank %d: field %d differs at %d", r.ID(), c, i)
					return nil
				}
			}
		}

		// Restore onto a fresh solver and compare state bitwise.
		fresh := mkSolver(t, r, 2)
		step, tm, err := RestoreBytes(fresh, mem)
		if err != nil {
			t.Error(err)
			return nil
		}
		if step != 3 || tm != 0.375 {
			t.Errorf("rank %d: restored step=%d time=%v, want 3/0.375", r.ID(), step, tm)
		}
		for c := 0; c < solver.NumFields; c++ {
			for i := range s.U[c] {
				if math.Float64bits(fresh.U[c][i]) != math.Float64bits(s.U[c][i]) {
					t.Errorf("rank %d: restored field %d differs at %d", r.ID(), c, i)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReadBytesRejectsTruncation keeps the in-memory decoder on the same
// guarded path as the file decoder.
func TestReadBytesRejectsTruncation(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1)
		buf, err := WriteBytes(s, 1, 0)
		if err != nil {
			t.Error(err)
			return nil
		}
		if _, err := ReadBytes(buf[:len(buf)/2]); err == nil {
			t.Error("truncated image decoded without error")
		}
		if _, _, err := RestoreBytes(s, nil); err == nil {
			t.Error("empty image restored without error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
