package loadbal

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/netmodel"
	"repro/internal/solver"
)

// runOverlapSim is runSim with compute/communication overlap toggled:
// the balancer's Remap rebuilds the interior/boundary classification and
// the split-phase exchange handles, so a run that migrates elements
// mid-flight must still be bit-identical.
func runOverlapSim(t *testing.T, np, steps int, hot map[int64]float64, lb *Config, overlap bool) (gidState, int) {
	t.Helper()
	cfg := solver.DefaultConfig(np, 5, 2)
	cfg.HotElems = hot
	cfg.Overlap = overlap
	state := make(gidState)
	rebalances := 0
	var mu sync.Mutex
	_, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		var after func(int)
		var b *Balancer
		if lb != nil {
			b = New(s, nil, nil, *lb)
			after = b.AfterStep
		}
		s.RunWith(steps, after)
		local := collect(s)
		mu.Lock()
		for gid, st := range local {
			state[gid] = st
		}
		if b != nil && b.Rebalances > rebalances {
			rebalances = b.Rebalances
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return state, rebalances
}

// TestOverlapWithRebalance: with a hot octant forcing at least one
// mid-run element migration, the overlap run must match the blocking
// run element-for-element — the post-Remap rebuild of the element sets
// and Pending handles must leave no stale topology behind.
func TestOverlapWithRebalance(t *testing.T) {
	const np, steps = 8, 12
	hot := hotRank(t, solver.DefaultConfig(np, 5, 2), 3, 4)
	lb := Config{Every: 2}

	ref, refReb := runOverlapSim(t, np, steps, hot, &lb, false)
	got, gotReb := runOverlapSim(t, np, steps, hot, &lb, true)
	if refReb == 0 || gotReb == 0 {
		t.Fatalf("no rebalances fired (off=%d on=%d); scenario does not exercise Remap", refReb, gotReb)
	}
	requireSameState(t, got, ref, "overlap+loadbal")

	// And against the never-balanced blocking run: overlap plus migration
	// together still change nothing.
	plain, _ := runOverlapSim(t, np, steps, hot, nil, false)
	requireSameState(t, got, plain, "overlap+loadbal vs plain")
}
