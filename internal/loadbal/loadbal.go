// Package loadbal is the dynamic load-balancing subsystem: it watches the
// measured per-element cost of the running solver, and when the rank cost
// imbalance exceeds a threshold — and a model of the migration traffic
// says the move pays for itself within a horizon — it repartitions the
// element mesh along a space-filling curve and migrates element state and
// particles to the new owners mid-run.
//
// The design follows the dynamic load-balancing loop of behavioral
// emulation studies of CMT-nek (Zhai et al., see DESIGN.md): measure,
// decide centrally, migrate collectively. Costs are measured (not
// modeled): each rank attributes its virtual-clock kernel seconds to
// elements by weight share, adds a per-particle surcharge, and smooths
// the result with an EWMA so one noisy epoch cannot thrash the
// partition. Migration moves data only, so the global solution is
// bit-identical to a run that never rebalanced.
package loadbal

// Config tunes the balancer. The zero value picks all defaults.
type Config struct {
	// Threshold is the rank cost imbalance (max/mean modeled seconds per
	// step) above which a rebalance is considered (default 1.2).
	Threshold float64
	// Every is the epoch length: the balancer measures and decides every
	// Every steps (default 10).
	Every int
	// EWMA is the smoothing factor applied to per-element cost samples:
	// cost <- EWMA*sample + (1-EWMA)*cost (default 0.5; 1 disables
	// smoothing).
	EWMA float64
	// ParticleCost is the modeled seconds one resident particle adds to
	// its element per step (default 0: fluid kernel cost only).
	ParticleCost float64
	// Horizon is the number of future steps a new partition is assumed
	// to persist when weighing its one-time migration cost against the
	// per-step makespan gain (default Every).
	Horizon int
	// MinGain is an absolute floor (modeled seconds over the horizon) the
	// net gain must clear before migrating (default 0).
	MinGain float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 1.2
	}
	if c.Every <= 0 {
		c.Every = 10
	}
	if c.EWMA <= 0 || c.EWMA > 1 {
		c.EWMA = 0.5
	}
	if c.Horizon <= 0 {
		c.Horizon = c.Every
	}
	return c
}

// CostModel holds the per-local-element EWMA of measured cost in modeled
// seconds per step. Its state travels with migrated elements as the
// Remap sidecar, so an element's history follows it to its new owner.
type CostModel struct {
	alpha  float64
	cost   []float64
	primed bool
}

// NewCostModel returns a model for nel local elements with smoothing
// factor alpha.
func NewCostModel(alpha float64, nel int) *CostModel {
	return &CostModel{alpha: alpha, cost: make([]float64, nel)}
}

// Update folds one per-element cost sample (seconds per step) into the
// EWMA. The first sample primes the model directly.
func (m *CostModel) Update(sample []float64) {
	if !m.primed {
		copy(m.cost, sample)
		m.primed = true
		return
	}
	a := m.alpha
	for e, s := range sample {
		m.cost[e] = a*s + (1-a)*m.cost[e]
	}
}

// Costs returns the current per-local-element cost estimates. The slice
// is live model state; treat it as read-only.
func (m *CostModel) Costs() []float64 { return m.cost }

// SetCosts replaces the model state with costs reassembled for a new
// local element set (the sidecar returned by Solver.Remap).
func (m *CostModel) SetCosts(c []float64) {
	m.cost = c
	m.primed = true
}
