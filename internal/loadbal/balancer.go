package loadbal

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/particles"
	"repro/internal/solver"
)

// Balancer runs the measure / plan / migrate loop on one rank. Every
// cfg.Every steps it folds the epoch's measured kernel seconds (and
// particle counts) into the cost model, sum-reduces the global per-gid
// cost vector to rank 0, which plans a space-filling-curve repartition
// and broadcasts the decision; when the plan pays, every rank executes
// Solver.Remap and re-migrates its particles. Hook AfterStep into
// Solver.RunWith.
//
// Construction and every epoch are collective: build one Balancer per
// rank with identical Config and call AfterStep on all ranks every step.
type Balancer struct {
	cfg   Config
	s     *solver.Solver
	cloud *particles.Cloud
	cm    *CostModel

	shares     []float64
	prevKernel float64

	// Epochs, Rebalances and Skips count this rank's planning rounds and
	// their outcomes; MovedElems/MovedBytes accumulate this rank's
	// outbound migration volume. Last is the most recent decision.
	Epochs     int
	Rebalances int
	Skips      int
	MovedElems int
	MovedBytes int64
	Last       Decision

	mReb, mSkip, mElems, mBytes *obs.Counter
	gBefore, gAfter             *obs.Gauge
}

// New builds the balancer for one rank. cloud may be nil (no particle
// phase); metrics may be nil. The solver must have been constructed
// already (the balancer reads its initial ownership lazily).
func New(s *solver.Solver, cloud *particles.Cloud, metrics *obs.Registry, cfg Config) *Balancer {
	cfg = cfg.withDefaults()
	b := &Balancer{
		cfg:        cfg,
		s:          s,
		cloud:      cloud,
		cm:         NewCostModel(cfg.EWMA, s.Local.Nel),
		prevKernel: s.KernelSeconds(),
	}
	if metrics != nil {
		b.mReb = metrics.Counter("loadbal_rebalances")
		b.mSkip = metrics.Counter("loadbal_skips")
		b.mElems = metrics.Counter("loadbal_migrated_elems")
		b.mBytes = metrics.Counter("loadbal_migrated_bytes")
		b.gBefore = metrics.Gauge("loadbal_imbalance_before")
		b.gAfter = metrics.Gauge("loadbal_imbalance_after")
	}
	return b
}

// AfterStep is the per-step hook for Solver.RunWith: a no-op except at
// epoch boundaries, where it runs one collective measure/plan/migrate
// round.
func (b *Balancer) AfterStep(step int) {
	if (step+1)%b.cfg.Every != 0 {
		return
	}
	b.epoch()
}

// elemBytes is the wire size of one migrated element (gid + conserved
// fields, doubled when source terms are enabled, + the cost sidecar).
func (b *Balancer) elemBytes() int {
	n := b.s.Cfg.N
	nf := solver.NumFields
	if b.s.Source[0] != nil {
		nf *= 2
	}
	return (1 + nf*n*n*n + 1) * 8
}

// epoch runs one collective measure / plan / migrate round.
func (b *Balancer) epoch() {
	stop := b.s.TraceSpan("rebalance_epoch", obs.CatStep)
	defer stop()

	// Measure: attribute this epoch's kernel seconds to elements by
	// weight share, add the particle surcharge, smooth.
	k := b.s.KernelSeconds()
	perStep := (k - b.prevKernel) / float64(b.cfg.Every)
	b.prevKernel = k
	b.shares = b.s.ElemCostShares(b.shares)
	nel := b.s.Local.Nel
	sample := make([]float64, nel)
	for e := 0; e < nel; e++ {
		sample[e] = b.shares[e] * perStep
	}
	if b.cloud != nil && b.cfg.ParticleCost > 0 {
		for e, c := range b.cloud.CountsPerElem() {
			sample[e] += b.cfg.ParticleCost * float64(c)
		}
	}
	b.cm.Update(sample)

	// Reduce the global per-gid cost vector to the root planner.
	own := b.s.Ownership()
	nGlobal := own.Box().TotalElems()
	gcost := make([]float64, nGlobal)
	for e := 0; e < nel; e++ {
		gcost[b.s.Local.GID(e)] = b.cm.Costs()[e]
	}
	r := b.s.Rank
	r.SetSite("loadbal_plan")
	gcost = r.Reduce(comm.OpSum, 0, gcost)

	// Root plans; the decision and proposed owner map are broadcast so
	// every rank acts identically.
	wire := make([]int64, 1+nGlobal)
	stats := make([]float64, 4)
	if r.ID() == 0 {
		b.Last = Plan(own, gcost, b.elemBytes(), r.Clock().Model(), b.cfg)
		if b.Last.Rebalance {
			wire[0] = 1
		}
		for i, o := range b.Last.Owner {
			wire[1+i] = int64(o)
		}
		stats[0] = b.Last.ImbalanceBefore
		stats[1] = b.Last.ImbalanceAfter
		stats[2] = b.Last.GainPerStep
		stats[3] = b.Last.MigCost
	}
	wire = r.BcastInts(0, wire)
	stats = r.Bcast(0, stats)
	r.SetSite("")
	if r.ID() != 0 {
		b.Last = Decision{
			Rebalance:       wire[0] == 1,
			ImbalanceBefore: stats[0],
			ImbalanceAfter:  stats[1],
			GainPerStep:     stats[2],
			MigCost:         stats[3],
		}
	}
	b.Epochs++
	if b.gBefore != nil {
		b.gBefore.Set(stats[0])
		b.gAfter.Set(stats[1])
	}

	if wire[0] == 0 {
		b.Skips++
		if b.mSkip != nil && r.ID() == 0 {
			b.mSkip.Add(1)
		}
		return
	}

	// Migrate: rebuild ownership from the broadcast owner map, move
	// element state + cost sidecar, then re-route particles (the cloud's
	// owner() consults the solver's new ownership).
	owner := make([]int, nGlobal)
	for i := range owner {
		owner[i] = int(wire[1+i])
	}
	newOwn, err := mesh.NewOwnership(own.Box(), owner)
	if err != nil {
		panic(fmt.Sprintf("loadbal: broadcast plan invalid: %v", err))
	}
	newCost, movedE, movedB := b.s.Remap(newOwn, b.cm.Costs(), 1)
	b.cm.SetCosts(newCost)
	if b.cloud != nil {
		b.cloud.Migrate()
	}
	b.Rebalances++
	b.MovedElems += movedE
	b.MovedBytes += movedB
	if b.mElems != nil {
		b.mElems.Add(int64(movedE))
		b.mBytes.Add(movedB)
		if r.ID() == 0 {
			b.mReb.Add(1)
		}
	}
}
