package loadbal

import (
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/particles"
	"repro/internal/solver"
)

// gidState keys every element's conserved state by global element id, so
// runs with different partitions compare element-for-element.
type gidState map[int64][solver.NumFields][]float64

func collect(s *solver.Solver) gidState {
	n3 := s.Cfg.N * s.Cfg.N * s.Cfg.N
	out := make(gidState, s.Local.Nel)
	for e := 0; e < s.Local.Nel; e++ {
		var st [solver.NumFields][]float64
		for c := 0; c < solver.NumFields; c++ {
			st[c] = append([]float64(nil), s.U[c][e*n3:(e+1)*n3]...)
		}
		out[s.Local.GID(e)] = st
	}
	return out
}

// hotRank returns a HotElems map making every element of the uniform
// split's given rank cost factor-times more.
func hotRank(t *testing.T, cfg solver.Config, rank int, factor float64) map[int64]float64 {
	t.Helper()
	box, err := cfg.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	hot := make(map[int64]float64)
	for _, gid := range box.Partition(rank).GIDs() {
		hot[gid] = factor
	}
	return hot
}

// runSim runs np ranks for steps timesteps, optionally with a balancer,
// and returns the global element-keyed final state, the modeled
// makespan, and the per-rank balancers (nil entries when lb == nil).
func runSim(t *testing.T, np, steps, workers int, hot map[int64]float64, lb *Config, metrics *obs.Registry) (gidState, float64, []*Balancer) {
	t.Helper()
	cfg := solver.DefaultConfig(np, 5, 2)
	cfg.Workers = workers
	cfg.HotElems = hot
	state := make(gidState)
	var mu sync.Mutex
	bals := make([]*Balancer, np)
	stats, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		var after func(int)
		if lb != nil {
			b := New(s, nil, metrics, *lb)
			bals[r.ID()] = b
			after = b.AfterStep
		}
		s.RunWith(steps, after)
		local := collect(s)
		mu.Lock()
		for gid, st := range local {
			state[gid] = st
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return state, stats.MaxVirtualTime(), bals
}

func requireSameState(t *testing.T, got, want gidState, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: covered %d elements, want %d", label, len(got), len(want))
	}
	for gid, w := range want {
		g, ok := got[gid]
		if !ok {
			t.Fatalf("%s: element %d missing", label, gid)
		}
		for c := 0; c < solver.NumFields; c++ {
			for i, v := range w[c] {
				if math.Float64bits(g[c][i]) != math.Float64bits(v) {
					t.Fatalf("%s: element %d field %d point %d: %x != %x",
						label, gid, c, i, math.Float64bits(g[c][i]), math.Float64bits(v))
				}
			}
		}
	}
}

// TestRebalanceBitIdentical is the subsystem's correctness contract:
// migrating elements mid-run must not change one bit of the solution.
// An 8-rank run with one 4x-hot octant rebalances at least once; the
// final per-element state must equal the never-balanced run exactly.
func TestRebalanceBitIdentical(t *testing.T) {
	const np, steps = 8, 12
	hot := hotRank(t, solver.DefaultConfig(np, 5, 2), 3, 4)

	ref, _, _ := runSim(t, np, steps, 1, hot, nil, nil)
	lb := Config{Every: 2}
	got, _, bals := runSim(t, np, steps, 1, hot, &lb, nil)

	reb := 0
	for _, b := range bals {
		if b.Rebalances > 0 {
			reb++
		}
	}
	if reb != np {
		t.Fatalf("expected every rank to see a rebalance, got %d/%d", reb, np)
	}
	requireSameState(t, got, ref, "loadbal on vs off")
}

// TestMakespanReduction is the acceptance criterion: on a skewed load
// (one rank's elements 4x the cost), dynamic load balancing must cut the
// modeled makespan by at least 25% against the static partition.
func TestMakespanReduction(t *testing.T) {
	const np, steps = 8, 12
	hot := hotRank(t, solver.DefaultConfig(np, 5, 2), 3, 4)

	_, static, _ := runSim(t, np, steps, 1, hot, nil, nil)
	lb := Config{Every: 2}
	reg := obs.NewRegistry()
	_, balanced, bals := runSim(t, np, steps, 1, hot, &lb, reg)

	if bals[0].Rebalances == 0 {
		t.Fatal("balancer never fired on a 4x skew")
	}
	reduction := 1 - balanced/static
	t.Logf("makespan: static %.4gs, loadbal %.4gs (%.1f%% reduction; imbalance %.2f -> %.2f)",
		static, balanced, 100*reduction,
		reg.Gauge("loadbal_imbalance_before").Value(), reg.Gauge("loadbal_imbalance_after").Value())
	if reduction < 0.25 {
		t.Fatalf("makespan reduction %.1f%% < 25%% (static %.4g, balanced %.4g)",
			100*reduction, static, balanced)
	}
	if reg.Counter("loadbal_rebalances").Value() == 0 {
		t.Fatal("loadbal_rebalances metric not incremented")
	}
	if reg.Counter("loadbal_migrated_elems").Value() == 0 {
		t.Fatal("loadbal_migrated_elems metric not incremented")
	}
}

// TestBalancedLoadNeverMigrates: with uniform costs the imbalance stays
// ~1, every epoch must decide to skip, and the state is untouched.
func TestBalancedLoadNeverMigrates(t *testing.T) {
	const np, steps = 8, 8
	ref, _, _ := runSim(t, np, steps, 1, nil, nil, nil)
	lb := Config{Every: 2}
	got, _, bals := runSim(t, np, steps, 1, nil, &lb, nil)
	for r, b := range bals {
		if b.Rebalances != 0 {
			t.Fatalf("rank %d rebalanced %d times on a balanced load", r, b.Rebalances)
		}
		if b.Epochs == 0 || b.Skips != b.Epochs {
			t.Fatalf("rank %d epochs=%d skips=%d", r, b.Epochs, b.Skips)
		}
	}
	requireSameState(t, got, ref, "balanced loadbal vs off")
}

// TestRebalanceUnderWorkers runs the full rebalance path with the
// intra-rank worker pool on — the configuration the race detector
// exercises in CI — and requires bit-identity with the serial run. The
// virtual clock is charged analytically, so the measured costs and thus
// the rebalance decisions are identical at any worker count.
func TestRebalanceUnderWorkers(t *testing.T) {
	const np, steps = 8, 8
	hot := hotRank(t, solver.DefaultConfig(np, 5, 2), 3, 4)
	lb := Config{Every: 2}

	ref, refVT, _ := runSim(t, np, steps, 1, hot, &lb, nil)
	got, vt, bals := runSim(t, np, steps, 3, hot, &lb, nil)
	if bals[0].Rebalances == 0 {
		t.Fatal("balancer never fired under workers")
	}
	if vt != refVT {
		t.Fatalf("modeled makespan %v != serial %v", vt, refVT)
	}
	requireSameState(t, got, ref, "workers=3 vs workers=1")
}

// TestRebalanceWithParticles runs the full loop with a particle cloud
// attached: after rebalances have moved elements off the uniform split,
// every particle must sit on the rank that owns its element under the
// new map, and none may be lost.
func TestRebalanceWithParticles(t *testing.T) {
	const np, steps, perRank = 8, 8, 50
	cfg := solver.DefaultConfig(np, 5, 2)
	cfg.HotElems = hotRank(t, cfg, 3, 4)
	rebalanced := false
	_, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		cloud, err := particles.New(s, particles.Config{Tau: 0.5})
		if err != nil {
			return err
		}
		cloud.Seed(perRank, 42)
		b := New(s, cloud, nil, Config{Every: 2, ParticleCost: 1e-7})
		s.RunWith(steps, b.AfterStep)
		if b.Rebalances > 0 && r.ID() == 0 {
			rebalanced = true
		}
		if got := cloud.GlobalCount(); got != np*perRank {
			t.Errorf("rank %d sees %d particles globally, want %d", r.ID(), got, np*perRank)
		}
		// Every local particle must live in a locally owned element.
		own := s.Ownership()
		box := s.Local.Box
		for _, p := range cloud.Particles() {
			var g [3]int
			for d := 0; d < 3; d++ {
				g[d] = int(p.Pos[d])
				if g[d] >= box.ElemGrid[d] {
					g[d] = box.ElemGrid[d] - 1
				}
			}
			if owner := own.Owner(box.GlobalElemID(g)); owner != r.ID() {
				t.Errorf("particle %d at %v lives on rank %d but element belongs to %d",
					p.ID, p.Pos, r.ID(), owner)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rebalanced {
		t.Fatal("balancer never fired with particles attached")
	}
}

// TestGSExchangeOnMigratedTopology forces a maximally scrambled
// partition — round-robin along the Morton chain, every rank's subdomain
// non-contiguous — via a direct Remap, runs more steps on the rebuilt
// gather-scatter topology, and requires bit-identity with the
// uninterrupted run.
func TestGSExchangeOnMigratedTopology(t *testing.T) {
	const np, steps = 8, 6
	cfg := solver.DefaultConfig(np, 5, 2)
	ref, _, _ := runSim(t, np, steps, 1, nil, nil, nil)

	state := make(gidState)
	var mu sync.Mutex
	_, err := comm.Run(np, cfg.CommOptions(netmodel.QDR), func(r *comm.Rank) error {
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		s.Run(2)
		box := s.Local.Box
		order := MortonOrder(box)
		owner := make([]int, len(order))
		for i, gid := range order {
			owner[gid] = i % np
		}
		newOwn, err := mesh.NewOwnership(box, owner)
		if err != nil {
			return err
		}
		s.Remap(newOwn, make([]float64, s.Local.Nel), 1)
		s.Run(steps - 2)
		local := collect(s)
		mu.Lock()
		for gid, st := range local {
			state[gid] = st
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, state, ref, "round-robin remap vs uniform")
}
