package loadbal

import (
	"sort"

	"repro/internal/mesh"
	"repro/internal/netmodel"
)

// spread interleaves two zero bits between the low 21 bits of v (the
// classic Morton bit-spreading sequence).
func spread(v uint64) uint64 {
	v &= (1 << 21) - 1
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// mortonKey returns the Z-order curve index of element coordinates
// (x, y, z).
func mortonKey(x, y, z int) uint64 {
	return spread(uint64(x)) | spread(uint64(y))<<1 | spread(uint64(z))<<2
}

// MortonOrder returns every global element id sorted along the Z-order
// (Morton) space-filling curve. Cutting this chain into contiguous
// chunks yields compact, mostly-connected rank subdomains — the standard
// SFC partitioning trick — so face-exchange surface stays near the
// uniform split's even as ownership chases the load.
func MortonOrder(b *mesh.Box) []int64 {
	type ent struct {
		key uint64
		gid int64
	}
	ents := make([]ent, 0, b.TotalElems())
	var g [3]int
	for g[2] = 0; g[2] < b.ElemGrid[2]; g[2]++ {
		for g[1] = 0; g[1] < b.ElemGrid[1]; g[1]++ {
			for g[0] = 0; g[0] < b.ElemGrid[0]; g[0]++ {
				ents = append(ents, ent{mortonKey(g[0], g[1], g[2]), b.GlobalElemID(g)})
			}
		}
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].key != ents[j].key {
			return ents[i].key < ents[j].key
		}
		return ents[i].gid < ents[j].gid
	})
	order := make([]int64, len(ents))
	for i, e := range ents {
		order[i] = e.gid
	}
	return order
}

// ChainPartition cuts the element chain (gids in SFC order) into p
// contiguous chunks of near-equal total cost — the greedy
// chains-on-chains heuristic. cost is indexed by gid. Every rank
// receives at least one element, and an element lands on the side of the
// ideal boundary that leaves the smaller overshoot. All-zero costs fall
// back to equal element counts. Deterministic.
func ChainPartition(order []int64, cost []float64, p int) []int {
	n := len(order)
	owner := make([]int, len(cost))
	total := 0.0
	for _, gid := range order {
		total += cost[gid]
	}
	if total <= 0 {
		for i, gid := range order {
			owner[gid] = i * p / n
		}
		return owner
	}
	acc, r, cnt := 0.0, 0, 0
	for i, gid := range order {
		if r < p-1 && cnt > 0 {
			target := total * float64(r+1) / float64(p)
			if n-i == p-1-r || acc+cost[gid]/2 >= target {
				r++
				cnt = 0
			}
		}
		owner[gid] = r
		cnt++
		acc += cost[gid]
	}
	return owner
}

// Decision is the outcome of one rebalance planning round.
type Decision struct {
	// Rebalance reports whether the plan is worth executing.
	Rebalance bool
	// ImbalanceBefore / ImbalanceAfter are max/mean rank cost under the
	// current and the proposed ownership.
	ImbalanceBefore float64
	ImbalanceAfter  float64
	// GainPerStep is the modeled makespan reduction per step (seconds):
	// max rank cost before minus after.
	GainPerStep float64
	// MigCost is the estimated one-time migration cost in modeled
	// seconds (bottleneck rank of the element Alltoallv).
	MigCost float64
	// MovedElems is the number of elements changing owner globally.
	MovedElems int
	// Owner is the proposed owner per gid (length TotalElems).
	Owner []int
}

// rankCosts sums the per-gid cost vector into per-rank totals under the
// given owner map.
func rankCosts(owner func(gid int64) int, cost []float64, p int) []float64 {
	per := make([]float64, p)
	for gid, c := range cost {
		per[owner(int64(gid))] += c
	}
	return per
}

// imbalance returns max/mean of per-rank costs (1 = perfectly balanced).
func imbalance(per []float64) float64 {
	max, sum := 0.0, 0.0
	for _, c := range per {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	return max * float64(len(per)) / sum
}

// maxOf returns the largest element of per.
func maxOf(per []float64) float64 {
	m := 0.0
	for _, c := range per {
		if c > m {
			m = c
		}
	}
	return m
}

// Plan decides whether and how to repartition. cur is the current
// ownership, cost the globally reduced per-gid cost vector (modeled
// seconds per step), elemBytes the wire size of one migrated element,
// and model the network used to price the migration Alltoallv. The plan
// rebalances only when the measured imbalance exceeds cfg.Threshold AND
// the makespan gain over cfg.Horizon steps clears the migration cost
// plus cfg.MinGain — a rebalance must pay for itself.
//
// Plan is deterministic; in the distributed loop it runs on the root
// rank only and the decision is broadcast.
func Plan(cur *mesh.Ownership, cost []float64, elemBytes int, model netmodel.Model, cfg Config) Decision {
	cfg = cfg.withDefaults()
	b := cur.Box()
	p := b.Ranks()

	before := rankCosts(cur.Owner, cost, p)
	owner := ChainPartition(MortonOrder(b), cost, p)
	after := rankCosts(func(gid int64) int { return owner[gid] }, cost, p)

	d := Decision{
		ImbalanceBefore: imbalance(before),
		ImbalanceAfter:  imbalance(after),
		GainPerStep:     maxOf(before) - maxOf(after),
		Owner:           owner,
	}

	// Migration traffic per rank: one message per communicating pair,
	// elemBytes per moved element, bottleneck rank pays the epoch.
	outB := make([]float64, p)
	inB := make([]float64, p)
	msgs := make([]int, p)
	pair := make(map[[2]int]bool)
	for gid := range cost {
		src, dst := cur.Owner(int64(gid)), owner[gid]
		if src == dst {
			continue
		}
		d.MovedElems++
		outB[src] += float64(elemBytes)
		inB[dst] += float64(elemBytes)
		if !pair[[2]int{src, dst}] {
			pair[[2]int{src, dst}] = true
			msgs[src]++
			msgs[dst]++
		}
	}
	for r := 0; r < p; r++ {
		c := model.Alpha*float64(msgs[r]) + model.Beta*(outB[r]+inB[r])
		if c > d.MigCost {
			d.MigCost = c
		}
	}

	d.Rebalance = d.MovedElems > 0 &&
		d.ImbalanceBefore > cfg.Threshold &&
		d.GainPerStep*float64(cfg.Horizon) > d.MigCost+cfg.MinGain
	return d
}
