package loadbal

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/netmodel"
)

func edgeBox(t *testing.T) *mesh.Box {
	t.Helper()
	b, err := mesh.NewBox([3]int{2, 2, 1}, [3]int{4, 4, 2}, 5, [3]bool{true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

const edgeElemBytes = 5 * 5 * 5 * 5 * 8 // NumFields * N^3 floats

// TestPlanZeroCostElements: a cost vector of all zeros means no
// measurable imbalance (max/mean defined as 1) — the planner must not
// migrate on it.
func TestPlanZeroCostElements(t *testing.T) {
	box := edgeBox(t)
	cur := box.UniformOwnership()
	cost := make([]float64, box.TotalElems())
	d := Plan(cur, cost, edgeElemBytes, netmodel.QDR, Config{})
	if d.ImbalanceBefore != 1 {
		t.Fatalf("zero-cost imbalance = %v, want the defined value 1", d.ImbalanceBefore)
	}
	if d.Rebalance {
		t.Fatal("planner wants to migrate a perfectly cost-free mesh")
	}
	if d.GainPerStep != 0 {
		t.Fatalf("zero-cost gain = %v, want 0", d.GainPerStep)
	}
}

// TestPlanAllCostOnOneElement: when a single element carries all the
// cost, no partition can beat putting it alone — makespan is that
// element's cost wherever it lives, the gain is 0, and migrating gains
// nothing.
func TestPlanAllCostOnOneElement(t *testing.T) {
	box := edgeBox(t)
	cur := box.UniformOwnership()
	cost := make([]float64, box.TotalElems())
	cost[17] = 3.5
	d := Plan(cur, cost, edgeElemBytes, netmodel.QDR, Config{})
	// Imbalance is maximal (max/mean = p), well over any threshold...
	if want := float64(box.Ranks()); d.ImbalanceBefore != want {
		t.Fatalf("one-hot imbalance = %v, want %v", d.ImbalanceBefore, want)
	}
	// ...but the bottleneck is irreducible, so there is nothing to gain.
	if d.GainPerStep != 0 {
		t.Fatalf("one-hot gain per step = %v, want 0", d.GainPerStep)
	}
	if d.Rebalance {
		t.Fatal("planner wants to migrate although the makespan cannot improve")
	}
}

// skewedCost builds a cost vector with a genuine imbalance the chain
// partitioner can fix: rank 0's elements cost 4x the rest.
func skewedCost(box *mesh.Box) []float64 {
	own := box.UniformOwnership()
	cost := make([]float64, box.TotalElems())
	for gid := range cost {
		if own.Owner(int64(gid)) == 0 {
			cost[gid] = 4e-3
		} else {
			cost[gid] = 1e-3
		}
	}
	return cost
}

// TestPlanPayForItselfThreshold brackets the migration break-even point
// from both sides: with MinGain just below the plan's net gain the
// planner migrates; nudged just above, it refuses. This pins the
// pay-for-itself inequality Gain*Horizon > MigCost + MinGain exactly.
func TestPlanPayForItselfThreshold(t *testing.T) {
	box := edgeBox(t)
	cur := box.UniformOwnership()
	cost := skewedCost(box)
	cfg := Config{Threshold: 1.1, Horizon: 10}

	base := Plan(cur, cost, edgeElemBytes, netmodel.QDR, cfg)
	if !base.Rebalance {
		t.Fatalf("skewed scenario does not trigger at all: %+v", base)
	}
	if base.GainPerStep <= 0 || base.MigCost <= 0 {
		t.Fatalf("degenerate plan: gain=%v migCost=%v", base.GainPerStep, base.MigCost)
	}

	// Net headroom the decision currently clears.
	net := base.GainPerStep*float64(cfg.Horizon) - base.MigCost
	eps := net * 1e-9

	cfg.MinGain = net - eps
	if d := Plan(cur, cost, edgeElemBytes, netmodel.QDR, cfg); !d.Rebalance {
		t.Fatalf("MinGain just below break-even (%v) blocked the migration", cfg.MinGain)
	}
	cfg.MinGain = net + eps
	if d := Plan(cur, cost, edgeElemBytes, netmodel.QDR, cfg); d.Rebalance {
		t.Fatalf("MinGain just above break-even (%v) still migrated", cfg.MinGain)
	}
}

// TestPlanHorizonScalesBreakEven: the same imbalance that pays for
// itself over a long horizon must be refused when the partition will
// only live one step and the migration costs more than one step's gain.
func TestPlanHorizonScalesBreakEven(t *testing.T) {
	box := edgeBox(t)
	cur := box.UniformOwnership()
	cost := skewedCost(box)

	long := Plan(cur, cost, edgeElemBytes, netmodel.QDR, Config{Threshold: 1.1, Horizon: 1000})
	if !long.Rebalance {
		t.Fatalf("long horizon refuses a clearly amortizable migration: %+v", long)
	}
	// Price migration up: a slow network makes MigCost exceed one step's
	// gain, so a one-step horizon cannot pay for it.
	slow := netmodel.Model{Name: "slow", Alpha: 1, Beta: 1e-3, GammaCompute: 1}
	short := Plan(cur, cost, edgeElemBytes, slow, Config{Threshold: 1.1, Horizon: 1})
	if short.Rebalance {
		t.Fatalf("one-step horizon on a slow network still migrates: gain=%v mig=%v",
			short.GainPerStep, short.MigCost)
	}
}
