package loadbal

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/netmodel"
)

func testBox(t *testing.T) *mesh.Box {
	t.Helper()
	b, err := mesh.NewBox([3]int{2, 2, 2}, [3]int{4, 4, 4}, 5, [3]bool{true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMortonOrderIsPermutation(t *testing.T) {
	b := testBox(t)
	order := MortonOrder(b)
	if len(order) != b.TotalElems() {
		t.Fatalf("order has %d entries, want %d", len(order), b.TotalElems())
	}
	seen := make(map[int64]bool, len(order))
	for _, gid := range order {
		if gid < 0 || gid >= int64(b.TotalElems()) || seen[gid] {
			t.Fatalf("gid %d out of range or repeated", gid)
		}
		seen[gid] = true
	}
	// The curve should visit spatial neighbors often: consecutive
	// elements at unit Chebyshev distance for the leading octant.
	c0 := elemCoords(b, order[0])
	if c0 != [3]int{0, 0, 0} {
		t.Fatalf("Z-order must start at the origin, got %v", c0)
	}
}

func elemCoords(b *mesh.Box, gid int64) [3]int {
	var g [3]int
	for g[2] = 0; g[2] < b.ElemGrid[2]; g[2]++ {
		for g[1] = 0; g[1] < b.ElemGrid[1]; g[1]++ {
			for g[0] = 0; g[0] < b.ElemGrid[0]; g[0]++ {
				if b.GlobalElemID(g) == gid {
					return g
				}
			}
		}
	}
	return [3]int{-1, -1, -1}
}

func TestChainPartitionBalancesSkewedCosts(t *testing.T) {
	b := testBox(t)
	order := MortonOrder(b)
	cost := make([]float64, b.TotalElems())
	for gid := range cost {
		cost[gid] = 1
	}
	// One hot octant: the uniform owner 3's elements cost 4x.
	for _, gid := range b.Partition(3).GIDs() {
		cost[gid] = 4
	}
	const p = 8
	owner := ChainPartition(order, cost, p)

	per := make([]float64, p)
	count := make([]int, p)
	for gid, c := range cost {
		r := owner[gid]
		if r < 0 || r >= p {
			t.Fatalf("gid %d assigned to rank %d", gid, r)
		}
		per[r] += c
		count[r]++
	}
	for r := 0; r < p; r++ {
		if count[r] == 0 {
			t.Fatalf("rank %d received no elements", r)
		}
	}
	// Chunks must be contiguous along the chain.
	prev := owner[order[0]]
	for _, gid := range order[1:] {
		if owner[gid] < prev {
			t.Fatalf("ownership not monotone along the chain")
		}
		prev = owner[gid]
	}
	if imb := imbalance(per); imb > 1.5 {
		t.Fatalf("greedy partition imbalance %.3f, want <= 1.5 (per-rank %v)", imb, per)
	}
	// Static split imbalance for reference: 4x octant over 8 equal
	// octants = 4 / ((7+4)/8) = 2.9.
	static := rankCosts(b.UniformOwnership().Owner, cost, p)
	if imbalance(static) < 2 {
		t.Fatalf("test setup lost its skew: static imbalance %.3f", imbalance(static))
	}
}

func TestChainPartitionUniformCostsFallback(t *testing.T) {
	b := testBox(t)
	order := MortonOrder(b)
	const p = 8
	for _, cost := range [][]float64{
		make([]float64, b.TotalElems()), // all-zero: count fallback
		func() []float64 {
			c := make([]float64, b.TotalElems())
			for i := range c {
				c[i] = 2.5
			}
			return c
		}(),
	} {
		owner := ChainPartition(order, cost, p)
		count := make([]int, p)
		for _, r := range owner {
			count[r]++
		}
		for r := 0; r < p; r++ {
			if count[r] != b.TotalElems()/p {
				t.Fatalf("uniform costs: rank %d got %d elements, want %d", r, count[r], b.TotalElems()/p)
			}
		}
	}
}

func TestPlanDecision(t *testing.T) {
	b := testBox(t)
	own := b.UniformOwnership()
	cfg := Config{Threshold: 1.2, Every: 5}
	const elemBytes = 8 * (1 + 5*125 + 1)

	balanced := make([]float64, b.TotalElems())
	for i := range balanced {
		balanced[i] = 1e-4
	}
	d := Plan(own, balanced, elemBytes, netmodel.QDR, cfg)
	if d.Rebalance {
		t.Fatalf("balanced load must not trigger a rebalance: %+v", d)
	}
	if d.ImbalanceBefore > 1.001 {
		t.Fatalf("balanced imbalance %.3f", d.ImbalanceBefore)
	}

	skewed := append([]float64(nil), balanced...)
	for _, gid := range b.Partition(3).GIDs() {
		skewed[gid] = 4e-4
	}
	d = Plan(own, skewed, elemBytes, netmodel.QDR, cfg)
	if !d.Rebalance {
		t.Fatalf("4x skew must trigger a rebalance: %+v", d)
	}
	if d.ImbalanceAfter >= d.ImbalanceBefore {
		t.Fatalf("plan does not improve imbalance: %.3f -> %.3f", d.ImbalanceBefore, d.ImbalanceAfter)
	}
	if d.GainPerStep <= 0 || d.MovedElems == 0 {
		t.Fatalf("degenerate plan: %+v", d)
	}

	// A network so slow the migration never pays must veto the plan.
	glacial := netmodel.Model{Name: "glacial", Alpha: 10, Beta: 1}
	d = Plan(own, skewed, elemBytes, glacial, cfg)
	if d.Rebalance {
		t.Fatalf("migration cost veto failed: gain %.3g over %d steps vs cost %.3g",
			d.GainPerStep, cfg.Every, d.MigCost)
	}
}
