package cli

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sem"
)

func TestParseTriple(t *testing.T) {
	got, err := ParseTriple("8x8x4")
	if err != nil || got != [3]int{8, 8, 4} {
		t.Fatalf("ParseTriple = %v, %v", got, err)
	}
	for _, bad := range []string{"", "8x8", "8x8x4x2", "axbxc", "8x-1x4", "8x0x4"} {
		if _, err := ParseTriple(bad); err == nil {
			t.Errorf("ParseTriple(%q) accepted", bad)
		}
	}
}

func TestParseVariant(t *testing.T) {
	if v, err := ParseVariant("optimized"); err != nil || v != sem.Optimized {
		t.Fatalf("optimized: %v %v", v, err)
	}
	if v, err := ParseVariant("basic"); err != nil || v != sem.Basic {
		t.Fatalf("basic: %v %v", v, err)
	}
	if _, err := ParseVariant("turbo"); err == nil {
		t.Fatal("bad variant accepted")
	}
}

func TestParseMachine(t *testing.T) {
	for _, m := range []hw.Machine{hw.Opteron6378, hw.I52500, hw.Generic} {
		got, err := ParseMachine(m.Name)
		if err != nil || got.Name != m.Name {
			t.Fatalf("ParseMachine(%q): %v %v", m.Name, got, err)
		}
	}
	if _, err := ParseMachine("cray-1"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}
