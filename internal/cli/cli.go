// Package cli holds the small flag-parsing helpers the command-line
// tools share: grid triples ("8x8x4"), kernel variants, and machine
// names.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/hw"
	"repro/internal/sem"
)

// Parse parses the command line like flag.Parse, then rejects stray
// positional arguments: every tool here is flag-driven, so a leftover
// argument is almost always a mistyped flag. On failure it prints the
// offending argument plus the usage text and exits with status 2 — the
// same contract as flag's own parse errors.
func Parse() {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(flag.CommandLine.Output(), "unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
}

// ParseTriple parses "AxBxC" into three positive ints.
func ParseTriple(s string) ([3]int, error) {
	var out [3]int
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return out, fmt.Errorf("want AxBxC, got %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return out, fmt.Errorf("bad component %q in %q", p, s)
		}
		if v < 1 {
			return out, fmt.Errorf("component %d must be positive in %q", v, s)
		}
		out[i] = v
	}
	return out, nil
}

// ParseVariant maps a flag value to a kernel variant.
func ParseVariant(s string) (sem.KernelVariant, error) {
	switch s {
	case "optimized":
		return sem.Optimized, nil
	case "basic":
		return sem.Basic, nil
	}
	return 0, fmt.Errorf("want optimized or basic, got %q", s)
}

// ParseMachine maps a flag value to an hw machine preset.
func ParseMachine(s string) (hw.Machine, error) {
	for _, m := range []hw.Machine{hw.Opteron6378, hw.I52500, hw.Generic} {
		if m.Name == s {
			return m, nil
		}
	}
	return hw.Machine{}, fmt.Errorf("unknown machine %q (want %s, %s, or %s)",
		s, hw.Opteron6378.Name, hw.I52500.Name, hw.Generic.Name)
}
