package cli

import "testing"

func FuzzParseTriple(f *testing.F) {
	for _, seed := range []string{"8x8x4", "1x1x1", "", "x", "axbxc", "8x8", "-1x2x3", "999999x1x1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out, err := ParseTriple(s)
		if err == nil {
			for d := 0; d < 3; d++ {
				if out[d] < 1 {
					t.Fatalf("ParseTriple(%q) accepted nonpositive component %v", s, out)
				}
			}
		}
	})
}
