package particles

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/solver"
)

func mkSolver(t testing.TB, r *comm.Rank, p int, init func(x, y, z float64) [solver.NumFields]float64) *solver.Solver {
	t.Helper()
	cfg := solver.DefaultConfig(p, 5, 2)
	s, err := solver.New(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInitial(init)
	return s
}

// uniformFlow returns an initial condition with constant velocity.
func uniformFlow(u, v, w float64) func(x, y, z float64) [solver.NumFields]float64 {
	return func(x, y, z float64) [solver.NumFields]float64 {
		return solver.UniformState(1, u, v, w, 1/solver.Gamma)
	}
}

func TestSeedAndCount(t *testing.T) {
	_, err := comm.RunSimple(4, func(r *comm.Rank) error {
		s := mkSolver(t, r, 4, uniformFlow(0, 0, 0))
		c, err := New(s, Config{Tau: 0.1})
		if err != nil {
			return err
		}
		c.Seed(25, 1)
		if c.Count() != 25 {
			t.Errorf("rank %d seeded %d", r.ID(), c.Count())
		}
		if g := c.GlobalCount(); g != 100 {
			t.Errorf("global count %d, want 100", g)
		}
		// Every particle must start on its own rank.
		for _, pt := range c.Particles() {
			pos := pt.Pos
			if own, ok := c.owner(&pos); !ok || own != r.ID() {
				t.Errorf("rank %d seeded particle owned by %d", r.ID(), own)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadTau(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1, uniformFlow(0, 0, 0))
		if _, err := New(s, Config{Tau: 0}); err == nil {
			t.Error("Tau=0 must be rejected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFluidVelocityInterpolation(t *testing.T) {
	// With a uniform flow, interpolation at any position must return the
	// exact flow velocity.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1, uniformFlow(0.3, -0.2, 0.1))
		c, err := New(s, Config{Tau: 0.1})
		if err != nil {
			return err
		}
		for _, pos := range [][3]float64{{0.1, 0.1, 0.1}, {0.77, 1.3, 1.99}, {1.5, 0.5, 1.0}} {
			v := c.FluidVelocityAt(pos)
			if math.Abs(v[0]-0.3) > 1e-10 || math.Abs(v[1]+0.2) > 1e-10 || math.Abs(v[2]-0.1) > 1e-10 {
				t.Errorf("velocity at %v = %v", pos, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParticlesRelaxToFluidVelocity(t *testing.T) {
	// In a uniform flow, the Stokes drag law pulls particle velocity
	// toward the fluid velocity exponentially with timescale Tau.
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1, uniformFlow(0.25, 0, 0))
		c, err := New(s, Config{Tau: 0.05})
		if err != nil {
			return err
		}
		c.Seed(20, 2)
		dt := 0.01
		for i := 0; i < 50; i++ {
			c.Step(dt) // frozen fluid: we never advance the solver
		}
		for _, pt := range c.Particles() {
			if math.Abs(pt.Vel[0]-0.25) > 0.01 {
				t.Errorf("particle %d vx = %v, want ~0.25", pt.ID, pt.Vel[0])
			}
			if math.Abs(pt.Vel[1]) > 1e-9 || math.Abs(pt.Vel[2]) > 1e-9 {
				t.Errorf("particle %d picked up transverse velocity %v", pt.ID, pt.Vel)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrationAcrossRanks(t *testing.T) {
	// Particles in a uniform +x flow must cross the rank boundary of a
	// 2-rank x-decomposition and keep the global count (periodic box).
	const p = 2
	_, err := comm.RunSimple(p, func(r *comm.Rank) error {
		s := mkSolver(t, r, p, uniformFlow(0.5, 0, 0))
		c, err := New(s, Config{Tau: 0.02})
		if err != nil {
			return err
		}
		c.Seed(30, 3)
		before := c.GlobalCount()
		moved := int64(0)
		for i := 0; i < 120; i++ {
			c.Step(0.05)
		}
		after := c.GlobalCount()
		if before != after {
			t.Errorf("particle count changed: %d -> %d", before, after)
		}
		// After 120*0.05*0.5 = 3 length units of drift on a 4-wide box,
		// particles must have migrated at least once; check that this
		// rank now holds some particle seeded elsewhere.
		for _, pt := range c.Particles() {
			if pt.ID/1e9 != int64(r.ID()) {
				moved++
			}
		}
		total := r.AllreduceInts(comm.OpSum, []int64{moved})
		if r.ID() == 0 && total[0] == 0 {
			t.Error("no particle ever migrated between ranks")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonPeriodicDropsLeavers(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(1, 5, 2)
		cfg.Periodic = [3]bool{false, false, false}
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(uniformFlow(1, 0, 0))
		c, err := New(s, Config{Tau: 0.01})
		if err != nil {
			return err
		}
		c.Seed(10, 4)
		for i := 0; i < 100; i++ {
			c.Step(0.1) // drift ~10 units across a 2-unit box
		}
		if c.Count() != 0 {
			t.Errorf("%d particles survived leaving a non-periodic domain", c.Count())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTwoWayCouplingDepositsMomentumSource(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1, uniformFlow(0.4, 0, 0))
		c, err := New(s, Config{Tau: 0.05, MassLoading: 0.01})
		if err != nil {
			return err
		}
		c.Seed(50, 5)
		c.Step(0.01)
		// Particles start at rest in a moving fluid: drag accelerates
		// them (+x), so the reaction on the fluid must be negative in x
		// somewhere.
		if s.Source[solver.IMomX] == nil {
			t.Fatal("two-way coupling did not enable sources")
		}
		minSrc := 0.0
		for _, v := range s.Source[solver.IMomX] {
			if v < minSrc {
				minSrc = v
			}
		}
		if minSrc >= 0 {
			t.Error("no negative x-momentum reaction deposited")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoupledRunStable(t *testing.T) {
	// Full two-way coupled run: fluid advances with particle sources;
	// everything must stay finite and mass must still be conserved
	// (particles exchange momentum/energy, not mass).
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		cfg := solver.DefaultConfig(2, 5, 2)
		s, err := solver.New(r, cfg)
		if err != nil {
			return err
		}
		s.SetInitial(solver.GaussianPulse(1, 1, 1, 0.1, 0.5))
		c, err := New(s, Config{Tau: 0.1, MassLoading: 0.005})
		if err != nil {
			return err
		}
		c.Seed(40, 6)
		m0 := s.TotalMass()
		for i := 0; i < 10; i++ {
			dt := s.StableDt()
			c.Step(dt)
			s.Step(dt)
		}
		m1 := s.TotalMass()
		if math.Abs(m1-m0) > 1e-9*math.Abs(m0) {
			t.Errorf("coupled run broke mass conservation: %v -> %v", m0, m1)
		}
		for _, v := range s.U[solver.IRho] {
			if math.IsNaN(v) || v <= 0 {
				t.Errorf("coupled run unstable: rho = %v", v)
				return nil
			}
		}
		if sp := c.MeanSpeed(); math.IsNaN(sp) || sp < 0 {
			t.Errorf("bad mean speed %v", sp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrationAppearsInMPIProfile(t *testing.T) {
	stats, err := comm.RunSimple(2, func(r *comm.Rank) error {
		s := mkSolver(t, r, 2, uniformFlow(0.5, 0, 0))
		c, err := New(s, Config{Tau: 0.02})
		if err != nil {
			return err
		}
		c.Seed(10, 7)
		for i := 0; i < 5; i++ {
			c.Step(0.05)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, site := range stats.AggregateSites() {
		if site.Site == "particle_migrate" && site.Op == "MPI_Alltoallv" {
			found = true
		}
	}
	if !found {
		t.Fatal("particle migration missing from the MPI profile")
	}
}

func TestSchillerNaumannValidation(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1, uniformFlow(0, 0, 0))
		if _, err := New(s, Config{Tau: 0.1, Drag: SchillerNaumann}); err == nil {
			t.Error("SN drag without Diameter/FluidMu must be rejected")
		}
		if _, err := New(s, Config{Tau: 0.1, Drag: SchillerNaumann, Diameter: 1e-3, FluidMu: 1e-4}); err != nil {
			t.Errorf("valid SN config rejected: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchillerNaumannFasterThanStokesAtFiniteRe(t *testing.T) {
	// With a large slip velocity the SN correction accelerates particles
	// toward the fluid faster than pure Stokes drag.
	speedAfter := func(drag DragLaw) float64 {
		var got float64
		_, err := comm.RunSimple(1, func(r *comm.Rank) error {
			s := mkSolver(t, r, 1, uniformFlow(0.5, 0, 0))
			cfg := Config{Tau: 0.5, Drag: drag, Diameter: 0.5, FluidMu: 1e-3}
			c, err := New(s, cfg)
			if err != nil {
				return err
			}
			c.Seed(10, 9)
			for i := 0; i < 10; i++ {
				c.Step(0.01)
			}
			got = c.MeanSpeed()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	stokes := speedAfter(StokesDrag)
	sn := speedAfter(SchillerNaumann)
	if sn <= stokes {
		t.Fatalf("Schiller-Naumann (%v) should outpace Stokes (%v) at finite Re", sn, stokes)
	}
}

func TestDragLawStrings(t *testing.T) {
	if StokesDrag.String() != "stokes" || SchillerNaumann.String() != "schiller-naumann" {
		t.Fatal("drag law names wrong")
	}
}

func TestMeanSquareDisplacementGrowsWithDrift(t *testing.T) {
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		s := mkSolver(t, r, 2, uniformFlow(0.3, 0, 0))
		c, err := New(s, Config{Tau: 0.01})
		if err != nil {
			return err
		}
		c.Seed(20, 11)
		c.MarkOrigins()
		if msd := c.MeanSquareDisplacement(); msd != 0 {
			t.Errorf("MSD at origin mark = %v", msd)
		}
		var prev float64
		for i := 0; i < 4; i++ {
			for j := 0; j < 10; j++ {
				c.Step(0.02)
			}
			msd := c.MeanSquareDisplacement()
			if msd <= prev {
				t.Errorf("MSD not growing under drift: %v after %v", msd, prev)
				return nil
			}
			prev = msd
		}
		// Ballistic regime: displacement ~ u*t once relaxed; MSD of
		// order (0.3 * 0.8)^2 ~ 0.058 after t=0.8.
		if prev < 0.01 || prev > 0.2 {
			t.Errorf("final MSD %v outside the ballistic estimate", prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMSDSurvivesMigration(t *testing.T) {
	// Origins are keyed by id and replicated, so particles crossing rank
	// boundaries keep their reference point.
	_, err := comm.RunSimple(2, func(r *comm.Rank) error {
		s := mkSolver(t, r, 2, uniformFlow(0.5, 0, 0))
		c, err := New(s, Config{Tau: 0.01})
		if err != nil {
			return err
		}
		c.Seed(15, 12)
		c.MarkOrigins()
		migrated := int64(0)
		for i := 0; i < 60; i++ {
			c.Step(0.05)
		}
		for _, pt := range c.Particles() {
			if pt.ID/1e9 != int64(r.ID()) {
				migrated++
			}
		}
		total := r.AllreduceInts(comm.OpSum, []int64{migrated})
		msd := c.MeanSquareDisplacement()
		if r.ID() == 0 {
			if total[0] == 0 {
				t.Error("test needs migration to be meaningful")
			}
			if msd <= 0 {
				t.Errorf("MSD lost after migration: %v", msd)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVelocityVariance(t *testing.T) {
	_, err := comm.RunSimple(1, func(r *comm.Rank) error {
		s := mkSolver(t, r, 1, uniformFlow(0, 0, 0))
		c, err := New(s, Config{Tau: 0.1})
		if err != nil {
			return err
		}
		c.Seed(10, 13)
		// All at rest: zero variance.
		if v := c.VelocityVariance(); v != 0 {
			t.Errorf("variance of resting cloud = %v", v)
		}
		// Hand two particles opposite velocities: nonzero variance.
		ps := c.Particles()
		ps[0].Vel = [3]float64{1, 0, 0}
		ps[1].Vel = [3]float64{-1, 0, 0}
		if v := c.VelocityVariance(); v <= 0 {
			t.Errorf("variance with spread velocities = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
