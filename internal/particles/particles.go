// Package particles implements Lagrangian point-particle tracking — the
// multiphase extension on CMT-nek's roadmap that the paper's Section VII
// says will be added to CMT-bone ("complete multiphase coupling ...
// lagrangian point particle tracking ... will be added"). It supplies the
// two pieces the conceptual model of Section III reserves for the
// dispersed phase:
//
//   - particles advected by the fluid through a Stokes-drag law, with
//     spectral (Lagrange-basis) interpolation of the fluid velocity at
//     off-grid particle positions;
//   - the source term R of the conservation law: the drag reaction
//     deposited back onto the grid (two-way coupling);
//
// plus the communication pattern they introduce: particle migration
// between ranks as positions cross partition boundaries.
package particles

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/sem"
	"repro/internal/solver"
)

// Particle is one point particle: position and velocity in physical
// coordinates, plus an identity that survives migration.
type Particle struct {
	ID  int64
	Pos [3]float64
	Vel [3]float64
}

// floatsPerParticle is the wire size of one particle (id + pos + vel).
const floatsPerParticle = 7

// DragLaw selects the particle drag model.
type DragLaw int

// Drag models.
const (
	// StokesDrag is the linear law dv/dt = (u - v)/Tau, valid for
	// vanishing particle Reynolds number.
	StokesDrag DragLaw = iota
	// SchillerNaumann applies the standard finite-Reynolds correction
	// f = 1 + 0.15 Re_p^0.687 (Re_p < ~1000), the workhorse drag law of
	// particle-laden flow solvers.
	SchillerNaumann
)

// String implements fmt.Stringer.
func (d DragLaw) String() string {
	switch d {
	case StokesDrag:
		return "stokes"
	case SchillerNaumann:
		return "schiller-naumann"
	}
	return fmt.Sprintf("DragLaw(%d)", int(d))
}

// Config tunes the dispersed phase.
type Config struct {
	// Tau is the particle response time of the Stokes drag law
	// dv/dt = (u_fluid - v)/Tau. Smaller means tighter coupling.
	Tau float64
	// MassLoading scales the reaction force deposited per particle in
	// the two-way coupling source; zero disables deposition (one-way).
	MassLoading float64
	// Drag selects the drag model (default StokesDrag).
	Drag DragLaw
	// Diameter is the particle diameter used by finite-Reynolds drag
	// corrections (required for SchillerNaumann).
	Diameter float64
	// FluidMu is the fluid dynamic viscosity entering the particle
	// Reynolds number (required for SchillerNaumann).
	FluidMu float64
}

// Cloud is one rank's share of the particle population, bound to a
// CMT-bone solver instance.
type Cloud struct {
	Cfg  Config
	s    *solver.Solver
	rank *comm.Rank

	parts []Particle

	// origins maps particle ID to its dispersion reference position
	// (set by MarkOrigins; globally replicated so migration does not
	// lose it).
	origins map[int64][3]float64

	// domain extents (elements are unit cubes)
	lx, ly, lz float64
}

// New creates an empty cloud bound to the solver s.
func New(s *solver.Solver, cfg Config) (*Cloud, error) {
	if cfg.Tau <= 0 {
		return nil, fmt.Errorf("particles: Tau must be positive, got %g", cfg.Tau)
	}
	if cfg.Drag == SchillerNaumann && (cfg.Diameter <= 0 || cfg.FluidMu <= 0) {
		return nil, fmt.Errorf("particles: Schiller-Naumann drag needs Diameter and FluidMu > 0")
	}
	eg := s.Cfg.ElemGrid
	return &Cloud{
		Cfg: cfg, s: s, rank: s.Rank,
		lx: float64(eg[0]), ly: float64(eg[1]), lz: float64(eg[2]),
	}, nil
}

// Count returns the local particle count.
func (c *Cloud) Count() int { return len(c.parts) }

// Particles returns the local particles (shared slice; do not mutate
// positions directly — use Step).
func (c *Cloud) Particles() []Particle { return c.parts }

// SetParticles replaces the local population (checkpoint restore). The
// caller is responsible for every particle lying in this rank's
// subdomain; Migrate can repair ownership afterwards if needed.
func (c *Cloud) SetParticles(ps []Particle) {
	c.parts = append(c.parts[:0], ps...)
}

// GlobalCount returns the total particle count across ranks (collective).
func (c *Cloud) GlobalCount() int64 {
	c.rank.SetSite("particle_count")
	out := c.rank.AllreduceInts(comm.OpSum, []int64{int64(len(c.parts))})
	c.rank.SetSite("")
	return out[0]
}

// Seed scatters n particles per rank uniformly over this rank's
// subdomain, at rest, with globally unique ids. Deterministic for a given
// seed. Under a non-uniform element ownership the subdomain is no longer
// a box, so particles land in a uniformly chosen owned element instead.
func (c *Cloud) Seed(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed + int64(c.rank.ID())*7919))
	l := c.s.Local
	if l.Own == nil {
		per := l.Elems
		base := [3]float64{float64(l.First[0]), float64(l.First[1]), float64(l.First[2])}
		ext := [3]float64{float64(per[0]), float64(per[1]), float64(per[2])}
		for i := 0; i < n; i++ {
			c.parts = append(c.parts, Particle{
				ID: int64(c.rank.ID())*1e9 + int64(i),
				Pos: [3]float64{
					base[0] + rng.Float64()*ext[0],
					base[1] + rng.Float64()*ext[1],
					base[2] + rng.Float64()*ext[2],
				},
			})
		}
		return
	}
	if l.Nel == 0 {
		return
	}
	for i := 0; i < n; i++ {
		g := l.GlobalElemCoords(rng.Intn(l.Nel))
		c.parts = append(c.parts, Particle{
			ID: int64(c.rank.ID())*1e9 + int64(i),
			Pos: [3]float64{
				float64(g[0]) + rng.Float64(),
				float64(g[1]) + rng.Float64(),
				float64(g[2]) + rng.Float64(),
			},
		})
	}
}

// elemOf normalizes position p into the domain (wrapping periodic
// directions in place) and returns the global coordinates of the element
// containing it; ok is false when the position is outside a non-periodic
// domain.
func (c *Cloud) elemOf(p *[3]float64) (g [3]int, ok bool) {
	box := c.s.Local.Box
	ext := [3]float64{c.lx, c.ly, c.lz}
	for d := 0; d < 3; d++ {
		if box.Periodic[d] {
			v := math.Mod(p[d], ext[d])
			if v < 0 {
				v += ext[d]
			}
			p[d] = v
		} else if p[d] < 0 || p[d] >= ext[d] {
			return g, false
		}
		g[d] = int(p[d])
		if g[d] >= box.ElemGrid[d] {
			g[d] = box.ElemGrid[d] - 1
		}
	}
	return g, true
}

// owner returns the rank owning position p under the solver's current
// element ownership (the uniform box split until a rebalance migrates
// elements), wrapping periodic directions; ok is false when the position
// is outside a non-periodic domain (the particle is considered to have
// left and is dropped).
func (c *Cloud) owner(p *[3]float64) (int, bool) {
	g, ok := c.elemOf(p)
	if !ok {
		return -1, false
	}
	return c.s.Ownership().Owner(c.s.Local.Box.GlobalElemID(g)), true
}

// CountsPerElem returns the number of local particles inside each local
// element — the particle-density feed of the load balancer's cost model.
func (c *Cloud) CountsPerElem() []int {
	l := c.s.Local
	counts := make([]int, l.Nel)
	for i := range c.parts {
		pos := c.parts[i].Pos
		g, ok := c.elemOf(&pos)
		if !ok {
			continue
		}
		if e, mine := l.LocalElemAt(g); mine {
			counts[e]++
		}
	}
	return counts
}

// FluidVelocityAt interpolates the fluid velocity of the bound solver at
// physical position p, which must lie in this rank's subdomain.
func (c *Cloud) FluidVelocityAt(p [3]float64) [3]float64 {
	l := c.s.Local
	n := c.s.Cfg.N
	// Element and reference coordinates (unit-cube elements).
	var ge [3]int
	var xi [3]float64
	for d := 0; d < 3; d++ {
		e := int(p[d])
		if e >= l.Box.ElemGrid[d] {
			e = l.Box.ElemGrid[d] - 1
		}
		ge[d] = e
		xi[d] = 2*(p[d]-float64(e)) - 1
	}
	le := [3]int{ge[0] - l.First[0], ge[1] - l.First[1], ge[2] - l.First[2]}
	for d := 0; d < 3; d++ {
		if le[d] < 0 || le[d] >= l.Elems[d] {
			panic(fmt.Sprintf("particles: position %v not on rank %d", p, c.rank.ID()))
		}
	}
	elem := l.ElemIndex(le[0], le[1], le[2])
	wi := sem.LagrangeWeights(c.s.Ref.X, xi[0])
	wj := sem.LagrangeWeights(c.s.Ref.X, xi[1])
	wk := sem.LagrangeWeights(c.s.Ref.X, xi[2])

	n3 := n * n * n
	baseIdx := elem * n3
	var mom [3]float64
	rho := 0.0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			wjk := wj[j] * wk[k]
			row := baseIdx + n*j + n*n*k
			for i := 0; i < n; i++ {
				w := wi[i] * wjk
				rho += w * c.s.U[solver.IRho][row+i]
				mom[0] += w * c.s.U[solver.IMomX][row+i]
				mom[1] += w * c.s.U[solver.IMomY][row+i]
				mom[2] += w * c.s.U[solver.IMomZ][row+i]
			}
		}
	}
	inv := 1 / rho
	return [3]float64{mom[0] * inv, mom[1] * inv, mom[2] * inv}
}

// Step advances every particle by dt (forward Euler on the Stokes drag
// law, then advection), deposits the two-way coupling source when
// MassLoading > 0, and migrates particles that left the rank's subdomain.
// Collective.
func (c *Cloud) Step(dt float64) {
	stop := c.s.Prof.Start("particle_update")
	if c.Cfg.MassLoading > 0 {
		c.s.EnableSource()
		c.s.ZeroSource()
	}
	for i := range c.parts {
		p := &c.parts[i]
		uf := c.FluidVelocityAt(p.Pos)
		f := c.dragFactor(p, &uf)
		var drag [3]float64
		for d := 0; d < 3; d++ {
			drag[d] = f * (uf[d] - p.Vel[d]) / c.Cfg.Tau
			p.Vel[d] += dt * drag[d]
			p.Pos[d] += dt * p.Vel[d]
		}
		if c.Cfg.MassLoading > 0 {
			c.deposit(p, drag)
		}
	}
	stop()
	c.Migrate()
}

// dragFactor returns the drag-law multiplier on the Stokes response:
// 1 for Stokes, the Schiller-Naumann correction otherwise. The fluid
// density at the particle is approximated by the background value 1
// (density variations enter at higher order in Re_p).
func (c *Cloud) dragFactor(p *Particle, uf *[3]float64) float64 {
	if c.Cfg.Drag != SchillerNaumann {
		return 1
	}
	slip := math.Sqrt(
		(uf[0]-p.Vel[0])*(uf[0]-p.Vel[0]) +
			(uf[1]-p.Vel[1])*(uf[1]-p.Vel[1]) +
			(uf[2]-p.Vel[2])*(uf[2]-p.Vel[2]))
	rep := slip * c.Cfg.Diameter / c.Cfg.FluidMu
	return 1 + 0.15*math.Pow(rep, 0.687)
}

// deposit adds the drag reaction (Newton's third law: the fluid feels
// -drag per unit particle mass) to the nearest grid node, scaled into a
// nodal source density by the diagonal mass matrix.
func (c *Cloud) deposit(p *Particle, drag [3]float64) {
	l := c.s.Local
	n := c.s.Cfg.N
	ref := c.s.Ref
	var ge [3]int
	var nearest [3]int
	for d := 0; d < 3; d++ {
		e := int(p.Pos[d])
		if e >= l.Box.ElemGrid[d] {
			e = l.Box.ElemGrid[d] - 1
		}
		ge[d] = e
		xi := 2*(p.Pos[d]-float64(e)) - 1
		best, bestDist := 0, math.Inf(1)
		for i, x := range ref.X {
			if dd := math.Abs(x - xi); dd < bestDist {
				best, bestDist = i, dd
			}
		}
		nearest[d] = best
	}
	le := [3]int{ge[0] - l.First[0], ge[1] - l.First[1], ge[2] - l.First[2]}
	elem := l.ElemIndex(le[0], le[1], le[2])
	n3 := n * n * n
	idx := elem*n3 + nearest[0] + n*nearest[1] + n*n*nearest[2]
	// Nodal mass: w_i w_j w_k (h/2)^3 with h = 1.
	mass := ref.W[nearest[0]] * ref.W[nearest[1]] * ref.W[nearest[2]] / 8
	scale := c.Cfg.MassLoading / mass
	c.s.Source[solver.IMomX][idx] -= scale * drag[0]
	c.s.Source[solver.IMomY][idx] -= scale * drag[1]
	c.s.Source[solver.IMomZ][idx] -= scale * drag[2]
	// Energy exchange: work done by the drag on the fluid.
	c.s.Source[solver.IEnergy][idx] -= scale *
		(drag[0]*p.Vel[0] + drag[1]*p.Vel[1] + drag[2]*p.Vel[2])
}

// Migrate routes particles whose positions left this rank's subdomain to
// their new owners, using a generalized all-to-all (the communication
// pattern particle tracking adds to the mini-app). Particles outside a
// non-periodic domain are dropped. Collective.
func (c *Cloud) Migrate() {
	c.rank.SetSite("particle_migrate")
	defer c.rank.SetSite("")
	p := c.rank.Size()
	keep := c.parts[:0]
	outbound := make(map[int][]Particle)
	for _, pt := range c.parts {
		dst, ok := c.owner(&pt.Pos)
		if !ok {
			continue // left the domain
		}
		if dst == c.rank.ID() {
			keep = append(keep, pt)
		} else {
			outbound[dst] = append(outbound[dst], pt)
		}
	}
	c.parts = keep

	counts := make([]int, p)
	var payload []float64
	for dst := 0; dst < p; dst++ {
		pts := outbound[dst]
		counts[dst] = len(pts) * floatsPerParticle
		for _, pt := range pts {
			payload = append(payload,
				float64(pt.ID),
				pt.Pos[0], pt.Pos[1], pt.Pos[2],
				pt.Vel[0], pt.Vel[1], pt.Vel[2])
		}
	}
	recv, _ := c.rank.Alltoallv(payload, counts)
	for i := 0; i+floatsPerParticle <= len(recv); i += floatsPerParticle {
		c.parts = append(c.parts, Particle{
			ID:  int64(recv[i]),
			Pos: [3]float64{recv[i+1], recv[i+2], recv[i+3]},
			Vel: [3]float64{recv[i+4], recv[i+5], recv[i+6]},
		})
	}
}

// MeanSpeed returns the global mean particle speed (collective);
// convenient for tests and examples tracking the dispersed phase.
func (c *Cloud) MeanSpeed() float64 {
	sum := 0.0
	for _, pt := range c.parts {
		sum += math.Sqrt(pt.Vel[0]*pt.Vel[0] + pt.Vel[1]*pt.Vel[1] + pt.Vel[2]*pt.Vel[2])
	}
	c.rank.SetSite("particle_stats")
	out := c.rank.Allreduce(comm.OpSum, []float64{sum, float64(len(c.parts))})
	c.rank.SetSite("")
	if out[1] == 0 {
		return 0
	}
	return out[0] / out[1]
}
