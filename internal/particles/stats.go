package particles

import (
	"math"

	"repro/internal/comm"
)

// Dispersion statistics — the quantities particle-laden turbulence
// studies track (mean-square displacement, velocity variance). The cloud
// must be told to record the reference positions first.

// MarkOrigins snapshots every local particle's current position as its
// dispersion origin. Origins travel with the particle through migration?
// No — origins are keyed by particle ID and shared globally at Mark time,
// so statistics stay correct after particles change ranks.
func (c *Cloud) MarkOrigins() {
	if c.origins == nil {
		c.origins = make(map[int64][3]float64)
	}
	// Collect all (id, pos) pairs globally so every rank can look up
	// origins of particles that migrate to it later.
	local := make([]float64, 0, 4*len(c.parts))
	for _, p := range c.parts {
		local = append(local, float64(p.ID), p.Pos[0], p.Pos[1], p.Pos[2])
	}
	counts := make([]int, c.rank.Size())
	for i := range counts {
		counts[i] = len(local)
	}
	c.rank.SetSite("particle_stats")
	all, _ := c.rank.Alltoallv(repeat(local, c.rank.Size()), counts)
	c.rank.SetSite("")
	for i := 0; i+4 <= len(all); i += 4 {
		c.origins[int64(all[i])] = [3]float64{all[i+1], all[i+2], all[i+3]}
	}
}

// repeat concatenates p copies of s (the payload of an all-to-all
// broadcast of identical data).
func repeat(s []float64, p int) []float64 {
	out := make([]float64, 0, len(s)*p)
	for i := 0; i < p; i++ {
		out = append(out, s...)
	}
	return out
}

// MeanSquareDisplacement returns the global mean square displacement of
// all particles from their marked origins, accounting for periodic
// wraps by the minimum-image convention. Collective. Returns 0 if
// MarkOrigins was never called.
func (c *Cloud) MeanSquareDisplacement() float64 {
	ext := [3]float64{c.lx, c.ly, c.lz}
	box := c.s.Local.Box
	var sum float64
	var count float64
	for _, p := range c.parts {
		o, ok := c.origins[p.ID]
		if !ok {
			continue
		}
		d2 := 0.0
		for d := 0; d < 3; d++ {
			dd := p.Pos[d] - o[d]
			if box.Periodic[d] {
				// Minimum image: the shortest displacement modulo the box.
				dd = math.Mod(dd, ext[d])
				if dd > ext[d]/2 {
					dd -= ext[d]
				}
				if dd < -ext[d]/2 {
					dd += ext[d]
				}
			}
			d2 += dd * dd
		}
		sum += d2
		count++
	}
	c.rank.SetSite("particle_stats")
	out := c.rank.Allreduce(comm.OpSum, []float64{sum, count})
	c.rank.SetSite("")
	if out[1] == 0 {
		return 0
	}
	return out[0] / out[1]
}

// VelocityVariance returns the global variance of particle speeds around
// the mean velocity vector. Collective.
func (c *Cloud) VelocityVariance() float64 {
	var sum [3]float64
	var sq float64
	for _, p := range c.parts {
		for d := 0; d < 3; d++ {
			sum[d] += p.Vel[d]
			sq += p.Vel[d] * p.Vel[d]
		}
	}
	c.rank.SetSite("particle_stats")
	out := c.rank.Allreduce(comm.OpSum, []float64{sum[0], sum[1], sum[2], sq, float64(len(c.parts))})
	c.rank.SetSite("")
	n := out[4]
	if n == 0 {
		return 0
	}
	mean2 := (out[0]*out[0] + out[1]*out[1] + out[2]*out[2]) / (n * n)
	return out[3]/n - mean2
}
