package sem

// OpCount tallies the arithmetic and memory operations a kernel performs.
// The counts are exact structural counts derived from loop bounds, not
// sampled; internal/hw converts them into modeled instruction and cycle
// totals, standing in for the PAPI counters of the paper's Figures 5-6.
type OpCount struct {
	Mul   int64 // floating multiplies
	Add   int64 // floating adds
	Load  int64 // float64 loads
	Store int64 // float64 stores
}

// Flops returns the total floating-point operations.
func (o OpCount) Flops() int64 { return o.Mul + o.Add }

// Plus returns the element-wise sum of two counts.
func (o OpCount) Plus(p OpCount) OpCount {
	return OpCount{
		Mul:   o.Mul + p.Mul,
		Add:   o.Add + p.Add,
		Load:  o.Load + p.Load,
		Store: o.Store + p.Store,
	}
}

// Times returns the count scaled by n (e.g. per-element count times the
// number of elements).
func (o OpCount) Times(n int64) OpCount {
	return OpCount{Mul: o.Mul * n, Add: o.Add * n, Load: o.Load * n, Store: o.Store * n}
}

// mxmOps is the structural operation count of one (m x k) * (k x n)
// matrix multiply: each output element takes k multiplies, k-1 adds (we
// count k for the fused accumulate), 2k loads and one store.
func mxmOps(m, n, k int) OpCount {
	mn := int64(m) * int64(n)
	return OpCount{
		Mul:   mn * int64(k),
		Add:   mn * int64(k),
		Load:  2 * mn * int64(k),
		Store: mn,
	}
}
