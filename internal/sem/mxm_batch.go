package sem

import (
	"fmt"

	"repro/internal/pool"
)

// Batched mxm entry points: nel independent products sharing one B
// operator, with the A and C blocks laid out contiguously per element —
// exactly how the spectral-element kernels apply a 1D operator across
// every element of a rank's mesh. One call resolves the kernel once and
// loops elements, amortizing variant dispatch (and, in the pooled form,
// chunk scheduling) over the whole batch instead of paying it per
// element.

// MxMBatch computes c[e] = a[e] * b for e in [0, nel), where a holds nel
// consecutive (m x k) blocks and c holds nel consecutive (m x n) blocks.
// Returns the total structural operation count.
func MxMBatch(v MxMVariant, a []float64, m int, b []float64, k int, c []float64, n, nel int) OpCount {
	if nel <= 0 {
		panic(fmt.Sprintf("sem: mxm batch needs nel >= 1, got %d", nel))
	}
	checkMxMShape("mxm batch", m, k, n, len(a)/nel, len(b), len(c)/nel)
	fn, _ := mxmResolve(v, k)
	mk, mn := m*k, m*n
	for e := 0; e < nel; e++ {
		fn(a[e*mk:(e+1)*mk], m, b, k, c[e*mn:(e+1)*mn], n)
	}
	return mxmOps(m, n, k).Times(int64(nel))
}

// MxMBatchPool is MxMBatch with the element loop split across the
// worker pool. Elements are independent, so results are bit-identical
// at every pool width.
func MxMBatchPool(p *pool.Pool, v MxMVariant, a []float64, m int, b []float64, k int, c []float64, n, nel int) OpCount {
	if p.Workers() == 1 || nel <= 1 {
		return MxMBatch(v, a, m, b, k, c, n, nel)
	}
	if nel <= 0 {
		panic(fmt.Sprintf("sem: mxm batch needs nel >= 1, got %d", nel))
	}
	checkMxMShape("mxm batch", m, k, n, len(a)/nel, len(b), len(c)/nel)
	fn, _ := mxmResolve(v, k)
	mk, mn := m*k, m*n
	p.For(nel, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			fn(a[e*mk:(e+1)*mk], m, b, k, c[e*mn:(e+1)*mn], n)
		}
	})
	return mxmOps(m, n, k).Times(int64(nel))
}
