package sem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fillField evaluates f at every LGL point of nel identical elements.
func fillField(ref *Ref1D, nel int, f func(x, y, z float64) float64) []float64 {
	n := ref.N
	u := make([]float64, nel*n*n*n)
	for e := 0; e < nel; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					u[e*n*n*n+i+n*j+n*n*k] = f(ref.X[i], ref.X[j], ref.X[k])
				}
			}
		}
	}
	return u
}

func TestDerivVariantsAgree(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 11, 16} {
		ref := NewRef1D(n)
		nel := 3
		rng := rand.New(rand.NewSource(int64(n)))
		u := randSlice(rng, nel*n*n*n)
		for _, dir := range []Direction{DirR, DirS, DirT} {
			basic := make([]float64, len(u))
			opt := make([]float64, len(u))
			Deriv(dir, Basic, ref, u, basic, nel)
			Deriv(dir, Optimized, ref, u, opt, nel)
			for i := range basic {
				if math.Abs(basic[i]-opt[i]) > 1e-9*(1+math.Abs(basic[i])) {
					t.Fatalf("n=%d %v: basic and optimized disagree at %d: %v vs %v",
						n, dir, i, basic[i], opt[i])
				}
			}
		}
	}
}

func TestDerivExactOnPolynomials(t *testing.T) {
	ref := NewRef1D(7)
	nel := 2
	// f = x^3 y^2 z, whose derivatives are polynomial and representable.
	u := fillField(ref, nel, func(x, y, z float64) float64 { return x * x * x * y * y * z })
	wantR := fillField(ref, nel, func(x, y, z float64) float64 { return 3 * x * x * y * y * z })
	wantS := fillField(ref, nel, func(x, y, z float64) float64 { return 2 * x * x * x * y * z })
	wantT := fillField(ref, nel, func(x, y, z float64) float64 { return x * x * x * y * y })

	for _, v := range []KernelVariant{Basic, Optimized} {
		for dir, want := range map[Direction][]float64{DirR: wantR, DirS: wantS, DirT: wantT} {
			got := make([]float64, len(u))
			Deriv(dir, v, ref, u, got, nel)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("%v %v: wrong derivative at %d: %v want %v", v, dir, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDerivOfConstantIsZero(t *testing.T) {
	ref := NewRef1D(9)
	u := fillField(ref, 1, func(x, y, z float64) float64 { return 4.25 })
	for _, dir := range []Direction{DirR, DirS, DirT} {
		got := make([]float64, len(u))
		Deriv(dir, Optimized, ref, u, got, 1)
		for i := range got {
			if math.Abs(got[i]) > 1e-10 {
				t.Fatalf("%v of constant = %v at %d", dir, got[i], i)
			}
		}
	}
}

func TestGrad3LinearField(t *testing.T) {
	ref := NewRef1D(6)
	nel := 4
	u := fillField(ref, nel, func(x, y, z float64) float64 { return 2*x - 3*y + 5*z })
	n3 := ref.N * ref.N * ref.N
	ur := make([]float64, nel*n3)
	us := make([]float64, nel*n3)
	ut := make([]float64, nel*n3)
	ops := Grad3(Optimized, ref, u, ur, us, ut, nel)
	for i := range ur {
		if !almost(ur[i], 2, 1e-10) || !almost(us[i], -3, 1e-10) || !almost(ut[i], 5, 1e-10) {
			t.Fatalf("grad of linear field wrong at %d: %v %v %v", i, ur[i], us[i], ut[i])
		}
	}
	wantFlops := int64(3 * 2 * nel * n3 * ref.N)
	if ops.Flops() != wantFlops {
		t.Fatalf("Grad3 flops = %d, want %d", ops.Flops(), wantFlops)
	}
}

func TestDerivMatchesMxMConstruction(t *testing.T) {
	// dudr over one element must equal the mxm formulation
	// (D applied to u viewed as N x N^2 column-major).
	n := 8
	ref := NewRef1D(n)
	rng := rand.New(rand.NewSource(3))
	u := randSlice(rng, n*n*n)
	got := make([]float64, n*n*n)
	Deriv(DirR, Optimized, ref, u, got, 1)
	// Reference via mxm: (u as row-major N^2 x N) * D^T.
	want := make([]float64, n*n*n)
	MxM(MxMFusedUnroll, u, n*n, ref.Dt, n, want, n)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("deriv != mxm at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestDerivOpCountsScaleWithElements(t *testing.T) {
	ref := NewRef1D(5)
	u1 := make([]float64, 125)
	d1 := make([]float64, 125)
	one := Deriv(DirR, Basic, ref, u1, d1, 1)
	u4 := make([]float64, 4*125)
	d4 := make([]float64, 4*125)
	four := Deriv(DirR, Basic, ref, u4, d4, 4)
	if four != one.Times(4) {
		t.Fatalf("op counts don't scale: %+v vs 4*%+v", four, one)
	}
}

func TestDerivPanicsOnShortSlices(t *testing.T) {
	ref := NewRef1D(4)
	defer func() {
		if recover() == nil {
			t.Fatal("short slices must panic")
		}
	}()
	Deriv(DirR, Basic, ref, make([]float64, 10), make([]float64, 10), 1)
}

func TestDirectionAndVariantStrings(t *testing.T) {
	if DirR.String() != "dudr" || DirS.String() != "duds" || DirT.String() != "dudt" {
		t.Fatal("direction names wrong")
	}
	if Basic.String() != "basic" || Optimized.String() != "optimized" {
		t.Fatal("variant names wrong")
	}
}

func TestDerivLinearityProperty(t *testing.T) {
	// Property: Deriv(a*u + b*v) == a*Deriv(u) + b*Deriv(v).
	ref := NewRef1D(6)
	n3 := 216
	f := func(seed int64, ra, rb int8) bool {
		a, b := float64(ra)/16, float64(rb)/16
		rng := rand.New(rand.NewSource(seed))
		u := randSlice(rng, n3)
		v := randSlice(rng, n3)
		mix := make([]float64, n3)
		for i := range mix {
			mix[i] = a*u[i] + b*v[i]
		}
		du := make([]float64, n3)
		dv := make([]float64, n3)
		dmix := make([]float64, n3)
		Deriv(DirS, Optimized, ref, u, du, 1)
		Deriv(DirS, Optimized, ref, v, dv, 1)
		Deriv(DirS, Optimized, ref, mix, dmix, 1)
		for i := range dmix {
			want := a*du[i] + b*dv[i]
			if math.Abs(dmix[i]-want) > 1e-8*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
