package sem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mxmRef is an independent reference implementation for validation.
func mxmRef(a []float64, m int, b []float64, k int, n int) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += a[i*k+l] * b[l*n+j]
			}
		}
	}
	return c
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestMxMVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {8, 8, 8}, {9, 9, 9}, {10, 10, 10},
		{12, 9, 11}, {7, 10, 9}, {10, 25, 7}, {13, 1, 13}, {16, 16, 16}, {25, 25, 25}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		want := mxmRef(a, m, b, k, n)
		for _, v := range MxMVariants {
			c := make([]float64, m*n)
			ops := MxM(v, a, m, b, k, c, n)
			for i := range c {
				if math.Abs(c[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
					t.Fatalf("%v (%dx%dx%d): c[%d] = %v, want %v", v, m, k, n, i, c[i], want[i])
				}
			}
			if ops.Mul != int64(m)*int64(n)*int64(k) {
				t.Errorf("%v: Mul = %d, want %d", v, ops.Mul, m*n*k)
			}
			if ops.Store != int64(m)*int64(n) {
				t.Errorf("%v: Store = %d", v, ops.Store)
			}
		}
	}
}

func TestMxMVariantsAgreeProperty(t *testing.T) {
	f := func(seed int64, rm, rk, rn uint8) bool {
		m := int(rm)%12 + 1
		k := int(rk)%12 + 1
		n := int(rn)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		want := mxmRef(a, m, b, k, n)
		for _, v := range MxMVariants {
			c := make([]float64, m*n)
			MxM(v, a, m, b, k, c, n)
			for i := range c {
				if math.Abs(c[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMxMIdentity(t *testing.T) {
	n := 6
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	rng := rand.New(rand.NewSource(2))
	b := randSlice(rng, n*n)
	for _, v := range MxMVariants {
		c := make([]float64, n*n)
		MxM(v, id, n, b, n, c, n)
		for i := range c {
			if c[i] != b[i] {
				t.Fatalf("%v: identity multiply altered data", v)
			}
		}
	}
}

func TestMxMShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized operands must panic")
		}
	}()
	MxM(MxMBasic, make([]float64, 3), 2, make([]float64, 4), 2, make([]float64, 4), 2)
}

func TestMxMVariantStrings(t *testing.T) {
	names := map[MxMVariant]string{
		MxMBasic: "basic", MxMUnroll: "unroll", MxMFused: "fused", MxMFusedUnroll: "fused+unroll",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestOpCountArithmetic(t *testing.T) {
	a := OpCount{Mul: 1, Add: 2, Load: 3, Store: 4}
	b := OpCount{Mul: 10, Add: 20, Load: 30, Store: 40}
	s := a.Plus(b)
	if s != (OpCount{11, 22, 33, 44}) {
		t.Fatalf("Plus = %+v", s)
	}
	if a.Times(3) != (OpCount{3, 6, 9, 12}) {
		t.Fatalf("Times = %+v", a.Times(3))
	}
	if a.Flops() != 3 {
		t.Fatalf("Flops = %d", a.Flops())
	}
}

// TestMxMSpecializedExact: every hand-unrolled k specialization must be
// bit-identical to the basic triple loop — both accumulate the k-term dot
// product strictly left to right, so even rounding must agree. This keeps
// the specialized variant eligible anywhere bit-reproducibility is
// asserted (the solver's determinism contracts).
func TestMxMSpecializedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for k := 4; k <= 10; k++ {
		for _, mn := range [][2]int{{1, 1}, {k, k}, {13, 6}, {6, 17}} {
			m, n := mn[0], mn[1]
			a := randSlice(rng, m*k)
			b := randSlice(rng, k*n)
			want := make([]float64, m*n)
			MxM(MxMBasic, a, m, b, k, want, n)
			got := make([]float64, m*n)
			if !mxmSpecialized(a, m, b, k, got, n) {
				t.Fatalf("k=%d has no specialization", k)
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("k=%d m=%d n=%d: c[%d] = %x, want %x (not bit-identical)",
						k, m, n, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
	// And the dispatch boundaries: k outside [4, 10] reports false.
	for _, k := range []int{1, 2, 3, 11, 12} {
		if mxmSpecialized(make([]float64, 2*k), 2, make([]float64, k*2), k, make([]float64, 4), 2) {
			t.Fatalf("k=%d unexpectedly specialized", k)
		}
	}
}
