package sem

import "math"

// Gauss-Legendre (interior) quadrature. Nek5000's dealiasing rule
// evaluates the nonlinear terms on a finer mesh of *Gauss* points (no
// endpoints), whose quadrature is exact to degree 2M-1 — higher than the
// Gauss-Lobatto rule of the solution mesh. NewRef1DGauss builds reference
// operators whose fine mesh uses Gauss points, matching the parent code;
// the default NewRef1D keeps Lobatto fine points (a cheaper, self-similar
// choice some mini-app configurations use).

// GaussNodes returns the n Gauss-Legendre nodes on (-1, 1) in ascending
// order: the roots of P_n.
func GaussNodes(n int) []float64 {
	if n < 1 {
		panic("sem: Gauss quadrature needs n >= 1 points")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		// Standard initial guess, then Newton on P_n.
		xi := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		for iter := 0; iter < 100; iter++ {
			p, dp := legendreBoth(n, xi)
			dx := p / dp
			xi -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		x[n-1-i] = xi
	}
	return x
}

// GaussWeights returns the Gauss-Legendre weights for the nodes x:
// w_i = 2 / ((1 - x_i^2) P'_n(x_i)^2).
func GaussWeights(x []float64) []float64 {
	n := len(x)
	w := make([]float64, n)
	for i, xi := range x {
		_, dp := legendreBoth(n, xi)
		w[i] = 2 / ((1 - xi*xi) * dp * dp)
	}
	return w
}

// NewRef1DGauss builds reference operators for n LGL solution points
// whose dealiasing fine mesh uses ceil(3n/2) Gauss points, Nek5000's
// over-integration rule.
func NewRef1DGauss(n int) *Ref1D {
	x := GLLNodes(n)
	nf := (3*n + 1) / 2
	xf := GaussNodes(nf)
	d := DerivMatrix(x)
	return &Ref1D{
		N: n, X: x, W: GLLWeights(x), D: d, Dt: Transpose(d, n, n),
		NF: nf, XF: xf, JF: InterpMatrix(x, xf), JB: InterpMatrix(xf, x),
	}
}
