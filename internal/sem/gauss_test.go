package sem

import (
	"math"
	"testing"
)

func TestGaussNodesKnown(t *testing.T) {
	check := func(got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-13 {
				t.Errorf("node %d = %.15f, want %.15f", i, got[i], want[i])
			}
		}
	}
	check(GaussNodes(1), []float64{0})
	s3 := 1 / math.Sqrt(3)
	check(GaussNodes(2), []float64{-s3, s3})
	s35 := math.Sqrt(3.0 / 5.0)
	check(GaussNodes(3), []float64{-s35, 0, s35})
}

func TestGaussNodesAreLegendreRoots(t *testing.T) {
	for n := 1; n <= 20; n++ {
		for _, xi := range GaussNodes(n) {
			if p := LegendreP(n, xi); math.Abs(p) > 1e-12 {
				t.Fatalf("n=%d: P_n(%v) = %v", n, xi, p)
			}
			if xi <= -1 || xi >= 1 {
				t.Fatalf("n=%d: node %v outside (-1,1)", n, xi)
			}
		}
	}
}

func TestGaussQuadratureExactness(t *testing.T) {
	// n Gauss points are exact through degree 2n-1 — two orders beyond
	// Lobatto with the same count.
	for n := 1; n <= 10; n++ {
		x := GaussNodes(n)
		w := GaussWeights(x)
		for p := 0; p <= 2*n-1; p++ {
			got := 0.0
			for i := range x {
				got += w[i] * math.Pow(x[i], float64(p))
			}
			want := 0.0
			if p%2 == 0 {
				want = 2 / float64(p+1)
			}
			if math.Abs(got-want) > 1e-11 {
				t.Errorf("n=%d: integral of x^%d = %v, want %v", n, p, got, want)
			}
		}
	}
}

func TestGaussWeightsPositiveSumTwo(t *testing.T) {
	for n := 1; n <= 25; n++ {
		w := GaussWeights(GaussNodes(n))
		sum := 0.0
		for _, v := range w {
			if v <= 0 {
				t.Fatalf("n=%d: nonpositive weight", n)
			}
			sum += v
		}
		if math.Abs(sum-2) > 1e-12 {
			t.Fatalf("n=%d: weights sum %v", n, sum)
		}
	}
}

func TestRef1DGaussDealiasRoundTrip(t *testing.T) {
	// Gauss fine points still interpolate polynomials exactly, so the
	// round trip is lossless for representable fields.
	ref := NewRef1DGauss(6)
	if ref.NF != 9 {
		t.Fatalf("NF = %d", ref.NF)
	}
	// Fine nodes must be interior (no endpoints): Gauss, not Lobatto.
	if ref.XF[0] == -1 || ref.XF[ref.NF-1] == 1 {
		t.Fatal("fine mesh contains endpoints; expected Gauss points")
	}
	u := fillField6(ref, func(x, y, z float64) float64 { return x*x*y - 3*z + x*y*z })
	orig := append([]float64(nil), u...)
	uf := make([]float64, ref.NF*ref.NF*ref.NF)
	scratch := make([]float64, ref.DealiasScratchLen())
	ref.DealiasRoundTrip(u, 1, uf, scratch)
	for i := range u {
		if math.Abs(u[i]-orig[i]) > 1e-9 {
			t.Fatalf("Gauss dealias round trip changed data at %d", i)
		}
	}
}

// fillField6 is fillField for a single element (avoids reusing the other
// helper's *Ref1D assumption about matching N).
func fillField6(ref *Ref1D, f func(x, y, z float64) float64) []float64 {
	n := ref.N
	u := make([]float64, n*n*n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				u[i+n*j+n*n*k] = f(ref.X[i], ref.X[j], ref.X[k])
			}
		}
	}
	return u
}
