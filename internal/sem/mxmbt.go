package sem

// MxMBT computes c = a * btᵀ where bt holds B transposed: bt is (n x k)
// row-major, so output element (i, j) is the dot product of two
// contiguous rows, a[i*k:] and bt[j*k:]. This is the natural shape for
// TensorApply3's first stage, which applies the 1D operator from the
// right — previously it transposed the operator into a scratch slice on
// every call. Accumulation is strictly left to right over l, so the
// result is bit-identical to Transpose(bt) followed by MxM with any of
// the order-preserving variants. Returns the structural operation
// count, identical to MxM at the same logical shape.
func MxMBT(a []float64, m int, bt []float64, k int, c []float64, n int) OpCount {
	checkMxMShape("mxm-bt", m, k, n, len(a), len(bt), len(c))
	if !mxmBTGen(a, m, bt, k, c, n) {
		mxmBTGeneric(a, m, bt, k, c, n)
	}
	return mxmOps(m, n, k)
}

// mxmBTGeneric is the portable any-k kernel behind the generated
// specializations. The scalar reduction keeps mxmBasic's accumulation
// order.
func mxmBTGeneric(a []float64, m int, bt []float64, k int, c []float64, n int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		for j := range ci {
			bj := bt[j*k : j*k+k]
			s := 0.0
			for l, al := range ai {
				s += al * bj[l]
			}
			ci[j] = s
		}
	}
}
