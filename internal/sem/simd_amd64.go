//go:build amd64 && !semnoasm

package sem

// AVX2 backend for the mxm kernel. The assembly (mxm_avx2_amd64.s)
// broadcasts one A scalar at a time and streams 8/4/1-wide down the
// matching B row, accumulating each output lane in ascending-l order
// with separate VMULPD/VADDPD — deliberately no FMA, whose single
// rounding would break bit-identity with the scalar kernels. The
// semnoasm build tag swaps in the pure-Go fallback (simd_noasm.go), so
// the portable path stays honest and CI-covered.

// mxmAVX2Asm computes C (m x n) = A (m x k) * B (k x n), row-major.
// Requires m, k, n >= 1 and AVX2; the caller guards both.
func mxmAVX2Asm(a *float64, m int, b *float64, k int, c *float64, n int)

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

var hasAVX2 = detectAVX2()

// detectAVX2 reports whether the CPU supports AVX2 and the OS has
// enabled YMM state (XCR0 bits 1 and 2). Hand-rolled CPUID so the
// module needs no dependency on golang.org/x/sys.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv0(); eax&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0
}

// mxmSIMD runs the AVX2 kernel when available; reports false when the
// host lacks AVX2 (the caller falls back to a portable kernel).
func mxmSIMD(a []float64, m int, b []float64, k int, c []float64, n int) bool {
	if !hasAVX2 {
		return false
	}
	mxmAVX2Asm(&a[0], m, &b[0], k, &c[0], n)
	return true
}
