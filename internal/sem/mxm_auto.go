package sem

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// The mxm autotuner. Mirrors the gather-scatter startup tuning in
// internal/gs/tune.go: time every feasible candidate on scratch data,
// SelectBest picks the smallest cost (ties keep the earlier entry, so a
// deterministic timing list yields a deterministic choice), and the
// winner is committed exactly once after all measurement. Unlike the gs
// tuner, every mxm candidate is verified bit-exact against MxMBasic
// before it may be timed, so the tuned table can never change numerical
// results — only wall time. The committed table is published through an
// atomic pointer; MxMAuto dispatch concurrent with tuning sees either
// the old or the new table, both of which are correct.

// HasSIMD reports whether the AVX2 assembly backend is active in this
// build on this host.
func HasSIMD() bool {
	return hasAVX2
}

// mxmTable is the per-k kernel dispatch table for MxMAuto. Index k in
// [1, mxmGenMaxK]; index 0 is unused (the shape guard rejects k <= 0).
type mxmTable struct {
	fn   [mxmGenMaxK + 1]mxmFunc
	name [mxmGenMaxK + 1]string
}

var mxmAutoTab atomic.Pointer[mxmTable]

func init() {
	mxmAutoTab.Store(defaultMxMTable())
}

// defaultMxMTable statically prefers the widest-coverage fast kernel:
// SIMD when the host has AVX2, else the generated fully-unrolled
// kernels. TuneMxM refines this by measurement.
func defaultMxMTable() *mxmTable {
	t := &mxmTable{}
	for k := 1; k <= mxmGenMaxK; k++ {
		if hasAVX2 {
			t.fn[k], t.name[k] = mxmSIMDOrFallback, "simd"
		} else {
			t.fn[k], t.name[k] = mxmGenOrFallback, "generated"
		}
	}
	return t
}

// MxMCandidate is one timed kernel for one shape.
type MxMCandidate struct {
	Name string
	// Secs is the mean wall time of one call at this shape.
	Secs float64
	// Exact records the pre-timing verification: bit-identical output to
	// MxMBasic on random data. Inexact candidates are never selectable
	// (none exist today; the check is the safety interlock).
	Exact bool
}

// MxMTuneResult records one tuned shape: the candidates measured and the
// committed winner.
type MxMTuneResult struct {
	M, K, N    int
	Winner     string
	Candidates []MxMCandidate
}

// mxmTuneCandidates lists the (kernel, name) pairs feasible at reduction
// size k, fastest-expected last so ties favor the simpler kernel.
func mxmTuneCandidates(k int) (fns []mxmFunc, names []string) {
	add := func(fn mxmFunc, name string) {
		fns = append(fns, fn)
		names = append(names, name)
	}
	add(mxmFusedUnroll, "fused+unroll")
	if k >= 4 && k <= 10 {
		add(mxmSpecializedOrFallback, "specialized")
	}
	if k >= 1 && k <= mxmGenMaxK {
		add(mxmGenOrFallback, "generated")
	}
	if hasAVX2 {
		add(mxmSIMDOrFallback, "simd")
	}
	return fns, names
}

// selectBestMxM returns the index of the candidate with the smallest
// cost among those marked exact; ties keep the earlier entry.
func selectBestMxM(cands []MxMCandidate) int {
	best := -1
	for i, c := range cands {
		if !c.Exact {
			continue
		}
		if best < 0 || c.Secs < cands[best].Secs {
			best = i
		}
	}
	return best
}

var mxmTuneMu sync.Mutex

// TuneMxM times every feasible kernel at each shape (m, k, n), verifies
// bit-exactness against MxMBasic, and commits each shape's winner as the
// MxMAuto dispatch entry for its k. Shapes with k outside [1, 16] are
// measured and reported but not committed (MxMAuto handles those k
// without a table). reps <= 0 picks a per-shape repetition count that
// keeps each candidate's measurement around a fixed flop budget.
func TuneMxM(shapes [][3]int, reps int) []MxMTuneResult {
	mxmTuneMu.Lock()
	defer mxmTuneMu.Unlock()

	results := make([]MxMTuneResult, 0, len(shapes))
	next := *mxmAutoTab.Load()
	rng := rand.New(rand.NewSource(1))
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		if m <= 0 || k <= 0 || n <= 0 {
			continue
		}
		a := make([]float64, m*k)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		b := make([]float64, k*n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := make([]float64, m*n)
		mxmBasic(a, m, b, k, want, n)

		r := reps
		if r <= 0 {
			// ~2e6 flops per candidate: enough to resolve the ranking on
			// these microsecond-scale kernels, cheap enough for startup.
			r = int(2e6 / float64(2*m*k*n))
			if r < 16 {
				r = 16
			}
		}

		fns, names := mxmTuneCandidates(k)
		got := make([]float64, m*n)
		cands := make([]MxMCandidate, len(fns))
		for i, fn := range fns {
			for j := range got {
				got[j] = math.NaN()
			}
			fn(a, m, b, k, got, n)
			exact := true
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					exact = false
					break
				}
			}
			cands[i] = MxMCandidate{Name: names[i], Exact: exact}
			if !exact {
				continue
			}
			start := time.Now()
			for t := 0; t < r; t++ {
				fn(a, m, b, k, got, n)
			}
			cands[i].Secs = time.Since(start).Seconds() / float64(r)
		}

		res := MxMTuneResult{M: m, K: k, N: n, Candidates: cands}
		if best := selectBestMxM(cands); best >= 0 {
			res.Winner = cands[best].Name
			if k >= 1 && k <= mxmGenMaxK {
				next.fn[k], next.name[k] = fns[best], cands[best].Name
			}
		}
		results = append(results, res)
	}
	// Commit once, after all measurement (the gs tuner's rule): dispatch
	// never sees a transient, partially tuned table.
	committed := next
	mxmAutoTab.Store(&committed)
	return results
}

var mxmTuneOnce sync.Once

// TuneMxMDefault tunes the derivative kernel's dominant shapes
// (m = k*k, n = k for every k with a generated specialization) once per
// process. Safe to call from concurrent solver constructions.
func TuneMxMDefault() {
	mxmTuneOnce.Do(func() {
		shapes := make([][3]int, 0, mxmGenMaxK)
		for k := 1; k <= mxmGenMaxK; k++ {
			shapes = append(shapes, [3]int{k * k, k, k})
		}
		TuneMxM(shapes, 0)
	})
}
