package sem

import (
	"fmt"

	"repro/internal/pool"
)

// Pool-parallel variants of the element-indexed kernels. Elements are
// independent — every kernel here reads and writes only the N^3 (or
// 6*N^2) block of its own element — so the element range is cut into
// contiguous chunks and fanned out over a worker pool. Chunk boundaries
// never change per-element arithmetic, so results are bit-identical at
// any worker count. The returned operation counts are the same
// structural counts the serial kernels report, computed analytically on
// the caller: modeled time is charged from them on the rank goroutine,
// which is why the pool moves wall time only, never the virtual clock.
//
// Size validation happens up front on the caller goroutine, so misuse
// panics at the call site rather than inside a pool helper.

// DerivPool is Deriv with the element loop fanned out over p.
func DerivPool(p *pool.Pool, dir Direction, v KernelVariant, ref *Ref1D, u, du []float64, nel int) OpCount {
	if p.Workers() == 1 || nel <= 1 {
		return Deriv(dir, v, ref, u, du, nel)
	}
	n := ref.N
	n3 := n * n * n
	if len(u) < nel*n3 || len(du) < nel*n3 {
		panic(fmt.Sprintf("sem: deriv needs %d values, got u=%d du=%d", nel*n3, len(u), len(du)))
	}
	p.For(nel, func(lo, hi int) {
		Deriv(dir, v, ref, u[lo*n3:hi*n3], du[lo*n3:hi*n3], hi-lo)
	})
	return derivOps(n, nel)
}

// Grad3Pool computes all three reference-space derivatives over p.
func Grad3Pool(p *pool.Pool, v KernelVariant, ref *Ref1D, u, ur, us, ut []float64, nel int) OpCount {
	ops := DerivPool(p, DirR, v, ref, u, ur, nel)
	ops = ops.Plus(DerivPool(p, DirS, v, ref, u, us, nel))
	ops = ops.Plus(DerivPool(p, DirT, v, ref, u, ut, nel))
	return ops
}

// Grad3FusedPool is Grad3Fused with the element loop fanned out over p.
func Grad3FusedPool(p *pool.Pool, ref *Ref1D, u, ur, us, ut []float64, nel int) OpCount {
	if p.Workers() == 1 || nel <= 1 {
		return Grad3Fused(ref, u, ur, us, ut, nel)
	}
	n := ref.N
	n3 := n * n * n
	if len(u) < nel*n3 || len(ur) < nel*n3 || len(us) < nel*n3 || len(ut) < nel*n3 {
		panic(fmt.Sprintf("sem: grad3 needs %d values, got u=%d ur=%d us=%d ut=%d",
			nel*n3, len(u), len(ur), len(us), len(ut)))
	}
	p.For(nel, func(lo, hi int) {
		Grad3Fused(ref, u[lo*n3:hi*n3], ur[lo*n3:hi*n3], us[lo*n3:hi*n3], ut[lo*n3:hi*n3], hi-lo)
	})
	return derivOps(n, nel).Times(3)
}

// ApplyDirPool is ApplyDir with the element loop fanned out over p.
func ApplyDirPool(p *pool.Pool, dir Direction, mat []float64, n int, u, du []float64, nel int) OpCount {
	if p.Workers() == 1 || nel <= 1 {
		return ApplyDir(dir, mat, n, u, du, nel)
	}
	n3 := n * n * n
	if len(mat) < n*n {
		panic(fmt.Sprintf("sem: operator needs %d entries, got %d", n*n, len(mat)))
	}
	if len(u) < nel*n3 || len(du) < nel*n3 {
		panic(fmt.Sprintf("sem: apply needs %d values, got u=%d du=%d", nel*n3, len(u), len(du)))
	}
	p.For(nel, func(lo, hi int) {
		ApplyDir(dir, mat, n, u[lo*n3:hi*n3], du[lo*n3:hi*n3], hi-lo)
	})
	return derivOps(n, nel)
}

// Full2FacePool is Full2Face with the element loop fanned out over p.
func Full2FacePool(p *pool.Pool, n int, u []float64, nel int, faces []float64) OpCount {
	if p.Workers() == 1 || nel <= 1 {
		return Full2Face(n, u, nel, faces)
	}
	n2, n3 := n*n, n*n*n
	if len(u) < nel*n3 || len(faces) < nel*NFaces*n2 {
		panic(fmt.Sprintf("sem: full2face size mismatch (u=%d faces=%d nel=%d n=%d)",
			len(u), len(faces), nel, n))
	}
	p.For(nel, func(lo, hi int) {
		Full2Face(n, u[lo*n3:hi*n3], hi-lo, faces[lo*NFaces*n2:hi*NFaces*n2])
	})
	moved := int64(nel) * NFaces * int64(n2)
	return OpCount{Load: moved, Store: moved}
}

// Full2FaceDirPool is Full2FaceDir with the element loop fanned out over p.
func Full2FaceDirPool(p *pool.Pool, n int, u []float64, nel int, faces []float64, dim int) OpCount {
	if p.Workers() == 1 || nel <= 1 {
		return Full2FaceDir(n, u, nel, faces, dim)
	}
	n2, n3 := n*n, n*n*n
	if len(u) < nel*n3 || len(faces) < nel*NFaces*n2 {
		panic(fmt.Sprintf("sem: full2face size mismatch (u=%d faces=%d nel=%d n=%d)",
			len(u), len(faces), nel, n))
	}
	p.For(nel, func(lo, hi int) {
		Full2FaceDir(n, u[lo*n3:hi*n3], hi-lo, faces[lo*NFaces*n2:hi*NFaces*n2], dim)
	})
	moved := int64(nel) * 2 * int64(n2)
	return OpCount{Load: moved, Store: moved}
}

// Face2FullAddPool is Face2FullAdd with the element loop fanned out over
// p. Each element scatter-adds only into its own volume block, so the
// accumulation order within an element — the only order that matters for
// the floating-point result — is unchanged.
func Face2FullAddPool(p *pool.Pool, n int, faces []float64, nel int, u []float64) OpCount {
	if p.Workers() == 1 || nel <= 1 {
		return Face2FullAdd(n, faces, nel, u)
	}
	n2, n3 := n*n, n*n*n
	if len(u) < nel*n3 || len(faces) < nel*NFaces*n2 {
		panic(fmt.Sprintf("sem: face2full size mismatch (u=%d faces=%d nel=%d n=%d)",
			len(u), len(faces), nel, n))
	}
	p.For(nel, func(lo, hi int) {
		Face2FullAdd(n, faces[lo*NFaces*n2:hi*NFaces*n2], hi-lo, u[lo*n3:hi*n3])
	})
	moved := int64(nel) * NFaces * int64(n2)
	return OpCount{Add: moved, Load: 2 * moved, Store: moved}
}

// DealiasBufs holds per-worker fine-mesh and scratch buffers for the
// pool-parallel dealiasing round trip: the serial kernel reuses one
// uf/scratch pair across elements, so the parallel version needs a
// private pair per pool slot.
type DealiasBufs struct {
	uf      [][]float64
	scratch [][]float64
}

// NewDealiasBufs allocates dealiasing buffers for a pool of the given
// worker count (values < 1 mean 1).
func (ref *Ref1D) NewDealiasBufs(slots int) *DealiasBufs {
	if slots < 1 {
		slots = 1
	}
	nf3 := ref.NF * ref.NF * ref.NF
	sl := ref.DealiasScratchLen()
	b := &DealiasBufs{
		uf:      make([][]float64, slots),
		scratch: make([][]float64, slots),
	}
	for i := range b.uf {
		b.uf[i] = make([]float64, nf3)
		b.scratch[i] = make([]float64, sl)
	}
	return b
}

// tensorApplyOps is the structural count TensorApply3 reports for the
// given dimensions, computed without running it: one (n2*n3 x n1)*(n1 x
// m1) product, n3 slab products, and one (m3 x n3)*(n3 x m1*m2) product.
func tensorApplyOps(m1, n1, m2, n2, m3, n3 int) OpCount {
	ops := mxmOps(n2*n3, m1, n1)
	ops = ops.Plus(mxmOps(m2, m1, n2).Times(int64(n3)))
	return ops.Plus(mxmOps(m3, m1*m2, n3))
}

// dealiasElemOps is the structural cost of one element's ToFine +
// FromFine round trip.
func (ref *Ref1D) dealiasElemOps() OpCount {
	n, nf := ref.N, ref.NF
	return tensorApplyOps(nf, n, nf, n, nf, n).Plus(tensorApplyOps(n, nf, n, nf, n, nf))
}

// DealiasRoundTripPool is DealiasRoundTrip with the element loop fanned
// out over p, using per-slot buffers from bufs (which must have been
// built for at least p.Workers() slots).
func (ref *Ref1D) DealiasRoundTripPool(p *pool.Pool, u []float64, nel int, bufs *DealiasBufs) OpCount {
	if p.Workers() == 1 || nel <= 1 {
		if nel > 0 {
			return ref.DealiasRoundTrip(u, nel, bufs.uf[0], bufs.scratch[0])
		}
		return OpCount{}
	}
	if len(bufs.uf) < min(nel, p.Workers()) {
		panic(fmt.Sprintf("sem: dealias bufs have %d slots, pool wants %d",
			len(bufs.uf), min(nel, p.Workers())))
	}
	n3 := ref.N * ref.N * ref.N
	if len(u) < nel*n3 {
		panic(fmt.Sprintf("sem: dealias needs %d values, got %d", nel*n3, len(u)))
	}
	p.ForSlots(nel, func(slot, lo, hi int) {
		uf, scr := bufs.uf[slot], bufs.scratch[slot]
		for e := lo; e < hi; e++ {
			ue := u[e*n3 : (e+1)*n3]
			ref.ToFine(ue, uf, scr)
			ref.FromFine(uf, ue, scr)
		}
	})
	return ref.dealiasElemOps().Times(int64(nel))
}
