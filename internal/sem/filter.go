package sem

// Spectral filtering — the mini-app proxy for the shock-capturing
// machinery on CMT-nek's roadmap (paper Section VII: "shock capturing
// ... will be added"). Nek-family codes stabilize marginally resolved
// fields by transforming each element to the modal Legendre basis,
// attenuating the highest modes, and transforming back; the kernel is
// one more small-matrix tensor apply, structurally identical to the
// derivative kernel.

// VandermondeLegendre returns the (n x n) row-major Vandermonde matrix
// V[i,k] = P_k(x_i): columns are Legendre modes evaluated at the nodes.
func VandermondeLegendre(x []float64) []float64 {
	n := len(x)
	v := make([]float64, n*n)
	for i, xi := range x {
		for k := 0; k < n; k++ {
			v[i*n+k] = LegendreP(k, xi)
		}
	}
	return v
}

// InvVandermonde returns the inverse of the Legendre Vandermonde matrix
// for the nodes x: the nodal-to-modal transform used by spectra and
// filters.
func InvVandermonde(x []float64) []float64 {
	return invert(VandermondeLegendre(x), len(x))
}

// invert returns the inverse of the (n x n) row-major matrix a by
// Gauss-Jordan elimination with partial pivoting. Panics if singular.
func invert(a []float64, n int) []float64 {
	m := make([]float64, n*2*n)
	for i := 0; i < n; i++ {
		copy(m[i*2*n:], a[i*n:(i+1)*n])
		m[i*2*n+n+i] = 1
	}
	for col := 0; col < n; col++ {
		piv := col
		for row := col + 1; row < n; row++ {
			if abs(m[row*2*n+col]) > abs(m[piv*2*n+col]) {
				piv = row
			}
		}
		if m[piv*2*n+col] == 0 {
			panic("sem: singular matrix in filter construction")
		}
		if piv != col {
			for j := 0; j < 2*n; j++ {
				m[col*2*n+j], m[piv*2*n+j] = m[piv*2*n+j], m[col*2*n+j]
			}
		}
		d := m[col*2*n+col]
		for j := 0; j < 2*n; j++ {
			m[col*2*n+j] /= d
		}
		for row := 0; row < n; row++ {
			if row == col {
				continue
			}
			f := m[row*2*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				m[row*2*n+j] -= f * m[col*2*n+j]
			}
		}
	}
	inv := make([]float64, n*n)
	for i := 0; i < n; i++ {
		copy(inv[i*n:], m[i*2*n+n:i*2*n+2*n])
	}
	return inv
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FilterMatrix builds the 1D modal filter operator F = V diag(sigma) V^-1
// for the nodes x: modes below cutoff pass unchanged; mode k >= cutoff is
// scaled by 1 - strength*((k-cutoff+1)/(N-cutoff))^2, Nek5000's quadratic
// transfer function (its hpf/filter routine). strength in [0,1];
// cutoff counts preserved modes.
func FilterMatrix(x []float64, cutoff int, strength float64) []float64 {
	n := len(x)
	if cutoff < 1 {
		cutoff = 1
	}
	if cutoff > n {
		cutoff = n
	}
	v := VandermondeLegendre(x)
	vinv := invert(v, n)
	// F = V * diag(sigma) * Vinv; fold sigma into V's columns first.
	vs := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			sigma := 1.0
			if k >= cutoff {
				t := float64(k-cutoff+1) / float64(n-cutoff)
				sigma = 1 - strength*t*t
			}
			vs[i*n+k] = v[i*n+k] * sigma
		}
	}
	f := make([]float64, n*n)
	MxM(MxMFusedUnroll, vs, n, vinv, n, f, n)
	return f
}

// FilterElements applies the tensor-product filter (F (x) F (x) F) to
// each element of u in place, blended with weight alpha:
// u <- (1-alpha) u + alpha F u. scratch must hold 2*N^3 values plus the
// TensorApply3 scratch (use FilterScratchLen).
func FilterElements(f []float64, n int, u []float64, nel int, alpha float64, scratch []float64) OpCount {
	n3 := n * n * n
	need := FilterScratchLen(n)
	if len(scratch) < need {
		panic("sem: filter scratch too small")
	}
	work := scratch[:n3]
	ts := scratch[n3:]
	var ops OpCount
	for e := 0; e < nel; e++ {
		ue := u[e*n3 : (e+1)*n3]
		ops = ops.Plus(TensorApply3(f, n, n, f, n, n, f, n, n, ue, work, ts))
		for i := range ue {
			ue[i] = (1-alpha)*ue[i] + alpha*work[i]
		}
	}
	ops = ops.Plus(OpCount{Mul: 2 * int64(nel) * int64(n3), Add: int64(nel) * int64(n3),
		Load: 2 * int64(nel) * int64(n3), Store: int64(nel) * int64(n3)})
	return ops
}

// FilterScratchLen returns the scratch length FilterElements requires.
func FilterScratchLen(n int) int {
	return n*n*n + TensorScratchLen(n, n, n, n, n, n)
}
