package sem

import "fmt"

// The derivative kernels. Within an element, u holds N^3 values indexed
// u[i + N*j + N*N*k]; the partial derivatives with respect to the
// reference coordinates (r,s,t) are tensor contractions with the 1D
// derivative matrix D along the i, j, and k index respectively:
//
//	dudr[i,j,k] = sum_l D[i,l] u[l,j,k]
//	duds[i,j,k] = sum_l D[j,l] u[i,l,k]
//	dudt[i,j,k] = sum_l D[k,l] u[i,j,l]
//
// Each is an O(N^4) operation per element — the ax_ kernel that dominates
// CMT-bone's execution profile (Figure 4). The Basic variants are plain
// dot-product loop nests; the Optimized variants carry the loop fusion
// and unrolling CMT-bone inherits from Nek5000 (Section V). As the paper
// observes, the transformations help dudt greatly (contiguous plane
// streaming replaces stride-N^2 dot products), help dudr only slightly
// (its access is already contiguous), and cannot be applied to duds
// (stride-N access pattern forbids fusion), so duds gets unrolling only.

// KernelVariant selects the derivative-kernel loop structure.
type KernelVariant int

// Derivative kernel variants.
const (
	// Basic is the untransformed loop nest (paper Figure 6).
	Basic KernelVariant = iota
	// Optimized applies the loop fusion + unroll transformations
	// inherited from Nek5000 (paper Figure 5).
	Optimized
)

// String implements fmt.Stringer.
func (v KernelVariant) String() string {
	switch v {
	case Basic:
		return "basic"
	case Optimized:
		return "optimized"
	}
	return fmt.Sprintf("KernelVariant(%d)", int(v))
}

// Direction names a reference coordinate.
type Direction int

// Reference coordinate directions.
const (
	DirR Direction = iota
	DirS
	DirT
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirR:
		return "dudr"
	case DirS:
		return "duds"
	case DirT:
		return "dudt"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// derivOps is the structural cost of one direction's derivative for nel
// elements: N^3 outputs, each a length-N dot product.
func derivOps(n, nel int) OpCount {
	n3 := int64(n) * int64(n) * int64(n)
	per := OpCount{
		Mul:   n3 * int64(n),
		Add:   n3 * int64(n),
		Load:  2 * n3 * int64(n),
		Store: n3,
	}
	return per.Times(int64(nel))
}

// Deriv computes the derivative of u along dir into du for nel elements
// of N^3 points each, using the selected kernel variant, and returns the
// structural operation count. u and du must hold nel*N^3 values.
func Deriv(dir Direction, v KernelVariant, ref *Ref1D, u, du []float64, nel int) OpCount {
	n := ref.N
	n3 := n * n * n
	if len(u) < nel*n3 || len(du) < nel*n3 {
		panic(fmt.Sprintf("sem: deriv needs %d values, got u=%d du=%d", nel*n3, len(u), len(du)))
	}
	for e := 0; e < nel; e++ {
		ue := u[e*n3 : (e+1)*n3]
		de := du[e*n3 : (e+1)*n3]
		switch {
		case dir == DirR && v == Basic:
			dudrBasic(ref.D, n, ue, de)
		case dir == DirR && v == Optimized:
			dudrOpt(ref.D, n, ue, de)
		case dir == DirS && v == Basic:
			dudsBasic(ref.D, n, ue, de)
		case dir == DirS && v == Optimized:
			dudsOpt(ref.D, n, ue, de)
		case dir == DirT && v == Basic:
			dudtBasic(ref.D, n, ue, de)
		case dir == DirT && v == Optimized:
			dudtOpt(ref.D, n, ue, de)
		}
	}
	return derivOps(n, nel)
}

// Grad3 computes all three reference-space derivatives of u.
func Grad3(v KernelVariant, ref *Ref1D, u, ur, us, ut []float64, nel int) OpCount {
	ops := Deriv(DirR, v, ref, u, ur, nel)
	ops = ops.Plus(Deriv(DirS, v, ref, u, us, nel))
	ops = ops.Plus(Deriv(DirT, v, ref, u, ut, nel))
	return ops
}

// dudrBasic: naive dot products; u access is contiguous in l already.
func dudrBasic(d []float64, n int, u, du []float64) {
	n2 := n * n
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			base := n*j + n2*k
			for i := 0; i < n; i++ {
				s := 0.0
				for l := 0; l < n; l++ {
					s += d[i*n+l] * u[base+l]
				}
				du[base+i] = s
			}
		}
	}
}

// dudrOpt: column-sliced with the reduction unrolled by four. The access
// pattern is the same as basic (already unit stride), so the gain is the
// modest unrolling win the paper reports (1.03x).
func dudrOpt(d []float64, n int, u, du []float64) {
	n2 := n * n
	n4 := n - n%4
	for c := 0; c < n2; c++ {
		uc := u[c*n : c*n+n]
		dc := du[c*n : c*n+n]
		for i := 0; i < n; i++ {
			di := d[i*n : i*n+n]
			var s0, s1, s2, s3 float64
			for l := 0; l < n4; l += 4 {
				s0 += di[l] * uc[l]
				s1 += di[l+1] * uc[l+1]
				s2 += di[l+2] * uc[l+2]
				s3 += di[l+3] * uc[l+3]
			}
			s := s0 + s1 + s2 + s3
			for l := n4; l < n; l++ {
				s += di[l] * uc[l]
			}
			dc[i] = s
		}
	}
}

// dudsBasic: naive dot products with stride-n access into u.
func dudsBasic(d []float64, n int, u, du []float64) {
	n2 := n * n
	for k := 0; k < n; k++ {
		slab := n2 * k
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				s := 0.0
				for l := 0; l < n; l++ {
					s += d[j*n+l] * u[slab+i+n*l]
				}
				du[slab+i+n*j] = s
			}
		}
	}
}

// dudsOpt: unrolling only — the stride-n access pattern forbids the
// fusion transformation, which is exactly why the paper sees no
// improvement for duds.
func dudsOpt(d []float64, n int, u, du []float64) {
	n2 := n * n
	n4 := n - n%4
	for k := 0; k < n; k++ {
		slab := n2 * k
		for j := 0; j < n; j++ {
			dj := d[j*n : j*n+n]
			for i := 0; i < n; i++ {
				col := slab + i
				var s0, s1, s2, s3 float64
				for l := 0; l < n4; l += 4 {
					s0 += dj[l] * u[col+n*l]
					s1 += dj[l+1] * u[col+n*(l+1)]
					s2 += dj[l+2] * u[col+n*(l+2)]
					s3 += dj[l+3] * u[col+n*(l+3)]
				}
				s := s0 + s1 + s2 + s3
				for l := n4; l < n; l++ {
					s += dj[l] * u[col+n*l]
				}
				du[slab+i+n*j] = s
			}
		}
	}
}

// dudtBasic: naive dot products with stride-n^2 access — each inner
// iteration touches a different plane, thrashing the cache.
func dudtBasic(d []float64, n int, u, du []float64) {
	n2 := n * n
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				s := 0.0
				for l := 0; l < n; l++ {
					s += d[k*n+l] * u[i+n*j+n2*l]
				}
				du[i+n*j+n2*k] = s
			}
		}
	}
}

// dudtOpt: fused plane streaming — output plane k accumulates scaled
// input planes, all accesses unit stride. This is the transformation that
// buys the paper's 2.31x.
func dudtOpt(d []float64, n int, u, du []float64) {
	n2 := n * n
	m4 := n2 - n2%4
	for k := 0; k < n; k++ {
		dst := du[k*n2 : (k+1)*n2]
		for i := range dst {
			dst[i] = 0
		}
		dk := d[k*n : k*n+n]
		for l := 0; l < n; l++ {
			dkl := dk[l]
			src := u[l*n2 : (l+1)*n2]
			for i := 0; i < m4; i += 4 {
				dst[i] += dkl * src[i]
				dst[i+1] += dkl * src[i+1]
				dst[i+2] += dkl * src[i+2]
				dst[i+3] += dkl * src[i+3]
			}
			for i := m4; i < n2; i++ {
				dst[i] += dkl * src[i]
			}
		}
	}
}
