package sem

import "fmt"

// The fused gradient kernel: dudr, duds, and dudt of one element in a
// single pass over its planes, instead of three sweeps that each re-read
// all N^3 points of u from memory. Orders with a generated
// specialization (N in [4, 16], see grad3_gen.go) read each source plane
// once and produce all three derivative contributions from it while it
// is hot in cache; other orders fall back to the three Optimized sweeps,
// which compute the same thing with more memory traffic.
//
// Bit-exactness contract: Grad3Fused is bit-identical to
// Grad3(Optimized, ...) at every order — the generated kernels replicate
// the Optimized sweeps' partial-sum grouping and accumulation order
// exactly, and the test suite pins this.

// DerivOps is the structural cost of one direction's derivative for nel
// elements of order n — exported so call sites that fuse the three
// directions into one pass can still charge the hw model per direction,
// keeping modeled time identical to the unfused path.
func DerivOps(n, nel int) OpCount {
	return derivOps(n, nel)
}

// Grad3Fused computes all three reference-space derivatives of u for
// nel elements in one pass per element. Results are bit-identical to
// Grad3(Optimized, ...); the returned operation count equals the sum of
// the three per-direction counts.
func Grad3Fused(ref *Ref1D, u, ur, us, ut []float64, nel int) OpCount {
	n := ref.N
	n3 := n * n * n
	if len(u) < nel*n3 || len(ur) < nel*n3 || len(us) < nel*n3 || len(ut) < nel*n3 {
		panic(fmt.Sprintf("sem: grad3 needs %d values, got u=%d ur=%d us=%d ut=%d",
			nel*n3, len(u), len(ur), len(us), len(ut)))
	}
	for e := 0; e < nel; e++ {
		lo, hi := e*n3, (e+1)*n3
		grad3FusedElem(ref.D, n, u[lo:hi], ur[lo:hi], us[lo:hi], ut[lo:hi])
	}
	return derivOps(n, nel).Times(3)
}

func grad3FusedElem(d []float64, n int, u, ur, us, ut []float64) {
	if grad3FusedGen(d, n, u, ur, us, ut) {
		return
	}
	dudrOpt(d, n, u, ur)
	dudsOpt(d, n, u, us)
	dudtOpt(d, n, u, ut)
}
