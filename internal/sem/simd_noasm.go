//go:build !amd64 || semnoasm

package sem

// Pure-Go fallback for hosts without the AVX2 backend (non-amd64, or
// the semnoasm build tag). MxMSIMD degrades to the generated kernels.

const hasAVX2 = false

func mxmSIMD(a []float64, m int, b []float64, k int, c []float64, n int) bool {
	return false
}
