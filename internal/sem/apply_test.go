package sem

import (
	"math"
	"math/rand"
	"testing"
)

func TestApplyDirMatchesDeriv(t *testing.T) {
	ref := NewRef1D(7)
	nel := 2
	rng := rand.New(rand.NewSource(9))
	u := randSlice(rng, nel*343)
	for _, dir := range []Direction{DirR, DirS, DirT} {
		viaDeriv := make([]float64, len(u))
		viaApply := make([]float64, len(u))
		Deriv(dir, Optimized, ref, u, viaDeriv, nel)
		ApplyDir(dir, ref.D, ref.N, u, viaApply, nel)
		for i := range u {
			if math.Abs(viaDeriv[i]-viaApply[i]) > 1e-10*(1+math.Abs(viaDeriv[i])) {
				t.Fatalf("%v: ApplyDir(D) != Deriv at %d", dir, i)
			}
		}
	}
}

func TestApplyDirIdentity(t *testing.T) {
	n := 5
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	rng := rand.New(rand.NewSource(10))
	u := randSlice(rng, n*n*n)
	out := make([]float64, len(u))
	for _, dir := range []Direction{DirR, DirS, DirT} {
		ApplyDir(dir, id, n, u, out, 1)
		for i := range u {
			if out[i] != u[i] {
				t.Fatalf("%v: identity apply changed data at %d", dir, i)
			}
		}
	}
}

func TestApplyDirTransposeAdjoint(t *testing.T) {
	// <D u, v> = <u, D^T v> pointwise (unweighted dot), per direction.
	ref := NewRef1D(6)
	rng := rand.New(rand.NewSource(11))
	u := randSlice(rng, 216)
	v := randSlice(rng, 216)
	du := make([]float64, 216)
	dtv := make([]float64, 216)
	for _, dir := range []Direction{DirR, DirS, DirT} {
		ApplyDir(dir, ref.D, 6, u, du, 1)
		ApplyDir(dir, ref.Dt, 6, v, dtv, 1)
		lhs, rhs := 0.0, 0.0
		for i := range du {
			lhs += du[i] * v[i]
			rhs += u[i] * dtv[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("%v: adjoint identity fails: %v vs %v", dir, lhs, rhs)
		}
	}
}

func TestApplyDirPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short operator must panic")
		}
	}()
	ApplyDir(DirR, make([]float64, 3), 4, make([]float64, 64), make([]float64, 64), 1)
}
