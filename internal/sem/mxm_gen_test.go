package sem

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pool"
)

// The generated, SIMD, and auto variants share one correctness bar: bit
// identity with MxMBasic. Everything here asserts exact Float64bits
// equality, never tolerances.

func TestMxMGeneratedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 1; k <= mxmGenMaxK; k++ {
		for _, mn := range [][2]int{{1, 1}, {k, k}, {k*k + 1, k}, {13, 6}, {6, 17}} {
			m, n := mn[0], mn[1]
			a := randSlice(rng, m*k)
			b := randSlice(rng, k*n)
			want := make([]float64, m*n)
			MxM(MxMBasic, a, m, b, k, want, n)
			got := make([]float64, m*n)
			if !mxmGen(a, m, b, k, got, n) {
				t.Fatalf("k=%d has no generated kernel", k)
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("k=%d m=%d n=%d: c[%d] not bit-identical", k, m, n, i)
				}
			}
		}
	}
	// Dispatch boundary: k above the generated range reports false.
	k := mxmGenMaxK + 1
	if mxmGen(make([]float64, 2*k), 2, make([]float64, k*2), k, make([]float64, 4), 2) {
		t.Fatalf("k=%d unexpectedly generated", k)
	}
}

func TestMxMBTExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// k runs past the generated range to cover the portable generic.
	for k := 1; k <= mxmGenMaxK+4; k++ {
		for _, mn := range [][2]int{{1, 1}, {k * k, k}, {9, 5}, {5, 11}} {
			m, n := mn[0], mn[1]
			a := randSlice(rng, m*k)
			b := randSlice(rng, k*n)
			want := make([]float64, m*n)
			MxM(MxMBasic, a, m, b, k, want, n)
			bt := Transpose(b, k, n)
			got := make([]float64, m*n)
			ops := MxMBT(a, m, bt, k, got, n)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("k=%d m=%d n=%d: c[%d] not bit-identical", k, m, n, i)
				}
			}
			if ops != mxmOps(m, n, k) {
				t.Fatalf("k=%d: ops = %+v, want %+v", k, ops, mxmOps(m, n, k))
			}
		}
	}
}

func TestMxMSIMDExact(t *testing.T) {
	if !HasSIMD() {
		// The fallback path: MxMSIMD must still be correct (it degrades
		// to generated/fused+unroll), and mxmSIMD must refuse.
		if mxmSIMD(make([]float64, 4), 2, make([]float64, 4), 2, make([]float64, 4), 2) {
			t.Fatal("mxmSIMD reported success without AVX2")
		}
	}
	rng := rand.New(rand.NewSource(13))
	// n spans every tail path of the assembly (8-wide, 4-wide, scalar).
	for _, k := range []int{1, 2, 3, 5, 8, 13, 16, 17, 25} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 11, 12, 16, 23} {
			m := 7
			a := randSlice(rng, m*k)
			b := randSlice(rng, k*n)
			want := make([]float64, m*n)
			MxM(MxMBasic, a, m, b, k, want, n)
			got := make([]float64, m*n)
			MxM(MxMSIMD, a, m, b, k, got, n)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("k=%d n=%d: c[%d] not bit-identical", k, n, i)
				}
			}
		}
	}
}

func TestMxMAutoExactAndTuned(t *testing.T) {
	// Tune the default shapes, then verify dispatch stays bit-exact and
	// the committed winners are reported through MxMEffective.
	results := TuneMxM([][3]int{{25, 5, 5}, {144, 12, 12}}, 50)
	if len(results) != 2 {
		t.Fatalf("got %d tune results", len(results))
	}
	for _, res := range results {
		if res.Winner == "" {
			t.Fatalf("k=%d: no winner selected", res.K)
		}
		for _, c := range res.Candidates {
			if !c.Exact {
				t.Fatalf("k=%d: candidate %s is not bit-exact", res.K, c.Name)
			}
		}
		want := "auto:" + res.Winner
		if got := MxMEffective(MxMAuto, res.K); got != want {
			t.Fatalf("k=%d: MxMEffective(auto) = %q, want %q", res.K, got, want)
		}
	}
	rng := rand.New(rand.NewSource(14))
	for _, k := range []int{1, 5, 12, 16, 20} {
		m, n := k*k, k
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		want := make([]float64, m*n)
		MxM(MxMBasic, a, m, b, k, want, n)
		got := make([]float64, m*n)
		MxM(MxMAuto, a, m, b, k, got, n)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("k=%d: auto dispatch not bit-identical at %d", k, i)
			}
		}
	}
}

// TestMxMEffectiveNames is the regression test for the kernelbench -mxm
// labeling bug: a variant outside its specialization range must report
// the fallback that actually runs, not its own name.
func TestMxMEffectiveNames(t *testing.T) {
	for k := 4; k <= 10; k++ {
		if got := MxMEffective(MxMSpecialized, k); got != "specialized" {
			t.Errorf("specialized k=%d: effective %q", k, got)
		}
	}
	for _, k := range []int{1, 2, 3, 11, 12, 16} {
		if got := MxMEffective(MxMSpecialized, k); got != "fused+unroll" {
			t.Errorf("specialized k=%d: effective %q, want fused+unroll", k, got)
		}
	}
	for k := 1; k <= mxmGenMaxK; k++ {
		if got := MxMEffective(MxMGenerated, k); got != "generated" {
			t.Errorf("generated k=%d: effective %q", k, got)
		}
	}
	if got := MxMEffective(MxMGenerated, mxmGenMaxK+1); got != "fused+unroll" {
		t.Errorf("generated k=%d: effective %q, want fused+unroll", mxmGenMaxK+1, got)
	}
	if HasSIMD() {
		if got := MxMEffective(MxMSIMD, 25); got != "simd" {
			t.Errorf("simd k=25: effective %q", got)
		}
	} else {
		if got := MxMEffective(MxMSIMD, 12); got != "generated" {
			t.Errorf("simd without AVX2 k=12: effective %q, want generated", got)
		}
	}
	for _, k := range []int{1, 8, 16, 17, 25} {
		if got := MxMEffective(MxMAuto, k); !strings.HasPrefix(got, "auto:") {
			t.Errorf("auto k=%d: effective %q lacks auto: prefix", k, got)
		}
	}
	names := map[MxMVariant]string{
		MxMSpecialized: "specialized", MxMGenerated: "generated",
		MxMSIMD: "simd", MxMAuto: "auto",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

// TestMxMRejectsNonPositiveDims pins the shape-guard bugfix: m=0 used
// to silently no-op over garbage slices, and negative dims whose
// pairwise products are positive (m=-1, k=-1 gives m*k=1) slipped past
// the pure length checks.
func TestMxMRejectsNonPositiveDims(t *testing.T) {
	a := make([]float64, 16)
	b := make([]float64, 16)
	c := make([]float64, 16)
	cases := []struct {
		name    string
		m, k, n int
	}{
		{"m=0", 0, 2, 2},
		{"k=0", 2, 0, 2},
		{"n=0", 2, 2, 0},
		{"m,k negative", -1, -1, 2},
		{"k,n negative", 2, -1, -1},
		{"all negative", -2, -2, -2},
	}
	for _, tc := range cases {
		for _, v := range MxMVariants {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: MxM(%v) did not panic", tc.name, v)
					}
				}()
				MxM(v, a, tc.m, b, tc.k, c, tc.n)
			}()
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: MxMBT did not panic", tc.name)
				}
			}()
			MxMBT(a, tc.m, b, tc.k, c, tc.n)
		}()
	}
}

func TestMxMBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m, k, n, nel := 25, 5, 5, 7
	a := randSlice(rng, nel*m*k)
	b := randSlice(rng, k*n)
	want := make([]float64, nel*m*n)
	for e := 0; e < nel; e++ {
		MxM(MxMBasic, a[e*m*k:(e+1)*m*k], m, b, k, want[e*m*n:(e+1)*m*n], n)
	}
	for _, v := range MxMVariants {
		got := make([]float64, nel*m*n)
		ops := MxMBatch(v, a, m, b, k, got, n, nel)
		if v != MxMUnroll {
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v: batch not bit-identical at %d", v, i)
				}
			}
		}
		if ops != mxmOps(m, n, k).Times(int64(nel)) {
			t.Fatalf("%v: batch ops = %+v", v, ops)
		}
		// Pooled form, at several widths, must match exactly.
		for _, w := range []int{1, 2, 4} {
			p := pool.New(w)
			pg := make([]float64, nel*m*n)
			MxMBatchPool(p, v, a, m, b, k, pg, n, nel)
			p.Close()
			for i := range pg {
				if math.Float64bits(pg[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%v workers=%d: pooled batch diverges at %d", v, w, i)
				}
			}
		}
	}
}

// FuzzMxMVariants pits every variant against MxMBasic across random
// shapes with m != n and k in [1, 20]. All order-preserving variants —
// fused, fused+unroll, specialized, generated, simd, auto — must be
// bit-identical; MxMUnroll is the one variant whose defined semantics
// reassociate the reduction (4-way partial sums), so it alone is
// checked against a tolerance. The transposed-B entry point is fuzzed
// on the same inputs.
func FuzzMxMVariants(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(9), uint8(7))
	f.Add(int64(2), uint8(0), uint8(0), uint8(0))
	f.Add(int64(3), uint8(16), uint8(19), uint8(3))
	f.Add(int64(4), uint8(255), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, rm, rk, rn uint8) {
		m := int(rm)%24 + 1
		k := int(rk)%20 + 1
		n := int(rn)%24 + 1
		if n == m {
			n = n%24 + 1 // never equal to n in [1, 24]
		}
		rng := rand.New(rand.NewSource(seed))
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		want := make([]float64, m*n)
		MxM(MxMBasic, a, m, b, k, want, n)
		for _, v := range MxMVariants {
			if v == MxMBasic {
				continue
			}
			c := make([]float64, m*n)
			MxM(v, a, m, b, k, c, n)
			for i := range c {
				if v == MxMUnroll {
					if math.Abs(c[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
						t.Fatalf("%v m=%d k=%d n=%d: c[%d] = %v, want %v", v, m, k, n, i, c[i], want[i])
					}
				} else if math.Float64bits(c[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v m=%d k=%d n=%d: c[%d] = %x, want %x (not bit-identical)",
						v, m, k, n, i, math.Float64bits(c[i]), math.Float64bits(want[i]))
				}
			}
		}
		bt := Transpose(b, k, n)
		c := make([]float64, m*n)
		MxMBT(a, m, bt, k, c, n)
		for i := range c {
			if math.Float64bits(c[i]) != math.Float64bits(want[i]) {
				t.Fatalf("mxm-bt m=%d k=%d n=%d: c[%d] not bit-identical", m, k, n, i)
			}
		}
	})
}
