package sem

import (
	"math"
	"math/rand"
	"testing"
)

func TestTensorApply3Identity(t *testing.T) {
	n := 5
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	rng := rand.New(rand.NewSource(4))
	u := randSlice(rng, n*n*n)
	w := make([]float64, n*n*n)
	scratch := make([]float64, TensorScratchLen(n, n, n, n, n, n))
	TensorApply3(id, n, n, id, n, n, id, n, n, u, w, scratch)
	for i := range w {
		if math.Abs(w[i]-u[i]) > 1e-12 {
			t.Fatalf("identity tensor apply altered data at %d", i)
		}
	}
}

func TestTensorApply3MatchesDirectSum(t *testing.T) {
	// Small rectangular case checked against the O(n^6) direct formula.
	n1, n2, n3 := 3, 4, 2
	m1, m2, m3 := 2, 3, 4
	rng := rand.New(rand.NewSource(5))
	a := randSlice(rng, m1*n1)
	b := randSlice(rng, m2*n2)
	c := randSlice(rng, m3*n3)
	u := randSlice(rng, n1*n2*n3)
	w := make([]float64, m1*m2*m3)
	scratch := make([]float64, TensorScratchLen(m1, n1, m2, n2, m3, n3))
	TensorApply3(a, m1, n1, b, m2, n2, c, m3, n3, u, w, scratch)

	for kk := 0; kk < m3; kk++ {
		for jj := 0; jj < m2; jj++ {
			for ii := 0; ii < m1; ii++ {
				want := 0.0
				for k := 0; k < n3; k++ {
					for j := 0; j < n2; j++ {
						for i := 0; i < n1; i++ {
							want += a[ii*n1+i] * b[jj*n2+j] * c[kk*n3+k] * u[i+n1*j+n1*n2*k]
						}
					}
				}
				got := w[ii+m1*jj+m1*m2*kk]
				if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
					t.Fatalf("tensor apply wrong at (%d,%d,%d): %v want %v", ii, jj, kk, got, want)
				}
			}
		}
	}
}

func TestDealiasRoundTripExact(t *testing.T) {
	// ToFine then FromFine must reproduce polynomial data exactly
	// (interpolation of a degree < N polynomial is lossless both ways).
	for _, n := range []int{3, 5, 8, 10} {
		ref := NewRef1D(n)
		u := fillField(ref, 1, func(x, y, z float64) float64 {
			return 1 + x + x*y - z*z + x*y*z
		})
		orig := append([]float64(nil), u...)
		uf := make([]float64, ref.NF*ref.NF*ref.NF)
		scratch := make([]float64, ref.DealiasScratchLen())
		ops := ref.DealiasRoundTrip(u, 1, uf, scratch)
		for i := range u {
			if math.Abs(u[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip changed data at %d: %v -> %v", n, i, orig[i], u[i])
			}
		}
		if ops.Flops() <= 0 {
			t.Fatal("dealias must report work")
		}
	}
}

func TestToFineInterpolatesExactly(t *testing.T) {
	ref := NewRef1D(5)
	u := fillField(ref, 1, func(x, y, z float64) float64 { return x*x + y - 2*z })
	uf := make([]float64, ref.NF*ref.NF*ref.NF)
	scratch := make([]float64, ref.DealiasScratchLen())
	ref.ToFine(u, uf, scratch)
	nf := ref.NF
	for k := 0; k < nf; k++ {
		for j := 0; j < nf; j++ {
			for i := 0; i < nf; i++ {
				want := ref.XF[i]*ref.XF[i] + ref.XF[j] - 2*ref.XF[k]
				got := uf[i+nf*j+nf*nf*k]
				if math.Abs(got-want) > 1e-10 {
					t.Fatalf("fine mesh value at (%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestTensorApplyPanicsOnSmallScratch(t *testing.T) {
	n := 4
	id := make([]float64, n*n)
	defer func() {
		if recover() == nil {
			t.Fatal("undersized scratch must panic")
		}
	}()
	TensorApply3(id, n, n, id, n, n, id, n, n,
		make([]float64, n*n*n), make([]float64, n*n*n), make([]float64, 1))
}
