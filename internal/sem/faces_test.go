package sem

import (
	"math"
	"math/rand"
	"testing"
)

func TestFaceHelpers(t *testing.T) {
	if FaceDir(FaceRMinus) != 0 || FaceDir(FaceSPlus) != 1 || FaceDir(FaceTPlus) != 2 {
		t.Fatal("FaceDir wrong")
	}
	if FaceSign(FaceRMinus) != -1 || FaceSign(FaceRPlus) != 1 {
		t.Fatal("FaceSign wrong")
	}
	for f := 0; f < NFaces; f++ {
		if OppositeFace(OppositeFace(f)) != f {
			t.Fatal("OppositeFace not an involution")
		}
		if FaceDir(OppositeFace(f)) != FaceDir(f) {
			t.Fatal("opposite face changed direction")
		}
		if FaceSign(OppositeFace(f)) != -FaceSign(f) {
			t.Fatal("opposite face kept sign")
		}
	}
}

func TestFull2FaceExtractsBoundaryPlanes(t *testing.T) {
	n := 4
	ref := NewRef1D(n)
	// Encode coordinates into the field so faces are recognizable.
	u := fillField(ref, 1, func(x, y, z float64) float64 { return 100*x + 10*y + z })
	faces := make([]float64, FaceSliceLen(n, 1))
	Full2Face(n, u, 1, faces)
	n2 := n * n
	// Face r=-1 holds x = -1: value -100 + 10*y + z with (p,q) = (j,k).
	for q := 0; q < n; q++ {
		for p := 0; p < n; p++ {
			want := -100 + 10*ref.X[p] + ref.X[q]
			got := faces[FaceRMinus*n2+p+n*q]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("face r- point (%d,%d) = %v, want %v", p, q, got, want)
			}
		}
	}
	// Face t=+1 holds z = +1: value 100x + 10y + 1 with (p,q) = (i,j).
	for q := 0; q < n; q++ {
		for p := 0; p < n; p++ {
			want := 100*ref.X[p] + 10*ref.X[q] + 1
			got := faces[FaceTPlus*n2+p+n*q]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("face t+ point (%d,%d) = %v, want %v", p, q, got, want)
			}
		}
	}
}

func TestFace2FullAddInvertsGather(t *testing.T) {
	n := 5
	nel := 3
	rng := rand.New(rand.NewSource(6))
	u := randSlice(rng, nel*n*n*n)
	faces := make([]float64, FaceSliceLen(n, nel))
	Full2Face(n, u, nel, faces)
	// Scatter into a zero volume: every face point must land back at its
	// source index with the gathered value (interior stays zero).
	back := make([]float64, nel*n*n*n)
	Face2FullAdd(n, faces, nel, back)
	n3 := n * n * n
	for e := 0; e < nel; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					idx := e*n3 + i + n*j + n*n*k
					// Count how many faces contain this point.
					mult := 0
					for _, c := range []int{i, j, k} {
						if c == 0 || c == n-1 {
							mult++
						}
					}
					want := float64(mult) * u[idx]
					if math.Abs(back[idx]-want) > 1e-12*(1+math.Abs(want)) {
						t.Fatalf("e=%d (%d,%d,%d): scatter = %v, want %v (mult %d)",
							e, i, j, k, back[idx], want, mult)
					}
				}
			}
		}
	}
}

func TestSharedFaceOrderingConsistent(t *testing.T) {
	// Two elements adjacent along any direction must enumerate their
	// shared face points in the same (p,q) order. Simulate: element A's
	// plus face and element B's minus face sample the same physical
	// plane of a global linear function; extraction must give identical
	// arrays.
	n := 4
	ref := NewRef1D(n)
	for dim := 0; dim < 3; dim++ {
		// Element A occupies [-1,1]^3; element B is shifted +2 along dim,
		// so A's plus plane == B's minus plane physically.
		coord := func(i, j, k int, e int) (x, y, z float64) {
			x, y, z = ref.X[i], ref.X[j], ref.X[k]
			if e == 1 {
				switch dim {
				case 0:
					x += 2
				case 1:
					y += 2
				case 2:
					z += 2
				}
			}
			return
		}
		field := func(x, y, z float64) float64 { return 3*x + 5*y + 7*z }
		u := make([]float64, 2*n*n*n)
		for e := 0; e < 2; e++ {
			for k := 0; k < n; k++ {
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						x, y, z := coord(i, j, k, e)
						u[e*n*n*n+i+n*j+n*n*k] = field(x, y, z)
					}
				}
			}
		}
		faces := make([]float64, FaceSliceLen(n, 2))
		Full2Face(n, u, 2, faces)
		n2 := n * n
		plus := 2*dim + 1 // A's plus face
		minus := 2 * dim  // B's minus face
		for idx := 0; idx < n2; idx++ {
			a := faces[0*NFaces*n2+plus*n2+idx]
			b := faces[1*NFaces*n2+minus*n2+idx]
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("dim %d: shared face mismatch at %d: %v vs %v", dim, idx, a, b)
			}
		}
	}
}

func TestFull2FacePanicsOnShortFaces(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short face slice must panic")
		}
	}()
	Full2Face(4, make([]float64, 64), 1, make([]float64, 5))
}
