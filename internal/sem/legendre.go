// Package sem implements the spectral-element machinery CMT-bone inherits
// from Nek5000: Legendre/Gauss-Lobatto quadrature, the one-dimensional
// derivative operator, small dense matrix-multiply (mxm) kernels in the
// loop-transformation variants the paper studies (Section V), the
// tensor-product gradient (dudr/duds/dudt), and dealiasing interpolation
// between reference meshes.
//
// Elements are cubes of N x N x N Legendre-Gauss-Lobatto (LGL) points;
// within an element, data is stored with the r-index fastest:
// u[i + N*j + N*N*k] for (r,s,t) indices (i,j,k).
package sem

import (
	"fmt"
	"math"
)

// LegendreP evaluates the Legendre polynomial P_n at x using the
// three-term recurrence.
func LegendreP(n int, x float64) float64 {
	p, _ := legendreBoth(n, x)
	return p
}

// LegendrePD evaluates P_n and its derivative P'_n at x.
func LegendrePD(n int, x float64) (p, dp float64) {
	return legendreBoth(n, x)
}

func legendreBoth(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	if n == 1 {
		return x, 1
	}
	pm1, pm2 := x, 1.0 // P_1, P_0
	for k := 2; k <= n; k++ {
		p = ((2*float64(k)-1)*x*pm1 - (float64(k)-1)*pm2) / float64(k)
		pm2, pm1 = pm1, p
	}
	p = pm1
	// (1-x^2) P'_n = n (P_{n-1} - x P_n)
	if x == 1 || x == -1 {
		dp = math.Pow(x, float64(n-1)) * float64(n) * float64(n+1) / 2
	} else {
		dp = float64(n) * (pm2 - x*pm1) / (1 - x*x)
	}
	return p, dp
}

// GLLNodes returns the n Legendre-Gauss-Lobatto nodes on [-1, 1] in
// ascending order: the endpoints plus the roots of P'_{n-1}. It panics for
// n < 2 (an element needs at least its endpoints).
func GLLNodes(n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("sem: GLL needs n >= 2 points, got %d", n))
	}
	deg := n - 1 // polynomial order N
	x := make([]float64, n)
	x[0], x[n-1] = -1, 1
	for i := 1; i < n-1; i++ {
		// Chebyshev-Gauss-Lobatto initial guess, then Newton on P'_N.
		xi := -math.Cos(math.Pi * float64(i) / float64(deg))
		for iter := 0; iter < 100; iter++ {
			p, dp := legendreBoth(deg, xi)
			// P''_N from the Legendre ODE: (1-x^2)P'' = 2xP' - N(N+1)P
			ddp := (2*xi*dp - float64(deg)*float64(deg+1)*p) / (1 - xi*xi)
			dx := dp / ddp
			xi -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		x[i] = xi
	}
	return x
}

// GLLWeights returns the LGL quadrature weights for the nodes x:
// w_i = 2 / (N(N+1) P_N(x_i)^2) with N = len(x)-1.
func GLLWeights(x []float64) []float64 {
	n := len(x)
	deg := n - 1
	w := make([]float64, n)
	for i, xi := range x {
		p := LegendreP(deg, xi)
		w[i] = 2 / (float64(deg) * float64(deg+1) * p * p)
	}
	return w
}

// DerivMatrix returns the (n x n) LGL differentiation matrix D in
// row-major order: (Du)_i = sum_j D[i*n+j] u_j differentiates the degree
// N = n-1 interpolant of u at the nodes.
func DerivMatrix(x []float64) []float64 {
	n := len(x)
	deg := n - 1
	d := make([]float64, n*n)
	ln := make([]float64, n)
	for i, xi := range x {
		ln[i] = LegendreP(deg, xi)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j && i == 0:
				d[i*n+j] = -float64(deg) * float64(deg+1) / 4
			case i == j && i == n-1:
				d[i*n+j] = float64(deg) * float64(deg+1) / 4
			case i == j:
				d[i*n+j] = 0
			default:
				d[i*n+j] = ln[i] / (ln[j] * (x[i] - x[j]))
			}
		}
	}
	return d
}

// InterpMatrix returns the (m x n) row-major matrix J interpolating nodal
// values from the n source nodes x to the m target points y:
// (Ju)_k = sum_i J[k*n+i] u_i. It uses barycentric Lagrange interpolation
// for numerical stability — this is Nek5000's igllm, used by the
// dealiasing pass that maps elements to a finer reference mesh.
func InterpMatrix(x, y []float64) []float64 {
	n, m := len(x), len(y)
	// Barycentric weights.
	wb := make([]float64, n)
	for i := range wb {
		w := 1.0
		for j := range x {
			if j != i {
				w *= x[i] - x[j]
			}
		}
		wb[i] = 1 / w
	}
	jmat := make([]float64, m*n)
	for k, yk := range y {
		// Exact node hit: the row is a Kronecker delta.
		hit := -1
		for i, xi := range x {
			if yk == xi {
				hit = i
				break
			}
		}
		if hit >= 0 {
			jmat[k*n+hit] = 1
			continue
		}
		denom := 0.0
		for i := range x {
			denom += wb[i] / (yk - x[i])
		}
		for i := range x {
			jmat[k*n+i] = (wb[i] / (yk - x[i])) / denom
		}
	}
	return jmat
}

// LagrangeWeights evaluates all n Lagrange cardinal functions of the
// nodes x at the point xi (in [-1,1]), using the barycentric form. The
// result w satisfies u(xi) = sum_i w[i] u_i for the degree n-1
// interpolant — the off-grid evaluation Lagrangian particle tracking
// needs.
func LagrangeWeights(x []float64, xi float64) []float64 {
	n := len(x)
	w := make([]float64, n)
	// Exact node hit.
	for i, v := range x {
		if xi == v {
			w[i] = 1
			return w
		}
	}
	denom := 0.0
	for i := range x {
		wb := 1.0
		for j := range x {
			if j != i {
				wb *= x[i] - x[j]
			}
		}
		w[i] = 1 / (wb * (xi - x[i]))
		denom += w[i]
	}
	for i := range w {
		w[i] /= denom
	}
	return w
}

// Transpose returns the row-major transpose of the (m x n) matrix a.
func Transpose(a []float64, m, n int) []float64 {
	t := make([]float64, n*m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t[j*m+i] = a[i*n+j]
		}
	}
	return t
}

// Ref1D bundles the one-dimensional reference-element operators for N
// points: nodes, weights, and the derivative matrix, plus the fine-mesh
// interpolation operators used for dealiasing.
type Ref1D struct {
	N  int       // points per direction
	X  []float64 // LGL nodes
	W  []float64 // LGL weights
	D  []float64 // derivative matrix (N x N, row-major)
	Dt []float64 // transpose of D

	NF int       // fine (dealiased) points per direction, 3N/2 rounded up
	XF []float64 // fine LGL nodes
	JF []float64 // interpolation N -> NF (NF x N)
	JB []float64 // back-interpolation NF -> N (N x NF)
}

// NewRef1D builds the reference operators for n LGL points per direction.
func NewRef1D(n int) *Ref1D {
	x := GLLNodes(n)
	nf := (3*n + 1) / 2 // ceil(3N/2), Nek's dealiasing rule
	xf := GLLNodes(nf)
	d := DerivMatrix(x)
	return &Ref1D{
		N: n, X: x, W: GLLWeights(x), D: d, Dt: Transpose(d, n, n),
		NF: nf, XF: xf, JF: InterpMatrix(x, xf), JB: InterpMatrix(xf, x),
	}
}
