package sem

import "fmt"

// TensorApply3 applies the separable operator (C (x) B (x) A) to u, where
// u has dimensions (n1, n2, n3) with the first index fastest, A is
// (m1 x n1) applied along the first index, B (m2 x n2) along the second,
// and C (m3 x n3) along the third. The result (m1, m2, m3) is written to
// w. scratch must hold at least m1*max(n2,m2)*n3 values... it is sized by
// TensorScratchLen. Returns the structural operation count.
//
// This is the workhorse of spectral-element dealiasing: mapping an
// element to a finer reference mesh and back is exactly such a tensor
// product with interpolation matrices.
func TensorApply3(a []float64, m1, n1 int,
	b []float64, m2, n2 int,
	c []float64, m3, n3 int,
	u, w, scratch []float64) OpCount {

	if len(u) < n1*n2*n3 || len(w) < m1*m2*m3 {
		panic(fmt.Sprintf("sem: tensor apply size mismatch: u=%d (need %d), w=%d (need %d)",
			len(u), n1*n2*n3, len(w), m1*m2*m3))
	}
	if len(scratch) < TensorScratchLen(m1, n1, m2, n2, m3, n3) {
		panic(fmt.Sprintf("sem: tensor scratch too small: %d < %d",
			len(scratch), TensorScratchLen(m1, n1, m2, n2, m3, n3)))
	}
	t1 := scratch[:m1*n2*n3]
	t2 := scratch[m1*n2*n3 : m1*n2*n3+m1*m2*n3]

	var ops OpCount
	// Stage 1, along the first index: view u as row-major (n2*n3 x n1)
	// and multiply by A^T, giving t1 as (n2*n3 x m1) — i.e. t1 indexed
	// [a + m1*(j + n2*k)]. A row-major (m1 x n1) is its own transpose
	// stored transposed, which is exactly MxMBT's B-side layout, so the
	// operator is applied in place with no per-call transposed copy.
	ops = ops.Plus(MxMBT(u, n2*n3, a, n1, t1, m1))
	// Stage 2, along the second index, one k-slab at a time:
	// t2slab(m2 x m1) = B(m2 x n2) * t1slab(n2 x m1).
	for k := 0; k < n3; k++ {
		src := t1[k*m1*n2 : (k+1)*m1*n2]
		dst := t2[k*m1*m2 : (k+1)*m1*m2]
		ops = ops.Plus(MxM(MxMAuto, b, m2, src, n2, dst, m1))
	}
	// Stage 3, along the third index: w(m3 x m1*m2) = C(m3 x n3) * t2.
	ops = ops.Plus(MxM(MxMAuto, c, m3, t2, n3, w, m1*m2))
	return ops
}

// TensorScratchLen returns the scratch length TensorApply3 requires.
func TensorScratchLen(m1, n1, m2, n2, m3, n3 int) int {
	return m1*n2*n3 + m1*m2*n3
}

// ToFine interpolates one element's N^3 values to the NF^3 fine
// (dealiasing) mesh. uf must hold NF^3 values.
func (ref *Ref1D) ToFine(u, uf, scratch []float64) OpCount {
	n, nf := ref.N, ref.NF
	return TensorApply3(ref.JF, nf, n, ref.JF, nf, n, ref.JF, nf, n, u, uf, scratch)
}

// FromFine maps NF^3 fine-mesh values back to the N^3 element mesh by
// interpolating the fine-mesh data at the coarse nodes (the mini-app's
// proxy for the dealiasing projection). For data that is polynomial of
// degree < NF per direction — in particular anything produced by ToFine —
// the round trip is exact.
func (ref *Ref1D) FromFine(uf, u, scratch []float64) OpCount {
	n, nf := ref.N, ref.NF
	return TensorApply3(ref.JB, n, nf, ref.JB, n, nf, ref.JB, n, nf, uf, u, scratch)
}

// DealiasScratchLen returns the scratch length ToFine/FromFine need.
func (ref *Ref1D) DealiasScratchLen() int {
	n, nf := ref.N, ref.NF
	up := TensorScratchLen(nf, n, nf, n, nf, n)
	down := TensorScratchLen(n, nf, n, nf, n, nf)
	if down > up {
		return down
	}
	return up
}

// DealiasRoundTrip maps every element of u to the fine mesh and back,
// exercising the dealiasing cost path of the spectral element solver
// (uf and scratch are reused across elements; uf must hold NF^3 values).
func (ref *Ref1D) DealiasRoundTrip(u []float64, nel int, uf, scratch []float64) OpCount {
	n3 := ref.N * ref.N * ref.N
	var ops OpCount
	for e := 0; e < nel; e++ {
		ue := u[e*n3 : (e+1)*n3]
		ops = ops.Plus(ref.ToFine(ue, uf, scratch))
		ops = ops.Plus(ref.FromFine(uf, ue, scratch))
	}
	return ops
}
