package sem

import (
	"math"
	"testing"
	"testing/quick"
)

const tol = 1e-11

func almost(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func TestLegendreKnownValues(t *testing.T) {
	cases := []struct {
		n    int
		x, p float64
	}{
		{0, 0.3, 1},
		{1, 0.3, 0.3},
		{2, 0.5, (3*0.25 - 1) / 2},
		{3, 0.5, (5*0.125 - 3*0.5) / 2},
		{4, 1, 1},
		{5, -1, -1},
		{6, 1, 1},
	}
	for _, c := range cases {
		if got := LegendreP(c.n, c.x); !almost(got, c.p, tol) {
			t.Errorf("P_%d(%v) = %v, want %v", c.n, c.x, got, c.p)
		}
	}
}

func TestLegendreDerivativeMatchesFiniteDifference(t *testing.T) {
	h := 1e-6
	for n := 1; n <= 12; n++ {
		for _, x := range []float64{-0.9, -0.3, 0.1, 0.7} {
			_, dp := LegendrePD(n, x)
			fd := (LegendreP(n, x+h) - LegendreP(n, x-h)) / (2 * h)
			if !almost(dp, fd, 1e-4) {
				t.Errorf("P'_%d(%v) = %v, finite difference %v", n, x, dp, fd)
			}
		}
	}
}

func TestLegendreEndpointDerivative(t *testing.T) {
	// P'_n(1) = n(n+1)/2 and P'_n(-1) = (-1)^(n-1) n(n+1)/2.
	for n := 1; n <= 10; n++ {
		want := float64(n) * float64(n+1) / 2
		if _, dp := LegendrePD(n, 1); !almost(dp, want, tol) {
			t.Errorf("P'_%d(1) = %v, want %v", n, dp, want)
		}
		wantNeg := want
		if n%2 == 0 {
			wantNeg = -want
		}
		if _, dp := LegendrePD(n, -1); !almost(dp, wantNeg, tol) {
			t.Errorf("P'_%d(-1) = %v, want %v", n, dp, wantNeg)
		}
	}
}

func TestGLLNodesKnown(t *testing.T) {
	check := func(got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		for i := range got {
			if !almost(got[i], want[i], 1e-12) {
				t.Errorf("node %d = %.15f, want %.15f", i, got[i], want[i])
			}
		}
	}
	check(GLLNodes(2), []float64{-1, 1})
	check(GLLNodes(3), []float64{-1, 0, 1})
	s5 := 1 / math.Sqrt(5)
	check(GLLNodes(4), []float64{-1, -s5, s5, 1})
	s37 := math.Sqrt(3.0 / 7.0)
	check(GLLNodes(5), []float64{-1, -s37, 0, s37, 1})
}

func TestGLLNodesSortedSymmetric(t *testing.T) {
	for n := 2; n <= 25; n++ {
		x := GLLNodes(n)
		if x[0] != -1 || x[n-1] != 1 {
			t.Fatalf("n=%d endpoints %v %v", n, x[0], x[n-1])
		}
		for i := 1; i < n; i++ {
			if x[i] <= x[i-1] {
				t.Fatalf("n=%d nodes not increasing at %d: %v", n, i, x)
			}
		}
		for i := 0; i < n/2; i++ {
			if !almost(x[i], -x[n-1-i], 1e-12) {
				t.Fatalf("n=%d nodes not symmetric: %v vs %v", n, x[i], x[n-1-i])
			}
		}
	}
}

func TestGLLNodesAreDerivativeRoots(t *testing.T) {
	for n := 3; n <= 20; n++ {
		x := GLLNodes(n)
		for i := 1; i < n-1; i++ {
			if _, dp := LegendrePD(n-1, x[i]); math.Abs(dp) > 1e-9 {
				t.Errorf("n=%d: P'_{%d}(x[%d]=%v) = %v, want ~0", n, n-1, i, x[i], dp)
			}
		}
	}
}

func TestGLLWeights(t *testing.T) {
	// n=3 weights are 1/3, 4/3, 1/3.
	w := GLLWeights(GLLNodes(3))
	want := []float64{1.0 / 3, 4.0 / 3, 1.0 / 3}
	for i := range w {
		if !almost(w[i], want[i], tol) {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	for n := 2; n <= 25; n++ {
		ws := GLLWeights(GLLNodes(n))
		sum := 0.0
		for _, v := range ws {
			if v <= 0 {
				t.Fatalf("n=%d nonpositive weight %v", n, v)
			}
			sum += v
		}
		if !almost(sum, 2, 1e-12) {
			t.Errorf("n=%d weights sum to %v, want 2", n, sum)
		}
	}
}

func TestGLLQuadratureExactness(t *testing.T) {
	// LGL quadrature with n points is exact for degree <= 2n-3.
	for n := 3; n <= 12; n++ {
		x := GLLNodes(n)
		w := GLLWeights(x)
		for p := 0; p <= 2*n-3; p++ {
			got := 0.0
			for i := range x {
				got += w[i] * math.Pow(x[i], float64(p))
			}
			want := 0.0
			if p%2 == 0 {
				want = 2 / float64(p+1)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("n=%d: quadrature of x^%d = %v, want %v", n, p, got, want)
			}
		}
	}
}

func TestGLLPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GLLNodes(1) must panic")
		}
	}()
	GLLNodes(1)
}

func TestDerivMatrixExactOnPolynomials(t *testing.T) {
	for n := 2; n <= 16; n++ {
		x := GLLNodes(n)
		d := DerivMatrix(x)
		for p := 0; p < n; p++ { // degree <= n-1 differentiates exactly
			u := make([]float64, n)
			for i := range u {
				u[i] = math.Pow(x[i], float64(p))
			}
			for i := 0; i < n; i++ {
				got := 0.0
				for j := 0; j < n; j++ {
					got += d[i*n+j] * u[j]
				}
				want := 0.0
				if p > 0 {
					want = float64(p) * math.Pow(x[i], float64(p-1))
				}
				if math.Abs(got-want) > 1e-8 {
					t.Errorf("n=%d: (D x^%d)[%d] = %v, want %v", n, p, i, got, want)
				}
			}
		}
	}
}

func TestDerivMatrixRowSumsZero(t *testing.T) {
	// D of a constant is zero, i.e. every row sums to zero.
	for n := 2; n <= 20; n++ {
		d := DerivMatrix(GLLNodes(n))
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += d[i*n+j]
			}
			if math.Abs(s) > 1e-10 {
				t.Errorf("n=%d row %d sums to %v", n, i, s)
			}
		}
	}
}

func TestInterpMatrixReproducesPolynomials(t *testing.T) {
	x := GLLNodes(6)
	y := GLLNodes(9)
	j := InterpMatrix(x, y)
	for p := 0; p < 6; p++ {
		u := make([]float64, len(x))
		for i := range u {
			u[i] = math.Pow(x[i], float64(p))
		}
		for k := range y {
			got := 0.0
			for i := range x {
				got += j[k*len(x)+i] * u[i]
			}
			want := math.Pow(y[k], float64(p))
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("interp x^%d at y[%d]: %v want %v", p, k, got, want)
			}
		}
	}
}

func TestInterpMatrixNodeHit(t *testing.T) {
	x := GLLNodes(5)
	j := InterpMatrix(x, x) // target == source: identity
	for k := 0; k < 5; k++ {
		for i := 0; i < 5; i++ {
			want := 0.0
			if i == k {
				want = 1
			}
			if math.Abs(j[k*5+i]-want) > 1e-13 {
				t.Errorf("J[%d,%d] = %v, want %v", k, i, j[k*5+i], want)
			}
		}
	}
}

func TestInterpMatrixRowsSumToOne(t *testing.T) {
	// Interpolating the constant 1 must give 1 at every target point.
	f := func(seed int64) bool {
		n := int(seed%7+7) % 7
		if n < 3 {
			n += 3
		}
		x := GLLNodes(n)
		y := GLLNodes(n + 3)
		j := InterpMatrix(x, y)
		for k := range y {
			s := 0.0
			for i := range x {
				s += j[k*n+i]
			}
			if math.Abs(s-1) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLagrangeWeightsReproducePolynomials(t *testing.T) {
	x := GLLNodes(7)
	for _, xi := range []float64{-0.95, -0.3, 0.123, 0.77} {
		w := LagrangeWeights(x, xi)
		for p := 0; p < 7; p++ {
			got := 0.0
			for i := range x {
				got += w[i] * math.Pow(x[i], float64(p))
			}
			want := math.Pow(xi, float64(p))
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("x^%d at %v: %v want %v", p, xi, got, want)
			}
		}
	}
}

func TestLagrangeWeightsNodeHit(t *testing.T) {
	x := GLLNodes(5)
	w := LagrangeWeights(x, x[2])
	for i, v := range w {
		want := 0.0
		if i == 2 {
			want = 1
		}
		if v != want {
			t.Fatalf("node hit weights wrong: %v", w)
		}
	}
}

func TestLagrangeWeightsPartitionOfUnity(t *testing.T) {
	x := GLLNodes(9)
	for xi := -1.0; xi <= 1.0; xi += 0.13 {
		w := LagrangeWeights(x, xi)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-11 {
			t.Fatalf("weights at %v sum to %v", xi, sum)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2x3
	at := Transpose(a, 2, 3)
	want := []float64{1, 4, 2, 5, 3, 6}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("transpose = %v", at)
		}
	}
	// Involution property.
	back := Transpose(at, 3, 2)
	for i := range a {
		if back[i] != a[i] {
			t.Fatalf("double transpose = %v", back)
		}
	}
}

func TestNewRef1D(t *testing.T) {
	ref := NewRef1D(8)
	if ref.N != 8 || ref.NF != 12 {
		t.Fatalf("N=%d NF=%d, want 8, 12", ref.N, ref.NF)
	}
	if len(ref.D) != 64 || len(ref.Dt) != 64 {
		t.Fatalf("derivative matrix sizes %d %d", len(ref.D), len(ref.Dt))
	}
	if len(ref.JF) != 12*8 || len(ref.JB) != 8*12 {
		t.Fatalf("interp sizes %d %d", len(ref.JF), len(ref.JB))
	}
	// Dt really is the transpose of D.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if ref.D[i*8+j] != ref.Dt[j*8+i] {
				t.Fatal("Dt is not the transpose of D")
			}
		}
	}
}
